/**
 * @file
 * The OoO-lite processor core model.
 *
 * Each core replays a synthetic trace.  Non-memory instructions retire
 * at the profile's base IPC; memory operations walk the cache
 * hierarchy.  What the model captures — and what drives every result
 * in the paper — is *memory-level parallelism*: the core runs ahead
 * of outstanding misses until it exhausts its 196-entry ROB window,
 * its 32-entry load queue, its 32-entry store queue, or the MSHRs, and
 * then stalls until a completion unblocks it.  Pipeline micro-detail
 * (issue width, functional units, branch prediction) is deliberately
 * folded into the base IPC; DESIGN.md discusses the substitution.
 *
 * Execution is batched: the core consumes trace operations until its
 * local clock runs a small quantum ahead of simulation time, then
 * yields an event.  L1 hits cost nothing beyond base IPC; L2 hits and
 * memory accesses become outstanding operations with completions.
 */

#ifndef FBDP_CPU_CORE_HH
#define FBDP_CPU_CORE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cache/hierarchy.hh"
#include "common/types.hh"
#include "mc/attribution.hh"
#include "sim/event_queue.hh"
#include "sim/trace.hh"
#include "workload/generator.hh"

namespace fbdp {

/** Window/queue limits and pacing knobs (defaults == Table 1). */
struct CoreParams
{
    double baseIpc = 2.0;
    unsigned rob = 196;
    unsigned lq = 32;
    unsigned sq = 32;
    Tick cycle = cpuCyclePs;
    /** Maximum local run-ahead before yielding to the event queue. */
    Tick quantum = 32 * cpuCyclePs;
};

/** One processor core. */
class Core
{
  public:
    Core(std::string name, int id, EventQueue *event_queue,
         CacheHierarchy *hierarchy, Generator *generator,
         const CoreParams &params);

    /** Begin executing (schedules the first advance). */
    void start();

    /** Instructions executed since start. */
    std::uint64_t insts() const { return instCount; }

    /**
     * Fire @p cb once when insts() first reaches @p target.  Replaces
     * any earlier notification.
     */
    void setNotify(std::uint64_t target, std::function<void()> cb);

    /** Open a measurement window at the current tick. */
    void resetStats();

    /** Instructions inside the current measurement window. */
    std::uint64_t windowInsts() const { return instCount - instMark; }

    /** IPC over the measurement window. */
    double ipc() const;

    // Stall-time accounting (ticks spent asleep per cause).
    Tick robStallTicks() const { return robStall; }
    Tick lqStallTicks() const { return lqStall; }
    Tick sqStallTicks() const { return sqStall; }
    Tick mshrStallTicks() const { return mshrStall; }

    int id() const { return coreId; }
    const std::string &name() const { return _name; }

    /** Bind (or unbind with nullptr) the lifecycle tracer: stall
     *  periods become Begin/End durations on a per-core track. */
    void bindTracer(trace::Tracer *t);

    /**
     * Enable stall-cycle attribution (or disable with nullptr).  Each
     * ended stall interval is charged to the latency phases of the
     * transaction whose completion woke the core, read from @p hub at
     * wake time (the controllers publish into the same hub).
     */
    void enableAttribution(AttributionHub *hub);

    /** Per-reason stall-by-phase matrix, nullptr unless enabled. */
    const CoreStallAttribution *stallAttribution() const
    {
        return stallAtt.get();
    }

  private:
    enum class Stall { None, Rob, Lq, Sq, Mshr };

    static const char *stallName(Stall s);

    void advance();
    /** @return false when the core must yield (stall or run-ahead). */
    bool step();
    void enterStall(Stall why);
    void wakeFromStall();
    void completed(std::uint64_t seq, bool is_load);
    void addCoreTime(std::uint64_t n_insts);
    void selfCompleteFire();

    std::string _name;
    int coreId;
    EventQueue *eq;
    CacheHierarchy *hier;
    Generator *gen;
    CoreParams p;

    Event advanceEvent;
    Event selfCompleteEvent;

    Tick coreTime = 0;       ///< local clock (>= eq time while running)
    double fracTicks = 0.0;  ///< sub-tick carry of base-IPC time

    std::uint64_t instCount = 0;

    TraceOp pending;
    bool havePending = false;

    /** Outstanding load seq numbers, ascending.  Loads are issued
     *  with monotonically growing seqs, so insertion is a push_back
     *  and the oldest (ROB-pinning) load is the front; the size is
     *  bounded by the load queue (32), so the erase memmove is cheap
     *  and no tree nodes churn on the hottest core path. */
    std::vector<std::uint64_t> outstandingLoads;
    unsigned nLoads = 0;
    unsigned nStores = 0;

    Stall stallReason = Stall::None;
    Tick stallSince = 0;

    /** One self-scheduled completion (an L2 hit maturing). */
    struct SelfDone
    {
        Tick at;
        std::uint64_t order;  ///< FIFO tie-break within a tick
        std::uint64_t seq;
        bool isLoad;
    };

    /** Min-heap order on (at, order): reproduces the old multimap's
     *  tick-then-insertion pop sequence. */
    struct SelfDoneAfter
    {
        bool
        operator()(const SelfDone &a, const SelfDone &b) const
        {
            if (a.at != b.at)
                return a.at > b.at;
            return a.order > b.order;
        }
    };

    void pushSelfDone(Tick at, std::uint64_t seq, bool is_load);

    /** Self-scheduled completions (L2 hits), a (tick, order) min-heap:
     *  near-monotonic insertion keeps sifts short, and the backing
     *  vector recycles its capacity (vs per-node multimap churn). */
    std::vector<SelfDone> selfDone;
    std::uint64_t selfDoneOrder = 0;

    std::uint64_t notifyAt = ~0ull;
    std::function<void()> notifyCb;

    std::uint64_t instMark = 0;
    Tick tickMark = 0;

    Tick robStall = 0;
    Tick lqStall = 0;
    Tick sqStall = 0;
    Tick mshrStall = 0;

    /** Lifecycle-tracer binding (tr == nullptr means disabled). */
    struct TraceBinding
    {
        trace::Tracer *tr = nullptr;
        std::uint32_t track = 0;
    };
    TraceBinding trc;

    /** Stall-attribution binding; null == disabled (one branch in
     *  wakeFromStall, same pattern as the tracer binding). */
    std::unique_ptr<CoreStallAttribution> stallAtt;
    AttributionHub *attHub = nullptr;
};

} // namespace fbdp

#endif // FBDP_CPU_CORE_HH
