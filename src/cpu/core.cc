#include "cpu/core.hh"

#include <algorithm>

#include "common/logging.hh"

namespace fbdp {

Core::Core(std::string name, int id, EventQueue *event_queue,
           CacheHierarchy *hierarchy, Generator *generator,
           const CoreParams &params)
    : _name(std::move(name)),
      coreId(id),
      eq(event_queue),
      hier(hierarchy),
      gen(generator),
      p(params),
      advanceEvent([this] { advance(); }, Event::prioCpu),
      selfCompleteEvent([this] { selfCompleteFire(); }, Event::prioData)
{
    fbdp_assert(p.baseIpc > 0.0, "%s: base IPC must be positive",
                _name.c_str());
    hier->setRetryHook(coreId, [this] {
        if (stallReason == Stall::Mshr)
            wakeFromStall();
    });
}

void
Core::start()
{
    eq->schedule(&advanceEvent, eq->now());
}

void
Core::setNotify(std::uint64_t target, std::function<void()> cb)
{
    notifyAt = target;
    notifyCb = std::move(cb);
}

void
Core::resetStats()
{
    instMark = instCount;
    tickMark = eq->now();
    robStall = 0;
    lqStall = 0;
    sqStall = 0;
    mshrStall = 0;
    // A stall in progress spans the window boundary; clock only its
    // in-window part so per-core cycle accounting sums to the window.
    if (stallReason != Stall::None)
        stallSince = tickMark;
    if (stallAtt)
        stallAtt->reset();
}

double
Core::ipc() const
{
    const Tick dt = eq->now() - tickMark;
    if (dt == 0)
        return 0.0;
    const double cycles = static_cast<double>(dt)
        / static_cast<double>(p.cycle);
    return static_cast<double>(instCount - instMark) / cycles;
}

void
Core::addCoreTime(std::uint64_t n_insts)
{
    const double t = static_cast<double>(n_insts)
        / p.baseIpc * static_cast<double>(p.cycle) + fracTicks;
    const Tick whole = static_cast<Tick>(t);
    fracTicks = t - static_cast<double>(whole);
    coreTime += whole;
}

void
Core::advance()
{
    const Tick now = eq->now();
    if (coreTime < now)
        coreTime = now;

    while (true) {
        if (notifyCb && instCount >= notifyAt) {
            auto cb = std::move(notifyCb);
            notifyCb = nullptr;
            cb();
            // The callback may have retargeted the notification or
            // stopped the simulation; just continue.
        }
        if (coreTime > now + p.quantum) {
            eq->schedule(&advanceEvent, coreTime);
            return;
        }
        if (!step())
            return;  // stalled; a completion will wake us
    }
}

bool
Core::step()
{
    // The oldest incomplete load pins the ROB window.
    if (!outstandingLoads.empty()
        && instCount + 1 - outstandingLoads.front() > p.rob) {
        enterStall(Stall::Rob);
        return false;
    }

    if (!havePending) {
        pending = gen->next();
        havePending = true;
        instCount += pending.gap;
        addCoreTime(pending.gap);
    }

    switch (pending.kind) {
      case TraceOp::Kind::Prefetch: {
        hier->prefetch(coreId, pending.addr);
        ++instCount;
        addCoreTime(1);
        havePending = false;
        return true;
      }
      case TraceOp::Kind::Load: {
        if (nLoads >= p.lq) {
            enterStall(Stall::Lq);
            return false;
        }
        const std::uint64_t seq = instCount + 1;
        auto res = hier->access(
            coreId, pending.addr, false,
            [this, seq](Tick) { completed(seq, true); });
        if (res.outcome == CacheHierarchy::Outcome::Blocked) {
            enterStall(Stall::Mshr);
            return false;
        }
        ++instCount;
        addCoreTime(1);
        havePending = false;
        if (res.outcome == CacheHierarchy::Outcome::L1Hit)
            return true;
        fbdp_assert(outstandingLoads.empty()
                        || outstandingLoads.back() < seq,
                    "load seqs not monotonic");
        outstandingLoads.push_back(seq);
        ++nLoads;
        if (res.outcome == CacheHierarchy::Outcome::L2Hit)
            pushSelfDone(res.doneAt, seq, true);
        return true;
      }
      case TraceOp::Kind::Store: {
        if (nStores >= p.sq) {
            enterStall(Stall::Sq);
            return false;
        }
        const std::uint64_t seq = instCount + 1;
        auto res = hier->access(
            coreId, pending.addr, true,
            [this, seq](Tick) { completed(seq, false); });
        if (res.outcome == CacheHierarchy::Outcome::Blocked) {
            enterStall(Stall::Mshr);
            return false;
        }
        ++instCount;
        addCoreTime(1);
        havePending = false;
        if (res.outcome == CacheHierarchy::Outcome::L1Hit)
            return true;
        ++nStores;
        if (res.outcome == CacheHierarchy::Outcome::L2Hit)
            pushSelfDone(res.doneAt, seq, false);
        return true;
      }
    }
    return true;
}

void
Core::pushSelfDone(Tick at, std::uint64_t seq, bool is_load)
{
    selfDone.push_back(SelfDone{at, selfDoneOrder++, seq, is_load});
    std::push_heap(selfDone.begin(), selfDone.end(), SelfDoneAfter{});
    if (!selfCompleteEvent.scheduled()
        || selfCompleteEvent.when() > selfDone.front().at)
        eq->schedule(&selfCompleteEvent, selfDone.front().at);
}

const char *
Core::stallName(Stall s)
{
    switch (s) {
      case Stall::Rob:
        return "stall_rob";
      case Stall::Lq:
        return "stall_lq";
      case Stall::Sq:
        return "stall_sq";
      case Stall::Mshr:
        return "stall_mshr";
      case Stall::None:
        break;
    }
    return "stall";
}

void
Core::bindTracer(trace::Tracer *t)
{
    trc = TraceBinding{};
    if (!t)
        return;
    trc.tr = t;
    trc.track = t->track(_name);
}

void
Core::enableAttribution(AttributionHub *hub)
{
    attHub = hub;
    stallAtt = hub ? std::make_unique<CoreStallAttribution>() : nullptr;
}

void
Core::enterStall(Stall why)
{
    stallReason = why;
    stallSince = eq->now();
    if (trc.tr)
        trc.tr->begin(trc.track, stallName(why), stallSince);
}

void
Core::wakeFromStall()
{
    const Tick now = eq->now();
    const Tick dt = now - stallSince;
    switch (stallReason) {
      case Stall::Rob:
        robStall += dt;
        break;
      case Stall::Lq:
        lqStall += dt;
        break;
      case Stall::Sq:
        sqStall += dt;
        break;
      case Stall::Mshr:
        mshrStall += dt;
        break;
      case Stall::None:
        break;
    }
    if (stallAtt && stallReason != Stall::None) {
        // Charge the ended interval to whatever completion is in
        // scope on the hub: the controller publishes around memory
        // completions, selfCompleteFire around L2 hits.
        stallAtt->attribute(
            static_cast<unsigned>(stallReason) - 1, dt, *attHub);
    }
    if (trc.tr && stallReason != Stall::None)
        trc.tr->end(trc.track, stallName(stallReason), now);
    stallReason = Stall::None;
    eq->schedule(&advanceEvent, std::max(now, coreTime));
}

void
Core::completed(std::uint64_t seq, bool is_load)
{
    if (is_load) {
        auto it = std::lower_bound(outstandingLoads.begin(),
                                   outstandingLoads.end(), seq);
        fbdp_assert(it != outstandingLoads.end() && *it == seq,
                    "%s: unknown load completion", _name.c_str());
        outstandingLoads.erase(it);
        fbdp_assert(nLoads > 0, "load count underflow");
        --nLoads;
    } else {
        fbdp_assert(nStores > 0, "store count underflow");
        --nStores;
    }
    if (stallReason != Stall::None && stallReason != Stall::Mshr)
        wakeFromStall();
}

void
Core::selfCompleteFire()
{
    const Tick now = eq->now();
    while (!selfDone.empty() && selfDone.front().at <= now) {
        std::pop_heap(selfDone.begin(), selfDone.end(),
                      SelfDoneAfter{});
        const SelfDone d = selfDone.back();
        selfDone.pop_back();
        if (attHub)
            attHub->publishL2();
        completed(d.seq, d.isLoad);
        if (attHub)
            attHub->clear();
    }
    if (!selfDone.empty())
        eq->schedule(&selfCompleteEvent, selfDone.front().at);
}

} // namespace fbdp
