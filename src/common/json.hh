/**
 * @file
 * A minimal JSON reader for the tooling side of the project.
 *
 * fbdp-report has to load stats/telemetry/benchmark JSON produced by
 * the simulator (and by google-benchmark) without pulling an external
 * dependency into the build, so this parses the whole of RFC 8259
 * into a small immutable value tree: object, array, string, number,
 * bool, null.  It is a strict parser — trailing garbage, unterminated
 * literals and bad escapes are errors — but it is not a validator
 * for pathological depth (the recursion guard simply rejects inputs
 * nested deeper than a generous fixed bound).
 *
 * Numbers are lossless for the values the simulator emits.  Integer
 * tokens that fit in 64 bits keep their exact value (asInt64() /
 * asUint64()) alongside the double view, so a 64-bit event counter
 * survives a write/parse round trip bit for bit; and as a documented
 * extension beyond RFC 8259 the parser accepts the literals `NaN`,
 * `Infinity` and `-Infinity`, which encodeNumber() emits for
 * non-finite doubles — the cross-run ledger re-reads its own records
 * and must not silently turn a NaN metric into a parse error or a
 * null.
 */

#ifndef FBDP_COMMON_JSON_HH
#define FBDP_COMMON_JSON_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace fbdp {
namespace json {

class Value;
using ValuePtr = std::shared_ptr<const Value>;

/** One parsed JSON value. */
class Value
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind() const { return _kind; }

    bool isNull() const { return _kind == Kind::Null; }
    bool isBool() const { return _kind == Kind::Bool; }
    bool isNumber() const { return _kind == Kind::Number; }
    bool isString() const { return _kind == Kind::String; }
    bool isArray() const { return _kind == Kind::Array; }
    bool isObject() const { return _kind == Kind::Object; }

    /** Value accessors; asserting the matching kind. */
    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;
    const std::vector<ValuePtr> &asArray() const;

    /**
     * True when the number was parsed (or built) from an integer
     * token that fits 64 bits — its exact value is available through
     * asInt64()/asUint64() even beyond 2^53, where the double view
     * rounds.
     */
    bool isInteger() const;

    /** Exact integer value; asserts isInteger() and signed range. */
    std::int64_t asInt64() const;

    /** Exact integer value; asserts isInteger() and non-negative. */
    std::uint64_t asUint64() const;

    /** Object members in document order (duplicate keys keep the
     *  later value, like every mainstream parser). */
    const std::vector<std::pair<std::string, ValuePtr>> &
    members() const;

    /** Object member by key, or nullptr. */
    ValuePtr get(const std::string &key) const;

    // Construction (used by the parser; also handy in tests).
    static ValuePtr makeNull();
    static ValuePtr makeBool(bool b);
    static ValuePtr makeNumber(double d);
    static ValuePtr makeInteger(std::int64_t v);
    static ValuePtr makeUnsigned(std::uint64_t v);
    static ValuePtr makeString(std::string s);
    static ValuePtr makeArray(std::vector<ValuePtr> items);
    static ValuePtr
    makeObject(std::vector<std::pair<std::string, ValuePtr>> mems);

  private:
    explicit Value(Kind k) : _kind(k) {}

    /** Exact-integer sidecar of a Number (see isInteger()). */
    enum class IntRep { None, Signed, Unsigned };

    Kind _kind;
    bool b = false;
    double num = 0.0;
    IntRep intRep = IntRep::None;
    std::uint64_t intBits = 0; ///< value (Unsigned) or int64 bits
    std::string str;
    std::vector<ValuePtr> arr;
    std::vector<std::pair<std::string, ValuePtr>> obj;
};

/** Result of a parse: either a value or a diagnostic. */
struct ParseResult
{
    ValuePtr value;    ///< null on failure
    std::string error; ///< empty on success, else "line N: what"

    bool ok() const { return value != nullptr; }
};

/** Parse one complete JSON document (trailing whitespace allowed). */
ParseResult parse(const std::string &text);

/** Parse the contents of @p path; IO failures land in error. */
ParseResult parseFile(const std::string &path);

/**
 * Render a number the parser reads back exactly.  Finite doubles use
 * the shortest %g form that round-trips (so "0.25" stays "0.25", not
 * seventeen digits); non-finite doubles become the NaN / Infinity /
 * -Infinity literal extension.  The integer overloads print all 64
 * bits — use them for counters, which a double transit would round
 * above 2^53.
 */
std::string encodeNumber(double d);
std::string encodeNumber(std::int64_t v);
std::string encodeNumber(std::uint64_t v);

} // namespace json
} // namespace fbdp

#endif // FBDP_COMMON_JSON_HH
