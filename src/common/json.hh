/**
 * @file
 * A minimal JSON reader for the tooling side of the project.
 *
 * fbdp-report has to load stats/telemetry/benchmark JSON produced by
 * the simulator (and by google-benchmark) without pulling an external
 * dependency into the build, so this parses the whole of RFC 8259
 * into a small immutable value tree: object, array, string, number,
 * bool, null.  It is a strict parser — trailing garbage, unterminated
 * literals and bad escapes are errors — but it is not a validator
 * for pathological depth (the recursion guard simply rejects inputs
 * nested deeper than a generous fixed bound).
 */

#ifndef FBDP_COMMON_JSON_HH
#define FBDP_COMMON_JSON_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace fbdp {
namespace json {

class Value;
using ValuePtr = std::shared_ptr<const Value>;

/** One parsed JSON value. */
class Value
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind() const { return _kind; }

    bool isNull() const { return _kind == Kind::Null; }
    bool isBool() const { return _kind == Kind::Bool; }
    bool isNumber() const { return _kind == Kind::Number; }
    bool isString() const { return _kind == Kind::String; }
    bool isArray() const { return _kind == Kind::Array; }
    bool isObject() const { return _kind == Kind::Object; }

    /** Value accessors; asserting the matching kind. */
    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;
    const std::vector<ValuePtr> &asArray() const;

    /** Object members in document order (duplicate keys keep the
     *  later value, like every mainstream parser). */
    const std::vector<std::pair<std::string, ValuePtr>> &
    members() const;

    /** Object member by key, or nullptr. */
    ValuePtr get(const std::string &key) const;

    // Construction (used by the parser; also handy in tests).
    static ValuePtr makeNull();
    static ValuePtr makeBool(bool b);
    static ValuePtr makeNumber(double d);
    static ValuePtr makeString(std::string s);
    static ValuePtr makeArray(std::vector<ValuePtr> items);
    static ValuePtr
    makeObject(std::vector<std::pair<std::string, ValuePtr>> mems);

  private:
    explicit Value(Kind k) : _kind(k) {}

    Kind _kind;
    bool b = false;
    double num = 0.0;
    std::string str;
    std::vector<ValuePtr> arr;
    std::vector<std::pair<std::string, ValuePtr>> obj;
};

/** Result of a parse: either a value or a diagnostic. */
struct ParseResult
{
    ValuePtr value;    ///< null on failure
    std::string error; ///< empty on success, else "line N: what"

    bool ok() const { return value != nullptr; }
};

/** Parse one complete JSON document (trailing whitespace allowed). */
ParseResult parse(const std::string &text);

/** Parse the contents of @p path; IO failures land in error. */
ParseResult parseFile(const std::string &path);

} // namespace json
} // namespace fbdp

#endif // FBDP_COMMON_JSON_HH
