#include "common/json.hh"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/logging.hh"

namespace fbdp {
namespace json {

bool
Value::asBool() const
{
    fbdp_assert(isBool(), "json value is not a bool");
    return b;
}

double
Value::asNumber() const
{
    fbdp_assert(isNumber(), "json value is not a number");
    return num;
}

bool
Value::isInteger() const
{
    return _kind == Kind::Number && intRep != IntRep::None;
}

std::int64_t
Value::asInt64() const
{
    fbdp_assert(isInteger(), "json value is not an exact integer");
    if (intRep == IntRep::Signed)
        return static_cast<std::int64_t>(intBits);
    fbdp_assert(intBits <= static_cast<std::uint64_t>(
                    std::numeric_limits<std::int64_t>::max()),
                "json integer %llu overflows int64",
                static_cast<unsigned long long>(intBits));
    return static_cast<std::int64_t>(intBits);
}

std::uint64_t
Value::asUint64() const
{
    fbdp_assert(isInteger(), "json value is not an exact integer");
    if (intRep == IntRep::Signed) {
        const auto v = static_cast<std::int64_t>(intBits);
        fbdp_assert(v >= 0, "json integer %lld is negative",
                    static_cast<long long>(v));
        return static_cast<std::uint64_t>(v);
    }
    return intBits;
}

const std::string &
Value::asString() const
{
    fbdp_assert(isString(), "json value is not a string");
    return str;
}

const std::vector<ValuePtr> &
Value::asArray() const
{
    fbdp_assert(isArray(), "json value is not an array");
    return arr;
}

const std::vector<std::pair<std::string, ValuePtr>> &
Value::members() const
{
    fbdp_assert(isObject(), "json value is not an object");
    return obj;
}

ValuePtr
Value::get(const std::string &key) const
{
    fbdp_assert(isObject(), "json value is not an object");
    // Later duplicates win: scan back to front.
    for (auto it = obj.rbegin(); it != obj.rend(); ++it) {
        if (it->first == key)
            return it->second;
    }
    return nullptr;
}

ValuePtr
Value::makeNull()
{
    return ValuePtr(new Value(Kind::Null));
}

ValuePtr
Value::makeBool(bool v)
{
    auto p = new Value(Kind::Bool);
    p->b = v;
    return ValuePtr(p);
}

ValuePtr
Value::makeNumber(double d)
{
    auto p = new Value(Kind::Number);
    p->num = d;
    return ValuePtr(p);
}

ValuePtr
Value::makeInteger(std::int64_t v)
{
    auto p = new Value(Kind::Number);
    p->num = static_cast<double>(v);
    p->intRep = IntRep::Signed;
    p->intBits = static_cast<std::uint64_t>(v);
    return ValuePtr(p);
}

ValuePtr
Value::makeUnsigned(std::uint64_t v)
{
    auto p = new Value(Kind::Number);
    p->num = static_cast<double>(v);
    p->intRep = IntRep::Unsigned;
    p->intBits = v;
    return ValuePtr(p);
}

ValuePtr
Value::makeString(std::string s)
{
    auto p = new Value(Kind::String);
    p->str = std::move(s);
    return ValuePtr(p);
}

ValuePtr
Value::makeArray(std::vector<ValuePtr> items)
{
    auto p = new Value(Kind::Array);
    p->arr = std::move(items);
    return ValuePtr(p);
}

ValuePtr
Value::makeObject(std::vector<std::pair<std::string, ValuePtr>> mems)
{
    auto p = new Value(Kind::Object);
    p->obj = std::move(mems);
    return ValuePtr(p);
}

namespace {

/** Recursive-descent parser over an in-memory buffer. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : s(text) {}

    ParseResult
    run()
    {
        ValuePtr v = parseValue();
        if (!v)
            return {nullptr, err};
        skipWs();
        if (pos != s.size())
            return {nullptr, where() + "trailing characters after "
                                       "the document"};
        return {v, ""};
    }

  private:
    static constexpr int maxDepth = 256;

    const std::string &s;
    size_t pos = 0;
    int depth = 0;
    std::string err;

    std::string
    where() const
    {
        size_t line = 1;
        for (size_t i = 0; i < pos && i < s.size(); ++i) {
            if (s[i] == '\n')
                ++line;
        }
        return "line " + std::to_string(line) + ": ";
    }

    ValuePtr
    fail(const std::string &what)
    {
        if (err.empty())
            err = where() + what;
        return nullptr;
    }

    void
    skipWs()
    {
        while (pos < s.size()
               && (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n'
                   || s[pos] == '\r'))
            ++pos;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos < s.size() && s[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word)
    {
        const size_t n = std::strlen(word);
        if (s.compare(pos, n, word) == 0) {
            pos += n;
            return true;
        }
        return false;
    }

    ValuePtr
    parseValue()
    {
        skipWs();
        if (pos >= s.size())
            return fail("unexpected end of input");
        if (++depth > maxDepth)
            return fail("nesting too deep");
        ValuePtr v;
        switch (s[pos]) {
          case '{':
            v = parseObject();
            break;
          case '[':
            v = parseArray();
            break;
          case '"':
            v = parseString();
            break;
          case 't':
            v = literal("true") ? Value::makeBool(true)
                                : fail("bad literal");
            break;
          case 'f':
            v = literal("false") ? Value::makeBool(false)
                                 : fail("bad literal");
            break;
          case 'n':
            v = literal("null") ? Value::makeNull()
                                : fail("bad literal");
            break;
          default:
            v = parseNumber();
            break;
        }
        --depth;
        return v;
    }

    ValuePtr
    parseObject()
    {
        ++pos; // '{'
        std::vector<std::pair<std::string, ValuePtr>> mems;
        skipWs();
        if (consume('}'))
            return Value::makeObject(std::move(mems));
        while (true) {
            skipWs();
            if (pos >= s.size() || s[pos] != '"')
                return fail("expected object key");
            std::string key;
            if (!parseStringRaw(key))
                return nullptr;
            if (!consume(':'))
                return fail("expected ':' after object key");
            ValuePtr v = parseValue();
            if (!v)
                return nullptr;
            mems.emplace_back(std::move(key), std::move(v));
            if (consume(','))
                continue;
            if (consume('}'))
                return Value::makeObject(std::move(mems));
            return fail("expected ',' or '}' in object");
        }
    }

    ValuePtr
    parseArray()
    {
        ++pos; // '['
        std::vector<ValuePtr> items;
        skipWs();
        if (consume(']'))
            return Value::makeArray(std::move(items));
        while (true) {
            ValuePtr v = parseValue();
            if (!v)
                return nullptr;
            items.push_back(std::move(v));
            if (consume(','))
                continue;
            if (consume(']'))
                return Value::makeArray(std::move(items));
            return fail("expected ',' or ']' in array");
        }
    }

    ValuePtr
    parseString()
    {
        std::string out;
        if (!parseStringRaw(out))
            return nullptr;
        return Value::makeString(std::move(out));
    }

    bool
    parseStringRaw(std::string &out)
    {
        ++pos; // opening quote
        while (pos < s.size()) {
            const char c = s[pos];
            if (c == '"') {
                ++pos;
                return true;
            }
            if (c == '\\') {
                if (pos + 1 >= s.size()) {
                    fail("unterminated escape");
                    return false;
                }
                const char e = s[pos + 1];
                pos += 2;
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                    if (pos + 4 > s.size()) {
                        fail("truncated \\u escape");
                        return false;
                    }
                    unsigned cp = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = s[pos + static_cast<size_t>(i)];
                        cp <<= 4;
                        if (h >= '0' && h <= '9')
                            cp |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            cp |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            cp |= static_cast<unsigned>(h - 'A' + 10);
                        else {
                            fail("bad \\u escape");
                            return false;
                        }
                    }
                    pos += 4;
                    // Encode the BMP code point as UTF-8; surrogate
                    // pairs (rare in stats output) pass through as
                    // two separately-encoded halves.
                    if (cp < 0x80) {
                        out += static_cast<char>(cp);
                    } else if (cp < 0x800) {
                        out += static_cast<char>(0xC0 | (cp >> 6));
                        out += static_cast<char>(0x80 | (cp & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (cp >> 12));
                        out += static_cast<char>(
                            0x80 | ((cp >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (cp & 0x3F));
                    }
                    break;
                  }
                  default:
                    fail("bad escape character");
                    return false;
                }
                continue;
            }
            if (static_cast<unsigned char>(c) < 0x20) {
                fail("control character inside string");
                return false;
            }
            out += c;
            ++pos;
        }
        fail("unterminated string");
        return false;
    }

    ValuePtr
    parseNumber()
    {
        // Non-finite literal extension (see the file header): the
        // simulator's own writers emit these for NaN/Inf metrics.
        if (literal("NaN"))
            return Value::makeNumber(
                std::numeric_limits<double>::quiet_NaN());
        if (literal("Infinity"))
            return Value::makeNumber(
                std::numeric_limits<double>::infinity());
        if (literal("-Infinity"))
            return Value::makeNumber(
                -std::numeric_limits<double>::infinity());

        const size_t start = pos;
        bool integral = true;
        if (pos < s.size() && s[pos] == '-')
            ++pos;
        while (pos < s.size()
               && (std::isdigit(static_cast<unsigned char>(s[pos]))
                   || s[pos] == '.' || s[pos] == 'e' || s[pos] == 'E'
                   || s[pos] == '+' || s[pos] == '-')) {
            if (!std::isdigit(static_cast<unsigned char>(s[pos])))
                integral = false;
            ++pos;
        }
        if (pos == start)
            return fail("expected a value");
        const std::string tok = s.substr(start, pos - start);
        char *end = nullptr;

        // Keep integer tokens exact when they fit 64 bits: counters
        // beyond 2^53 must survive a round trip bit for bit.
        if (integral) {
            errno = 0;
            if (tok[0] == '-') {
                const long long v =
                    std::strtoll(tok.c_str(), &end, 10);
                if (errno == 0 && end && *end == '\0')
                    return Value::makeInteger(v);
            } else {
                const unsigned long long v =
                    std::strtoull(tok.c_str(), &end, 10);
                if (errno == 0 && end && *end == '\0')
                    return Value::makeUnsigned(v);
            }
            // Out of 64-bit range: fall through to the double path.
        }

        end = nullptr;
        const double d = std::strtod(tok.c_str(), &end);
        if (end == tok.c_str() || *end != '\0') {
            pos = start;
            return fail("malformed number '" + tok + "'");
        }
        return Value::makeNumber(d);
    }
};

} // namespace

ParseResult
parse(const std::string &text)
{
    return Parser(text).run();
}

std::string
encodeNumber(double d)
{
    if (std::isnan(d))
        return "NaN";
    if (std::isinf(d))
        return d > 0 ? "Infinity" : "-Infinity";
    // Shortest %g precision that parses back to the same double:
    // common values stay readable, every value stays exact.
    char buf[40];
    for (int prec = 15; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, d);
        if (std::strtod(buf, nullptr) == d)
            break;
    }
    return buf;
}

std::string
encodeNumber(std::int64_t v)
{
    return std::to_string(v);
}

std::string
encodeNumber(std::uint64_t v)
{
    return std::to_string(v);
}

ParseResult
parseFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return {nullptr, "cannot open " + path};
    std::ostringstream ss;
    ss << in.rdbuf();
    return parse(ss.str());
}

} // namespace json
} // namespace fbdp
