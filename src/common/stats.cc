#include "common/stats.hh"

#include <cmath>
#include <cstdio>
#include <iomanip>

#include "common/logging.hh"

namespace fbdp {
namespace stats {

void
printJsonNumber(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << "null"; // NaN/Inf are not valid JSON numbers
        return;
    }
    os << v;
}

void
Scalar::print(std::ostream &os) const
{
    os << std::left << std::setw(40) << name() << " "
       << std::setw(16) << sum << " # " << desc() << "\n";
}

void
Scalar::printJson(std::ostream &os) const
{
    printJsonNumber(os, sum);
}

void
Average::print(std::ostream &os) const
{
    os << std::left << std::setw(40) << name() << " "
       << std::setw(16) << mean() << " # " << desc()
       << " (" << count << " samples)\n";
}

void
Average::printJson(std::ostream &os) const
{
    os << "{\"mean\": ";
    printJsonNumber(os, mean());
    os << ", \"samples\": " << count << ", \"total\": ";
    printJsonNumber(os, sum);
    os << "}";
}

Histogram::Histogram(std::string stat_name, std::string stat_desc,
                     double bucket_lo, double bucket_hi,
                     unsigned n_buckets)
    : Stat(std::move(stat_name), std::move(stat_desc)),
      lo(bucket_lo), hi(bucket_hi),
      buckets(n_buckets, 0)
{
    fbdp_assert(n_buckets >= 1,
                "%s: histogram needs at least one bucket",
                name().c_str());
    fbdp_assert(hi > lo, "%s: degenerate histogram range",
                name().c_str());
}

void
Histogram::sample(double v)
{
    ++count;
    sum += v;
    if (v < lo) {
        ++under;
        return;
    }
    if (v >= hi) {
        ++over;
        return;
    }
    double width = (hi - lo) / static_cast<double>(buckets.size());
    auto idx = static_cast<size_t>((v - lo) / width);
    if (idx >= buckets.size())
        idx = buckets.size() - 1;
    ++buckets[idx];
}

double
Histogram::quantile(double p) const
{
    if (!count)
        return 0.0;
    if (p < 0.0)
        p = 0.0;
    if (p > 1.0)
        p = 1.0;

    const double width = (hi - lo)
        / static_cast<double>(buckets.size());

    if (p == 0.0) {
        // The minimum of the distribution: the low edge of the first
        // populated region, NOT the histogram's lower bound — a
        // distribution concentrated in one bucket must report that
        // bucket's own edge instead of interpolating across the empty
        // span below it.
        if (under)
            return lo;
        for (size_t i = 0; i < buckets.size(); ++i) {
            if (buckets[i])
                return lo + width * static_cast<double>(i);
        }
        return hi; // only overflows
    }

    double target = p * static_cast<double>(count);
    double cum = static_cast<double>(under);
    if (target <= cum)
        return lo;

    for (size_t i = 0; i < buckets.size(); ++i) {
        if (!buckets[i])
            continue;
        double b = static_cast<double>(buckets[i]);
        if (cum + b >= target) {
            double frac = (target - cum) / b;
            return lo + width * (static_cast<double>(i) + frac);
        }
        cum += b;
    }
    // Only overflows remain above the target rank.
    return hi;
}

void
Histogram::merge(const Histogram &other)
{
    fbdp_assert(lo == other.lo && hi == other.hi &&
                buckets.size() == other.buckets.size(),
                "merging histograms with different geometry");
    for (size_t i = 0; i < buckets.size(); ++i)
        buckets[i] += other.buckets[i];
    under += other.under;
    over += other.over;
    count += other.count;
    sum += other.sum;
}

void
Histogram::reset()
{
    for (auto &b : buckets)
        b = 0;
    under = over = count = 0;
    sum = 0.0;
}

void
Histogram::print(std::ostream &os) const
{
    os << std::left << std::setw(40) << name() << " mean="
       << mean() << " samples=" << count << " # " << desc() << "\n";
    double width = (hi - lo) / static_cast<double>(buckets.size());
    std::uint64_t cum = under;
    for (size_t i = 0; i < buckets.size(); ++i) {
        if (!buckets[i])
            continue;
        cum += buckets[i];
        char pct[16];
        std::snprintf(pct, sizeof(pct), "%6.2f%%",
                      100.0 * static_cast<double>(cum) /
                          static_cast<double>(count));
        os << "  [" << lo + width * static_cast<double>(i) << ", "
           << lo + width * static_cast<double>(i + 1) << ") "
           << buckets[i] << " cum=" << pct << "\n";
    }
    if (under)
        os << "  underflows " << under << "\n";
    if (over)
        os << "  overflows " << over << "\n";
}

void
Histogram::printJson(std::ostream &os) const
{
    os << "{\"mean\": ";
    printJsonNumber(os, mean());
    os << ", \"samples\": " << count
       << ", \"p50\": ";
    printJsonNumber(os, quantile(0.50));
    os << ", \"p95\": ";
    printJsonNumber(os, quantile(0.95));
    os << ", \"p99\": ";
    printJsonNumber(os, quantile(0.99));
    os << ", \"underflows\": " << under
       << ", \"overflows\": " << over << "}";
}

void
Formula::print(std::ostream &os) const
{
    os << std::left << std::setw(40) << name() << " "
       << std::setw(16) << value() << " # " << desc() << "\n";
}

void
Formula::printJson(std::ostream &os) const
{
    printJsonNumber(os, value());
}

void
StatGroup::resetAll()
{
    for (auto *s : statList)
        s->reset();
}

Stat *
StatGroup::find(const std::string &stat_name) const
{
    for (auto *s : statList) {
        if (s->name() == stat_name)
            return s;
    }
    return nullptr;
}

void
StatGroup::printAll(std::ostream &os) const
{
    os << "---------- " << _name << " ----------\n";
    for (const auto *s : statList)
        s->print(os);
}

} // namespace stats
} // namespace fbdp
