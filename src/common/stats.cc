#include "common/stats.hh"

#include <iomanip>

namespace fbdp {
namespace stats {

void
Scalar::print(std::ostream &os) const
{
    os << std::left << std::setw(40) << name() << " "
       << std::setw(16) << sum << " # " << desc() << "\n";
}

void
Average::print(std::ostream &os) const
{
    os << std::left << std::setw(40) << name() << " "
       << std::setw(16) << mean() << " # " << desc()
       << " (" << count << " samples)\n";
}

void
Histogram::sample(double v)
{
    ++count;
    sum += v;
    if (v < lo) {
        ++under;
        return;
    }
    if (v >= hi) {
        ++over;
        return;
    }
    double width = (hi - lo) / static_cast<double>(buckets.size());
    auto idx = static_cast<size_t>((v - lo) / width);
    if (idx >= buckets.size())
        idx = buckets.size() - 1;
    ++buckets[idx];
}

void
Histogram::reset()
{
    for (auto &b : buckets)
        b = 0;
    under = over = count = 0;
    sum = 0.0;
}

void
Histogram::print(std::ostream &os) const
{
    os << std::left << std::setw(40) << name() << " mean="
       << mean() << " samples=" << count << " # " << desc() << "\n";
    double width = (hi - lo) / static_cast<double>(buckets.size());
    for (size_t i = 0; i < buckets.size(); ++i) {
        if (!buckets[i])
            continue;
        os << "  [" << lo + width * static_cast<double>(i) << ", "
           << lo + width * static_cast<double>(i + 1) << ") "
           << buckets[i] << "\n";
    }
    if (under)
        os << "  underflows " << under << "\n";
    if (over)
        os << "  overflows " << over << "\n";
}

void
Formula::print(std::ostream &os) const
{
    os << std::left << std::setw(40) << name() << " "
       << std::setw(16) << value() << " # " << desc() << "\n";
}

void
StatGroup::resetAll()
{
    for (auto *s : statList)
        s->reset();
}

void
StatGroup::printAll(std::ostream &os) const
{
    os << "---------- " << _name << " ----------\n";
    for (const auto *s : statList)
        s->print(os);
}

} // namespace stats
} // namespace fbdp
