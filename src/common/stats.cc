#include "common/stats.hh"

#include <cstdio>
#include <iomanip>

#include "common/logging.hh"

namespace fbdp {
namespace stats {

void
Scalar::print(std::ostream &os) const
{
    os << std::left << std::setw(40) << name() << " "
       << std::setw(16) << sum << " # " << desc() << "\n";
}

void
Average::print(std::ostream &os) const
{
    os << std::left << std::setw(40) << name() << " "
       << std::setw(16) << mean() << " # " << desc()
       << " (" << count << " samples)\n";
}

void
Histogram::sample(double v)
{
    ++count;
    sum += v;
    if (v < lo) {
        ++under;
        return;
    }
    if (v >= hi) {
        ++over;
        return;
    }
    double width = (hi - lo) / static_cast<double>(buckets.size());
    auto idx = static_cast<size_t>((v - lo) / width);
    if (idx >= buckets.size())
        idx = buckets.size() - 1;
    ++buckets[idx];
}

double
Histogram::quantile(double p) const
{
    if (!count)
        return 0.0;
    if (p < 0.0)
        p = 0.0;
    if (p > 1.0)
        p = 1.0;

    double target = p * static_cast<double>(count);
    double cum = static_cast<double>(under);
    if (target <= cum)
        return lo;

    double width = (hi - lo) / static_cast<double>(buckets.size());
    for (size_t i = 0; i < buckets.size(); ++i) {
        if (!buckets[i])
            continue;
        double b = static_cast<double>(buckets[i]);
        if (cum + b >= target) {
            double frac = (target - cum) / b;
            return lo + width * (static_cast<double>(i) + frac);
        }
        cum += b;
    }
    // Only overflows remain above the target rank.
    return hi;
}

void
Histogram::merge(const Histogram &other)
{
    fbdp_assert(lo == other.lo && hi == other.hi &&
                buckets.size() == other.buckets.size(),
                "merging histograms with different geometry");
    for (size_t i = 0; i < buckets.size(); ++i)
        buckets[i] += other.buckets[i];
    under += other.under;
    over += other.over;
    count += other.count;
    sum += other.sum;
}

void
Histogram::reset()
{
    for (auto &b : buckets)
        b = 0;
    under = over = count = 0;
    sum = 0.0;
}

void
Histogram::print(std::ostream &os) const
{
    os << std::left << std::setw(40) << name() << " mean="
       << mean() << " samples=" << count << " # " << desc() << "\n";
    double width = (hi - lo) / static_cast<double>(buckets.size());
    std::uint64_t cum = under;
    for (size_t i = 0; i < buckets.size(); ++i) {
        if (!buckets[i])
            continue;
        cum += buckets[i];
        char pct[16];
        std::snprintf(pct, sizeof(pct), "%6.2f%%",
                      100.0 * static_cast<double>(cum) /
                          static_cast<double>(count));
        os << "  [" << lo + width * static_cast<double>(i) << ", "
           << lo + width * static_cast<double>(i + 1) << ") "
           << buckets[i] << " cum=" << pct << "\n";
    }
    if (under)
        os << "  underflows " << under << "\n";
    if (over)
        os << "  overflows " << over << "\n";
}

void
Formula::print(std::ostream &os) const
{
    os << std::left << std::setw(40) << name() << " "
       << std::setw(16) << value() << " # " << desc() << "\n";
}

void
StatGroup::resetAll()
{
    for (auto *s : statList)
        s->reset();
}

Stat *
StatGroup::find(const std::string &stat_name) const
{
    for (auto *s : statList) {
        if (s->name() == stat_name)
            return s;
    }
    return nullptr;
}

void
StatGroup::printAll(std::ostream &os) const
{
    os << "---------- " << _name << " ----------\n";
    for (const auto *s : statList)
        s->print(os);
}

} // namespace stats
} // namespace fbdp
