/**
 * @file
 * Error and status reporting in the gem5 spirit.
 *
 * panic()  — an internal invariant was violated (a bug in fbdp itself);
 *            aborts so a debugger / core dump can capture the state.
 * fatal()  — the simulation cannot continue because of a user error
 *            (bad configuration, impossible parameter); exits cleanly.
 * warn()   — something is suspicious but the simulation can continue.
 * inform() — plain status output.
 */

#ifndef FBDP_COMMON_LOGGING_HH
#define FBDP_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace fbdp {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Format helper: printf-style into std::string. */
std::string csprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace fbdp

#define panic(...) \
    ::fbdp::panicImpl(__FILE__, __LINE__, ::fbdp::csprintf(__VA_ARGS__))

#define fatal(...) \
    ::fbdp::fatalImpl(__FILE__, __LINE__, ::fbdp::csprintf(__VA_ARGS__))

#define warn(...) ::fbdp::warnImpl(::fbdp::csprintf(__VA_ARGS__))

#define inform(...) ::fbdp::informImpl(::fbdp::csprintf(__VA_ARGS__))

/** Assert-like check that survives NDEBUG; use for model invariants. */
#define fbdp_assert(cond, ...)                                           \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::fbdp::panicImpl(__FILE__, __LINE__,                         \
                "assertion '" #cond "' failed: "                          \
                + ::fbdp::csprintf(__VA_ARGS__));                         \
        }                                                                 \
    } while (0)

#endif // FBDP_COMMON_LOGGING_HH
