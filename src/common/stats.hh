/**
 * @file
 * A small statistics package in the spirit of the gem5 stats framework.
 *
 * Components declare named statistics inside a StatGroup; the group can
 * be reset between measurement phases (warm-up vs measured region) and
 * dumped as text.  Only the stat kinds this project needs are provided:
 * scalar counters, averages, distributions, and derived formulas
 * evaluated at dump/query time.
 */

#ifndef FBDP_COMMON_STATS_HH
#define FBDP_COMMON_STATS_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

namespace fbdp {
namespace stats {

/** Base class for every statistic. */
class Stat
{
  public:
    Stat(std::string stat_name, std::string stat_desc)
        : _name(std::move(stat_name)), _desc(std::move(stat_desc))
    {}
    virtual ~Stat() = default;

    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }

    /** Reset to the zero state. */
    virtual void reset() = 0;

    /** Print "name value # desc" lines to @p os. */
    virtual void print(std::ostream &os) const = 0;

    /**
     * Print the value as a single JSON value (a number for scalars
     * and formulas, a summary object for averages and histograms).
     * Non-finite values render as null, keeping the output valid
     * JSON.
     */
    virtual void printJson(std::ostream &os) const = 0;

  private:
    std::string _name;
    std::string _desc;
};

/** Write @p v as a JSON number, or null when not finite. */
void printJsonNumber(std::ostream &os, double v);

/** Monotonic (or at least additive) scalar counter. */
class Scalar : public Stat
{
  public:
    using Stat::Stat;

    Scalar &operator+=(double v) { sum += v; return *this; }
    Scalar &operator++() { sum += 1.0; return *this; }

    double value() const { return sum; }
    void set(double v) { sum = v; }

    void reset() override { sum = 0.0; }
    void print(std::ostream &os) const override;
    void printJson(std::ostream &os) const override;

  private:
    double sum = 0.0;
};

/** Mean of sampled values (e.g. observed memory latency). */
class Average : public Stat
{
  public:
    using Stat::Stat;

    void
    sample(double v)
    {
        sum += v;
        ++count;
    }

    double mean() const { return count ? sum / count : 0.0; }
    std::uint64_t samples() const { return count; }
    double total() const { return sum; }

    void reset() override { sum = 0.0; count = 0; }
    void print(std::ostream &os) const override;
    void printJson(std::ostream &os) const override;

  private:
    double sum = 0.0;
    std::uint64_t count = 0;
};

/** Fixed-bucket histogram for distribution-shaped stats. */
class Histogram : public Stat
{
  public:
    /** Geometry must be non-degenerate: at least one bucket and a
     *  positive-width [lo, hi) range (asserted). */
    Histogram(std::string stat_name, std::string stat_desc,
              double bucket_lo, double bucket_hi, unsigned n_buckets);

    void sample(double v);

    std::uint64_t underflows() const { return under; }
    std::uint64_t overflows() const { return over; }
    std::uint64_t bucket(unsigned i) const { return buckets.at(i); }
    unsigned numBuckets() const
    {
        return static_cast<unsigned>(buckets.size());
    }
    std::uint64_t samples() const { return count; }
    double mean() const { return count ? sum / count : 0.0; }
    double low() const { return lo; }
    double high() const { return hi; }

    /**
     * Interpolated p-quantile (p in [0, 1]) of the sampled
     * distribution.  The target rank is located in the cumulative
     * bucket counts and the value is interpolated linearly within the
     * containing bucket, so quantiles move smoothly rather than
     * jumping from bucket edge to bucket edge.  Underflows resolve to
     * the low bound and overflows to the high bound.
     *
     * Edge cases are pinned down: an empty histogram reports 0 for
     * every p; p == 0 reports the low edge of the first populated
     * bucket (not the histogram's lower bound), so a distribution
     * concentrated in one bucket yields that bucket's own [low, high)
     * range across p instead of interpolating against the empty span
     * below it.
     */
    double quantile(double p) const;

    /** Accumulate @p other's samples (geometries must match). */
    void merge(const Histogram &other);

    void reset() override;
    void print(std::ostream &os) const override;
    void printJson(std::ostream &os) const override;

  private:
    double lo;
    double hi;
    std::vector<std::uint64_t> buckets;
    std::uint64_t under = 0;
    std::uint64_t over = 0;
    std::uint64_t count = 0;
    double sum = 0.0;
};

/** Derived statistic evaluated lazily from a lambda. */
class Formula : public Stat
{
  public:
    Formula(std::string stat_name, std::string stat_desc,
            std::function<double()> fn)
        : Stat(std::move(stat_name), std::move(stat_desc)),
          eval(std::move(fn))
    {}

    double value() const { return eval ? eval() : 0.0; }

    void reset() override {}
    void print(std::ostream &os) const override;
    void printJson(std::ostream &os) const override;

  private:
    std::function<double()> eval;
};

/**
 * Container tying a set of stats to a component.  The group does not
 * own registered stats; components declare them as members and register
 * in their constructors, which keeps access free of indirection.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string group_name)
        : _name(std::move(group_name))
    {}

    void registerStat(Stat *s) { statList.push_back(s); }

    void resetAll();
    void printAll(std::ostream &os) const;

    /** Registered stat with @p stat_name, or nullptr. */
    Stat *find(const std::string &stat_name) const;

    const std::string &name() const { return _name; }
    const std::vector<Stat *> &all() const { return statList; }

  private:
    std::string _name;
    std::vector<Stat *> statList;
};

} // namespace stats
} // namespace fbdp

#endif // FBDP_COMMON_STATS_HH
