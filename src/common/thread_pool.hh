/**
 * @file
 * A small fixed-size worker pool for embarrassingly parallel batch
 * work (independent simulator runs).
 *
 * Design constraints, in order:
 *   - determinism at the call site: submit() returns a std::future, so
 *     the caller collects results in whatever order it likes (the
 *     Sweep engine collects in submission order, which is what makes
 *     parallel CSV output byte-identical to the serial run);
 *   - exception propagation: a task that throws stores the exception
 *     in its future and the pool keeps running;
 *   - no global state: each pool owns its threads and queue, and
 *     joins them in the destructor.
 *
 * This is intentionally not a work-stealing scheduler; sweep cells are
 * seconds-long simulations, so a single locked queue is nowhere near
 * contention.
 */

#ifndef FBDP_COMMON_THREAD_POOL_HH
#define FBDP_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace fbdp {

/** Fixed set of worker threads draining one task queue. */
class ThreadPool
{
  public:
    /** Spawn @p n workers (clamped to at least one). */
    explicit ThreadPool(unsigned n)
    {
        if (n < 1)
            n = 1;
        workers.reserve(n);
        for (unsigned i = 0; i < n; ++i)
            workers.emplace_back([this] { workerLoop(); });
    }

    /** Drains the queue, then joins every worker. */
    ~ThreadPool()
    {
        {
            std::lock_guard<std::mutex> lk(mtx);
            stopping = true;
        }
        cv.notify_all();
        for (auto &w : workers)
            w.join();
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueue @p fn; the returned future yields its result or
     * rethrows whatever it threw.
     */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        // packaged_task is move-only but std::function wants copyable
        // targets, hence the shared_ptr indirection.
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> fut = task->get_future();
        {
            std::lock_guard<std::mutex> lk(mtx);
            queue.push([task] { (*task)(); });
        }
        cv.notify_one();
        return fut;
    }

    /** Number of worker threads. */
    unsigned
    size() const
    {
        return static_cast<unsigned>(workers.size());
    }

  private:
    void
    workerLoop()
    {
        for (;;) {
            std::function<void()> task;
            {
                std::unique_lock<std::mutex> lk(mtx);
                cv.wait(lk,
                        [this] { return stopping || !queue.empty(); });
                if (queue.empty())
                    return; // stopping and drained
                task = std::move(queue.front());
                queue.pop();
            }
            task(); // packaged_task captures exceptions itself
        }
    }

    std::mutex mtx;
    std::condition_variable cv;
    std::queue<std::function<void()>> queue;
    std::vector<std::thread> workers;
    bool stopping = false;
};

} // namespace fbdp

#endif // FBDP_COMMON_THREAD_POOL_HH
