/**
 * @file
 * A small fixed-size worker pool for embarrassingly parallel batch
 * work (independent simulator runs).
 *
 * Design constraints, in order:
 *   - determinism at the call site: submit() returns a std::future, so
 *     the caller collects results in whatever order it likes (the
 *     Sweep engine collects in submission order, which is what makes
 *     parallel CSV output byte-identical to the serial run);
 *   - exception propagation: a task that throws stores the exception
 *     in its future and the pool keeps running;
 *   - no global state: each pool owns its threads and queue, and
 *     joins them in the destructor.
 *
 * This is intentionally not a work-stealing scheduler; sweep cells are
 * seconds-long simulations, so a single locked queue is nowhere near
 * contention.
 */

#ifndef FBDP_COMMON_THREAD_POOL_HH
#define FBDP_COMMON_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace fbdp {

/**
 * Reusable generation-counting barrier for tightly coupled phase
 * loops (the sharded event kernel synchronizes every lane at each
 * memory-cycle frame boundary, thousands of times per simulated
 * microsecond).
 *
 * arriveAndWait() spins briefly (frames are short, the other lanes are
 * usually microseconds away), yields, then falls back to the C++20
 * atomic wait so oversubscribed hosts — including single-CPU CI boxes
 * — make progress instead of burning the timeslice.  The last lane to
 * arrive runs an optional hook *alone*, before releasing the others:
 * the natural place for cross-lane work like the round-termination
 * check.
 */
class SpinBarrier
{
  public:
    /** @p n participating threads (>= 1). */
    explicit SpinBarrier(unsigned n) : count(n < 1 ? 1 : n) {}

    SpinBarrier(const SpinBarrier &) = delete;
    SpinBarrier &operator=(const SpinBarrier &) = delete;

    /**
     * How one arriveAndWait() call was released — which rung of the
     * spin / yield / sleep ladder the caller reached before the round
     * opened.  Last means this caller was the final arriver (and ran
     * the hook); the others grade how long it waited: Spin is a
     * near-simultaneous arrival, Sleep means the thread gave up its
     * timeslice.  The kernel profiler counts these per lane to tell
     * "lanes finish together" from "one lane drags the round".
     */
    enum class Release : std::uint8_t { Last, Spin, Yield, Sleep };

    /**
     * Block until all @p count threads have arrived.  The last
     * arriver runs @p on_last (if any) while every other thread is
     * still parked, then releases them.  Exceptions from @p on_last
     * propagate to the last arriver only — after the release, so the
     * barrier stays usable.  @return how this caller was released.
     */
    template <typename F = void (*)()>
    Release
    arriveAndWait(F &&on_last = nullptr)
    {
        const std::uint32_t gen = generation.load(std::memory_order_acquire);
        if (arrived.fetch_add(1, std::memory_order_acq_rel) + 1 == count) {
            bool hook_threw = false;
            std::exception_ptr eptr;
            if constexpr (!std::is_same_v<std::decay_t<F>, void (*)()>) {
                try {
                    on_last();
                } catch (...) {
                    hook_threw = true;
                    eptr = std::current_exception();
                }
            } else {
                if (on_last) {
                    try {
                        on_last();
                    } catch (...) {
                        hook_threw = true;
                        eptr = std::current_exception();
                    }
                }
            }
            // Reset before bumping the generation: a released waiter
            // may re-arrive immediately.
            arrived.store(0, std::memory_order_relaxed);
            generation.fetch_add(1, std::memory_order_release);
            generation.notify_all();
            if (hook_threw)
                std::rethrow_exception(eptr);
            return Release::Last;
        }
        // Bounded spin, then yield, then sleep on the generation word.
        for (int i = 0; i < 1024; ++i) {
            if (generation.load(std::memory_order_acquire) != gen)
                return Release::Spin;
        }
        for (int i = 0; i < 64; ++i) {
            std::this_thread::yield();
            if (generation.load(std::memory_order_acquire) != gen)
                return Release::Yield;
        }
        while (generation.load(std::memory_order_acquire) == gen)
            generation.wait(gen, std::memory_order_acquire);
        return Release::Sleep;
    }

    /** Completed barrier rounds. */
    std::uint32_t rounds() const
    {
        return generation.load(std::memory_order_acquire);
    }

    unsigned participants() const { return count; }

  private:
    const unsigned count;
    std::atomic<std::uint32_t> arrived{0};
    std::atomic<std::uint32_t> generation{0};
};

/** Fixed set of worker threads draining one task queue. */
class ThreadPool
{
  public:
    /** Spawn @p n workers (clamped to at least one). */
    explicit ThreadPool(unsigned n)
    {
        if (n < 1)
            n = 1;
        workers.reserve(n);
        for (unsigned i = 0; i < n; ++i)
            workers.emplace_back([this] { workerLoop(); });
    }

    /** Drains the queue, then joins every worker. */
    ~ThreadPool()
    {
        {
            std::lock_guard<std::mutex> lk(mtx);
            stopping = true;
        }
        cv.notify_all();
        for (auto &w : workers)
            w.join();
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueue @p fn; the returned future yields its result or
     * rethrows whatever it threw.
     */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        // packaged_task is move-only but std::function wants copyable
        // targets, hence the shared_ptr indirection.
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> fut = task->get_future();
        {
            std::lock_guard<std::mutex> lk(mtx);
            queue.push([task] { (*task)(); });
        }
        cv.notify_one();
        return fut;
    }

    /** Number of worker threads. */
    unsigned
    size() const
    {
        return static_cast<unsigned>(workers.size());
    }

  private:
    void
    workerLoop()
    {
        for (;;) {
            std::function<void()> task;
            {
                std::unique_lock<std::mutex> lk(mtx);
                cv.wait(lk,
                        [this] { return stopping || !queue.empty(); });
                if (queue.empty())
                    return; // stopping and drained
                task = std::move(queue.front());
                queue.pop();
            }
            task(); // packaged_task captures exceptions itself
        }
    }

    std::mutex mtx;
    std::condition_variable cv;
    std::queue<std::function<void()>> queue;
    std::vector<std::thread> workers;
    bool stopping = false;
};

} // namespace fbdp

#endif // FBDP_COMMON_THREAD_POOL_HH
