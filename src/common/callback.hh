/**
 * @file
 * A lightweight inline callback for the simulator's hot paths.
 *
 * InlineCallback is the transaction-path counterpart of the Event
 * callback: a few captured words stored inline plus a trampoline
 * function pointer.  Unlike std::function it has no manager, never
 * allocates, and is trivially copyable — so vectors of waiters and
 * pooled transactions move callbacks with plain memcpy instead of a
 * type-erased manager call per element.  Construction is a store of
 * the capture plus one pointer; invocation is one indirect call.
 *
 * Callables must be trivially copyable and fit the inline storage
 * (capture raw pointers and scalars, not owning objects) — enforced
 * at compile time.
 */

#ifndef FBDP_COMMON_CALLBACK_HH
#define FBDP_COMMON_CALLBACK_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "common/types.hh"

namespace fbdp {

/** Inline, allocation-free `void(Args...)` callback. */
template <typename... Args>
class InlineCallback
{
  public:
    /** Inline capture storage, sized for a few pointers. */
    static constexpr std::size_t capacity = 24;

    InlineCallback() = default;
    InlineCallback(std::nullptr_t) {}  // NOLINT: implicit, like function

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineCallback>
                  && !std::is_same_v<std::decay_t<F>, std::nullptr_t>>>
    InlineCallback(F f)  // NOLINT: implicit by design
    {
        using Fn = std::decay_t<F>;
        static_assert(sizeof(Fn) <= capacity,
                      "callback too large for inline storage");
        static_assert(alignof(Fn) <= alignof(std::max_align_t),
                      "callback over-aligned");
        static_assert(std::is_trivially_copyable_v<Fn>
                          && std::is_trivially_destructible_v<Fn>,
                      "callbacks must be trivially copyable (capture "
                      "raw pointers/references, not owning objects)");
        new (store) Fn(std::move(f));
        tramp = [](void *ctx, Args... a) {
            (*std::launder(reinterpret_cast<Fn *>(ctx)))(
                std::forward<Args>(a)...);
        };
    }

    explicit operator bool() const { return tramp != nullptr; }

    void
    operator()(Args... args) const
    {
        tramp(const_cast<unsigned char *>(store),
              std::forward<Args>(args)...);
    }

  private:
    alignas(std::max_align_t) unsigned char store[capacity];
    void (*tramp)(void *, Args...) = nullptr;
};

/** Completion callback carrying the completion tick. */
using TickCallback = InlineCallback<Tick>;

} // namespace fbdp

#endif // FBDP_COMMON_CALLBACK_HH
