/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * A small xorshift64* generator: fast, seedable, and completely
 * reproducible across platforms, which matters because the synthetic
 * SPEC2000 traces must be identical from run to run so that
 * configuration comparisons (DDR2 vs FB-DIMM vs FBD-AP) see exactly the
 * same access stream.
 */

#ifndef FBDP_COMMON_RANDOM_HH
#define FBDP_COMMON_RANDOM_HH

#include <cstdint>

namespace fbdp {

/** xorshift64* PRNG. Never returns the same sequence for two seeds. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
        : state(seed ? seed : 0x9e3779b97f4a7c15ULL)
    {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        return state * 0x2545f4914f6cdd1dULL;
    }

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11)
            * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli draw with probability @p p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /**
     * Geometric-ish draw with the given mean, always at least
     * @p least. Used to space memory operations along the
     * instruction stream.
     */
    std::uint64_t
    geometric(double mean, std::uint64_t least = 0)
    {
        if (mean <= 0)
            return least;
        double u = uniform();
        // Inverse CDF of the geometric distribution.
        double val = -mean * logApprox(1.0 - u);
        auto v = static_cast<std::uint64_t>(val);
        return v < least ? least : v;
    }

  private:
    /** Cheap natural log; accurate enough for trace spacing. */
    static double
    logApprox(double x)
    {
        // ln(x) via frexp-style decomposition would pull in <cmath>;
        // we accept it here — precision is irrelevant for synthesis.
        if (x <= 0)
            return -40.0;
        double sum = 0.0;
        while (x < 0.5) {
            x *= 2.0;
            sum -= 0.6931471805599453;
        }
        while (x > 1.0) {
            x *= 0.5;
            sum += 0.6931471805599453;
        }
        // ln(x) for x in (0.5, 1]: use atanh series around 1.
        double y = (x - 1.0) / (x + 1.0);
        double y2 = y * y;
        double term = y;
        double acc = 0.0;
        for (int k = 1; k <= 9; k += 2) {
            acc += term / k;
            term *= y2;
        }
        return sum + 2.0 * acc;
    }

    std::uint64_t state;
};

} // namespace fbdp

#endif // FBDP_COMMON_RANDOM_HH
