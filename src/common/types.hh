/**
 * @file
 * Fundamental scalar types and unit helpers shared by every fbdp module.
 *
 * The whole simulator runs on a single integer time base of one
 * picosecond per tick.  All clocks used by the reproduced system (the
 * 4 GHz processor and the 267/333/400 MHz DDR2 memory clocks) are exact
 * multiples of 1 ps, so clock-domain crossings never need rounding.
 */

#ifndef FBDP_COMMON_TYPES_HH
#define FBDP_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace fbdp {

/** Simulation time in picoseconds. */
using Tick = std::uint64_t;

/** Physical memory address in bytes. */
using Addr = std::uint64_t;

/** Sentinel for "no tick" / "never". */
constexpr Tick maxTick = std::numeric_limits<Tick>::max();

/** Ticks per nanosecond (1 tick == 1 ps). */
constexpr Tick ticksPerNs = 1000;

/** Convert a duration in nanoseconds to ticks. */
constexpr Tick
nsToTicks(double ns)
{
    return static_cast<Tick>(ns * static_cast<double>(ticksPerNs) + 0.5);
}

/** Convert ticks to (floating point) nanoseconds. */
constexpr double
ticksToNs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(ticksPerNs);
}

/** Processor clock: 4 GHz, i.e. 250 ps per cycle. */
constexpr Tick cpuCyclePs = 250;

/** Cacheline (memory block) size used throughout the paper: 64 bytes. */
constexpr unsigned lineBytes = 64;

/** log2(lineBytes), for address arithmetic. */
constexpr unsigned lineShift = 6;

/** Round an address down to its cacheline base. */
constexpr Addr
lineAlign(Addr a)
{
    return a & ~static_cast<Addr>(lineBytes - 1);
}

/** Cacheline index of an address. */
constexpr Addr
lineIndex(Addr a)
{
    return a >> lineShift;
}

/** True iff @p v is a power of two (and non-zero). */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Integer log2 for powers of two. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    unsigned l = 0;
    while (v > 1) {
        v >>= 1;
        ++l;
    }
    return l;
}

} // namespace fbdp

#endif // FBDP_COMMON_TYPES_HH
