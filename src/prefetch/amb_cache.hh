/**
 * @file
 * The AMB cache: the small SRAM prefetch buffer attached to each
 * Advanced Memory Buffer (the paper's core hardware addition).
 *
 * The data array lives on the AMB; the tag-and-status array is held by
 * the memory controller in its prefetch information table.  Because the
 * controller's mirror is authoritative for scheduling, a single model
 * class serves both roles.
 *
 * Organisation: @p entries cachelines of 64 bytes, set-associative with
 * a FIFO replacement policy inside each set.  The paper rejects LRU
 * because a block that just hit is now held by the processor caches and
 * will not be re-referenced soon; FIFO retires the oldest prefetch
 * regardless of use.  Fully associative (the default) is a single set.
 *
 * Each line carries a @c readyAt tick: a prefetch is visible in the tag
 * array from the moment its group fetch is queued, but its data only
 * reaches the SRAM when the pipelined column access completes.  A
 * demand hit on an in-flight line waits for @c readyAt, not for a full
 * DRAM access.
 */

#ifndef FBDP_PREFETCH_AMB_CACHE_HH
#define FBDP_PREFETCH_AMB_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace fbdp {

/** Prefetch buffer of one AMB (tags mirrored at the controller). */
class AmbCache
{
  public:
    /** Sentinel readyAt for "fill not yet scheduled". */
    static constexpr Tick fillPending = maxTick;

    struct Line
    {
        Addr lineAddr = 0;      ///< line-aligned physical address
        Tick readyAt = 0;       ///< data present in the SRAM from here
        bool valid = false;
        bool used = false;      ///< serviced at least one demand read
        std::uint64_t fifoSeq = 0;
    };

    /** What insertIfAbsent() displaced, for pollution accounting and
     *  policy on-evict training. */
    struct Evicted
    {
        Addr lineAddr = 0;
        bool used = false;
        bool valid = false;  ///< false: nothing was displaced
    };

    /**
     * @param entries total number of 64 B lines (32/64/128 in the
     *                paper's sweeps)
     * @param ways    set associativity; 0 means fully associative
     */
    AmbCache(unsigned entries, unsigned ways);

    /** Find a valid line. @return nullptr on miss. */
    Line *lookup(Addr line_addr);
    const Line *lookup(Addr line_addr) const;

    /**
     * Insert a line (FIFO-evicting inside its set if needed).  An
     * existing entry for the same address is refreshed in place.
     * @return the inserted line.
     */
    Line *insert(Addr line_addr, Tick ready_at);

    /**
     * Insert only when absent: a resident entry keeps its FIFO age
     * and readiness (true FIFO retires by first insertion).  Single
     * set scan — the group-fetch hot path.  When a valid victim is
     * displaced and @p evicted is non-null, its identity and used
     * bit are reported there.
     * @return the resident or inserted line.
     */
    Line *insertIfAbsent(Addr line_addr, Tick ready_at,
                         Evicted *evicted = nullptr);

    /** Drop a line if present. @return true if something was dropped;
     *  @p was_used (optional) reports the dropped line's used bit. */
    bool invalidate(Addr line_addr, bool *was_used = nullptr);

    /** Invalidate everything. */
    void reset();

    unsigned entries() const { return nEntries; }
    unsigned ways() const { return nWays; }
    unsigned sets() const { return nSets; }

    /** Number of currently valid lines (for tests). */
    unsigned population() const;

    std::uint64_t insertions() const { return nInsertions; }
    std::uint64_t evictions() const { return nEvictions; }

  private:
    unsigned setOf(Addr line_addr) const;

    unsigned nEntries;
    unsigned nWays;
    unsigned nSets;
    unsigned setMask = 0;  ///< nSets - 1 when nSets is a power of two
    std::uint64_t nextSeq = 0;

    std::uint64_t nInsertions = 0;
    std::uint64_t nEvictions = 0;

    std::vector<Line> lines;  ///< nSets x nWays, set-major
};

} // namespace fbdp

#endif // FBDP_PREFETCH_AMB_CACHE_HH
