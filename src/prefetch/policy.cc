/**
 * @file
 * PolicyRegistry: the string-keyed factory table behind --amb-policy
 * and --mc-policy.
 */

#include "prefetch/policy.hh"

#include <algorithm>

#include "common/logging.hh"
#include "prefetch/dspatch_policy.hh"
#include "prefetch/indram_policy.hh"
#include "prefetch/region_policy.hh"

namespace fbdp {

namespace {

/** The degenerate policy: trains on nothing, emits nothing. */
class NonePolicy : public PrefetchPolicy
{
  public:
    using PrefetchPolicy::PrefetchPolicy;

    const char *name() const override { return "none"; }

    void
    onMiss(const PrefetchAccess &, CandidateList &) override
    {
    }

  protected:
    unsigned defaultDegree() const override { return 0; }
};

template <class P>
PolicyFactory
factoryOf()
{
    return [](const PolicyParams &prm) -> std::unique_ptr<PrefetchPolicy> {
        return std::make_unique<P>(prm);
    };
}

} // namespace

PolicyRegistry::PolicyRegistry()
{
    // Built-ins registered eagerly so names() is complete from the
    // first call; external policies come in through add().
    add("none", factoryOf<NonePolicy>());
    add("region", factoryOf<RegionPolicy>());
    add("dspatch", factoryOf<DSPatchPolicy>());
    add("indram", factoryOf<InDramPolicy>());
}

PolicyRegistry &
PolicyRegistry::instance()
{
    static PolicyRegistry reg;
    return reg;
}

void
PolicyRegistry::add(const std::string &name, PolicyFactory factory)
{
    if (has(name))
        fatal("duplicate prefetch policy '%s'", name.c_str());
    entries.push_back({name, std::move(factory)});
}

bool
PolicyRegistry::has(const std::string &name) const
{
    for (const auto &e : entries)
        if (e.name == name)
            return true;
    return false;
}

std::unique_ptr<PrefetchPolicy>
PolicyRegistry::make(const std::string &name,
                     const PolicyParams &params) const
{
    for (const auto &e : entries)
        if (e.name == name)
            return e.factory(params);

    std::string known;
    for (const auto &e : entries) {
        if (!known.empty())
            known += ", ";
        known += e.name;
    }
    fatal("unknown prefetch policy '%s' (registered: %s)",
          name.c_str(), known.c_str());
    return nullptr;
}

std::vector<std::string>
PolicyRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(entries.size());
    for (const auto &e : entries)
        out.push_back(e.name);
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace fbdp
