/**
 * @file
 * DSPatchPolicy implementation.  Everything is fixed-size and
 * deterministic: direct-mapped pattern table, FIFO region tracker, no
 * randomness — identical hook sequences give identical predictions.
 */

#include "prefetch/dspatch_policy.hh"

namespace fbdp {

DSPatchPolicy::DSPatchPolicy(const PolicyParams &params)
    : PrefetchPolicy(params)
{
}

void
DSPatchPolicy::reset()
{
    for (auto &p : patterns)
        p = PatternEntry{};
    for (auto &t : tracker)
        t = TrackerEntry{};
    nextSeq = 0;
    nCovMode = 0;
    nAccMode = 0;
}

std::uint32_t
DSPatchPolicy::signatureOf(const PrefetchAccess &access) const
{
    // No PC at the memory controller: approximate DSPatch's
    // PC+offset signature with core x trigger-offset, the two access
    // properties that survive to this level.
    const std::uint32_t off = static_cast<std::uint32_t>(
        (access.lineAddr - access.regionBase) / lineBytes);
    const std::uint32_t core =
        static_cast<std::uint32_t>(access.coreId < 0 ? 0
                                                     : access.coreId);
    return core * 31u + off;
}

void
DSPatchPolicy::commit(TrackerEntry &te)
{
    if (!te.valid || te.bits == 0)
        return;
    PatternEntry &pe = patterns[te.sig % patternEntries];
    if (pe.sig != te.sig || !pe.trained) {
        // New (or conflicting) signature: both patterns start from
        // this footprint.
        pe.sig = te.sig;
        pe.covPattern = te.bits;
        pe.accPattern = te.bits;
        pe.trained = true;
    } else {
        pe.covPattern |= te.bits;   // anything ever touched
        pe.accPattern &= te.bits;   // only what is always touched
    }
    te.valid = false;
}

void
DSPatchPolicy::observe(const PrefetchAccess &access)
{
    const unsigned off = static_cast<unsigned>(
        (access.lineAddr - access.regionBase) / lineBytes);
    const std::uint16_t bit =
        static_cast<std::uint16_t>(1u << (off & 15u));

    // Already tracking this region?  Accumulate and return.
    for (auto &te : tracker) {
        if (te.valid && te.regionBase == access.regionBase) {
            te.bits |= bit;
            return;
        }
    }

    // New region: evict the oldest tracker entry into the pattern
    // table (its footprint is complete as far as we can tell) and
    // start tracking with this access as the trigger.
    TrackerEntry *victim = nullptr;
    for (auto &te : tracker) {
        if (!te.valid) {
            victim = &te;
            break;
        }
        if (!victim || te.fifoSeq < victim->fifoSeq)
            victim = &te;
    }
    commit(*victim);
    victim->regionBase = access.regionBase;
    victim->sig = signatureOf(access);
    victim->bits = bit;
    victim->fifoSeq = nextSeq++;
    victim->valid = true;
}

void
DSPatchPolicy::predict(const PrefetchAccess &access, CandidateList &out)
{
    const unsigned k = access.regionLines;
    const unsigned demand_off = static_cast<unsigned>(
        (access.lineAddr - access.regionBase) / lineBytes);

    const std::uint32_t sig = signatureOf(access);
    const PatternEntry &pe = patterns[sig % patternEntries];

    std::uint16_t bits = 0;
    if (pe.trained && pe.sig == sig) {
        const bool congested = access.linkUtil >= accuracyModeUtil;
        bits = congested ? pe.accPattern : pe.covPattern;
        if (congested)
            ++nAccMode;
        else
            ++nCovMode;
    } else {
        // Untrained: next line inside the region.
        if (demand_off + 1 < k)
            bits = static_cast<std::uint16_t>(1u << (demand_off + 1));
        ++nCovMode;
    }

    for (unsigned off = 0; off < k && off < 16; ++off) {
        if (off == demand_off || !(bits & (1u << off)))
            continue;
        out.add(access.regionBase +
                static_cast<Addr>(off) * lineBytes);
    }
}

void
DSPatchPolicy::onMiss(const PrefetchAccess &access, CandidateList &out)
{
    observe(access);
    predict(access, out);
}

void
DSPatchPolicy::onHit(const PrefetchAccess &access)
{
    // Hits are part of the program's footprint too; without them the
    // accuracy pattern would decay to just the trigger line.
    observe(access);
}

void
DSPatchPolicy::onConvert(const PrefetchAccess &access, CandidateList &out)
{
    // Re-issue after a lost in-flight hit: predict again but do not
    // re-observe — the access was already trained via onHit().
    predict(access, out);
}

} // namespace fbdp
