/**
 * @file
 * InDramPolicy implementation: per-DIMM stride detection over line
 * indices, next-line fallback, region-clamped emission.
 */

#include "prefetch/indram_policy.hh"

namespace fbdp {

InDramPolicy::InDramPolicy(const PolicyParams &params)
    : PrefetchPolicy(params),
      dimms(params.nDimms ? params.nDimms : 1)
{
}

unsigned
InDramPolicy::defaultDegree() const
{
    // The paper's in-DRAM prefetcher is shallow: it fills the row
    // buffer's immediate neighbourhood, not the whole region.
    const unsigned k1 = prm.regionLines > 1 ? prm.regionLines - 1 : 0;
    return k1 < 2 ? k1 : 2;
}

void
InDramPolicy::reset()
{
    for (auto &d : dimms)
        d = DimmState{};
}

void
InDramPolicy::train(const PrefetchAccess &access)
{
    DimmState &d = dimms[access.dimm % dimms.size()];
    const Addr line = lineIndex(access.lineAddr);
    if (d.primed) {
        const std::int64_t delta =
            static_cast<std::int64_t>(line) -
            static_cast<std::int64_t>(d.lastLine);
        if (delta != 0 && delta == d.stride) {
            if (d.confidence < confThreshold)
                ++d.confidence;
        } else {
            d.stride = delta;
            d.confidence = delta != 0 ? 1 : 0;
        }
    }
    d.lastLine = line;
    d.primed = true;
}

void
InDramPolicy::predict(const PrefetchAccess &access, CandidateList &out)
{
    const DimmState &d = dimms[access.dimm % dimms.size()];
    const Addr region_end =
        access.regionBase +
        static_cast<Addr>(access.regionLines) * lineBytes;
    const unsigned deg = degree();

    const std::int64_t step =
        (d.confidence >= confThreshold && d.stride != 0) ? d.stride : 1;

    Addr line = lineIndex(access.lineAddr);
    for (unsigned i = 0; i < deg; ++i) {
        const std::int64_t next =
            static_cast<std::int64_t>(line) + step;
        if (next < 0)
            break;
        const Addr la = static_cast<Addr>(next) * lineBytes;
        // Clamp to the demand's region: a group fetch cannot reach
        // across an activation boundary.
        if (la < access.regionBase || la >= region_end)
            break;
        out.add(la);
        line = static_cast<Addr>(next);
    }
}

void
InDramPolicy::onMiss(const PrefetchAccess &access, CandidateList &out)
{
    train(access);
    predict(access, out);
}

void
InDramPolicy::onHit(const PrefetchAccess &access)
{
    // The DIMM sees the access stream whether or not the buffer
    // serviced it; hits keep the stride detector in sync.
    train(access);
}

void
InDramPolicy::onConvert(const PrefetchAccess &access, CandidateList &out)
{
    predict(access, out);
}

} // namespace fbdp
