#include "prefetch/prefetch_table.hh"

#include "common/logging.hh"

namespace fbdp {

PrefetchTable::PrefetchTable(unsigned n_dimms, unsigned entries,
                             unsigned ways)
{
    fbdp_assert(n_dimms >= 1, "prefetch table needs >= 1 DIMM");
    caches.reserve(n_dimms);
    for (unsigned i = 0; i < n_dimms; ++i)
        caches.emplace_back(entries, ways);
}

AmbCache::Line *
PrefetchTable::lookupRead(unsigned dimm_idx, Addr line_addr)
{
    AmbCache::Line *l = caches.at(dimm_idx).lookup(line_addr);
    if (l)
        ++nHits;
    return l;
}

void
PrefetchTable::insertGroup(unsigned dimm_idx, Addr region_base,
                           unsigned region_lines, Addr demanded)
{
    for (unsigned i = 0; i < region_lines; ++i) {
        Addr la = region_base + static_cast<Addr>(i) * lineBytes;
        if (la == demanded)
            continue;
        insertCandidate(dimm_idx, la);
    }
}

void
PrefetchTable::insertCandidate(unsigned dimm_idx, Addr line_addr,
                               AmbCache::Evicted *evicted)
{
    // A line that is already resident keeps its FIFO age; true FIFO
    // retires by first insertion, not by re-fetch.
    AmbCache::Evicted ev;
    caches.at(dimm_idx).insertIfAbsent(line_addr,
                                       AmbCache::fillPending, &ev);
    ++nPrefetches;
    if (ev.valid && !ev.used)
        ++nEvictedUnused;
    if (evicted)
        *evicted = ev;
}

void
PrefetchTable::resolveFill(unsigned dimm_idx, Addr line_addr,
                           Tick ready_at)
{
    if (AmbCache::Line *l = caches.at(dimm_idx).lookup(line_addr))
        l->readyAt = ready_at;
    // An already evicted line simply loses its fill; harmless.
}

bool
PrefetchTable::invalidate(unsigned dimm_idx, Addr line_addr,
                          bool *was_used)
{
    bool used = false;
    if (!caches.at(dimm_idx).invalidate(line_addr, &used))
        return false;
    ++nWriteInval;
    if (!used)
        ++nInvalUnused;
    if (was_used)
        *was_used = used;
    return true;
}

void
PrefetchTable::reset()
{
    for (auto &c : caches)
        c.reset();
    resetStats();
}

void
PrefetchTable::resetStats()
{
    nReads = 0;
    nHits = 0;
    nPrefetches = 0;
    nWriteInval = 0;
    nLateHits = 0;
    nDropped = 0;
    nEvictedUnused = 0;
    nInvalUnused = 0;
}

} // namespace fbdp
