/**
 * @file
 * The prefetch information table held at the memory controller.
 *
 * One AmbCache tag mirror per DIMM of the channel, plus the prefetch
 * accounting the paper reports: coverage (#prefetch_hit / #read) and
 * efficiency (#prefetch_hit / #prefetch).  Only the K-1 non-demanded
 * lines of a group count as prefetches; the demanded line goes straight
 * to the processor and is not retained.
 */

#ifndef FBDP_PREFETCH_PREFETCH_TABLE_HH
#define FBDP_PREFETCH_PREFETCH_TABLE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "prefetch/amb_cache.hh"

namespace fbdp {

/** Controller-side view of all AMB caches on one channel. */
class PrefetchTable
{
  public:
    /**
     * @param n_dimms  DIMMs (hence AMBs) on the channel
     * @param entries  lines per AMB cache
     * @param ways     associativity; 0 = fully associative
     */
    PrefetchTable(unsigned n_dimms, unsigned entries, unsigned ways);

    AmbCache &dimm(unsigned i) { return caches.at(i); }
    const AmbCache &dimm(unsigned i) const { return caches.at(i); }
    unsigned numDimms() const
    {
        return static_cast<unsigned>(caches.size());
    }

    /**
     * Demand-read lookup; bumps the hit counter when found.
     * @return the line (possibly still in flight) or nullptr.
     */
    AmbCache::Line *lookupRead(unsigned dimm_idx, Addr line_addr);

    /** Re-check a previously hit line without double counting. */
    AmbCache::Line *
    peek(unsigned dimm_idx, Addr line_addr)
    {
        return caches.at(dimm_idx).lookup(line_addr);
    }

    /**
     * Record the K-1 prefetched lines of a region fetch whose demanded
     * line is @p demanded.  Entries become visible immediately with
     * @c fillPending readiness; fills are timed later via
     * resolveFill().
     */
    void insertGroup(unsigned dimm_idx, Addr region_base,
                     unsigned region_lines, Addr demanded);

    /**
     * Record one policy-emitted prefetch candidate (the per-line core
     * of insertGroup): counts a prefetch issue even when the line is
     * already resident — a resident line keeps its FIFO age — and
     * reports a displaced victim through @p evicted so the owning
     * controller can train its policy and account pollution (an
     * unused victim is counted here).
     */
    void insertCandidate(unsigned dimm_idx, Addr line_addr,
                         AmbCache::Evicted *evicted = nullptr);

    /** Set the SRAM arrival time of one previously inserted line. */
    void resolveFill(unsigned dimm_idx, Addr line_addr, Tick ready_at);

    /** A write to @p line_addr invalidates any stale prefetch.
     *  An unused dropped line counts as pollution.
     *  @return true iff a resident line was dropped; @p was_used
     *  (optional) reports its used bit. */
    bool invalidate(unsigned dimm_idx, Addr line_addr,
                    bool *was_used = nullptr);

    /** Count one demand read (the coverage denominator). */
    void countRead() { ++nReads; }

    /** Count one read actually serviced from an AMB cache. */
    void countHit() { ++nHits; }

    /** Count a hit whose fill had not completed when demanded. */
    void countLateHit() { ++nLateHits; }

    /** Count @p n policy candidates the controller refused (out of
     *  region, duplicate, over degree, or throttled). */
    void countDropped(unsigned n = 1) { nDropped += n; }

    std::uint64_t reads() const { return nReads; }
    std::uint64_t prefetchHits() const { return nHits; }

    /** Valid lines across every AMB cache (occupancy telemetry). */
    unsigned
    population() const
    {
        unsigned n = 0;
        for (const AmbCache &c : caches)
            n += c.population();
        return n;
    }

    /** Total line capacity across every AMB cache. */
    unsigned
    capacity() const
    {
        unsigned n = 0;
        for (const AmbCache &c : caches)
            n += c.entries();
        return n;
    }
    std::uint64_t prefetchesIssued() const { return nPrefetches; }
    std::uint64_t writeInvalidations() const { return nWriteInval; }
    std::uint64_t lateHits() const { return nLateHits; }
    std::uint64_t droppedCandidates() const { return nDropped; }

    /** Prefetched lines displaced by capacity pressure before any
     *  demand used them. */
    std::uint64_t evictedUnused() const { return nEvictedUnused; }

    /** Prefetched lines killed by a write before any demand used
     *  them. */
    std::uint64_t invalidatedUnused() const { return nInvalUnused; }

    /** #prefetch_hit / #read. */
    double coverage() const
    {
        return nReads
            ? static_cast<double>(nHits) / static_cast<double>(nReads)
            : 0.0;
    }

    /** #prefetch_hit / #prefetch. */
    double efficiency() const
    {
        return nPrefetches
            ? static_cast<double>(nHits)
                / static_cast<double>(nPrefetches)
            : 0.0;
    }

    /** Late hits / hits: how often a covering prefetch was not yet
     *  in the SRAM when demanded (lower is better). */
    double lateness() const
    {
        return nHits
            ? static_cast<double>(nLateHits)
                / static_cast<double>(nHits)
            : 0.0;
    }

    /** Unused displaced or invalidated lines / prefetches issued. */
    double pollution() const
    {
        return nPrefetches
            ? static_cast<double>(nEvictedUnused + nInvalUnused)
                / static_cast<double>(nPrefetches)
            : 0.0;
    }

    void reset();
    void resetStats();

  private:
    std::vector<AmbCache> caches;

    std::uint64_t nReads = 0;
    std::uint64_t nHits = 0;
    std::uint64_t nPrefetches = 0;
    std::uint64_t nWriteInval = 0;
    std::uint64_t nLateHits = 0;
    std::uint64_t nDropped = 0;
    std::uint64_t nEvictedUnused = 0;
    std::uint64_t nInvalUnused = 0;
};

} // namespace fbdp

#endif // FBDP_PREFETCH_PREFETCH_TABLE_HH
