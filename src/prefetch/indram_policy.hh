/**
 * @file
 * In-DRAM next-line/stride prefetching in the spirit of arxiv
 * 2105.10427: the predictor lives at the DIMM, sees only the stream
 * of demand line addresses arriving there, and prefetches into the
 * DIMM-side buffer.  Modelled as one stride detector per DIMM, with a
 * next-line fallback while confidence is low.  Candidates are clamped
 * to the demand's region (the FB-DIMM group fetch can only widen the
 * in-flight activation, not open new rows).
 */

#ifndef FBDP_PREFETCH_INDRAM_POLICY_HH
#define FBDP_PREFETCH_INDRAM_POLICY_HH

#include <cstdint>
#include <vector>

#include "prefetch/policy.hh"

namespace fbdp {

class InDramPolicy : public PrefetchPolicy
{
  public:
    explicit InDramPolicy(const PolicyParams &params);

    const char *name() const override { return "indram"; }

    void onMiss(const PrefetchAccess &access, CandidateList &out) override;
    void onHit(const PrefetchAccess &access) override;
    void onConvert(const PrefetchAccess &access,
                   CandidateList &out) override;
    void reset() override;

    /** Confidence needed before the stride pattern is trusted. */
    static constexpr int confThreshold = 2;

  private:
    struct DimmState
    {
        Addr lastLine = 0;      ///< last demand line index seen
        std::int64_t stride = 0;///< last observed line-index delta
        int confidence = 0;
        bool primed = false;    ///< lastLine holds a real address
    };

    void train(const PrefetchAccess &access);
    void predict(const PrefetchAccess &access, CandidateList &out);

    std::vector<DimmState> dimms;

  protected:
    unsigned defaultDegree() const override;
};

} // namespace fbdp

#endif // FBDP_PREFETCH_INDRAM_POLICY_HH
