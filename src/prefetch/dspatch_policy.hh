/**
 * @file
 * DSPatch-style dual spatial bit-pattern prefetching (Bera et al.,
 * MICRO 2019, arxiv 1910.03075), adapted to the FB-DIMM group-fetch
 * constraint: predicted lines must share the demand's K-line region
 * so they can ride its activation.
 *
 * Per trigger signature the policy learns TWO bit-patterns over the
 * region's line offsets: a coverage pattern (CovP, OR of every
 * observed program footprint — biased towards catching more hits) and
 * an accuracy pattern (AccP, AND — biased towards wasting no
 * bandwidth).  At prediction time the northbound-link utilisation
 * picks between them: plenty of headroom → CovP, congested → AccP.
 * Untrained signatures fall back to next-line inside the region.
 */

#ifndef FBDP_PREFETCH_DSPATCH_POLICY_HH
#define FBDP_PREFETCH_DSPATCH_POLICY_HH

#include <cstdint>

#include "prefetch/policy.hh"

namespace fbdp {

class DSPatchPolicy : public PrefetchPolicy
{
  public:
    explicit DSPatchPolicy(const PolicyParams &params);

    const char *name() const override { return "dspatch"; }

    void onMiss(const PrefetchAccess &access, CandidateList &out) override;
    void onHit(const PrefetchAccess &access) override;
    void onConvert(const PrefetchAccess &access,
                   CandidateList &out) override;
    void reset() override;

    /** Link utilisation at which prediction switches CovP → AccP. */
    static constexpr double accuracyModeUtil = 0.60;

    /** Predictions made in each mode (telemetry / tests). */
    std::uint64_t coverageModePredictions() const { return nCovMode; }
    std::uint64_t accuracyModePredictions() const { return nAccMode; }

  private:
    /** One learned signature: the dual patterns. */
    struct PatternEntry
    {
        std::uint32_t sig = 0;
        std::uint16_t covPattern = 0;
        std::uint16_t accPattern = 0;
        bool trained = false;
    };

    /** An in-flight region accumulating its access footprint. */
    struct TrackerEntry
    {
        Addr regionBase = 0;
        std::uint32_t sig = 0;
        std::uint16_t bits = 0;
        std::uint64_t fifoSeq = 0;
        bool valid = false;
    };

    static constexpr unsigned patternEntries = 64;
    static constexpr unsigned trackerEntries = 32;

    std::uint32_t signatureOf(const PrefetchAccess &access) const;
    void observe(const PrefetchAccess &access);
    void commit(TrackerEntry &te);
    void predict(const PrefetchAccess &access, CandidateList &out);

    PatternEntry patterns[patternEntries];
    TrackerEntry tracker[trackerEntries];
    std::uint64_t nextSeq = 0;
    std::uint64_t nCovMode = 0;
    std::uint64_t nAccMode = 0;
};

} // namespace fbdp

#endif // FBDP_PREFETCH_DSPATCH_POLICY_HH
