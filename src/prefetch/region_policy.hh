/**
 * @file
 * The paper's region scheme as a PrefetchPolicy: on every qualifying
 * demand miss, fetch the rest of the K-line region the demand maps
 * to.  Stateless — the region group IS the prediction, which is what
 * makes the one-ACT + K-CAS group fetch possible at the DIMM.
 */

#ifndef FBDP_PREFETCH_REGION_POLICY_HH
#define FBDP_PREFETCH_REGION_POLICY_HH

#include "prefetch/policy.hh"

namespace fbdp {

class RegionPolicy : public PrefetchPolicy
{
  public:
    using PrefetchPolicy::PrefetchPolicy;

    const char *name() const override { return "region"; }

    void
    onMiss(const PrefetchAccess &access, CandidateList &out) override
    {
        // Ascending address order, demanded line skipped: byte-
        // identical to the old PrefetchTable::insertGroup walk, so
        // FIFO ages in the AMB cache — and therefore every downstream
        // stat — are unchanged.  The controller re-orders the actual
        // CAS stream into wrap-around critical-word-first order.
        for (unsigned off = 0; off < access.regionLines; ++off) {
            const Addr la =
                access.regionBase +
                static_cast<Addr>(off) * lineBytes;
            if (la != access.lineAddr)
                out.add(la);
        }
    }
};

} // namespace fbdp

#endif // FBDP_PREFETCH_REGION_POLICY_HH
