#include "prefetch/amb_cache.hh"

#include "common/logging.hh"

namespace fbdp {

AmbCache::AmbCache(unsigned entries, unsigned ways)
    : nEntries(entries),
      nWays(ways == 0 ? entries : ways),
      nSets(entries / (ways == 0 ? entries : ways))
{
    fbdp_assert(entries >= 1, "AMB cache needs at least one entry");
    fbdp_assert(nWays >= 1 && entries % nWays == 0,
                "entries %u not divisible by ways %u", entries, nWays);
    if ((nSets & (nSets - 1)) == 0)
        setMask = nSets - 1;
    lines.resize(entries);
}

unsigned
AmbCache::setOf(Addr line_addr) const
{
    // Fold upper address bits into the index.  The lines that reach
    // one AMB share their low line-index bits with the channel/DIMM
    // selector of the interleaving, so a plain modulo would alias
    // every resident line onto a handful of sets; hardware indexes
    // with DIMM-local bits instead, which this is equivalent to.
    std::uint64_t l = lineIndex(line_addr);
    l ^= l >> 5;
    l ^= l >> 11;
    if (setMask)
        return static_cast<unsigned>(l & setMask);
    return static_cast<unsigned>(l % nSets);
}

AmbCache::Line *
AmbCache::lookup(Addr line_addr)
{
    const unsigned set = setOf(line_addr);
    Line *base = &lines[static_cast<size_t>(set) * nWays];
    for (unsigned w = 0; w < nWays; ++w) {
        if (base[w].valid && base[w].lineAddr == line_addr)
            return &base[w];
    }
    return nullptr;
}

const AmbCache::Line *
AmbCache::lookup(Addr line_addr) const
{
    return const_cast<AmbCache *>(this)->lookup(line_addr);
}

AmbCache::Line *
AmbCache::insert(Addr line_addr, Tick ready_at)
{
    // One pass gathers the match, the first invalid way, and the FIFO
    // victim together (insert runs K times per region fetch, so the
    // set scan is hot).
    const unsigned set = setOf(line_addr);
    Line *base = &lines[static_cast<size_t>(set) * nWays];

    Line *first_invalid = nullptr;
    Line *oldest = base;
    for (unsigned w = 0; w < nWays; ++w) {
        Line &l = base[w];
        if (l.valid && l.lineAddr == line_addr) {
            l.readyAt = ready_at;
            l.fifoSeq = nextSeq++;
            return &l;
        }
        if (!l.valid) {
            if (!first_invalid)
                first_invalid = &l;
        } else if (l.fifoSeq < oldest->fifoSeq) {
            oldest = &l;
        }
    }

    Line *victim = first_invalid;
    if (!victim) {
        // FIFO: evict the oldest insertion in the set.
        victim = oldest;
        ++nEvictions;
    }

    victim->lineAddr = line_addr;
    victim->readyAt = ready_at;
    victim->valid = true;
    victim->used = false;
    victim->fifoSeq = nextSeq++;
    ++nInsertions;
    return victim;
}

AmbCache::Line *
AmbCache::insertIfAbsent(Addr line_addr, Tick ready_at,
                         Evicted *evicted)
{
    const unsigned set = setOf(line_addr);
    Line *base = &lines[static_cast<size_t>(set) * nWays];

    Line *first_invalid = nullptr;
    Line *oldest = base;
    for (unsigned w = 0; w < nWays; ++w) {
        Line &l = base[w];
        if (l.valid && l.lineAddr == line_addr)
            return &l;  // resident: keep FIFO age and readiness
        if (!l.valid) {
            if (!first_invalid)
                first_invalid = &l;
        } else if (l.fifoSeq < oldest->fifoSeq) {
            oldest = &l;
        }
    }

    Line *victim = first_invalid;
    if (!victim) {
        victim = oldest;
        ++nEvictions;
        if (evicted) {
            evicted->lineAddr = victim->lineAddr;
            evicted->used = victim->used;
            evicted->valid = true;
        }
    }

    victim->lineAddr = line_addr;
    victim->readyAt = ready_at;
    victim->valid = true;
    victim->used = false;
    victim->fifoSeq = nextSeq++;
    ++nInsertions;
    return victim;
}

bool
AmbCache::invalidate(Addr line_addr, bool *was_used)
{
    if (Line *l = lookup(line_addr)) {
        l->valid = false;
        if (was_used)
            *was_used = l->used;
        return true;
    }
    return false;
}

void
AmbCache::reset()
{
    for (auto &l : lines) {
        l.valid = false;
        l.used = false;
    }
    nextSeq = 0;
    nInsertions = 0;
    nEvictions = 0;
}

unsigned
AmbCache::population() const
{
    unsigned n = 0;
    for (const auto &l : lines)
        n += l.valid ? 1 : 0;
    return n;
}

} // namespace fbdp
