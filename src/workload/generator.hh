/**
 * @file
 * Trace-operation model and the synthetic trace generator.
 *
 * A Generator produces an endless stream of TraceOps: each op carries
 * the number of non-memory instructions preceding it, its kind (load /
 * store / software prefetch) and a byte address.  SyntheticGenerator
 * realises one BenchProfile; it is seeded deterministically so that
 * every simulated configuration replays exactly the same stream.
 */

#ifndef FBDP_WORKLOAD_GENERATOR_HH
#define FBDP_WORKLOAD_GENERATOR_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "common/random.hh"
#include "common/types.hh"
#include "workload/profile.hh"

namespace fbdp {

/** One record of the synthetic instruction trace. */
struct TraceOp
{
    enum class Kind { Load, Store, Prefetch };

    std::uint32_t gap = 0;  ///< non-memory instructions before this op
    Kind kind = Kind::Load;
    Addr addr = 0;
};

/** Abstract trace source. */
class Generator
{
  public:
    virtual ~Generator() = default;

    /** Produce the next operation (the trace never ends). */
    virtual TraceOp next() = 0;

    /** The profile driving this trace. */
    virtual const BenchProfile &profile() const = 0;
};

/** Profile-driven synthetic trace. */
class SyntheticGenerator : public Generator
{
  public:
    /**
     * @param prof        benchmark profile
     * @param base_addr   physical base of this core's address slice
     * @param seed        RNG seed (vary per core)
     * @param sw_prefetch emit software-prefetch ops per the profile
     */
    SyntheticGenerator(const BenchProfile &prof, Addr base_addr,
                       std::uint64_t seed, bool sw_prefetch);

    TraceOp next() override;
    const BenchProfile &profile() const override { return prof; }

    std::uint64_t opsGenerated() const { return nOps; }

    // Op-class counters (for calibration and tests).
    std::uint64_t streamOps() const { return nStreamOps; }
    std::uint64_t streamLineCrossings() const { return nCrossings; }
    std::uint64_t hotOps() const { return nHotOps; }
    std::uint64_t coldOps() const { return nColdOps; }
    std::uint64_t prefetchOps() const { return nPrefetchOps; }

  private:
    Addr randomIn(Addr base, Addr size);

    BenchProfile prof;
    Addr base;
    bool spEnabled;
    Rng rng;

    struct Stream {
        Addr laneBase = 0;   ///< start of this stream's lane
        Addr laneSize = 0;
        Addr cursor = 0;     ///< next byte to touch
        unsigned lineStride = 1;  ///< lines advanced per line consumed
    };
    std::vector<Stream> streams;
    size_t nextStream = 0;   ///< round-robin (lockstep) stream cursor
    size_t storeStreams = 0; ///< leading streams that are outputs

    std::deque<TraceOp> queued;  ///< prefetches awaiting emission
    std::uint64_t nOps = 0;

    std::uint64_t nStreamOps = 0;
    std::uint64_t nCrossings = 0;
    std::uint64_t nHotOps = 0;
    std::uint64_t nColdOps = 0;
    std::uint64_t nPrefetchOps = 0;
};

} // namespace fbdp

#endif // FBDP_WORKLOAD_GENERATOR_HH
