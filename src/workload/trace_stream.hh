/**
 * @file
 * Streaming trace frontend: bounded-memory, compressed, overlapped-
 * decode replay of recorded traces at production scale.
 *
 * The in-RAM replayer (workload/trace_file.hh) materialises the whole
 * trace as a std::vector<TraceOp>, which caps trace size at host
 * memory and ingests at text-parse speed while the simulator waits.
 * This frontend instead reads the file in bounded chunks (default
 * 4 MiB of raw input per chunk) and decodes the *next* chunk on a
 * background worker while the simulator consumes the current one, so
 * ingest overlaps simulation and the resident set is O(chunk) no
 * matter how large the trace is.  Wrap-around replay reopens the
 * stream, exactly like the in-RAM replayer loops its vector; replay
 * through either frontend is bit-identical.
 *
 * Three file encodings are auto-detected by magic:
 *   - text   — the `<gap> <kind> <addr-hex>` line format of
 *              TraceRecorder, parsed by a hand-rolled chunked parser
 *              (several times faster than the sscanf loader);
 *   - .fbt   — "fbdp binary trace": a fixed-width little-endian
 *              record stream behind a small header (magic, version,
 *              op count, originating profile name);
 *   - gzip   — either of the above compressed; decompressed on the
 *              fly through zlib when the build found it, a clear
 *              fatal otherwise.
 *
 * Multi-core slicing shares one TraceStream per file: every core's
 * StreamingTraceGenerator view has its own logical cursor (and base
 * address offset), but all views pull from a single underlying file
 * cursor and a shared window of decoded chunks, so an N-core replay
 * costs one decode pipeline — not N copies of the buffer.  Chunks
 * retire from the window once every view has consumed them; views
 * that drift apart widen the window (worst case one trace pass, in
 * practice a chunk or two since cores progress at similar rates).
 *
 * Thread model: all views of a stream must be driven from one thread
 * (the simulator's core shard; the functional warm-up loop).  The
 * only concurrency is the internal decode worker, and its hand-off
 * is a std::future.
 */

#ifndef FBDP_WORKLOAD_TRACE_STREAM_HH
#define FBDP_WORKLOAD_TRACE_STREAM_HH

#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.hh"
#include "workload/generator.hh"

namespace fbdp {

/** File encoding of a trace (gzip is orthogonal: either may be
 *  compressed, detected separately by the gzip magic). */
enum class TraceFormat { Auto, Text, Fbt };

/** @return "text" / "fbt" / "auto". */
const char *traceFormatName(TraceFormat f);

/** True when this build can read and write gzip traces (zlib). */
bool zlibAvailable();

// ---------------------------------------------------------------- //
// The .fbt binary format                                            //
// ---------------------------------------------------------------- //

/** Leading magic of a .fbt file (detects the format; bumping the
 *  trailing digit is the compatibility break). */
constexpr unsigned char fbtMagic[4] = {'F', 'B', 'T', '1'};

/** Current header version. */
constexpr std::uint32_t fbtVersion = 1;

/** Fixed bytes per record: gap u32le, kind u8 (0=L 1=S 2=P),
 *  addr u64le. */
constexpr std::size_t fbtRecordBytes = 13;

/** Fixed header prefix: magic, version u32le, op-count u64le,
 *  profile-name length u32le (name bytes follow). */
constexpr std::size_t fbtHeaderFixedBytes = 4 + 4 + 8 + 4;

/** Decoded .fbt header (text traces report an empty one). */
struct FbtHeader
{
    std::uint64_t opCount = 0;  ///< 0 = unknown (unseekable writer)
    std::string profileName;
};

// ---------------------------------------------------------------- //
// Workload-spec parsing: "trace:PATH[,key=value]..."                //
// ---------------------------------------------------------------- //

/**
 * A parsed `trace:` workload spec.  The benchmark-name slot of
 * SystemConfig::benchmarks accepts `trace:PATH` plus options:
 *
 *   trace:/data/app.fbt.gz,stream=on,chunk=8m,format=auto
 *
 *   stream=on|off   streaming (default) vs legacy in-RAM replay
 *   chunk=N[k|m]    raw chunk budget per read (default 4m, min 64)
 *   format=auto|text|fbt   override the by-magic detection
 */
struct TraceSpec
{
    static constexpr std::size_t defaultChunkBytes = 4u << 20;
    static constexpr std::size_t minChunkBytes = 64;

    std::string path;
    bool stream = true;
    std::size_t chunkBytes = defaultChunkBytes;
    TraceFormat format = TraceFormat::Auto;

    /** Does @p bench name a trace workload ("trace:" prefix)? */
    static bool isTraceSpec(const std::string &bench);

    /** Parse a full spec (fatal on unknown keys / bad values). */
    static TraceSpec parse(const std::string &bench);

    /** The option-independent workload name: "trace:" + path.  Both
     *  replay modes report this as the profile name, so streamed and
     *  in-RAM runs of one file are byte-identical everywhere. */
    std::string canonicalName() const { return "trace:" + path; }
};

// ---------------------------------------------------------------- //
// Raw byte I/O                                                      //
// ---------------------------------------------------------------- //

/**
 * Sequential raw-byte reader with rewind.  read() returns fewer than
 * @p n bytes only at end of stream (I/O errors are fatal inside), so
 * a short read *is* the end-of-pass signal.
 */
class ByteSource
{
  public:
    virtual ~ByteSource() = default;
    virtual std::size_t read(char *dst, std::size_t n) = 0;
    virtual void rewind() = 0;
    const std::string &path() const { return p; }

  protected:
    explicit ByteSource(std::string path_) : p(std::move(path_)) {}
    std::string p;
};

/**
 * Open @p path, sniffing the gzip magic: compressed files come back
 * wrapped in a zlib-backed source (fatal when zlib is unavailable),
 * plain files in a buffered stdio source.  Fatal if unreadable.
 */
std::unique_ptr<ByteSource> openByteSource(const std::string &path);

/**
 * Sequential trace writer: text or .fbt, optionally gzipped.  The
 * .fbt op count is patched into the header on close() when the sink
 * is seekable (plain files); gzip sinks keep @p op_count_hint (0 =
 * unknown).  Write failures (disk full) are fatal with the path, at
 * the failing append or on close at the latest.
 */
class TraceWriter
{
  public:
    TraceWriter(const std::string &path, TraceFormat format,
                bool gzip, const std::string &profile_name,
                std::uint64_t op_count_hint = 0);
    ~TraceWriter();  ///< closes (and so checks) if still open

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    void append(const TraceOp &op);
    void close();

    std::uint64_t written() const { return nWritten; }

  private:
    struct Impl;
    std::unique_ptr<Impl> impl;
    std::uint64_t nWritten = 0;
};

// ---------------------------------------------------------------- //
// Chunked decoding                                                  //
// ---------------------------------------------------------------- //

/** One decoded chunk: the ops of ~chunkBytes of raw input. */
struct TraceChunk
{
    std::uint64_t seq = 0;      ///< position in the chunk sequence
    std::vector<TraceOp> ops;   ///< may be empty (comment-only block)
    bool lastOfPass = false;    ///< EOF hit; the stream rewound after
};

/**
 * The shared, endless chunk pipeline over one trace file.  Views
 * (StreamingTraceGenerator) pull consecutive chunks; the stream
 * decodes ahead on a one-thread worker and retires chunks that every
 * view has passed.  Not thread-safe across views by design (see the
 * file comment).
 */
class TraceStream
{
  public:
    /** Open @p spec.path; resolves Auto format by magic.  Fatal on
     *  missing files, bad magic/version, or (at first decode) an
     *  empty trace. */
    explicit TraceStream(const TraceSpec &spec,
                         bool background = true);
    ~TraceStream();

    TraceStream(const TraceStream &) = delete;
    TraceStream &operator=(const TraceStream &) = delete;

    /** Register a view; returns its id.  Register every view before
     *  the first chunkFor() call. */
    unsigned addView();

    /**
     * The chunk at position @p seq for view @p view.  Views advance
     * one chunk at a time (seq == previous + 1, starting at 0);
     * fetching decodes ahead as needed and retires chunks all views
     * have passed.
     */
    std::shared_ptr<const TraceChunk> chunkFor(unsigned view,
                                               std::uint64_t seq);

    const FbtHeader &header() const { return hdr; }
    TraceFormat format() const { return fmt; }
    const std::string &path() const { return spec.path; }
    std::size_t chunkBytes() const { return spec.chunkBytes; }

    /** Peak simultaneous decoded chunks (memory-bound telemetry;
     *  1-2 for a single view, grows only when views drift apart). */
    std::size_t windowPeakChunks() const { return windowPeak; }
    /** Chunks decoded so far (across passes). */
    std::uint64_t chunksDecoded() const { return nextSeq; }
    /** Completed passes over the file (wraps of the file cursor). */
    std::uint64_t passes() const { return nPasses; }

  private:
    std::shared_ptr<TraceChunk> decodeNext();
    std::shared_ptr<TraceChunk> produce();
    void startPass();
    void readFbtHeader(bool first);
    std::size_t fillRaw(char *dst, std::size_t n);
    void decodeRecord(const char *rec, TraceOp *out);

    TraceSpec spec;
    TraceFormat fmt = TraceFormat::Text;
    FbtHeader hdr;
    std::unique_ptr<ByteSource> src;
    std::string preload;         ///< sniffed bytes not yet consumed

    // Decoder state (touched only by whoever runs decodeNext():
    // strictly alternating caller / worker, synchronized by the
    // pending future).
    std::vector<char> rawBuf;
    std::string textCarry;       ///< partial line across reads
    char recCarry[fbtRecordBytes];
    std::size_t recCarryLen = 0; ///< partial record across reads
    std::uint64_t lineNo = 0;    ///< text line counter (this pass)
    std::uint64_t passOps = 0;   ///< ops decoded this pass
    std::uint64_t nextSeq = 0;
    std::uint64_t nPasses = 0;

    // Overlapped decode.
    std::unique_ptr<ThreadPool> worker;
    std::future<std::shared_ptr<TraceChunk>> pending;

    // Shared chunk window.
    std::deque<std::shared_ptr<TraceChunk>> window;
    std::uint64_t firstSeq = 0;
    std::size_t windowPeak = 0;
    std::vector<std::uint64_t> viewSeq;
};

/**
 * One core's view of a (possibly shared) TraceStream: an endless
 * Generator replaying the trace with wrap-around, bit-identical to
 * TraceFileGenerator over the same file.
 */
class StreamingTraceGenerator : public Generator
{
  public:
    /** View onto an existing (shared) stream. */
    explicit StreamingTraceGenerator(
        std::shared_ptr<TraceStream> stream, Addr base_addr = 0);

    /** Convenience: open a private stream for @p spec. */
    explicit StreamingTraceGenerator(const TraceSpec &spec,
                                     Addr base_addr = 0);

    TraceOp next() override;
    const BenchProfile &profile() const override { return prof; }

    std::uint64_t wraps() const { return nWraps; }
    std::uint64_t consumed() const { return nOps; }
    TraceStream &stream() { return *str; }
    const TraceStream &stream() const { return *str; }

  private:
    void advanceChunk();

    std::shared_ptr<TraceStream> str;
    std::shared_ptr<const TraceChunk> chunk;
    std::size_t idx = 0;
    std::uint64_t seq = 0;
    unsigned viewId;
    BenchProfile prof;
    Addr base;
    std::uint64_t nWraps = 0;
    std::uint64_t nOps = 0;
};

/**
 * Single-pass reader for tools and loaders: yields every op of the
 * first pass, then reports end instead of wrapping.  Drives the
 * chunk window directly so exhausting the pass never touches (or
 * decodes) the start of a second one.
 */
class TracePassReader
{
  public:
    explicit TracePassReader(const TraceSpec &spec,
                             bool background = false);

    /** @return false once the pass is exhausted. */
    bool next(TraceOp *out);

    const FbtHeader &header() const { return str->header(); }
    TraceFormat format() const { return str->format(); }

  private:
    std::shared_ptr<TraceStream> str;
    std::shared_ptr<const TraceChunk> chunk;
    std::size_t idx = 0;
    std::uint64_t seq = 0;
    unsigned viewId;
    bool done = false;
};

} // namespace fbdp

#endif // FBDP_WORKLOAD_TRACE_STREAM_HH
