/**
 * @file
 * The multiprogrammed workload mixes of Table 3, plus the twelve
 * single-program workloads used as baselines and references.
 */

#ifndef FBDP_WORKLOAD_MIXES_HH
#define FBDP_WORKLOAD_MIXES_HH

#include <string>
#include <vector>

namespace fbdp {

/** A named multiprogrammed workload. */
struct WorkloadMix
{
    std::string name;                  ///< e.g. "2C-1"
    std::vector<std::string> benches;  ///< one benchmark per core
};

/** The twelve 1-core workloads ("1C-<bench>"). */
const std::vector<WorkloadMix> &singleCoreMixes();

/** 2C-1 .. 2C-6 (Table 3). */
const std::vector<WorkloadMix> &dualCoreMixes();

/** 4C-1 .. 4C-6 (Table 3). */
const std::vector<WorkloadMix> &quadCoreMixes();

/** 8C-1 .. 8C-3 (Table 3). */
const std::vector<WorkloadMix> &octoCoreMixes();

/** Mixes of a given core count (1, 2, 4 or 8). */
const std::vector<WorkloadMix> &mixesFor(unsigned cores);

/** Find any mix by name. */
const WorkloadMix &mixByName(const std::string &name);

} // namespace fbdp

#endif // FBDP_WORKLOAD_MIXES_HH
