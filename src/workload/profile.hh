/**
 * @file
 * Synthetic SPEC CPU2000 benchmark profiles.
 *
 * The paper drives its evaluation with twelve memory-intensive
 * SPEC2000 programs (Alpha binaries under M5 with SimPoint sampling).
 * Those binaries and traces are not reproducible offline, so each
 * program is replaced by a parameterised synthetic generator whose
 * *memory behaviour* matches the program's published character:
 *
 *  - floating-point array codes (wupwise, swim, mgrid, applu, equake,
 *    facerec, lucas, fma3d) stream through large arrays with several
 *    concurrent sequential streams, high spatial locality, and good
 *    compiler software-prefetch coverage;
 *  - integer codes (vpr, parser, gap, vortex) mix short streams with
 *    irregular pointer-style accesses over a hot working set, little
 *    spatial locality and poor prefetch coverage.
 *
 * The absolute numbers are calibrated so that aggregate bandwidth
 * demand and L2 miss rates land in the ranges the paper's Figures 4-6
 * imply; DESIGN.md documents the substitution.
 */

#ifndef FBDP_WORKLOAD_PROFILE_HH
#define FBDP_WORKLOAD_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace fbdp {

/** Memory-behaviour parameters of one synthetic benchmark. */
struct BenchProfile
{
    std::string name;

    /** Non-memory IPC ceiling of the modelled core on this program. */
    double baseIpc = 2.0;

    /** Mean non-memory instructions between memory operations. */
    double meanGap = 5.0;

    /** Fraction of memory operations that are stores. */
    double storeFrac = 0.3;

    /** Concurrent sequential access streams. */
    unsigned nStreams = 4;

    /** Fraction of memory operations served by the streams. */
    double streamFrac = 0.8;

    /** Stream element size in bytes (stride). */
    unsigned elemBytes = 8;

    /** Total data footprint of this program. */
    Addr footprint = 128ull << 20;

    /** Probability that a stream access restarts at a random point. */
    double jumpProb = 0.002;

    /**
     * Fraction of the streams that sweep with a two-line stride
     * (stencil/plane walks): they touch every other cacheline, so
     * only half of a prefetch region is ever useful to them.
     */
    double stride2Frac = 0.0;

    /** Non-stream accesses hitting the small hot set (vs cold data). */
    double hotFrac = 0.95;

    /** Size of the hot set (mostly L2-resident). */
    Addr hotBytes = 1ull << 20;

    /**
     * Software-prefetch coverage: probability that a stream's move to
     * a new cacheline is accompanied by a compiler prefetch.
     */
    double spCoverage = 0.6;

    /** Prefetch distance in cachelines ahead of the stream. */
    unsigned spDistanceLines = 8;
};

/** Look up any profile by SPEC program name (fatal if unknown). */
const BenchProfile &benchProfile(const std::string &name);

/**
 * All modelled profiles: the paper's twelve plus art and mcf (the
 * two programs Section 4.2 excludes from the workload mixes).
 */
const std::vector<BenchProfile> &allProfiles();

/** The twelve programs of the paper's suite, in its order. */
const std::vector<BenchProfile> &paperSuite();

} // namespace fbdp

#endif // FBDP_WORKLOAD_PROFILE_HH
