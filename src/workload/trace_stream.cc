#include "workload/trace_stream.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/logging.hh"
#include "workload/trace_file.hh"

#ifdef FBDP_HAVE_ZLIB
#include <zlib.h>
#endif

namespace fbdp {

const char *
traceFormatName(TraceFormat f)
{
    switch (f) {
      case TraceFormat::Text:
        return "text";
      case TraceFormat::Fbt:
        return "fbt";
      default:
        return "auto";
    }
}

bool
zlibAvailable()
{
#ifdef FBDP_HAVE_ZLIB
    return true;
#else
    return false;
#endif
}

// ---------------------------------------------------------------- //
// TraceSpec                                                         //
// ---------------------------------------------------------------- //

namespace {

constexpr const char *traceSpecPrefix = "trace:";

std::size_t
parseChunkSize(const std::string &val, const std::string &spec)
{
    char suffix = 0;
    unsigned long long n = 0;
    int fields = std::sscanf(val.c_str(), "%llu%c", &n, &suffix);
    if (fields < 1 || n == 0)
        fatal("bad chunk size '%s' in trace spec '%s'", val.c_str(),
              spec.c_str());
    if (fields == 2) {
        if (suffix == 'k' || suffix == 'K')
            n <<= 10;
        else if (suffix == 'm' || suffix == 'M')
            n <<= 20;
        else
            fatal("bad chunk size suffix '%c' in trace spec '%s' "
                  "(use k or m)", suffix, spec.c_str());
    }
    if (n < TraceSpec::minChunkBytes) {
        warn("trace chunk size %llu below minimum; using %zu bytes",
             n, TraceSpec::minChunkBytes);
        n = TraceSpec::minChunkBytes;
    }
    return static_cast<std::size_t>(n);
}

bool
parseOnOff(const std::string &val, const std::string &key,
           const std::string &spec)
{
    if (val == "on" || val == "1" || val == "true")
        return true;
    if (val == "off" || val == "0" || val == "false")
        return false;
    fatal("bad value '%s' for %s= in trace spec '%s' (use on/off)",
          val.c_str(), key.c_str(), spec.c_str());
    return false; // unreached
}

} // namespace

bool
TraceSpec::isTraceSpec(const std::string &bench)
{
    return bench.rfind(traceSpecPrefix, 0) == 0;
}

TraceSpec
TraceSpec::parse(const std::string &bench)
{
    fbdp_assert(isTraceSpec(bench), "'%s' is not a trace spec",
                bench.c_str());
    TraceSpec spec;
    std::string body = bench.substr(std::strlen(traceSpecPrefix));
    std::size_t pos = 0;
    bool first = true;
    while (pos <= body.size()) {
        std::size_t comma = body.find(',', pos);
        if (comma == std::string::npos)
            comma = body.size();
        std::string part = body.substr(pos, comma - pos);
        pos = comma + 1;
        if (first) {
            first = false;
            if (part.empty())
                fatal("trace spec '%s' is missing a path",
                      bench.c_str());
            spec.path = part;
            continue;
        }
        if (part.empty())
            continue;
        std::size_t eq = part.find('=');
        std::string key = part.substr(0, eq);
        std::string val =
            eq == std::string::npos ? "" : part.substr(eq + 1);
        if (key == "stream") {
            spec.stream = parseOnOff(val, key, bench);
        } else if (key == "chunk") {
            spec.chunkBytes = parseChunkSize(val, bench);
        } else if (key == "format") {
            if (val == "auto")
                spec.format = TraceFormat::Auto;
            else if (val == "text")
                spec.format = TraceFormat::Text;
            else if (val == "fbt")
                spec.format = TraceFormat::Fbt;
            else
                fatal("bad value '%s' for format= in trace spec '%s' "
                      "(use auto/text/fbt)", val.c_str(),
                      bench.c_str());
        } else {
            fatal("unknown trace spec option '%s' in '%s' (valid: "
                  "stream=, chunk=, format=)", key.c_str(),
                  bench.c_str());
        }
    }
    return spec;
}

// ---------------------------------------------------------------- //
// Byte sources                                                      //
// ---------------------------------------------------------------- //

namespace {

/** Plain (uncompressed) file, buffered stdio. */
class FileByteSource : public ByteSource
{
  public:
    FileByteSource(std::string path_, std::FILE *f_)
        : ByteSource(std::move(path_)), f(f_)
    {
    }

    ~FileByteSource() override
    {
        if (f)
            std::fclose(f);
    }

    std::size_t
    read(char *dst, std::size_t n) override
    {
        std::size_t got = std::fread(dst, 1, n, f);
        if (got < n && std::ferror(f))
            fatal("read from trace file '%s' failed", p.c_str());
        return got;
    }

    void
    rewind() override
    {
        if (std::fseek(f, 0, SEEK_SET) != 0)
            fatal("cannot rewind trace file '%s'", p.c_str());
    }

  private:
    std::FILE *f;
};

#ifdef FBDP_HAVE_ZLIB
/** Gzip-compressed file, decompressed on the fly through zlib. */
class GzByteSource : public ByteSource
{
  public:
    explicit GzByteSource(std::string path_)
        : ByteSource(std::move(path_))
    {
        zf = gzopen(p.c_str(), "rb");
        if (!zf)
            fatal("cannot open trace file '%s'", p.c_str());
        // A sensible internal buffer makes chunked reads cheap.
        gzbuffer(zf, 256 << 10);
    }

    ~GzByteSource() override
    {
        if (zf)
            gzclose(zf);
    }

    std::size_t
    read(char *dst, std::size_t n) override
    {
        std::size_t got = 0;
        while (got < n) {
            // gzread takes an unsigned length; loop for huge chunks.
            unsigned want = static_cast<unsigned>(
                std::min<std::size_t>(n - got, 1u << 30));
            int r = gzread(zf, dst + got, want);
            if (r < 0) {
                int errnum = Z_OK;
                const char *msg = gzerror(zf, &errnum);
                fatal("gzip read from trace file '%s' failed: %s",
                      p.c_str(),
                      msg && *msg ? msg : "corrupt stream");
            }
            got += static_cast<std::size_t>(r);
            if (r == 0)
                break; // clean end of stream
        }
        return got;
    }

    void
    rewind() override
    {
        if (gzrewind(zf) != 0)
            fatal("cannot rewind trace file '%s'", p.c_str());
    }

  private:
    gzFile zf = nullptr;
};
#endif // FBDP_HAVE_ZLIB

} // namespace

std::unique_ptr<ByteSource>
openByteSource(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        fatal("cannot open trace file '%s'", path.c_str());
    int c1 = std::getc(f);
    int c2 = std::getc(f);
    bool gz = c1 == 0x1f && c2 == 0x8b;
    if (gz) {
        std::fclose(f);
#ifdef FBDP_HAVE_ZLIB
        return std::make_unique<GzByteSource>(path);
#else
        fatal("trace file '%s' is gzip-compressed but this build has "
              "no zlib; decompress it first (gunzip) or rebuild with "
              "zlib available", path.c_str());
#endif
    }
    if (std::fseek(f, 0, SEEK_SET) != 0)
        fatal("cannot rewind trace file '%s'", path.c_str());
    return std::make_unique<FileByteSource>(path, f);
}

// ---------------------------------------------------------------- //
// Little-endian helpers                                             //
// ---------------------------------------------------------------- //

namespace {

void
putLE32(char *dst, std::uint32_t v)
{
    dst[0] = static_cast<char>(v & 0xff);
    dst[1] = static_cast<char>((v >> 8) & 0xff);
    dst[2] = static_cast<char>((v >> 16) & 0xff);
    dst[3] = static_cast<char>((v >> 24) & 0xff);
}

void
putLE64(char *dst, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        dst[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

std::uint32_t
getLE32(const char *src)
{
    const unsigned char *u =
        reinterpret_cast<const unsigned char *>(src);
    return static_cast<std::uint32_t>(u[0])
        | static_cast<std::uint32_t>(u[1]) << 8
        | static_cast<std::uint32_t>(u[2]) << 16
        | static_cast<std::uint32_t>(u[3]) << 24;
}

std::uint64_t
getLE64(const char *src)
{
    const unsigned char *u =
        reinterpret_cast<const unsigned char *>(src);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(u[i]) << (8 * i);
    return v;
}

char
kindByte(TraceOp::Kind k)
{
    if (k == TraceOp::Kind::Store)
        return 1;
    if (k == TraceOp::Kind::Prefetch)
        return 2;
    return 0;
}

void
encodeRecord(char *dst, const TraceOp &op)
{
    putLE32(dst, op.gap);
    dst[4] = kindByte(op.kind);
    putLE64(dst + 5, static_cast<std::uint64_t>(op.addr));
}

} // namespace

// ---------------------------------------------------------------- //
// TraceWriter                                                       //
// ---------------------------------------------------------------- //

struct TraceWriter::Impl
{
    std::string path;
    TraceFormat fmt;
    bool gz;
    std::uint64_t hinted;
    std::FILE *f = nullptr;
#ifdef FBDP_HAVE_ZLIB
    gzFile zf = nullptr;
#endif

    void
    write(const char *d, std::size_t n)
    {
#ifdef FBDP_HAVE_ZLIB
        if (gz) {
            if (n && gzwrite(zf, d, static_cast<unsigned>(n)) !=
                         static_cast<int>(n))
                fatal("write to trace file '%s' failed (disk full?)",
                      path.c_str());
            return;
        }
#endif
        if (n && std::fwrite(d, 1, n, f) != n)
            fatal("write to trace file '%s' failed (disk full?)",
                  path.c_str());
    }
};

TraceWriter::TraceWriter(const std::string &path, TraceFormat format,
                         bool gzip, const std::string &profile_name,
                         std::uint64_t op_count_hint)
    : impl(std::make_unique<Impl>())
{
    fbdp_assert(format != TraceFormat::Auto,
                "TraceWriter needs a concrete format");
    impl->path = path;
    impl->fmt = format;
    impl->gz = gzip;
    impl->hinted = op_count_hint;
    if (gzip) {
#ifdef FBDP_HAVE_ZLIB
        impl->zf = gzopen(path.c_str(), "wb6");
        if (!impl->zf)
            fatal("cannot open trace file '%s' for writing",
                  path.c_str());
#else
        fatal("cannot write gzip trace '%s': this build has no zlib",
              path.c_str());
#endif
    } else {
        impl->f = std::fopen(path.c_str(), "wb");
        if (!impl->f)
            fatal("cannot open trace file '%s' for writing",
                  path.c_str());
    }
    if (format == TraceFormat::Fbt) {
        char hdr[fbtHeaderFixedBytes];
        std::memcpy(hdr, fbtMagic, 4);
        putLE32(hdr + 4, fbtVersion);
        putLE64(hdr + 8, op_count_hint);
        putLE32(hdr + 16,
                static_cast<std::uint32_t>(profile_name.size()));
        impl->write(hdr, sizeof(hdr));
        impl->write(profile_name.data(), profile_name.size());
    } else {
        std::string banner = "# fbdp trace: " + profile_name + "\n";
        impl->write(banner.data(), banner.size());
    }
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::append(const TraceOp &op)
{
    fbdp_assert(impl->f
#ifdef FBDP_HAVE_ZLIB
                    || impl->zf
#endif
                , "append to a closed TraceWriter");
    if (impl->fmt == TraceFormat::Fbt) {
        char rec[fbtRecordBytes];
        encodeRecord(rec, op);
        impl->write(rec, sizeof(rec));
    } else {
        std::string line = formatTraceOp(op) + "\n";
        impl->write(line.data(), line.size());
    }
    ++nWritten;
}

void
TraceWriter::close()
{
#ifdef FBDP_HAVE_ZLIB
    if (impl->zf) {
        if (gzclose(impl->zf) != Z_OK)
            fatal("write to trace file '%s' failed (disk full?)",
                  impl->path.c_str());
        impl->zf = nullptr;
        return;
    }
#endif
    if (!impl->f)
        return;
    // Seekable sink: patch the real op count into the header so
    // readers can pre-size their buffers.
    if (impl->fmt == TraceFormat::Fbt && nWritten != impl->hinted) {
        char cnt[8];
        putLE64(cnt, nWritten);
        if (std::fseek(impl->f, 8, SEEK_SET) != 0
            || std::fwrite(cnt, 1, 8, impl->f) != 8)
            fatal("cannot patch op count into trace file '%s'",
                  impl->path.c_str());
    }
    int flush_err = std::fflush(impl->f);
    int close_err = std::fclose(impl->f);
    impl->f = nullptr;
    if (flush_err != 0 || close_err != 0)
        fatal("write to trace file '%s' failed (disk full?)",
              impl->path.c_str());
}

// ---------------------------------------------------------------- //
// TraceStream                                                       //
// ---------------------------------------------------------------- //

namespace {

[[noreturn]] void
failTextLine(const std::string &path, std::uint64_t line_no,
             const char *s, std::size_t n)
{
    std::string line(s, std::min<std::size_t>(n, 128));
    fatal("malformed trace line %llu in '%s': '%s'",
          static_cast<unsigned long long>(line_no), path.c_str(),
          line.c_str());
}

/**
 * The fast text-line parser: `<gap> <kind> <addr-hex>`, '#' comments,
 * blank / whitespace-only lines (and CRLF tails) skipped.  Anything
 * after the address is ignored, matching the sscanf loader it
 * replaces.  @return false when the line held no op.
 */
bool
parseTextLine(const char *s, std::size_t n, const std::string &path,
              std::uint64_t line_no, TraceOp *out)
{
    const char *q = s;
    const char *e = s + n;
    while (q < e && (*q == ' ' || *q == '\t' || *q == '\r'))
        ++q;
    if (q == e || *q == '#')
        return false;

    // Decimal gap.
    std::uint64_t gap = 0;
    bool any = false;
    while (q < e && *q >= '0' && *q <= '9') {
        gap = gap * 10 + static_cast<std::uint64_t>(*q - '0');
        any = true;
        ++q;
    }
    if (!any)
        failTextLine(path, line_no, s, n);
    while (q < e && (*q == ' ' || *q == '\t'))
        ++q;

    // Kind letter.
    if (q == e)
        failTextLine(path, line_no, s, n);
    char kind = *q++;
    switch (kind) {
      case 'L':
        out->kind = TraceOp::Kind::Load;
        break;
      case 'S':
        out->kind = TraceOp::Kind::Store;
        break;
      case 'P':
        out->kind = TraceOp::Kind::Prefetch;
        break;
      default:
        fatal("unknown trace op kind '%c' on line %llu in '%s'", kind,
              static_cast<unsigned long long>(line_no), path.c_str());
    }
    while (q < e && (*q == ' ' || *q == '\t'))
        ++q;

    // Hex address, optional 0x prefix.
    if (q + 1 < e && q[0] == '0' && (q[1] == 'x' || q[1] == 'X'))
        q += 2;
    std::uint64_t addr = 0;
    bool anyHex = false;
    while (q < e) {
        char c = *q;
        unsigned v;
        if (c >= '0' && c <= '9')
            v = static_cast<unsigned>(c - '0');
        else if (c >= 'a' && c <= 'f')
            v = static_cast<unsigned>(c - 'a') + 10;
        else if (c >= 'A' && c <= 'F')
            v = static_cast<unsigned>(c - 'A') + 10;
        else
            break;
        addr = (addr << 4) | v;
        anyHex = true;
        ++q;
    }
    if (!anyHex)
        failTextLine(path, line_no, s, n);

    out->gap = static_cast<std::uint32_t>(gap);
    out->addr = static_cast<Addr>(addr);
    return true;
}

} // namespace

TraceStream::TraceStream(const TraceSpec &spec_, bool background)
    : spec(spec_)
{
    src = openByteSource(spec.path);
    rawBuf.resize(spec.chunkBytes);

    // Sniff the format magic.  The sniffed bytes are pushed back into
    // `preload` when they turn out to be text content.
    char m4[4];
    std::size_t got = src->read(m4, sizeof(m4));
    bool looksFbt =
        got == sizeof(m4) && std::memcmp(m4, fbtMagic, 4) == 0;
    if (spec.format == TraceFormat::Auto)
        fmt = looksFbt ? TraceFormat::Fbt : TraceFormat::Text;
    else
        fmt = spec.format;
    if (fmt == TraceFormat::Fbt) {
        if (!looksFbt)
            fatal("trace file '%s' is not an fbt trace (bad magic)",
                  spec.path.c_str());
        readFbtHeader(true);
    } else {
        preload.assign(m4, got);
    }

    if (background)
        worker = std::make_unique<ThreadPool>(1);
}

TraceStream::~TraceStream()
{
    // Member destruction order already drains `pending` (declared
    // after `worker`, so destroyed first) and then joins the worker
    // before the decoder state it touches goes away.
}

void
TraceStream::readFbtHeader(bool first)
{
    // Called with the source positioned right after the 4 magic bytes
    // on first open, or at offset 0 after a rewind.
    char fixed[fbtHeaderFixedBytes];
    std::size_t off = 0;
    if (first) {
        std::memcpy(fixed, fbtMagic, 4);
        off = 4;
    }
    if (src->read(fixed + off, sizeof(fixed) - off)
        != sizeof(fixed) - off)
        fatal("trace file '%s' is truncated (short fbt header)",
              spec.path.c_str());
    if (std::memcmp(fixed, fbtMagic, 4) != 0)
        fatal("trace file '%s' is not an fbt trace (bad magic)",
              spec.path.c_str());
    std::uint32_t version = getLE32(fixed + 4);
    if (version != fbtVersion)
        fatal("trace file '%s' has unsupported fbt version %u "
              "(this build reads version %u)", spec.path.c_str(),
              version, fbtVersion);
    hdr.opCount = getLE64(fixed + 8);
    std::uint32_t nameLen = getLE32(fixed + 16);
    if (nameLen > (1u << 20))
        fatal("trace file '%s' has an implausible fbt profile-name "
              "length %u", spec.path.c_str(), nameLen);
    std::string name(nameLen, '\0');
    if (nameLen && src->read(name.data(), nameLen) != nameLen)
        fatal("trace file '%s' is truncated (short fbt header)",
              spec.path.c_str());
    if (first)
        hdr.profileName = std::move(name);
}

std::size_t
TraceStream::fillRaw(char *dst, std::size_t n)
{
    std::size_t got = 0;
    if (!preload.empty()) {
        std::size_t take = std::min(n, preload.size());
        std::memcpy(dst, preload.data(), take);
        preload.erase(0, take);
        got = take;
    }
    if (got < n)
        got += src->read(dst + got, n - got);
    return got;
}

void
TraceStream::startPass()
{
    src->rewind();
    preload.clear();
    textCarry.clear();
    recCarryLen = 0;
    lineNo = 0;
    passOps = 0;
    ++nPasses;
    if (fmt == TraceFormat::Fbt)
        readFbtHeader(false);
}

std::shared_ptr<TraceChunk>
TraceStream::decodeNext()
{
    auto chunk = std::make_shared<TraceChunk>();
    chunk->seq = nextSeq++;

    const std::size_t want = spec.chunkBytes;
    std::size_t got = fillRaw(rawBuf.data(), want);
    const char *p = rawBuf.data();
    const char *end = p + got;
    TraceOp op;

    if (fmt == TraceFormat::Text) {
        chunk->ops.reserve(got / 8 + 1);
        // Complete a line carried over from the previous chunk.
        if (!textCarry.empty()) {
            const char *nl = static_cast<const char *>(
                std::memchr(p, '\n', got));
            if (!nl) {
                textCarry.append(p, end);
                p = end;
            } else {
                textCarry.append(p, nl);
                p = nl + 1;
                ++lineNo;
                if (parseTextLine(textCarry.data(), textCarry.size(),
                                  spec.path, lineNo, &op))
                    chunk->ops.push_back(op);
                textCarry.clear();
            }
        }
        while (p < end) {
            const char *nl = static_cast<const char *>(std::memchr(
                p, '\n', static_cast<std::size_t>(end - p)));
            if (!nl) {
                textCarry.assign(p, end);
                break;
            }
            ++lineNo;
            if (parseTextLine(p, static_cast<std::size_t>(nl - p),
                              spec.path, lineNo, &op))
                chunk->ops.push_back(op);
            p = nl + 1;
        }
        if (got < want && !textCarry.empty()) {
            // Final line without a trailing newline.
            ++lineNo;
            if (parseTextLine(textCarry.data(), textCarry.size(),
                              spec.path, lineNo, &op))
                chunk->ops.push_back(op);
            textCarry.clear();
        }
    } else {
        std::size_t avail = got;
        chunk->ops.reserve((recCarryLen + avail) / fbtRecordBytes + 1);
        if (recCarryLen) {
            std::size_t need = fbtRecordBytes - recCarryLen;
            std::size_t take = std::min(need, avail);
            std::memcpy(recCarry + recCarryLen, p, take);
            recCarryLen += take;
            p += take;
            avail -= take;
            if (recCarryLen == fbtRecordBytes) {
                decodeRecord(recCarry, &op);
                chunk->ops.push_back(op);
                recCarryLen = 0;
            }
        }
        std::size_t nRec = avail / fbtRecordBytes;
        for (std::size_t i = 0; i < nRec; ++i) {
            decodeRecord(p + i * fbtRecordBytes, &op);
            chunk->ops.push_back(op);
        }
        std::size_t rem = avail % fbtRecordBytes;
        if (rem)
            std::memcpy(recCarry, p + nRec * fbtRecordBytes, rem);
        recCarryLen = rem;
        if (got < want && recCarryLen)
            fatal("trace file '%s' is truncated (%zu stray bytes at "
                  "end of record stream)", spec.path.c_str(),
                  recCarryLen);
    }

    passOps += chunk->ops.size();
    if (got < want) {
        // Short read == end of this pass: validate, rewind, loop.
        if (passOps == 0)
            fatal("trace file '%s' contains no operations",
                  spec.path.c_str());
        if (fmt == TraceFormat::Fbt && hdr.opCount
            && passOps != hdr.opCount)
            warn("trace file '%s' decoded %llu ops but its header "
                 "claims %llu", spec.path.c_str(),
                 static_cast<unsigned long long>(passOps),
                 static_cast<unsigned long long>(hdr.opCount));
        chunk->lastOfPass = true;
        startPass();
    }
    return chunk;
}

void
TraceStream::decodeRecord(const char *rec, TraceOp *out)
{
    out->gap = getLE32(rec);
    unsigned char kind = static_cast<unsigned char>(rec[4]);
    switch (kind) {
      case 0:
        out->kind = TraceOp::Kind::Load;
        break;
      case 1:
        out->kind = TraceOp::Kind::Store;
        break;
      case 2:
        out->kind = TraceOp::Kind::Prefetch;
        break;
      default:
        fatal("unknown trace op kind %u in fbt record %llu of '%s'",
              kind,
              static_cast<unsigned long long>(passOps
                                              + /* current */ 1),
              spec.path.c_str());
    }
    out->addr = static_cast<Addr>(getLE64(rec + 5));
}

std::shared_ptr<TraceChunk>
TraceStream::produce()
{
    std::shared_ptr<TraceChunk> c;
    if (pending.valid())
        c = pending.get();
    else
        c = decodeNext();
    // Overlap: kick off the next decode before handing this one out.
    if (worker)
        pending = worker->submit([this] { return decodeNext(); });
    return c;
}

unsigned
TraceStream::addView()
{
    fbdp_assert(window.empty() && firstSeq == 0,
                "register every trace view before replay begins");
    viewSeq.push_back(0);
    return static_cast<unsigned>(viewSeq.size() - 1);
}

std::shared_ptr<const TraceChunk>
TraceStream::chunkFor(unsigned view, std::uint64_t seq)
{
    fbdp_assert(view < viewSeq.size(),
                "unknown trace view %u of '%s'", view,
                spec.path.c_str());
    fbdp_assert(seq >= firstSeq,
                "trace view %u asked for retired chunk %llu", view,
                static_cast<unsigned long long>(seq));
    viewSeq[view] = seq;
    while (firstSeq + window.size() <= seq) {
        window.push_back(produce());
        windowPeak = std::max(windowPeak, window.size());
    }
    // Retire chunks every view has passed (each view still holds a
    // shared_ptr to its current chunk, so dropping the window entry
    // below the minimum is safe).
    std::uint64_t minSeq =
        *std::min_element(viewSeq.begin(), viewSeq.end());
    while (firstSeq < minSeq && !window.empty()) {
        window.pop_front();
        ++firstSeq;
    }
    return window[static_cast<std::size_t>(seq - firstSeq)];
}

// ---------------------------------------------------------------- //
// StreamingTraceGenerator                                           //
// ---------------------------------------------------------------- //

StreamingTraceGenerator::StreamingTraceGenerator(
    std::shared_ptr<TraceStream> stream, Addr base_addr)
    : str(std::move(stream)), viewId(str->addView()), base(base_addr)
{
    prof.name = "trace:" + str->path();
}

StreamingTraceGenerator::StreamingTraceGenerator(
    const TraceSpec &spec, Addr base_addr)
    : StreamingTraceGenerator(std::make_shared<TraceStream>(spec),
                              base_addr)
{
}

void
StreamingTraceGenerator::advanceChunk()
{
    // A pass completes when its lastOfPass chunk is fully consumed —
    // the same op boundary where TraceFileGenerator resets its
    // cursor.  Empty chunks (comment-only blocks, or the zero-op
    // chunk a chunk-aligned file ends on) are skipped here; a whole
    // pass with no ops is fatal inside the decoder, so this loop
    // always terminates with ops in hand.
    for (;;) {
        if (chunk->lastOfPass)
            ++nWraps;
        chunk = str->chunkFor(viewId, ++seq);
        idx = 0;
        if (!chunk->ops.empty())
            return;
    }
}

TraceOp
StreamingTraceGenerator::next()
{
    if (!chunk) {
        chunk = str->chunkFor(viewId, 0);
        while (chunk->ops.empty()) {
            if (chunk->lastOfPass)
                ++nWraps;
            chunk = str->chunkFor(viewId, ++seq);
        }
    }
    TraceOp op = chunk->ops[idx];
    op.addr += base;
    ++nOps;
    if (++idx == chunk->ops.size())
        advanceChunk();
    return op;
}

// ---------------------------------------------------------------- //
// TracePassReader                                                   //
// ---------------------------------------------------------------- //

TracePassReader::TracePassReader(const TraceSpec &spec,
                                 bool background)
    : str(std::make_shared<TraceStream>(spec, background)),
      viewId(str->addView())
{
}

bool
TracePassReader::next(TraceOp *out)
{
    while (true) {
        if (done)
            return false;
        if (!chunk || idx == chunk->ops.size()) {
            if (chunk && chunk->lastOfPass) {
                done = true;
                return false;
            }
            chunk = str->chunkFor(viewId, chunk ? ++seq : 0);
            idx = 0;
            continue;
        }
        *out = chunk->ops[idx++];
        return true;
    }
}

} // namespace fbdp
