#include "workload/generator.hh"

#include "common/logging.hh"

namespace fbdp {

SyntheticGenerator::SyntheticGenerator(const BenchProfile &profile_in,
                                       Addr base_addr,
                                       std::uint64_t seed,
                                       bool sw_prefetch)
    : prof(profile_in),
      base(base_addr),
      spEnabled(sw_prefetch),
      rng(seed ^ 0xfbd0fbd0fbd0fbd0ULL)
{
    fbdp_assert(prof.nStreams >= 1, "profile needs >= 1 stream");
    fbdp_assert(prof.elemBytes >= 1, "zero stream element");

    // Carve the footprint (beyond the hot set) into per-stream lanes.
    const Addr stream_area = prof.footprint > prof.hotBytes
        ? prof.footprint - prof.hotBytes
        : prof.footprint;
    // Lanes stay line-aligned so stride patterns land on real
    // cacheline boundaries.
    const Addr lane = lineAlign(stream_area / prof.nStreams);
    streams.resize(prof.nStreams);
    storeStreams = static_cast<size_t>(
        prof.storeFrac * static_cast<double>(prof.nStreams) + 0.5);
    if (storeStreams >= prof.nStreams && prof.nStreams > 1)
        storeStreams = prof.nStreams - 1;
    const auto n_stride2 = static_cast<unsigned>(
        prof.stride2Frac * static_cast<double>(prof.nStreams) + 0.5);
    for (unsigned s = 0; s < prof.nStreams; ++s) {
        streams[s].laneBase = base + prof.hotBytes
            + static_cast<Addr>(s) * lane;
        streams[s].laneSize = lane;
        streams[s].cursor = streams[s].laneBase
            + lineAlign(randomIn(0, lane / 2));
        // The trailing streams stride; the leading (store) streams
        // stay unit-stride, as output arrays are written densely.
        if (s >= prof.nStreams - n_stride2)
            streams[s].lineStride = 2;
    }
}

Addr
SyntheticGenerator::randomIn(Addr base_addr, Addr size)
{
    if (size == 0)
        return base_addr;
    return base_addr + rng.below(size);
}

TraceOp
SyntheticGenerator::next()
{
    ++nOps;
    if (!queued.empty()) {
        TraceOp op = queued.front();
        queued.pop_front();
        ++nPrefetchOps;
        return op;
    }

    TraceOp op;
    op.gap = static_cast<std::uint32_t>(
        rng.geometric(prof.meanGap, 0));

    if (rng.chance(prof.streamFrac)) {
        // Sequential stream access.  Streams advance in lockstep
        // (round-robin), like the arrays of a vector inner loop.
        const size_t idx = nextStream;
        Stream &s = streams[idx];
        if (++nextStream == streams.size())
            nextStream = 0;
        if (rng.chance(prof.jumpProb)
            || s.cursor + prof.elemBytes
               >= s.laneBase + s.laneSize) {
            s.cursor = s.laneBase
                + lineAlign(randomIn(0, s.laneSize - lineBytes));
        }
        op.addr = s.cursor;
        s.cursor += prof.elemBytes;
        // First element touching a cacheline == the stream crossed
        // into a new line.  A strided stream then skips ahead past
        // the lines it does not touch.
        const bool new_line =
            (op.addr - s.laneBase) % lineBytes < prof.elemBytes;
        if (s.lineStride > 1
            && (s.cursor - s.laneBase) % lineBytes == 0) {
            s.cursor += static_cast<Addr>(s.lineStride - 1) * lineBytes;
        }
        ++nStreamOps;
        if (new_line)
            ++nCrossings;
        if (spEnabled && new_line && rng.chance(prof.spCoverage)) {
            TraceOp pf;
            pf.gap = 0;
            pf.kind = TraceOp::Kind::Prefetch;
            pf.addr = lineAlign(op.addr)
                + static_cast<Addr>(prof.spDistanceLines) * lineBytes;
            queued.push_back(pf);
        }
        // The first storeStreams streams are output arrays (all
        // stores); the rest are inputs (all loads).  Vector codes
        // write whole result arrays rather than scattering stores
        // over every array, so write traffic scales with the share
        // of output streams, not with the raw store fraction.
        op.kind = idx < storeStreams
            ? TraceOp::Kind::Store
            : TraceOp::Kind::Load;
        return op;
    } else if (rng.chance(prof.hotFrac)) {
        // Hot-set access (mostly cache resident).
        op.addr = randomIn(base, prof.hotBytes);
        ++nHotOps;
    } else {
        // Cold irregular access.
        op.addr = randomIn(base, prof.footprint);
        ++nColdOps;
    }

    op.kind = rng.chance(prof.storeFrac)
        ? TraceOp::Kind::Store
        : TraceOp::Kind::Load;
    return op;
}

} // namespace fbdp
