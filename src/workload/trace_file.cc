#include "workload/trace_file.hh"

#include <cstdio>

#include "common/logging.hh"

namespace fbdp {

std::string
formatTraceOp(const TraceOp &op)
{
    char kind = 'L';
    if (op.kind == TraceOp::Kind::Store)
        kind = 'S';
    else if (op.kind == TraceOp::Kind::Prefetch)
        kind = 'P';
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%u %c %llx", op.gap, kind,
                  static_cast<unsigned long long>(op.addr));
    return buf;
}

bool
parseTraceOp(const std::string &line, TraceOp *out)
{
    if (line.empty() || line[0] == '#')
        return false;
    unsigned gap = 0;
    char kind = 0;
    unsigned long long addr = 0;
    if (std::sscanf(line.c_str(), "%u %c %llx", &gap, &kind, &addr)
        != 3) {
        fatal("malformed trace line: '%s'", line.c_str());
    }
    out->gap = gap;
    out->addr = static_cast<Addr>(addr);
    switch (kind) {
      case 'L':
        out->kind = TraceOp::Kind::Load;
        break;
      case 'S':
        out->kind = TraceOp::Kind::Store;
        break;
      case 'P':
        out->kind = TraceOp::Kind::Prefetch;
        break;
      default:
        fatal("unknown trace op kind '%c'", kind);
    }
    return true;
}

TraceRecorder::TraceRecorder(Generator *inner, const std::string &path)
    : src(inner), out(path)
{
    fbdp_assert(src != nullptr, "recording a null generator");
    if (!out)
        fatal("cannot open trace file '%s' for writing",
              path.c_str());
    out << "# fbdp trace: " << src->profile().name << "\n";
}

TraceOp
TraceRecorder::next()
{
    TraceOp op = src->next();
    out << formatTraceOp(op) << "\n";
    ++nRecorded;
    return op;
}

TraceFileGenerator::TraceFileGenerator(const std::string &path,
                                       Addr base_addr)
    : base(base_addr)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open trace file '%s'", path.c_str());
    prof.name = "trace:" + path;
    std::string line;
    TraceOp op;
    while (std::getline(in, line)) {
        if (parseTraceOp(line, &op))
            ops.push_back(op);
    }
    if (ops.empty())
        fatal("trace file '%s' contains no operations", path.c_str());
}

TraceOp
TraceFileGenerator::next()
{
    TraceOp op = ops[cursor];
    op.addr += base;
    if (++cursor == ops.size()) {
        cursor = 0;
        ++nWraps;
    }
    return op;
}

} // namespace fbdp
