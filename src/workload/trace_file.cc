#include "workload/trace_file.hh"

#include <cstdio>

#include "common/logging.hh"
#include "workload/trace_stream.hh"

namespace fbdp {

std::string
formatTraceOp(const TraceOp &op)
{
    char kind = 'L';
    if (op.kind == TraceOp::Kind::Store)
        kind = 'S';
    else if (op.kind == TraceOp::Kind::Prefetch)
        kind = 'P';
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%u %c %llx", op.gap, kind,
                  static_cast<unsigned long long>(op.addr));
    return buf;
}

bool
parseTraceOp(const std::string &line, TraceOp *out,
             std::uint64_t line_no)
{
    // Tolerate CRLF line endings and whitespace-only lines: getline
    // on a DOS-format trace leaves a trailing '\r', and editors love
    // to leave blank-looking lines that contain a stray tab.
    std::size_t end = line.size();
    while (end > 0
           && (line[end - 1] == '\r' || line[end - 1] == ' '
               || line[end - 1] == '\t'))
        --end;
    std::size_t begin = 0;
    while (begin < end && (line[begin] == ' ' || line[begin] == '\t'))
        ++begin;
    if (begin == end || line[begin] == '#')
        return false;
    const std::string body = line.substr(begin, end - begin);
    unsigned gap = 0;
    char kind = 0;
    unsigned long long addr = 0;
    if (std::sscanf(body.c_str(), "%u %c %llx", &gap, &kind, &addr)
        != 3) {
        if (line_no)
            fatal("malformed trace line %llu: '%s'",
                  static_cast<unsigned long long>(line_no),
                  body.c_str());
        fatal("malformed trace line: '%s'", body.c_str());
    }
    out->gap = gap;
    out->addr = static_cast<Addr>(addr);
    switch (kind) {
      case 'L':
        out->kind = TraceOp::Kind::Load;
        break;
      case 'S':
        out->kind = TraceOp::Kind::Store;
        break;
      case 'P':
        out->kind = TraceOp::Kind::Prefetch;
        break;
      default:
        if (line_no)
            fatal("unknown trace op kind '%c' on line %llu", kind,
                  static_cast<unsigned long long>(line_no));
        fatal("unknown trace op kind '%c'", kind);
    }
    return true;
}

TraceRecorder::TraceRecorder(Generator *inner, const std::string &path)
    : src(inner), outPath(path), out(path)
{
    fbdp_assert(src != nullptr, "recording a null generator");
    if (!out)
        fatal("cannot open trace file '%s' for writing",
              path.c_str());
    out << "# fbdp trace: " << src->profile().name << "\n";
}

TraceRecorder::~TraceRecorder()
{
    // A full disk surfaces here at the latest: flush everything the
    // stream still buffers and refuse to pretend the trace is whole.
    out.flush();
    if (!out)
        fatal("write to trace file '%s' failed (disk full?); "
              "recorded trace is incomplete", outPath.c_str());
}

TraceOp
TraceRecorder::next()
{
    TraceOp op = src->next();
    out << formatTraceOp(op) << "\n";
    if (!out)
        fatal("write to trace file '%s' failed (disk full?) after "
              "%llu ops", outPath.c_str(),
              static_cast<unsigned long long>(nRecorded));
    ++nRecorded;
    return op;
}

std::shared_ptr<const std::vector<TraceOp>>
TraceFileGenerator::loadOps(const std::string &path)
{
    // One pass through the chunked decoder: the same parser (and the
    // same format auto-detection — text / .fbt / gzip) as the
    // streaming replayer, just materialised fully.
    TraceSpec spec;
    spec.path = path;
    TracePassReader reader(spec);
    auto ops = std::make_shared<std::vector<TraceOp>>();
    if (reader.header().opCount)
        ops->reserve(reader.header().opCount);
    TraceOp op;
    while (reader.next(&op))
        ops->push_back(op);
    return ops;
}

TraceFileGenerator::TraceFileGenerator(const std::string &path,
                                       Addr base_addr)
    : TraceFileGenerator(loadOps(path), path, base_addr)
{
}

TraceFileGenerator::TraceFileGenerator(
    std::shared_ptr<const std::vector<TraceOp>> shared_ops,
    const std::string &path, Addr base_addr)
    : ops(std::move(shared_ops)), base(base_addr)
{
    fbdp_assert(ops != nullptr, "replaying a null op vector");
    fbdp_assert(!ops->empty(),
                "trace '%s' loaded empty", path.c_str());
    prof.name = "trace:" + path;
}

TraceOp
TraceFileGenerator::next()
{
    TraceOp op = (*ops)[cursor];
    op.addr += base;
    if (++cursor == ops->size()) {
        cursor = 0;
        ++nWraps;
    }
    return op;
}

} // namespace fbdp
