#include "workload/profile.hh"

#include "common/logging.hh"

namespace fbdp {

namespace {

std::vector<BenchProfile>
makeProfiles()
{
    std::vector<BenchProfile> v;

    auto add = [&v](const char *name, double ipc, double gap,
                    double st, unsigned streams, double sf,
                    unsigned elem, Addr foot_mb, double jump,
                    double hot, double spc, unsigned spd) {
        BenchProfile p;
        p.name = name;
        p.baseIpc = ipc;
        p.meanGap = gap;
        p.storeFrac = st;
        p.nStreams = streams;
        p.streamFrac = sf;
        p.elemBytes = elem;
        p.footprint = foot_mb << 20;
        p.jumpProb = jump;
        p.hotFrac = hot;
        // The non-stream, non-cold accesses model scalars, stack and
        // small structures: an essentially L1-resident working set.
        // Irregular *misses* come from the cold fraction; L2
        // contention at high core counts comes from the streams.
        p.hotBytes = 48 * 1024;
        p.spCoverage = spc;
        p.spDistanceLines = spd;
        return &v.emplace_back(p);
    };

    // Floating-point streamers: several long unit-stride streams,
    // large footprints, good compiler prefetch coverage.
    add("wupwise", 2.5, 9.0, 0.30, 4, 0.85, 8, 96, 0.002, 0.97,
        0.75, 4);
    add("swim",    2.2, 8.0, 0.35, 8, 0.95, 8, 192, 0.001, 0.97,
        0.80, 4);
    add("mgrid",   2.4, 11.0, 0.25, 6, 0.92, 8, 128, 0.002, 0.97,
        0.75, 4);
    add("applu",   2.2, 9.0, 0.30, 6, 0.90, 8, 160, 0.002, 0.97,
        0.75, 4);
    add("equake",  1.8, 8.0, 0.20, 5, 0.80, 8, 128, 0.004, 0.95,
        0.65, 4);
    add("facerec", 2.0, 11.0, 0.20, 4, 0.85, 8, 96, 0.003, 0.96,
        0.70, 4);
    add("lucas",   2.0, 11.0, 0.30, 4, 0.88, 8, 128, 0.002, 0.97,
        0.75, 4);
    add("fma3d",   1.8, 11.0, 0.30, 5, 0.75, 8, 96, 0.004, 0.95,
        0.60, 4);

    // Integer codes: fewer/shorter streams, irregular cold accesses,
    // weak prefetch coverage.
    add("vpr",     1.3, 11.0, 0.25, 2, 0.30, 8, 48, 0.010, 0.96,
        0.15, 4);
    add("parser",  1.2, 12.0, 0.30, 2, 0.30, 8, 64, 0.015, 0.97,
        0.10, 4);
    add("gap",     1.5, 11.0, 0.25, 3, 0.45, 8, 96, 0.010, 0.97,
        0.20, 6);
    add("vortex",  1.4, 12.0, 0.35, 2, 0.40, 8, 64, 0.010, 0.975,
        0.15, 4);

    // The two memory-intensive programs the paper *excludes* from
    // its workloads (Section 4.2): art's miss rate flips between
    // almost-zero and huge around a 2-4 MB L2, and mcf's IPC is so
    // low it would dominate any average.  They are modelled here for
    // custom experiments but appear in no Table 3 mix.
    add("art",     1.0, 3.0, 0.15, 2, 0.55, 8, 5, 0.003, 0.60,
        0.20, 4);
    add("mcf",     0.6, 5.0, 0.20, 1, 0.15, 8, 160, 0.020, 0.75,
        0.05, 4);

    // Strided-sweep share per program: stencil and plane-walking
    // codes (mgrid, applu, fma3d) touch memory with coarser strides;
    // pointer-ish integer codes rarely walk densely either.
    const struct { const char *name; double frac; } strides[] = {
        {"wupwise", 0.3}, {"swim", 0.4}, {"mgrid", 0.6},
        {"applu", 0.5},  {"equake", 0.4}, {"facerec", 0.4},
        {"lucas", 0.3},  {"fma3d", 0.5},  {"vpr", 0.5},
        {"parser", 0.5}, {"gap", 0.3},    {"vortex", 0.5},
    };
    for (auto &p : v) {
        for (const auto &st : strides) {
            if (p.name == st.name)
                p.stride2Frac = st.frac;
        }
    }

    return v;
}

} // namespace

const std::vector<BenchProfile> &
allProfiles()
{
    static const std::vector<BenchProfile> profiles = makeProfiles();
    return profiles;
}

const std::vector<BenchProfile> &
paperSuite()
{
    static const std::vector<BenchProfile> suite = [] {
        std::vector<BenchProfile> v = allProfiles();
        v.resize(12);  // drop art and mcf (Section 4.2)
        return v;
    }();
    return suite;
}

const BenchProfile &
benchProfile(const std::string &name)
{
    for (const auto &p : allProfiles()) {
        if (p.name == name)
            return p;
    }
    fatal("unknown benchmark '%s'", name.c_str());
}

} // namespace fbdp
