#include "workload/mixes.hh"

#include "common/logging.hh"
#include "workload/profile.hh"

namespace fbdp {

const std::vector<WorkloadMix> &
singleCoreMixes()
{
    static const std::vector<WorkloadMix> mixes = [] {
        std::vector<WorkloadMix> v;
        for (const auto &p : paperSuite())
            v.push_back({"1C-" + p.name, {p.name}});
        return v;
    }();
    return mixes;
}

const std::vector<WorkloadMix> &
dualCoreMixes()
{
    static const std::vector<WorkloadMix> mixes = {
        {"2C-1", {"wupwise", "swim"}},
        {"2C-2", {"mgrid", "applu"}},
        {"2C-3", {"vpr", "equake"}},
        {"2C-4", {"facerec", "lucas"}},
        {"2C-5", {"fma3d", "parser"}},
        {"2C-6", {"gap", "vortex"}},
    };
    return mixes;
}

const std::vector<WorkloadMix> &
quadCoreMixes()
{
    static const std::vector<WorkloadMix> mixes = {
        {"4C-1", {"wupwise", "swim", "mgrid", "applu"}},
        {"4C-2", {"vpr", "equake", "facerec", "lucas"}},
        {"4C-3", {"fma3d", "parser", "gap", "vortex"}},
        {"4C-4", {"wupwise", "mgrid", "vpr", "facerec"}},
        {"4C-5", {"fma3d", "gap", "swim", "applu"}},
        {"4C-6", {"equake", "lucas", "parser", "vortex"}},
    };
    return mixes;
}

const std::vector<WorkloadMix> &
octoCoreMixes()
{
    static const std::vector<WorkloadMix> mixes = {
        {"8C-1", {"wupwise", "swim", "mgrid", "applu",
                  "vpr", "equake", "facerec", "lucas"}},
        {"8C-2", {"wupwise", "swim", "mgrid", "applu",
                  "fma3d", "parser", "gap", "vortex"}},
        {"8C-3", {"vpr", "equake", "facerec", "lucas",
                  "fma3d", "parser", "gap", "vortex"}},
    };
    return mixes;
}

const std::vector<WorkloadMix> &
mixesFor(unsigned cores)
{
    switch (cores) {
      case 1:
        return singleCoreMixes();
      case 2:
        return dualCoreMixes();
      case 4:
        return quadCoreMixes();
      case 8:
        return octoCoreMixes();
      default:
        fatal("no workload mixes with %u cores", cores);
    }
}

const WorkloadMix &
mixByName(const std::string &name)
{
    for (unsigned c : {1u, 2u, 4u, 8u}) {
        for (const auto &m : mixesFor(c)) {
            if (m.name == name)
                return m;
        }
    }
    fatal("unknown workload mix '%s'", name.c_str());
}

} // namespace fbdp
