/**
 * @file
 * Trace recording and replay (the in-RAM path).
 *
 * The synthetic generators are deterministic, but users often want to
 * (a) inspect exactly what a core executed, (b) replay the identical
 * access stream under a modified memory system, or (c) feed the
 * simulator traces produced by other tools.  TraceRecorder tees any
 * Generator to a text file; TraceFileGenerator replays a recorded
 * file after materialising it fully in memory.  For traces that do
 * not fit in RAM (or should not be copied per core), the streaming
 * frontend in workload/trace_stream.hh replays the same files with
 * bounded, chunked buffering — bit-identical to this replayer.
 *
 * Text format: one operation per line, `<gap> <kind> <addr-hex>`
 * where kind is L (load), S (store) or P (software prefetch).  Lines
 * starting with '#' are comments; blank and whitespace-only lines
 * (including a lone carriage return from CRLF files) are skipped.
 * The loader also accepts the compact binary `.fbt` format and
 * gzip-compressed files of either format (auto-detected by magic;
 * see trace_stream.hh).
 */

#ifndef FBDP_WORKLOAD_TRACE_FILE_HH
#define FBDP_WORKLOAD_TRACE_FILE_HH

#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "workload/generator.hh"

namespace fbdp {

/** Pass-through generator that records every op to a text file. */
class TraceRecorder : public Generator
{
  public:
    /**
     * @param inner the generator to record (not owned)
     * @param path  output trace file
     */
    TraceRecorder(Generator *inner, const std::string &path);

    /** Flushes and fatals if any write failed (e.g. disk full). */
    ~TraceRecorder() override;

    TraceOp next() override;
    const BenchProfile &profile() const override
    {
        return src->profile();
    }

    std::uint64_t recorded() const { return nRecorded; }

  private:
    Generator *src;
    std::string outPath;
    std::ofstream out;
    std::uint64_t nRecorded = 0;
};

/**
 * Replays a recorded trace from memory; loops back to the start at
 * EOF.  Cores replaying the same file share one loaded op vector
 * (each core gets its own cursor and base offset), so an N-core
 * replay costs one copy of the trace, not N.
 */
class TraceFileGenerator : public Generator
{
  public:
    /**
     * Load @p path (text, .fbt or gzip of either — detected by
     * magic) and replay it.
     * @param path      trace file to replay
     * @param base_addr offset added to every address (core slicing)
     */
    explicit TraceFileGenerator(const std::string &path,
                                Addr base_addr = 0);

    /**
     * Replay an already-loaded trace (from loadOps()); the sharing
     * constructor for multi-core slicing.
     */
    TraceFileGenerator(
        std::shared_ptr<const std::vector<TraceOp>> shared_ops,
        const std::string &path, Addr base_addr = 0);

    /**
     * Load every op of @p path into one shareable vector.  Fatal on
     * missing/empty/malformed files (with the offending line number
     * for text input).
     */
    static std::shared_ptr<const std::vector<TraceOp>>
    loadOps(const std::string &path);

    TraceOp next() override;
    const BenchProfile &profile() const override { return prof; }

    size_t size() const { return ops->size(); }
    std::uint64_t wraps() const { return nWraps; }

  private:
    BenchProfile prof;
    std::shared_ptr<const std::vector<TraceOp>> ops;
    size_t cursor = 0;
    Addr base = 0;
    std::uint64_t nWraps = 0;
};

/** Serialise one op in the trace-file text format. */
std::string formatTraceOp(const TraceOp &op);

/**
 * Parse one text line; @return false for comments and blank or
 * whitespace-only lines (trailing CR from CRLF files is ignored).
 * Fatal on malformed input; a non-zero @p line_no is included in the
 * message so users can find the bad record in a gigabyte trace.
 */
bool parseTraceOp(const std::string &line, TraceOp *out,
                  std::uint64_t line_no = 0);

} // namespace fbdp

#endif // FBDP_WORKLOAD_TRACE_FILE_HH
