/**
 * @file
 * Trace recording and replay.
 *
 * The synthetic generators are deterministic, but users often want to
 * (a) inspect exactly what a core executed, (b) replay the identical
 * access stream under a modified memory system, or (c) feed the
 * simulator traces produced by other tools.  TraceRecorder tees any
 * Generator to a text file; TraceFileGenerator replays such a file.
 *
 * Format: one operation per line, `<gap> <kind> <addr-hex>` where
 * kind is L (load), S (store) or P (software prefetch).  Lines
 * starting with '#' are comments.
 */

#ifndef FBDP_WORKLOAD_TRACE_FILE_HH
#define FBDP_WORKLOAD_TRACE_FILE_HH

#include <fstream>
#include <string>
#include <vector>

#include "workload/generator.hh"

namespace fbdp {

/** Pass-through generator that records every op to a file. */
class TraceRecorder : public Generator
{
  public:
    /**
     * @param inner the generator to record (not owned)
     * @param path  output trace file
     */
    TraceRecorder(Generator *inner, const std::string &path);

    TraceOp next() override;
    const BenchProfile &profile() const override
    {
        return src->profile();
    }

    std::uint64_t recorded() const { return nRecorded; }

  private:
    Generator *src;
    std::ofstream out;
    std::uint64_t nRecorded = 0;
};

/** Replays a recorded trace; loops back to the start at EOF. */
class TraceFileGenerator : public Generator
{
  public:
    /**
     * @param path      trace file to replay
     * @param base_addr offset added to every address (core slicing)
     */
    explicit TraceFileGenerator(const std::string &path,
                                Addr base_addr = 0);

    TraceOp next() override;
    const BenchProfile &profile() const override { return prof; }

    size_t size() const { return ops.size(); }
    std::uint64_t wraps() const { return nWraps; }

  private:
    BenchProfile prof;
    std::vector<TraceOp> ops;
    size_t cursor = 0;
    Addr base = 0;
    std::uint64_t nWraps = 0;
};

/** Serialise one op in the trace-file format. */
std::string formatTraceOp(const TraceOp &op);

/** Parse one line; @return false for comments/blank lines. */
bool parseTraceOp(const std::string &line, TraceOp *out);

} // namespace fbdp

#endif // FBDP_WORKLOAD_TRACE_FILE_HH
