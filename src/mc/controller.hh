/**
 * @file
 * The memory controller of one logic channel.
 *
 * One controller instance drives either
 *  - a conventional DDR2 channel (shared command bus, one command per
 *    memory cycle, shared data bus), or
 *  - an FB-DIMM channel (southbound command/write link with three
 *    command slots per frame, northbound read-data link, per-DIMM DDR2
 *    buses behind the AMBs, daisy-chain latency, optional VRL),
 * selected by ControllerConfig::fbd.
 *
 * Scheduling follows the paper: a 64-entry reorder window, the
 * hit-first policy (requests that can be served without opening a row —
 * AMB-cache hits and open-row hits — go first), and read priority over
 * writes until the number of queued writes crosses a drain threshold.
 *
 * With AMB prefetching enabled (FB-DIMM only) a demand read that misses
 * the prefetch information table becomes a K-line region fetch: one
 * activation followed by K pipelined column accesses on the DIMM-level
 * bus; the demanded line is forwarded on the northbound link first and
 * the K-1 neighbours fill the AMB cache without touching the channel.
 */

#ifndef FBDP_MC_CONTROLLER_HH
#define FBDP_MC_CONTROLLER_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include <algorithm>
#include "dram/dimm.hh"
#include "dram/dram_timing.hh"
#include "mc/attribution.hh"
#include "mc/link.hh"
#include "mc/transaction.hh"
#include "prefetch/policy.hh"
#include "prefetch/prefetch_table.hh"
#include "sim/event_queue.hh"
#include "sim/trace.hh"

namespace fbdp {

/** Static configuration of one memory controller / logic channel. */
struct ControllerConfig
{
    bool fbd = true;             ///< FB-DIMM (vs conventional DDR2)
    unsigned nDimms = 4;
    unsigned banksPerDimm = 4;
    DramTiming timing = DramTiming::forDataRate(667);

    Tick cmdDelay = nsToTicks(3);      ///< channel command delay
    Tick ctrlOverhead = nsToTicks(12); ///< controller overhead
    Tick ambHop = nsToTicks(3);        ///< per-AMB pass-through delay
    bool vrl = false;                  ///< variable read latency

    bool openPage = false;       ///< open-page policy (page interleave)

    unsigned queueSize = 64;     ///< reorder-window entries
    unsigned writeDrainHigh = 16;
    unsigned writeDrainLow = 4;

    /** Model DDR2 auto-refresh (tREFI / tRFC). */
    bool refreshEnable = true;

    // --- AMB prefetching ---
    bool apEnable = false;
    unsigned regionLines = 4;    ///< K
    unsigned ambEntries = 64;
    unsigned ambWays = 0;        ///< 0 = fully associative
    bool apFullLatency = false;  ///< APFL analysis mode (Fig. 9)
    bool apOnSwPrefetch = true;  ///< sw-prefetch reads use the AP path
    /** PolicyRegistry key selecting what rides the group fetch. */
    std::string apPolicy = "region";
    unsigned apDegree = 0;       ///< 0 = the policy's default
    double apThrottle = 0.0;     ///< link-util ceiling; 0 = off

    // --- controller-level prefetching (the comparison class the
    //     paper discusses in Section 6, after Lin/Reinhardt/Burger:
    //     region fetches ride the *channel* into a buffer at the
    //     memory controller) ---
    bool mcPrefetch = false;
    unsigned mcEntries = 256;    ///< MC prefetch-buffer lines
    unsigned mcWays = 0;
    std::string mcPolicy = "region";
    unsigned mcDegree = 0;
    double mcThrottle = 0.0;
};

/**
 * Receiver of finished transactions when the controller runs as a
 * channel shard: instead of invoking the completion callback inline
 * (which would touch core/cache state owned by another shard), the
 * controller hands the transaction — with its recorded phase profile —
 * to the sink, which stages it for the core shard's next round.
 */
class CompletionSink
{
  public:
    virtual ~CompletionSink() = default;

    /**
     * @p channel     the completing controller's logic-channel index
     * @p t           the finished transaction (ownership transfers)
     * @p pd          its phase profile (zeros unless @p has_profile)
     * @p has_profile attribution was enabled on the channel
     */
    virtual void complete(unsigned channel, TransPtr t,
                          const PhaseDurations &pd,
                          bool has_profile) = 0;
};

/** One logic-channel memory controller with its DRAM devices. */
class MemController
{
  public:
    MemController(std::string name, EventQueue *event_queue,
                  const ControllerConfig &cfg);

    /** Hand a transaction to the controller at the current tick. */
    void push(TransPtr t);

    /**
     * Hand a transaction that was *sent* at tick @p sent_at (possibly
     * in the previous memory-cycle frame, when the sender is another
     * shard and the message crossed a frame barrier).  Arrival
     * timestamps and the first wake are derived from @p sent_at so
     * latency accounting is independent of when the mailbox drained.
     */
    void pushAt(TransPtr t, Tick sent_at);

    /**
     * Route finished transactions to @p sink (labelled with
     * @p channel) instead of invoking their completion callbacks
     * inline.  nullptr restores inline delivery.  Channel-side
     * statistics and attribution recording are unaffected; only the
     * callback/publish half moves to the sink's owner.
     */
    void
    setCompletionSink(CompletionSink *sink, unsigned channel)
    {
        cSink = sink;
        cSinkChannel = channel;
    }

    /**
     * Bind (or unbind with nullptr) the lifecycle tracer.  @p channel
     * is this controller's logic-channel index; a tracer whose filter
     * excludes the channel binds as nullptr, so filtered-out channels
     * pay nothing.  Interns one track per link, bank and AMB cache.
     */
    void bindTracer(trace::Tracer *t, unsigned channel);

    /**
     * Enable latency-phase attribution (or disable with nullptr).
     * Allocates the per-channel accumulator; the hot path tests the
     * cached `att` pointer exactly like the tracer binding, so a
     * disabled controller pays one branch per stamp site.  Completion
     * profiles are published to @p hub (may be nullptr) for the cores'
     * stall accounting.
     */
    void enableAttribution(AttributionHub *hub);

    /** Phase-breakdown accumulator, nullptr unless enabled. */
    const ChannelAttribution *attribution() const { return att.get(); }

    /** Total requests currently inside the controller. */
    size_t occupancy() const
    {
        return window.size() + overflow.size() + completions.size();
    }

    // --- statistics ---
    std::uint64_t reads() const { return nReads; }
    std::uint64_t writes() const { return nWrites; }
    std::uint64_t channelBytes() const { return nChannelBytes; }
    double avgReadLatencyNs() const;
    std::uint64_t readLatSamples() const { return nReadsDone; }

    /** Read-latency distribution (2 ns buckets up to 1 µs). */
    const stats::Histogram &readLatencyHist() const
    {
        return latHist;
    }

    /** Latency percentile in ns (e.g. 0.95) from the histogram. */
    double readLatencyPercentileNs(double p) const;

    /** Demand reads that missed every prefetch buffer. */
    const stats::Histogram &demandLatencyHist() const
    {
        return latHistDemand;
    }
    /** Reads served from the AMB cache / MC prefetch buffer. */
    const stats::Histogram &prefHitLatencyHist() const
    {
        return latHistPrefHit;
    }
    /** Write (posted) completion latency. */
    const stats::Histogram &writeLatencyHist() const
    {
        return latHistWrite;
    }

    /** AMB/MC hits whose fill had not completed when demanded (the
     *  prefetch arrived, but late — DSPatch-style timeliness). */
    std::uint64_t latePrefetchHits() const { return nLatePfHits; }

    // --- telemetry gauges (cumulative; samplers take deltas) ---
    /** Requests queued in the controller (window + overflow). */
    size_t queueDepth() const
    {
        return window.size() + overflow.size();
    }
    /** Commands ever sent on the southbound/command link. */
    std::uint64_t southCommands() const
    {
        return cmdLink.commandsSent();
    }
    /** Southbound frames that carried write data. */
    std::uint64_t southDataFrames() const
    {
        return cmdLink.framesWithData();
    }
    /** Busy ticks on the northbound (or shared DDR2 data) link. */
    Tick northBusyTicks() const
    {
        return cfg.fbd ? northbound.busyTicks() : sharedBus.busyTicks();
    }
    /** Sum of Bank::busyTicks() over the whole channel. */
    Tick
    bankBusyTicks() const
    {
        Tick sum = 0;
        for (const Dimm &d : dimms)
            sum += d.bankBusyTicks();
        return sum;
    }
    /** Banks currently holding an open row. */
    unsigned
    rowsOpen() const
    {
        unsigned n = 0;
        for (const Dimm &d : dimms)
            n += d.rowsOpen();
        return n;
    }

    /** Aggregate DRAM operation counts across the channel's DIMMs. */
    DramOpCounts dramOps() const;

    const PrefetchTable *prefetchTable() const { return table.get(); }

    /** MC-buffer mirror when mcPrefetch is enabled. */
    const PrefetchTable *mcBuffer() const { return mcBuf.get(); }

    /** Candidate policy of the AMB attachment point (nullptr unless
     *  apEnable). */
    const PrefetchPolicy *ambPolicy() const { return apPol.get(); }

    /** Candidate policy of the MC buffer (nullptr unless mcPrefetch). */
    const PrefetchPolicy *mcBufferPolicy() const { return mcPol.get(); }

    /** The active prefetch policy at either attachment point, or
     *  nullptr when no prefetching is configured. */
    const PrefetchPolicy *
    activePolicy() const
    {
        return apPol ? apPol.get() : mcPol.get();
    }

    std::uint64_t ambHits() const { return nAmbHits; }
    std::uint64_t mcHits() const { return nMcHits; }

    /** AMB hits that lost their line to eviction before the fetch. */
    std::uint64_t hitConversions() const { return nHitConversions; }

    /** Clear measurement counters (not timing state). */
    void resetStats();

    const ControllerConfig &config() const { return cfg; }
    const std::string &name() const { return _name; }

  private:
    /** Return-trip AMB chain delay for data from DIMM @p d. */
    Tick chainDelay(unsigned d) const;

    void wake();
    void scheduleWake(Tick at);
    void refillWindow();
    void issueCycle(Tick now);

    /** Try to issue the next command of @p t at cycle tick @p now.
     *  @return true iff a command slot was consumed. */
    bool tryIssue(Transaction *t, Tick now);

    bool issueAmbHit(Transaction *t, Tick now);
    bool issueMcHit(Transaction *t, Tick now);
    bool issueActivate(Transaction *t, Tick now);
    bool issuePrecharge(Transaction *t, Tick now);
    bool issueRead(Transaction *t, Tick now);
    bool issueWrite(Transaction *t, Tick now);

    /** Open-page: re-derive the phase from live bank state. */
    void recomputeOpenPagePhase(Transaction *t);

    /** AMB-hit line disappeared: fall back to a region fetch. */
    void convertHitToMiss(Transaction *t);

    /** The demand access as the policy sees it. */
    PrefetchAccess policyAccess(const Transaction *t, Tick now) const;

    /**
     * Run the active policy on @p t's demand miss (or hit
     * conversion), vet the emitted candidates (in-region, not the
     * demanded line, no duplicates, throttle), insert the accepted
     * ones into the buffer in emission order and record them on the
     * transaction for the group fetch.  Sets groupLines.
     */
    void emitCandidates(Transaction *t, bool convert);

    /** Retire @p t at @p ready: stats, callback, storage cleanup. */
    void finish(Transaction *t, Tick ready);

    void completionFire();
    unsigned slotsFreeNow(Tick now);

    std::string _name;
    EventQueue *eq;
    ControllerConfig cfg;

    std::vector<Dimm> dimms;

    // Interconnect resources.
    CommandLink cmdLink;                 ///< southbound / DDR2 cmd bus
    BusTracker northbound;               ///< FB-DIMM read-return link
    std::vector<BusTracker> dimmBus;     ///< per-DIMM DDR2 buses (FBD)
    BusTracker sharedBus;                ///< DDR2 baseline data bus

    std::unique_ptr<PrefetchTable> table;
    std::unique_ptr<PrefetchTable> mcBuf;  ///< one pseudo-DIMM

    std::unique_ptr<PrefetchPolicy> apPol; ///< AMB candidate policy
    std::unique_ptr<PrefetchPolicy> mcPol; ///< MC-buffer policy

    /** One finished transaction waiting for its data to arrive. */
    struct Completion
    {
        Tick ready;
        std::uint64_t seq;  ///< FIFO tie-break within a tick
        TransPtr t;
    };

    /** Min-heap order on (ready, seq); seq is unique, so the pop
     *  sequence reproduces the old std::multimap exactly. */
    struct CompletionAfter
    {
        bool
        operator()(const Completion &a, const Completion &b) const
        {
            if (a.ready != b.ready)
                return a.ready > b.ready;
            return a.seq > b.seq;
        }
    };

    /** Pop completions due at or before @p now, FIFO within a tick. */
    bool popCompletionDue(Tick now, TransPtr &out);

    /** Number of scheduler priority classes (see issueCycle). */
    static constexpr int numBuckets = 6;

    std::vector<TransPtr> window;        ///< reorder window, mcSeq order
    std::deque<TransPtr> overflow;       ///< waiting to enter window
    unsigned windowWrites = 0;           ///< writes inside the window

    /** Per-cycle scratch: candidates grouped by priority bucket.
     *  Members so their capacity is recycled across cycles (the old
     *  build-and-sort path allocated and freed a vector per memory
     *  cycle, which dominated the profile). */
    std::vector<Transaction *> bucketCands[numBuckets];
    /** Completed-but-in-flight transactions, a (ready, seq) min-heap:
     *  insertion is near-monotonic in ready time, so sift distances
     *  are short and no per-node allocation happens (vs multimap). */
    std::vector<Completion> completions;
    std::uint64_t nextCompletionSeq = 0;

    bool draining = false;
    std::uint64_t nextMcSeq = 0;

    /** DDR2 baseline only: end of the last write burst on the shared
     *  data bus, for channel-wide write-to-read turnaround. */
    Tick sharedWrDataEnd = 0;

    /** FB-DIMM: DIMM that produced the previous northbound transfer.
     *  Without VRL, back-to-back returns from different DIMMs need a
     *  resynchronisation bubble on the daisy chain. */
    int lastNbDimm = -1;

    /** Reserve the northbound link for one block from DIMM @p d. */
    Tick reserveNorthbound(Tick earliest, unsigned d);

    /** Issue due refreshes; sets refreshPending on blocked DIMMs. */
    void serviceRefresh(Tick now);

    std::vector<Tick> nextRefreshAt;   ///< per DIMM
    std::vector<bool> refreshPending;  ///< overdue, waiting for idle

    Event wakeEvent;
    Event completionEvent;

    // Counters.
    std::uint64_t nReads = 0;
    std::uint64_t nWrites = 0;
    std::uint64_t nReadsDone = 0;
    std::uint64_t nAmbHits = 0;
    std::uint64_t nMcHits = 0;
    std::uint64_t nChannelBytes = 0;
    std::uint64_t nHitConversions = 0;
    std::uint64_t nLatePfHits = 0;
    double readLatTotal = 0.0;  ///< in ticks
    stats::Histogram latHist{"read_latency", "read latency (ns)",
                             0.0, 1000.0, 500};
    // Same geometry as latHist so quantiles are comparable and
    // System::collect can merge them across controllers.
    stats::Histogram latHistDemand{
        "read_latency_demand", "demand-miss read latency (ns)",
        0.0, 1000.0, 500};
    stats::Histogram latHistPrefHit{
        "read_latency_pref_hit", "prefetch-hit read latency (ns)",
        0.0, 1000.0, 500};
    stats::Histogram latHistWrite{
        "write_latency", "write completion latency (ns)",
        0.0, 1000.0, 500};

    /** Lifecycle-tracer binding; tr == nullptr means disabled, so a
     *  trace point costs one branch on this cached pointer. */
    struct TraceBinding
    {
        trace::Tracer *tr = nullptr;
        std::uint32_t txn = 0;    ///< lifecycle instants
        std::uint32_t south = 0;  ///< command/write-data link
        std::uint32_t north = 0;  ///< read-return link
        std::vector<std::uint32_t> bank;  ///< [dimm * banks + bank]
        std::vector<std::uint32_t> amb;   ///< per DIMM (AP only)
        std::vector<std::uint32_t> dimm;  ///< per DIMM (refresh)
    };
    TraceBinding trc;

    /** Phase-attribution accumulator; null == disabled (one branch
     *  per stamp site, same pattern as the tracer binding). */
    std::unique_ptr<ChannelAttribution> att;
    AttributionHub *attHub = nullptr;

    /** Cross-shard completion hand-off; null == deliver inline. */
    CompletionSink *cSink = nullptr;
    unsigned cSinkChannel = 0;

    trace::Kind traceKind(const Transaction *t) const
    {
        if (t->swPrefetch)
            return trace::Kind::Prefetch;
        return t->isRead() ? trace::Kind::Read : trace::Kind::Write;
    }
    /** Lifecycle instant on the txn track, kind-filtered. */
    void
    traceTxn(const char *name, Tick ts, const Transaction *t)
    {
        const trace::Kind k = traceKind(t);
        if (trc.tr->want(k))
            trc.tr->instant(trc.txn, name, ts, k, t->coreId,
                            t->lineAddr);
    }
};

} // namespace fbdp

#endif // FBDP_MC_CONTROLLER_HH
