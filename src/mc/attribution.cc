#include "mc/attribution.hh"

#include <algorithm>

#include "mc/transaction.hh"

namespace fbdp {

const char *
latPhaseName(LatPhase p)
{
    switch (p) {
      case LatPhase::Queue:    return "queue";
      case LatPhase::Sched:    return "sched";
      case LatPhase::BankPrep: return "bank_prep";
      case LatPhase::South:    return "south";
      case LatPhase::Amb:      return "amb";
      case LatPhase::Bank:     return "bank";
      case LatPhase::North:    return "north";
    }
    return "?";
}

const char *
latClassName(LatClass c)
{
    switch (c) {
      case LatClass::DemandRead: return "demand";
      case LatClass::PrefHit:    return "pref_hit";
      case LatClass::SwPrefetch: return "sw_prefetch";
      case LatClass::Write:      return "write";
    }
    return "?";
}

const char *
stallReasonName(unsigned reason)
{
    switch (reason) {
      case 0: return "rob";
      case 1: return "lq";
      case 2: return "sq";
      case 3: return "mshr";
    }
    return "?";
}

LatClass
latClassOf(const Transaction &t)
{
    if (!t.isRead())
        return LatClass::Write;
    if (t.ambServed)
        return LatClass::PrefHit;
    if (t.swPrefetch)
        return LatClass::SwPrefetch;
    return LatClass::DemandRead;
}

PhaseDurations
computePhaseDurations(const Transaction &t)
{
    PhaseDurations d;
    d.cls = latClassOf(t);

    // Boundary sequence of the transaction's life at the controller.
    // A stamp of 0 means "phase never happened" (e.g. an AMB hit has
    // no BankPrep); clamping each boundary to at least its predecessor
    // gives that phase a zero-width interval while keeping the
    // telescoping-sum identity intact.
    Tick b[numLatPhases + 1] = {
        t.arrivedAtMc,   // -> Queue
        t.earliestIssue, // -> Sched
        t.stampIssue,    // -> BankPrep
        t.stampCas,      // -> South
        t.stampArrive,   // -> Amb / Bank
        t.stampData,     // -> North
        t.completedAt,
    };
    for (unsigned i = 1; i <= numLatPhases; ++i)
        b[i] = std::max(b[i], b[i - 1]);

    d.phase[0] = b[1] - b[0];                     // Queue
    d.phase[1] = b[2] - b[1];                     // Sched
    d.phase[2] = b[3] - b[2];                     // BankPrep
    d.phase[3] = b[4] - b[3];                     // South
    // The [arrive, data] interval is AMB service for buffer hits and
    // DRAM bank service otherwise; the two phases are exclusive.
    const Tick service = b[5] - b[4];
    if (t.ambServed) {
        d.phase[4] = service;                     // Amb
    } else {
        d.phase[5] = service;                     // Bank
    }
    d.phase[6] = b[6] - b[5];                     // North
    d.total = b[6] - b[0];
    return d;
}

ChannelAttribution::ChannelAttribution()
{
    // Same geometry as the controller's read-latency histograms so
    // the breakdown percentiles compose with latencyPercentiles().
    for (unsigned c = 0; c < numLatClasses; ++c) {
        auto &cl = classes[c];
        cl.hist.reserve(numLatPhases);
        for (unsigned p = 0; p < numLatPhases; ++p) {
            cl.hist.emplace_back(
                std::string(latClassName(static_cast<LatClass>(c))) +
                    "_" + latPhaseName(static_cast<LatPhase>(p)),
                "phase latency (ns)", 0.0, 1000.0, 500);
        }
    }
}

PhaseDurations
ChannelAttribution::record(const Transaction &t)
{
    PhaseDurations d = computePhaseDurations(t);
    auto &cl = classes[static_cast<unsigned>(d.cls)];
    ++cl.samples;
    cl.totalTicks += d.total;
    for (unsigned p = 0; p < numLatPhases; ++p) {
        cl.phaseTicks[p] += d.phase[p];
        cl.hist[p].sample(ticksToNs(d.phase[p]));
    }
    return d;
}

void
ChannelAttribution::reset()
{
    for (auto &cl : classes) {
        cl.samples = 0;
        cl.totalTicks = 0;
        std::fill(std::begin(cl.phaseTicks), std::end(cl.phaseTicks),
                  std::uint64_t{0});
        for (auto &h : cl.hist)
            h.reset();
    }
}

void
CoreStallAttribution::attribute(unsigned reason, Tick dt,
                                const AttributionHub &hub)
{
    if (reason >= numReasons || dt == 0)
        return;

    switch (hub.source()) {
      case AttributionHub::Source::L2Hit:
        l2Wait[reason] += dt;
        return;
      case AttributionHub::Source::None:
        unattributed[reason] += dt;
        return;
      case AttributionHub::Source::Memory:
        break;
    }

    const PhaseDurations &d = hub.lastCompleted();
    if (d.total == 0) {
        unattributed[reason] += dt;
        return;
    }

    // Split dt across the transaction's phases in proportion to their
    // share of its latency.  Integer division leaves a remainder of at
    // most numLatPhases-1 ticks; assign it to the largest phase so the
    // per-reason rows sum to the reason's stall total exactly.
    Tick assigned = 0;
    unsigned largest = 0;
    for (unsigned p = 0; p < numLatPhases; ++p) {
        // Products fit: dt and phase are picoseconds of one run.
        const Tick share =
            static_cast<Tick>(static_cast<__uint128_t>(dt) * d.phase[p] /
                              d.total);
        byPhase[reason][p] += share;
        assigned += share;
        if (d.phase[p] > d.phase[largest])
            largest = p;
    }
    byPhase[reason][largest] += dt - assigned;
}

Tick
CoreStallAttribution::reasonTotal(unsigned reason) const
{
    if (reason >= numReasons)
        return 0;
    Tick sum = l2Wait[reason] + unattributed[reason];
    for (unsigned p = 0; p < numLatPhases; ++p)
        sum += byPhase[reason][p];
    return sum;
}

double
ClassPhaseBreakdown::meanTotalNs() const
{
    if (!samples)
        return 0.0;
    return static_cast<double>(totalTicks)
        / static_cast<double>(samples) / static_cast<double>(ticksPerNs);
}

double
ClassPhaseBreakdown::meanPhaseNs(unsigned p) const
{
    if (!samples || p >= numLatPhases)
        return 0.0;
    return static_cast<double>(phaseTicks[p])
        / static_cast<double>(samples) / static_cast<double>(ticksPerNs);
}

void
ClassPhaseBreakdown::merge(const ClassPhaseBreakdown &o)
{
    samples += o.samples;
    totalTicks += o.totalTicks;
    for (unsigned p = 0; p < numLatPhases; ++p)
        phaseTicks[p] += o.phaseTicks[p];
}

void
ChannelBreakdown::merge(const ChannelBreakdown &o)
{
    for (unsigned c = 0; c < numLatClasses; ++c)
        cls[c].merge(o.cls[c]);
}

Tick
CoreCycleBreakdown::stallTotal() const
{
    Tick sum = 0;
    for (Tick s : stall)
        sum += s;
    return sum;
}

Tick
CoreCycleBreakdown::baseTicks() const
{
    const Tick s = stallTotal();
    return windowTicks > s ? windowTicks - s : 0;
}

} // namespace fbdp
