/**
 * @file
 * Latency-phase attribution: where did each transaction's time go?
 *
 * Every transaction carries a small set of boundary timestamps (see
 * Transaction::stamp*) recorded as it moves through the controller.
 * At completion they are folded into a strictly telescoping sequence
 * of phase intervals, so the attributed phase times of one transaction
 * sum to its end-to-end latency *exactly*, in integer ticks — the
 * conservation property tests/test_attribution.cc asserts.
 *
 * The layer follows PR 3's observer pattern: always compiled, enabled
 * per run, and gated behind one cached pointer on the hot path so a
 * disabled simulation pays a single predictable branch.  Attribution
 * never mutates simulation state, so enabling it cannot change
 * results.
 *
 * The AttributionHub additionally links the memory side to the CPU
 * side: the controller publishes the phase profile of each completing
 * transaction immediately before invoking its completion callback, and
 * any core whose stall ends inside that callback chain charges the
 * stalled cycles to the phases of the transaction that unblocked it
 * (the paper's Fig. 9 decomposition, per stall reason).
 */

#ifndef FBDP_MC_ATTRIBUTION_HH
#define FBDP_MC_ATTRIBUTION_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace fbdp {

struct Transaction;

/** One latency phase of a transaction's life at the controller. */
enum class LatPhase : unsigned {
    Queue,    ///< controller front-end overhead (arrival -> eligible)
    Sched,    ///< reorder-window wait (eligible -> first command)
    BankPrep, ///< PRE/ACT + bank-conflict wait before the CAS
    South,    ///< south-link command (and write-data) transfer
    Amb,      ///< AMB queue / AMB-cache fill wait (prefetch hits)
    Bank,     ///< DRAM bank service (CAS arrival -> data off the pins)
    North,    ///< north-link queue + transfer back to the controller
};

constexpr unsigned numLatPhases = 7;

/** Transaction class a phase breakdown is kept for. */
enum class LatClass : unsigned {
    DemandRead, ///< reads that missed every prefetch buffer
    PrefHit,    ///< reads served by the AMB cache / MC buffer
    SwPrefetch, ///< software-prefetch reads on the demand path
    Write,      ///< posted writes
};

constexpr unsigned numLatClasses = 4;

/** Short column-safe name ("queue", "sched", ...). */
const char *latPhaseName(LatPhase p);
/** Short column-safe name ("demand", "pref_hit", ...). */
const char *latClassName(LatClass c);

/** Phase intervals of one transaction, in ticks; sums to total. */
struct PhaseDurations
{
    Tick phase[numLatPhases] = {};
    Tick total = 0;
    LatClass cls = LatClass::DemandRead;
};

/** Classify a completed transaction. */
LatClass latClassOf(const Transaction &t);

/**
 * Fold a completed transaction's boundary stamps into phase
 * intervals.  Boundaries are clamped monotonically (an unset stamp
 * inherits its predecessor), so the intervals telescope and
 * sum(phase[]) == completedAt - arrivedAtMc holds exactly.
 */
PhaseDurations computePhaseDurations(const Transaction &t);

/**
 * Hand-off point between the memory controllers and the cores.  The
 * controller publishes the phase profile of a completing transaction
 * for the duration of its completion callback; a core ending a stall
 * inside that chain reads it to attribute the stalled cycles.  Cores
 * publish an L2 marker around their self-scheduled (L2-hit)
 * completions the same way.
 */
class AttributionHub
{
  public:
    enum class Source { None, Memory, L2Hit };

    void
    publish(const PhaseDurations &d)
    {
        src = Source::Memory;
        last = d;
    }
    void publishL2() { src = Source::L2Hit; }
    void clear() { src = Source::None; }

    Source source() const { return src; }
    const PhaseDurations &lastCompleted() const { return last; }

  private:
    Source src = Source::None;
    PhaseDurations last;
};

/**
 * Per-channel phase-breakdown accumulator: for every transaction
 * class, integer tick totals per phase (exact) plus one per-phase
 * histogram in nanoseconds (distribution shape).  Allocated only when
 * attribution is enabled.
 */
class ChannelAttribution
{
  public:
    struct ClassAccum
    {
        std::uint64_t samples = 0;
        std::uint64_t totalTicks = 0;
        std::uint64_t phaseTicks[numLatPhases] = {};
        /** Per-phase latency histograms (ns), same geometry as the
         *  controller's read-latency histograms. */
        std::vector<stats::Histogram> hist;
    };

    ChannelAttribution();

    /** Accumulate @p t's phases; returns them for hub publication. */
    PhaseDurations record(const Transaction &t);

    const ClassAccum &cls(LatClass c) const
    {
        return classes[static_cast<unsigned>(c)];
    }

    /** Clear the measurement window (mid-run resetStats). */
    void reset();

  private:
    ClassAccum classes[numLatClasses];
};

/**
 * Per-core stall-cycle attribution.  Each stall interval is charged,
 * on wake, to the phases of the transaction that ended it
 * (proportionally, with the integer remainder assigned to the largest
 * phase so rows still sum exactly), or to the L2 / unattributed
 * buckets when no memory transaction was involved.
 */
struct CoreStallAttribution
{
    /** Stall reasons, indexable (matches Core's Rob/Lq/Sq/Mshr). */
    static constexpr unsigned numReasons = 4;

    Tick byPhase[numReasons][numLatPhases] = {};
    Tick l2Wait[numReasons] = {};       ///< blocked on an L2 hit
    Tick unattributed[numReasons] = {}; ///< no completion in scope

    /** Charge @p dt of reason @p reason according to @p hub. */
    void attribute(unsigned reason, Tick dt, const AttributionHub &hub);

    /** Everything charged against @p reason (== the reason's stall
     *  tick total, exactly). */
    Tick reasonTotal(unsigned reason) const;

    void reset() { *this = CoreStallAttribution{}; }
};

/** Pretty name for a stall-reason row ("rob", "lq", "sq", "mshr"). */
const char *stallReasonName(unsigned reason);

/** Plain-data snapshot of one class's phase totals (RunResult). */
struct ClassPhaseBreakdown
{
    std::uint64_t samples = 0;
    std::uint64_t totalTicks = 0;
    std::uint64_t phaseTicks[numLatPhases] = {};

    /** Mean end-to-end latency in ns. */
    double meanTotalNs() const;
    /** Mean time in @p p per transaction, ns. */
    double meanPhaseNs(unsigned p) const;

    void merge(const ClassPhaseBreakdown &o);
};

/** Phase totals of one channel, all classes. */
struct ChannelBreakdown
{
    ClassPhaseBreakdown cls[numLatClasses];

    void merge(const ChannelBreakdown &o);
};

/** One core's measured-window cycle accounting. */
struct CoreCycleBreakdown
{
    Tick windowTicks = 0;
    /** Total stall ticks per reason (rob, lq, sq, mshr). */
    Tick stall[CoreStallAttribution::numReasons] = {};
    /** Where the stalled time went (sums to stall[] per reason). */
    CoreStallAttribution att;

    Tick stallTotal() const;
    /** Non-stalled remainder of the window. */
    Tick baseTicks() const;
};

/** Everything attribution-related one run produced. */
struct AttributionResult
{
    bool enabled = false;
    ChannelBreakdown total;                 ///< merged over channels
    std::vector<ChannelBreakdown> channels; ///< per logic channel
    std::vector<CoreCycleBreakdown> cores;  ///< per core
};

} // namespace fbdp

#endif // FBDP_MC_ATTRIBUTION_HH
