#include "mc/transaction.hh"

namespace fbdp {

const char *
transPhaseName(TransPhase p)
{
    switch (p) {
      case TransPhase::NeedPrecharge:
        return "NeedPrecharge";
      case TransPhase::NeedActivate:
        return "NeedActivate";
      case TransPhase::NeedCas:
        return "NeedCas";
      case TransPhase::AmbHit:
        return "AmbHit";
      case TransPhase::McHit:
        return "McHit";
      case TransPhase::WaitData:
        return "WaitData";
      case TransPhase::Complete:
        return "Complete";
    }
    return "?";
}

} // namespace fbdp
