#include "mc/transaction.hh"

namespace fbdp {

TransPool &
TransPool::local()
{
    thread_local TransPool pool;
    return pool;
}

Transaction *
TransPool::acquire()
{
    ++st.acquires;
    if (freeList.empty()) {
        auto chunk = std::make_unique<Chunk>();
        chunk->objs = std::make_unique<Transaction[]>(chunkSize);
        freeList.reserve(freeList.capacity() + chunkSize);
        for (std::size_t i = 0; i < chunkSize; ++i)
            freeList.push_back(&chunk->objs[i]);
        chunk->next = std::move(chunks);
        chunks = std::move(chunk);
        st.capacity += chunkSize;
    } else {
        ++st.reuses;
    }
    Transaction *t = freeList.back();
    freeList.pop_back();
    ++st.live;
    if (st.live > st.highWater)
        st.highWater = st.live;
    return t;
}

void
TransPool::release(Transaction *t) noexcept
{
    t->reset();
    freeList.push_back(t);
    --st.live;
}

const char *
transPhaseName(TransPhase p)
{
    switch (p) {
      case TransPhase::NeedPrecharge:
        return "NeedPrecharge";
      case TransPhase::NeedActivate:
        return "NeedActivate";
      case TransPhase::NeedCas:
        return "NeedCas";
      case TransPhase::AmbHit:
        return "AmbHit";
      case TransPhase::McHit:
        return "McHit";
      case TransPhase::WaitData:
        return "WaitData";
      case TransPhase::Complete:
        return "Complete";
    }
    return "?";
}

} // namespace fbdp
