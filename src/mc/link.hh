/**
 * @file
 * Bandwidth/occupancy models for the interconnect resources.
 *
 * BusTracker — a simple busy-until reservation tracker used for every
 * resource that streams data bursts: the FB-DIMM northbound link, the
 * per-DIMM DDR2 bus between the AMB and the DRAM chips, and the shared
 * data bus of the conventional DDR2 baseline channel.
 *
 * CommandLink — a frame/slot model of a command-carrying link.  The
 * FB-DIMM southbound link carries, per memory cycle (frame), either
 * three commands or one command plus a write-data payload; the DDR2
 * baseline command bus carries one command per cycle and never data.
 */

#ifndef FBDP_MC_LINK_HH
#define FBDP_MC_LINK_HH

#include <cstdint>
#include <deque>

#include "common/types.hh"

namespace fbdp {

/** Busy-until reservation tracker for a streaming data resource. */
class BusTracker
{
  public:
    /** Earliest start for a reservation wanting to begin at
     *  @p earliest. */
    Tick nextFree(Tick earliest) const
    {
        return earliest > busyUntil ? earliest : busyUntil;
    }

    /** Reserve @p duration ticks starting no earlier than @p earliest.
     *  @return the granted start tick. */
    Tick
    reserve(Tick earliest, Tick duration)
    {
        Tick start = nextFree(earliest);
        busyUntil = start + duration;
        totalBusy += duration;
        return start;
    }

    /** Total ticks ever reserved (for utilisation stats). */
    Tick busyTicks() const { return totalBusy; }

    void reset() { busyUntil = 0; totalBusy = 0; }

  private:
    Tick busyUntil = 0;
    Tick totalBusy = 0;
};

/**
 * Slotted command link.  Frames are one memory cycle long; each frame
 * offers @p slots_per_frame command slots unless it carries a data
 * payload, in which case it offers exactly one.
 */
class CommandLink
{
  public:
    CommandLink(Tick cycle_period, unsigned slots_per_frame);

    /** Tick of the frame containing @p t, i.e. t rounded down. */
    Tick frameStart(Tick t) const { return (t / period) * period; }

    /** Number of command slots still free in the frame at @p t. */
    unsigned cmdSlotsFree(Tick t);

    /** Consume one command slot in the frame at @p t. */
    void useCmdSlot(Tick t);

    /**
     * Reserve @p n_frames consecutive data-payload frames, the first
     * starting no earlier than @p earliest.  Frames already carrying
     * data, or with more than one command slot used, are skipped.
     *
     * @return the start tick of the first reserved frame.
     */
    Tick reserveDataFrames(Tick earliest, unsigned n_frames);

    /** Drop bookkeeping for frames strictly before @p t. */
    void retireBefore(Tick t);

    Tick cyclePeriod() const { return period; }
    std::uint64_t framesWithData() const { return nDataFrames; }
    std::uint64_t commandsSent() const { return nCommands; }

  private:
    struct Frame {
        std::uint8_t cmdsUsed = 0;
        bool data = false;
    };

    Frame &frameAt(std::uint64_t cycle);
    unsigned capacity(const Frame &f) const
    {
        return f.data ? 1u : slotsPerFrame;
    }

    Tick period;
    unsigned slotsPerFrame;

    std::deque<Frame> window;
    std::uint64_t windowStart = 0;  ///< cycle index of window.front()

    std::uint64_t nDataFrames = 0;
    std::uint64_t nCommands = 0;
};

} // namespace fbdp

#endif // FBDP_MC_LINK_HH
