#include "mc/controller.hh"

#include <algorithm>

#include "common/logging.hh"

namespace fbdp {

MemController::MemController(std::string name, EventQueue *event_queue,
                             const ControllerConfig &config)
    : _name(std::move(name)),
      eq(event_queue),
      cfg(config),
      cmdLink(cfg.timing.memCycle, cfg.fbd ? 3u : 1u),
      wakeEvent([this] { wake(); }),
      completionEvent([this] { completionFire(); }, Event::prioData)
{
    fbdp_assert(cfg.nDimms >= 1, "%s: no DIMMs", _name.c_str());
    dimms.reserve(cfg.nDimms);
    for (unsigned i = 0; i < cfg.nDimms; ++i)
        dimms.emplace_back(&cfg.timing, cfg.banksPerDimm);
    if (cfg.fbd)
        dimmBus.resize(cfg.nDimms);
    if (cfg.apEnable) {
        fbdp_assert(cfg.fbd, "AMB prefetching requires FB-DIMM");
        table = std::make_unique<PrefetchTable>(
            cfg.nDimms, cfg.ambEntries, cfg.ambWays);
        PolicyParams pp;
        pp.regionLines = cfg.regionLines;
        pp.degree = cfg.apDegree;
        pp.nDimms = cfg.nDimms;
        pp.throttle = cfg.apThrottle;
        apPol = PolicyRegistry::instance().make(cfg.apPolicy, pp);
    }
    if (cfg.mcPrefetch) {
        fbdp_assert(!cfg.apEnable,
                    "mcPrefetch and apEnable are exclusive");
        // One pseudo-DIMM: the buffer sits at the controller.
        mcBuf = std::make_unique<PrefetchTable>(1, cfg.mcEntries,
                                                cfg.mcWays);
        PolicyParams pp;
        pp.regionLines = cfg.regionLines;
        pp.degree = cfg.mcDegree;
        pp.nDimms = cfg.nDimms;  // a DIMM-aware policy still sees
                                 // the real topology
        pp.throttle = cfg.mcThrottle;
        mcPol = PolicyRegistry::instance().make(cfg.mcPolicy, pp);
    }
    if (cfg.refreshEnable) {
        refreshPending.assign(cfg.nDimms, false);
        nextRefreshAt.resize(cfg.nDimms);
        // Stagger the refresh schedule across DIMMs.
        for (unsigned i = 0; i < cfg.nDimms; ++i)
            nextRefreshAt[i] = cfg.timing.tREFI * (i + 1)
                / cfg.nDimms;
    }
}

void
MemController::bindTracer(trace::Tracer *t, unsigned channel)
{
    trc = TraceBinding{};
    if (!t || !t->wantChannel(channel))
        return;
    trc.tr = t;
    const std::string ch = "ch" + std::to_string(channel);
    trc.txn = t->track(ch + ".txn");
    trc.south = t->track(ch + ".south");
    trc.north = t->track(ch + ".north");
    trc.dimm.resize(cfg.nDimms);
    trc.bank.resize(cfg.nDimms * cfg.banksPerDimm);
    for (unsigned d = 0; d < cfg.nDimms; ++d) {
        const std::string dn = ch + ".dimm" + std::to_string(d);
        trc.dimm[d] = t->track(dn);
        for (unsigned b = 0; b < cfg.banksPerDimm; ++b)
            trc.bank[d * cfg.banksPerDimm + b] =
                t->track(dn + ".bank" + std::to_string(b));
    }
    if (cfg.apEnable) {
        trc.amb.resize(cfg.nDimms);
        for (unsigned d = 0; d < cfg.nDimms; ++d)
            trc.amb[d] = t->track(ch + ".dimm" + std::to_string(d)
                                  + ".amb");
    } else if (cfg.mcPrefetch) {
        trc.amb.resize(1);
        trc.amb[0] = t->track(ch + ".mcbuf");
    }
}

void
MemController::enableAttribution(AttributionHub *hub)
{
    attHub = hub;
    att = hub ? std::make_unique<ChannelAttribution>() : nullptr;
}

void
MemController::serviceRefresh(Tick now)
{
    if (!cfg.refreshEnable)
        return;
    for (unsigned d = 0; d < cfg.nDimms; ++d) {
        if (now < nextRefreshAt[d])
            continue;
        if (dimms[d].anyRowOpen()) {
            // Block further activates until the rows drain.  Under
            // close page every open row belongs to a transaction
            // whose column access auto-precharges it; under open page
            // idle rows are closed here (precharge-all), and
            // transactions re-derive their phase afterwards.
            refreshPending[d] = true;
            if (cfg.openPage) {
                for (unsigned b = 0; b < cfg.banksPerDimm; ++b) {
                    Bank &bank = dimms[d].bank(b);
                    if (bank.rowOpen()
                        && bank.preAllowedAt() <= now + cfg.cmdDelay)
                        dimms[d].precharge(b, now + cfg.cmdDelay);
                }
            }
            if (dimms[d].anyRowOpen())
                continue;
        }
        // Catch up intervals that elapsed while the channel was idle:
        // they still consumed refresh energy, but one blocking window
        // covers them all.
        dimms[d].refresh(now + cfg.cmdDelay);
        nextRefreshAt[d] += cfg.timing.tREFI;
        while (nextRefreshAt[d] <= now) {
            dimms[d].refresh(now + cfg.cmdDelay);
            nextRefreshAt[d] += cfg.timing.tREFI;
        }
        refreshPending[d] = false;
        if (trc.tr) {
            trc.tr->begin(trc.dimm[d], "refresh", now + cfg.cmdDelay);
            trc.tr->end(trc.dimm[d], "refresh",
                        now + cfg.cmdDelay + cfg.timing.tRFC);
        }
    }
}

Tick
MemController::reserveNorthbound(Tick earliest, unsigned d)
{
    if (lastNbDimm >= 0 && static_cast<unsigned>(lastNbDimm) != d
        && !cfg.vrl && northbound.nextFree(earliest) > earliest) {
        // Fixed-latency mode: when transfers pack back to back and
        // the data source changes, the chain resynchronises, costing
        // one frame of bubble.  An idle link pays nothing.
        earliest += cfg.timing.memCycle;
    }
    lastNbDimm = static_cast<int>(d);
    const Tick start = northbound.reserve(earliest, cfg.timing.burst);
    if (trc.tr) {
        trc.tr->begin(trc.north, "data", start);
        trc.tr->end(trc.north, "data", start + cfg.timing.burst);
    }
    return start;
}

Tick
MemController::chainDelay(unsigned d) const
{
    if (!cfg.fbd)
        return 0;
    unsigned hops = cfg.vrl ? d + 1 : cfg.nDimms;
    return static_cast<Tick>(hops) * cfg.ambHop;
}

void
MemController::push(TransPtr t)
{
    pushAt(std::move(t), eq->now());
}

void
MemController::pushAt(TransPtr t, Tick sent_at)
{
    const Tick now = sent_at;
    t->arrivedAtMc = now;
    t->earliestIssue = now + cfg.ctrlOverhead;
    t->mcSeq = nextMcSeq++;

    if (t->isRead()) {
        ++nReads;
    } else {
        ++nWrites;
    }

    if (cfg.apEnable) {
        const unsigned d = t->coord.dimm;
        if (t->isRead()) {
            const bool use_ap = !t->swPrefetch || cfg.apOnSwPrefetch;
            if (use_ap) {
                table->countRead();
                if (table->peek(d, t->lineAddr)) {
                    t->phase = TransPhase::AmbHit;
                    apPol->onHit(policyAccess(t.get(), now));
                } else {
                    // Ask the policy what should ride this fetch; the
                    // accepted candidates become visible in the tag
                    // mirror immediately so later reads to the same
                    // lines coalesce onto this fetch.
                    t->phase = TransPhase::NeedActivate;
                    emitCandidates(t.get(), /*convert=*/false);
                }
            } else {
                t->phase = TransPhase::NeedActivate;
            }
        } else {
            // Writes invalidate any stale prefetched copy.
            bool was_used = false;
            if (table->invalidate(d, t->lineAddr, &was_used)) {
                apPol->onEvict(d, t->lineAddr, was_used);
                if (trc.tr && trc.tr->want(trace::Kind::Write)) {
                    trc.tr->instant(trc.amb[d], "inval", now,
                                    trace::Kind::Write, t->coreId,
                                    t->lineAddr);
                }
            }
            t->phase = TransPhase::NeedActivate;
        }
    } else if (cfg.mcPrefetch) {
        if (t->isRead()) {
            mcBuf->countRead();
            if (mcBuf->peek(0, t->lineAddr)) {
                t->phase = TransPhase::McHit;
                mcPol->onHit(policyAccess(t.get(), now));
            } else {
                t->phase = TransPhase::NeedActivate;
                emitCandidates(t.get(), /*convert=*/false);
            }
        } else {
            bool was_used = false;
            if (mcBuf->invalidate(0, t->lineAddr, &was_used)) {
                mcPol->onEvict(0, t->lineAddr, was_used);
                if (trc.tr && trc.tr->want(trace::Kind::Write)) {
                    trc.tr->instant(trc.amb[0], "inval", now,
                                    trace::Kind::Write, t->coreId,
                                    t->lineAddr);
                }
            }
            t->phase = TransPhase::NeedActivate;
        }
    } else {
        t->phase = TransPhase::NeedActivate;
    }

    if (trc.tr)
        traceTxn("enqueue", now, t.get());

    overflow.push_back(std::move(t));
    if (!wakeEvent.scheduled()) {
        Tick cycle = cfg.timing.memCycle;
        Tick next = ((now + cycle - 1) / cycle) * cycle;
        scheduleWake(next);
    }
}

void
MemController::scheduleWake(Tick at)
{
    eq->schedule(&wakeEvent, std::max(at, eq->now()));
}

void
MemController::refillWindow()
{
    while (!overflow.empty() && window.size() < cfg.queueSize) {
        if (!overflow.front()->isRead())
            ++windowWrites;
        window.push_back(std::move(overflow.front()));
        overflow.pop_front();
    }
}

void
MemController::wake()
{
    const Tick now = eq->now();
    cmdLink.retireBefore(now);
    serviceRefresh(now);
    refillWindow();

    // Write-drain hysteresis (windowWrites is maintained on window
    // entry/exit instead of recounted every cycle).
    if (!draining && windowWrites >= cfg.writeDrainHigh)
        draining = true;
    if (draining && windowWrites <= cfg.writeDrainLow)
        draining = false;

    issueCycle(now);

    if (!window.empty() || !overflow.empty())
        scheduleWake(now + cfg.timing.memCycle);
}

unsigned
MemController::slotsFreeNow(Tick now)
{
    return cmdLink.cmdSlotsFree(now);
}

void
MemController::issueCycle(Tick now)
{
    // Group candidates by priority class: hit-first (AMB hits, then
    // open-row hits, then in-progress CAS, then the rest FCFS); reads
    // before writes unless draining.  The window is kept in mcSeq
    // order, so scattering preserves FCFS within each bucket and the
    // bucket-major walk visits candidates in exactly the (bucket,
    // mcSeq) order the old sort produced — without sorting.
    auto bucket = [this](const Transaction *t) -> int {
        // Lower bucket == higher priority.
        const bool is_read = t->isRead();
        int b;
        if (t->phase == TransPhase::AmbHit
            || t->phase == TransPhase::McHit)
            b = 0;
        else if (t->phase == TransPhase::NeedCas)
            b = 1;  // row already open: finish it (hit-first)
        else
            b = 2;
        if (draining != !is_read) {
            // Deprioritised class: reads while draining, writes
            // otherwise.
            b += 3;
        }
        return b;
    };

    for (auto &c : bucketCands)
        c.clear();
    for (auto &t : window) {
        if (t->phase == TransPhase::WaitData
            || t->phase == TransPhase::Complete)
            continue;
        if (t->earliestIssue > now)
            continue;
        bucketCands[bucket(t.get())].push_back(t.get());
    }

    for (auto &c : bucketCands) {
        for (Transaction *t : c) {
            if (slotsFreeNow(now) == 0)
                return;
            tryIssue(t, now);
        }
    }
}

bool
MemController::tryIssue(Transaction *t, Tick now)
{
    if (cfg.openPage && t->phase != TransPhase::AmbHit
        && t->phase != TransPhase::McHit)
        recomputeOpenPagePhase(t);

    switch (t->phase) {
      case TransPhase::AmbHit:
        return issueAmbHit(t, now);
      case TransPhase::McHit:
        return issueMcHit(t, now);
      case TransPhase::NeedPrecharge:
        return issuePrecharge(t, now);
      case TransPhase::NeedActivate:
        return issueActivate(t, now);
      case TransPhase::NeedCas:
        return t->isRead() ? issueRead(t, now) : issueWrite(t, now);
      default:
        return false;
    }
}

void
MemController::recomputeOpenPagePhase(Transaction *t)
{
    const Bank &b = dimms[t->coord.dimm].bank(t->coord.bank);
    if (b.rowOpen()) {
        t->phase = (b.openRow() == t->coord.row)
            ? TransPhase::NeedCas
            : TransPhase::NeedPrecharge;
    } else {
        t->phase = TransPhase::NeedActivate;
    }
}

PrefetchAccess
MemController::policyAccess(const Transaction *t, Tick now) const
{
    PrefetchAccess a;
    a.lineAddr = t->lineAddr;
    a.regionBase = t->coord.regionBase;
    a.regionLines = cfg.regionLines;
    a.dimm = t->coord.dimm;
    a.coreId = t->coreId;
    a.swPrefetch = t->swPrefetch;
    a.now = now;
    a.linkUtil = now
        ? static_cast<double>(northBusyTicks())
            / static_cast<double>(now)
        : 0.0;
    return a;
}

void
MemController::emitCandidates(Transaction *t, bool convert)
{
    PrefetchTable *tbl = cfg.apEnable ? table.get() : mcBuf.get();
    PrefetchPolicy *pol = cfg.apEnable ? apPol.get() : mcPol.get();
    // The AMB cache is per DIMM; the MC buffer is one pseudo-DIMM.
    const unsigned td = cfg.apEnable ? t->coord.dimm : 0u;

    t->nPfLines = 0;
    t->groupLines = 1;
    if (!pol)
        return;

    const PrefetchAccess acc = policyAccess(t, eq->now());
    CandidateList cands(pol->degree());
    if (convert)
        pol->onConvert(acc, cands);
    else
        pol->onMiss(acc, cands);

    unsigned dropped = cands.dropped();

    const double throttle = pol->params().throttle;
    if (throttle > 0.0 && acc.linkUtil > throttle) {
        // The return link is past its configured ceiling: demand
        // traffic needs every frame, so every candidate is shed.
        tbl->countDropped(dropped + cands.size());
        return;
    }

    const Addr region_end = t->coord.regionBase
        + static_cast<Addr>(cfg.regionLines) * lineBytes;
    for (unsigned i = 0; i < cands.size(); ++i) {
        const Addr la = cands[i];
        // A candidate rides the demand's activation, so it must be an
        // in-region line other than the demanded one, once.
        bool ok = la != t->lineAddr && la >= t->coord.regionBase
            && la < region_end && (la % lineBytes) == 0;
        for (unsigned j = 0; ok && j < t->nPfLines; ++j)
            if (t->pfLines[j] == la)
                ok = false;
        if (!ok || t->nPfLines >= Transaction::maxPrefetchLines) {
            ++dropped;
            continue;
        }
        AmbCache::Evicted ev;
        tbl->insertCandidate(td, la, &ev);
        if (ev.valid)
            pol->onEvict(td, ev.lineAddr, ev.used);
        t->pfLines[t->nPfLines++] = la;
    }
    if (dropped)
        tbl->countDropped(dropped);
    t->groupLines = 1 + t->nPfLines;
}

void
MemController::convertHitToMiss(Transaction *t)
{
    ++nHitConversions;
    if (trc.tr && trc.tr->want(trace::Kind::Prefetch)) {
        // The prefetched line was evicted before its demand arrived.
        trc.tr->instant(trc.amb[t->coord.dimm], "kill", eq->now(),
                        trace::Kind::Prefetch, t->coreId, t->lineAddr);
    }
    t->phase = TransPhase::NeedActivate;
    emitCandidates(t, /*convert=*/true);
}

bool
MemController::issueAmbHit(Transaction *t, Tick now)
{
    const unsigned d = t->coord.dimm;
    AmbCache::Line *line = table->peek(d, t->lineAddr);
    if (!line) {
        // The prefetched copy was evicted before we fetched it.
        convertHitToMiss(t);
        return false;
    }
    if (line->readyAt == AmbCache::fillPending) {
        // The producing region fetch has not issued its CAS yet.
        return false;
    }

    cmdLink.useCmdSlot(now);
    const Tick arrive = now + cfg.cmdDelay;
    if (att) {
        if (!t->stampIssue)
            t->stampIssue = now;
        t->stampCas = now;
        t->stampArrive = arrive;
    }
    Tick nb_earliest = std::max(arrive, line->readyAt);
    if (cfg.apFullLatency) {
        // APFL (Fig. 9): same idle latency as a DRAM access, but no
        // bank activity.
        nb_earliest = std::max(arrive + cfg.timing.tRCD + cfg.timing.tCL,
                               line->readyAt);
    }
    const Tick nb_start = reserveNorthbound(nb_earliest, d);
    const Tick ready = nb_start + cfg.timing.burst + chainDelay(d);
    if (att)
        t->stampData = nb_start;

    ++nAmbHits;
    // Timeliness: the prefetch covered this read, but its fill had
    // not reached the AMB SRAM when the demand command arrived.
    const bool late = line->readyAt > arrive;
    if (late) {
        ++nLatePfHits;
        table->countLateHit();
    }
    table->countHit();
    line->used = true;
    t->ambServed = true;
    t->phase = TransPhase::WaitData;
    if (trc.tr) {
        if (trc.tr->want(trace::Kind::Prefetch)) {
            trc.tr->instant(trc.amb[d], late ? "late_hit" : "hit",
                            arrive, trace::Kind::Prefetch, t->coreId,
                            t->lineAddr);
        }
        trc.tr->instant(trc.south, "amb_rd", now);
        traceTxn("amb_hit", arrive, t);
    }
    finish(t, ready);
    return true;
}

bool
MemController::issueMcHit(Transaction *t, Tick now)
{
    AmbCache::Line *line = mcBuf->peek(0, t->lineAddr);
    if (!line) {
        // Evicted before service: ask the policy again.
        ++nHitConversions;
        if (trc.tr && trc.tr->want(trace::Kind::Prefetch)) {
            trc.tr->instant(trc.amb[0], "kill", now,
                            trace::Kind::Prefetch, t->coreId,
                            t->lineAddr);
        }
        t->phase = TransPhase::NeedActivate;
        emitCandidates(t, /*convert=*/true);
        return false;
    }
    if (line->readyAt == AmbCache::fillPending)
        return false;

    // The data is already at the controller: no command, no link.
    const Tick ready = std::max(now, line->readyAt);
    if (att) {
        // No command and no link: the whole service interval is the
        // buffer wait, bounded by [now, ready].
        if (!t->stampIssue)
            t->stampIssue = now;
        t->stampCas = now;
        t->stampArrive = now;
        t->stampData = ready;
    }
    ++nMcHits;
    const bool late = line->readyAt > now;
    if (late) {
        ++nLatePfHits;
        mcBuf->countLateHit();
    }
    mcBuf->countHit();
    line->used = true;
    t->ambServed = true;
    t->phase = TransPhase::WaitData;
    if (trc.tr) {
        if (trc.tr->want(trace::Kind::Prefetch)) {
            trc.tr->instant(trc.amb[0], late ? "late_hit" : "hit",
                            now, trace::Kind::Prefetch, t->coreId,
                            t->lineAddr);
        }
        traceTxn("mc_hit", now, t);
    }
    finish(t, ready);
    return true;
}

bool
MemController::issuePrecharge(Transaction *t, Tick now)
{
    const Tick arrive = now + cfg.cmdDelay;
    Dimm &dimm = dimms[t->coord.dimm];
    if (dimm.earliestPrecharge(t->coord.bank, arrive) > arrive)
        return false;
    cmdLink.useCmdSlot(now);
    if (att && !t->stampIssue)
        t->stampIssue = now;
    dimm.precharge(t->coord.bank, arrive);
    if (trc.tr) {
        trc.tr->instant(trc.south, "pre", now);
        // The row-cycle duration on the bank track ends when the bank
        // can accept the next ACT.
        trc.tr->end(trc.bank[t->coord.dimm * cfg.banksPerDimm
                             + t->coord.bank],
                    "row", dimm.bank(t->coord.bank).actAllowedAt());
    }
    t->phase = TransPhase::NeedActivate;
    return true;
}

bool
MemController::issueActivate(Transaction *t, Tick now)
{
    const Tick arrive = now + cfg.cmdDelay;
    Dimm &dimm = dimms[t->coord.dimm];
    // An overdue refresh owns the DIMM before any new activation.
    if (cfg.refreshEnable && refreshPending[t->coord.dimm])
        return false;
    // Another transaction may have activated this bank and not yet
    // issued its column access; its row still owns the bank (the
    // auto-precharge is bound to the CAS).  Wait for it.
    if (dimm.bank(t->coord.bank).rowOpen())
        return false;
    if (dimm.earliestAct(t->coord.bank, arrive) > arrive)
        return false;
    cmdLink.useCmdSlot(now);
    if (att && !t->stampIssue)
        t->stampIssue = now;
    dimm.activate(t->coord.bank, arrive, t->coord.row);
    if (trc.tr) {
        trc.tr->instant(trc.south, "act", now);
        trc.tr->begin(trc.bank[t->coord.dimm * cfg.banksPerDimm
                               + t->coord.bank],
                      "row", arrive);
        traceTxn("act", arrive, t);
    }
    t->phase = TransPhase::NeedCas;
    return true;
}

bool
MemController::issueRead(Transaction *t, Tick now)
{
    const Tick arrive = now + cfg.cmdDelay;
    const unsigned d = t->coord.dimm;
    Dimm &dimm = dimms[d];
    if (dimm.earliestRead(t->coord.bank, arrive) > arrive)
        return false;
    if (!cfg.fbd && arrive < sharedWrDataEnd + cfg.timing.memCycle) {
        // Conventional DDR2: one data bus for reads and writes, so a
        // bus-turnaround bubble separates a write burst from the next
        // read channel-wide.  (The full tWTR applies per DIMM; the
        // FB-DIMM northbound link never pays either.)
        return false;
    }

    const unsigned n = t->groupLines;
    // Open-page rows close early when a refresh is waiting.
    const bool auto_pre = !cfg.openPage
        || (cfg.refreshEnable && refreshPending[d]);
    const DramTiming &tm = cfg.timing;

    cmdLink.useCmdSlot(now);
    if (att) {
        if (!t->stampIssue)
            t->stampIssue = now;
        t->stampCas = now;
        t->stampArrive = arrive;
    }
    dimm.read(t->coord.bank, arrive, n, auto_pre);

    if (trc.tr) {
        trc.tr->instant(trc.south, "rd", now);
        const std::uint32_t bank_trk =
            trc.bank[d * cfg.banksPerDimm + t->coord.bank];
        trc.tr->instant(bank_trk, "rd_cas", arrive);
        if (auto_pre) {
            trc.tr->end(bank_trk, "row",
                        dimm.bank(t->coord.bank).actAllowedAt());
        }
        traceTxn("cas", arrive, t);
    }

    BusTracker &data_bus = cfg.fbd ? dimmBus[d] : sharedBus;

    // Column accesses in demanded-line-first, wrap-around order: the
    // accepted candidates (stored in buffer-insertion order) are
    // sorted by forward region distance from the demanded line, so
    // the pipelined CAS stream walks the region critical-word-first
    // exactly as the hardware group fetch does.
    const unsigned k = cfg.regionLines ? cfg.regionLines : 1;
    const unsigned demand_off = static_cast<unsigned>(
        (t->lineAddr - t->coord.regionBase) / lineBytes);
    const unsigned npf = t->nPfLines;
    unsigned order[Transaction::maxPrefetchLines];
    for (unsigned i = 0; i < npf; ++i)
        order[i] = i;
    auto wrap_dist = [&](unsigned idx) -> unsigned {
        const unsigned off = static_cast<unsigned>(
            (t->pfLines[idx] - t->coord.regionBase) / lineBytes);
        return (off + k - demand_off) % k;
    };
    // Stable insertion sort: npf <= 15, nearly sorted in practice.
    for (unsigned i = 1; i < npf; ++i) {
        const unsigned v = order[i];
        const unsigned dv = wrap_dist(v);
        unsigned j = i;
        while (j > 0 && wrap_dist(order[j - 1]) > dv) {
            order[j] = order[j - 1];
            --j;
        }
        order[j] = v;
    }

    for (unsigned i = 0; i < n; ++i) {
        const Tick cas = arrive + static_cast<Tick>(i) * tm.casGap();
        const Tick d_start = data_bus.reserve(cas + tm.tCL, tm.burst);
        if (i == 0) {
            // The demanded line: forwarded straight to the channel.
            if (att)
                t->stampData = d_start;
            const Tick nb_start = cfg.fbd
                ? reserveNorthbound(d_start, d)
                : d_start;
            const Tick ready = nb_start + tm.burst + chainDelay(d);
            t->phase = TransPhase::WaitData;
            finish(t, ready);
        } else {
            const Addr la = t->pfLines[order[i - 1]];
            if (cfg.apEnable) {
                // AMB prefetching: fills stay behind the AMB and
                // never touch the channel.
                table->resolveFill(d, la, d_start + tm.burst);
                apPol->onFill(d, la, d_start + tm.burst);
                if (trc.tr && trc.tr->want(trace::Kind::Prefetch)) {
                    trc.tr->instant(trc.amb[d], "fill",
                                    d_start + tm.burst,
                                    trace::Kind::Prefetch, t->coreId,
                                    la);
                }
            } else {
                // Controller-level prefetching: the neighbours must
                // cross the channel into the MC buffer, consuming
                // the bandwidth AMB prefetching preserves.
                Tick ready;
                if (cfg.fbd) {
                    const Tick nb = reserveNorthbound(d_start, d);
                    ready = nb + tm.burst + chainDelay(d);
                } else {
                    ready = d_start + tm.burst;
                }
                nChannelBytes += lineBytes;
                mcBuf->resolveFill(0, la, ready);
                mcPol->onFill(0, la, ready);
                if (trc.tr && trc.tr->want(trace::Kind::Prefetch)) {
                    trc.tr->instant(trc.amb[0], "fill", ready,
                                    trace::Kind::Prefetch, t->coreId,
                                    la);
                }
            }
        }
    }
    return true;
}

bool
MemController::issueWrite(Transaction *t, Tick now)
{
    const Tick arrive = now + cfg.cmdDelay;
    const unsigned d = t->coord.dimm;
    Dimm &dimm = dimms[d];
    if (dimm.earliestWrite(t->coord.bank, arrive) > arrive)
        return false;

    const DramTiming &tm = cfg.timing;
    const bool auto_pre = !cfg.openPage
        || (cfg.refreshEnable && refreshPending[d]);

    cmdLink.useCmdSlot(now);

    Tick wr_cas = arrive;
    if (cfg.fbd) {
        // The 64-byte payload needs four southbound data frames
        // (ganged pair: 16 bytes per frame); the DRAM write burst may
        // start only once the data has reached the AMB.
        const unsigned n_frames = 4;
        const Tick f_start = cmdLink.reserveDataFrames(now, n_frames);
        const Tick data_at_amb = f_start
            + static_cast<Tick>(n_frames) * tm.memCycle + cfg.cmdDelay;
        if (data_at_amb > tm.tWL)
            wr_cas = std::max(arrive, data_at_amb - tm.tWL);
        if (trc.tr) {
            trc.tr->begin(trc.south, "wdata", f_start);
            trc.tr->end(trc.south, "wdata",
                        f_start
                        + static_cast<Tick>(n_frames) * tm.memCycle);
        }
    }

    const Tick end = dimm.write(t->coord.bank, wr_cas, auto_pre);
    if (att) {
        // South covers the write-data frames (now -> wr_cas arrival);
        // Bank covers the DRAM write burst; nothing returns north.
        if (!t->stampIssue)
            t->stampIssue = now;
        t->stampCas = now;
        t->stampArrive = wr_cas;
        t->stampData = end;
    }
    if (trc.tr) {
        trc.tr->instant(trc.south, "wr", now);
        const std::uint32_t bank_trk =
            trc.bank[d * cfg.banksPerDimm + t->coord.bank];
        trc.tr->instant(bank_trk, "wr_cas", wr_cas);
        if (auto_pre) {
            trc.tr->end(bank_trk, "row",
                        dimm.bank(t->coord.bank).actAllowedAt());
        }
        traceTxn("cas", wr_cas, t);
    }
    BusTracker &data_bus = cfg.fbd ? dimmBus[d] : sharedBus;
    data_bus.reserve(wr_cas + tm.tWL, tm.burst);
    if (!cfg.fbd)
        sharedWrDataEnd = std::max(sharedWrDataEnd, end);

    t->phase = TransPhase::WaitData;
    finish(t, end);
    return true;
}

void
MemController::finish(Transaction *t, Tick ready)
{
    t->completedAt = ready;
    nChannelBytes += lineBytes;
    if (trc.tr)
        traceTxn("complete", ready, t);

    // Move ownership from the window into the completion heap.  The
    // ordered erase (a memmove over at most queueSize pointers) keeps
    // the window in mcSeq order, which issueCycle relies on.
    for (auto it = window.begin(); it != window.end(); ++it) {
        if (it->get() == t) {
            if (!t->isRead())
                --windowWrites;
            completions.push_back(
                Completion{ready, nextCompletionSeq++, std::move(*it)});
            std::push_heap(completions.begin(), completions.end(),
                           CompletionAfter{});
            window.erase(it);
            break;
        }
    }

    if (!completionEvent.scheduled()
        || completionEvent.when() > completions.front().ready) {
        eq->schedule(&completionEvent, completions.front().ready);
    }
}

bool
MemController::popCompletionDue(Tick now, TransPtr &out)
{
    if (completions.empty() || completions.front().ready > now)
        return false;
    std::pop_heap(completions.begin(), completions.end(),
                  CompletionAfter{});
    out = std::move(completions.back().t);
    completions.pop_back();
    return true;
}

void
MemController::completionFire()
{
    const Tick now = eq->now();
    TransPtr t;
    while (popCompletionDue(now, t)) {
        const double lat_ns =
            ticksToNs(t->completedAt - t->arrivedAtMc);
        if (t->isRead()) {
            ++nReadsDone;
            readLatTotal +=
                static_cast<double>(t->completedAt - t->arrivedAtMc);
            latHist.sample(lat_ns);
            (t->ambServed ? latHistPrefHit : latHistDemand)
                .sample(lat_ns);
        } else {
            latHistWrite.sample(lat_ns);
        }
        if (cSink) {
            // Sharded operation: record the phase profile here (the
            // accumulator is channel state) but leave callback
            // invocation and hub publishing to the sink's owner — the
            // core shard, at its next frame drain.
            PhaseDurations pd{};
            const bool has_profile = att != nullptr;
            if (att)
                pd = att->record(*t);
            cSink->complete(cSinkChannel, std::move(t), pd,
                            has_profile);
            continue;
        }
        if (att) {
            // Publish the phase profile for the duration of the
            // completion callback so a core whose stall ends inside it
            // can attribute the stalled cycles to these phases.
            const PhaseDurations pd = att->record(*t);
            if (attHub)
                attHub->publish(pd);
        }
        if (t->onComplete)
            t->onComplete(t->completedAt);
        if (attHub)
            attHub->clear();
        t.reset();
    }
    if (!completions.empty())
        eq->schedule(&completionEvent, completions.front().ready);
}

double
MemController::avgReadLatencyNs() const
{
    if (!nReadsDone)
        return 0.0;
    return ticksToNs(static_cast<Tick>(
        readLatTotal / static_cast<double>(nReadsDone)));
}

double
MemController::readLatencyPercentileNs(double p) const
{
    const std::uint64_t total = latHist.samples();
    if (total == 0)
        return 0.0;
    const auto target = static_cast<std::uint64_t>(
        p * static_cast<double>(total));
    std::uint64_t seen = latHist.underflows();
    const double width = 1000.0 / latHist.numBuckets();
    for (unsigned i = 0; i < latHist.numBuckets(); ++i) {
        seen += latHist.bucket(i);
        if (seen >= target)
            return width * (i + 1);
    }
    return 1000.0;  // in the overflow tail
}

DramOpCounts
MemController::dramOps() const
{
    DramOpCounts total;
    for (const auto &d : dimms)
        total += d.counts();
    return total;
}

void
MemController::resetStats()
{
    nReads = 0;
    nWrites = 0;
    nReadsDone = 0;
    nAmbHits = 0;
    nChannelBytes = 0;
    nMcHits = 0;
    nHitConversions = 0;
    nLatePfHits = 0;
    readLatTotal = 0.0;
    latHist.reset();
    latHistDemand.reset();
    latHistPrefHit.reset();
    latHistWrite.reset();
    for (auto &d : dimms)
        d.resetCounts();
    if (table)
        table->resetStats();
    if (mcBuf)
        mcBuf->resetStats();
    if (att)
        att->reset();
}

} // namespace fbdp
