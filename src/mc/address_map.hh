/**
 * @file
 * DRAM interleaving: how physical addresses are laid out onto logic
 * channels, DIMMs, banks, rows and columns.
 *
 * Three schemes from the paper (Section 3.2, Figure 2):
 *  - Cacheline interleaving: consecutive 64 B lines round-robin across
 *    channels, then DIMMs, then banks — maximum access concurrency.
 *  - Multi-cacheline interleaving: groups of K consecutive lines (the
 *    prefetch *regions*) round-robin the same way; the K lines of one
 *    region share a bank and a DRAM row, so a region fetch needs a
 *    single activation.  This is the scheme AMB prefetching requires.
 *  - Page interleaving: whole DRAM rows round-robin; exploits row
 *    locality with the open-page policy.
 */

#ifndef FBDP_MC_ADDRESS_MAP_HH
#define FBDP_MC_ADDRESS_MAP_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace fbdp {

/** Interleaving granularity selector. */
enum class Interleave {
    Cacheline,
    MultiCacheline,
    Page,
};

/** Printable name of an interleaving scheme. */
const char *interleaveName(Interleave i);

/** Where one cacheline lives in the DRAM topology. */
struct DramCoord
{
    unsigned channel = 0;   ///< logic channel
    unsigned dimm = 0;      ///< DIMM within the channel
    unsigned bank = 0;      ///< logic bank within the DIMM
    std::uint64_t row = 0;  ///< DRAM row (page)
    unsigned colLine = 0;   ///< line index within the row
    Addr regionBase = 0;    ///< byte base of the K-line prefetch region

    bool
    sameBank(const DramCoord &o) const
    {
        return channel == o.channel && dimm == o.dimm && bank == o.bank;
    }

    bool
    samePage(const DramCoord &o) const
    {
        return sameBank(o) && row == o.row;
    }
};

/** Configuration of an AddressMap. */
struct AddressMapConfig
{
    unsigned channels = 2;        ///< logic channels
    unsigned dimmsPerChannel = 4;
    unsigned banksPerDimm = 4;
    unsigned rowBytes = 8192;     ///< DRAM page size of a logic bank
    unsigned regionLines = 4;     ///< K, the prefetch-region size
    Interleave scheme = Interleave::Cacheline;
};

/** Maps physical line addresses to DRAM coordinates. */
class AddressMap
{
  public:
    explicit AddressMap(const AddressMapConfig &cfg);

    /** Map the line containing byte address @p addr. */
    DramCoord map(Addr addr) const;

    unsigned channels() const { return c.channels; }
    unsigned dimmsPerChannel() const { return c.dimmsPerChannel; }
    unsigned banksPerDimm() const { return c.banksPerDimm; }
    unsigned regionLines() const { return c.regionLines; }
    unsigned linesPerRow() const { return c.rowBytes / lineBytes; }
    Interleave scheme() const { return c.scheme; }

    const AddressMapConfig &config() const { return c; }

  private:
    AddressMapConfig c;
};

} // namespace fbdp

#endif // FBDP_MC_ADDRESS_MAP_HH
