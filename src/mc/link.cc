#include "mc/link.hh"

#include "common/logging.hh"

namespace fbdp {

CommandLink::CommandLink(Tick cycle_period, unsigned slots_per_frame)
    : period(cycle_period), slotsPerFrame(slots_per_frame)
{
    fbdp_assert(period > 0, "zero link cycle period");
    fbdp_assert(slotsPerFrame >= 1, "link needs at least one slot");
}

CommandLink::Frame &
CommandLink::frameAt(std::uint64_t cycle)
{
    if (window.empty()) {
        windowStart = cycle;
        window.emplace_back();
        return window.back();
    }
    if (cycle < windowStart) {
        // A reservation in the (pruned) past: treat as the earliest
        // retained frame.  Callers only do this within one cycle of
        // "now", where the distinction cannot matter.
        return window.front();
    }
    while (cycle >= windowStart + window.size())
        window.emplace_back();
    return window[static_cast<size_t>(cycle - windowStart)];
}

unsigned
CommandLink::cmdSlotsFree(Tick t)
{
    Frame &f = frameAt(t / period);
    unsigned cap = capacity(f);
    return f.cmdsUsed >= cap ? 0 : cap - f.cmdsUsed;
}

void
CommandLink::useCmdSlot(Tick t)
{
    Frame &f = frameAt(t / period);
    fbdp_assert(f.cmdsUsed < capacity(f), "command slot overflow");
    ++f.cmdsUsed;
    ++nCommands;
}

Tick
CommandLink::reserveDataFrames(Tick earliest, unsigned n_frames)
{
    fbdp_assert(n_frames >= 1, "empty data reservation");
    std::uint64_t cycle = earliest / period;
    if (earliest % period)
        ++cycle;

    for (;;) {
        bool ok = true;
        for (unsigned i = 0; i < n_frames; ++i) {
            Frame &f = frameAt(cycle + i);
            if (f.data || f.cmdsUsed > 1) {
                ok = false;
                cycle = cycle + i + 1;
                break;
            }
        }
        if (ok)
            break;
    }

    for (unsigned i = 0; i < n_frames; ++i) {
        Frame &f = frameAt(cycle + i);
        f.data = true;
        ++nDataFrames;
    }
    return cycle * period;
}

void
CommandLink::retireBefore(Tick t)
{
    std::uint64_t cycle = t / period;
    while (!window.empty() && windowStart < cycle) {
        window.pop_front();
        ++windowStart;
    }
}

} // namespace fbdp
