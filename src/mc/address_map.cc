#include "mc/address_map.hh"

#include "common/logging.hh"

namespace fbdp {

const char *
interleaveName(Interleave i)
{
    switch (i) {
      case Interleave::Cacheline:
        return "cacheline";
      case Interleave::MultiCacheline:
        return "multi-cacheline";
      case Interleave::Page:
        return "page";
    }
    return "?";
}

AddressMap::AddressMap(const AddressMapConfig &cfg)
    : c(cfg)
{
    fbdp_assert(c.channels >= 1 && c.dimmsPerChannel >= 1
                && c.banksPerDimm >= 1, "degenerate DRAM topology");
    fbdp_assert(c.rowBytes % lineBytes == 0, "row not line-aligned");
    fbdp_assert(c.regionLines >= 1, "region must hold >= 1 line");
    fbdp_assert(linesPerRow() % c.regionLines == 0,
                "region size %u must divide lines-per-row %u",
                c.regionLines, linesPerRow());
}

DramCoord
AddressMap::map(Addr addr) const
{
    const std::uint64_t line = lineIndex(addr);
    DramCoord out;

    switch (c.scheme) {
      case Interleave::Cacheline: {
        std::uint64_t rest = line;
        out.channel = static_cast<unsigned>(rest % c.channels);
        rest /= c.channels;
        out.dimm = static_cast<unsigned>(rest % c.dimmsPerChannel);
        rest /= c.dimmsPerChannel;
        out.bank = static_cast<unsigned>(rest % c.banksPerDimm);
        rest /= c.banksPerDimm;
        out.row = rest / linesPerRow();
        out.colLine = static_cast<unsigned>(rest % linesPerRow());
        // With one-line regions the region is the line itself.
        out.regionBase = lineAlign(addr);
        break;
      }
      case Interleave::MultiCacheline: {
        const unsigned k = c.regionLines;
        std::uint64_t group = line / k;
        const unsigned off = static_cast<unsigned>(line % k);
        out.regionBase = static_cast<Addr>(group) * k * lineBytes;
        std::uint64_t rest = group;
        out.channel = static_cast<unsigned>(rest % c.channels);
        rest /= c.channels;
        out.dimm = static_cast<unsigned>(rest % c.dimmsPerChannel);
        rest /= c.dimmsPerChannel;
        out.bank = static_cast<unsigned>(rest % c.banksPerDimm);
        rest /= c.banksPerDimm;
        const unsigned groups_per_row = linesPerRow() / k;
        out.row = rest / groups_per_row;
        out.colLine =
            static_cast<unsigned>(rest % groups_per_row) * k + off;
        break;
      }
      case Interleave::Page: {
        std::uint64_t page = line / linesPerRow();
        out.colLine = static_cast<unsigned>(line % linesPerRow());
        std::uint64_t rest = page;
        out.channel = static_cast<unsigned>(rest % c.channels);
        rest /= c.channels;
        out.dimm = static_cast<unsigned>(rest % c.dimmsPerChannel);
        rest /= c.dimmsPerChannel;
        out.bank = static_cast<unsigned>(rest % c.banksPerDimm);
        rest /= c.banksPerDimm;
        out.row = rest;
        // Aligned K-line window within the page (the paper prefetches
        // the neighbours inside the same page).
        out.regionBase =
            (line / c.regionLines) * c.regionLines * lineBytes;
        break;
      }
    }
    return out;
}

} // namespace fbdp
