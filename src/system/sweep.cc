#include "system/sweep.hh"

#include <algorithm>
#include <future>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "system/runner.hh"

namespace fbdp {

Sweep &
Sweep::addConfig(std::string name, SystemConfig cfg)
{
    configs.emplace_back(std::move(name), std::move(cfg));
    return *this;
}

Sweep &
Sweep::addMix(const WorkloadMix &mix)
{
    mixes.push_back(&mix);
    return *this;
}

Sweep &
Sweep::addMixGroup(unsigned cores)
{
    for (const auto &m : mixesFor(cores))
        mixes.push_back(&m);
    return *this;
}

Sweep &
Sweep::repeats(unsigned n)
{
    fbdp_assert(n >= 1, "sweep needs >= 1 repeat");
    nRepeats = n;
    return *this;
}

Sweep &
Sweep::jobs(unsigned n)
{
    nJobs = n;
    return *this;
}

Sweep &
Sweep::onRow(std::function<void(const SweepRow &)> cb)
{
    rowCb = std::move(cb);
    return *this;
}

unsigned
Sweep::effectiveJobs() const
{
    unsigned n = nJobs ? nJobs : jobsFromEnv();
    const size_t total = cells();
    if (total > 0)
        n = static_cast<unsigned>(
            std::min<size_t>(n, total));
    return n ? n : 1;
}

std::vector<SweepRow>
Sweep::run()
{
    fbdp_assert(!configs.empty(), "sweep has no configurations");
    fbdp_assert(!mixes.empty(), "sweep has no workloads");

    // Materialise every cell up front, in config-major order; this
    // order — not completion order — defines the row order.
    struct Cell
    {
        std::string config;
        std::string mix;
        std::uint64_t seed;
        SystemConfig cfg;
    };
    std::vector<Cell> cellDefs;
    cellDefs.reserve(cells());
    for (const auto &[name, cfg] : configs) {
        for (const WorkloadMix *mix : mixes) {
            for (unsigned r = 0; r < nRepeats; ++r) {
                SystemConfig c = cfg;
                // The configuration's seed is the base of the repeat
                // range, so sweeps can use disjoint seed ranges.
                c.seed = cfg.seed + r;
                c.benchmarks = mix->benches;
                cellDefs.push_back(
                    {name, mix->name, c.seed, std::move(c)});
            }
        }
    }

    std::vector<SweepRow> rows;
    rows.reserve(cellDefs.size());

    auto finish = [&](Cell &cell, RunResult result) {
        SweepRow row;
        row.config = std::move(cell.config);
        row.mix = std::move(cell.mix);
        row.seed = cell.seed;
        row.result = std::move(result);
        if (rowCb)
            rowCb(row);
        rows.push_back(std::move(row));
    };

    const unsigned n = effectiveJobs();
    if (n <= 1) {
        for (auto &cell : cellDefs) {
            System sys(cell.cfg);
            finish(cell, sys.run());
        }
        return rows;
    }

    // Each cell is an isolated System constructed and run on a worker
    // thread; collecting the futures in submission order keeps rows,
    // callbacks and any exception deterministic.
    ThreadPool pool(n);
    std::vector<std::future<RunResult>> pending;
    pending.reserve(cellDefs.size());
    for (const auto &cell : cellDefs) {
        pending.push_back(pool.submit([&cfg = cell.cfg] {
            System sys(cfg);
            return sys.run();
        }));
    }
    for (size_t i = 0; i < cellDefs.size(); ++i)
        finish(cellDefs[i], pending[i].get());
    return rows;
}

const ResultSchema &
Sweep::schema()
{
    return ResultSchema::sweepRows();
}

std::string
Sweep::csvHeader()
{
    return schema().csvHeader();
}

std::string
Sweep::csvRow(const SweepRow &row)
{
    return schema().csvRow(row);
}

void
Sweep::runCsv(std::ostream &os)
{
    os << csvHeader() << '\n';
    onRow([&os](const SweepRow &row) {
        os << csvRow(row) << '\n';
    });
    run();
}

void
Sweep::runJson(std::ostream &os)
{
    schema().writeJson(run(), os);
}

} // namespace fbdp
