#include "system/sweep.hh"

#include <algorithm>
#include <chrono>
#include <future>
#include <mutex>

#include <cstdlib>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "system/ledger.hh"
#include "system/progress.hh"
#include "system/runner.hh"

namespace fbdp {

namespace {

/** One materialised cell of the grid, in row (config-major) order. */
struct Cell
{
    std::string config;
    std::string mix;
    std::uint64_t seed;
    SystemConfig cfg;
};

std::vector<Cell>
materializeCells(
    const std::vector<std::pair<std::string, SystemConfig>> &configs,
    const std::vector<const WorkloadMix *> &mixes, unsigned n_repeats)
{
    std::vector<Cell> cells;
    cells.reserve(configs.size() * mixes.size() * n_repeats);
    for (const auto &[name, cfg] : configs) {
        for (const WorkloadMix *mix : mixes) {
            for (unsigned r = 0; r < n_repeats; ++r) {
                SystemConfig c = cfg;
                // The configuration's seed is the base of the repeat
                // range, so sweeps can use disjoint seed ranges.
                c.seed = cfg.seed + r;
                c.benchmarks = mix->benches;
                cells.push_back(
                    {name, mix->name, c.seed, std::move(c)});
            }
        }
    }
    return cells;
}

} // namespace

Sweep &
Sweep::addConfig(std::string name, SystemConfig cfg)
{
    configs.emplace_back(std::move(name), std::move(cfg));
    return *this;
}

Sweep &
Sweep::addMix(const WorkloadMix &mix)
{
    mixes.push_back(&mix);
    return *this;
}

Sweep &
Sweep::addMixGroup(unsigned cores)
{
    for (const auto &m : mixesFor(cores))
        mixes.push_back(&m);
    return *this;
}

Sweep &
Sweep::repeats(unsigned n)
{
    fbdp_assert(n >= 1, "sweep needs >= 1 repeat");
    nRepeats = n;
    return *this;
}

Sweep &
Sweep::jobs(unsigned n)
{
    nJobs = n;
    return *this;
}

Sweep &
Sweep::onRow(std::function<void(const SweepRow &)> cb)
{
    rowCb = std::move(cb);
    return *this;
}

Sweep &
Sweep::progress(ProgressSink *s)
{
    sink = s;
    return *this;
}

Sweep &
Sweep::manifest(bool on)
{
    wantManifest = on;
    manifestSet = true;
    return *this;
}

Sweep &
Sweep::ledger(std::string path)
{
    ledgerPath = std::move(path);
    ledgerSet = true;
    return *this;
}

bool
Sweep::manifestEnabled() const
{
    if (manifestSet)
        return wantManifest;
    const char *env = std::getenv("FBDP_MANIFEST");
    return env && *env && std::string(env) != "0";
}

std::string
Sweep::ledgerFile() const
{
    if (ledgerSet)
        return ledgerPath;
    const char *env = std::getenv("FBDP_LEDGER");
    return env ? env : "";
}

RunManifest
Sweep::gridManifest() const
{
    fbdp_assert(!configs.empty(), "sweep has no configurations");
    fbdp_assert(!mixes.empty(), "sweep has no workloads");
    const std::vector<Cell> cells =
        materializeCells(configs, mixes, nRepeats);
    std::string canon;
    for (const Cell &cell : cells)
        canon += canonicalConfigString(cell.cfg);
    RunManifest m = RunManifest::capture(cells.front().cfg);
    m.configDigest = csprintf(
        "%016llx",
        static_cast<unsigned long long>(fnv1a64(canon)));
    return m;
}

unsigned
Sweep::effectiveJobs() const
{
    unsigned n = nJobs ? nJobs : jobsFromEnv();
    const size_t total = cells();
    if (total > 0)
        n = static_cast<unsigned>(
            std::min<size_t>(n, total));
    return n ? n : 1;
}

std::vector<SweepRow>
Sweep::run()
{
    fbdp_assert(!configs.empty(), "sweep has no configurations");
    fbdp_assert(!mixes.empty(), "sweep has no workloads");

    // Materialise every cell up front, in config-major order; this
    // order — not completion order — defines the row order.
    std::vector<Cell> cellDefs =
        materializeCells(configs, mixes, nRepeats);

    std::vector<SweepRow> rows;
    rows.reserve(cellDefs.size());

    // Ledger appends happen in finish() — calling thread, row order —
    // with each cell's own manifest, so records trend per cell.
    const std::string ledgerOut = ledgerFile();

    auto finish = [&](Cell &cell, RunResult result) {
        SweepRow row;
        row.config = std::move(cell.config);
        row.mix = std::move(cell.mix);
        row.seed = cell.seed;
        row.result = std::move(result);
        if (rowCb)
            rowCb(row);
        if (!ledgerOut.empty()) {
            std::string err;
            if (!appendLedgerRecord(
                    ledgerOut,
                    ledgerRecordJson(RunManifest::capture(cell.cfg),
                                     row),
                    &err))
                fatal("%s", err.c_str());
        }
        rows.push_back(std::move(row));
    };

    // Progress events fire in completion order from whichever thread
    // finished the cell; one mutex serialises them so sinks stay
    // lock-free.  Rows and callbacks remain config-major either way.
    using Clock = std::chrono::steady_clock;
    std::mutex sinkMu;
    auto note = [&](auto &&fn) {
        if (!sink)
            return;
        std::lock_guard<std::mutex> lock(sinkMu);
        fn();
    };
    auto cellId = [](const Cell &cell) {
        return CellId{cell.config, cell.mix, cell.seed};
    };
    auto runCell = [&](std::size_t i) {
        const Cell &cell = cellDefs[i];
        note([&] { sink->cellStarted(i, cellId(cell)); });
        const auto c0 = Clock::now();
        try {
            System sys(cell.cfg);
            RunResult r = sys.run();
            const double wall =
                std::chrono::duration<double>(Clock::now() - c0)
                    .count();
            note([&] { sink->cellFinished(i, cellId(cell), wall); });
            return r;
        } catch (const std::exception &e) {
            note([&] { sink->cellFailed(i, cellId(cell), e.what()); });
            throw;
        }
    };

    const unsigned n = effectiveJobs();
    const auto t0 = Clock::now();
    note([&] { sink->sweepStarted(cellDefs.size(), n); });

    if (n <= 1) {
        for (std::size_t i = 0; i < cellDefs.size(); ++i)
            finish(cellDefs[i], runCell(i));
    } else {
        // Each cell is an isolated System constructed and run on a
        // worker thread; collecting the futures in submission order
        // keeps rows, callbacks and any exception deterministic.
        ThreadPool pool(n);
        std::vector<std::future<RunResult>> pending;
        pending.reserve(cellDefs.size());
        for (std::size_t i = 0; i < cellDefs.size(); ++i)
            pending.push_back(
                pool.submit([&runCell, i] { return runCell(i); }));
        for (size_t i = 0; i < cellDefs.size(); ++i)
            finish(cellDefs[i], pending[i].get());
    }

    note([&] {
        sink->sweepFinished(
            std::chrono::duration<double>(Clock::now() - t0).count());
    });
    return rows;
}

const ResultSchema &
Sweep::schema()
{
    return ResultSchema::sweepRows();
}

std::string
Sweep::csvHeader()
{
    return schema().csvHeader();
}

std::string
Sweep::csvRow(const SweepRow &row)
{
    return schema().csvRow(row);
}

void
Sweep::runCsv(std::ostream &os)
{
    if (manifestEnabled())
        os << gridManifest().csvComment();
    os << csvHeader() << '\n';
    onRow([&os](const SweepRow &row) {
        os << csvRow(row) << '\n';
    });
    run();
}

void
Sweep::runJson(std::ostream &os)
{
    const std::string m =
        manifestEnabled() ? gridManifest().json() : std::string();
    schema().writeJson(run(), os, m);
}

} // namespace fbdp
