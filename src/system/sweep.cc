#include "system/sweep.hh"

#include <sstream>

#include "common/logging.hh"

namespace fbdp {

Sweep &
Sweep::addConfig(std::string name, SystemConfig cfg)
{
    configs.emplace_back(std::move(name), std::move(cfg));
    return *this;
}

Sweep &
Sweep::addMix(const WorkloadMix &mix)
{
    mixes.push_back(&mix);
    return *this;
}

Sweep &
Sweep::addMixGroup(unsigned cores)
{
    for (const auto &m : mixesFor(cores))
        mixes.push_back(&m);
    return *this;
}

Sweep &
Sweep::repeats(unsigned n)
{
    fbdp_assert(n >= 1, "sweep needs >= 1 repeat");
    nRepeats = n;
    return *this;
}

Sweep &
Sweep::onRow(std::function<void(const SweepRow &)> cb)
{
    rowCb = std::move(cb);
    return *this;
}

std::vector<SweepRow>
Sweep::run()
{
    fbdp_assert(!configs.empty(), "sweep has no configurations");
    fbdp_assert(!mixes.empty(), "sweep has no workloads");

    std::vector<SweepRow> rows;
    rows.reserve(cells());
    for (const auto &[name, cfg] : configs) {
        for (const WorkloadMix *mix : mixes) {
            for (unsigned r = 1; r <= nRepeats; ++r) {
                SystemConfig c = cfg;
                c.seed = r;
                c.benchmarks = mix->benches;
                System sys(c);
                SweepRow row;
                row.config = name;
                row.mix = mix->name;
                row.seed = r;
                row.result = sys.run();
                if (rowCb)
                    rowCb(row);
                rows.push_back(std::move(row));
            }
        }
    }
    return rows;
}

std::string
Sweep::csvHeader()
{
    return "config,mix,seed,ipc_sum,bandwidth_gbs,"
           "avg_read_latency_ns,reads,writes,amb_hits,coverage,"
           "efficiency,act_pre,cas,refresh,insts,sim_us";
}

std::string
Sweep::csvRow(const SweepRow &row)
{
    const RunResult &r = row.result;
    std::ostringstream os;
    os << row.config << ',' << row.mix << ',' << row.seed << ','
       << r.ipcSum() << ',' << r.bandwidthGBs << ','
       << r.avgReadLatencyNs << ',' << r.reads << ',' << r.writes
       << ',' << r.ambHits << ',' << r.coverage << ','
       << r.efficiency << ',' << r.ops.actPre << ',' << r.ops.cas()
       << ',' << r.ops.refresh << ',' << r.totalInsts() << ','
       << static_cast<double>(r.measuredTicks) * 1e-6;
    return os.str();
}

void
Sweep::runCsv(std::ostream &os)
{
    os << csvHeader() << '\n';
    onRow([&os](const SweepRow &row) {
        os << csvRow(row) << '\n';
    });
    run();
}

} // namespace fbdp
