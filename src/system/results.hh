/**
 * @file
 * Typed results API for batch experiments.
 *
 * A sweep produces SweepRows; what the plotting / analysis pipelines
 * consume is a flat table of named, unit-annotated columns.  Instead
 * of hand-maintained header and row strings (the old
 * Sweep::csvHeader()/csvRow() pair), the table shape is declared once
 * as a ResultSchema — a list of Columns, each with a name, a unit, a
 * kind and a typed accessor — and both the CSV and the JSON emitters
 * are derived from that single definition, so the two can never drift
 * apart.
 *
 * Compatibility guarantee: ResultSchema::sweepRows() reproduces the
 * legacy CSV byte for byte (same column names, order, and number
 * formatting); Sweep::csvHeader()/csvRow() are thin wrappers over it.
 */

#ifndef FBDP_SYSTEM_RESULTS_HH
#define FBDP_SYSTEM_RESULTS_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "system/system.hh"

namespace fbdp {

/** One row of sweep output. */
struct SweepRow
{
    std::string config;
    std::string mix;
    std::uint64_t seed = 0;
    RunResult result;
};

/** Value kind of one results column. */
enum class ColumnKind
{
    Text,  ///< identifiers (config and mix names)
    Count, ///< non-negative integer counters
    Real,  ///< measured quantities
};

/** One cell, already pulled out of a row by a Column accessor. */
struct ColumnValue
{
    ColumnKind kind = ColumnKind::Real;
    std::string text;
    std::uint64_t count = 0;
    double real = 0.0;

    static ColumnValue ofText(std::string v);
    static ColumnValue ofCount(std::uint64_t v);
    static ColumnValue ofReal(double v);

    /** Render for CSV (matches legacy operator<< formatting). */
    std::string csv() const;

    /** Render as a JSON value (quoted/escaped text, null for NaN). */
    std::string json() const;
};

/** One named, unit-annotated column of the results table. */
struct Column
{
    std::string name; ///< CSV header cell / JSON object key
    std::string unit; ///< "" when dimensionless
    std::string desc; ///< one-line meaning
    ColumnKind kind = ColumnKind::Real;
    std::function<ColumnValue(const SweepRow &)> get;
};

/**
 * An ordered set of Columns; the single source of truth for every
 * serialisation of sweep results.
 */
class ResultSchema
{
  public:
    ResultSchema &add(Column c);

    const std::vector<Column> &columns() const { return cols; }

    /** The canonical SweepRow schema (the legacy CSV layout). */
    static const ResultSchema &sweepRows();

    /**
     * Event-kernel profile columns (queue counters, transaction-pool
     * occupancy, sim-rate).  A separate table on purpose: sweepRows()
     * is a byte-for-byte compatibility surface and must not grow
     * columns, and host-time-derived rates are not comparable across
     * machines the way simulation results are.
     */
    static const ResultSchema &kernelStats();

    /**
     * Per-request-class latency percentiles (demand-miss reads,
     * prefetch-hit reads, writes) plus the late-prefetch counter.
     * A separate table for the same reason as kernelStats():
     * sweepRows() is a byte-for-byte compatibility surface.
     */
    static const ResultSchema &latencyPercentiles();

    /**
     * The prefetch-policy quality block (RunResult::prefetch): the
     * active policy's name plus the issued / hit / late-hit / dropped
     * / pollution counters and their derived ratios, aggregated over
     * channels.  The table head-to-head policy comparisons are built
     * from; a separate table because sweepRows() is a byte-for-byte
     * compatibility surface.
     */
    static const ResultSchema &prefetchStats();

    /**
     * The DRAM power block (Section 5.5): ACT/PRE and column-access
     * counts with the PowerModel's dynamic energy/power over the
     * measured window, in column-access units.  End-of-run companion
     * to the per-epoch power.* telemetry gauges; a separate table
     * because sweepRows() is a byte-for-byte compatibility surface.
     */
    static const ResultSchema &powerStats();

    /**
     * Per-class latency-phase breakdown (the attribution layer's
     * aggregate over all channels): per transaction class, the sample
     * count, the mean end-to-end latency and the mean time spent in
     * each phase — phase means sum to the total mean by construction.
     * Columns are all zero unless the run had
     * SystemConfig::attribution enabled.  A separate table because
     * sweepRows() is a byte-for-byte compatibility surface.
     */
    static const ResultSchema &latencyBreakdown();

    /** Comma-joined column names. */
    std::string csvHeader() const;

    /** One CSV line (no trailing newline). */
    std::string csvRow(const SweepRow &row) const;

    /** One JSON object ({"config":"fbd",...}, no trailing newline). */
    std::string jsonRow(const SweepRow &row) const;

    /** Header + one line per row. */
    void writeCsv(const std::vector<SweepRow> &rows,
                  std::ostream &os) const;

    /**
     * Whole result set as one JSON document:
     *   { "columns": [ {"name","unit","kind"}, ... ],
     *     "rows":    [ {<name>: <value>, ...}, ... ] }
     * A non-empty @p manifest_json becomes a single "manifest" line
     * right after the opening brace — deleting that line recovers the
     * manifest-free bytes.
     */
    void writeJson(const std::vector<SweepRow> &rows,
                   std::ostream &os,
                   const std::string &manifest_json = "") const;

  private:
    std::vector<Column> cols;
};

} // namespace fbdp

#endif // FBDP_SYSTEM_RESULTS_HH
