#include "system/runner.hh"

#include <cstdlib>
#include <future>
#include <thread>

#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace fbdp {

RunResult
runMix(const SystemConfig &base, const WorkloadMix &mix)
{
    SystemConfig cfg = base;
    cfg.benchmarks = mix.benches;
    applyThreadsFromEnv(cfg);
    System sys(cfg);
    return sys.run();
}

unsigned
jobsFromEnv()
{
    const char *e = std::getenv("FBDP_JOBS");
    if (!e || !*e)
        return 1;
    char *end = nullptr;
    const long long v = std::strtoll(e, &end, 10);
    if (end == e || *end != '\0' || v < 1 || v > 1024) {
        warn("ignoring FBDP_JOBS='%s': expected a worker count in "
             "[1, 1024]; running serially", e);
        return 1;
    }
    return static_cast<unsigned>(v);
}

unsigned
parseThreadCount(const char *text, const char *origin)
{
    if (!text || !*text)
        return 1;
    char *end = nullptr;
    const long long v = std::strtoll(text, &end, 10);
    if (end == text || *end != '\0' || v < 1 || v > 1024) {
        warn("ignoring %s='%s': expected a lane count in [1, 1024]; "
             "running serially", origin, text);
        return 1;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw > 0 && v > hw) {
        warn("%s=%lld exceeds the %u host CPUs; clamping (results "
             "are identical for every thread count)", origin, v, hw);
        return hw;
    }
    return static_cast<unsigned>(v);
}

void
applyThreadsFromEnv(SystemConfig &cfg)
{
    const char *e = std::getenv("FBDP_THREADS");
    if (!e || !*e)
        return;
    cfg.threads = parseThreadCount(e, "FBDP_THREADS");
}

std::vector<RunResult>
runCells(const std::vector<RunCell> &cells, unsigned jobs)
{
    std::vector<SystemConfig> cfgs;
    cfgs.reserve(cells.size());
    for (const RunCell &cell : cells) {
        cfgs.push_back(cell.cfg);
        if (cell.mix)
            cfgs.back().benchmarks = cell.mix->benches;
        applyThreadsFromEnv(cfgs.back());
    }

    std::vector<RunResult> results;
    results.reserve(cfgs.size());

    unsigned n = jobs ? jobs : jobsFromEnv();
    if (n > cfgs.size())
        n = static_cast<unsigned>(cfgs.size());
    if (n <= 1) {
        for (const SystemConfig &cfg : cfgs) {
            System sys(cfg);
            results.push_back(sys.run());
        }
        return results;
    }

    ThreadPool pool(n);
    std::vector<std::future<RunResult>> pending;
    pending.reserve(cfgs.size());
    for (const SystemConfig &cfg : cfgs) {
        pending.push_back(pool.submit([&cfg] {
            System sys(cfg);
            return sys.run();
        }));
    }
    for (auto &f : pending)
        results.push_back(f.get());
    return results;
}

ReferenceSet::ReferenceSet(SystemConfig ref_base)
    : base(std::move(ref_base))
{
}

double
ReferenceSet::ipcOf(const std::string &bench)
{
    std::lock_guard<std::mutex> lk(mtx);
    auto it = cache.find(bench);
    if (it != cache.end())
        return it->second;

    SystemConfig cfg = base;
    cfg.benchmarks = {bench};
    System sys(cfg);
    RunResult r = sys.run();
    fbdp_assert(!r.ipc.empty() && r.ipc[0] > 0.0,
                "reference run for '%s' produced no IPC",
                bench.c_str());
    cache[bench] = r.ipc[0];
    return r.ipc[0];
}

double
smtSpeedup(const RunResult &r, const WorkloadMix &mix,
           ReferenceSet &refs)
{
    fbdp_assert(r.ipc.size() == mix.benches.size(),
                "result/mix core-count mismatch");
    double s = 0.0;
    for (size_t i = 0; i < mix.benches.size(); ++i)
        s += r.ipc[i] / refs.ipcOf(mix.benches[i]);
    return s;
}

void
applyInstsFromEnv(SystemConfig &cfg)
{
    if (const char *e = std::getenv("FBDP_MEASURE_INSTS")) {
        const long long v = std::atoll(e);
        if (v > 0)
            cfg.measureInsts = static_cast<std::uint64_t>(v);
    }
    if (const char *e = std::getenv("FBDP_WARMUP_INSTS")) {
        const long long v = std::atoll(e);
        if (v > 0)
            cfg.warmupInsts = static_cast<std::uint64_t>(v);
    }
}

} // namespace fbdp
