/**
 * @file
 * Live progress for sweeps and long single runs.
 *
 * A design-space sweep at production trace scale runs for hours; until
 * now it was a silent process that either eventually printed rows or
 * didn't.  This layer makes the fleet observable while it runs, in
 * two shapes:
 *
 *  - ProgressSink: a callback interface the Sweep driver feeds with
 *    per-cell start / finish / fail events (plus sweep start/end), and
 *    a long single run feeds with periodic heartbeats.  Two bundled
 *    sinks render them as a self-overwriting terminal status line
 *    (TerminalProgress) and as machine-readable JSON-lines
 *    (JsonlProgress, the `--progress-out` stream that CI and
 *    fbdp-dash consume).
 *
 *  - ProgressPulse: the heartbeat source for a single System run.  It
 *    self-schedules one event per sim-time period on the core shard —
 *    exactly the TelemetrySampler pattern, so attaching it cannot
 *    change simulation results — and reports instructions retired,
 *    the percent of the run target, and the host-side sim rate.  It
 *    reads only core-shard state, so unlike the telemetry sampler it
 *    does not pin the sharded kernel to one lane.
 *
 * Everything here is opt-in and zero-overhead when absent: a Sweep
 * without a sink and a System without a pulse execute exactly the
 * seed code path.
 *
 * Progress events are completion-ordered, not row-ordered — that is
 * their point.  The Sweep serialises sink calls under a mutex, so
 * sinks need no locking of their own; sweep outputs (CSV/JSON rows)
 * stay row-ordered and byte-identical with or without a sink.
 */

#ifndef FBDP_SYSTEM_PROGRESS_HH
#define FBDP_SYSTEM_PROGRESS_HH

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"
#include "sim/event_queue.hh"
#include "system/manifest.hh"

namespace fbdp {

class System;

/** Identity of one sweep cell, as shown in progress events. */
struct CellId
{
    std::string config;
    std::string mix;
    std::uint64_t seed = 0;
};

/** One heartbeat of a long single run. */
struct HeartbeatSample
{
    Tick now = 0;                  ///< simulated time
    std::uint64_t instsDone = 0;   ///< retired so far, all cores
    std::uint64_t instsTarget = 0; ///< warm-up + measure, all cores
    double hostSeconds = 0.0;      ///< since the pulse started
    double instsPerSec = 0.0;      ///< instsDone / hostSeconds

    /** Fraction of the run target retired (clamped to 1). */
    double fraction() const;

    /** Host seconds left at the observed rate (0 when unknown). */
    double etaSeconds() const;
};

/**
 * Receiver of progress events.  Every method has an empty default so
 * sinks override only what they render.  Calls arrive serialised (the
 * Sweep holds a lock; a pulse fires from one event context).
 */
class ProgressSink
{
  public:
    virtual ~ProgressSink() = default;

    virtual void sweepStarted(std::size_t cells, unsigned jobs);
    virtual void cellStarted(std::size_t index, const CellId &id);
    virtual void cellFinished(std::size_t index, const CellId &id,
                              double wall_seconds);
    virtual void cellFailed(std::size_t index, const CellId &id,
                            const std::string &what);
    virtual void sweepFinished(double wall_seconds);

    virtual void runHeartbeat(const HeartbeatSample &hb);
};

/**
 * Shared ETA arithmetic of the sweep sinks: mean wall seconds of the
 * completed cells times the cells still outstanding, divided by the
 * worker count.
 */
struct SweepEta
{
    std::size_t total = 0;
    unsigned jobs = 1;
    std::size_t done = 0;
    double wallSum = 0.0;

    void start(std::size_t cells, unsigned n);
    void finished(double wall_seconds);
    double etaSeconds() const;
};

/**
 * Self-overwriting status line on a terminal stream (stderr by
 * default; redraws are throttled to one per 100 ms of host time so a
 * fast sweep is not dominated by terminal writes).
 */
class TerminalProgress : public ProgressSink
{
  public:
    explicit TerminalProgress(std::ostream &os);

    void sweepStarted(std::size_t cells, unsigned jobs) override;
    void cellFinished(std::size_t index, const CellId &id,
                      double wall_seconds) override;
    void cellFailed(std::size_t index, const CellId &id,
                    const std::string &what) override;
    void sweepFinished(double wall_seconds) override;

    void runHeartbeat(const HeartbeatSample &hb) override;

  private:
    void line(const std::string &text, bool final_line);
    bool throttled();

    std::ostream &out;
    SweepEta eta;
    std::size_t lastLen = 0;
    std::chrono::steady_clock::time_point lastDraw{};
    bool drawn = false;
};

/**
 * Machine-readable JSON-lines stream: one object per event, flushed
 * per line so `tail -f` and CI see events live.  When a manifest is
 * supplied the first line is {"event": "manifest", ...} — the stream
 * is then self-describing like every other output surface.
 */
class JsonlProgress : public ProgressSink
{
  public:
    explicit JsonlProgress(std::ostream &os,
                           const RunManifest *m = nullptr);

    void sweepStarted(std::size_t cells, unsigned jobs) override;
    void cellStarted(std::size_t index, const CellId &id) override;
    void cellFinished(std::size_t index, const CellId &id,
                      double wall_seconds) override;
    void cellFailed(std::size_t index, const CellId &id,
                    const std::string &what) override;
    void sweepFinished(double wall_seconds) override;

    void runHeartbeat(const HeartbeatSample &hb) override;

  private:
    std::ostream &out;
    SweepEta eta;
};

/** Fan-out to several sinks (terminal + JSONL at once). */
class ProgressMux : public ProgressSink
{
  public:
    void add(ProgressSink *s) { sinks.push_back(s); }

    void sweepStarted(std::size_t cells, unsigned jobs) override;
    void cellStarted(std::size_t index, const CellId &id) override;
    void cellFinished(std::size_t index, const CellId &id,
                      double wall_seconds) override;
    void cellFailed(std::size_t index, const CellId &id,
                    const std::string &what) override;
    void sweepFinished(double wall_seconds) override;
    void runHeartbeat(const HeartbeatSample &hb) override;

  private:
    std::vector<ProgressSink *> sinks;
};

/**
 * Heartbeat source for one System run: one self-scheduled event per
 * @p period ticks of simulated time reads the cores' retired
 * instruction counters (guarded against the mid-run resetStats()
 * between warm-up and measurement) and reports a HeartbeatSample.
 * Observer-only: results are bit-identical with a pulse attached or
 * not, and no lane pinning is needed — everything it reads lives on
 * the core shard the pulse event runs on.
 */
class ProgressPulse
{
  public:
    /** 100 µs of simulated time: a handful of beats on a default
     *  400k-instruction run, thousands on a production trace. */
    static constexpr Tick defaultPeriod = nsToTicks(100'000);

    ProgressPulse(System &system, Tick period_ticks,
                  ProgressSink &sink);
    ~ProgressPulse();

    ProgressPulse(const ProgressPulse &) = delete;
    ProgressPulse &operator=(const ProgressPulse &) = delete;

    /** Arm the pulse; call before System::run(). */
    void start();

    /** Emit one final sample and disarm; call after System::run(). */
    void finish();

    std::uint64_t beats() const { return nBeats; }

  private:
    void fire();
    void sample();

    System &sys;
    EventQueue &eq;
    Tick period;
    ProgressSink &sink;

    Event beatEvent;
    Tick nextAt = 0;
    std::uint64_t nBeats = 0;
    std::uint64_t instsTarget = 0;
    std::uint64_t instsAccum = 0;
    std::vector<std::uint64_t> prevInsts; ///< per core, reset guard
    std::chrono::steady_clock::time_point t0{};
};

} // namespace fbdp

#endif // FBDP_SYSTEM_PROGRESS_HH
