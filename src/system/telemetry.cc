#include "system/telemetry.hh"

#include <cctype>
#include <cstdlib>

#include "common/logging.hh"
#include "power/power_model.hh"

namespace fbdp {

TelemetrySampler::TelemetrySampler(System &system, Tick epoch_ticks,
                                   std::ostream &os, Format format)
    : sys(system),
      eq(system.eventQueue()),
      epoch(epoch_ticks),
      out(os),
      fmt(format),
      // Fire after every same-tick completion and CPU advance so a
      // record reflects the boundary's settled state.
      sampleEvent([this] { fire(); }, Event::prioCpu + 5)
{
    fbdp_assert(epoch > 0, "telemetry epoch must be positive");
    // The sampler reads every shard's gauges from core-shard event
    // context; the run must stay on one lane while it is attached.
    sys.setTelemetryObserver(true);

    const unsigned nCh = sys.numControllers();
    chPrev.resize(nCh);
    chCur.resize(nCh);
    coreScr.resize(sys.config().nCores());

    const double epochD = static_cast<double>(epoch);

    for (unsigned c = 0; c < nCh; ++c) {
        const MemController &mc = sys.controller(c);
        const ControllerConfig &mcc = mc.config();
        const std::string pfx = csprintf("ch%u.", c);
        const ChannelCur *cur = &chCur[c];

        // The southbound link carries three command slots per frame
        // (one command per cycle on the DDR2 command bus); a frame
        // with a write payload carries exactly one command, so the
        // utilisation estimate charges a data frame one full frame
        // and each command a slot's worth.
        const double slots = mcc.fbd ? 3.0 : 1.0;
        const double frame = static_cast<double>(mcc.timing.memCycle);
        const double nBanks =
            static_cast<double>(mcc.nDimms * mcc.banksPerDimm);

        addGauge(pfx + "south_cmds", "commands sent on the south link",
                 [cur] { return cur->southCmds; });
        addGauge(pfx + "south_util",
                 "southbound/command link utilisation (approx)",
                 [cur, slots, frame, epochD] {
                     return (cur->southCmds / slots
                             + cur->southDataFrames) * frame / epochD;
                 });
        addGauge(pfx + "north_util",
                 "northbound/data link busy fraction",
                 [cur, epochD] { return cur->northBusy / epochD; });
        addGauge(pfx + "queue_depth", "requests queued right now",
                 [&mc] {
                     return static_cast<double>(mc.queueDepth());
                 });
        addGauge(pfx + "amb_hit_rate",
                 "fraction of this epoch's reads served by a "
                 "prefetch buffer",
                 [cur] {
                     return cur->reads > 0.0 ? cur->hits / cur->reads
                                             : 0.0;
                 });
        addGauge(pfx + "amb_occupancy",
                 "prefetch-buffer fill fraction right now",
                 [&mc] {
                     const PrefetchTable *t = mc.prefetchTable()
                         ? mc.prefetchTable() : mc.mcBuffer();
                     if (!t || t->capacity() == 0)
                         return 0.0;
                     return static_cast<double>(t->population())
                         / static_cast<double>(t->capacity());
                 });
        addGauge(pfx + "late_pf_hits",
                 "prefetch hits still in flight when demanded",
                 [cur] { return cur->latePf; });
        addGauge(pfx + "bank_busy",
                 "mean bank busy fraction (ACT..PRE closed this epoch)",
                 [cur, nBanks, epochD] {
                     return cur->bankBusy / (nBanks * epochD);
                 });
        addGauge(pfx + "rows_open", "banks holding an open row",
                 [&mc] { return static_cast<double>(mc.rowsOpen()); });
    }

    addGauge("l2.mshr_occupancy", "L2 MSHRs in use right now", [this] {
        return static_cast<double>(sys.hierarchy().l2MshrOccupancy());
    });
    addGauge("prefetch.coverage",
             "cumulative #prefetch_hit / #read, all channels", [this] {
                 std::uint64_t hits = 0, reads = 0;
                 for (unsigned c = 0; c < sys.numControllers(); ++c) {
                     const MemController &mc = sys.controller(c);
                     const PrefetchTable *t = mc.prefetchTable()
                         ? mc.prefetchTable() : mc.mcBuffer();
                     if (!t)
                         continue;
                     hits += t->prefetchHits();
                     reads += t->reads();
                 }
                 return reads
                     ? static_cast<double>(hits)
                         / static_cast<double>(reads)
                     : 0.0;
             });
    addGauge("prefetch.issued",
             "prefetch candidate lines fetched this epoch, all "
             "channels",
             [this] { return pfScr.dIssued; });
    addGauge("prefetch.pollution",
             "cumulative unused displaced or invalidated lines / "
             "prefetches issued, all channels", [this] {
                 std::uint64_t bad = 0, issued = 0;
                 for (unsigned c = 0; c < sys.numControllers(); ++c) {
                     const MemController &mc = sys.controller(c);
                     const PrefetchTable *t = mc.prefetchTable()
                         ? mc.prefetchTable() : mc.mcBuffer();
                     if (!t)
                         continue;
                     bad += t->evictedUnused()
                         + t->invalidatedUnused();
                     issued += t->prefetchesIssued();
                 }
                 return issued
                     ? static_cast<double>(bad)
                         / static_cast<double>(issued)
                     : 0.0;
             });

    // Section 5.5 power gauges: the PowerModel applied to this
    // epoch's DRAM op deltas, summed over all channels.  Energy is in
    // column-access units (CAU), power in CAU per simulated second.
    const double epochSecs = epochD * 1e-12;
    addGauge("power.ops",
             "DRAM operations this epoch (ACT/PRE + CAS + refresh), "
             "all channels",
             [this] {
                 return pwScr.dActPre + pwScr.dRdCas + pwScr.dWrCas
                     + pwScr.dRefresh;
             });
    addGauge("power.energy",
             "dynamic DRAM energy this epoch, column-access units",
             [this] {
                 return PowerModel{}.actPreToCasRatio() * pwScr.dActPre
                     + pwScr.dRdCas + pwScr.dWrCas;
             });
    addGauge("power.dynamic",
             "dynamic DRAM power this epoch, column-access units per "
             "simulated second",
             [this, epochSecs] {
                 return (PowerModel{}.actPreToCasRatio()
                             * pwScr.dActPre
                         + pwScr.dRdCas + pwScr.dWrCas) / epochSecs;
             });

    // Kernel self-profile gauges.  The fractions relate the profiler's
    // per-shard host seconds to the host wall-clock time between two
    // samples; they read 0 unless the run was started with
    // --profile-kernel.  Mailbox traffic is counted unconditionally.
    addGauge("kernel.busy_frac",
             "fraction of host wall time spent dispatching events "
             "since the last sample (0 unless --profile-kernel)",
             [this] {
                 return krnScr.dWall > 0.0
                     ? (krnScr.dBusy + krnScr.dDrain) / krnScr.dWall
                     : 0.0;
             });
    addGauge("kernel.barrier_wait_frac",
             "fraction of host wall time spent waiting at the round "
             "barrier since the last sample (0 unless "
             "--profile-kernel)",
             [this] {
                 return krnScr.dWall > 0.0
                     ? krnScr.dWait / krnScr.dWall : 0.0;
             });
    addGauge("kernel.mailbox_msgs",
             "cross-shard mailbox messages posted this epoch",
             [this] { return krnScr.dPosted; });

    for (size_t i = 0; i < coreScr.size(); ++i) {
        const CoreScratch *scr = &coreScr[i];
        const std::string pfx = csprintf("cpu%zu.", i);
        addGauge(pfx + "insts", "instructions retired this epoch",
                 [scr] { return scr->dInsts; });
        // All cores run at the global CPU clock (Table 1), so the
        // epoch's cycle count is epoch / cpuCyclePs.
        addGauge(pfx + "ipc", "IPC over this epoch",
                 [scr, epochD] {
                     return scr->dInsts
                         * static_cast<double>(cpuCyclePs) / epochD;
                 });
    }
}

TelemetrySampler::~TelemetrySampler()
{
    if (sampleEvent.scheduled())
        eq.deschedule(&sampleEvent);
    sys.setTelemetryObserver(false);
}

void
TelemetrySampler::addGauge(const std::string &gauge_name,
                           const std::string &gauge_desc,
                           std::function<double()> fn)
{
    formulas.push_back(std::make_unique<stats::Formula>(
        gauge_name, gauge_desc, std::move(fn)));
    group.registerStat(formulas.back().get());
}

void
TelemetrySampler::setManifest(const RunManifest &m)
{
    manifest = m;
}

void
TelemetrySampler::start()
{
    if (manifest) {
        if (fmt == Format::Csv)
            out << manifest->csvComment();
        else
            out << "{\"manifest\": " << manifest->json() << "}\n";
        manifest.reset();
    }
    nextAt = (eq.now() / epoch + 1) * epoch;
    eq.schedule(&sampleEvent, nextAt);
}

void
TelemetrySampler::fire()
{
    takeSample(nextAt);
    nextAt += epoch;
    eq.schedule(&sampleEvent, nextAt);
}

void
TelemetrySampler::finish()
{
    if (sampleEvent.scheduled())
        eq.deschedule(&sampleEvent);
    // The run can stop between a boundary and its event dispatch (the
    // event loop exits the moment the instruction target is hit);
    // catch up so records() == floor(simTime / epoch) always holds.
    while (nextAt != 0 && nextAt <= eq.now()) {
        takeSample(nextAt);
        nextAt += epoch;
    }
    nextAt = 0;
}

namespace {

/**
 * Delta of a cumulative counter that may have been zeroed by a
 * mid-run resetStats(): a reading below the baseline restarts the
 * accumulation from zero instead of going negative.
 */
template <typename T>
double
guardedDelta(T cur, T &prev)
{
    const double d = cur >= prev
        ? static_cast<double>(cur - prev)
        : static_cast<double>(cur);
    prev = cur;
    return d;
}

} // namespace

void
TelemetrySampler::takeSample(Tick at)
{
    for (unsigned c = 0; c < sys.numControllers(); ++c) {
        const MemController &mc = sys.controller(c);
        ChannelPrev &p = chPrev[c];
        ChannelCur &cur = chCur[c];
        cur.southCmds = guardedDelta(mc.southCommands(), p.southCmds);
        cur.southDataFrames =
            guardedDelta(mc.southDataFrames(), p.southDataFrames);
        cur.northBusy = guardedDelta(mc.northBusyTicks(), p.northBusy);
        cur.bankBusy = guardedDelta(mc.bankBusyTicks(), p.bankBusy);
        cur.hits = guardedDelta(mc.ambHits() + mc.mcHits(), p.hits);
        cur.reads = guardedDelta(mc.reads(), p.reads);
        cur.latePf = guardedDelta(mc.latePrefetchHits(), p.latePf);
    }
    for (size_t i = 0; i < coreScr.size(); ++i)
        coreScr[i].dInsts =
            guardedDelta(sys.core(static_cast<unsigned>(i)).insts(),
                         coreScr[i].prevInsts);
    {
        std::uint64_t issued = 0;
        for (unsigned c = 0; c < sys.numControllers(); ++c) {
            const MemController &mc = sys.controller(c);
            const PrefetchTable *t = mc.prefetchTable()
                ? mc.prefetchTable() : mc.mcBuffer();
            if (t)
                issued += t->prefetchesIssued();
        }
        pfScr.dIssued = guardedDelta(issued, pfScr.prevIssued);
    }
    {
        DramOpCounts ops;
        for (unsigned c = 0; c < sys.numControllers(); ++c)
            ops += sys.controller(c).dramOps();
        pwScr.dActPre = guardedDelta(ops.actPre, pwScr.prevActPre);
        pwScr.dRdCas = guardedDelta(ops.rdCas, pwScr.prevRdCas);
        pwScr.dWrCas = guardedDelta(ops.wrCas, pwScr.prevWrCas);
        pwScr.dRefresh = guardedDelta(ops.refresh, pwScr.prevRefresh);
    }
    {
        krnScr.dBusy =
            guardedDelta(sys.kernelBusySeconds(), krnScr.prevBusy);
        krnScr.dDrain =
            guardedDelta(sys.kernelDrainSeconds(), krnScr.prevDrain);
        krnScr.dWait = guardedDelta(sys.kernelBarrierWaitSeconds(),
                                    krnScr.prevWait);
        krnScr.dPosted = guardedDelta(sys.mailboxMessagesPosted(),
                                      krnScr.prevPosted);
        const auto wall = std::chrono::steady_clock::now();
        krnScr.dWall = krnScr.wallValid
            ? std::chrono::duration<double>(wall - krnScr.prevWall)
                  .count()
            : 0.0;
        krnScr.prevWall = wall;
        krnScr.wallValid = true;
    }

    const double tNs =
        static_cast<double>(at) / static_cast<double>(ticksPerNs);

    if (fmt == Format::Csv) {
        if (!headerDone) {
            out << "epoch,t_ns";
            for (const stats::Stat *s : group.all())
                out << ',' << s->name();
            out << '\n';
            headerDone = true;
        }
        out << nRecords + 1 << ',' << csprintf("%.9g", tNs);
        for (const stats::Stat *s : group.all()) {
            const auto *f = static_cast<const stats::Formula *>(s);
            out << ',' << csprintf("%.9g", f->value());
        }
        out << '\n';
    } else {
        out << csprintf("{\"epoch\": %llu, \"t_ns\": %.9g",
                        static_cast<unsigned long long>(nRecords + 1),
                        tNs);
        for (const stats::Stat *s : group.all()) {
            const auto *f = static_cast<const stats::Formula *>(s);
            out << csprintf(", \"%s\": %.9g", s->name().c_str(),
                            f->value());
        }
        out << "}\n";
    }
    ++nRecords;
}

std::optional<double>
TelemetrySampler::gauge(const std::string &name) const
{
    const stats::Stat *s = group.find(name);
    if (!s)
        return std::nullopt;
    // The group holds nothing but Formulas (see addGauge).
    return static_cast<const stats::Formula *>(s)->value();
}

bool
TelemetrySampler::hasGauge(const std::string &name) const
{
    return group.find(name) != nullptr;
}

Tick
TelemetrySampler::parseTimeSpec(const std::string &spec)
{
    const char *str = spec.c_str();
    char *end = nullptr;
    const double v = std::strtod(str, &end);
    if (end == str)
        fatal("bad time spec '%s': expected <number><ns|us|ms>", str);
    const std::string unit(end);
    double ns = 0.0;
    if (unit == "ns")
        ns = v;
    else if (unit == "us")
        ns = v * 1e3;
    else if (unit == "ms")
        ns = v * 1e6;
    else
        fatal("bad time spec '%s': unit must be ns, us or ms", str);
    if (ns <= 0.0)
        fatal("bad time spec '%s': duration must be positive", str);
    const Tick t = nsToTicks(ns);
    if (t == 0)
        fatal("bad time spec '%s': rounds to zero ticks", str);
    return t;
}

} // namespace fbdp
