/**
 * @file
 * Epoch telemetry: a sim-time periodic sampler that walks the live
 * system at every epoch boundary (default 1 µs) and appends one gauge
 * record per epoch to a stream, as JSON-lines or CSV.
 *
 * The sampler is a pure observer.  It self-schedules one event per
 * epoch, reads component state through const accessors, and writes to
 * its output stream; it never mutates simulation state, so attaching
 * it cannot change results.  Cumulative counters (link busy ticks,
 * commands sent, instructions) are turned into per-epoch deltas with a
 * guard that survives the mid-run resetStats() between the warm-up and
 * measured phases.
 *
 * Gauges are published as a StatGroup of Formulas, so tests and tools
 * can query the latest record by name via gauge("ch0.north_util").
 */

#ifndef FBDP_SYSTEM_TELEMETRY_HH
#define FBDP_SYSTEM_TELEMETRY_HH

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "sim/event_queue.hh"
#include "system/manifest.hh"
#include "system/system.hh"

namespace fbdp {

/** Periodic gauge sampler; one record per simulated epoch. */
class TelemetrySampler
{
  public:
    enum class Format { Jsonl, Csv };

    /** One microsecond of simulated time, in ticks. */
    static constexpr Tick defaultEpoch = nsToTicks(1000);

    /**
     * @param system  the system to observe (must outlive the sampler)
     * @param epoch_ticks  sampling period in ticks (> 0)
     * @param os      output stream for the records (must outlive
     *                the sampler)
     */
    TelemetrySampler(System &system, Tick epoch_ticks, std::ostream &os,
                     Format format = Format::Jsonl);
    ~TelemetrySampler();

    TelemetrySampler(const TelemetrySampler &) = delete;
    TelemetrySampler &operator=(const TelemetrySampler &) = delete;

    /**
     * Embed @p m in the output: start() prepends it as '#' comment
     * lines (CSV) or a single {"manifest": ...} line (JSON-lines), so
     * stripping those recovers the manifest-free bytes.  Call before
     * start().
     */
    void setManifest(const RunManifest &m);

    /** Arm the sampler: first record at the next epoch boundary.
     *  Call before System::run(). */
    void start();

    /**
     * Emit any boundary records the event loop did not reach (the run
     * stops mid-epoch) and disarm.  After finish() the record count is
     * exactly floor(simTime / epoch).  Call after System::run().
     */
    void finish();

    /** Records emitted so far. */
    std::uint64_t records() const { return nRecords; }

    Tick epochTicks() const { return epoch; }

    /** Latest sampled value of the gauge named @p name, or nullopt
     *  for a name no gauge carries — a misspelt gauge name in a test
     *  or a report filter should be loud, not a silent 0. */
    std::optional<double> gauge(const std::string &name) const;

    /** True when a gauge named @p name exists. */
    bool hasGauge(const std::string &name) const;

    /** The gauge set, for enumeration. */
    const stats::StatGroup &gauges() const { return group; }

    /**
     * Parse a time specification with a unit suffix — "500ns", "1us",
     * "2ms" — into ticks.  fatal()s on malformed input or a
     * non-positive duration.
     */
    static Tick parseTimeSpec(const std::string &spec);

  private:
    /** Previous cumulative readings of one channel (delta baselines). */
    struct ChannelPrev
    {
        std::uint64_t southCmds = 0;
        std::uint64_t southDataFrames = 0;
        Tick northBusy = 0;
        Tick bankBusy = 0;
        std::uint64_t hits = 0;
        std::uint64_t reads = 0;
        std::uint64_t latePf = 0;
    };

    /** Per-epoch deltas of one channel, read by the Formulas. */
    struct ChannelCur
    {
        double southCmds = 0.0;
        double southDataFrames = 0.0;
        double northBusy = 0.0;
        double bankBusy = 0.0;
        double hits = 0.0;
        double reads = 0.0;
        double latePf = 0.0;
    };

    struct CoreScratch
    {
        std::uint64_t prevInsts = 0;
        double dInsts = 0.0;
    };

    /** Delta baseline / per-epoch value of the prefetch gauges,
     *  summed over every channel's active attachment point. */
    struct PrefetchScratch
    {
        std::uint64_t prevIssued = 0;
        double dIssued = 0.0;
    };

    /** Delta baselines / per-epoch DRAM op counts for the power.*
     *  gauges, summed over every channel. */
    struct PowerScratch
    {
        std::uint64_t prevActPre = 0;
        std::uint64_t prevRdCas = 0;
        std::uint64_t prevWrCas = 0;
        std::uint64_t prevRefresh = 0;
        double dActPre = 0.0;
        double dRdCas = 0.0;
        double dWrCas = 0.0;
        double dRefresh = 0.0;
    };

    /** Delta baselines / per-epoch values of the kernel.* gauges.
     *  The busy / barrier-wait fractions divide the kernel profiler's
     *  accumulated host seconds by the host wall-clock time between
     *  two samples, so they read 0 unless the run was started with
     *  SystemConfig::profileKernel (the mailbox counter is always
     *  maintained). */
    struct KernelScratch
    {
        double prevBusy = 0.0;
        double prevDrain = 0.0;
        double prevWait = 0.0;
        std::uint64_t prevPosted = 0;
        std::chrono::steady_clock::time_point prevWall{};
        bool wallValid = false;

        double dBusy = 0.0;
        double dDrain = 0.0;
        double dWait = 0.0;
        double dWall = 0.0;
        double dPosted = 0.0;
    };

    void fire();
    void takeSample(Tick at);
    void addGauge(const std::string &gauge_name,
                  const std::string &gauge_desc,
                  std::function<double()> fn);

    System &sys;
    EventQueue &eq;
    Tick epoch;
    std::ostream &out;
    Format fmt;

    Event sampleEvent;
    Tick nextAt = 0;
    std::uint64_t nRecords = 0;
    bool headerDone = false;
    std::optional<RunManifest> manifest;

    std::vector<ChannelPrev> chPrev;
    std::vector<ChannelCur> chCur;
    std::vector<CoreScratch> coreScr;
    PrefetchScratch pfScr;
    PowerScratch pwScr;
    KernelScratch krnScr;

    stats::StatGroup group{"telemetry"};
    std::vector<std::unique_ptr<stats::Formula>> formulas;
};

} // namespace fbdp

#endif // FBDP_SYSTEM_TELEMETRY_HH
