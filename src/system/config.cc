#include "system/config.hh"

#include "common/logging.hh"

namespace fbdp {

SystemConfig
SystemConfig::ddr2()
{
    SystemConfig c;
    c.fbd = false;
    c.scheme = Interleave::Cacheline;
    c.apEnable = false;
    return c;
}

SystemConfig
SystemConfig::fbdBase()
{
    SystemConfig c;
    c.fbd = true;
    c.scheme = Interleave::Cacheline;
    c.apEnable = false;
    return c;
}

SystemConfig
SystemConfig::fbdAp()
{
    SystemConfig c;
    c.fbd = true;
    c.scheme = Interleave::MultiCacheline;
    c.regionLines = 4;
    // The canned FBD-AP spec; the deprecated mirrors are kept in sync
    // so legacy readers observe the same values.
    c.ambPrefetch = PrefetchConfig{"region", 0, 64, 0, 0.0};
    c.apEnable = true;
    c.ambEntries = 64;
    c.ambWays = 0;
    return c;
}

namespace {

/** One-time deprecation nag for the pre-PrefetchConfig fields. */
void
warnLegacyPrefetchFields(const char *which)
{
    static bool warned = false;
    if (warned)
        return;
    warned = true;
    warn("SystemConfig::%s and its companion fields are deprecated; "
         "set SystemConfig::ambPrefetch / mcBufPrefetch (e.g. "
         "PrefetchConfig::parse(\"region,entries=64\")) instead",
         which);
}

} // namespace

PrefetchConfig
SystemConfig::resolvedAmbPrefetch() const
{
    PrefetchConfig ap = ambPrefetch;
    if (!ap.enabled() && apEnable) {
        // Only the legacy mirror enables it: honour the legacy
        // buffer-shape fields as the paper's region scheme.
        warnLegacyPrefetchFields("apEnable");
        ap.policy = "region";
        ap.entries = ambEntries;
        ap.ways = ambWays;
        ap.degree = 0;
        ap.throttle = 0.0;
    }
    return ap;
}

PrefetchConfig
SystemConfig::resolvedMcPrefetch() const
{
    PrefetchConfig mp = mcBufPrefetch;
    if (!mp.enabled() && mcPrefetch) {
        warnLegacyPrefetchFields("mcPrefetch");
        mp.policy = "region";
        mp.entries = mcEntries;
        mp.ways = mcWays;
        mp.degree = 0;
        mp.throttle = 0.0;
    }
    return mp;
}

ControllerConfig
SystemConfig::controllerConfig() const
{
    const PrefetchConfig ap = resolvedAmbPrefetch();
    const PrefetchConfig mp = resolvedMcPrefetch();
    if (ap.enabled()) {
        fbdp_assert(fbd, "AMB prefetching requires FB-DIMM");
        fbdp_assert(scheme != Interleave::Cacheline,
                    "AMB prefetching needs multi-cacheline or page "
                    "interleaving (Section 3.2)");
    }
    if (mp.enabled()) {
        fbdp_assert(!ap.enabled(),
                    "mcPrefetch and apEnable are exclusive");
        fbdp_assert(scheme != Interleave::Cacheline,
                    "controller prefetching needs region-preserving "
                    "interleaving too");
    }
    ControllerConfig cc;
    cc.fbd = fbd;
    cc.nDimms = dimmsPerChannel;
    cc.banksPerDimm = banksPerDimm;
    cc.timing = DramTiming::forDataRate(dataRate);
    if (!fbd) {
        // Command path of the conventional DDR2 channel: a register
        // buffering cycle (the AMB plays this role on FB-DIMM, costed
        // via the chain delay) plus 2T command timing, which stub-bus
        // channels loaded with four DIMMs need for signal integrity.
        cc.cmdDelay = nsToTicks(3) + 2 * cc.timing.memCycle;
    }
    cc.vrl = vrl;
    cc.writeDrainHigh = writeDrainHigh;
    cc.writeDrainLow = writeDrainLow;
    cc.refreshEnable = refreshEnable;
    cc.openPage = (scheme == Interleave::Page);
    cc.regionLines = regionLines;
    cc.apFullLatency = apFullLatency;
    cc.apEnable = ap.enabled();
    cc.apPolicy = ap.policy;
    cc.apDegree = ap.degree;
    cc.apThrottle = ap.throttle;
    cc.ambEntries = ap.entries;
    cc.ambWays = ap.ways;
    cc.mcPrefetch = mp.enabled();
    cc.mcPolicy = mp.policy;
    cc.mcDegree = mp.degree;
    cc.mcThrottle = mp.throttle;
    cc.mcEntries = mp.entries;
    cc.mcWays = mp.ways;
    return cc;
}

AddressMapConfig
SystemConfig::addressMapConfig() const
{
    AddressMapConfig mc;
    mc.channels = logicChannels;
    mc.dimmsPerChannel = dimmsPerChannel;
    mc.banksPerDimm = banksPerDimm;
    mc.regionLines = regionLines;
    mc.scheme = scheme;
    return mc;
}

} // namespace fbdp
