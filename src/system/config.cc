#include "system/config.hh"

#include "common/logging.hh"

namespace fbdp {

SystemConfig
SystemConfig::ddr2()
{
    SystemConfig c;
    c.fbd = false;
    c.scheme = Interleave::Cacheline;
    c.apEnable = false;
    return c;
}

SystemConfig
SystemConfig::fbdBase()
{
    SystemConfig c;
    c.fbd = true;
    c.scheme = Interleave::Cacheline;
    c.apEnable = false;
    return c;
}

SystemConfig
SystemConfig::fbdAp()
{
    SystemConfig c;
    c.fbd = true;
    c.scheme = Interleave::MultiCacheline;
    c.apEnable = true;
    c.regionLines = 4;
    c.ambEntries = 64;
    c.ambWays = 0;
    return c;
}

ControllerConfig
SystemConfig::controllerConfig() const
{
    if (apEnable) {
        fbdp_assert(fbd, "AMB prefetching requires FB-DIMM");
        fbdp_assert(scheme != Interleave::Cacheline,
                    "AMB prefetching needs multi-cacheline or page "
                    "interleaving (Section 3.2)");
    }
    if (mcPrefetch) {
        fbdp_assert(!apEnable,
                    "mcPrefetch and apEnable are exclusive");
        fbdp_assert(scheme != Interleave::Cacheline,
                    "controller prefetching needs region-preserving "
                    "interleaving too");
    }
    ControllerConfig cc;
    cc.fbd = fbd;
    cc.nDimms = dimmsPerChannel;
    cc.banksPerDimm = banksPerDimm;
    cc.timing = DramTiming::forDataRate(dataRate);
    if (!fbd) {
        // Command path of the conventional DDR2 channel: a register
        // buffering cycle (the AMB plays this role on FB-DIMM, costed
        // via the chain delay) plus 2T command timing, which stub-bus
        // channels loaded with four DIMMs need for signal integrity.
        cc.cmdDelay = nsToTicks(3) + 2 * cc.timing.memCycle;
    }
    cc.vrl = vrl;
    cc.writeDrainHigh = writeDrainHigh;
    cc.writeDrainLow = writeDrainLow;
    cc.refreshEnable = refreshEnable;
    cc.openPage = (scheme == Interleave::Page);
    cc.apEnable = apEnable;
    cc.regionLines = regionLines;
    cc.ambEntries = ambEntries;
    cc.ambWays = ambWays;
    cc.apFullLatency = apFullLatency;
    cc.mcPrefetch = mcPrefetch;
    cc.mcEntries = mcEntries;
    cc.mcWays = mcWays;
    return cc;
}

AddressMapConfig
SystemConfig::addressMapConfig() const
{
    AddressMapConfig mc;
    mc.channels = logicChannels;
    mc.dimmsPerChannel = dimmsPerChannel;
    mc.banksPerDimm = banksPerDimm;
    mc.regionLines = regionLines;
    mc.scheme = scheme;
    return mc;
}

} // namespace fbdp
