#include "system/manifest.hh"

#include <cstdio>
#include <ctime>
#include <sstream>
#include <type_traits>

#include <unistd.h>

#include "common/logging.hh"
#include "system/metrics.hh"

// Build facts arrive as compile definitions on this translation unit
// (see src/CMakeLists.txt); the fallbacks keep non-CMake builds and
// tooling that compiles the file standalone working.
#ifndef FBDP_VERSION
#define FBDP_VERSION "0.0.0"
#endif
#ifndef FBDP_GIT_SHA
#define FBDP_GIT_SHA "unknown"
#endif
#ifndef FBDP_GIT_DIRTY
#define FBDP_GIT_DIRTY 0
#endif
#ifndef FBDP_BUILD_TYPE
#define FBDP_BUILD_TYPE "unknown"
#endif

namespace fbdp {

namespace {

std::string
compilerString()
{
#if defined(__clang__)
    return csprintf("clang %d.%d.%d", __clang_major__,
                    __clang_minor__, __clang_patchlevel__);
#elif defined(__GNUC__)
    return csprintf("gcc %d.%d.%d", __GNUC__, __GNUC_MINOR__,
                    __GNUC_PATCHLEVEL__);
#else
    return "unknown";
#endif
}

std::string
hostnameString()
{
    char buf[256];
    if (gethostname(buf, sizeof(buf)) != 0)
        return "unknown";
    buf[sizeof(buf) - 1] = '\0';
    return buf;
}

std::string
utcNowString()
{
    const std::time_t now = std::time(nullptr);
    std::tm tm{};
    gmtime_r(&now, &tm);
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
    return buf;
}

void
kv(std::ostringstream &os, const char *key, const std::string &v)
{
    os << key << '=' << v << ';';
}

template <typename T,
          typename = std::enable_if_t<std::is_integral_v<T>>>
void
kv(std::ostringstream &os, const char *key, T v)
{
    os << key << '=' << static_cast<std::uint64_t>(v) << ';';
}

void
kvD(std::ostringstream &os, const char *key, double v)
{
    os << key << '=' << csprintf("%.17g", v) << ';';
}

void
kvPf(std::ostringstream &os, const char *prefix,
     const PrefetchConfig &pf)
{
    os << prefix << "=" << pf.policy << ',' << pf.degree << ','
       << pf.entries << ',' << pf.ways << ','
       << csprintf("%.17g", pf.throttle) << ';';
}

} // namespace

std::uint64_t
fnv1a64(const std::string &text)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : text) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

std::string
canonicalConfigString(const SystemConfig &cfg)
{
    std::ostringstream os;

    // Workload.  Benchmarks joined with ',' — names never contain
    // commas (mix tables and trace specs both forbid them as name
    // characters after canonicalisation).
    os << "benchmarks=";
    for (std::size_t i = 0; i < cfg.benchmarks.size(); ++i)
        os << (i ? "," : "") << cfg.benchmarks[i];
    os << ';';
    kv(os, "warmupInsts", cfg.warmupInsts);
    kv(os, "measureInsts", cfg.measureInsts);
    kv(os, "functionalWarmupOps", cfg.functionalWarmupOps);
    kv(os, "seed", cfg.seed);
    kv(os, "swPrefetch", cfg.swPrefetch);

    // Processor.
    kv(os, "rob", cfg.rob);
    kv(os, "lq", cfg.lq);
    kv(os, "sq", cfg.sq);

    // Caches.
    kv(os, "l1Bytes", cfg.hier.l1Bytes);
    kv(os, "l1Ways", cfg.hier.l1Ways);
    kv(os, "l2Bytes", cfg.hier.l2Bytes);
    kv(os, "l2Ways", cfg.hier.l2Ways);
    kv(os, "l2HitLatency",
       static_cast<std::uint64_t>(cfg.hier.l2HitLatency));
    kv(os, "l1Mshrs", cfg.hier.l1Mshrs);
    kv(os, "l2Mshrs", cfg.hier.l2Mshrs);
    kv(os, "hwPfEnable", cfg.hier.hwPrefetch.enable);
    kv(os, "hwPfEntries", cfg.hier.hwPrefetch.entriesPerCore);
    kv(os, "hwPfTrain", cfg.hier.hwPrefetch.trainThreshold);
    kv(os, "hwPfDegree", cfg.hier.hwPrefetch.degree);
    kv(os, "hwPfDistance", cfg.hier.hwPrefetch.distance);

    // Memory subsystem.
    kv(os, "fbd", cfg.fbd);
    kv(os, "logicChannels", cfg.logicChannels);
    kv(os, "dimmsPerChannel", cfg.dimmsPerChannel);
    kv(os, "banksPerDimm", cfg.banksPerDimm);
    kv(os, "dataRate", cfg.dataRate);
    kv(os, "scheme", std::string(interleaveName(cfg.scheme)));
    kv(os, "vrl", cfg.vrl);
    kv(os, "writeDrainHigh", cfg.writeDrainHigh);
    kv(os, "writeDrainLow", cfg.writeDrainLow);
    kv(os, "refreshEnable", cfg.refreshEnable);

    // Prefetching — through the resolved accessors, so a legacy
    // flat-field config and its nested equivalent digest identically.
    kvPf(os, "ambPrefetch", cfg.resolvedAmbPrefetch());
    kvPf(os, "mcBufPrefetch", cfg.resolvedMcPrefetch());
    kv(os, "regionLines", cfg.regionLines);
    kv(os, "apFullLatency", cfg.apFullLatency);
    kv(os, "hwPrefetch", cfg.hwPrefetch);

    kvD(os, "cpuCyclePs", static_cast<double>(cpuCyclePs));
    return os.str();
}

RunManifest
RunManifest::capture(const SystemConfig &cfg)
{
    RunManifest m;
    m.toolVersion = FBDP_VERSION;
    m.gitSha = FBDP_GIT_SHA;
    m.gitDirty = FBDP_GIT_DIRTY != 0;
    m.buildType = FBDP_BUILD_TYPE;
    m.compiler = compilerString();
    m.configDigest =
        csprintf("%016llx",
                 static_cast<unsigned long long>(
                     fnv1a64(canonicalConfigString(cfg))));
    m.seed = cfg.seed;
    m.threads = cfg.threads;
    m.hostname = hostnameString();
    m.startedUtc = utcNowString();
    return m;
}

std::string
RunManifest::buildInfo()
{
    return csprintf("fbdp %s (%s%s) %s %s", FBDP_VERSION,
                    FBDP_GIT_SHA, FBDP_GIT_DIRTY ? "-dirty" : "",
                    FBDP_BUILD_TYPE, compilerString().c_str());
}

std::string
RunManifest::json() const
{
    std::ostringstream os;
    os << "{\"tool\": \"fbdp\""
       << ", \"version\": \"" << jsonEscape(toolVersion) << "\""
       << ", \"git_sha\": \"" << jsonEscape(gitSha) << "\""
       << ", \"git_dirty\": " << (gitDirty ? "true" : "false")
       << ", \"build_type\": \"" << jsonEscape(buildType) << "\""
       << ", \"compiler\": \"" << jsonEscape(compiler) << "\""
       << ", \"config_digest\": \"" << jsonEscape(configDigest)
       << "\""
       << ", \"seed\": " << seed
       << ", \"threads\": " << threads
       << ", \"hostname\": \"" << jsonEscape(hostname) << "\""
       << ", \"started_utc\": \"" << jsonEscape(startedUtc) << "\""
       << "}";
    return os.str();
}

std::string
RunManifest::csvComment() const
{
    std::ostringstream os;
    os << "# fbdp-manifest: version=" << toolVersion << " git="
       << gitSha << (gitDirty ? "-dirty" : "") << " build="
       << buildType << " compiler=" << compiler << '\n'
       << "# fbdp-manifest: config_digest=" << configDigest
       << " seed=" << seed << " threads=" << threads << '\n'
       << "# fbdp-manifest: host=" << hostname << " started="
       << startedUtc << '\n';
    return os.str();
}

} // namespace fbdp
