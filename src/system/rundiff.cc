#include "system/rundiff.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>

namespace fbdp {

namespace {

/** Guard against divide-by-zero when the baseline is zero. */
constexpr double relEps = 1e-12;

void
flattenInto(const json::ValuePtr &v, const std::string &prefix,
            bool include_manifest,
            std::map<std::string, FlatEntry> &out)
{
    if (!v)
        return;
    switch (v->kind()) {
      case json::Value::Kind::Object:
        for (const auto &[key, child] : v->members()) {
            // Manifest blocks are provenance (timestamps, SHA, host),
            // not metrics: every pair of runs differs there, so
            // diffing them would drown real changes in noise.
            if (!include_manifest
                && (key == "manifest" || key == "fbdp_manifest"))
                continue;
            const std::string path =
                prefix.empty() ? key : prefix + "." + key;
            flattenInto(child, path, include_manifest, out);
        }
        return;
      case json::Value::Kind::Array: {
        const auto &items = v->asArray();
        for (std::size_t i = 0; i < items.size(); ++i) {
            // Key array elements by their "name" member when present
            // (google-benchmark's layout) so reordering named entries
            // does not shift every downstream path.
            std::string label = std::to_string(i);
            if (items[i] && items[i]->isObject()) {
                if (json::ValuePtr nm = items[i]->get("name");
                    nm && nm->isString())
                    label = nm->asString();
            }
            const std::string path =
                prefix.empty() ? label : prefix + "." + label;
            flattenInto(items[i], path, include_manifest, out);
        }
        return;
      }
      case json::Value::Kind::Number: {
        FlatEntry e;
        e.numeric = true;
        e.num = v->asNumber();
        out[prefix] = std::move(e);
        return;
      }
      case json::Value::Kind::String: {
        FlatEntry e;
        e.text = v->asString();
        out[prefix] = std::move(e);
        return;
      }
      case json::Value::Kind::Bool: {
        FlatEntry e;
        e.text = v->asBool() ? "true" : "false";
        out[prefix] = std::move(e);
        return;
      }
      case json::Value::Kind::Null: {
        FlatEntry e;
        e.text = "null";
        out[prefix] = std::move(e);
        return;
      }
    }
}

bool
containsAny(const std::string &key,
            const std::vector<std::string> &pats)
{
    for (const std::string &p : pats) {
        if (key.find(p) != std::string::npos)
            return true;
    }
    return false;
}

bool
selected(const std::string &key, const DiffOptions &opt)
{
    if (!opt.only.empty() && !containsAny(key, opt.only))
        return false;
    if (containsAny(key, opt.ignore))
        return false;
    return true;
}

} // namespace

std::map<std::string, FlatEntry>
flattenJson(const json::ValuePtr &v, bool include_manifest)
{
    std::map<std::string, FlatEntry> out;
    flattenInto(v, "", include_manifest, out);
    return out;
}

DiffReport
diffRuns(const std::map<std::string, FlatEntry> &a,
         const std::map<std::string, FlatEntry> &b,
         const DiffOptions &opt)
{
    DiffReport r;
    r.strictUsed = opt.strict;

    for (const auto &[key, ea] : a) {
        if (!selected(key, opt))
            continue;
        auto itb = b.find(key);
        if (itb == b.end()) {
            r.onlyA.push_back(key);
            continue;
        }
        const FlatEntry &eb = itb->second;
        ++r.compared;

        DiffEntry d;
        d.key = key;

        if (!ea.numeric || !eb.numeric) {
            // Text values must match exactly; kind mismatches (a
            // number vs a string) also land here.
            d.textA = ea.numeric ? std::to_string(ea.num) : ea.text;
            d.textB = eb.numeric ? std::to_string(eb.num) : eb.text;
            if (d.textA != d.textB) {
                d.textMismatch = true;
                r.changed.push_back(std::move(d));
            } else {
                r.withinTol.push_back(std::move(d));
            }
            continue;
        }

        d.a = ea.num;
        d.b = eb.num;
        d.relDelta =
            (d.b - d.a) / std::max(std::abs(d.a), relEps);

        double tol = opt.tolerance;
        if (auto itTol = opt.keyTolerances.find(key);
            itTol != opt.keyTolerances.end())
            tol = itTol->second;

        bool beyond;
        if (tol == 0.0)
            beyond = d.a != d.b;
        else
            beyond = std::abs(d.relDelta) > tol;

        if (beyond) {
            switch (opt.direction) {
              case DiffDirection::TwoSided:
                d.regression = true;
                break;
              case DiffDirection::HigherBetter:
                d.regression = d.b < d.a;
                break;
              case DiffDirection::LowerBetter:
                d.regression = d.b > d.a;
                break;
            }
            r.changed.push_back(std::move(d));
        } else {
            r.withinTol.push_back(std::move(d));
        }
    }

    for (const auto &[key, eb] : b) {
        if (!selected(key, opt))
            continue;
        if (a.find(key) == a.end())
            r.onlyB.push_back(key);
    }

    return r;
}

void
printDiffReport(const DiffReport &r, std::ostream &os, bool verbose)
{
    auto line = [&os](const DiffEntry &e, const char *tag) {
        os << "  " << tag << " " << e.key;
        if (e.textMismatch) {
            os << "  '" << e.textA << "' -> '" << e.textB << "'\n";
            return;
        }
        os << "  " << e.a << " -> " << e.b << "  ("
           << std::showpos << std::fixed << std::setprecision(2)
           << e.relDelta * 100.0 << "%"
           << std::noshowpos << std::defaultfloat
           << std::setprecision(6) << ")\n";
    };

    std::vector<const DiffEntry *> regressions, drifts;
    for (const DiffEntry &e : r.changed) {
        (e.regression || e.textMismatch ? regressions : drifts)
            .push_back(&e);
    }

    os << "compared " << r.compared << " key(s): "
       << regressions.size() << " regression(s), "
       << drifts.size() << " non-regressing change(s), "
       << r.withinTol.size() << " within tolerance\n";

    for (const DiffEntry *e : regressions)
        line(*e, "FAIL");
    for (const DiffEntry *e : drifts)
        line(*e, "note");

    if (!r.onlyA.empty()) {
        os << "  keys only in run A: " << r.onlyA.size() << "\n";
        if (verbose) {
            for (const std::string &k : r.onlyA)
                os << "    - " << k << "\n";
        }
    }
    if (!r.onlyB.empty()) {
        os << "  keys only in run B: " << r.onlyB.size() << "\n";
        if (verbose) {
            for (const std::string &k : r.onlyB)
                os << "    + " << k << "\n";
        }
    }
    if (verbose) {
        for (const DiffEntry &e : r.withinTol) {
            if (!e.textMismatch && e.a != e.b)
                line(e, "  ok");
        }
    }
}

} // namespace fbdp
