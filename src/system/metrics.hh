/**
 * @file
 * Reporting helpers: aligned text tables (used by every bench binary
 * to print the paper's figures/tables as series) and small numeric
 * formatting utilities.
 */

#ifndef FBDP_SYSTEM_METRICS_HH
#define FBDP_SYSTEM_METRICS_HH

#include <ostream>
#include <string>
#include <vector>

namespace fbdp {

/** Minimal column-aligned text table. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);

    /** Print with per-column alignment and a header separator. */
    void print(std::ostream &os) const;

    size_t rows() const { return body.size(); }

  private:
    std::vector<std::string> head;
    std::vector<std::vector<std::string>> body;
};

/** Format a double with fixed precision. */
std::string fmtD(double v, int prec = 3);

/** Format a percentage ("12.3%"). */
std::string fmtPct(double ratio, int prec = 1);

/** Geometric-ish helpers over vectors. */
double meanOf(const std::vector<double> &v);

/** Escape a string for inclusion inside a JSON string literal. */
std::string jsonEscape(const std::string &s);

} // namespace fbdp

#endif // FBDP_SYSTEM_METRICS_HH
