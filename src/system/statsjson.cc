#include "system/statsjson.hh"

#include <sstream>

#include "system/manifest.hh"
#include "system/metrics.hh"

namespace fbdp {

namespace {

std::string
jsonReal(double v)
{
    std::ostringstream os;
    os << v;
    return os.str();
}

/**
 * The "kernel" section.  Always the flat kernelStats() row; when the
 * run was profiled (--profile-kernel) the object is extended in place
 * with the imbalance summaries and the per-shard / per-lane arrays.
 * Each array element carries a "name" member so fbdp-report's
 * flattener produces stable dotted paths (kernel.shards.ch0.events,
 * kernel.lanes.lane1.rounds).  Unprofiled runs emit the arrays empty,
 * which keeps a profiled-off diff free of one-sided keys.
 */
void
writeKernelSection(const SweepRow &row, std::ostream &os)
{
    std::string flat = ResultSchema::kernelStats().jsonRow(row);
    // Re-open the flat object to append the profile members.
    flat.pop_back(); // trailing '}'
    os << flat;

    const KernelProfile &k = row.result.kernel;
    os << ", \"profiled\": " << (k.profiled ? "true" : "false")
       << ", \"event_imbalance\": " << jsonReal(k.eventImbalance())
       << ", \"busy_imbalance\": " << jsonReal(k.busyImbalance());

    os << ", \"shards\": [";
    for (std::size_t i = 0; i < k.shards.size(); ++i) {
        const ShardProfile &s = k.shards[i];
        os << (i ? ", " : "")
           << "{\"name\": \"" << jsonEscape(s.name) << "\""
           << ", \"lane\": " << s.lane
           << ", \"events\": " << s.events
           << ", \"schedules\": " << s.schedules
           << ", \"reschedules\": " << s.reschedules
           << ", \"deschedules\": " << s.deschedules
           << ", \"peak_queue_depth\": " << s.peakQueueDepth
           << ", \"batch_drains\": " << s.batchDrains
           << ", \"batched_events\": " << s.batchedEvents
           << ", \"mailbox_in\": " << s.mailboxIn
           << ", \"mailbox_out\": " << s.mailboxOut
           << ", \"busy_seconds\": " << jsonReal(s.busySeconds)
           << ", \"drain_seconds\": " << jsonReal(s.drainSeconds)
           << "}";
    }
    os << "]";

    os << ", \"lanes\": [";
    for (std::size_t i = 0; i < k.lanes.size(); ++i) {
        const LaneProfile &l = k.lanes[i];
        os << (i ? ", " : "")
           << "{\"name\": \"lane" << l.lane << "\""
           << ", \"lane\": " << l.lane
           << ", \"shards_owned\": " << l.shardsOwned
           << ", \"rounds\": " << l.rounds
           << ", \"busy_seconds\": " << jsonReal(l.busySeconds)
           << ", \"drain_seconds\": " << jsonReal(l.drainSeconds)
           << ", \"barrier_wait_seconds\": "
           << jsonReal(l.barrierWaitSeconds)
           << ", \"wall_seconds\": " << jsonReal(l.wallSeconds)
           << ", \"last_arrivals\": " << l.lastArrivals
           << ", \"spin_releases\": " << l.spinReleases
           << ", \"yield_releases\": " << l.yieldReleases
           << ", \"sleep_releases\": " << l.sleepReleases
           << "}";
    }
    os << "]}";
}

} // namespace

void
writeRunStatsJson(const System &sys, const SweepRow &row,
                  std::ostream &os, const RunManifest *manifest)
{
    os << "{\n";
    if (manifest)
        os << "  \"manifest\": " << manifest->json() << ",\n";
    os << "  \"run\": "
       << ResultSchema::sweepRows().jsonRow(row) << ",\n";
    os << "  \"latency\": "
       << ResultSchema::latencyPercentiles().jsonRow(row) << ",\n";
    os << "  \"kernel\": ";
    writeKernelSection(row, os);
    os << ",\n";
    os << "  \"power\": "
       << ResultSchema::powerStats().jsonRow(row) << ",\n";
    os << "  \"prefetch\": "
       << ResultSchema::prefetchStats().jsonRow(row) << ",\n";
    os << "  \"breakdown\": "
       << ResultSchema::latencyBreakdown().jsonRow(row) << ",\n";

    os << "  \"groups\": {\n";
    const auto groups = sys.buildStatGroups(true);
    for (std::size_t g = 0; g < groups.size(); ++g) {
        os << "    \"" << jsonEscape(groups[g].group.name())
           << "\": {\n";
        const auto &all = groups[g].group.all();
        for (std::size_t i = 0; i < all.size(); ++i) {
            os << "      \"" << jsonEscape(all[i]->name()) << "\": ";
            all[i]->printJson(os);
            os << (i + 1 < all.size() ? ",\n" : "\n");
        }
        os << "    }" << (g + 1 < groups.size() ? ",\n" : "\n");
    }
    os << "  }\n";
    os << "}\n";
}

} // namespace fbdp
