#include "system/statsjson.hh"

#include "system/metrics.hh"

namespace fbdp {

void
writeRunStatsJson(const System &sys, const SweepRow &row,
                  std::ostream &os)
{
    os << "{\n";
    os << "  \"run\": "
       << ResultSchema::sweepRows().jsonRow(row) << ",\n";
    os << "  \"latency\": "
       << ResultSchema::latencyPercentiles().jsonRow(row) << ",\n";
    os << "  \"kernel\": "
       << ResultSchema::kernelStats().jsonRow(row) << ",\n";
    os << "  \"prefetch\": "
       << ResultSchema::prefetchStats().jsonRow(row) << ",\n";
    os << "  \"breakdown\": "
       << ResultSchema::latencyBreakdown().jsonRow(row) << ",\n";

    os << "  \"groups\": {\n";
    const auto groups = sys.buildStatGroups(true);
    for (std::size_t g = 0; g < groups.size(); ++g) {
        os << "    \"" << jsonEscape(groups[g].group.name())
           << "\": {\n";
        const auto &all = groups[g].group.all();
        for (std::size_t i = 0; i < all.size(); ++i) {
            os << "      \"" << jsonEscape(all[i]->name()) << "\": ";
            all[i]->printJson(os);
            os << (i + 1 < all.size() ? ",\n" : "\n");
        }
        os << "    }" << (g + 1 < groups.size() ? ",\n" : "\n");
    }
    os << "  }\n";
    os << "}\n";
}

} // namespace fbdp
