#include "system/system.hh"

#include <algorithm>
#include <chrono>
#include <map>
#include <ostream>

#include "common/logging.hh"
#include "common/stats.hh"
#include "mc/transaction.hh"
#include "sim/trace.hh"
#include "workload/trace_file.hh"
#include "workload/trace_stream.hh"

namespace fbdp {

namespace {

/** Host seconds between two steady-clock reads. */
inline double
secsBetween(std::chrono::steady_clock::time_point a,
            std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

/** Max/mean of @p values (1.0 when balanced, 0 when degenerate). */
double
maxOverMean(const std::vector<double> &values)
{
    if (values.size() < 2)
        return 0.0;
    double sum = 0.0, mx = 0.0;
    for (double v : values) {
        sum += v;
        mx = mx > v ? mx : v;
    }
    if (sum <= 0.0)
        return 0.0;
    return mx * static_cast<double>(values.size()) / sum;
}

} // namespace

double
KernelProfile::eventImbalance() const
{
    std::vector<double> ev;
    for (std::size_t i = 1; i < shards.size(); ++i)
        ev.push_back(static_cast<double>(shards[i].events));
    return maxOverMean(ev);
}

double
KernelProfile::busyImbalance() const
{
    std::vector<double> busy;
    for (std::size_t i = 1; i < shards.size(); ++i)
        busy.push_back(shards[i].busySeconds);
    return maxOverMean(busy);
}

double
RunResult::ipcSum() const
{
    double s = 0.0;
    for (double v : ipc)
        s += v;
    return s;
}

double
RunResult::totalInsts() const
{
    double s = 0.0;
    for (std::uint64_t v : insts)
        s += static_cast<double>(v);
    return s;
}

MemorySystem::MemorySystem(
    EventQueue *event_queue, const AddressMap *address_map,
    std::vector<std::unique_ptr<MemController>> *ctrls)
    : eq(event_queue), map(address_map), controllers(ctrls)
{
}

void
MemorySystem::read(Addr line_addr, int core_id, bool sw_prefetch,
                   TickCallback done)
{
    auto t = makeTransaction();
    t->cmd = MemCmd::Read;
    t->lineAddr = lineAlign(line_addr);
    t->coreId = core_id;
    t->swPrefetch = sw_prefetch;
    t->created = eq->now();
    t->coord = map->map(t->lineAddr);
    t->onComplete = std::move(done);
    const unsigned ch = t->coord.channel;
    if (router)
        router->routePush(ch, std::move(t));
    else
        (*controllers)[ch]->push(std::move(t));
}

void
MemorySystem::write(Addr line_addr, int core_id)
{
    auto t = makeTransaction();
    t->cmd = MemCmd::Write;
    t->lineAddr = lineAlign(line_addr);
    t->coreId = core_id;
    t->created = eq->now();
    t->coord = map->map(t->lineAddr);
    const unsigned ch = t->coord.channel;
    if (router)
        router->routePush(ch, std::move(t));
    else
        (*controllers)[ch]->push(std::move(t));
}

System::System(const SystemConfig &config)
    : cfg(config),
      deliverEvent([this] { deliverFire(); }, Event::prioData)
{
    fbdp_assert(!cfg.benchmarks.empty(),
                "system configured with no workload");

    map = std::make_unique<AddressMap>(cfg.addressMapConfig());

    const ControllerConfig cc = cfg.controllerConfig();
    frame = cc.timing.memCycle;

    // Queue 0 drives the cores and caches; each logic channel gets its
    // own shard so the controllers can run on separate lanes.
    queues.push_back(std::make_unique<EventQueue>());
    shards.resize(cfg.logicChannels);
    for (unsigned ch = 0; ch < cfg.logicChannels; ++ch) {
        queues.push_back(std::make_unique<EventQueue>());
        controllers.push_back(std::make_unique<MemController>(
            csprintf("mc%u", ch), queues.back().get(), cc));
        controllers.back()->setCompletionSink(this, ch);
    }
    EventQueue *coreQ = queues.front().get();
    shardAcc.resize(1 + cfg.logicChannels);
    profiling = cfg.profileKernel;

    memSys = std::make_unique<MemorySystem>(coreQ, map.get(),
                                            &controllers);
    memSys->setRouter(this);
    HierConfig hc = cfg.hier;
    if (cfg.hwPrefetch)
        hc.hwPrefetch.enable = true;
    hier = std::make_unique<CacheHierarchy>(coreQ, cfg.nCores(), hc,
                                            memSys.get());

    // Each core owns a disjoint 4 GB slice of the physical space; the
    // interleaving spreads every slice across all channels and banks.
    //
    // Benchmark slots name either a synthetic profile or a recorded
    // trace ("trace:PATH[,options]").  Cores replaying the same file
    // share one loaded op vector (in-RAM mode) or one TraceStream —
    // file handle, decode pipeline and chunk window (streaming mode);
    // the first spec mentioning a path fixes that file's options.
    constexpr Addr slice = 1ull << 32;
    std::map<std::string,
             std::shared_ptr<const std::vector<TraceOp>>> traceOps;
    std::map<std::string, std::shared_ptr<TraceStream>> traceStreams;
    for (unsigned i = 0; i < cfg.nCores(); ++i) {
        const std::string &bench = cfg.benchmarks[i];
        const Addr base = static_cast<Addr>(i) * slice;
        std::unique_ptr<Generator> gen;
        if (TraceSpec::isTraceSpec(bench)) {
            const TraceSpec spec = TraceSpec::parse(bench);
            if (spec.stream) {
                auto &str = traceStreams[spec.path];
                if (!str)
                    str = std::make_shared<TraceStream>(spec);
                gen = std::make_unique<StreamingTraceGenerator>(
                    str, base);
            } else {
                auto &ops = traceOps[spec.path];
                if (!ops)
                    ops = TraceFileGenerator::loadOps(spec.path);
                gen = std::make_unique<TraceFileGenerator>(
                    ops, spec.path, base);
            }
        } else {
            gen = std::make_unique<SyntheticGenerator>(
                benchProfile(bench), base, cfg.seed * 1000 + i,
                cfg.swPrefetch);
        }
        gens.push_back(std::move(gen));
        const BenchProfile &prof = gens[i]->profile();

        CoreParams cp;
        cp.baseIpc = prof.baseIpc;
        cp.rob = cfg.rob;
        cp.lq = cfg.lq;
        cp.sq = cfg.sq;
        cores.push_back(std::make_unique<Core>(
            csprintf("cpu%u.%s", i, prof.name.c_str()),
            static_cast<int>(i), coreQ, hier.get(), gens[i].get(),
            cp));
    }

    if (cfg.attribution) {
        for (auto &mc : controllers)
            mc->enableAttribution(&attHub);
        for (auto &c : cores)
            c->enableAttribution(&attHub);
    }
}

System::~System() = default;

void
System::attachTracer(trace::Tracer *t)
{
    // A tracer records from every component; running the shards on
    // multiple lanes would interleave its buffers non-deterministically
    // (and race).  Traced runs therefore execute the staged schedule
    // on one lane — same schedule, same results, just serially.
    tracerAttached = t != nullptr;
    tracer = t;
    for (unsigned ch = 0; ch < controllers.size(); ++ch)
        controllers[ch]->bindTracer(t, ch);
    hier->bindTracer(t);
    for (auto &c : cores)
        c->bindTracer(t);

    // Kernel shard lanes: with the self-profiler on, a traced run also
    // gets one track per shard (frame slices + per-round event counts)
    // and a cross-shard traffic counter track, so the timeline shows
    // where each frame's work ran alongside the transaction lifecycle.
    kernelTracks.clear();
    if (t && cfg.profileKernel) {
        kernelTracks.push_back(t->track("kernel.core"));
        for (unsigned ch = 0; ch < cfg.logicChannels; ++ch)
            kernelTracks.push_back(t->track(csprintf("kernel.ch%u",
                                                     ch)));
        mailboxTrack = t->track("kernel.mailbox");
    }
}

void
System::resetAllStats()
{
    for (auto &c : cores)
        c->resetStats();
    for (auto &mc : controllers)
        mc->resetStats();
    hier->resetStats();
}

RunResult
System::run()
{
    // Phase 0: functional cache warm-up.  Replay a prefix of each
    // core's trace through the tag arrays so the measured region does
    // not see an artificially cold 4 MB L2 (the paper's SimPoint runs
    // start from warm state).
    std::uint64_t warm_ops = cfg.functionalWarmupOps;
    if (warm_ops == 0) {
        const std::uint64_t l2_lines = cfg.hier.l2Bytes / lineBytes;
        // Roughly one line install per ten ops; aim for 2x capacity.
        warm_ops = 20 * l2_lines / cfg.nCores();
    }
    for (std::uint64_t k = 0; k < warm_ops; ++k) {
        for (unsigned i = 0; i < cfg.nCores(); ++i) {
            TraceOp op = gens[i]->next();
            if (op.kind == TraceOp::Kind::Prefetch)
                hier->functionalPrefetch(static_cast<int>(i), op.addr);
            else
                hier->functionalAccess(
                    static_cast<int>(i), op.addr,
                    op.kind == TraceOp::Kind::Store);
        }
    }

    // Time the event-driven phases only: sim-rate should reflect the
    // kernel, not process start-up or the functional replay above.
    const auto host0 = std::chrono::steady_clock::now();

    const unsigned lanes = laneCount();
    if (lanes > 1 && !pool)
        pool = std::make_unique<ThreadPool>(lanes - 1);

    // Profile bookkeeping: one accumulator per lane, and the static
    // shard->lane assignment (lane 0 owns the core shard; channels
    // round-robin over lanes 1..L-1, everything on lane 0 serially).
    lanesUsed = lanes;
    laneAcc.assign(lanes, LaneAccum{});
    shardAcc[0].lane = 0;
    for (unsigned ch = 0; ch < cfg.logicChannels; ++ch)
        shardAcc[1 + ch].lane = lanes > 1 ? 1 + ch % (lanes - 1) : 0;

    // Phase 1: warm up until the first core has executed warmupInsts.
    // Each phase runs whole rounds and stops at the frame barrier
    // after the notify fired, so both window edges are frame-aligned.
    phaseDone = false;
    for (auto &c : cores) {
        c->setNotify(cfg.warmupInsts, [this] { phaseDone = true; });
        c->start();
    }
    runRounds(lanes);
    fbdp_assert(phaseDone, "simulation drained during warm-up");
    alignClocks();

    resetAllStats();
    const Tick t0 = queues.front()->now();

    // Phase 2: measure until the first core adds measureInsts more.
    phaseDone = false;
    for (auto &c : cores) {
        c->setNotify(c->insts() + cfg.measureInsts,
                     [this] { phaseDone = true; });
    }
    runRounds(lanes);
    fbdp_assert(phaseDone, "simulation drained during measurement");
    const Tick t1 = alignClocks();

    hostEventSeconds = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - host0).count();
    return collect(t1 - t0);
}

unsigned
System::laneCount() const
{
    unsigned lanes = cfg.threads < 1 ? 1 : cfg.threads;
    if ((tracerAttached || telemetryObserver) && lanes > 1) {
        // Loud, once per process: every runner reaches this clamp, and
        // a silently serialized "parallel" run is exactly the mistake
        // a user profiling wall-clock scaling would make.
        static std::atomic<bool> observerClampWarned{false};
        if (!observerClampWarned.exchange(true)) {
            warn("an attached %s observer pins the sharded kernel to "
                 "one lane: --threads %u runs serially (results are "
                 "bit-identical; detach the observer to measure "
                 "parallel wall-clock)",
                 tracerAttached ? "trace" : "telemetry", lanes);
        }
        lanes = 1;
    }
    // One lane per shard at most: the core shard plus one per channel.
    const unsigned max_lanes = 1 + cfg.logicChannels;
    return lanes < max_lanes ? lanes : max_lanes;
}

void
System::runRounds(unsigned lanes)
{
    using clk = std::chrono::steady_clock;
    stopRounds = false;
    if (lanes == 1) {
        // The exact same staged schedule, on the calling thread.
        if (!profiling) {
            while (!stopRounds) {
                laneRound(0, 1);
                endOfRound();
            }
            return;
        }
        // Profiled: three clock reads per round make the accounting
        // telescope exactly — busy + drain == t1-t0 and the inline
        // endOfRound() (the serial stand-in for the barrier hook) is
        // t2-t1, so busy + drain + wait == wall by construction.
        LaneAccum &la = laneAcc[0];
        while (!stopRounds) {
            const auto t0 = clk::now();
            const double drain = laneRound(0, 1);
            const auto t1 = clk::now();
            endOfRound();
            const auto t2 = clk::now();
            ++la.rounds;
            ++la.lastArrivals;
            la.busySeconds += secsBetween(t0, t1) - drain;
            la.drainSeconds += drain;
            la.barrierWaitSeconds += secsBetween(t1, t2);
            la.wallSeconds += secsBetween(t0, t2);
        }
        return;
    }

    SpinBarrier barrier(lanes);
    const auto on_last = [this] { endOfRound(); };
    const auto laneLoop = [this, lanes, &barrier, on_last](
                              unsigned lane) {
        if (!profiling) {
            for (;;) {
                laneRound(lane, lanes);
                barrier.arriveAndWait(on_last);
                if (stopRounds)
                    return;
            }
        }
        LaneAccum &la = laneAcc[lane];
        for (;;) {
            const auto t0 = clk::now();
            const double drain = laneRound(lane, lanes);
            const auto t1 = clk::now();
            const SpinBarrier::Release rel =
                barrier.arriveAndWait(on_last);
            const auto t2 = clk::now();
            ++la.rounds;
            la.busySeconds += secsBetween(t0, t1) - drain;
            la.drainSeconds += drain;
            la.barrierWaitSeconds += secsBetween(t1, t2);
            la.wallSeconds += secsBetween(t0, t2);
            switch (rel) {
              case SpinBarrier::Release::Last:
                ++la.lastArrivals;
                break;
              case SpinBarrier::Release::Spin:
                ++la.spinReleases;
                break;
              case SpinBarrier::Release::Yield:
                ++la.yieldReleases;
                break;
              case SpinBarrier::Release::Sleep:
                ++la.sleepReleases;
                break;
            }
            if (stopRounds)
                return;
        }
    };
    std::vector<std::future<void>> lanes_done;
    for (unsigned lane = 1; lane < lanes; ++lane)
        lanes_done.push_back(pool->submit(
            [laneLoop, lane] { laneLoop(lane); }));
    laneLoop(0);
    for (auto &f : lanes_done)
        f.get();
}

double
System::laneRound(unsigned lane, unsigned lanes)
{
    using clk = std::chrono::steady_clock;
    const Tick start = static_cast<Tick>(curRound) * frame;
    const Tick limit = start + frame - 1;
    double drain = 0.0;
    std::uint64_t roundMsgs = 0;

    if (lane == 0) {
        // The core/cache shard: deliver last round's completions.
        EventQueue &q = *queues.front();
        q.advanceTo(start);
        clk::time_point d0;
        if (profiling)
            d0 = clk::now();
        std::uint64_t got = 0;
        for (auto &sh : shards) {
            auto &in = sh.doneBox.inbox(curRound);
            got += in.size();
            for (CompleteMsg &m : in) {
                // One frame of hand-off latency, preserving the
                // completions' relative spacing and FIFO order.
                pendingDone.push_back(PendingDone{
                    m.t->completedAt + frame, nextDoneSeq++,
                    std::move(m.t), m.pd, m.hasProfile});
                std::push_heap(pendingDone.begin(), pendingDone.end(),
                               PendingAfter{});
            }
            in.clear();
        }
        shardAcc[0].drained += got;
        roundMsgs += got;
        if (!pendingDone.empty()
            && (!deliverEvent.scheduled()
                || deliverEvent.when()
                       > pendingDone.front().deliverAt)) {
            q.schedule(&deliverEvent, pendingDone.front().deliverAt);
        }
        if (!profiling) {
            q.run(limit);
        } else {
            const auto b0 = clk::now();
            const std::uint64_t before = q.dispatched();
            q.run(limit);
            const auto b1 = clk::now();
            const double d = secsBetween(d0, b0);
            shardAcc[0].drainSeconds += d;
            drain += d;
            shardAcc[0].busySeconds += secsBetween(b0, b1);
            traceShardRound(0, start, q.dispatched() - before);
        }
    }

    if (lanes == 1 || lane > 0) {
        for (unsigned ch = 0; ch < shards.size(); ++ch) {
            // Channels round-robin over lanes 1..lanes-1 (all on lane
            // 0 when serial).  The assignment affects wall-clock only;
            // results are lane-independent by construction.
            if (lanes > 1 && 1 + ch % (lanes - 1) != lane)
                continue;
            EventQueue &q = *queues[1 + ch];
            q.advanceTo(start);
            auto &in = shards[ch].pushBox.inbox(curRound);
            // An idle shard (nothing staged, nothing scheduled) can
            // dispatch nothing this round; skipping it costs no
            // events and keeps the profiler's clock reads off the
            // quiet channels.  Its clock re-aligns at the next
            // advanceTo.
            if (in.empty() && q.empty())
                continue;
            ShardAccum &sa = shardAcc[1 + ch];
            sa.drained += in.size();
            roundMsgs += in.size();
            if (!profiling) {
                for (PushMsg &m : in)
                    controllers[ch]->pushAt(std::move(m.t), m.sentAt);
                in.clear();
                q.run(limit);
                continue;
            }
            const auto d0 = clk::now();
            for (PushMsg &m : in)
                controllers[ch]->pushAt(std::move(m.t), m.sentAt);
            in.clear();
            const auto b0 = clk::now();
            const std::uint64_t before = q.dispatched();
            q.run(limit);
            const auto b1 = clk::now();
            const double d = secsBetween(d0, b0);
            sa.drainSeconds += d;
            drain += d;
            sa.busySeconds += secsBetween(b0, b1);
            traceShardRound(1 + ch, start, q.dispatched() - before);
        }
    }

    if (profiling && tracer && !kernelTracks.empty() && roundMsgs)
        tracer->counter(mailboxTrack, "cross_shard_msgs", start,
                        roundMsgs);
    return drain;
}

void
System::traceShardRound(unsigned shard, Tick start,
                        std::uint64_t events)
{
    if (!tracer || kernelTracks.empty() || events == 0)
        return;
    // One frame slice per active shard per round, plus the round's
    // dispatch count as a counter series.  Tracing forces one lane,
    // so pushes are ordered; exportJson's stable sort keeps the end
    // of one slice ahead of the next slice's begin at the same tick.
    const std::uint32_t trk = kernelTracks[shard];
    tracer->begin(trk, "frame", start);
    tracer->counter(trk, "events", start, events);
    tracer->end(trk, "frame", start + frame);
}

void
System::endOfRound()
{
    if (phaseDone) {
        stopRounds = true;
    } else {
        // Termination backstop: a drained simulation (every shard
        // idle, every mailbox empty, nothing pending delivery) can
        // never reach the notify, so stop and let run() report it.
        bool active = !pendingDone.empty();
        for (const auto &q : queues)
            active = active || !q->empty();
        for (const auto &sh : shards)
            active = active || !sh.pushBox.bothEmpty()
                || !sh.doneBox.bothEmpty();
        if (!active)
            stopRounds = true;
    }
    ++curRound;
}

void
System::routePush(unsigned channel, TransPtr t)
{
    shards[channel].pushBox.post(
        curRound, PushMsg{std::move(t), queues.front()->now()});
}

void
System::complete(unsigned channel, TransPtr t,
                 const PhaseDurations &pd, bool has_profile)
{
    shards[channel].doneBox.post(
        curRound, CompleteMsg{std::move(t), pd, has_profile});
}

void
System::deliverFire()
{
    EventQueue &q = *queues.front();
    const Tick now = q.now();
    while (!pendingDone.empty()
           && pendingDone.front().deliverAt <= now) {
        std::pop_heap(pendingDone.begin(), pendingDone.end(),
                      PendingAfter{});
        PendingDone d = std::move(pendingDone.back());
        pendingDone.pop_back();
        if (d.hasProfile) {
            // Publish the phase profile for the duration of the
            // completion callback so a core whose stall ends inside
            // it can attribute the stalled cycles to these phases.
            attHub.publish(d.pd);
        }
        if (d.t->onComplete)
            d.t->onComplete(d.t->completedAt);
        if (d.hasProfile)
            attHub.clear();
        d.t.reset();
    }
    if (!pendingDone.empty())
        q.schedule(&deliverEvent, pendingDone.front().deliverAt);
}

double
System::kernelBusySeconds() const
{
    double s = 0.0;
    for (const ShardAccum &sa : shardAcc)
        s += sa.busySeconds;
    return s;
}

double
System::kernelDrainSeconds() const
{
    double s = 0.0;
    for (const ShardAccum &sa : shardAcc)
        s += sa.drainSeconds;
    return s;
}

double
System::kernelBarrierWaitSeconds() const
{
    double s = 0.0;
    for (const LaneAccum &la : laneAcc)
        s += la.barrierWaitSeconds;
    return s;
}

std::uint64_t
System::mailboxMessagesPosted() const
{
    std::uint64_t n = 0;
    for (const ChannelShard &sh : shards)
        n += sh.pushBox.posted() + sh.doneBox.posted();
    return n;
}

std::uint64_t
System::kernelEventsDispatched() const
{
    std::uint64_t n = 0;
    for (const auto &q : queues)
        n += q->dispatched();
    return n;
}

Tick
System::alignClocks()
{
    const Tick boundary = static_cast<Tick>(curRound) * frame;
    for (auto &q : queues)
        q->advanceTo(boundary);
    return boundary;
}

void
System::report(std::ostream &os) const
{
    for (const OwnedStatGroup &g : buildStatGroups())
        g.group.printAll(os);
}

std::vector<System::OwnedStatGroup>
System::buildStatGroups(bool include_histograms) const
{
    using stats::Formula;

    std::vector<OwnedStatGroup> groups;

    auto addF = [](OwnedStatGroup &g, std::string name,
                   std::string desc, std::function<double()> fn) {
        auto f = std::make_unique<Formula>(
            std::move(name), std::move(desc), std::move(fn));
        g.group.registerStat(f.get());
        g.owned.push_back(std::move(f));
    };
    // Component-owned stats (histograms) are registered borrowed; the
    // group never mutates them, so shedding const is safe here.
    auto addBorrowed = [](OwnedStatGroup &g, const stats::Stat &s) {
        g.group.registerStat(const_cast<stats::Stat *>(&s));
    };

    for (size_t i = 0; i < cores.size(); ++i) {
        const Core &c = *cores[i];
        OwnedStatGroup &g = groups.emplace_back(c.name());
        addF(g, "ipc", "instructions per cycle (window)",
             [&c] { return c.ipc(); });
        addF(g, "insts", "instructions in window",
             [&c] { return static_cast<double>(c.windowInsts()); });
        addF(g, "rob_stall_ns", "ROB-full stall time",
             [&c] { return ticksToNs(c.robStallTicks()); });
        addF(g, "lq_stall_ns", "load-queue stall time",
             [&c] { return ticksToNs(c.lqStallTicks()); });
        addF(g, "sq_stall_ns", "store-queue stall time",
             [&c] { return ticksToNs(c.sqStallTicks()); });
        addF(g, "mshr_stall_ns", "MSHR-full stall time",
             [&c] { return ticksToNs(c.mshrStallTicks()); });
        addF(g, "l1_hits", "L1 hits",
             [this, i] { return static_cast<double>(
                             hier->l1Hits(static_cast<int>(i))); });
        addF(g, "l1_misses", "L1 misses",
             [this, i] { return static_cast<double>(
                             hier->l1Misses(static_cast<int>(i))); });

        // Stall-cycle attribution: every ended stall interval charged
        // to the phases of the completion that woke the core.
        if (const CoreStallAttribution *sa = c.stallAttribution()) {
            for (unsigned rsn = 0;
                 rsn < CoreStallAttribution::numReasons; ++rsn) {
                const std::string r = stallReasonName(rsn);
                for (unsigned p = 0; p < numLatPhases; ++p) {
                    addF(g,
                         r + "_stall_"
                             + latPhaseName(static_cast<LatPhase>(p))
                             + "_ns",
                         "stall time blocked in this memory phase",
                         [sa, rsn, p] {
                             return ticksToNs(sa->byPhase[rsn][p]);
                         });
                }
                addF(g, r + "_stall_l2_ns",
                     "stall time ended by an L2 hit",
                     [sa, rsn] { return ticksToNs(sa->l2Wait[rsn]); });
                addF(g, r + "_stall_other_ns",
                     "stall time with no completion in scope",
                     [sa, rsn] {
                         return ticksToNs(sa->unattributed[rsn]);
                     });
            }
        }
    }

    {
        OwnedStatGroup &g = groups.emplace_back("l2");
        addF(g, "hits", "L2 hits",
             [this] { return static_cast<double>(hier->l2Hits()); });
        addF(g, "misses", "L2 misses (incl. MSHR merges)",
             [this] { return static_cast<double>(hier->l2Misses()); });
        addF(g, "mem_reads", "demand reads sent to memory",
             [this] { return static_cast<double>(hier->memReads()); });
        addF(g, "mem_writes", "writebacks sent to memory",
             [this] { return static_cast<double>(
                          hier->memWrites()); });
        addF(g, "sw_prefetches", "software prefetches sent",
             [this] { return static_cast<double>(
                          hier->prefetchesSent()); });
        addF(g, "sw_prefetches_dropped",
             "software prefetches dropped",
             [this] { return static_cast<double>(
                          hier->prefetchesDropped()); });
    }

    for (const auto &mcp : controllers) {
        const MemController &mc = *mcp;
        OwnedStatGroup &g = groups.emplace_back(mc.name());
        addF(g, "reads", "read transactions",
             [&mc] { return static_cast<double>(mc.reads()); });
        addF(g, "writes", "write transactions",
             [&mc] { return static_cast<double>(mc.writes()); });
        addF(g, "avg_read_latency_ns", "MC arrival to data at MC",
             [&mc] { return mc.avgReadLatencyNs(); });
        addF(g, "p95_read_latency_ns", "95th percentile",
             [&mc] { return mc.readLatencyPercentileNs(0.95); });
        addF(g, "p99_read_latency_ns", "99th percentile",
             [&mc] { return mc.readLatencyPercentileNs(0.99); });
        addF(g, "act_pre", "activate/precharge pairs",
             [&mc] { return static_cast<double>(
                         mc.dramOps().actPre); });
        addF(g, "cas", "column accesses",
             [&mc] { return static_cast<double>(
                         mc.dramOps().cas()); });
        addF(g, "refresh", "refresh commands",
             [&mc] { return static_cast<double>(
                         mc.dramOps().refresh); });
        addF(g, "amb_hits", "reads served by the AMB cache",
             [&mc] { return static_cast<double>(mc.ambHits()); });
        addF(g, "late_prefetch_hits",
             "prefetch hits with the fill still in flight",
             [&mc] { return static_cast<double>(
                         mc.latePrefetchHits()); });
        addF(g, "coverage", "#prefetch_hit / #read", [&mc] {
            const PrefetchTable *t = mc.prefetchTable();
            return t ? t->coverage() : 0.0;
        });
        addF(g, "efficiency", "#prefetch_hit / #prefetch", [&mc] {
            const PrefetchTable *t = mc.prefetchTable();
            return t ? t->efficiency() : 0.0;
        });
        addF(g, "pf_dropped", "candidates shed before issue", [&mc] {
            const PrefetchTable *t = mc.prefetchTable()
                ? mc.prefetchTable() : mc.mcBuffer();
            return t ? static_cast<double>(t->droppedCandidates())
                     : 0.0;
        });
        addF(g, "pf_lateness", "late prefetch hits / hits", [&mc] {
            const PrefetchTable *t = mc.prefetchTable()
                ? mc.prefetchTable() : mc.mcBuffer();
            return t ? t->lateness() : 0.0;
        });
        addF(g, "pf_pollution",
             "unused displaced or invalidated / issued", [&mc] {
                 const PrefetchTable *t = mc.prefetchTable()
                     ? mc.prefetchTable() : mc.mcBuffer();
                 return t ? t->pollution() : 0.0;
             });

        // Phase breakdown: where the latency of each transaction
        // class went on this channel (means; Σ phases == total).
        if (const ChannelAttribution *att = mc.attribution()) {
            for (unsigned c = 0; c < numLatClasses; ++c) {
                const auto &cl = att->cls(static_cast<LatClass>(c));
                const std::string cn =
                    latClassName(static_cast<LatClass>(c));
                addF(g, cn + "_samples", "completed transactions",
                     [&cl] { return static_cast<double>(
                                 cl.samples); });
                addF(g, cn + "_total_ns", "mean end-to-end latency",
                     [&cl] {
                         return cl.samples
                             ? static_cast<double>(cl.totalTicks)
                                   / static_cast<double>(cl.samples)
                                   / static_cast<double>(ticksPerNs)
                             : 0.0;
                     });
                for (unsigned p = 0; p < numLatPhases; ++p) {
                    addF(g,
                         cn + "_"
                             + latPhaseName(static_cast<LatPhase>(p))
                             + "_ns",
                         "mean time in this phase",
                         [&cl, p] {
                             return cl.samples
                                 ? static_cast<double>(
                                       cl.phaseTicks[p])
                                       / static_cast<double>(
                                             cl.samples)
                                       / static_cast<double>(
                                             ticksPerNs)
                                 : 0.0;
                         });
                }
                if (include_histograms) {
                    for (const stats::Histogram &h : cl.hist)
                        addBorrowed(g, h);
                }
            }
        }

        if (include_histograms) {
            addBorrowed(g, mc.readLatencyHist());
            addBorrowed(g, mc.demandLatencyHist());
            addBorrowed(g, mc.prefHitLatencyHist());
            addBorrowed(g, mc.writeLatencyHist());
        }
    }

    return groups;
}

RunResult
System::collect(Tick window_ticks) const
{
    RunResult r;
    r.measuredTicks = window_ticks;
    for (const auto &c : cores) {
        r.ipc.push_back(c->ipc());
        r.insts.push_back(c->windowInsts());
    }

    std::uint64_t bytes = 0;
    double lat_weighted = 0.0;
    std::uint64_t lat_samples = 0;
    std::uint64_t pf_reads = 0, pf_hits = 0, pf_issued = 0;
    for (const auto &mc : controllers) {
        r.reads += mc->reads();
        r.writes += mc->writes();
        r.ambHits += mc->ambHits();
        bytes += mc->channelBytes();
        lat_weighted += mc->avgReadLatencyNs()
            * static_cast<double>(mc->readLatSamples());
        lat_samples += mc->readLatSamples();
        r.ops += mc->dramOps();
        const PrefetchTable *t = mc->prefetchTable()
            ? mc->prefetchTable() : mc->mcBuffer();
        if (t) {
            pf_reads += t->reads();
            pf_hits += t->prefetchHits();
            pf_issued += t->prefetchesIssued();
            r.prefetch.issued += t->prefetchesIssued();
            r.prefetch.hits += t->prefetchHits();
            r.prefetch.lateHits += t->lateHits();
            r.prefetch.dropped += t->droppedCandidates();
            r.prefetch.evictedUnused += t->evictedUnused();
            r.prefetch.invalidatedUnused += t->invalidatedUnused();
        }
        if (const PrefetchPolicy *pol = mc->activePolicy())
            r.prefetch.policy = pol->name();
        r.ambHits += mc->mcHits();  // MC hits fill the same role
    }
    if (lat_samples)
        r.avgReadLatencyNs = lat_weighted
            / static_cast<double>(lat_samples);
    if (window_ticks) {
        const double seconds = static_cast<double>(window_ticks)
            * 1e-12;
        r.bandwidthGBs = static_cast<double>(bytes) / 1e9 / seconds;
    }
    if (pf_reads)
        r.coverage = static_cast<double>(pf_hits)
            / static_cast<double>(pf_reads);
    if (pf_issued)
        r.efficiency = static_cast<double>(pf_hits)
            / static_cast<double>(pf_issued);

    // Per-class latency percentiles: merge the controllers' equal-
    // geometry histograms, then interpolate quantiles on the union.
    {
        stats::Histogram demand{"d", "", 0.0, 1000.0, 500};
        stats::Histogram pref{"p", "", 0.0, 1000.0, 500};
        stats::Histogram wr{"w", "", 0.0, 1000.0, 500};
        for (const auto &mc : controllers) {
            demand.merge(mc->demandLatencyHist());
            pref.merge(mc->prefHitLatencyHist());
            wr.merge(mc->writeLatencyHist());
            r.latePrefetchHits += mc->latePrefetchHits();
        }
        auto fill = [](const stats::Histogram &h) {
            LatencyClassStats s;
            s.p50Ns = h.quantile(0.50);
            s.p95Ns = h.quantile(0.95);
            s.p99Ns = h.quantile(0.99);
            s.samples = h.samples();
            return s;
        };
        r.latDemand = fill(demand);
        r.latPrefHit = fill(pref);
        r.latWrite = fill(wr);
    }

    r.l2Misses = hier->l2Misses();
    r.l2Hits = hier->l2Hits();
    r.swPrefetchesSent = hier->prefetchesSent();

    for (const auto &c : cores)
        r.runInsts += c->insts();

    // Sum the shard queues' counters in queue order (peak depth too:
    // an upper bound on simultaneous live events across all shards,
    // and — unlike a max — it degrades visibly if one shard bloats).
    for (const auto &q : queues) {
        const EventQueue::Counters &qc = q->counters();
        r.kernel.eventsDispatched += qc.dispatched;
        r.kernel.schedules += qc.schedules;
        r.kernel.reschedules += qc.reschedules;
        r.kernel.deschedules += qc.deschedules;
        r.kernel.peakQueueDepth += qc.peakDepth;
        r.kernel.batchDrains += qc.batchDrains;
        r.kernel.batchedEvents += qc.batchedDispatched;
    }
    r.kernel.profiled = profiling;
    if (profiling) {
        for (std::size_t i = 0; i < queues.size(); ++i) {
            const EventQueue::Counters &qc = queues[i]->counters();
            ShardProfile sp;
            sp.name = i == 0
                ? "core"
                : csprintf("ch%zu", i - 1);
            sp.lane = shardAcc[i].lane;
            sp.events = qc.dispatched;
            sp.schedules = qc.schedules;
            sp.reschedules = qc.reschedules;
            sp.deschedules = qc.deschedules;
            sp.peakQueueDepth = qc.peakDepth;
            sp.batchDrains = qc.batchDrains;
            sp.batchedEvents = qc.batchedDispatched;
            sp.mailboxIn = shardAcc[i].drained;
            if (i == 0) {
                // The core shard posts requests into every pushBox.
                for (const ChannelShard &sh : shards)
                    sp.mailboxOut += sh.pushBox.posted();
            } else {
                sp.mailboxOut = shards[i - 1].doneBox.posted();
            }
            sp.busySeconds = shardAcc[i].busySeconds;
            sp.drainSeconds = shardAcc[i].drainSeconds;
            r.kernel.shards.push_back(std::move(sp));
        }
        for (unsigned l = 0; l < lanesUsed; ++l) {
            const LaneAccum &a = laneAcc[l];
            LaneProfile lp;
            lp.lane = l;
            for (const ShardAccum &sa : shardAcc)
                lp.shardsOwned += sa.lane == l ? 1 : 0;
            lp.rounds = a.rounds;
            lp.busySeconds = a.busySeconds;
            lp.drainSeconds = a.drainSeconds;
            lp.barrierWaitSeconds = a.barrierWaitSeconds;
            lp.wallSeconds = a.wallSeconds;
            lp.lastArrivals = a.lastArrivals;
            lp.spinReleases = a.spinReleases;
            lp.yieldReleases = a.yieldReleases;
            lp.sleepReleases = a.sleepReleases;
            r.kernel.lanes.push_back(lp);
        }
    }
    // The pool is thread-local and shared by every System this thread
    // has run, so the counters are cumulative across runs; high water
    // and capacity are still per-thread facts worth reporting.
    const TransPool::Stats &ps = TransPool::local().stats();
    r.kernel.poolAcquires = ps.acquires;
    r.kernel.poolReuses = ps.reuses;
    r.kernel.poolHighWater = ps.highWater;
    r.kernel.poolCapacity = ps.capacity;
    r.kernel.hostEventSeconds = hostEventSeconds;

    if (cfg.attribution) {
        r.attribution.enabled = true;
        r.attribution.channels.resize(controllers.size());
        for (size_t ch = 0; ch < controllers.size(); ++ch) {
            const ChannelAttribution *att =
                controllers[ch]->attribution();
            if (!att)
                continue;
            ChannelBreakdown &cb = r.attribution.channels[ch];
            for (unsigned c = 0; c < numLatClasses; ++c) {
                const auto &acc = att->cls(static_cast<LatClass>(c));
                cb.cls[c].samples = acc.samples;
                cb.cls[c].totalTicks = acc.totalTicks;
                for (unsigned p = 0; p < numLatPhases; ++p)
                    cb.cls[c].phaseTicks[p] = acc.phaseTicks[p];
            }
            r.attribution.total.merge(cb);
        }
        for (const auto &c : cores) {
            CoreCycleBreakdown cc;
            cc.windowTicks = window_ticks;
            cc.stall[0] = c->robStallTicks();
            cc.stall[1] = c->lqStallTicks();
            cc.stall[2] = c->sqStallTicks();
            cc.stall[3] = c->mshrStallTicks();
            if (const CoreStallAttribution *sa =
                    c->stallAttribution())
                cc.att = *sa;
            r.attribution.cores.push_back(cc);
        }
    }
    return r;
}

} // namespace fbdp
