#include "system/system.hh"

#include <chrono>
#include <ostream>

#include "common/logging.hh"
#include "common/stats.hh"
#include "mc/transaction.hh"

namespace fbdp {

double
RunResult::ipcSum() const
{
    double s = 0.0;
    for (double v : ipc)
        s += v;
    return s;
}

double
RunResult::totalInsts() const
{
    double s = 0.0;
    for (std::uint64_t v : insts)
        s += static_cast<double>(v);
    return s;
}

MemorySystem::MemorySystem(
    EventQueue *event_queue, const AddressMap *address_map,
    std::vector<std::unique_ptr<MemController>> *ctrls)
    : eq(event_queue), map(address_map), controllers(ctrls)
{
}

void
MemorySystem::read(Addr line_addr, int core_id, bool sw_prefetch,
                   TickCallback done)
{
    auto t = makeTransaction();
    t->cmd = MemCmd::Read;
    t->lineAddr = lineAlign(line_addr);
    t->coreId = core_id;
    t->swPrefetch = sw_prefetch;
    t->created = eq->now();
    t->coord = map->map(t->lineAddr);
    t->onComplete = std::move(done);
    (*controllers)[t->coord.channel]->push(std::move(t));
}

void
MemorySystem::write(Addr line_addr, int core_id)
{
    auto t = makeTransaction();
    t->cmd = MemCmd::Write;
    t->lineAddr = lineAlign(line_addr);
    t->coreId = core_id;
    t->created = eq->now();
    t->coord = map->map(t->lineAddr);
    (*controllers)[t->coord.channel]->push(std::move(t));
}

System::System(const SystemConfig &config)
    : cfg(config)
{
    fbdp_assert(!cfg.benchmarks.empty(),
                "system configured with no workload");

    map = std::make_unique<AddressMap>(cfg.addressMapConfig());

    const ControllerConfig cc = cfg.controllerConfig();
    for (unsigned ch = 0; ch < cfg.logicChannels; ++ch) {
        controllers.push_back(std::make_unique<MemController>(
            csprintf("mc%u", ch), &eq, cc));
    }

    memSys = std::make_unique<MemorySystem>(&eq, map.get(),
                                            &controllers);
    HierConfig hc = cfg.hier;
    if (cfg.hwPrefetch)
        hc.hwPrefetch.enable = true;
    hier = std::make_unique<CacheHierarchy>(&eq, cfg.nCores(), hc,
                                            memSys.get());

    // Each core owns a disjoint 4 GB slice of the physical space; the
    // interleaving spreads every slice across all channels and banks.
    constexpr Addr slice = 1ull << 32;
    for (unsigned i = 0; i < cfg.nCores(); ++i) {
        const BenchProfile &prof = benchProfile(cfg.benchmarks[i]);
        gens.push_back(std::make_unique<SyntheticGenerator>(
            prof, static_cast<Addr>(i) * slice,
            cfg.seed * 1000 + i, cfg.swPrefetch));

        CoreParams cp;
        cp.baseIpc = prof.baseIpc;
        cp.rob = cfg.rob;
        cp.lq = cfg.lq;
        cp.sq = cfg.sq;
        cores.push_back(std::make_unique<Core>(
            csprintf("cpu%u.%s", i, prof.name.c_str()),
            static_cast<int>(i), &eq, hier.get(), gens[i].get(), cp));
    }
}

System::~System() = default;

void
System::attachTracer(trace::Tracer *t)
{
    for (unsigned ch = 0; ch < controllers.size(); ++ch)
        controllers[ch]->bindTracer(t, ch);
    hier->bindTracer(t);
    for (auto &c : cores)
        c->bindTracer(t);
}

void
System::resetAllStats()
{
    for (auto &c : cores)
        c->resetStats();
    for (auto &mc : controllers)
        mc->resetStats();
    hier->resetStats();
}

RunResult
System::run()
{
    // Phase 0: functional cache warm-up.  Replay a prefix of each
    // core's trace through the tag arrays so the measured region does
    // not see an artificially cold 4 MB L2 (the paper's SimPoint runs
    // start from warm state).
    std::uint64_t warm_ops = cfg.functionalWarmupOps;
    if (warm_ops == 0) {
        const std::uint64_t l2_lines = cfg.hier.l2Bytes / lineBytes;
        // Roughly one line install per ten ops; aim for 2x capacity.
        warm_ops = 20 * l2_lines / cfg.nCores();
    }
    for (std::uint64_t k = 0; k < warm_ops; ++k) {
        for (unsigned i = 0; i < cfg.nCores(); ++i) {
            TraceOp op = gens[i]->next();
            if (op.kind == TraceOp::Kind::Prefetch)
                hier->functionalPrefetch(static_cast<int>(i), op.addr);
            else
                hier->functionalAccess(
                    static_cast<int>(i), op.addr,
                    op.kind == TraceOp::Kind::Store);
        }
    }

    // Time the event-driven phases only: sim-rate should reflect the
    // kernel, not process start-up or the functional replay above.
    const auto host0 = std::chrono::steady_clock::now();

    // Phase 1: warm up until the first core has executed warmupInsts.
    phaseDone = false;
    for (auto &c : cores) {
        c->setNotify(cfg.warmupInsts, [this] { phaseDone = true; });
        c->start();
    }
    while (!phaseDone && eq.step()) {
    }
    fbdp_assert(phaseDone, "simulation drained during warm-up");

    resetAllStats();
    const Tick t0 = eq.now();

    // Phase 2: measure until the first core adds measureInsts more.
    phaseDone = false;
    for (auto &c : cores) {
        c->setNotify(c->insts() + cfg.measureInsts,
                     [this] { phaseDone = true; });
    }
    while (!phaseDone && eq.step()) {
    }
    fbdp_assert(phaseDone, "simulation drained during measurement");

    hostEventSeconds = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - host0).count();
    return collect(eq.now() - t0);
}

void
System::report(std::ostream &os) const
{
    using stats::Formula;
    using stats::StatGroup;

    for (size_t i = 0; i < cores.size(); ++i) {
        const Core &c = *cores[i];
        StatGroup g(c.name());
        Formula ipc("ipc", "instructions per cycle (window)",
                    [&c] { return c.ipc(); });
        Formula insts("insts", "instructions in window",
                      [&c] { return static_cast<double>(
                                 c.windowInsts()); });
        Formula rob("rob_stall_ns", "ROB-full stall time",
                    [&c] { return ticksToNs(c.robStallTicks()); });
        Formula lq("lq_stall_ns", "load-queue stall time",
                   [&c] { return ticksToNs(c.lqStallTicks()); });
        Formula sq("sq_stall_ns", "store-queue stall time",
                   [&c] { return ticksToNs(c.sqStallTicks()); });
        Formula mshr("mshr_stall_ns", "MSHR-full stall time",
                     [&c] { return ticksToNs(c.mshrStallTicks()); });
        Formula l1h("l1_hits", "L1 hits",
                    [this, i] { return static_cast<double>(
                                    hier->l1Hits(
                                        static_cast<int>(i))); });
        Formula l1m("l1_misses", "L1 misses",
                    [this, i] { return static_cast<double>(
                                    hier->l1Misses(
                                        static_cast<int>(i))); });
        for (stats::Stat *s : std::initializer_list<stats::Stat *>{
                 &ipc, &insts, &rob, &lq, &sq, &mshr, &l1h, &l1m})
            g.registerStat(s);
        g.printAll(os);
    }

    {
        StatGroup g("l2");
        Formula hits("hits", "L2 hits",
                     [this] { return static_cast<double>(
                                  hier->l2Hits()); });
        Formula misses("misses", "L2 misses (incl. MSHR merges)",
                       [this] { return static_cast<double>(
                                    hier->l2Misses()); });
        Formula rd("mem_reads", "demand reads sent to memory",
                   [this] { return static_cast<double>(
                                hier->memReads()); });
        Formula wr("mem_writes", "writebacks sent to memory",
                   [this] { return static_cast<double>(
                                hier->memWrites()); });
        Formula pf("sw_prefetches", "software prefetches sent",
                   [this] { return static_cast<double>(
                                hier->prefetchesSent()); });
        Formula pfd("sw_prefetches_dropped",
                    "software prefetches dropped",
                    [this] { return static_cast<double>(
                                 hier->prefetchesDropped()); });
        for (stats::Stat *s : std::initializer_list<stats::Stat *>{
                 &hits, &misses, &rd, &wr, &pf, &pfd})
            g.registerStat(s);
        g.printAll(os);
    }

    for (const auto &mcp : controllers) {
        const MemController &mc = *mcp;
        StatGroup g(mc.name());
        Formula rd("reads", "read transactions",
                   [&mc] { return static_cast<double>(mc.reads()); });
        Formula wr("writes", "write transactions",
                   [&mc] { return static_cast<double>(
                               mc.writes()); });
        Formula lat("avg_read_latency_ns",
                    "MC arrival to data at MC",
                    [&mc] { return mc.avgReadLatencyNs(); });
        Formula p95("p95_read_latency_ns", "95th percentile",
                    [&mc] {
                        return mc.readLatencyPercentileNs(0.95);
                    });
        Formula p99("p99_read_latency_ns", "99th percentile",
                    [&mc] {
                        return mc.readLatencyPercentileNs(0.99);
                    });
        Formula act("act_pre", "activate/precharge pairs",
                    [&mc] { return static_cast<double>(
                                mc.dramOps().actPre); });
        Formula cas("cas", "column accesses",
                    [&mc] { return static_cast<double>(
                                mc.dramOps().cas()); });
        Formula ref("refresh", "refresh commands",
                    [&mc] { return static_cast<double>(
                                mc.dramOps().refresh); });
        Formula hits("amb_hits", "reads served by the AMB cache",
                     [&mc] { return static_cast<double>(
                                 mc.ambHits()); });
        Formula late("late_prefetch_hits",
                     "prefetch hits with the fill still in flight",
                     [&mc] { return static_cast<double>(
                                 mc.latePrefetchHits()); });
        Formula cov("coverage", "#prefetch_hit / #read", [&mc] {
            const PrefetchTable *t = mc.prefetchTable();
            return t ? t->coverage() : 0.0;
        });
        Formula eff("efficiency", "#prefetch_hit / #prefetch", [&mc] {
            const PrefetchTable *t = mc.prefetchTable();
            return t ? t->efficiency() : 0.0;
        });
        for (stats::Stat *s : std::initializer_list<stats::Stat *>{
                 &rd, &wr, &lat, &p95, &p99, &act, &cas, &ref,
                 &hits, &late, &cov, &eff})
            g.registerStat(s);
        g.printAll(os);
    }
}

RunResult
System::collect(Tick window_ticks) const
{
    RunResult r;
    r.measuredTicks = window_ticks;
    for (const auto &c : cores) {
        r.ipc.push_back(c->ipc());
        r.insts.push_back(c->windowInsts());
    }

    std::uint64_t bytes = 0;
    double lat_weighted = 0.0;
    std::uint64_t lat_samples = 0;
    std::uint64_t pf_reads = 0, pf_hits = 0, pf_issued = 0;
    for (const auto &mc : controllers) {
        r.reads += mc->reads();
        r.writes += mc->writes();
        r.ambHits += mc->ambHits();
        bytes += mc->channelBytes();
        lat_weighted += mc->avgReadLatencyNs()
            * static_cast<double>(mc->readLatSamples());
        lat_samples += mc->readLatSamples();
        r.ops += mc->dramOps();
        if (const PrefetchTable *t = mc->prefetchTable()) {
            pf_reads += t->reads();
            pf_hits += t->prefetchHits();
            pf_issued += t->prefetchesIssued();
        } else if (const PrefetchTable *t2 = mc->mcBuffer()) {
            pf_reads += t2->reads();
            pf_hits += t2->prefetchHits();
            pf_issued += t2->prefetchesIssued();
        }
        r.ambHits += mc->mcHits();  // MC hits fill the same role
    }
    if (lat_samples)
        r.avgReadLatencyNs = lat_weighted
            / static_cast<double>(lat_samples);
    if (window_ticks) {
        const double seconds = static_cast<double>(window_ticks)
            * 1e-12;
        r.bandwidthGBs = static_cast<double>(bytes) / 1e9 / seconds;
    }
    if (pf_reads)
        r.coverage = static_cast<double>(pf_hits)
            / static_cast<double>(pf_reads);
    if (pf_issued)
        r.efficiency = static_cast<double>(pf_hits)
            / static_cast<double>(pf_issued);

    // Per-class latency percentiles: merge the controllers' equal-
    // geometry histograms, then interpolate quantiles on the union.
    {
        stats::Histogram demand{"d", "", 0.0, 1000.0, 500};
        stats::Histogram pref{"p", "", 0.0, 1000.0, 500};
        stats::Histogram wr{"w", "", 0.0, 1000.0, 500};
        for (const auto &mc : controllers) {
            demand.merge(mc->demandLatencyHist());
            pref.merge(mc->prefHitLatencyHist());
            wr.merge(mc->writeLatencyHist());
            r.latePrefetchHits += mc->latePrefetchHits();
        }
        auto fill = [](const stats::Histogram &h) {
            LatencyClassStats s;
            s.p50Ns = h.quantile(0.50);
            s.p95Ns = h.quantile(0.95);
            s.p99Ns = h.quantile(0.99);
            s.samples = h.samples();
            return s;
        };
        r.latDemand = fill(demand);
        r.latPrefHit = fill(pref);
        r.latWrite = fill(wr);
    }

    r.l2Misses = hier->l2Misses();
    r.l2Hits = hier->l2Hits();
    r.swPrefetchesSent = hier->prefetchesSent();

    for (const auto &c : cores)
        r.runInsts += c->insts();

    const EventQueue::Counters &qc = eq.counters();
    r.kernel.eventsDispatched = qc.dispatched;
    r.kernel.schedules = qc.schedules;
    r.kernel.reschedules = qc.reschedules;
    r.kernel.deschedules = qc.deschedules;
    r.kernel.peakQueueDepth = qc.peakDepth;
    // The pool is thread-local and shared by every System this thread
    // has run, so the counters are cumulative across runs; high water
    // and capacity are still per-thread facts worth reporting.
    const TransPool::Stats &ps = TransPool::local().stats();
    r.kernel.poolAcquires = ps.acquires;
    r.kernel.poolReuses = ps.reuses;
    r.kernel.poolHighWater = ps.highWater;
    r.kernel.poolCapacity = ps.capacity;
    r.kernel.hostEventSeconds = hostEventSeconds;
    return r;
}

} // namespace fbdp
