#include "system/results.hh"

#include <cmath>
#include <sstream>

#include "common/logging.hh"
#include "power/power_model.hh"
#include "system/metrics.hh"

namespace fbdp {

ColumnValue
ColumnValue::ofText(std::string v)
{
    ColumnValue c;
    c.kind = ColumnKind::Text;
    c.text = std::move(v);
    return c;
}

ColumnValue
ColumnValue::ofCount(std::uint64_t v)
{
    ColumnValue c;
    c.kind = ColumnKind::Count;
    c.count = v;
    return c;
}

ColumnValue
ColumnValue::ofReal(double v)
{
    ColumnValue c;
    c.kind = ColumnKind::Real;
    c.real = v;
    return c;
}

std::string
ColumnValue::csv() const
{
    switch (kind) {
      case ColumnKind::Text:
        return text;
      case ColumnKind::Count:
        return std::to_string(count);
      case ColumnKind::Real: {
        // Default ostream formatting, so rows match what the legacy
        // csvRow() printed through operator<<.
        std::ostringstream os;
        os << real;
        return os.str();
      }
    }
    panic("unhandled column kind");
}

std::string
ColumnValue::json() const
{
    switch (kind) {
      case ColumnKind::Text:
        return '"' + jsonEscape(text) + '"';
      case ColumnKind::Count:
        return std::to_string(count);
      case ColumnKind::Real: {
        if (!std::isfinite(real))
            return "null"; // NaN/Inf are not valid JSON numbers
        std::ostringstream os;
        os << real;
        return os.str();
      }
    }
    panic("unhandled column kind");
}

ResultSchema &
ResultSchema::add(Column c)
{
    fbdp_assert(!c.name.empty() && c.get,
                "result column needs a name and an accessor");
    cols.push_back(std::move(c));
    return *this;
}

const ResultSchema &
ResultSchema::sweepRows()
{
    // Thread-safe one-time init (C++11 magic static); const after.
    static const ResultSchema schema = [] {
        ResultSchema s;
        auto text = [](std::string name, std::string desc,
                       std::function<std::string(const SweepRow &)> f) {
            return Column{std::move(name), "", std::move(desc),
                          ColumnKind::Text,
                          [f = std::move(f)](const SweepRow &r) {
                              return ColumnValue::ofText(f(r));
                          }};
        };
        auto count =
            [](std::string name, std::string unit, std::string desc,
               std::function<std::uint64_t(const SweepRow &)> f) {
                return Column{std::move(name), std::move(unit),
                              std::move(desc), ColumnKind::Count,
                              [f = std::move(f)](const SweepRow &r) {
                                  return ColumnValue::ofCount(f(r));
                              }};
            };
        auto real = [](std::string name, std::string unit,
                       std::string desc,
                       std::function<double(const SweepRow &)> f) {
            return Column{std::move(name), std::move(unit),
                          std::move(desc), ColumnKind::Real,
                          [f = std::move(f)](const SweepRow &r) {
                              return ColumnValue::ofReal(f(r));
                          }};
        };

        s.add(text("config", "machine configuration name",
                   [](const SweepRow &r) { return r.config; }));
        s.add(text("mix", "workload mix name",
                   [](const SweepRow &r) { return r.mix; }));
        s.add(count("seed", "", "RNG seed of this repeat",
                    [](const SweepRow &r) { return r.seed; }));
        s.add(real("ipc_sum", "insts/cycle",
                   "sum of per-core IPCs (throughput)",
                   [](const SweepRow &r) {
                       return r.result.ipcSum();
                   }));
        s.add(real("bandwidth_gbs", "GB/s",
                   "utilized channel bandwidth",
                   [](const SweepRow &r) {
                       return r.result.bandwidthGBs;
                   }));
        s.add(real("avg_read_latency_ns", "ns",
                   "mean read latency, MC arrival to data at MC",
                   [](const SweepRow &r) {
                       return r.result.avgReadLatencyNs;
                   }));
        s.add(count("reads", "ops", "memory reads served",
                    [](const SweepRow &r) { return r.result.reads; }));
        s.add(count("writes", "ops", "memory writes served",
                    [](const SweepRow &r) { return r.result.writes; }));
        s.add(count("amb_hits", "ops", "reads served by the AMB cache",
                    [](const SweepRow &r) {
                        return r.result.ambHits;
                    }));
        s.add(real("coverage", "ratio", "prefetch hits / reads",
                   [](const SweepRow &r) {
                       return r.result.coverage;
                   }));
        s.add(real("efficiency", "ratio",
                   "prefetch hits / prefetches issued",
                   [](const SweepRow &r) {
                       return r.result.efficiency;
                   }));
        s.add(count("act_pre", "ops", "DRAM activate/precharge pairs",
                    [](const SweepRow &r) {
                        return r.result.ops.actPre;
                    }));
        s.add(count("cas", "ops", "DRAM column accesses (rd+wr)",
                    [](const SweepRow &r) {
                        return r.result.ops.cas();
                    }));
        s.add(count("refresh", "ops", "DRAM auto-refresh commands",
                    [](const SweepRow &r) {
                        return r.result.ops.refresh;
                    }));
        s.add(real("insts", "insts",
                   "instructions executed in the window, all cores",
                   [](const SweepRow &r) {
                       return r.result.totalInsts();
                   }));
        s.add(real("sim_us", "us", "simulated measurement window",
                   [](const SweepRow &r) {
                       return static_cast<double>(
                                  r.result.measuredTicks)
                           * 1e-6;
                   }));
        return s;
    }();
    return schema;
}

const ResultSchema &
ResultSchema::kernelStats()
{
    static const ResultSchema schema = [] {
        ResultSchema s;
        auto count =
            [](std::string name, std::string unit, std::string desc,
               std::function<std::uint64_t(const SweepRow &)> f) {
                return Column{std::move(name), std::move(unit),
                              std::move(desc), ColumnKind::Count,
                              [f = std::move(f)](const SweepRow &r) {
                                  return ColumnValue::ofCount(f(r));
                              }};
            };
        auto real = [](std::string name, std::string unit,
                       std::string desc,
                       std::function<double(const SweepRow &)> f) {
            return Column{std::move(name), std::move(unit),
                          std::move(desc), ColumnKind::Real,
                          [f = std::move(f)](const SweepRow &r) {
                              return ColumnValue::ofReal(f(r));
                          }};
        };

        s.add(Column{"config", "", "machine configuration name",
                     ColumnKind::Text, [](const SweepRow &r) {
                         return ColumnValue::ofText(r.config);
                     }});
        s.add(Column{"mix", "", "workload mix name", ColumnKind::Text,
                     [](const SweepRow &r) {
                         return ColumnValue::ofText(r.mix);
                     }});
        s.add(count("events_dispatched", "events",
                    "event callbacks invoked",
                    [](const SweepRow &r) {
                        return r.result.kernel.eventsDispatched;
                    }));
        s.add(count("schedules", "ops", "schedule() of an idle event",
                    [](const SweepRow &r) {
                        return r.result.kernel.schedules;
                    }));
        s.add(count("reschedules", "ops",
                    "schedule() of a live event (moved in place)",
                    [](const SweepRow &r) {
                        return r.result.kernel.reschedules;
                    }));
        s.add(count("deschedules", "ops",
                    "deschedule() of a live event",
                    [](const SweepRow &r) {
                        return r.result.kernel.deschedules;
                    }));
        s.add(count("peak_queue_depth", "events",
                    "max simultaneous scheduled events",
                    [](const SweepRow &r) {
                        return r.result.kernel.peakQueueDepth;
                    }));
        s.add(count("pool_acquires", "ops",
                    "transactions handed out by the pool",
                    [](const SweepRow &r) {
                        return r.result.kernel.poolAcquires;
                    }));
        s.add(count("pool_reuses", "ops",
                    "pool acquires served from the freelist",
                    [](const SweepRow &r) {
                        return r.result.kernel.poolReuses;
                    }));
        s.add(count("pool_high_water", "objects",
                    "max simultaneously live transactions",
                    [](const SweepRow &r) {
                        return r.result.kernel.poolHighWater;
                    }));
        s.add(count("pool_capacity", "objects",
                    "transaction objects ever carved by the pool",
                    [](const SweepRow &r) {
                        return r.result.kernel.poolCapacity;
                    }));
        s.add(real("host_event_seconds", "s",
                   "host wall time inside the event-driven phases",
                   [](const SweepRow &r) {
                       return r.result.kernel.hostEventSeconds;
                   }));
        s.add(real("events_per_sec", "events/s",
                   "dispatch throughput over the event-driven phases",
                   [](const SweepRow &r) {
                       return r.result.kernel.eventsPerSec();
                   }));
        s.add(real("insts_per_sec", "insts/s",
                   "simulated instructions per host second",
                   [](const SweepRow &r) {
                       return r.result.instsPerHostSec();
                   }));
        return s;
    }();
    return schema;
}

const ResultSchema &
ResultSchema::latencyPercentiles()
{
    static const ResultSchema schema = [] {
        ResultSchema s;
        s.add(Column{"config", "", "machine configuration name",
                     ColumnKind::Text, [](const SweepRow &r) {
                         return ColumnValue::ofText(r.config);
                     }});
        s.add(Column{"mix", "", "workload mix name", ColumnKind::Text,
                     [](const SweepRow &r) {
                         return ColumnValue::ofText(r.mix);
                     }});
        s.add(Column{"seed", "", "RNG seed of this repeat",
                     ColumnKind::Count, [](const SweepRow &r) {
                         return ColumnValue::ofCount(r.seed);
                     }});

        struct Class
        {
            const char *key;
            const char *what;
            LatencyClassStats RunResult::*stats;
        };
        static const Class classes[] = {
            {"demand", "demand reads that missed every buffer",
             &RunResult::latDemand},
            {"pref_hit", "reads served by the AMB/MC buffer",
             &RunResult::latPrefHit},
            {"write", "posted-write completions",
             &RunResult::latWrite},
        };
        for (const Class &c : classes) {
            const auto m = c.stats;
            s.add(Column{std::string(c.key) + "_samples", "ops",
                         std::string(c.what) + ": sample count",
                         ColumnKind::Count, [m](const SweepRow &r) {
                             return ColumnValue::ofCount(
                                 (r.result.*m).samples);
                         }});
            struct Pct
            {
                const char *suffix;
                double LatencyClassStats::*val;
            };
            static const Pct pcts[] = {
                {"_p50_ns", &LatencyClassStats::p50Ns},
                {"_p95_ns", &LatencyClassStats::p95Ns},
                {"_p99_ns", &LatencyClassStats::p99Ns},
            };
            for (const Pct &p : pcts) {
                const auto v = p.val;
                s.add(Column{std::string(c.key) + p.suffix, "ns",
                             std::string(c.what) + ": latency "
                                 + (p.suffix + 1),
                             ColumnKind::Real, [m, v](const SweepRow &r) {
                                 return ColumnValue::ofReal(
                                     (r.result.*m).*v);
                             }});
            }
        }
        s.add(Column{"late_prefetch_hits", "ops",
                     "prefetch hits whose fill was still in flight",
                     ColumnKind::Count, [](const SweepRow &r) {
                         return ColumnValue::ofCount(
                             r.result.latePrefetchHits);
                     }});
        return s;
    }();
    return schema;
}

const ResultSchema &
ResultSchema::prefetchStats()
{
    static const ResultSchema schema = [] {
        ResultSchema s;
        s.add(Column{"config", "", "machine configuration name",
                     ColumnKind::Text, [](const SweepRow &r) {
                         return ColumnValue::ofText(r.config);
                     }});
        s.add(Column{"mix", "", "workload mix name", ColumnKind::Text,
                     [](const SweepRow &r) {
                         return ColumnValue::ofText(r.mix);
                     }});
        s.add(Column{"seed", "", "RNG seed of this repeat",
                     ColumnKind::Count, [](const SweepRow &r) {
                         return ColumnValue::ofCount(r.seed);
                     }});
        s.add(Column{"policy", "", "active PolicyRegistry name",
                     ColumnKind::Text, [](const SweepRow &r) {
                         return ColumnValue::ofText(
                             r.result.prefetch.policy);
                     }});

        auto count =
            [](std::string name, std::string desc,
               std::uint64_t PrefetchRunStats::*m) {
                return Column{std::move(name), "ops", std::move(desc),
                              ColumnKind::Count,
                              [m](const SweepRow &r) {
                                  return ColumnValue::ofCount(
                                      r.result.prefetch.*m);
                              }};
            };
        s.add(count("issued", "prefetch candidate lines fetched",
                    &PrefetchRunStats::issued));
        s.add(count("hits", "demand reads served by a prefetch",
                    &PrefetchRunStats::hits));
        s.add(count("late_hits",
                    "hits whose fill was still in flight",
                    &PrefetchRunStats::lateHits));
        s.add(count("dropped", "candidates shed before issue",
                    &PrefetchRunStats::dropped));
        s.add(count("evicted_unused",
                    "prefetched lines displaced before any use",
                    &PrefetchRunStats::evictedUnused));
        s.add(count("invalidated_unused",
                    "prefetched lines written before any use",
                    &PrefetchRunStats::invalidatedUnused));

        auto real = [](std::string name, std::string desc,
                       std::function<double(const SweepRow &)> f) {
            return Column{std::move(name), "ratio", std::move(desc),
                          ColumnKind::Real,
                          [f = std::move(f)](const SweepRow &r) {
                              return ColumnValue::ofReal(f(r));
                          }};
        };
        s.add(real("coverage", "prefetch hits / reads",
                   [](const SweepRow &r) {
                       return r.result.coverage;
                   }));
        s.add(real("accuracy", "prefetch hits / prefetches issued",
                   [](const SweepRow &r) {
                       return r.result.efficiency;
                   }));
        s.add(real("lateness", "late hits / hits",
                   [](const SweepRow &r) {
                       return r.result.prefetch.lateness();
                   }));
        s.add(real("pollution",
                   "unused displaced or invalidated / issued",
                   [](const SweepRow &r) {
                       return r.result.prefetch.pollution();
                   }));
        return s;
    }();
    return schema;
}

const ResultSchema &
ResultSchema::powerStats()
{
    static const ResultSchema schema = [] {
        ResultSchema s;
        s.add(Column{"config", "", "machine configuration name",
                     ColumnKind::Text, [](const SweepRow &r) {
                         return ColumnValue::ofText(r.config);
                     }});
        s.add(Column{"mix", "", "workload mix name", ColumnKind::Text,
                     [](const SweepRow &r) {
                         return ColumnValue::ofText(r.mix);
                     }});
        s.add(Column{"seed", "", "RNG seed of this repeat",
                     ColumnKind::Count, [](const SweepRow &r) {
                         return ColumnValue::ofCount(r.seed);
                     }});
        auto count = [](std::string name, std::string desc,
                        std::function<std::uint64_t(
                            const SweepRow &)> f) {
            return Column{std::move(name), "ops", std::move(desc),
                          ColumnKind::Count,
                          [f = std::move(f)](const SweepRow &r) {
                              return ColumnValue::ofCount(f(r));
                          }};
        };
        auto real = [](std::string name, std::string unit,
                       std::string desc,
                       std::function<double(const SweepRow &)> f) {
            return Column{std::move(name), std::move(unit),
                          std::move(desc), ColumnKind::Real,
                          [f = std::move(f)](const SweepRow &r) {
                              return ColumnValue::ofReal(f(r));
                          }};
        };
        s.add(count("act_pre", "DRAM activate/precharge pairs",
                    [](const SweepRow &r) {
                        return r.result.ops.actPre;
                    }));
        s.add(count("cas", "DRAM column accesses (rd+wr)",
                    [](const SweepRow &r) {
                        return r.result.ops.cas();
                    }));
        s.add(count("refresh", "DRAM auto-refresh commands",
                    [](const SweepRow &r) {
                        return r.result.ops.refresh;
                    }));
        s.add(real("dynamic_energy", "CAU",
                   "dynamic energy over the window, column-access "
                   "units (ACT/PRE weighted 4x per the Micron "
                   "calibration)",
                   [](const SweepRow &r) {
                       return PowerModel{}.dynamicEnergy(r.result.ops);
                   }));
        s.add(real("dynamic_power", "CAU/s",
                   "dynamic power over the window (the Fig. 13 "
                   "numerator before normalisation)",
                   [](const SweepRow &r) {
                       return PowerModel{}.dynamicPower(
                           r.result.ops, r.result.measuredTicks);
                   }));
        s.add(real("energy_per_inst", "CAU/inst",
                   "dynamic energy per instruction in the window",
                   [](const SweepRow &r) {
                       const double insts = r.result.totalInsts();
                       return insts > 0.0
                           ? PowerModel{}.dynamicEnergy(r.result.ops)
                               / insts
                           : 0.0;
                   }));
        return s;
    }();
    return schema;
}

const ResultSchema &
ResultSchema::latencyBreakdown()
{
    static const ResultSchema schema = [] {
        ResultSchema s;
        s.add(Column{"config", "", "machine configuration name",
                     ColumnKind::Text, [](const SweepRow &r) {
                         return ColumnValue::ofText(r.config);
                     }});
        s.add(Column{"mix", "", "workload mix name", ColumnKind::Text,
                     [](const SweepRow &r) {
                         return ColumnValue::ofText(r.mix);
                     }});
        s.add(Column{"seed", "", "RNG seed of this repeat",
                     ColumnKind::Count, [](const SweepRow &r) {
                         return ColumnValue::ofCount(r.seed);
                     }});

        for (unsigned c = 0; c < numLatClasses; ++c) {
            const std::string cn =
                latClassName(static_cast<LatClass>(c));
            s.add(Column{cn + "_samples", "ops",
                         cn + " transactions completed",
                         ColumnKind::Count, [c](const SweepRow &r) {
                             return ColumnValue::ofCount(
                                 r.result.attribution.total.cls[c]
                                     .samples);
                         }});
            s.add(Column{cn + "_total_ns", "ns",
                         cn + ": mean end-to-end latency",
                         ColumnKind::Real, [c](const SweepRow &r) {
                             return ColumnValue::ofReal(
                                 r.result.attribution.total.cls[c]
                                     .meanTotalNs());
                         }});
            for (unsigned p = 0; p < numLatPhases; ++p) {
                const std::string pn =
                    latPhaseName(static_cast<LatPhase>(p));
                s.add(Column{cn + "_" + pn + "_ns", "ns",
                             cn + ": mean time in the " + pn
                                 + " phase",
                             ColumnKind::Real,
                             [c, p](const SweepRow &r) {
                                 return ColumnValue::ofReal(
                                     r.result.attribution.total
                                         .cls[c]
                                         .meanPhaseNs(p));
                             }});
            }
        }
        return s;
    }();
    return schema;
}

std::string
ResultSchema::csvHeader() const
{
    std::string out;
    for (size_t i = 0; i < cols.size(); ++i) {
        if (i)
            out += ',';
        out += cols[i].name;
    }
    return out;
}

std::string
ResultSchema::csvRow(const SweepRow &row) const
{
    std::string out;
    for (size_t i = 0; i < cols.size(); ++i) {
        if (i)
            out += ',';
        out += cols[i].get(row).csv();
    }
    return out;
}

std::string
ResultSchema::jsonRow(const SweepRow &row) const
{
    std::string out = "{";
    for (size_t i = 0; i < cols.size(); ++i) {
        if (i)
            out += ", ";
        out += '"' + jsonEscape(cols[i].name) + "\": "
            + cols[i].get(row).json();
    }
    out += '}';
    return out;
}

void
ResultSchema::writeCsv(const std::vector<SweepRow> &rows,
                       std::ostream &os) const
{
    os << csvHeader() << '\n';
    for (const auto &r : rows)
        os << csvRow(r) << '\n';
}

void
ResultSchema::writeJson(const std::vector<SweepRow> &rows,
                        std::ostream &os,
                        const std::string &manifest_json) const
{
    static const char *kindNames[] = {"text", "count", "real"};
    os << "{\n";
    if (!manifest_json.empty())
        os << "  \"manifest\": " << manifest_json << ",\n";
    os << "  \"columns\": [\n";
    for (size_t i = 0; i < cols.size(); ++i) {
        os << "    {\"name\": \"" << jsonEscape(cols[i].name)
           << "\", \"unit\": \"" << jsonEscape(cols[i].unit)
           << "\", \"kind\": \""
           << kindNames[static_cast<int>(cols[i].kind)]
           << "\", \"desc\": \"" << jsonEscape(cols[i].desc) << "\"}"
           << (i + 1 < cols.size() ? "," : "") << '\n';
    }
    os << "  ],\n  \"rows\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        os << "    " << jsonRow(rows[i])
           << (i + 1 < rows.size() ? "," : "") << '\n';
    }
    os << "  ]\n}\n";
}

} // namespace fbdp
