/**
 * @file
 * Diffing two runs' stats JSON with tolerances — the engine behind
 * the fbdp-report tool and the CI perf gate.
 *
 * Both inputs are arbitrary JSON documents (the simulator's
 * --stats-json dump, a google-benchmark results file, a telemetry
 * summary...).  Each document is flattened into dotted scalar paths
 * ("mc0.read_latency.p95", "benchmarks.BM_FullSystemSimRate.
 * items_per_second"), the two key sets are aligned, and every shared
 * numeric key is compared under a relative tolerance.  Keys present
 * on one side only are reported but are not failures unless strict
 * mode asks for them to be.
 *
 * Array elements are keyed by their "name" member when they have one
 * (google-benchmark's layout) and by index otherwise, so reordering
 * named entries does not produce spurious diffs.
 */

#ifndef FBDP_SYSTEM_RUNDIFF_HH
#define FBDP_SYSTEM_RUNDIFF_HH

#include <map>
#include <string>
#include <vector>

#include "common/json.hh"

namespace fbdp {

/** Direction of "worse" for a compared metric. */
enum class DiffDirection {
    TwoSided,     ///< any drift beyond tolerance fails
    HigherBetter, ///< only a drop beyond tolerance fails (rates)
    LowerBetter,  ///< only a rise beyond tolerance fails (latencies)
};

/** Flatten @p v into dotted-path scalars.  Strings and bools become
 *  text entries; numbers become numeric entries. */
struct FlatEntry
{
    bool numeric = false;
    double num = 0.0;
    std::string text; ///< set for strings/bools/null
};

/** Members named "manifest" / "fbdp_manifest" (run provenance, not
 *  metrics) are skipped unless @p include_manifest asks for them. */
std::map<std::string, FlatEntry>
flattenJson(const json::ValuePtr &v, bool include_manifest = false);

/** Comparison policy. */
struct DiffOptions
{
    /** Relative tolerance: |b - a| / max(|a|, eps) must stay <= tol.
     *  0 demands exact equality. */
    double tolerance = 0.10;

    DiffDirection direction = DiffDirection::TwoSided;

    /** Per-key tolerance overrides (exact path match). */
    std::map<std::string, double> keyTolerances;

    /** When non-empty, only paths containing one of these substrings
     *  are compared. */
    std::vector<std::string> only;

    /** Paths containing any of these substrings are skipped. */
    std::vector<std::string> ignore;

    /** Keys present on one side only become failures. */
    bool strict = false;
};

/** One compared key. */
struct DiffEntry
{
    std::string key;
    double a = 0.0;
    double b = 0.0;
    double relDelta = 0.0; ///< (b - a) / max(|a|, eps)
    bool regression = false;
    bool textMismatch = false; ///< non-numeric values differed
    std::string textA, textB;
};

/** Outcome of one diff. */
struct DiffReport
{
    std::vector<DiffEntry> changed;  ///< beyond tolerance (worse or
                                     ///< drifted, per direction)
    std::vector<DiffEntry> withinTol;///< compared, within tolerance
    std::vector<std::string> onlyA;  ///< keys missing from run B
    std::vector<std::string> onlyB;  ///< keys missing from run A
    std::size_t compared = 0;

    bool strictUsed = false;

    /** True when the gate should fail. */
    bool
    failed() const
    {
        for (const DiffEntry &e : changed) {
            if (e.regression || e.textMismatch)
                return true;
        }
        return strictUsed && (!onlyA.empty() || !onlyB.empty());
    }
};

/** Compare two flattened runs under @p opt. */
DiffReport diffRuns(const std::map<std::string, FlatEntry> &a,
                    const std::map<std::string, FlatEntry> &b,
                    const DiffOptions &opt);

/** Human-readable summary table of @p r (regressions first). */
void printDiffReport(const DiffReport &r, std::ostream &os,
                     bool verbose = false);

} // namespace fbdp

#endif // FBDP_SYSTEM_RUNDIFF_HH
