#include "system/ledger.hh"

#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "power/power_model.hh"
#include "system/metrics.hh"

namespace fbdp {

namespace {

void
metric(std::ostringstream &os, bool &first, const char *key, double v)
{
    os << (first ? "" : ", ") << '"' << key
       << "\": " << json::encodeNumber(v);
    first = false;
}

void
metric(std::ostringstream &os, bool &first, const char *key,
       std::uint64_t v)
{
    os << (first ? "" : ", ") << '"' << key
       << "\": " << json::encodeNumber(v);
    first = false;
}

} // namespace

std::string
ledgerRecordJson(const RunManifest &m, const SweepRow &row)
{
    const RunResult &r = row.result;
    std::ostringstream os;
    os << "{\"schema\": \"" << ledgerSchema << "\", \"manifest\": "
       << m.json() << ", \"config\": \"" << jsonEscape(row.config)
       << "\", \"mix\": \"" << jsonEscape(row.mix)
       << "\", \"seed\": " << row.seed << ", \"metrics\": {";

    bool first = true;
    // Simulated outcomes — deterministic for a given digest.
    metric(os, first, "ipc_sum", r.ipcSum());
    metric(os, first, "avg_read_latency_ns", r.avgReadLatencyNs);
    metric(os, first, "bandwidth_gbs", r.bandwidthGBs);
    metric(os, first, "reads", r.reads);
    metric(os, first, "writes", r.writes);
    metric(os, first, "amb_hits", r.ambHits);
    metric(os, first, "coverage", r.coverage);
    metric(os, first, "efficiency", r.efficiency);
    metric(os, first, "demand_p99_ns", r.latDemand.p99Ns);
    metric(os, first, "pref_hit_p99_ns", r.latPrefHit.p99Ns);
    metric(os, first, "write_p99_ns", r.latWrite.p99Ns);
    metric(os, first, "dynamic_power",
           PowerModel{}.dynamicPower(r.ops, r.measuredTicks));
    {
        const double insts = r.totalInsts();
        metric(os, first, "energy_per_inst",
               insts > 0.0
                   ? PowerModel{}.dynamicEnergy(r.ops) / insts
                   : 0.0);
    }
    // Host facts — the sim-rate trend --history exists to watch.
    metric(os, first, "insts_per_sec", r.instsPerHostSec());
    metric(os, first, "events_per_sec", r.kernel.eventsPerSec());
    metric(os, first, "host_event_seconds",
           r.kernel.hostEventSeconds);

    os << "}}";
    return os.str();
}

bool
appendLedgerRecord(const std::string &path,
                   const std::string &record_json, std::string *error)
{
    std::ofstream os(path, std::ios::app);
    if (!os) {
        if (error)
            *error = "cannot open ledger '" + path + "' for append";
        return false;
    }
    os << record_json << '\n';
    os.flush();
    if (!os) {
        if (error)
            *error = "short write appending to ledger '" + path + "'";
        return false;
    }
    return true;
}

std::vector<json::ValuePtr>
readLedger(const std::string &path, std::string *error)
{
    std::vector<json::ValuePtr> records;
    std::ifstream is(path);
    if (!is) {
        if (error)
            *error = "cannot read ledger '" + path + "'";
        return records;
    }
    std::string line;
    std::size_t lineNo = 0;
    while (std::getline(is, line)) {
        ++lineNo;
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        json::ParseResult pr = json::parse(line);
        if (!pr.ok()) {
            if (error)
                *error = csprintf("%s:%zu: %s", path.c_str(), lineNo,
                                  pr.error.c_str());
            records.clear();
            return records;
        }
        records.push_back(pr.value);
    }
    return records;
}

namespace {

/** The record's manifest config digest, or "" if it is not a ledger
 *  record at all. */
std::string
recordDigest(const json::ValuePtr &rec)
{
    if (!rec || !rec->isObject())
        return "";
    const json::ValuePtr schema = rec->get("schema");
    if (!schema || !schema->isString()
        || schema->asString() != ledgerSchema)
        return "";
    const json::ValuePtr m = rec->get("manifest");
    if (!m || !m->isObject())
        return "";
    const json::ValuePtr d = m->get("config_digest");
    if (!d || !d->isString())
        return "";
    return d->asString();
}

std::string
recordLabel(const json::ValuePtr &rec, const char *key)
{
    const json::ValuePtr v = rec->get(key);
    return v && v->isString() ? v->asString() : "";
}

} // namespace

HistoryReport
analyzeHistory(const std::vector<json::ValuePtr> &records,
               const HistoryOptions &opt)
{
    HistoryReport rep;

    // Valid ledger records, file order.
    std::vector<json::ValuePtr> valid;
    std::vector<std::string> digests;
    for (const json::ValuePtr &rec : records) {
        std::string d = recordDigest(rec);
        if (d.empty())
            continue;
        valid.push_back(rec);
        digests.push_back(std::move(d));
    }
    if (valid.empty()) {
        rep.error = "ledger holds no records";
        return rep;
    }

    rep.digest = opt.digest.empty() ? digests.back() : opt.digest;

    std::vector<json::ValuePtr> matching;
    for (std::size_t i = 0; i < valid.size(); ++i) {
        if (digests[i] == rep.digest)
            matching.push_back(valid[i]);
    }
    rep.matching = matching.size();
    if (opt.lastN > 0 && matching.size() > opt.lastN)
        matching.erase(matching.begin(),
                       matching.end()
                           - static_cast<std::ptrdiff_t>(opt.lastN));
    rep.window = matching.size();
    if (rep.window < 2) {
        rep.error = csprintf(
            "need >= 2 records with digest %s to trend (have %zu)",
            rep.digest.c_str(), rep.window);
        return rep;
    }

    rep.config = recordLabel(matching.back(), "config");
    rep.mix = recordLabel(matching.back(), "mix");

    // Baseline: per-metric mean over the prior records (text metrics
    // keep the most recent prior value).
    std::map<std::string, FlatEntry> baseline;
    std::map<std::string, std::size_t> counts;
    for (std::size_t i = 0; i + 1 < matching.size(); ++i) {
        const json::ValuePtr metrics = matching[i]->get("metrics");
        if (!metrics)
            continue;
        for (auto &[key, entry] : flattenJson(metrics)) {
            auto it = baseline.find(key);
            if (it == baseline.end()) {
                baseline.emplace(key, entry);
                counts[key] = 1;
            } else if (entry.numeric && it->second.numeric) {
                it->second.num += entry.num;
                ++counts[key];
            } else {
                it->second = entry;  // text: most recent wins
                counts[key] = 1;
            }
        }
    }
    for (auto &[key, entry] : baseline) {
        if (entry.numeric && counts[key] > 1)
            entry.num /= static_cast<double>(counts[key]);
    }

    const json::ValuePtr candMetrics = matching.back()->get("metrics");
    std::map<std::string, FlatEntry> candidate;
    if (candMetrics)
        candidate = flattenJson(candMetrics);

    DiffOptions dopt;
    dopt.tolerance = opt.tolerance;
    dopt.direction = opt.direction;
    dopt.only = opt.only;
    dopt.ignore = opt.ignore;
    rep.diff = diffRuns(baseline, candidate, dopt);
    return rep;
}

void
printHistoryReport(const HistoryReport &r, std::ostream &os,
                   bool verbose)
{
    if (!r.ok()) {
        os << "history: " << r.error << '\n';
        return;
    }
    os << "history: digest " << r.digest;
    if (!r.config.empty())
        os << " (" << r.config << '/' << r.mix << ')';
    os << ": newest record vs mean of " << (r.window - 1)
       << " prior record" << (r.window == 2 ? "" : "s");
    if (r.matching != r.window)
        os << " (of " << r.matching << " matching)";
    os << '\n';
    printDiffReport(r.diff, os, verbose);
}

} // namespace fbdp
