#include "system/metrics.hh"

#include <algorithm>
#include <cstdio>

#include "common/logging.hh"

namespace fbdp {

TextTable::TextTable(std::vector<std::string> headers)
    : head(std::move(headers))
{
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    fbdp_assert(cells.size() == head.size(),
                "row width %zu != header width %zu",
                cells.size(), head.size());
    body.push_back(std::move(cells));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<size_t> width(head.size(), 0);
    for (size_t c = 0; c < head.size(); ++c)
        width[c] = head[c].size();
    for (const auto &row : body) {
        for (size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    }

    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size()) {
                for (size_t k = row[c].size(); k < width[c] + 2; ++k)
                    os << ' ';
            }
        }
        os << '\n';
    };

    emit(head);
    size_t total = 0;
    for (size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c + 1 < width.size() ? 2 : 0);
    for (size_t k = 0; k < total; ++k)
        os << '-';
    os << '\n';
    for (const auto &row : body)
        emit(row);
}

std::string
fmtD(double v, int prec)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}

std::string
fmtPct(double ratio, int prec)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", prec, ratio * 100.0);
    return buf;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char ch : s) {
        switch (ch) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                // Remaining control characters have no short escape;
                // the unsigned-char cast keeps the value in 00..1f
                // even where plain char is signed.
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(ch)));
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    return out;
}

double
meanOf(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0.0;
    for (double x : v)
        s += x;
    return s / static_cast<double>(v.size());
}

} // namespace fbdp
