/**
 * @file
 * Experiment helpers shared by the benches, examples and tests:
 * running a workload mix on a configuration (serially or as a batch
 * on a worker pool), caching the single-core DDR2 reference IPCs, and
 * computing the paper's SMT-speedup metric.
 */

#ifndef FBDP_SYSTEM_RUNNER_HH
#define FBDP_SYSTEM_RUNNER_HH

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "system/config.hh"
#include "system/system.hh"
#include "workload/mixes.hh"

namespace fbdp {

/** Run @p mix on @p base (benchmarks/core count filled from the mix). */
RunResult runMix(const SystemConfig &base, const WorkloadMix &mix);

/** One unit of batch work: a machine, optionally paired with a mix
 *  whose benchmarks overwrite the configuration's. */
struct RunCell
{
    SystemConfig cfg;
    const WorkloadMix *mix = nullptr;
};

/**
 * Run every cell, each as an isolated System on a worker pool, and
 * return the results in input order (deterministic regardless of
 * completion order).  @p jobs 0 resolves via FBDP_JOBS, else serial.
 */
std::vector<RunResult> runCells(const std::vector<RunCell> &cells,
                                unsigned jobs = 0);

/**
 * Worker count requested by the FBDP_JOBS environment variable.
 * Accepted values are decimal integers in [1, 1024]; unset or empty
 * means serial (1).  Anything else — non-numeric text, trailing
 * junk, zero, negatives, absurd counts — logs a warning and falls
 * back to serial rather than silently misconfiguring the pool.
 */
unsigned jobsFromEnv();

/**
 * Per-program reference IPCs: each program alone on a single-core
 * machine with two-channel DDR2 (the paper's reference points).
 * Results are computed lazily and cached for the object lifetime.
 * Thread-safe: concurrent ipcOf() calls serialise on an internal
 * mutex (a miss simulates while holding it, so warming the cache is
 * sequential; hits are cheap lookups).
 */
class ReferenceSet
{
  public:
    /** @param ref_base the reference machine (workload ignored). */
    explicit ReferenceSet(SystemConfig ref_base);

    /** Reference IPC of @p bench (simulating on first use). */
    double ipcOf(const std::string &bench);

  private:
    SystemConfig base;
    std::mutex mtx;
    std::map<std::string, double> cache;
};

/**
 * SMT speedup (Section 4.2):
 *   sum_i IPC_cmp[i] / IPC_single[i]
 * where IPC_single comes from @p refs.
 */
double smtSpeedup(const RunResult &r, const WorkloadMix &mix,
                  ReferenceSet &refs);

/** Scale per-run instruction counts from the environment.
 *  FBDP_MEASURE_INSTS / FBDP_WARMUP_INSTS override the defaults;
 *  benches use this so `--quick` and CI runs stay cheap. */
void applyInstsFromEnv(SystemConfig &cfg);

/**
 * Validate a per-run lane count (the `--threads` flag / FBDP_THREADS
 * variable) with the same rules as jobsFromEnv: decimal integers in
 * [1, 1024] are accepted, anything else — non-numeric text, trailing
 * junk, zero, negatives, absurd counts — warns and falls back to 1.
 * Counts above std::thread::hardware_concurrency are clamped to it
 * with a warning: more lanes than host CPUs can only add barrier
 * overhead (results are thread-count-invariant either way).
 * @p origin names the source in warnings ("--threads",
 * "FBDP_THREADS").
 */
unsigned parseThreadCount(const char *text, const char *origin);

/** Apply FBDP_THREADS (validated by parseThreadCount) to
 *  cfg.threads; unset or empty leaves the config untouched. */
void applyThreadsFromEnv(SystemConfig &cfg);

} // namespace fbdp

#endif // FBDP_SYSTEM_RUNNER_HH
