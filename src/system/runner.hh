/**
 * @file
 * Experiment helpers shared by the benches, examples and tests:
 * running a workload mix on a configuration, caching the single-core
 * DDR2 reference IPCs, and computing the paper's SMT-speedup metric.
 */

#ifndef FBDP_SYSTEM_RUNNER_HH
#define FBDP_SYSTEM_RUNNER_HH

#include <map>
#include <string>

#include "system/config.hh"
#include "system/system.hh"
#include "workload/mixes.hh"

namespace fbdp {

/** Run @p mix on @p base (benchmarks/core count filled from the mix). */
RunResult runMix(const SystemConfig &base, const WorkloadMix &mix);

/**
 * Per-program reference IPCs: each program alone on a single-core
 * machine with two-channel DDR2 (the paper's reference points).
 * Results are computed lazily and cached for the process lifetime.
 */
class ReferenceSet
{
  public:
    /** @param ref_base the reference machine (workload ignored). */
    explicit ReferenceSet(SystemConfig ref_base);

    /** Reference IPC of @p bench (simulating on first use). */
    double ipcOf(const std::string &bench);

  private:
    SystemConfig base;
    std::map<std::string, double> cache;
};

/**
 * SMT speedup (Section 4.2):
 *   sum_i IPC_cmp[i] / IPC_single[i]
 * where IPC_single comes from @p refs.
 */
double smtSpeedup(const RunResult &r, const WorkloadMix &mix,
                  ReferenceSet &refs);

/** Scale per-run instruction counts from the environment.
 *  FBDP_MEASURE_INSTS / FBDP_WARMUP_INSTS override the defaults;
 *  benches use this so `--quick` and CI runs stay cheap. */
void applyInstsFromEnv(SystemConfig &cfg);

} // namespace fbdp

#endif // FBDP_SYSTEM_RUNNER_HH
