/**
 * @file
 * Whole-system configuration and the paper's preset configurations.
 *
 * Defaults reproduce Table 1 / Table 2 / Section 5's default setting:
 * 4 GHz cores, 64 KB 2-way L1s, a shared 4 MB 4-way L2, two logic
 * channels (each two ganged physical channels) of DDR2-667, four DIMMs
 * per channel, four banks per DIMM, close-page cacheline interleaving,
 * software prefetching on.  The AMB-prefetching preset switches to
 * four-cacheline (multi-cacheline) interleaving with a 64-entry fully
 * associative AMB cache, as in Section 5.2.
 */

#ifndef FBDP_SYSTEM_CONFIG_HH
#define FBDP_SYSTEM_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cache/hierarchy.hh"
#include "common/types.hh"
#include "mc/address_map.hh"
#include "mc/controller.hh"
#include "system/prefetch_config.hh"

namespace fbdp {

/** Everything needed to build and run one simulated machine. */
struct SystemConfig
{
    // --- workload ---
    std::vector<std::string> benchmarks;  ///< one per core
    std::uint64_t warmupInsts = 300'000;
    std::uint64_t measureInsts = 1'000'000;
    /**
     * Trace prefix replayed functionally (no timing) through the
     * cache tags before simulation starts, standing in for the warm
     * caches of a SimPoint checkpoint.  0 derives a default from the
     * L2 size and core count.
     */
    std::uint64_t functionalWarmupOps = 0;
    std::uint64_t seed = 1;
    bool swPrefetch = true;

    // --- processor ---
    unsigned rob = 196;
    unsigned lq = 32;
    unsigned sq = 32;

    // --- caches ---
    HierConfig hier;

    // --- memory subsystem ---
    bool fbd = true;              ///< FB-DIMM vs conventional DDR2
    unsigned logicChannels = 2;   ///< each = two ganged physical ch.
    unsigned dimmsPerChannel = 4;
    unsigned banksPerDimm = 4;
    unsigned dataRate = 667;      ///< MT/s (533 / 667 / 800)
    Interleave scheme = Interleave::Cacheline;
    bool vrl = false;
    unsigned writeDrainHigh = 16;  ///< start draining writes here
    unsigned writeDrainLow = 4;    ///< stop draining here
    bool refreshEnable = true;     ///< DDR2 auto-refresh (tREFI/tRFC)

    // --- DRAM-level prefetching ---
    /**
     * The AMB attachment point: policy + buffer shape of the per-DIMM
     * AMB caches.  The FBD-AP preset is the canned spec
     * "region,entries=64,ways=0"; select other policies with e.g.
     * PrefetchConfig::parse("dspatch,degree=2").
     */
    PrefetchConfig ambPrefetch;
    /**
     * The controller attachment point: prefetches cross the channel
     * into a buffer at the MC (the Section 6 comparison class).
     * Mutually exclusive with ambPrefetch.
     */
    PrefetchConfig mcBufPrefetch{"none", 0, 256, 0, 0.0};

    unsigned regionLines = 4;     ///< K of the address interleaving
    bool apFullLatency = false;   ///< APFL analysis mode

    // --- deprecated prefetch mirrors ---
    // Honoured (with a one-time warning) only while the nested block
    // above is untouched; new code should set ambPrefetch /
    // mcBufPrefetch instead.  Presets keep them in sync so existing
    // readers observe the same values.
    bool apEnable = false;
    unsigned ambEntries = 64;
    unsigned ambWays = 0;         ///< 0 = fully associative
    bool mcPrefetch = false;
    unsigned mcEntries = 256;
    unsigned mcWays = 0;
    /** Hardware stream prefetcher at the L2 (Section 5.4's
     *  speculation). Configure via hier.hwPrefetch for detail. */
    bool hwPrefetch = false;

    // --- observability ---
    /**
     * Latency-phase attribution: stamp every transaction's phase
     * boundaries and account stall cycles to the phase of the
     * blocking transaction.  Observer-only — enabling it never
     * changes simulation results.
     */
    bool attribution = false;

    /**
     * Kernel self-profiling: time every shard round (busy vs mailbox
     * drain), every lane's barrier waits, and the cross-shard mailbox
     * traffic, into KernelProfile::shards/lanes.  Observer-only —
     * simulation results are bit-identical with it on or off; the cost
     * is a pair of clock reads per active shard per round.  Surfaced
     * by `fbdpsim --profile-kernel`, the --stats-json "kernel" block
     * and the kernel.* telemetry gauges.
     */
    bool profileKernel = false;

    // --- execution ---
    /**
     * Worker threads for the sharded event kernel: the core/cache
     * shard plus one shard per logic channel are spread over this many
     * lanes, synchronizing at every memory-cycle frame.  Results are
     * bit-identical for every value — the kernel executes the same
     * staged schedule whether the lanes run serially (threads == 1) or
     * on a thread pool — so this knob trades host CPUs for sim-rate
     * only.  Clamped to 1 + logicChannels (more lanes than shards
     * cannot help).
     */
    unsigned threads = 1;

    /** Number of cores (== benchmarks.size() once assigned). */
    unsigned
    nCores() const
    {
        return static_cast<unsigned>(benchmarks.size());
    }

    /** Conventional DDR2 baseline (Fig. 4/5/6 "DDR2"). */
    static SystemConfig ddr2();

    /** FB-DIMM without AMB prefetching ("FBD"). */
    static SystemConfig fbdBase();

    /** FB-DIMM with AMB prefetching ("FBD-AP", Section 5.2 default). */
    static SystemConfig fbdAp();

    /**
     * ambPrefetch with the deprecated mirrors folded in: when the
     * nested block is disabled but the legacy apEnable flag is set,
     * the legacy fields are honoured as a region policy (and a
     * one-time deprecation warning is emitted).
     */
    PrefetchConfig resolvedAmbPrefetch() const;

    /** mcBufPrefetch with the deprecated mirrors folded in. */
    PrefetchConfig resolvedMcPrefetch() const;

    /** Derived controller configuration for one logic channel. */
    ControllerConfig controllerConfig() const;

    /** Derived address-map configuration. */
    AddressMapConfig addressMapConfig() const;
};

} // namespace fbdp

#endif // FBDP_SYSTEM_CONFIG_HH
