#include "system/progress.hh"

#include <algorithm>
#include <cmath>

#include "common/json.hh"
#include "common/logging.hh"
#include "system/metrics.hh"
#include "system/system.hh"

namespace fbdp {

namespace {

/** Human ETA: "1h02m", "3m20s", "12s", "0.4s". */
std::string
fmtEta(double seconds)
{
    if (!(seconds >= 0.0) || !std::isfinite(seconds))
        return "?";
    if (seconds >= 3600.0) {
        const auto h = static_cast<unsigned>(seconds / 3600.0);
        const auto m = static_cast<unsigned>(
            (seconds - h * 3600.0) / 60.0);
        return csprintf("%uh%02um", h, m);
    }
    if (seconds >= 60.0) {
        const auto m = static_cast<unsigned>(seconds / 60.0);
        const auto s = static_cast<unsigned>(seconds - m * 60.0);
        return csprintf("%um%02us", m, s);
    }
    if (seconds >= 10.0)
        return csprintf("%.0fs", seconds);
    return csprintf("%.1fs", seconds);
}

/** "421k", "8.2M", "1.3G" — counters on a one-line budget. */
std::string
fmtCount(double v)
{
    if (v >= 1e9)
        return csprintf("%.2fG", v / 1e9);
    if (v >= 1e6)
        return csprintf("%.2fM", v / 1e6);
    if (v >= 1e3)
        return csprintf("%.0fk", v / 1e3);
    return csprintf("%.0f", v);
}

} // namespace

double
HeartbeatSample::fraction() const
{
    if (instsTarget == 0)
        return 0.0;
    return std::min(1.0, static_cast<double>(instsDone)
                             / static_cast<double>(instsTarget));
}

double
HeartbeatSample::etaSeconds() const
{
    if (instsPerSec <= 0.0 || instsDone >= instsTarget)
        return 0.0;
    return static_cast<double>(instsTarget - instsDone) / instsPerSec;
}

// Default sink: observe nothing.
void ProgressSink::sweepStarted(std::size_t, unsigned) {}
void ProgressSink::cellStarted(std::size_t, const CellId &) {}
void ProgressSink::cellFinished(std::size_t, const CellId &, double) {}
void ProgressSink::cellFailed(std::size_t, const CellId &,
                              const std::string &) {}
void ProgressSink::sweepFinished(double) {}
void ProgressSink::runHeartbeat(const HeartbeatSample &) {}

void
SweepEta::start(std::size_t cells, unsigned n)
{
    total = cells;
    jobs = n ? n : 1;
    done = 0;
    wallSum = 0.0;
}

void
SweepEta::finished(double wall_seconds)
{
    ++done;
    wallSum += wall_seconds;
}

double
SweepEta::etaSeconds() const
{
    if (done == 0 || done >= total)
        return 0.0;
    const double mean = wallSum / static_cast<double>(done);
    return mean * static_cast<double>(total - done)
        / static_cast<double>(jobs);
}

// --- TerminalProgress ---------------------------------------------------

TerminalProgress::TerminalProgress(std::ostream &os) : out(os) {}

bool
TerminalProgress::throttled()
{
    const auto now = std::chrono::steady_clock::now();
    if (drawn && now - lastDraw < std::chrono::milliseconds(100))
        return true;
    lastDraw = now;
    return false;
}

void
TerminalProgress::line(const std::string &text, bool final_line)
{
    out << '\r' << text;
    // Blank out the tail of a longer previous line.
    if (text.size() < lastLen)
        out << std::string(lastLen - text.size(), ' ');
    lastLen = text.size();
    if (final_line) {
        out << '\n';
        lastLen = 0;
        drawn = false;
    } else {
        drawn = true;
    }
    out.flush();
}

void
TerminalProgress::sweepStarted(std::size_t cells, unsigned jobs)
{
    eta.start(cells, jobs);
    line(csprintf("sweep: 0/%zu cells (%u job%s)", cells, jobs,
                  jobs == 1 ? "" : "s"),
         false);
}

void
TerminalProgress::cellFinished(std::size_t, const CellId &id,
                               double wall_seconds)
{
    eta.finished(wall_seconds);
    const bool last = eta.done >= eta.total;
    if (!last && throttled())
        return;
    std::string text = csprintf("sweep: %zu/%zu cells", eta.done,
                                eta.total);
    if (!last)
        text += csprintf("  eta %s", fmtEta(eta.etaSeconds()).c_str());
    text += csprintf("  [%s/%s seed %llu %.1fs]", id.config.c_str(),
                     id.mix.c_str(),
                     static_cast<unsigned long long>(id.seed),
                     wall_seconds);
    line(text, false);
}

void
TerminalProgress::cellFailed(std::size_t index, const CellId &id,
                             const std::string &what)
{
    // Failures always land on their own durable line.
    line(csprintf("sweep: cell %zu FAILED [%s/%s seed %llu]: %s",
                  index, id.config.c_str(), id.mix.c_str(),
                  static_cast<unsigned long long>(id.seed),
                  what.c_str()),
         true);
}

void
TerminalProgress::sweepFinished(double wall_seconds)
{
    line(csprintf("sweep: %zu/%zu cells done in %s", eta.done,
                  eta.total, fmtEta(wall_seconds).c_str()),
         true);
}

void
TerminalProgress::runHeartbeat(const HeartbeatSample &hb)
{
    const bool last = hb.instsDone >= hb.instsTarget
        && hb.instsTarget != 0;
    if (!last && throttled())
        return;
    std::string text = csprintf(
        "run: %s/%s insts (%.0f%%)  %s insts/s",
        fmtCount(static_cast<double>(hb.instsDone)).c_str(),
        fmtCount(static_cast<double>(hb.instsTarget)).c_str(),
        hb.fraction() * 100.0,
        fmtCount(hb.instsPerSec).c_str());
    if (!last)
        text += csprintf("  eta %s",
                         fmtEta(hb.etaSeconds()).c_str());
    line(text, last);
}

// --- JsonlProgress ------------------------------------------------------

JsonlProgress::JsonlProgress(std::ostream &os, const RunManifest *m)
    : out(os)
{
    if (m) {
        out << "{\"event\": \"manifest\", \"manifest\": " << m->json()
            << "}\n";
        out.flush();
    }
}

void
JsonlProgress::sweepStarted(std::size_t cells, unsigned jobs)
{
    eta.start(cells, jobs);
    out << "{\"event\": \"sweep_started\", \"cells\": " << cells
        << ", \"jobs\": " << jobs << "}\n";
    out.flush();
}

void
JsonlProgress::cellStarted(std::size_t index, const CellId &id)
{
    out << "{\"event\": \"cell_started\", \"index\": " << index
        << ", \"config\": \"" << jsonEscape(id.config)
        << "\", \"mix\": \"" << jsonEscape(id.mix)
        << "\", \"seed\": " << id.seed << "}\n";
    out.flush();
}

void
JsonlProgress::cellFinished(std::size_t index, const CellId &id,
                            double wall_seconds)
{
    eta.finished(wall_seconds);
    out << "{\"event\": \"cell_finished\", \"index\": " << index
        << ", \"config\": \"" << jsonEscape(id.config)
        << "\", \"mix\": \"" << jsonEscape(id.mix)
        << "\", \"seed\": " << id.seed
        << ", \"wall_seconds\": " << json::encodeNumber(wall_seconds)
        << ", \"done\": " << eta.done
        << ", \"total\": " << eta.total << ", \"eta_seconds\": "
        << json::encodeNumber(eta.etaSeconds()) << "}\n";
    out.flush();
}

void
JsonlProgress::cellFailed(std::size_t index, const CellId &id,
                          const std::string &what)
{
    out << "{\"event\": \"cell_failed\", \"index\": " << index
        << ", \"config\": \"" << jsonEscape(id.config)
        << "\", \"mix\": \"" << jsonEscape(id.mix)
        << "\", \"seed\": " << id.seed << ", \"error\": \""
        << jsonEscape(what) << "\"}\n";
    out.flush();
}

void
JsonlProgress::sweepFinished(double wall_seconds)
{
    out << "{\"event\": \"sweep_finished\", \"done\": " << eta.done
        << ", \"total\": " << eta.total << ", \"wall_seconds\": "
        << json::encodeNumber(wall_seconds) << "}\n";
    out.flush();
}

void
JsonlProgress::runHeartbeat(const HeartbeatSample &hb)
{
    out << "{\"event\": \"heartbeat\", \"sim_ns\": "
        << json::encodeNumber(ticksToNs(hb.now))
        << ", \"insts_done\": " << hb.instsDone
        << ", \"insts_target\": " << hb.instsTarget
        << ", \"fraction\": " << json::encodeNumber(hb.fraction())
        << ", \"host_seconds\": "
        << json::encodeNumber(hb.hostSeconds)
        << ", \"insts_per_sec\": "
        << json::encodeNumber(hb.instsPerSec) << ", \"eta_seconds\": "
        << json::encodeNumber(hb.etaSeconds()) << "}\n";
    out.flush();
}

// --- ProgressMux --------------------------------------------------------

void
ProgressMux::sweepStarted(std::size_t cells, unsigned jobs)
{
    for (ProgressSink *s : sinks)
        s->sweepStarted(cells, jobs);
}

void
ProgressMux::cellStarted(std::size_t index, const CellId &id)
{
    for (ProgressSink *s : sinks)
        s->cellStarted(index, id);
}

void
ProgressMux::cellFinished(std::size_t index, const CellId &id,
                          double wall_seconds)
{
    for (ProgressSink *s : sinks)
        s->cellFinished(index, id, wall_seconds);
}

void
ProgressMux::cellFailed(std::size_t index, const CellId &id,
                        const std::string &what)
{
    for (ProgressSink *s : sinks)
        s->cellFailed(index, id, what);
}

void
ProgressMux::sweepFinished(double wall_seconds)
{
    for (ProgressSink *s : sinks)
        s->sweepFinished(wall_seconds);
}

void
ProgressMux::runHeartbeat(const HeartbeatSample &hb)
{
    for (ProgressSink *s : sinks)
        s->runHeartbeat(hb);
}

// --- ProgressPulse ------------------------------------------------------

ProgressPulse::ProgressPulse(System &system, Tick period_ticks,
                             ProgressSink &progress_sink)
    : sys(system),
      eq(system.eventQueue()),
      period(period_ticks),
      sink(progress_sink),
      // Fire after every same-tick completion and CPU advance — the
      // telemetry boundary priority, proven observer-invisible.
      beatEvent([this] { fire(); }, Event::prioCpu + 5)
{
    fbdp_assert(period > 0, "progress pulse period must be positive");
    const SystemConfig &cfg = sys.config();
    const unsigned n = cfg.nCores();
    prevInsts.assign(n, 0);
    instsTarget =
        static_cast<std::uint64_t>(n)
        * (cfg.warmupInsts + cfg.measureInsts);
}

ProgressPulse::~ProgressPulse()
{
    if (beatEvent.scheduled())
        eq.deschedule(&beatEvent);
}

void
ProgressPulse::start()
{
    nBeats = 0;
    instsAccum = 0;
    std::fill(prevInsts.begin(), prevInsts.end(), 0);
    t0 = std::chrono::steady_clock::now();
    nextAt = (eq.now() / period + 1) * period;
    eq.schedule(&beatEvent, nextAt);
}

void
ProgressPulse::fire()
{
    sample();
    nextAt += period;
    eq.schedule(&beatEvent, nextAt);
}

void
ProgressPulse::finish()
{
    if (beatEvent.scheduled())
        eq.deschedule(&beatEvent);
    // One settling sample so the stream always ends at the final
    // instruction count.
    sample();
    nextAt = 0;
}

void
ProgressPulse::sample()
{
    // Per-core counters are cumulative but zeroed by the mid-run
    // resetStats() between warm-up and measurement; accumulate deltas
    // with a restart guard instead of reading them raw.
    for (unsigned i = 0; i < prevInsts.size(); ++i) {
        const std::uint64_t cur = sys.core(i).insts();
        instsAccum += cur >= prevInsts[i] ? cur - prevInsts[i] : cur;
        prevInsts[i] = cur;
    }

    HeartbeatSample hb;
    hb.now = eq.now();
    hb.instsDone = instsAccum;
    hb.instsTarget = instsTarget;
    hb.hostSeconds = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - t0).count();
    hb.instsPerSec = hb.hostSeconds > 0.0
        ? static_cast<double>(instsAccum) / hb.hostSeconds
        : 0.0;
    ++nBeats;
    sink.runHeartbeat(hb);
}

} // namespace fbdp
