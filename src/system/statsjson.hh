/**
 * @file
 * Machine-readable dump of everything a run measured — the input side
 * of the fbdp-report run-diff tool.
 *
 * One JSON document with seven sections:
 *   "run"       the canonical sweep-row columns (ResultSchema::
 *               sweepRows), so a stats dump can be diffed against
 *               sweep output directly;
 *   "latency"   per-class latency percentiles (latencyPercentiles);
 *   "kernel"    event-kernel profile (kernelStats) — host-time rates
 *               live only here, so a diff can ignore the section.
 *               When the run was profiled (--profile-kernel) the
 *               section additionally carries "shards": [...] and
 *               "lanes": [...] (name-keyed, so fbdp-report flattens
 *               them as kernel.shards.ch0.events etc.) plus the
 *               event/busy imbalance summaries;
 *   "power"     DRAM op counts and the PowerModel's dynamic
 *               energy/power over the window (powerStats);
 *   "prefetch"  the prefetch-policy quality block (prefetchStats);
 *   "breakdown" per-class latency-phase means (latencyBreakdown;
 *               zeros unless --attribution was on);
 *   "groups"    every StatGroup from System::buildStatGroups(), stat
 *               by stat — counters as numbers, averages and
 *               histograms as summary objects (including p50/p95/p99).
 */

#ifndef FBDP_SYSTEM_STATSJSON_HH
#define FBDP_SYSTEM_STATSJSON_HH

#include <ostream>

#include "system/results.hh"

namespace fbdp {

struct RunManifest;

/** Write the full stats document for @p row's run to @p os.
 *  @p sys must be the System the row was collected from (its live
 *  stat groups are walked for the "groups" section).  A non-null
 *  @p manifest becomes a single-line "manifest" member, first in the
 *  document — removing that one line recovers the manifest-free
 *  bytes. */
void writeRunStatsJson(const System &sys, const SweepRow &row,
                       std::ostream &os,
                       const RunManifest *manifest = nullptr);

} // namespace fbdp

#endif // FBDP_SYSTEM_STATSJSON_HH
