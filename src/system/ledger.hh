/**
 * @file
 * The cross-run ledger: a durable, append-only line of sight across
 * simulations.
 *
 * Every run (or sweep cell) can append one single-line JSON record —
 * its manifest plus the headline metrics — to a `runs.jsonl` file.
 * Records accumulate across sessions, branches and machines, which
 * turns three questions that used to need archaeology into one file
 * read:
 *
 *  - "did this exact configuration get slower since last week?"
 *    (`fbdp-report --history`: the newest record vs the mean of its
 *    predecessors with the same config digest, under the rundiff
 *    tolerance machinery),
 *  - "what changed between those runs?" (each record embeds the full
 *    manifest: git SHA, build type, compiler, host),
 *  - "what does the fleet look like?" (`fbdp-dash` renders the ledger
 *    as a static HTML dashboard).
 *
 * Schema `fbdp-ledger-v1`: {"schema", "manifest": {...}, "config",
 * "mix", "seed", "metrics": {...}}, one object per line.  Counters
 * are written as exact integers and non-finite metrics as the JSON
 * NaN/Infinity extension — the parser in common/json reads both back
 * losslessly, so appending and re-reading a record is exact.
 *
 * History analysis groups records by manifest config digest: the
 * digest hashes the simulated machine and workload (not observer or
 * host facts), so records from different hosts or thread counts land
 * on the same trend line — their simulated results are bit-identical
 * by construction, and only genuine regressions (or host-side
 * sim-rate changes, which are exactly what one wants to notice)
 * separate them.
 */

#ifndef FBDP_SYSTEM_LEDGER_HH
#define FBDP_SYSTEM_LEDGER_HH

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "system/manifest.hh"
#include "system/results.hh"
#include "system/rundiff.hh"

namespace fbdp {

/** Ledger line format tag. */
inline constexpr const char *ledgerSchema = "fbdp-ledger-v1";

/** One ledger record (single line, no trailing newline). */
std::string ledgerRecordJson(const RunManifest &m, const SweepRow &row);

/**
 * Append @p record_json (one line) to @p path, creating the file on
 * first use.  @return false with @p error set on IO failure.
 */
bool appendLedgerRecord(const std::string &path,
                        const std::string &record_json,
                        std::string *error = nullptr);

/**
 * Read every record of @p path in file (= append) order.  Blank lines
 * are skipped; a malformed line is an error (the ledger is written by
 * this module — damage should be loud, not silently dropped).
 */
std::vector<json::ValuePtr> readLedger(const std::string &path,
                                       std::string *error);

/** Policy of one history analysis. */
struct HistoryOptions
{
    /** Relative drift tolerance (rundiff semantics; 0 = exact). */
    double tolerance = 0.10;

    /** Use only the newest N matching records (0 = all). */
    std::size_t lastN = 0;

    /** Config digest to trend; empty selects the newest record's. */
    std::string digest;

    /** Which drift direction fails (drift is two-sided by default —
     *  a trend monitor wants to see improvements too). */
    DiffDirection direction = DiffDirection::TwoSided;

    std::vector<std::string> only;   ///< metric-path substrings kept
    std::vector<std::string> ignore; ///< metric-path substrings skipped
};

/** Outcome of one history analysis. */
struct HistoryReport
{
    std::string digest;       ///< trend line analysed
    std::size_t matching = 0; ///< ledger records with that digest
    std::size_t window = 0;   ///< analysed (priors + the candidate)
    std::string config, mix;  ///< labels from the newest record

    /** Baseline (per-metric mean of the prior records) vs the newest
     *  record. */
    DiffReport diff;

    std::string error; ///< non-empty when analysis was impossible

    bool ok() const { return error.empty(); }

    /** True when the newest record drifted beyond tolerance. */
    bool drifted() const { return diff.failed(); }
};

/**
 * Trend the newest matching record against the mean of its
 * predecessors.  Needs >= 2 matching records, else error.  Records
 * that are not ledger objects (wrong/missing schema tag) are ignored.
 */
HistoryReport analyzeHistory(const std::vector<json::ValuePtr> &records,
                             const HistoryOptions &opt);

/** Human-readable report (header + rundiff table). */
void printHistoryReport(const HistoryReport &r, std::ostream &os,
                        bool verbose = false);

} // namespace fbdp

#endif // FBDP_SYSTEM_LEDGER_HH
