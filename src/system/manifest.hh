/**
 * @file
 * Run provenance: the manifest every output surface can embed.
 *
 * A figure sweep or a stats dump is only trustworthy if it is
 * self-describing — six months later the question is always "which
 * code, which configuration, which machine produced this file?".
 * RunManifest answers it: a small record of the exact build (version,
 * git SHA + dirty flag, build type, compiler), the exact configuration
 * (a canonical serialisation of SystemConfig folded into a 64-bit
 * FNV-1a digest), the seed, the host, the lane count and the wall
 * start time.  The digest is the join key of the cross-run ledger:
 * two runs with equal digests simulated the same machine on the same
 * workload, so their metrics are comparable.
 *
 * Embedding is strictly additive and opt-in.  Every writer renders the
 * manifest either as one JSON object (stats dump, sweep JSON,
 * telemetry / progress / ledger JSON-lines) or as '#'-prefixed comment
 * lines (sweep CSV, telemetry CSV), so stripping the manifest recovers
 * the byte-identical manifest-off output — the invariant the
 * observability CI job gates.
 *
 * The digest covers only fields that change simulation results.
 * Observer and execution knobs (attribution, profileKernel, threads)
 * are excluded on purpose: results are bit-identical across them, so
 * runs differing only there belong to the same trend line.
 */

#ifndef FBDP_SYSTEM_MANIFEST_HH
#define FBDP_SYSTEM_MANIFEST_HH

#include <cstdint>
#include <string>

#include "system/config.hh"

namespace fbdp {

/** 64-bit FNV-1a over @p text (the config-digest hash). */
std::uint64_t fnv1a64(const std::string &text);

/**
 * Canonical serialisation of @p cfg: every simulation-relevant field
 * as "key=value" joined by ';', in a fixed order that is part of the
 * format (append new fields, never reorder).  Two configs serialise
 * equal iff the simulator would produce identical results for them
 * modulo observer/execution knobs.
 */
std::string canonicalConfigString(const SystemConfig &cfg);

/** Provenance record of one run. */
struct RunManifest
{
    // --- build ---
    std::string toolVersion;  ///< FBDP_VERSION
    std::string gitSha;       ///< short SHA, "unknown" outside git
    bool gitDirty = false;    ///< uncommitted changes at configure
    std::string buildType;    ///< CMake config (RelWithDebInfo, ...)
    std::string compiler;     ///< compiler id + version string

    // --- configuration ---
    std::string configDigest; ///< 16 hex digits of fnv1a64(canonical)
    std::uint64_t seed = 0;
    unsigned threads = 1;

    // --- host / time ---
    std::string hostname;
    std::string startedUtc;   ///< ISO 8601, second resolution

    /**
     * Capture a manifest for a run of @p cfg: build info baked in at
     * compile time, digest from canonicalConfigString(), hostname and
     * wall clock read now.
     */
    static RunManifest capture(const SystemConfig &cfg);

    /**
     * The one-line build-info string behind every tool's --version:
     * "fbdp <version> (<sha>[-dirty]) <build type> <compiler>".
     */
    static std::string buildInfo();

    /** Render as one single-line JSON object (no trailing newline). */
    std::string json() const;

    /**
     * Render as CSV comment lines, one "# key: value" per field plus
     * a terminating newline — prepended to CSV outputs so `grep -v
     * '^#'` recovers the manifest-free bytes.
     */
    std::string csvComment() const;
};

} // namespace fbdp

#endif // FBDP_SYSTEM_MANIFEST_HH
