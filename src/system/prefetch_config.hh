/**
 * @file
 * The nested prefetch configuration block of SystemConfig.
 *
 * One PrefetchConfig describes one prefetch attachment point (the AMB
 * caches or the controller-level buffer): which PolicyRegistry policy
 * drives it, how aggressively it may emit, and how its buffer is
 * organised.  It replaces the scattered apEnable/ambEntries/ambWays
 * and mcPrefetch/mcEntries/mcWays booleans, which remain only as
 * deprecated mirrors.
 *
 * Spec-string grammar (the CLI's --amb-policy / --mc-policy value):
 *
 *     policy[,key=value]...
 *
 * where policy is a PolicyRegistry name ("region", "dspatch",
 * "indram", "none") and key is one of
 *
 *     degree    max candidate lines per demand (0 = policy default)
 *     entries   buffer lines
 *     ways      buffer associativity (0 = fully associative)
 *     throttle  northbound-utilisation ceiling in [0,1] above which
 *               all candidates are shed (0 = no throttling)
 *
 * e.g. "region,degree=4,entries=64" or "dspatch,throttle=0.8".
 */

#ifndef FBDP_SYSTEM_PREFETCH_CONFIG_HH
#define FBDP_SYSTEM_PREFETCH_CONFIG_HH

#include <string>

namespace fbdp {

/** Policy + buffer shape of one prefetch attachment point. */
struct PrefetchConfig
{
    /** PolicyRegistry key; "none" disables the attachment point. */
    std::string policy = "none";
    unsigned degree = 0;    ///< candidates per demand; 0 = default
    unsigned entries = 64;  ///< buffer lines
    unsigned ways = 0;      ///< associativity; 0 = fully associative
    double throttle = 0.0;  ///< link-util ceiling; 0 = off

    bool enabled() const { return policy != "none"; }

    /**
     * Parse a spec string (see the grammar above).  fatal()s on a
     * malformed spec, an unknown key, or a policy name missing from
     * the PolicyRegistry.  @p dflt supplies the buffer shape for keys
     * the spec leaves out, so "--amb-policy=dspatch" inherits the
     * attachment point's natural entries/ways.
     */
    static PrefetchConfig parse(const std::string &spec,
                                const PrefetchConfig &dflt);
    static PrefetchConfig
    parse(const std::string &spec)
    {
        return parse(spec, PrefetchConfig{});
    }

    /** The canonical spec string for this configuration. */
    std::string spec() const;
};

} // namespace fbdp

#endif // FBDP_SYSTEM_PREFETCH_CONFIG_HH
