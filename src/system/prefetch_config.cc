#include "system/prefetch_config.hh"

#include <cstdlib>

#include "common/logging.hh"
#include "prefetch/policy.hh"

namespace fbdp {

PrefetchConfig
PrefetchConfig::parse(const std::string &spec, const PrefetchConfig &dflt)
{
    PrefetchConfig pc = dflt;

    std::size_t pos = 0;
    bool first = true;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string tok = spec.substr(pos, comma - pos);
        pos = comma + 1;

        if (first) {
            first = false;
            if (tok.empty())
                fatal("empty prefetch policy spec");
            pc.policy = tok;
            continue;
        }
        if (tok.empty())
            continue;

        const std::size_t eq = tok.find('=');
        if (eq == std::string::npos)
            fatal("prefetch spec token '%s' is not key=value "
                  "(spec '%s')", tok.c_str(), spec.c_str());
        const std::string key = tok.substr(0, eq);
        const std::string val = tok.substr(eq + 1);
        if (val.empty())
            fatal("prefetch spec key '%s' has no value (spec '%s')",
                  key.c_str(), spec.c_str());

        if (key == "degree") {
            pc.degree = static_cast<unsigned>(
                std::strtoul(val.c_str(), nullptr, 10));
        } else if (key == "entries") {
            pc.entries = static_cast<unsigned>(
                std::strtoul(val.c_str(), nullptr, 10));
        } else if (key == "ways") {
            pc.ways = static_cast<unsigned>(
                std::strtoul(val.c_str(), nullptr, 10));
        } else if (key == "throttle") {
            pc.throttle = std::strtod(val.c_str(), nullptr);
            if (pc.throttle < 0.0 || pc.throttle > 1.0)
                fatal("prefetch throttle %s outside [0,1]",
                      val.c_str());
        } else {
            fatal("unknown prefetch spec key '%s' (spec '%s'; known: "
                  "degree, entries, ways, throttle)",
                  key.c_str(), spec.c_str());
        }
    }

    if (!PolicyRegistry::instance().has(pc.policy)) {
        std::string known;
        for (const auto &n : PolicyRegistry::instance().names()) {
            if (!known.empty())
                known += ", ";
            known += n;
        }
        fatal("unknown prefetch policy '%s' in spec '%s' "
              "(registered: %s)",
              pc.policy.c_str(), spec.c_str(), known.c_str());
    }
    return pc;
}

std::string
PrefetchConfig::spec() const
{
    std::string s = policy;
    if (degree)
        s += csprintf(",degree=%u", degree);
    s += csprintf(",entries=%u,ways=%u", entries, ways);
    if (throttle > 0.0)
        s += csprintf(",throttle=%g", throttle);
    return s;
}

} // namespace fbdp
