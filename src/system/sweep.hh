/**
 * @file
 * Batch experiment driver.
 *
 * Research use of a simulator is mostly grids: a set of machine
 * configurations crossed with a set of workloads, dumped as CSV or
 * JSON for a plotting pipeline.  Sweep collects named configurations
 * and mixes, runs the cross product (optionally with repeats over
 * seeds) on a worker pool, and delivers one row per run in
 * deterministic config-major order regardless of how many jobs ran
 * concurrently or which finished first.
 *
 * Parallelism: every cell is an independent System built and run on a
 * worker thread (System instances share no mutable state).  Rows are
 * collected — and the onRow() callback invoked — on the calling
 * thread, in cell-definition order, so callbacks need no locking and
 * streamed output is byte-identical for any job count.  The job count
 * comes from jobs(), or the FBDP_JOBS environment variable when
 * jobs() was given 0 (the default), falling back to a serial run.
 */

#ifndef FBDP_SYSTEM_SWEEP_HH
#define FBDP_SYSTEM_SWEEP_HH

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "system/config.hh"
#include "system/manifest.hh"
#include "system/results.hh"
#include "system/system.hh"
#include "workload/mixes.hh"

namespace fbdp {

class ProgressSink;

/** Cross-product experiment runner. */
class Sweep
{
  public:
    /** Add a named machine configuration (workload ignored). */
    Sweep &addConfig(std::string name, SystemConfig cfg);

    /** Add a workload mix by reference. */
    Sweep &addMix(const WorkloadMix &mix);

    /** Add every mix with the given core count. */
    Sweep &addMixGroup(unsigned cores);

    /** Repeat every cell with seeds base..base+n-1 (default 1),
     *  where base is the configuration's SystemConfig::seed — so two
     *  sweeps can use disjoint seed ranges. */
    Sweep &repeats(unsigned n);

    /** Worker threads for run(); 0 (default) means "use FBDP_JOBS
     *  from the environment, else run serially". */
    Sweep &jobs(unsigned n);

    /** Invoked after each run, on the calling thread, in row order
     *  (streaming output; see progress() for live status). */
    Sweep &onRow(std::function<void(const SweepRow &)> cb);

    /**
     * Attach a live progress sink (nullptr detaches).  The sink sees
     * sweepStarted / cellStarted / cellFinished / cellFailed /
     * sweepFinished in *completion* order — that is the point of live
     * progress — with calls serialised under an internal mutex, so
     * sinks need no locking.  Rows, row callbacks and every output
     * stay in config-major order and are byte-identical with or
     * without a sink attached.
     */
    Sweep &progress(ProgressSink *s);

    /**
     * Embed a run manifest in runCsv() / runJson() output: CSV gets
     * '#'-prefixed comment lines before the header, JSON a single
     * "manifest" line — stripping those recovers the manifest-free
     * bytes.  The manifest's config digest hashes *every* cell's
     * canonical configuration, so it identifies the whole grid.
     * Unset, the FBDP_MANIFEST environment variable (=1) decides.
     */
    Sweep &manifest(bool on);

    /**
     * Append one cross-run ledger record per finished row to @p path
     * (see system/ledger.hh; empty disables).  Each record carries
     * the *cell's* manifest — the digest of that cell's exact
     * configuration — so `fbdp-report --history` trends the same cell
     * across sweeps.  Unset, the FBDP_LEDGER environment variable
     * (a path) decides.
     */
    Sweep &ledger(std::string path);

    /** The grid manifest manifest(true) embeds (digest over every
     *  cell, in row order). */
    RunManifest gridManifest() const;

    /** Run everything; rows in config-major order. */
    std::vector<SweepRow> run();

    /** The schema behind every serialisation of sweep rows. */
    static const ResultSchema &schema();

    /** CSV header matching csvRow() (thin wrapper over schema()). */
    static std::string csvHeader();

    /** One row of CSV for a finished run (wrapper over schema()). */
    static std::string csvRow(const SweepRow &row);

    /** Run and stream CSV to @p os (header + one row per run). */
    void runCsv(std::ostream &os);

    /** Run and write the full JSON document to @p os. */
    void runJson(std::ostream &os);

    size_t cells() const
    {
        return configs.size() * mixes.size() * nRepeats;
    }

    /** Worker count run() will actually use (resolves 0 via
     *  FBDP_JOBS and clamps to the number of cells). */
    unsigned effectiveJobs() const;

    /** Resolved manifest() / FBDP_MANIFEST decision. */
    bool manifestEnabled() const;

  private:
    std::vector<std::pair<std::string, SystemConfig>> configs;
    std::vector<const WorkloadMix *> mixes;
    unsigned nRepeats = 1;
    unsigned nJobs = 0;
    std::function<void(const SweepRow &)> rowCb;
    ProgressSink *sink = nullptr;

    bool wantManifest = false;
    bool manifestSet = false;  ///< manifest() called; ignore the env
    std::string ledgerPath;
    bool ledgerSet = false;    ///< ledger() called; ignore the env

    /** ledger()/FBDP_LEDGER resolution ("" = off). */
    std::string ledgerFile() const;
};

} // namespace fbdp

#endif // FBDP_SYSTEM_SWEEP_HH
