/**
 * @file
 * Batch experiment driver.
 *
 * Research use of a simulator is mostly grids: a set of machine
 * configurations crossed with a set of workloads, dumped as CSV for a
 * plotting pipeline.  Sweep collects named configurations and mixes,
 * runs the cross product (optionally with repeats over seeds), and
 * streams one CSV row per run.
 */

#ifndef FBDP_SYSTEM_SWEEP_HH
#define FBDP_SYSTEM_SWEEP_HH

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "system/config.hh"
#include "system/system.hh"
#include "workload/mixes.hh"

namespace fbdp {

/** One row of sweep output. */
struct SweepRow
{
    std::string config;
    std::string mix;
    std::uint64_t seed = 0;
    RunResult result;
};

/** Cross-product experiment runner. */
class Sweep
{
  public:
    /** Add a named machine configuration (workload ignored). */
    Sweep &addConfig(std::string name, SystemConfig cfg);

    /** Add a workload mix by reference. */
    Sweep &addMix(const WorkloadMix &mix);

    /** Add every mix with the given core count. */
    Sweep &addMixGroup(unsigned cores);

    /** Repeat every cell with seeds 1..n (default 1). */
    Sweep &repeats(unsigned n);

    /** Invoked after each run (progress reporting). */
    Sweep &onRow(std::function<void(const SweepRow &)> cb);

    /** Run everything; rows in config-major order. */
    std::vector<SweepRow> run();

    /** CSV header matching writeCsvRow(). */
    static std::string csvHeader();

    /** One row of CSV for a finished run. */
    static std::string csvRow(const SweepRow &row);

    /** Run and stream CSV to @p os (header + one row per run). */
    void runCsv(std::ostream &os);

    size_t cells() const
    {
        return configs.size() * mixes.size() * nRepeats;
    }

  private:
    std::vector<std::pair<std::string, SystemConfig>> configs;
    std::vector<const WorkloadMix *> mixes;
    unsigned nRepeats = 1;
    std::function<void(const SweepRow &)> rowCb;
};

} // namespace fbdp

#endif // FBDP_SYSTEM_SWEEP_HH
