/**
 * @file
 * Whole-system assembly: cores -> cache hierarchy -> memory system
 * (address map + one controller per logic channel), plus the two-phase
 * (warm-up, measure) simulation driver.
 */

#ifndef FBDP_SYSTEM_SYSTEM_HH
#define FBDP_SYSTEM_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/hierarchy.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "common/thread_pool.hh"
#include "cpu/core.hh"
#include "dram/dimm.hh"
#include "mc/address_map.hh"
#include "mc/attribution.hh"
#include "mc/controller.hh"
#include "sim/event_queue.hh"
#include "sim/shards.hh"
#include "system/config.hh"
#include "workload/generator.hh"

namespace fbdp {

class System;

/**
 * Kernel profile of one event-queue shard: its queue counters, the
 * mailbox traffic it drained and posted, and — when
 * SystemConfig::profileKernel timed the run — the host time it spent
 * dispatching vs draining.  Shard 0 is the core/cache shard ("core"),
 * shard 1+ch drives logic channel ch ("chN").  The count fields are
 * deterministic and thread-count-invariant (the staged schedule is
 * identical on every lane layout); only the *Seconds fields are host
 * facts.
 */
struct ShardProfile
{
    std::string name;           ///< "core" or "chN"
    unsigned lane = 0;          ///< lane that ran this shard

    std::uint64_t events = 0;         ///< callbacks dispatched
    std::uint64_t schedules = 0;
    std::uint64_t reschedules = 0;
    std::uint64_t deschedules = 0;
    std::uint64_t peakQueueDepth = 0;
    std::uint64_t batchDrains = 0;    ///< same-tick batch extractions
    std::uint64_t batchedEvents = 0;  ///< events dispatched batched

    std::uint64_t mailboxIn = 0;   ///< messages drained by this shard
    std::uint64_t mailboxOut = 0;  ///< messages it posted cross-shard

    double busySeconds = 0.0;   ///< host time dispatching events
    double drainSeconds = 0.0;  ///< host time draining mailboxes
};

/**
 * Kernel profile of one worker lane.  Per round, the lane's wall time
 * telescopes exactly: busy + drain + barrierWait == wall (the three
 * are measured from the same clock reads), so a conservation check
 * needs only floating-point tolerance.  rounds is deterministic;
 * everything else is a host fact, and the release counters depend on
 * OS scheduling.
 */
struct LaneProfile
{
    unsigned lane = 0;
    unsigned shardsOwned = 0;   ///< shards this lane executed

    std::uint64_t rounds = 0;   ///< frame rounds executed

    double busySeconds = 0.0;        ///< in laneRound, minus drains
    double drainSeconds = 0.0;       ///< mailbox drain share
    double barrierWaitSeconds = 0.0; ///< arrive to release (+ hook)
    double wallSeconds = 0.0;        ///< busy + drain + barrierWait

    /** Release-path census of this lane's barrier arrivals (serial
     *  runs count every round as a last arrival — the "hook" is the
     *  inline endOfRound() call). */
    std::uint64_t lastArrivals = 0;
    std::uint64_t spinReleases = 0;
    std::uint64_t yieldReleases = 0;
    std::uint64_t sleepReleases = 0;
};

/**
 * Event-kernel activity of one simulation: queue counters, transaction
 * pool occupancy and the host time spent inside the event-driven
 * phases (timed warm-up + measurement; construction and the functional
 * cache warm-up are excluded, they run no events).  Collected on every
 * run — the counters are maintained on the hot path anyway — and
 * reported by `fbdpsim --profile` and ResultSchema::kernelStats().
 *
 * The per-shard and per-lane vectors are filled only when
 * SystemConfig::profileKernel asked for the timed self-profile
 * (`fbdpsim --profile-kernel`); the aggregate counters are always
 * collected.
 */
struct KernelProfile
{
    std::uint64_t eventsDispatched = 0;
    std::uint64_t schedules = 0;     ///< schedule() of an idle event
    std::uint64_t reschedules = 0;   ///< schedule() of a live event
    std::uint64_t deschedules = 0;
    std::uint64_t peakQueueDepth = 0;
    std::uint64_t batchDrains = 0;   ///< same-tick batch extractions
    std::uint64_t batchedEvents = 0; ///< events dispatched batched

    std::uint64_t poolAcquires = 0;   ///< transactions handed out
    std::uint64_t poolReuses = 0;     ///< acquires served by freelist
    std::uint64_t poolHighWater = 0;  ///< max simultaneous live
    std::uint64_t poolCapacity = 0;   ///< objects ever carved

    double hostEventSeconds = 0.0;    ///< wall time in the event loop

    /** True when the run was timed per shard/lane (the vectors below
     *  are filled). */
    bool profiled = false;
    std::vector<ShardProfile> shards; ///< [0]=core, [1+ch]=channel ch
    std::vector<LaneProfile> lanes;   ///< [0]=calling thread

    /**
     * Max/mean dispatched events over the *channel* shards: 1.0 is a
     * perfectly balanced channel load, 2.0 means the hottest channel
     * dispatches twice the average.  Deterministic and thread-count
     * invariant — the CI imbalance gate compares it at tolerance 0
     * across thread counts.  0 when unprofiled or single-channel.
     */
    double eventImbalance() const;

    /** Max/mean busy host seconds over the channel shards (the wall-
     *  clock skew the barrier has to absorb).  Host fact. */
    double busyImbalance() const;

    /** Dispatch throughput over the event-driven phases. */
    double eventsPerSec() const
    {
        return hostEventSeconds > 0.0
            ? static_cast<double>(eventsDispatched) / hostEventSeconds
            : 0.0;
    }
};

/** Latency percentiles of one request class (Fig. 8-style shape). */
struct LatencyClassStats
{
    double p50Ns = 0.0;
    double p95Ns = 0.0;
    double p99Ns = 0.0;
    std::uint64_t samples = 0;
};

/**
 * Prefetch-policy outcome of one run, aggregated over every channel's
 * active attachment point (AMB caches or the MC buffer).  The typed
 * block behind ResultSchema::prefetchStats() and the --stats-json
 * "prefetch" section; head-to-head policy comparisons read these.
 */
struct PrefetchRunStats
{
    std::string policy = "none";     ///< active PolicyRegistry name
    std::uint64_t issued = 0;        ///< candidate lines fetched
    std::uint64_t hits = 0;          ///< demand reads served by one
    std::uint64_t lateHits = 0;      ///< hits with the fill in flight
    std::uint64_t dropped = 0;       ///< candidates shed before issue
    std::uint64_t evictedUnused = 0; ///< displaced before any use
    std::uint64_t invalidatedUnused = 0; ///< written before any use

    /** Late hits / hits (lower is better). */
    double
    lateness() const
    {
        return hits ? static_cast<double>(lateHits)
                / static_cast<double>(hits)
                    : 0.0;
    }

    /** Unused displaced or invalidated lines / prefetches issued. */
    double
    pollution() const
    {
        return issued
            ? static_cast<double>(evictedUnused + invalidatedUnused)
                / static_cast<double>(issued)
            : 0.0;
    }
};

/** Measured outcome of one simulation. */
struct RunResult
{
    std::vector<double> ipc;            ///< per core
    std::vector<std::uint64_t> insts;   ///< per core, window
    Tick measuredTicks = 0;

    double avgReadLatencyNs = 0.0;      ///< MC arrival -> data at MC
    double bandwidthGBs = 0.0;          ///< utilized channel bandwidth

    std::uint64_t reads = 0;            ///< memory reads served
    std::uint64_t writes = 0;
    std::uint64_t ambHits = 0;
    double coverage = 0.0;              ///< #prefetch_hit / #read
    double efficiency = 0.0;            ///< #prefetch_hit / #prefetch
    PrefetchRunStats prefetch;          ///< per-policy quality block
    DramOpCounts ops;                   ///< for the power model

    std::uint64_t l2Misses = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t swPrefetchesSent = 0;

    /** Per-request-class latency percentiles, merged over channels. */
    LatencyClassStats latDemand;    ///< reads missing every buffer
    LatencyClassStats latPrefHit;   ///< reads served by AMB/MC buffer
    LatencyClassStats latWrite;     ///< posted-write completions
    /** Prefetch hits whose fill was still in flight when demanded. */
    std::uint64_t latePrefetchHits = 0;

    /** Latency-phase / stall-cycle attribution (enabled flag inside;
     *  empty unless SystemConfig::attribution was set). */
    AttributionResult attribution;

    /** Simulated instructions over the whole run (warm-up included),
     *  all cores — the numerator of the sim-rate metric. */
    std::uint64_t runInsts = 0;

    KernelProfile kernel;

    /** Simulated-instructions per host second (event-driven phases). */
    double instsPerHostSec() const
    {
        return kernel.hostEventSeconds > 0.0
            ? static_cast<double>(runInsts) / kernel.hostEventSeconds
            : 0.0;
    }

    /** Sum of per-core IPCs (throughput). */
    double ipcSum() const;

    /** Total instructions executed in the window, all cores. */
    double totalInsts() const;
};

/**
 * Routes cache-hierarchy traffic to the per-channel controllers.
 * Under the sharded kernel the hand-off goes through the owning
 * System's frame mailboxes (setRouter) instead of calling into the
 * controller — which lives on another shard — directly.
 */
class MemorySystem : public MemoryIface
{
  public:
    MemorySystem(EventQueue *event_queue, const AddressMap *map,
                 std::vector<std::unique_ptr<MemController>> *ctrls);

    void read(Addr line_addr, int core_id, bool sw_prefetch,
              TickCallback done) override;
    void write(Addr line_addr, int core_id) override;

    /** Stage requests in @p r's mailboxes instead of pushing inline
     *  (nullptr restores the direct path). */
    void setRouter(System *r) { router = r; }

  private:
    EventQueue *eq;
    const AddressMap *map;
    std::vector<std::unique_ptr<MemController>> *controllers;
    System *router = nullptr;
};

/**
 * One simulated machine, built on the sharded event kernel: a
 * core/cache event-queue shard (queue 0) plus one shard per logic
 * channel.  Simulated time advances in rounds of one memory-cycle
 * frame; every cross-shard hand-off (request, completion) is staged in
 * a FrameMailbox during one round and drained by the receiving shard
 * at the start of the next, costing exactly one frame of model
 * latency.  The same staged schedule executes for every
 * SystemConfig::threads value — serially in shard order at threads ==
 * 1, on a barrier-synchronized thread pool otherwise — so results are
 * bit-identical regardless of the thread count.
 */
class System : private CompletionSink
{
  public:
    explicit System(const SystemConfig &cfg);
    ~System();

    /** Run warm-up then the measured window; return the results. */
    RunResult run();

    /**
     * Attach (or detach with nullptr) a lifecycle tracer, binding
     * every controller (with its channel index for channel filtering),
     * the cache hierarchy and every core.  Call before run(); tracing
     * must not — and does not — change simulation results.
     */
    void attachTracer(trace::Tracer *t);

    /**
     * Hierarchical statistics report of the last run: per-core,
     * per-cache and per-channel counters (built on the stats
     * framework).  Call after run().
     */
    void report(std::ostream &os) const;

    /**
     * One statistics group plus ownership of its stats.  StatGroup
     * itself is non-owning (components normally register member
     * stats); the report and JSON emitters instead build their derived
     * Formulas on the heap and keep them alive here.
     */
    struct OwnedStatGroup
    {
        explicit OwnedStatGroup(std::string n) : group(std::move(n)) {}

        stats::StatGroup group;
        std::vector<std::unique_ptr<stats::Stat>> owned;
    };

    /**
     * Every statistic of the last run as named groups: per-core, L2,
     * per-channel, and — when attribution is enabled — the phase
     * breakdown and stall accounting.  The single source both
     * report() and the --stats-json dump are derived from, so the two
     * can never drift apart.  Groups reference live components; they
     * must not outlive the System.
     *
     * @p include_histograms additionally registers the per-channel
     * latency (and per-phase breakdown) histograms — wanted by the
     * JSON dump, too verbose for the text report.
     */
    std::vector<OwnedStatGroup>
    buildStatGroups(bool include_histograms = false) const;

    /**
     * Stage a core-side request for channel @p channel's next round.
     * Called by MemorySystem on the core shard; public only for that
     * hand-off.
     */
    void routePush(unsigned channel, TransPtr t);

    /**
     * An attached observer (telemetry sampler) reads cross-shard state
     * from event context: force the lanes serial for this run.  The
     * staged schedule is unchanged, so results are unchanged.
     */
    void setTelemetryObserver(bool on) { telemetryObserver = on; }

    // Live kernel-profile reads for the telemetry sampler (all shards
    // are mid-round consistent on the single observer lane).  The
    // seconds accessors return 0 unless cfg.profileKernel timed the
    // run; the message/event counts are always maintained.
    /** Host seconds spent dispatching, all shards so far. */
    double kernelBusySeconds() const;
    /** Host seconds spent draining mailboxes, all shards so far. */
    double kernelDrainSeconds() const;
    /** Host seconds lanes spent at the round barrier so far. */
    double kernelBarrierWaitSeconds() const;
    /** Cross-shard mailbox messages posted so far (both directions). */
    std::uint64_t mailboxMessagesPosted() const;
    /** Event callbacks dispatched so far, all shards. */
    std::uint64_t kernelEventsDispatched() const;

    // Component access for tests and custom experiments.
    /** The core/cache shard's queue — the clock observers live by. */
    EventQueue &eventQueue() { return *queues.front(); }
    MemController &controller(unsigned i) { return *controllers.at(i); }
    unsigned numControllers() const
    {
        return static_cast<unsigned>(controllers.size());
    }
    CacheHierarchy &hierarchy() { return *hier; }
    Core &core(unsigned i) { return *cores.at(i); }
    Generator &generator(unsigned i) { return *gens.at(i); }

    /**
     * The synthetic generator driving core @p i; asserts when that
     * core replays a trace instead (synthetic-only counters such as
     * streamOps() have no trace equivalent).
     */
    SyntheticGenerator &
    syntheticGenerator(unsigned i)
    {
        auto *g = dynamic_cast<SyntheticGenerator *>(gens.at(i).get());
        fbdp_assert(g != nullptr,
                    "core %u replays a trace, not a synthetic profile",
                    i);
        return *g;
    }

    const SystemConfig &config() const { return cfg; }

  private:
    /** Core→channel request staged across a frame barrier. */
    struct PushMsg
    {
        TransPtr t;
        Tick sentAt;
    };

    /** Channel→core completion staged across a frame barrier. */
    struct CompleteMsg
    {
        TransPtr t;
        PhaseDurations pd;
        bool hasProfile;
    };

    /** Mailbox pair of one channel shard. */
    struct ChannelShard
    {
        FrameMailbox<PushMsg> pushBox;    ///< core -> channel
        FrameMailbox<CompleteMsg> doneBox; ///< channel -> core
    };

    /** A drained completion waiting for its core-shard delivery tick
     *  (completedAt plus one frame). */
    struct PendingDone
    {
        Tick deliverAt;
        std::uint64_t seq;  ///< drain order, FIFO within a tick
        TransPtr t;
        PhaseDurations pd;
        bool hasProfile;
    };

    /** Min-heap order on (deliverAt, seq). */
    struct PendingAfter
    {
        bool
        operator()(const PendingDone &a, const PendingDone &b) const
        {
            if (a.deliverAt != b.deliverAt)
                return a.deliverAt > b.deliverAt;
            return a.seq > b.seq;
        }
    };

    // CompletionSink: called by a controller on its channel lane.
    void complete(unsigned channel, TransPtr t,
                  const PhaseDurations &pd, bool has_profile) override;

    void resetAllStats();
    RunResult collect(Tick window_ticks) const;

    /** Lanes this run will use: threads clamped to the shard count,
     *  forced to 1 while an observer is attached. */
    unsigned laneCount() const;

    /** Execute rounds until a barrier sees phaseDone (or the queues
     *  drain); on return every shard has finished the same round. */
    void runRounds(unsigned lanes);

    /** One lane's share of round curRound: advance, drain mailboxes,
     *  dispatch one frame on every owned shard.  @return the host
     *  seconds this round spent draining mailboxes (0 unless
     *  profiling) so the caller can split busy from drain without a
     *  fourth clock read. */
    double laneRound(unsigned lane, unsigned lanes);

    /** Emit one shard's frame slice + event counter for this round
     *  (no-op unless a tracer is attached with profiling on). */
    void traceShardRound(unsigned shard, Tick start,
                         std::uint64_t events);

    /** Barrier hook, run by exactly one thread between rounds. */
    void endOfRound();

    /** Pop pending completions due at the core shard's clock. */
    void deliverFire();

    /** Align every shard's clock to the current frame boundary (the
     *  phase edge, so windows span whole frames). */
    Tick alignClocks();

    SystemConfig cfg;

    /** queues[0] is the core/cache shard; queues[1 + ch] drives
     *  logic channel ch. */
    std::vector<std::unique_ptr<EventQueue>> queues;
    std::vector<ChannelShard> shards;

    /** Frame length: one memory cycle, the barrier quantum. */
    Tick frame = 0;
    /** Rounds completed since construction; never reset (mailbox
     *  parity and in-flight hand-offs carry across phase edges). */
    std::size_t curRound = 0;
    /** Set at a barrier by endOfRound(); lanes exit their loops. */
    bool stopRounds = false;

    std::vector<PendingDone> pendingDone;
    std::uint64_t nextDoneSeq = 0;
    Event deliverEvent;

    /** Workers for lanes 1..L-1; lane 0 is the calling thread. */
    std::unique_ptr<ThreadPool> pool;

    // --- kernel self-profiling (SystemConfig::profileKernel) ---
    /** Host-time and traffic accumulators of one shard. */
    struct ShardAccum
    {
        std::uint64_t drained = 0;  ///< mailbox messages drained
        double busySeconds = 0.0;
        double drainSeconds = 0.0;
        unsigned lane = 0;          ///< owning lane of the last run
    };
    /** Host-time accumulators of one lane (see LaneProfile). */
    struct LaneAccum
    {
        std::uint64_t rounds = 0;
        double busySeconds = 0.0;
        double drainSeconds = 0.0;
        double barrierWaitSeconds = 0.0;
        double wallSeconds = 0.0;
        std::uint64_t lastArrivals = 0;
        std::uint64_t spinReleases = 0;
        std::uint64_t yieldReleases = 0;
        std::uint64_t sleepReleases = 0;
    };
    /** shardAcc[0] = core shard, shardAcc[1+ch] = channel ch.  The
     *  drained counts are always maintained (one add per drain); the
     *  seconds only when profiling.  Each entry is written by exactly
     *  one lane per round and read after a barrier. */
    std::vector<ShardAccum> shardAcc;
    std::vector<LaneAccum> laneAcc;   ///< sized by run() to laneCount
    /** Lanes the last run() used (shapes KernelProfile::lanes). */
    unsigned lanesUsed = 1;
    /** cfg.profileKernel, cached for the hot round loop. */
    bool profiling = false;

    /** Per-round trace emission for the kernel shard lanes (tracer
     *  attached + profiling on): one interned track per shard plus a
     *  cross-shard traffic counter track. */
    std::vector<std::uint32_t> kernelTracks;
    std::uint32_t mailboxTrack = 0;
    trace::Tracer *tracer = nullptr;

    /** Completion hand-off between controllers and cores when
     *  attribution is enabled (see mc/attribution.hh). */
    AttributionHub attHub;

    /** Host wall time of the last run()'s event-driven phases. */
    double hostEventSeconds = 0.0;

    std::unique_ptr<AddressMap> map;
    std::vector<std::unique_ptr<MemController>> controllers;
    std::unique_ptr<MemorySystem> memSys;
    std::unique_ptr<CacheHierarchy> hier;
    std::vector<std::unique_ptr<Generator>> gens;
    std::vector<std::unique_ptr<Core>> cores;

    bool phaseDone = false;
    bool tracerAttached = false;
    bool telemetryObserver = false;
};

} // namespace fbdp

#endif // FBDP_SYSTEM_SYSTEM_HH
