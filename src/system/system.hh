/**
 * @file
 * Whole-system assembly: cores -> cache hierarchy -> memory system
 * (address map + one controller per logic channel), plus the two-phase
 * (warm-up, measure) simulation driver.
 */

#ifndef FBDP_SYSTEM_SYSTEM_HH
#define FBDP_SYSTEM_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/hierarchy.hh"
#include "cpu/core.hh"
#include "dram/dimm.hh"
#include "mc/address_map.hh"
#include "mc/controller.hh"
#include "sim/event_queue.hh"
#include "system/config.hh"
#include "workload/generator.hh"

namespace fbdp {

/** Measured outcome of one simulation. */
struct RunResult
{
    std::vector<double> ipc;            ///< per core
    std::vector<std::uint64_t> insts;   ///< per core, window
    Tick measuredTicks = 0;

    double avgReadLatencyNs = 0.0;      ///< MC arrival -> data at MC
    double bandwidthGBs = 0.0;          ///< utilized channel bandwidth

    std::uint64_t reads = 0;            ///< memory reads served
    std::uint64_t writes = 0;
    std::uint64_t ambHits = 0;
    double coverage = 0.0;              ///< #prefetch_hit / #read
    double efficiency = 0.0;            ///< #prefetch_hit / #prefetch
    DramOpCounts ops;                   ///< for the power model

    std::uint64_t l2Misses = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t swPrefetchesSent = 0;

    /** Sum of per-core IPCs (throughput). */
    double ipcSum() const;

    /** Total instructions executed in the window, all cores. */
    double totalInsts() const;
};

/** Routes cache-hierarchy traffic to the per-channel controllers. */
class MemorySystem : public MemoryIface
{
  public:
    MemorySystem(EventQueue *event_queue, const AddressMap *map,
                 std::vector<std::unique_ptr<MemController>> *ctrls);

    void read(Addr line_addr, int core_id, bool sw_prefetch,
              std::function<void(Tick)> done) override;
    void write(Addr line_addr, int core_id) override;

  private:
    EventQueue *eq;
    const AddressMap *map;
    std::vector<std::unique_ptr<MemController>> *controllers;
};

/** One simulated machine. */
class System
{
  public:
    explicit System(const SystemConfig &cfg);
    ~System();

    /** Run warm-up then the measured window; return the results. */
    RunResult run();

    /**
     * Hierarchical statistics report of the last run: per-core,
     * per-cache and per-channel counters (built on the stats
     * framework).  Call after run().
     */
    void report(std::ostream &os) const;

    // Component access for tests and custom experiments.
    EventQueue &eventQueue() { return eq; }
    MemController &controller(unsigned i) { return *controllers.at(i); }
    unsigned numControllers() const
    {
        return static_cast<unsigned>(controllers.size());
    }
    CacheHierarchy &hierarchy() { return *hier; }
    Core &core(unsigned i) { return *cores.at(i); }
    SyntheticGenerator &generator(unsigned i) { return *gens.at(i); }

    const SystemConfig &config() const { return cfg; }

  private:
    void resetAllStats();
    RunResult collect(Tick window_ticks) const;

    SystemConfig cfg;
    EventQueue eq;

    std::unique_ptr<AddressMap> map;
    std::vector<std::unique_ptr<MemController>> controllers;
    std::unique_ptr<MemorySystem> memSys;
    std::unique_ptr<CacheHierarchy> hier;
    std::vector<std::unique_ptr<SyntheticGenerator>> gens;
    std::vector<std::unique_ptr<Core>> cores;

    bool phaseDone = false;
};

} // namespace fbdp

#endif // FBDP_SYSTEM_SYSTEM_HH
