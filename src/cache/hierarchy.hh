/**
 * @file
 * The two-level cache hierarchy of Table 1: per-core 64 KB 2-way L1
 * data caches over a shared 4 MB 4-way L2, write-back/write-allocate,
 * with MSHR-based miss handling and non-binding software prefetch.
 *
 * Timing model: L1 hits are free (the 3-cycle L1 latency is folded
 * into each core's base IPC), L2 hits cost the configured hit latency,
 * and misses complete whenever the memory system delivers the line.
 * Functional state (tags, dirty bits) updates eagerly at access time,
 * which keeps the model deterministic.
 */

#ifndef FBDP_CACHE_HIERARCHY_HH
#define FBDP_CACHE_HIERARCHY_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cache/cache_array.hh"
#include "cache/mshr.hh"
#include "cache/stream_prefetcher.hh"
#include "common/callback.hh"
#include "common/types.hh"
#include "sim/event_queue.hh"
#include "sim/trace.hh"

namespace fbdp {

/** The memory system as seen from the cache hierarchy. */
class MemoryIface
{
  public:
    virtual ~MemoryIface() = default;

    /** Fetch a line; @p done fires when data is back at the MC. */
    virtual void read(Addr line_addr, int core_id, bool sw_prefetch,
                      TickCallback done) = 0;

    /** Posted write (writeback). */
    virtual void write(Addr line_addr, int core_id) = 0;
};

/** Geometry and latency knobs (defaults == Table 1). */
struct HierConfig
{
    std::uint64_t l1Bytes = 64 * 1024;
    unsigned l1Ways = 2;
    std::uint64_t l2Bytes = 4 * 1024 * 1024;
    unsigned l2Ways = 4;
    Tick l2HitLatency = 15 * cpuCyclePs;
    unsigned l1Mshrs = 32;  ///< per-core data MSHRs
    unsigned l2Mshrs = 64;
    /** Optional hardware stream prefetcher at the L2 (Section 5.4's
     *  speculation; off by default to match the paper's setup). */
    StreamPrefetcherConfig hwPrefetch;
};

/** Per-core L1s + shared L2 + the L2 MSHR file. */
class CacheHierarchy
{
  public:
    enum class Outcome {
        L1Hit,    ///< complete immediately
        L2Hit,    ///< complete at Result::doneAt
        Miss,     ///< completion via the supplied callback
        Blocked,  ///< MSHRs exhausted; retry after a poke
    };

    struct Result
    {
        Outcome outcome = Outcome::L1Hit;
        Tick doneAt = 0;  ///< valid for L1Hit / L2Hit
    };

    CacheHierarchy(EventQueue *event_queue, unsigned n_cores,
                   const HierConfig &cfg, MemoryIface *memory);

    /**
     * Demand access from @p core.  On Outcome::Miss the callback fires
     * when the line is installed; on Outcome::Blocked nothing was done
     * and the core must retry after its retry hook is poked.
     */
    Result access(int core, Addr addr, bool store,
                  TickCallback done);

    /** Non-binding software prefetch into the L2; never blocks. */
    void prefetch(int core, Addr addr);

    /** Hook poked whenever MSHR space frees up. */
    void setRetryHook(int core, std::function<void()> hook);

    /**
     * Timeless (functional) warm-up access: updates tags and dirty
     * bits without events or memory traffic.  Used to pre-warm the
     * large L2 before timed simulation, standing in for the warm
     * caches a SimPoint checkpoint would carry.
     */
    void functionalAccess(int core, Addr addr, bool store);

    /** Functional counterpart of a software prefetch. */
    void functionalPrefetch(int core, Addr addr);

    /** Bind (or unbind with nullptr) the lifecycle tracer: MSHR
     *  allocations/merges/fills plus an occupancy counter track. */
    void bindTracer(trace::Tracer *t);

    // --- statistics ---
    std::uint64_t l1Hits(int core) const;
    std::uint64_t l1Misses(int core) const;
    std::uint64_t l2Hits() const { return l2.hits(); }
    std::uint64_t l2Misses() const { return l2.misses(); }
    std::uint64_t memReads() const { return nMemReads; }
    std::uint64_t memWrites() const { return nMemWrites; }
    std::uint64_t prefetchesSent() const { return nPrefSent; }
    std::uint64_t prefetchesDropped() const { return nPrefDropped; }
    const StreamPrefetcher *hwPrefetcher() const { return hwPf.get(); }
    std::uint64_t loadMissReads() const { return nLoadMissReads; }
    std::uint64_t storeMissReads() const { return nStoreMissReads; }
    unsigned l1Outstanding(int core) const
    {
        return l1Pending.at(static_cast<size_t>(core));
    }
    size_t l2MshrOccupancy() const { return l2Mshr.occupancy(); }
    unsigned l2MshrCapacity() const { return l2Mshr.capacity(); }

    void resetStats();

  private:
    void fillComplete(Addr line_addr, Tick when);
    void installL1(int core, Addr line_addr, bool dirty);
    void l2InstallWithWriteback(Addr line_addr, bool dirty, int core);
    void pokeRetries();

    EventQueue *eq;
    HierConfig cfg;
    MemoryIface *mem;

    std::vector<CacheArray> l1;
    CacheArray l2;
    MshrTable l2Mshr;
    std::unique_ptr<StreamPrefetcher> hwPf;
    std::vector<unsigned> l1Pending;  ///< outstanding L1 misses/core

    std::vector<std::function<void()>> retryHooks;

    /** Reusable buffer handed to MshrTable::complete; its capacity
     *  ping-pongs with the freed slot's, so fills allocate nothing. */
    std::vector<MshrTable::Waiter> waiterScratch;

    std::uint64_t nMemReads = 0;
    std::uint64_t nMemWrites = 0;
    std::uint64_t nPrefSent = 0;
    std::uint64_t nPrefDropped = 0;
    std::uint64_t nLoadMissReads = 0;   ///< memory reads from loads
    std::uint64_t nStoreMissReads = 0;  ///< memory reads from stores

    /** Lifecycle-tracer binding (tr == nullptr means disabled). */
    struct TraceBinding
    {
        trace::Tracer *tr = nullptr;
        std::uint32_t l2 = 0;    ///< miss/fill instants
        std::uint32_t mshr = 0;  ///< occupancy counter
    };
    TraceBinding trc;

    void
    traceMshrOccupancy()
    {
        trc.tr->counter(trc.mshr, "occupancy", eq->now(),
                        l2Mshr.occupancy());
    }
};

} // namespace fbdp

#endif // FBDP_CACHE_HIERARCHY_HH
