#include "cache/stream_prefetcher.hh"

#include "common/logging.hh"

namespace fbdp {

StreamPrefetcher::StreamPrefetcher(const StreamPrefetcherConfig &cfg,
                                   unsigned n_cores)
    : c(cfg), nCores(n_cores)
{
    fbdp_assert(n_cores >= 1, "stream prefetcher needs >= 1 core");
    fbdp_assert(c.entriesPerCore >= 1, "needs >= 1 entry per core");
    table.resize(static_cast<size_t>(n_cores) * c.entriesPerCore);
}

std::vector<Addr>
StreamPrefetcher::onDemandMiss(int core, Addr line_addr)
{
    std::vector<Addr> out;
    const std::uint64_t line = lineIndex(line_addr);
    Entry *base = &table[static_cast<size_t>(core)
                         * c.entriesPerCore];

    // Match against tracked streams.  A window (rather than exact
    // next-line) match keeps a trained stream trained even when its
    // own prefetches turn the intervening lines into hits.
    const std::uint64_t window = c.distance + c.degree;
    for (unsigned i = 0; i < c.entriesPerCore; ++i) {
        Entry &e = base[i];
        if (!e.valid)
            continue;
        const bool asc = e.dir > 0 && line >= e.nextLine
            && line <= e.nextLine + window;
        const bool desc = e.dir < 0 && line <= e.nextLine
            && line + window >= e.nextLine;
        if (!asc && !desc)
            continue;
        // Confirmed: advance and maybe emit.
        e.nextLine = line + static_cast<std::uint64_t>(e.dir);
        ++e.confidence;
        e.lruSeq = nextLru++;
        if (e.confidence >= c.trainThreshold) {
            for (unsigned d = 0; d < c.degree; ++d) {
                const std::int64_t target =
                    static_cast<std::int64_t>(line)
                    + e.dir * static_cast<std::int64_t>(
                                  c.distance + d);
                if (target < 0)
                    continue;
                out.push_back(static_cast<Addr>(target)
                              << lineShift);
            }
            nSuggested += out.size();
        }
        return out;
    }

    // No match: allocate a fresh ascending candidate (descending
    // streams train via their own allocations when line-1 misses
    // next).
    Entry *victim = &base[0];
    for (unsigned i = 0; i < c.entriesPerCore; ++i) {
        Entry &e = base[i];
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lruSeq < victim->lruSeq)
            victim = &e;
    }
    victim->valid = true;
    victim->nextLine = line + 1;
    victim->dir = 1;
    victim->confidence = 1;
    victim->lruSeq = nextLru++;
    ++nAllocs;
    return out;
}

void
StreamPrefetcher::reset()
{
    for (auto &e : table)
        e.valid = false;
    nextLru = 0;
    nAllocs = 0;
    nSuggested = 0;
}

} // namespace fbdp
