#include "cache/hierarchy.hh"

#include "common/logging.hh"

namespace fbdp {

CacheHierarchy::CacheHierarchy(EventQueue *event_queue, unsigned n_cores,
                               const HierConfig &config,
                               MemoryIface *memory)
    : eq(event_queue),
      cfg(config),
      mem(memory),
      l2(cfg.l2Bytes, cfg.l2Ways),
      l2Mshr(cfg.l2Mshrs),
      l1Pending(n_cores, 0),
      retryHooks(n_cores)
{
    fbdp_assert(n_cores >= 1, "hierarchy needs >= 1 core");
    l1.reserve(n_cores);
    for (unsigned i = 0; i < n_cores; ++i)
        l1.emplace_back(cfg.l1Bytes, cfg.l1Ways);
    if (cfg.hwPrefetch.enable)
        hwPf = std::make_unique<StreamPrefetcher>(cfg.hwPrefetch,
                                                  n_cores);
}

void
CacheHierarchy::installL1(int core, Addr line_addr, bool dirty)
{
    auto v = l1[static_cast<size_t>(core)].install(line_addr, dirty);
    if (v.valid && v.dirty)
        l2InstallWithWriteback(v.lineAddr, true, core);
}

void
CacheHierarchy::l2InstallWithWriteback(Addr line_addr, bool dirty,
                                       int core)
{
    auto v = l2.install(line_addr, dirty);
    if (v.valid && v.dirty) {
        ++nMemWrites;
        mem->write(v.lineAddr, core);
    }
}

CacheHierarchy::Result
CacheHierarchy::access(int core, Addr addr, bool store,
                       TickCallback done)
{
    const Addr line = lineAlign(addr);
    auto c = static_cast<size_t>(core);

    if (CacheArray::Line *l = l1[c].lookup(line)) {
        if (store)
            l->dirty = true;
        return Result{Outcome::L1Hit, eq->now()};
    }

    if (l1Pending[c] >= cfg.l1Mshrs)
        return Result{Outcome::Blocked, 0};

    if (l2.lookup(line)) {
        installL1(core, line, store);
        return Result{Outcome::L2Hit, eq->now() + cfg.l2HitLatency};
    }

    MshrTable::Waiter w;
    w.coreId = core;
    w.isStore = store;
    w.isPrefetch = false;
    w.done = std::move(done);

    if (MshrTable::Entry *e = l2Mshr.find(line)) {
        l2Mshr.merge(e, std::move(w));
        ++l1Pending[c];
        return Result{Outcome::Miss, 0};
    }

    if (l2Mshr.full())
        return Result{Outcome::Blocked, 0};

    MshrTable::Entry *e = l2Mshr.allocate(line, false);
    l2Mshr.merge(e, std::move(w));
    ++l1Pending[c];
    ++nMemReads;
    if (store)
        ++nStoreMissReads;
    else
        ++nLoadMissReads;
    if (trc.tr) {
        const trace::Kind k = store ? trace::Kind::Write
                                    : trace::Kind::Read;
        if (trc.tr->want(k))
            trc.tr->instant(trc.l2, "miss", eq->now(), k, core, line);
        traceMshrOccupancy();
    }
    mem->read(line, core, false,
              [this, line](Tick when) { fillComplete(line, when); });

    // Let the hardware stream detector chase this miss.
    if (hwPf) {
        for (Addr target : hwPf->onDemandMiss(core, line))
            prefetch(core, target);
    }
    return Result{Outcome::Miss, 0};
}

void
CacheHierarchy::prefetch(int core, Addr addr)
{
    const Addr line = lineAlign(addr);

    // Already resident or already in flight: the prefetch is satisfied.
    if (l2.lookup(line, /*touch=*/false)) {
        ++nPrefDropped;
        return;
    }
    if (MshrTable::Entry *e = l2Mshr.find(line)) {
        // Nothing to wait for; just make sure the entry survives.
        (void)e;
        ++nPrefDropped;
        return;
    }
    if (l2Mshr.full()) {
        // Non-binding: dropping is always legal.
        ++nPrefDropped;
        return;
    }

    l2Mshr.allocate(line, true);
    ++nPrefSent;
    if (trc.tr) {
        if (trc.tr->want(trace::Kind::Prefetch)) {
            trc.tr->instant(trc.l2, "sw_prefetch", eq->now(),
                            trace::Kind::Prefetch, core, line);
        }
        traceMshrOccupancy();
    }
    mem->read(line, core, true,
              [this, line](Tick when) { fillComplete(line, when); });
}

void
CacheHierarchy::fillComplete(Addr line_addr, Tick when)
{
    // Install into the L2 first so that waiter callbacks (and the
    // accesses they trigger) observe the line.
    l2InstallWithWriteback(line_addr, false, -1);

    l2Mshr.complete(line_addr, when, waiterScratch);
    if (trc.tr) {
        trc.tr->instant(trc.l2, "fill", when, trace::Kind::None, -1,
                        line_addr);
        traceMshrOccupancy();
    }
    auto &waiters = waiterScratch;
    for (auto &w : waiters) {
        if (w.isPrefetch)
            continue;
        installL1(w.coreId, line_addr, w.isStore);
        fbdp_assert(l1Pending[static_cast<size_t>(w.coreId)] > 0,
                    "L1 pending underflow");
        --l1Pending[static_cast<size_t>(w.coreId)];
    }
    for (auto &w : waiters) {
        if (!w.isPrefetch && w.done)
            w.done(when);
    }

    pokeRetries();
}

void
CacheHierarchy::bindTracer(trace::Tracer *t)
{
    trc = TraceBinding{};
    if (!t)
        return;
    trc.tr = t;
    trc.l2 = t->track("l2");
    trc.mshr = t->track("l2.mshr");
}

void
CacheHierarchy::setRetryHook(int core, std::function<void()> hook)
{
    retryHooks.at(static_cast<size_t>(core)) = std::move(hook);
}

void
CacheHierarchy::pokeRetries()
{
    for (auto &h : retryHooks) {
        if (h)
            h();
    }
}

std::uint64_t
CacheHierarchy::l1Hits(int core) const
{
    return l1.at(static_cast<size_t>(core)).hits();
}

std::uint64_t
CacheHierarchy::l1Misses(int core) const
{
    return l1.at(static_cast<size_t>(core)).misses();
}

void
CacheHierarchy::resetStats()
{
    for (auto &c : l1)
        c.resetStats();
    l2.resetStats();
    l2Mshr.resetStats();
    nMemReads = 0;
    nMemWrites = 0;
    nPrefSent = 0;
    nPrefDropped = 0;
    nLoadMissReads = 0;
    nStoreMissReads = 0;
}

void
CacheHierarchy::functionalAccess(int core, Addr addr, bool store)
{
    const Addr line = lineAlign(addr);
    auto c = static_cast<size_t>(core);
    if (CacheArray::Line *l = l1[c].lookup(line)) {
        if (store)
            l->dirty = true;
        return;
    }
    if (!l2.lookup(line)) {
        // Install without generating memory traffic; warm-up victims
        // are silently dropped.
        l2.install(line, false);
    }
    auto v = l1[c].install(line, store);
    if (v.valid && v.dirty)
        l2.install(v.lineAddr, true);
}

void
CacheHierarchy::functionalPrefetch(int, Addr addr)
{
    const Addr line = lineAlign(addr);
    if (!l2.lookup(line, /*touch=*/false))
        l2.install(line, false);
}

} // namespace fbdp
