/**
 * @file
 * A generic set-associative, LRU, write-back tag array.
 *
 * Used for the per-core 64 KB 2-way L1 data caches and the shared 4 MB
 * 4-way L2 of Table 1.  Purely functional (tags only — the simulator
 * never carries data payloads); timing is applied by CacheHierarchy.
 */

#ifndef FBDP_CACHE_CACHE_ARRAY_HH
#define FBDP_CACHE_CACHE_ARRAY_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace fbdp {

/** Tag array with LRU replacement. */
class CacheArray
{
  public:
    struct Line
    {
        Addr lineAddr = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lruSeq = 0;
    };

    /** What fell out of the set on an install. */
    struct Victim
    {
        bool valid = false;   ///< a line was evicted
        Addr lineAddr = 0;
        bool dirty = false;
    };

    CacheArray(std::uint64_t size_bytes, unsigned ways);

    /** Find a line; bumps LRU when @p touch. @return nullptr on miss. */
    Line *lookup(Addr line_addr, bool touch = true);

    /** Install @p line_addr (must not be present). */
    Victim install(Addr line_addr, bool dirty);

    /** Drop a line if present. */
    bool invalidate(Addr line_addr);

    void reset();

    unsigned numSets() const { return nSets; }
    unsigned numWays() const { return nWays; }
    std::uint64_t sizeBytes() const
    {
        return static_cast<std::uint64_t>(nSets) * nWays * lineBytes;
    }

    std::uint64_t hits() const { return nHits; }
    std::uint64_t misses() const { return nMisses; }
    void resetStats() { nHits = 0; nMisses = 0; }

  private:
    unsigned setOf(Addr line_addr) const
    {
        // The common geometries (Table 1) all have power-of-two set
        // counts; the mask avoids a runtime modulo on the hottest
        // simulator path (every L1/L2 access indexes here).
        const std::uint64_t idx = lineIndex(line_addr);
        if (setMask)
            return static_cast<unsigned>(idx & setMask);
        return static_cast<unsigned>(idx % nSets);
    }

    unsigned nSets;
    unsigned setMask = 0;  ///< nSets - 1 when nSets is a power of two
    unsigned nWays;
    std::uint64_t nextLru = 0;
    std::vector<Line> lines;  ///< set-major

    std::uint64_t nHits = 0;
    std::uint64_t nMisses = 0;
};

} // namespace fbdp

#endif // FBDP_CACHE_CACHE_ARRAY_HH
