#include "cache/cache_array.hh"

#include "common/logging.hh"

namespace fbdp {

CacheArray::CacheArray(std::uint64_t size_bytes, unsigned ways)
    : nSets(0), nWays(ways)
{
    fbdp_assert(ways >= 1, "cache needs >= 1 way");
    fbdp_assert(size_bytes % (static_cast<std::uint64_t>(ways)
                              * lineBytes) == 0,
                "cache size not divisible by way size");
    nSets = static_cast<unsigned>(size_bytes
                                  / (static_cast<std::uint64_t>(ways)
                                     * lineBytes));
    fbdp_assert(nSets >= 1, "cache has zero sets");
    if ((nSets & (nSets - 1)) == 0)
        setMask = nSets - 1;
    lines.resize(static_cast<size_t>(nSets) * nWays);
}

CacheArray::Line *
CacheArray::lookup(Addr line_addr, bool touch)
{
    const unsigned set = setOf(line_addr);
    Line *base = &lines[static_cast<size_t>(set) * nWays];
    for (unsigned w = 0; w < nWays; ++w) {
        if (base[w].valid && base[w].lineAddr == line_addr) {
            if (touch)
                base[w].lruSeq = nextLru++;
            ++nHits;
            return &base[w];
        }
    }
    ++nMisses;
    return nullptr;
}

CacheArray::Victim
CacheArray::install(Addr line_addr, bool dirty)
{
    const unsigned set = setOf(line_addr);
    Line *base = &lines[static_cast<size_t>(set) * nWays];

    Line *slot = nullptr;
    for (unsigned w = 0; w < nWays; ++w) {
        if (base[w].valid && base[w].lineAddr == line_addr) {
            // Already present: refresh.
            base[w].dirty = base[w].dirty || dirty;
            base[w].lruSeq = nextLru++;
            return Victim{};
        }
        if (!slot && !base[w].valid)
            slot = &base[w];
    }

    Victim v;
    if (!slot) {
        slot = &base[0];
        for (unsigned w = 1; w < nWays; ++w) {
            if (base[w].lruSeq < slot->lruSeq)
                slot = &base[w];
        }
        v.valid = true;
        v.lineAddr = slot->lineAddr;
        v.dirty = slot->dirty;
    }

    slot->lineAddr = line_addr;
    slot->valid = true;
    slot->dirty = dirty;
    slot->lruSeq = nextLru++;
    return v;
}

bool
CacheArray::invalidate(Addr line_addr)
{
    const unsigned set = setOf(line_addr);
    Line *base = &lines[static_cast<size_t>(set) * nWays];
    for (unsigned w = 0; w < nWays; ++w) {
        if (base[w].valid && base[w].lineAddr == line_addr) {
            base[w].valid = false;
            return true;
        }
    }
    return false;
}

void
CacheArray::reset()
{
    for (auto &l : lines)
        l.valid = false;
    nextLru = 0;
    resetStats();
}

} // namespace fbdp
