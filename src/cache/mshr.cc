#include "cache/mshr.hh"

#include "common/logging.hh"

namespace fbdp {

MshrTable::Entry *
MshrTable::find(Addr line_addr)
{
    auto it = entries.find(line_addr);
    return it == entries.end() ? nullptr : &it->second;
}

MshrTable::Entry *
MshrTable::allocate(Addr line_addr, bool prefetch)
{
    fbdp_assert(!full(), "MSHR allocate on a full table");
    fbdp_assert(!find(line_addr), "duplicate MSHR entry");
    Entry &e = entries[line_addr];
    e.lineAddr = line_addr;
    e.prefetchOnly = prefetch;
    ++nAllocs;
    return &e;
}

void
MshrTable::merge(Entry *e, Waiter w)
{
    if (!w.isPrefetch)
        e->prefetchOnly = false;
    e->waiters.push_back(std::move(w));
    ++nMerges;
}

std::vector<MshrTable::Waiter>
MshrTable::complete(Addr line_addr, Tick when)
{
    auto it = entries.find(line_addr);
    fbdp_assert(it != entries.end(), "completing absent MSHR entry");
    (void)when;
    std::vector<Waiter> waiters = std::move(it->second.waiters);
    entries.erase(it);
    // Callbacks are *not* invoked here: the owning cache installs the
    // fill first, then notifies, so waiters observe a consistent state.
    return waiters;
}

void
MshrTable::reset()
{
    entries.clear();
    resetStats();
}

} // namespace fbdp
