#include "cache/mshr.hh"

#include "common/logging.hh"

namespace fbdp {

MshrTable::Entry *
MshrTable::find(Addr line_addr)
{
    for (const auto &[addr, slot] : index) {
        if (addr == line_addr)
            return &slots[slot];
    }
    return nullptr;
}

MshrTable::Entry *
MshrTable::allocate(Addr line_addr, bool prefetch)
{
    fbdp_assert(!full(), "MSHR allocate on a full table");
    fbdp_assert(!find(line_addr), "duplicate MSHR entry");
    const std::uint32_t slot = freeSlots.back();
    freeSlots.pop_back();
    index.emplace_back(line_addr, slot);
    Entry &e = slots[slot];
    e.lineAddr = line_addr;
    e.prefetchOnly = prefetch;
    ++nAllocs;
    return &e;
}

void
MshrTable::merge(Entry *e, Waiter w)
{
    if (!w.isPrefetch)
        e->prefetchOnly = false;
    e->waiters.push_back(std::move(w));
    ++nMerges;
}

void
MshrTable::complete(Addr line_addr, Tick when, std::vector<Waiter> &out)
{
    (void)when;
    for (auto it = index.begin(); it != index.end(); ++it) {
        if (it->first != line_addr)
            continue;
        Entry &e = slots[it->second];
        // Swap rather than move: the slot inherits out's old buffer,
        // so steady-state completion allocates nothing.
        out.clear();
        out.swap(e.waiters);
        freeSlots.push_back(it->second);
        *it = index.back();
        index.pop_back();
        // Callbacks are *not* invoked here: the owning cache installs
        // the fill first, then notifies, so waiters observe a
        // consistent state.
        return;
    }
    fbdp_assert(false, "completing absent MSHR entry");
}

void
MshrTable::reset()
{
    for (auto &[addr, slot] : index) {
        (void)addr;
        slots[slot].waiters.clear();
    }
    index.clear();
    freeSlots.clear();
    for (unsigned i = maxEntries; i > 0; --i)
        freeSlots.push_back(i - 1);
    resetStats();
}

} // namespace fbdp
