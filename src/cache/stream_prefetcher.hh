/**
 * @file
 * A hardware stream prefetcher at the L2.
 *
 * The paper evaluates software prefetching only and *speculates* that
 * "AMB prefetching will improve performance similarly if hardware
 * prefetching is used" (Section 5.4).  This component lets the
 * repository test that claim: a classic stream detector in the spirit
 * of reference-prediction / stream-buffer designs (Jouppi [11],
 * Sherwood et al. [20], both cited by the paper).
 *
 * Detection: per-core table of candidate streams keyed by the next
 * expected cacheline.  A demand L2 miss that matches a candidate
 * confirms the stream (confidence++) and, once trained, emits
 * prefetches for the next `degree` lines at `distance` lines ahead.
 * A miss matching nothing allocates a new candidate in both
 * directions.  LRU replacement over a small table.
 */

#ifndef FBDP_CACHE_STREAM_PREFETCHER_HH
#define FBDP_CACHE_STREAM_PREFETCHER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace fbdp {

/** Tuning knobs of the L2 stream prefetcher. */
struct StreamPrefetcherConfig
{
    bool enable = false;
    unsigned entriesPerCore = 8;  ///< tracked streams per core
    unsigned trainThreshold = 2;  ///< confirming misses before issue
    unsigned degree = 2;          ///< prefetches per trigger
    unsigned distance = 4;        ///< lines ahead of the miss
};

/** Per-core stream detector; returns the lines to prefetch. */
class StreamPrefetcher
{
  public:
    StreamPrefetcher(const StreamPrefetcherConfig &cfg,
                     unsigned n_cores);

    /**
     * Observe a demand L2 miss; @return line addresses worth
     * prefetching (empty while training).
     */
    std::vector<Addr> onDemandMiss(int core, Addr line_addr);

    std::uint64_t streamsAllocated() const { return nAllocs; }
    std::uint64_t prefetchesSuggested() const { return nSuggested; }

    void reset();

  private:
    struct Entry
    {
        bool valid = false;
        Addr nextLine = 0;       ///< expected next miss (line index)
        int dir = 1;             ///< +1 ascending, -1 descending
        unsigned confidence = 0;
        std::uint64_t lruSeq = 0;
    };

    StreamPrefetcherConfig c;
    unsigned nCores;
    std::vector<Entry> table;  ///< core-major
    std::uint64_t nextLru = 0;

    std::uint64_t nAllocs = 0;
    std::uint64_t nSuggested = 0;
};

} // namespace fbdp

#endif // FBDP_CACHE_STREAM_PREFETCHER_HH
