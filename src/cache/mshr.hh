/**
 * @file
 * Miss Status Holding Registers.
 *
 * Outstanding-miss tracking with same-line merging: a second miss to a
 * line already in flight attaches a waiter to the existing entry
 * instead of generating more memory traffic.  The table size bounds the
 * memory-level parallelism a cache can expose (Table 1: 32 per-core
 * data MSHRs, 64 at the L2).
 */

#ifndef FBDP_CACHE_MSHR_HH
#define FBDP_CACHE_MSHR_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace fbdp {

/** One cache's MSHR table. */
class MshrTable
{
  public:
    /** A party waiting on the fill. */
    struct Waiter
    {
        int coreId = -1;
        bool isStore = false;
        bool isPrefetch = false;
        std::function<void(Tick)> done;
    };

    struct Entry
    {
        Addr lineAddr = 0;
        bool prefetchOnly = true;  ///< no demand waiter attached yet
        std::vector<Waiter> waiters;
    };

    explicit MshrTable(unsigned max_entries) : maxEntries(max_entries) {}

    bool full() const { return entries.size() >= maxEntries; }
    size_t occupancy() const { return entries.size(); }
    unsigned capacity() const { return maxEntries; }

    /** Entry in flight for @p line_addr, or nullptr. */
    Entry *find(Addr line_addr);

    /**
     * Allocate a new entry.  The caller must have checked full() and
     * absence of an existing entry.
     */
    Entry *allocate(Addr line_addr, bool prefetch);

    /** Attach a waiter to an in-flight entry (merge). */
    void merge(Entry *e, Waiter w);

    /**
     * Release the entry for @p line_addr and hand back its waiters.
     * The caller is responsible for invoking the waiters' callbacks
     * (after installing the fill).
     */
    std::vector<Waiter> complete(Addr line_addr, Tick when);

    std::uint64_t merges() const { return nMerges; }
    std::uint64_t allocations() const { return nAllocs; }
    void resetStats() { nMerges = 0; nAllocs = 0; }

    void reset();

  private:
    unsigned maxEntries;
    std::unordered_map<Addr, Entry> entries;

    std::uint64_t nMerges = 0;
    std::uint64_t nAllocs = 0;
};

} // namespace fbdp

#endif // FBDP_CACHE_MSHR_HH
