/**
 * @file
 * Miss Status Holding Registers.
 *
 * Outstanding-miss tracking with same-line merging: a second miss to a
 * line already in flight attaches a waiter to the existing entry
 * instead of generating more memory traffic.  The table size bounds the
 * memory-level parallelism a cache can expose (Table 1: 32 per-core
 * data MSHRs, 64 at the L2).
 *
 * Storage is a fixed slot array plus a compact (lineAddr, slot) index:
 * the table is at most 64 entries, so a linear probe of the index beats
 * hash-map node churn, and recycling each slot's waiter vector keeps
 * the steady state free of per-miss allocations.
 */

#ifndef FBDP_CACHE_MSHR_HH
#define FBDP_CACHE_MSHR_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "common/callback.hh"
#include "common/types.hh"

namespace fbdp {

/** One cache's MSHR table. */
class MshrTable
{
  public:
    /** A party waiting on the fill. */
    struct Waiter
    {
        int coreId = -1;
        bool isStore = false;
        bool isPrefetch = false;
        TickCallback done;
    };

    struct Entry
    {
        Addr lineAddr = 0;
        bool prefetchOnly = true;  ///< no demand waiter attached yet
        std::vector<Waiter> waiters;
    };

    explicit MshrTable(unsigned max_entries)
        : maxEntries(max_entries), slots(max_entries)
    {
        index.reserve(max_entries);
        freeSlots.reserve(max_entries);
        for (unsigned i = max_entries; i > 0; --i)
            freeSlots.push_back(i - 1);
    }

    bool full() const { return index.size() >= maxEntries; }
    size_t occupancy() const { return index.size(); }
    unsigned capacity() const { return maxEntries; }

    /** Entry in flight for @p line_addr, or nullptr. */
    Entry *find(Addr line_addr);

    /**
     * Allocate a new entry.  The caller must have checked full() and
     * absence of an existing entry.
     */
    Entry *allocate(Addr line_addr, bool prefetch);

    /** Attach a waiter to an in-flight entry (merge). */
    void merge(Entry *e, Waiter w);

    /**
     * Release the entry for @p line_addr and swap its waiters into
     * @p out (whose previous contents are discarded; its buffer is
     * handed to the freed slot for reuse).  The caller is responsible
     * for invoking the waiters' callbacks (after installing the fill).
     */
    void complete(Addr line_addr, Tick when, std::vector<Waiter> &out);

    std::uint64_t merges() const { return nMerges; }
    std::uint64_t allocations() const { return nAllocs; }
    void resetStats() { nMerges = 0; nAllocs = 0; }

    void reset();

  private:
    unsigned maxEntries;
    std::vector<Entry> slots;  ///< fixed backing store (stable pointers)
    /** Live entries: (lineAddr, slot).  Order is irrelevant — lookups
     *  are by unique address — so erase swaps with the back. */
    std::vector<std::pair<Addr, std::uint32_t>> index;
    std::vector<std::uint32_t> freeSlots;

    std::uint64_t nMerges = 0;
    std::uint64_t nAllocs = 0;
};

} // namespace fbdp

#endif // FBDP_CACHE_MSHR_HH
