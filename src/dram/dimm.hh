/**
 * @file
 * One DIMM: a rank of logic banks plus the DIMM-wide constraints.
 *
 * Cross-bank rules modelled here:
 *  - tRRD between ACTs to different banks of the DIMM,
 *  - tWTR from the end of a write data burst to the next RD command.
 *
 * The DIMM also keeps the operation counters the power model consumes:
 * activate/precharge pairs and read/write column accesses.  Under the
 * close-page policy every ACT is paired with exactly one auto-PRE, so a
 * single counter covers both (the paper does the same: "their numbers
 * are almost equal under the close page mode with auto precharge").
 */

#ifndef FBDP_DRAM_DIMM_HH
#define FBDP_DRAM_DIMM_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "dram/bank.hh"
#include "dram/dram_timing.hh"

namespace fbdp {

/** Aggregate DRAM operation counts, consumed by the power model. */
struct DramOpCounts
{
    std::uint64_t actPre = 0;  ///< activate/precharge pairs
    std::uint64_t rdCas = 0;   ///< read column accesses (incl. prefetch)
    std::uint64_t wrCas = 0;   ///< write column accesses
    std::uint64_t refresh = 0; ///< auto-refresh commands

    DramOpCounts &
    operator+=(const DramOpCounts &o)
    {
        actPre += o.actPre;
        rdCas += o.rdCas;
        wrCas += o.wrCas;
        refresh += o.refresh;
        return *this;
    }

    std::uint64_t cas() const { return rdCas + wrCas; }
};

/** One DIMM (one rank of logic banks, per the paper's default). */
class Dimm
{
  public:
    Dimm(const DramTiming *timing, unsigned n_banks);

    unsigned numBanks() const
    {
        return static_cast<unsigned>(banks.size());
    }

    Bank &bank(unsigned i) { return banks.at(i); }
    const Bank &bank(unsigned i) const { return banks.at(i); }

    /**
     * Earliest tick an ACT to @p bank_idx may arrive, combining the
     * bank's own constraints with the DIMM tRRD window.
     */
    Tick earliestAct(unsigned bank_idx, Tick not_before) const;

    /** Earliest tick a RD to @p bank_idx may arrive (row must be open). */
    Tick earliestRead(unsigned bank_idx, Tick not_before) const;

    /** Earliest tick a WR to @p bank_idx may arrive. */
    Tick earliestWrite(unsigned bank_idx, Tick not_before) const;

    /** Earliest tick a PRE to @p bank_idx may arrive. */
    Tick earliestPrecharge(unsigned bank_idx, Tick not_before) const;

    /** Apply an ACT arriving at @p at. */
    void activate(unsigned bank_idx, Tick at, std::uint64_t row);

    /**
     * Apply a (possibly grouped) read.  @return the end tick of the
     * last data burst at the device pins.
     */
    Tick read(unsigned bank_idx, Tick at, unsigned n_cas, bool auto_pre);

    /** Apply a write. @return the end tick of the write data burst. */
    Tick write(unsigned bank_idx, Tick at, bool auto_pre);

    /** Apply an explicit precharge (open-page policy only). */
    void precharge(unsigned bank_idx, Tick at);

    /** Any bank with an open row? (Refresh needs all precharged.) */
    bool anyRowOpen() const;

    /**
     * Apply an auto-refresh arriving at @p at: every bank is blocked
     * for tRFC.  All rows must be closed.
     */
    void refresh(Tick at);

    const DramOpCounts &counts() const { return ops; }
    void resetCounts() { ops = DramOpCounts{}; }

    /** Sum of Bank::busyTicks() over the rank (telemetry). */
    Tick
    bankBusyTicks() const
    {
        Tick sum = 0;
        for (const Bank &b : banks)
            sum += b.busyTicks();
        return sum;
    }

    /** Banks with a row currently open (power-state telemetry). */
    unsigned
    rowsOpen() const
    {
        unsigned n = 0;
        for (const Bank &b : banks)
            n += b.rowOpen() ? 1 : 0;
        return n;
    }

  private:
    const DramTiming *t;
    std::vector<Bank> banks;

    Tick lastActAt = 0;
    bool anyActYet = false;
    Tick wrDataEnd = 0;

    DramOpCounts ops;
};

} // namespace fbdp

#endif // FBDP_DRAM_DIMM_HH
