/**
 * @file
 * State machine of one logic DRAM bank.
 *
 * A "logic bank" is the paper's unit: the same-numbered physical bank
 * across all DRAM chips of a rank, precharged / activated / column-
 * accessed together.  The bank tracks, as absolute ticks, the earliest
 * time each command type may *arrive at the device*; the controller is
 * responsible for adding command-propagation delays and for all
 * DIMM-level (cross-bank) constraints.
 *
 * Both row-buffer policies of the paper are supported:
 *  - close page with auto-precharge (default; used with cacheline and
 *    multi-cacheline interleaving), and
 *  - open page (used with page interleaving), where precharge is an
 *    explicit command issued on a row conflict.
 */

#ifndef FBDP_DRAM_BANK_HH
#define FBDP_DRAM_BANK_HH

#include <cstdint>

#include "common/types.hh"
#include "dram/dram_timing.hh"

namespace fbdp {

/** One logic DRAM bank. */
class Bank
{
  public:
    explicit Bank(const DramTiming *timing) : t(timing) {}

    /** Earliest tick an ACT may arrive (bank-local constraints only). */
    Tick actAllowedAt() const { return _actAllowedAt; }

    /** Earliest tick a RD/WR may arrive; only valid with a row open. */
    Tick casAllowedAt() const { return _casAllowedAt; }

    /** Earliest tick a PRE may arrive. */
    Tick preAllowedAt() const { return _preAllowedAt; }

    bool rowOpen() const { return _rowOpen; }
    std::uint64_t openRow() const { return _openRow; }

    /** Apply an ACT arriving at @p at opening @p row. */
    void activate(Tick at, std::uint64_t row);

    /**
     * Apply a read column access (or a pipelined group of @p n_cas
     * accesses spaced casGap apart) arriving at @p at.  With
     * @p auto_pre the bank precharges itself at the earliest legal
     * point after the last access.
     *
     * @return the tick at which the last data transfer ends at the
     *         device pins.
     */
    Tick read(Tick at, unsigned n_cas, bool auto_pre);

    /**
     * Apply a write column access arriving at @p at.
     * @return the tick at which the write data burst ends.
     */
    Tick write(Tick at, bool auto_pre);

    /** Apply an explicit PRE arriving at @p at. */
    void precharge(Tick at);

    /**
     * Block the bank until @p until (refresh in progress).  Only legal
     * with the row closed.
     */
    void blockUntil(Tick until);

    /**
     * Cumulative ticks spent in a row cycle (ACT arrival through
     * precharge completion).  Monotonic — telemetry samples it as
     * deltas to derive per-epoch busy fractions, which is also why it
     * is not cleared by the controller's stat reset.  A row still open
     * at sampling time is not yet accounted.
     */
    Tick busyTicks() const { return _busyTicks; }

    /** Reset to the all-banks-precharged power-up state. */
    void reset();

  private:
    const DramTiming *t;

    Tick _actAllowedAt = 0;
    Tick _casAllowedAt = 0;
    Tick _preAllowedAt = 0;
    Tick _busyFrom = 0;
    Tick _busyTicks = 0;
    bool _rowOpen = false;
    std::uint64_t _openRow = 0;
};

} // namespace fbdp

#endif // FBDP_DRAM_BANK_HH
