/**
 * @file
 * DDR2 device timing parameters.
 *
 * The values mirror Table 2 of the paper exactly (all given in
 * nanoseconds there; stored here in ticks).  The memory-clock period is
 * derived from the data rate (DDR: two transfers per clock), and the
 * data-burst duration is derived from the logic-channel width: two
 * physical 64-bit channels ganged in lockstep move a 64-byte block in
 * two memory cycles.
 */

#ifndef FBDP_DRAM_DRAM_TIMING_HH
#define FBDP_DRAM_DRAM_TIMING_HH

#include "common/types.hh"

namespace fbdp {

/** DRAM device and bus timing, all in ticks (ps). */
struct DramTiming
{
    /** PRE to ACT to the same bank. */
    Tick tRP = nsToTicks(15);
    /** ACT cmd to RD/WR cmd to the same bank. */
    Tick tRCD = nsToTicks(15);
    /** RD cmd to first read data (CAS latency). */
    Tick tCL = nsToTicks(15);
    /** ACT cmd to ACT cmd to the same bank. */
    Tick tRC = nsToTicks(54);
    /** ACT to ACT (or PRE to PRE) across banks of one DIMM. */
    Tick tRRD = nsToTicks(9);
    /** RD cmd to PRE cmd (read to precharge). */
    Tick tRPD = nsToTicks(9);
    /** End of write data to the next RD cmd (same DIMM). */
    Tick tWTR = nsToTicks(9);
    /** ACT cmd to PRE cmd for reads (row-active minimum). */
    Tick tRAS = nsToTicks(39);
    /** WR cmd to the first write-data bus cycle. */
    Tick tWL = nsToTicks(12);
    /** WR cmd to PRE cmd. */
    Tick tWPD = nsToTicks(36);

    /** Average periodic refresh interval (DDR2: 7.8 us). */
    Tick tREFI = nsToTicks(7800);
    /** Refresh cycle time (DDR2 1 Gb class: 127.5 ns). */
    Tick tRFC = nsToTicks(127.5);

    /** Memory clock period; 3000 ps for DDR2-667. */
    Tick memCycle = 3000;
    /**
     * Data-transfer time of one 64-byte block on the (ganged) data
     * path: two memory cycles.
     */
    Tick burst = 6000;

    /**
     * Minimum spacing between consecutive column accesses of one
     * prefetch group; the transfers are fully pipelined back to back,
     * so the gap equals the burst duration.
     */
    Tick casGap() const { return burst; }

    /** Derive clock-dependent fields from a data rate in MT/s. */
    static DramTiming forDataRate(unsigned mts);
};

} // namespace fbdp

#endif // FBDP_DRAM_DRAM_TIMING_HH
