#include "dram/dram_timing.hh"

#include "common/logging.hh"

namespace fbdp {

DramTiming
DramTiming::forDataRate(unsigned mts)
{
    DramTiming t;
    switch (mts) {
      case 533:
        t.memCycle = 3750;
        break;
      case 667:
        t.memCycle = 3000;
        break;
      case 800:
        t.memCycle = 2500;
        break;
      default:
        fatal("unsupported DDR2 data rate %u MT/s (use 533/667/800)",
              mts);
    }
    // Eight transfers of 16 bytes across the ganged pair == 64 bytes in
    // two memory cycles.
    t.burst = 2 * t.memCycle;
    return t;
}

} // namespace fbdp
