#include "dram/dimm.hh"

#include <algorithm>

#include "common/logging.hh"

namespace fbdp {

Dimm::Dimm(const DramTiming *timing, unsigned n_banks)
    : t(timing)
{
    fbdp_assert(n_banks >= 1, "DIMM needs at least one bank");
    banks.reserve(n_banks);
    for (unsigned i = 0; i < n_banks; ++i)
        banks.emplace_back(timing);
}

Tick
Dimm::earliestAct(unsigned bank_idx, Tick not_before) const
{
    Tick earliest = std::max(not_before,
                             banks.at(bank_idx).actAllowedAt());
    if (anyActYet)
        earliest = std::max(earliest, lastActAt + t->tRRD);
    return earliest;
}

Tick
Dimm::earliestRead(unsigned bank_idx, Tick not_before) const
{
    Tick earliest = std::max(not_before,
                             banks.at(bank_idx).casAllowedAt());
    // Write-to-read turnaround on the DIMM's shared data path.
    earliest = std::max(earliest, wrDataEnd + t->tWTR);
    return earliest;
}

Tick
Dimm::earliestWrite(unsigned bank_idx, Tick not_before) const
{
    return std::max(not_before, banks.at(bank_idx).casAllowedAt());
}

Tick
Dimm::earliestPrecharge(unsigned bank_idx, Tick not_before) const
{
    return std::max(not_before, banks.at(bank_idx).preAllowedAt());
}

void
Dimm::activate(unsigned bank_idx, Tick at, std::uint64_t row)
{
    fbdp_assert(at >= earliestAct(bank_idx, 0),
                "ACT violates DIMM-level constraints");
    banks.at(bank_idx).activate(at, row);
    lastActAt = at;
    anyActYet = true;
    ++ops.actPre;
}

Tick
Dimm::read(unsigned bank_idx, Tick at, unsigned n_cas, bool auto_pre)
{
    fbdp_assert(at >= wrDataEnd + t->tWTR || wrDataEnd == 0,
                "RD violates tWTR");
    Tick end = banks.at(bank_idx).read(at, n_cas, auto_pre);
    ops.rdCas += n_cas;
    return end;
}

Tick
Dimm::write(unsigned bank_idx, Tick at, bool auto_pre)
{
    Tick end = banks.at(bank_idx).write(at, auto_pre);
    wrDataEnd = std::max(wrDataEnd, end);
    ++ops.wrCas;
    return end;
}

void
Dimm::precharge(unsigned bank_idx, Tick at)
{
    banks.at(bank_idx).precharge(at);
}

bool
Dimm::anyRowOpen() const
{
    for (const auto &b : banks) {
        if (b.rowOpen())
            return true;
    }
    return false;
}

void
Dimm::refresh(Tick at)
{
    fbdp_assert(!anyRowOpen(), "refresh with open rows");
    for (auto &b : banks)
        b.blockUntil(at + t->tRFC);
    ++ops.refresh;
}

} // namespace fbdp
