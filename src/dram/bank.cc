#include "dram/bank.hh"

#include <algorithm>

#include "common/logging.hh"

namespace fbdp {

void
Bank::activate(Tick at, std::uint64_t row)
{
    fbdp_assert(!_rowOpen, "ACT to a bank with row %llu already open",
                static_cast<unsigned long long>(_openRow));
    fbdp_assert(at >= _actAllowedAt,
                "ACT at %llu before allowed %llu",
                static_cast<unsigned long long>(at),
                static_cast<unsigned long long>(_actAllowedAt));
    _rowOpen = true;
    _openRow = row;
    _busyFrom = at;
    _casAllowedAt = at + t->tRCD;
    _preAllowedAt = at + t->tRAS;
    _actAllowedAt = at + t->tRC;
}

Tick
Bank::read(Tick at, unsigned n_cas, bool auto_pre)
{
    fbdp_assert(_rowOpen, "RD to a precharged bank");
    fbdp_assert(n_cas >= 1, "RD with zero column accesses");
    fbdp_assert(at >= _casAllowedAt,
                "RD at %llu before allowed %llu",
                static_cast<unsigned long long>(at),
                static_cast<unsigned long long>(_casAllowedAt));

    Tick last_cas = at + static_cast<Tick>(n_cas - 1) * t->casGap();
    _casAllowedAt = last_cas + t->casGap();
    _preAllowedAt = std::max(_preAllowedAt, last_cas + t->tRPD);

    Tick data_end = last_cas + t->tCL + t->burst;
    if (auto_pre)
        precharge(_preAllowedAt);
    return data_end;
}

Tick
Bank::write(Tick at, bool auto_pre)
{
    fbdp_assert(_rowOpen, "WR to a precharged bank");
    fbdp_assert(at >= _casAllowedAt,
                "WR at %llu before allowed %llu",
                static_cast<unsigned long long>(at),
                static_cast<unsigned long long>(_casAllowedAt));

    _casAllowedAt = at + t->casGap();
    _preAllowedAt = std::max(_preAllowedAt, at + t->tWPD);

    Tick data_end = at + t->tWL + t->burst;
    if (auto_pre)
        precharge(_preAllowedAt);
    return data_end;
}

void
Bank::precharge(Tick at)
{
    fbdp_assert(_rowOpen, "PRE to an already precharged bank");
    fbdp_assert(at >= _preAllowedAt,
                "PRE at %llu before allowed %llu",
                static_cast<unsigned long long>(at),
                static_cast<unsigned long long>(_preAllowedAt));
    _rowOpen = false;
    _actAllowedAt = std::max(_actAllowedAt, at + t->tRP);
    _busyTicks += (at + t->tRP) - _busyFrom;
}

void
Bank::blockUntil(Tick until)
{
    fbdp_assert(!_rowOpen, "refresh with a row open");
    _actAllowedAt = std::max(_actAllowedAt, until);
}

void
Bank::reset()
{
    _actAllowedAt = 0;
    _casAllowedAt = 0;
    _preAllowedAt = 0;
    _busyFrom = 0;
    _busyTicks = 0;
    _rowOpen = false;
    _openRow = 0;
}

} // namespace fbdp
