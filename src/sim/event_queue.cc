#include "sim/event_queue.hh"

#include <algorithm>

#include "common/logging.hh"

namespace fbdp {

void
EventQueue::siftUp(std::size_t idx, Slot s)
{
    while (idx > 0) {
        const std::size_t parent = (idx - 1) / arity;
        if (!before(s, heap[parent]))
            break;
        heap[idx] = heap[parent];
        heap[idx].ev->heapIdx = static_cast<std::uint32_t>(idx);
        idx = parent;
    }
    heap[idx] = s;
    s.ev->heapIdx = static_cast<std::uint32_t>(idx);
}

void
EventQueue::siftDown(std::size_t idx, Slot s)
{
    const std::size_t n = heap.size();
    for (;;) {
        const std::size_t first = idx * arity + 1;
        if (first >= n)
            break;
        std::size_t best = first;
        const std::size_t last = std::min(first + arity, n);
        for (std::size_t c = first + 1; c < last; ++c) {
            if (before(heap[c], heap[best]))
                best = c;
        }
        if (!before(heap[best], s))
            break;
        heap[idx] = heap[best];
        heap[idx].ev->heapIdx = static_cast<std::uint32_t>(idx);
        idx = best;
    }
    heap[idx] = s;
    s.ev->heapIdx = static_cast<std::uint32_t>(idx);
}

void
EventQueue::removeAt(std::size_t idx)
{
    Slot moved = heap.back();
    heap.pop_back();
    if (idx == heap.size())
        return;  // removed the tail slot itself
    // Re-seat the tail element at the vacated slot.
    if (idx > 0 && before(moved, heap[(idx - 1) / arity]))
        siftUp(idx, moved);
    else
        siftDown(idx, moved);
}

void
EventQueue::schedule(Event *ev, Tick when)
{
    fbdp_assert(when >= curTick,
                "scheduling event in the past: when=%llu now=%llu",
                static_cast<unsigned long long>(when),
                static_cast<unsigned long long>(curTick));
    // A fresh sequence number on every (re)schedule keeps same-tick
    // FIFO order identical to the historical lazy-deletion queue.
    const std::uint64_t seq = nextSeq++;
    ev->_when = when;
    ev->seq = seq;
    const Slot s{when, seq, ev, ev->_priority};
    if (ev->scheduled()) {
        ++stats.reschedules;
        const std::size_t idx = ev->heapIdx;
        if (idx >= Event::batchBase) {
            // Parked in the current dispatch batch: cancel the batch
            // entry and re-insert into the heap under the new key.
            batch[idx - Event::batchBase].ev = nullptr;
        } else {
            // The key can move either way (seq always grows, when may
            // shrink toward now): try up first, else down.
            if (idx > 0 && before(s, heap[(idx - 1) / arity]))
                siftUp(idx, s);
            else
                siftDown(idx, s);
            return;
        }
    } else {
        ++stats.schedules;
        if (heap.empty()) {
            // Empty-heap fast path: the hot schedule→dispatch ping-pong
            // of a single live event never touches the sift machinery.
            ev->heapIdx = 0;
            heap.push_back(s);
            if (stats.peakDepth == 0)
                stats.peakDepth = 1;
            return;
        }
    }
    heap.push_back(s);
    siftUp(heap.size() - 1, s);
    if (heap.size() > stats.peakDepth)
        stats.peakDepth = heap.size();
}

void
EventQueue::deschedule(Event *ev)
{
    if (!ev->scheduled())
        return;
    ++stats.deschedules;
    const std::size_t idx = ev->heapIdx;
    ev->heapIdx = Event::invalidIdx;
    if (idx >= Event::batchBase) {
        batch[idx - Event::batchBase].ev = nullptr;
        return;
    }
    removeAt(idx);
}

/**
 * Move every remaining slot due at @p t from the heap into the batch.
 * Unlike the pop loop this is burst-size-independent: one linear
 * partition of the slot array, one sort of the extracted tail (the
 * strict before() order makes the result identical to popping), and
 * one Floyd rebuild of the survivors.
 */
void
EventQueue::drainSameTick(Tick t)
{
    const std::size_t firstLoose = batch.size();
    std::size_t n = heap.size();
    for (std::size_t i = 0; i < n;) {
        if (heap[i].when == t) {
            batch.push_back(heap[i]);
            heap[i] = heap[--n];  // swap-remove; recheck the mover
        } else {
            ++i;
        }
    }
    if (batch.size() == firstLoose)
        return;  // nothing more was due: the heap is untouched
    ++stats.batchDrains;
    heap.resize(n);
    std::sort(batch.begin() + static_cast<std::ptrdiff_t>(firstLoose),
              batch.end(),
              [](const Slot &a, const Slot &b) { return before(a, b); });
    // Everything popped before the switch sorts ahead of everything
    // drained here (the pops delivered the heap minimum each time),
    // so batch as a whole is in dispatch order.
    if (n > 1) {
        for (std::size_t idx = (n - 2) / arity + 1; idx-- > 0;)
            siftDown(idx, heap[idx]);
    }
    for (std::size_t i = 0; i < n; ++i)
        heap[i].ev->heapIdx = static_cast<std::uint32_t>(i);
    for (std::size_t b = firstLoose; b < batch.size(); ++b)
        batch[b].ev->heapIdx = Event::batchBase
            + static_cast<std::uint32_t>(b);
}

/** Remove the heap top without touching its event's heapIdx. */
void
EventQueue::popTop()
{
    Slot moved = heap.back();
    heap.pop_back();
    if (!heap.empty())
        siftDown(0, moved);
}

bool
EventQueue::step()
{
    if (heap.empty())
        return false;
    Event *top = heap[0].ev;
    curTick = heap[0].when;
    top->heapIdx = Event::invalidIdx;
    if (heap.size() == 1)
        heap.pop_back();  // single-event fast path: no sift, no copy
    else
        removeAt(0);
    ++stats.dispatched;
    top->invoke();
    return true;
}

void
EventQueue::run(Tick limit)
{
    Tick burstTick = maxTick;
    unsigned burstLen = 0;
    while (!heap.empty() && heap[0].when <= limit) {
        const Tick t = heap[0].when;
        curTick = t;
        if (t != burstTick) {
            burstTick = t;
            burstLen = 0;
        }
        if (++burstLen < burstSwitch || heap.size() == 1) {
            // Common case — short tick groups: dispatch straight off
            // the heap, exactly the legacy one-at-a-time walk.
            Event *ev = heap[0].ev;
            ev->heapIdx = Event::invalidIdx;
            if (heap.size() == 1)
                heap.pop_back();  // no sift, no copy
            else
                removeAt(0);
            ++stats.dispatched;
            ev->invoke();
            continue;
        }
        // Long same-tick burst (frame-boundary mailbox drains, wide
        // DIMM callbacks): popping pays a full sift-down per event.
        // Drain the whole remainder of the tick into the batch in one
        // partition-sort-rebuild pass, then dispatch from the batch.
        batch.clear();
        drainSameTick(t);
        for (std::size_t i = 0; i < batch.size(); ++i) {
            if (!batch[i].ev)
                continue;  // descheduled / rescheduled mid-batch
            // Callbacks earlier in the batch may have scheduled new
            // events at this very tick that sort *before* the next
            // batch entry (e.g. a data return at prioData while CPU
            // advances wait at prioCpu).  Drain those from the heap
            // first so the total order matches step()-at-a-time.
            while (!heap.empty() && heap[0].when == t
                   && before(heap[0], batch[i]))
                step();
            Event *ev = batch[i].ev;
            if (!ev)
                continue;  // a drained event cancelled this entry
            ev->heapIdx = Event::invalidIdx;
            batch[i].ev = nullptr;
            ++stats.dispatched;
            ++stats.batchedDispatched;
            ev->invoke();
        }
        batch.clear();
        burstLen = 0;
    }
    if (curTick < limit && limit != maxTick)
        curTick = limit;
}

void
EventQueue::advanceTo(Tick t)
{
    if (t <= curTick)
        return;
    fbdp_assert(heap.empty() || heap[0].when >= t,
                "advanceTo(%llu) would skip an event due at %llu",
                static_cast<unsigned long long>(t),
                static_cast<unsigned long long>(heap[0].when));
    curTick = t;
}

} // namespace fbdp
