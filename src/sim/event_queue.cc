#include "sim/event_queue.hh"

#include <algorithm>

#include "common/logging.hh"

namespace fbdp {

void
EventQueue::siftUp(std::size_t idx, Slot s)
{
    while (idx > 0) {
        const std::size_t parent = (idx - 1) / arity;
        if (!before(s, heap[parent]))
            break;
        heap[idx] = heap[parent];
        heap[idx].ev->heapIdx = static_cast<std::uint32_t>(idx);
        idx = parent;
    }
    heap[idx] = s;
    s.ev->heapIdx = static_cast<std::uint32_t>(idx);
}

void
EventQueue::siftDown(std::size_t idx, Slot s)
{
    const std::size_t n = heap.size();
    for (;;) {
        const std::size_t first = idx * arity + 1;
        if (first >= n)
            break;
        std::size_t best = first;
        const std::size_t last = std::min(first + arity, n);
        for (std::size_t c = first + 1; c < last; ++c) {
            if (before(heap[c], heap[best]))
                best = c;
        }
        if (!before(heap[best], s))
            break;
        heap[idx] = heap[best];
        heap[idx].ev->heapIdx = static_cast<std::uint32_t>(idx);
        idx = best;
    }
    heap[idx] = s;
    s.ev->heapIdx = static_cast<std::uint32_t>(idx);
}

void
EventQueue::removeAt(std::size_t idx)
{
    Slot moved = heap.back();
    heap.pop_back();
    if (idx == heap.size())
        return;  // removed the tail slot itself
    // Re-seat the tail element at the vacated slot.
    if (idx > 0 && before(moved, heap[(idx - 1) / arity]))
        siftUp(idx, moved);
    else
        siftDown(idx, moved);
}

void
EventQueue::schedule(Event *ev, Tick when)
{
    fbdp_assert(when >= curTick,
                "scheduling event in the past: when=%llu now=%llu",
                static_cast<unsigned long long>(when),
                static_cast<unsigned long long>(curTick));
    // A fresh sequence number on every (re)schedule keeps same-tick
    // FIFO order identical to the historical lazy-deletion queue.
    const std::uint64_t seq = nextSeq++;
    ev->_when = when;
    ev->seq = seq;
    const Slot s{when, seq, ev, ev->_priority};
    if (ev->scheduled()) {
        ++stats.reschedules;
        const std::size_t idx = ev->heapIdx;
        // The key can move either way (seq always grows, when may
        // shrink toward now): try up first, else down.
        if (idx > 0 && before(s, heap[(idx - 1) / arity]))
            siftUp(idx, s);
        else
            siftDown(idx, s);
        return;
    }
    ++stats.schedules;
    heap.push_back(s);
    siftUp(heap.size() - 1, s);
    if (heap.size() > stats.peakDepth)
        stats.peakDepth = heap.size();
}

void
EventQueue::deschedule(Event *ev)
{
    if (!ev->scheduled())
        return;
    ++stats.deschedules;
    const std::size_t idx = ev->heapIdx;
    ev->heapIdx = Event::invalidIdx;
    removeAt(idx);
}

bool
EventQueue::step()
{
    if (heap.empty())
        return false;
    Event *top = heap[0].ev;
    curTick = heap[0].when;
    top->heapIdx = Event::invalidIdx;
    removeAt(0);
    ++stats.dispatched;
    top->invoke();
    return true;
}

void
EventQueue::run(Tick limit)
{
    while (!heap.empty() && heap[0].when <= limit)
        step();
    if (curTick < limit && limit != maxTick)
        curTick = limit;
}

} // namespace fbdp
