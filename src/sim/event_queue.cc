#include "sim/event_queue.hh"

#include "common/logging.hh"

namespace fbdp {

void
EventQueue::schedule(Event *ev, Tick when)
{
    fbdp_assert(when >= curTick,
                "scheduling event in the past: when=%llu now=%llu",
                static_cast<unsigned long long>(when),
                static_cast<unsigned long long>(curTick));
    if (ev->_scheduled) {
        // Invalidate the existing heap entry.
        ++ev->liveSeq;
        --liveEvents;
    }
    ev->_when = when;
    ev->_scheduled = true;
    ev->seq = nextSeq++;
    heap.push(HeapEntry{when, ev->_priority, ev->seq, ev, ev->liveSeq});
    ++liveEvents;
}

void
EventQueue::deschedule(Event *ev)
{
    if (!ev->_scheduled)
        return;
    ev->_scheduled = false;
    ++ev->liveSeq;
    --liveEvents;
}

bool
EventQueue::step()
{
    while (!heap.empty()) {
        HeapEntry top = heap.top();
        heap.pop();
        if (top.liveSeq != top.ev->liveSeq)
            continue; // stale entry
        fbdp_assert(top.ev->_scheduled, "live heap entry not scheduled");
        curTick = top.when;
        top.ev->_scheduled = false;
        ++top.ev->liveSeq;
        --liveEvents;
        ++nDispatched;
        top.ev->callback();
        return true;
    }
    return false;
}

void
EventQueue::run(Tick limit)
{
    while (!heap.empty()) {
        const HeapEntry &top = heap.top();
        if (top.liveSeq != top.ev->liveSeq) {
            heap.pop();
            continue;
        }
        if (top.when > limit)
            break;
        step();
    }
    if (curTick < limit && limit != maxTick)
        curTick = limit;
}

} // namespace fbdp
