/**
 * @file
 * Transaction-lifecycle tracing: an always-compiled, zero-overhead-
 * when-disabled observability layer for the event kernel.
 *
 * Components cache a Tracer pointer at bind time (nullptr when tracing
 * is off), so every trace point on a hot path costs exactly one branch
 * on a cached flag when disabled.  When enabled, trace points append
 * fixed-size Records to a per-system ring buffer — no allocation, no
 * formatting, no I/O during simulation.  At the end of a run the buffer
 * is exported as Chrome `trace_event` JSON (the format Perfetto and
 * chrome://tracing load), with one track ("thread") per modelled
 * resource: southbound/northbound links, DRAM banks, AMB caches, the
 * L2 MSHR file and the cores.
 *
 * Event names are required to be string literals (the Record stores the
 * pointer, not a copy); track names are interned once at bind time.
 */

#ifndef FBDP_SIM_TRACE_HH
#define FBDP_SIM_TRACE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"

namespace fbdp {
namespace trace {

/** Transaction kind, the unit of --trace-filter kind selection. */
enum class Kind : std::uint8_t {
    None = 0,  ///< not a transaction-classified event
    Read,      ///< demand read
    Write,     ///< write / writeback
    Prefetch,  ///< software prefetch or AMB/MC prefetch activity
};

/** Pretty name for a kind ("read", "write", "prefetch"). */
const char *kindName(Kind k);

/**
 * Record selection.  Channel filtering is applied at bind time (a
 * controller on a filtered-out channel simply never binds); kind
 * filtering is applied per record for transaction-classified events.
 * Resource-occupancy events (bank rows, link transfers) are not
 * kind-classified and always recorded on bound tracks.
 */
struct Filter
{
    int channel = -1;       ///< -1 = every channel
    bool reads = true;
    bool writes = true;
    bool prefetches = true;

    bool
    wantChannel(unsigned ch) const
    {
        return channel < 0 || static_cast<unsigned>(channel) == ch;
    }

    bool
    want(Kind k) const
    {
        switch (k) {
          case Kind::Read:
            return reads;
          case Kind::Write:
            return writes;
          case Kind::Prefetch:
            return prefetches;
          case Kind::None:
            return true;
        }
        return true;
    }

    /**
     * Parse a `--trace-filter` spec: comma-separated `chan=N` and
     * `kind=a|b` terms, e.g. "chan=0,kind=read|prefetch".  An empty
     * spec selects everything; unknown terms are fatal().
     */
    static Filter parse(const std::string &spec);
};

/** Chrome trace_event phase of one record. */
enum class Ph : std::uint8_t {
    Begin,    ///< "B" — a duration opens on the track
    End,      ///< "E" — the innermost open duration closes
    Instant,  ///< "i" — a point event
    Counter,  ///< "C" — a sampled counter value
};

/** Sentinel for "no address attached". */
constexpr Addr noAddr = ~static_cast<Addr>(0);

/** One fixed-size trace record (name must be a string literal). */
struct Record
{
    Tick ts = 0;
    const char *name = nullptr;
    std::uint64_t value = 0;  ///< Counter payload
    Addr addr = noAddr;
    std::uint32_t track = 0;
    std::int32_t core = -1;
    Ph ph = Ph::Instant;
    Kind kind = Kind::None;
};

/**
 * The per-system trace sink: interned tracks plus a bounded ring of
 * Records.  When the ring wraps, the oldest records are overwritten
 * and counted as dropped; exportJson() repairs any Begin/End pairs the
 * overwrite orphaned, so the output is always structurally valid.
 */
class Tracer
{
  public:
    explicit Tracer(Filter f = Filter{},
                    std::size_t capacity = 1u << 20);

    const Filter &filter() const { return filt; }
    bool wantChannel(unsigned ch) const
    {
        return filt.wantChannel(ch);
    }
    bool want(Kind k) const { return filt.want(k); }

    /** Intern a track by name (bind-time only; not a hot path). */
    std::uint32_t track(const std::string &name);

    unsigned numTracks() const
    {
        return static_cast<unsigned>(trackNames.size());
    }
    const std::string &trackName(std::uint32_t t) const
    {
        return trackNames.at(t);
    }

    // --- recording (hot path; callers hold a cached Tracer*) ---
    void
    begin(std::uint32_t trk, const char *name, Tick ts)
    {
        Record r;
        r.ts = ts;
        r.name = name;
        r.track = trk;
        r.ph = Ph::Begin;
        push(r);
    }

    void
    end(std::uint32_t trk, const char *name, Tick ts)
    {
        Record r;
        r.ts = ts;
        r.name = name;
        r.track = trk;
        r.ph = Ph::End;
        push(r);
    }

    void
    instant(std::uint32_t trk, const char *name, Tick ts,
            Kind kind = Kind::None, int core = -1, Addr addr = noAddr)
    {
        Record r;
        r.ts = ts;
        r.name = name;
        r.track = trk;
        r.ph = Ph::Instant;
        r.kind = kind;
        r.core = core;
        r.addr = addr;
        push(r);
    }

    void
    counter(std::uint32_t trk, const char *name, Tick ts,
            std::uint64_t value)
    {
        Record r;
        r.ts = ts;
        r.name = name;
        r.track = trk;
        r.ph = Ph::Counter;
        r.value = value;
        push(r);
    }

    // --- inspection ---
    /** Records currently held (<= capacity). */
    std::size_t size() const { return ring.size(); }
    /** Records ever pushed. */
    std::uint64_t recorded() const { return nRecorded; }
    /** Records lost to ring wrap-around. */
    std::uint64_t dropped() const { return nDropped; }

    /** Records in chronological (push) order, oldest first. */
    std::vector<Record> chronological() const;

    void clear();

    /**
     * Export the buffer as a Chrome trace_event JSON document: one
     * metadata block naming every track, then the records sorted by
     * timestamp (stable, so same-tick records keep push order).
     * Unmatched Begin records are closed at the final timestamp and
     * orphaned End records (ring wrap) are skipped, keeping the B/E
     * nesting valid for any buffer state.
     *
     * A non-empty @p manifest_json (a complete JSON object, e.g.
     * RunManifest::json()) is embedded as metadata.fbdp_manifest —
     * Chrome's trace format ignores unknown top-level members, and
     * tools learn which build and configuration produced the trace.
     */
    void exportJson(std::ostream &os,
                    const std::string &manifest_json = "") const;

  private:
    void
    push(const Record &r)
    {
        ++nRecorded;
        if (ring.size() < cap) {
            ring.push_back(r);
        } else {
            ring[head] = r;
            if (++head == cap)
                head = 0;
            ++nDropped;
        }
    }

    Filter filt;
    std::size_t cap;
    std::size_t head = 0;  ///< oldest record once the ring has wrapped
    std::vector<Record> ring;
    std::vector<std::string> trackNames;
    std::uint64_t nRecorded = 0;
    std::uint64_t nDropped = 0;
};

} // namespace trace
} // namespace fbdp

#endif // FBDP_SIM_TRACE_HH
