/**
 * @file
 * Building blocks of the sharded event kernel.
 *
 * The system partitions its components into event-queue *shards*: one
 * core/cache shard (queue 0) plus one shard per memory channel.  Time
 * advances in *rounds* of one memory-cycle frame: in round k every
 * shard independently dispatches its events over [kC, (k+1)C), then
 * all lanes meet at a barrier.  Cross-shard traffic — core→MC requests
 * and MC→core completions — never touches a foreign queue directly; it
 * is staged in a FrameMailbox and drained by the owning shard at the
 * *next* round's start.  The one-frame hand-off latency is part of the
 * model's canonical semantics and identical for every thread count, so
 * results are bit-identical whether the lanes run serially or on a
 * thread pool.
 */

#ifndef FBDP_SIM_SHARDS_HH
#define FBDP_SIM_SHARDS_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace fbdp {

/** First tick of the round containing @p t (frame length @p frame). */
inline constexpr Tick
frameFloor(Tick t, Tick frame)
{
    return (t / frame) * frame;
}

/** First frame boundary at or after @p t. */
inline constexpr Tick
frameCeil(Tick t, Tick frame)
{
    return ((t + frame - 1) / frame) * frame;
}

/**
 * Single-producer / single-consumer message channel between two shards,
 * double-buffered by round parity.
 *
 * In round k the producer appends to buffer k&1 while the consumer
 * drains buffer (k&1)^1 — the messages its peer staged in round k-1.
 * The two phases are separated by the round barrier, whose
 * acquire/release ordering also publishes the buffer contents, so the
 * mailbox itself needs no atomics and no locks.  Messages are drained
 * in staging order, which is deterministic because each producer is a
 * single shard executing a deterministic schedule.
 */
template <typename T>
class FrameMailbox
{
  public:
    /** Staging buffer for round @p k (producer side). */
    void
    post(std::size_t k, T msg)
    {
        buf[k & 1].push_back(std::move(msg));
        ++nPosted;
    }

    /** Messages staged in round k-1, to drain in round @p k (consumer
     *  side).  The consumer must clear() after draining. */
    std::vector<T> &
    inbox(std::size_t k)
    {
        return buf[(k & 1) ^ 1];
    }

    bool
    bothEmpty() const
    {
        return buf[0].empty() && buf[1].empty();
    }

    /** Messages ever posted (cheap enough to maintain always; the
     *  kernel profiler reads it, and posted minus drained bounds the
     *  in-flight hand-offs).  Written by the producer shard only —
     *  read it after a barrier, like the buffers themselves. */
    std::uint64_t posted() const { return nPosted; }

  private:
    std::vector<T> buf[2];
    std::uint64_t nPosted = 0;
};

} // namespace fbdp

#endif // FBDP_SIM_SHARDS_HH
