/**
 * @file
 * The event-driven simulation kernel.
 *
 * fbdp is a discrete-event simulator: every component schedules Event
 * objects on a shared EventQueue, which dispatches them in (tick,
 * priority, sequence) order.  The sequence number makes simulation
 * deterministic when several events share a tick, which in turn makes
 * configuration comparisons exact.
 */

#ifndef FBDP_SIM_EVENT_QUEUE_HH
#define FBDP_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hh"

namespace fbdp {

class EventQueue;

/**
 * A schedulable unit of work.  Events are intrusive: components embed
 * them as members and re-schedule the same object; the queue never owns
 * an Event.
 */
class Event
{
  public:
    /** Lower value == dispatched earlier within the same tick. */
    enum Priority : int {
        prioData = 0,      ///< data returns / completions
        prioDefault = 10,  ///< component wake-ups
        prioCpu = 20,      ///< CPU advance, after same-tick completions
    };

    explicit Event(std::function<void()> cb, int prio = prioDefault)
        : callback(std::move(cb)), _priority(prio)
    {}

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    bool scheduled() const { return _scheduled; }
    Tick when() const { return _when; }
    int priority() const { return _priority; }

  private:
    friend class EventQueue;

    std::function<void()> callback;
    int _priority;
    Tick _when = 0;
    std::uint64_t seq = 0;
    bool _scheduled = false;
    /** Stale entries left in the heap after a deschedule/reschedule. */
    std::uint64_t liveSeq = 0;
};

/**
 * Tick-ordered dispatch queue.  A lazy-deletion binary heap: descheduled
 * or rescheduled events leave a stale heap entry behind that is skipped
 * at pop time.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    /** Current simulation time. */
    Tick now() const { return curTick; }

    /**
     * Schedule @p ev at absolute tick @p when (>= now()).  An already
     * scheduled event is moved to the new time.
     */
    void schedule(Event *ev, Tick when);

    /** Remove @p ev from the queue if scheduled. */
    void deschedule(Event *ev);

    /** Dispatch events until the queue is empty or @p limit is passed. */
    void run(Tick limit = maxTick);

    /** Dispatch exactly one event. @return false if the queue is empty. */
    bool step();

    bool empty() const { return liveEvents == 0; }
    std::uint64_t dispatched() const { return nDispatched; }

  private:
    struct HeapEntry {
        Tick when;
        int priority;
        std::uint64_t seq;
        Event *ev;
        std::uint64_t liveSeq;
    };

    struct HeapCmp {
        bool
        operator()(const HeapEntry &a, const HeapEntry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapCmp> heap;
    Tick curTick = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t nDispatched = 0;
    std::uint64_t liveEvents = 0;
};

} // namespace fbdp

#endif // FBDP_SIM_EVENT_QUEUE_HH
