/**
 * @file
 * The event-driven simulation kernel.
 *
 * fbdp is a discrete-event simulator: every component schedules Event
 * objects on a shared EventQueue, which dispatches them in (tick,
 * priority, sequence) order.  The sequence number makes simulation
 * deterministic when several events share a tick, which in turn makes
 * configuration comparisons exact.
 *
 * The queue is an *indexed* d-ary min-heap: each Event remembers its
 * heap slot, so deschedule() and re-schedule() sift the event in place
 * instead of leaving a stale entry behind to be skipped at pop time.
 * Under the controller's constant wake rescheduling this keeps the
 * heap exactly as large as the number of live events.  Callbacks are
 * stored inline in the Event (a context pointer plus a trampoline
 * function pointer): binding a callback never allocates, and dispatch
 * is a single indirect call.
 */

#ifndef FBDP_SIM_EVENT_QUEUE_HH
#define FBDP_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace fbdp {

class EventQueue;

/**
 * A schedulable unit of work.  Events are intrusive: components embed
 * them as members and re-schedule the same object; the queue never owns
 * an Event.
 *
 * The callback is any callable object that fits in the inline storage
 * and is trivially copyable (a capturing lambda over a few pointers, or
 * an object pointer + member-function trampoline).  `[this] { wake(); }`
 * compiles to exactly the object-plus-trampoline form: the capture *is*
 * the context pointer and the lambda's call operator the trampoline.
 */
class Event
{
  public:
    /** Lower value == dispatched earlier within the same tick. */
    enum Priority : int {
        prioData = 0,      ///< data returns / completions
        prioDefault = 10,  ///< component wake-ups
        prioCpu = 20,      ///< CPU advance, after same-tick completions
    };

    /** Inline callback storage, sized for a few captured pointers. */
    static constexpr std::size_t callbackCapacity = 32;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, Event>>>
    explicit Event(F cb, int prio = prioDefault)
        : _priority(prio)
    {
        using Fn = std::decay_t<F>;
        static_assert(sizeof(Fn) <= callbackCapacity,
                      "Event callback too large for inline storage");
        static_assert(alignof(Fn) <= alignof(std::max_align_t),
                      "Event callback over-aligned");
        static_assert(std::is_trivially_copyable_v<Fn>
                          && std::is_trivially_destructible_v<Fn>,
                      "Event callbacks must be trivially copyable "
                      "(capture raw pointers/references, not owning "
                      "objects)");
        new (cbStore) Fn(std::move(cb));
        trampoline = [](void *ctx) {
            (*std::launder(reinterpret_cast<Fn *>(ctx)))();
        };
    }

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    bool scheduled() const { return heapIdx != invalidIdx; }
    Tick when() const { return _when; }
    int priority() const { return _priority; }

  private:
    friend class EventQueue;

    static constexpr std::uint32_t invalidIdx = ~0u;

    /** heapIdx values >= batchBase (and != invalidIdx) mean "extracted
     *  into the current dispatch batch at position heapIdx - batchBase".
     *  Real heap indices stay far below this. */
    static constexpr std::uint32_t batchBase = 0x80000000u;

    void invoke() { trampoline(cbStore); }

    alignas(std::max_align_t) unsigned char cbStore[callbackCapacity];
    void (*trampoline)(void *);
    Tick _when = 0;
    std::uint64_t seq = 0;
    std::uint32_t heapIdx = invalidIdx;  ///< slot in EventQueue::heap
    int _priority;
};

/**
 * Tick-ordered dispatch queue over an indexed d-ary heap.  The heap
 * holds one pointer per *live* event — no stale entries, no lazy
 * deletion — and sifts in place on reschedule.
 */
class EventQueue
{
  public:
    /** Hot-path activity counters (see also dispatched()). */
    struct Counters
    {
        std::uint64_t dispatched = 0;   ///< callbacks invoked
        std::uint64_t schedules = 0;    ///< schedule() of an idle event
        std::uint64_t reschedules = 0;  ///< schedule() of a live event
        std::uint64_t deschedules = 0;  ///< deschedule() of a live event
        std::uint64_t peakDepth = 0;    ///< max simultaneous live events
        /** drainSameTick() passes that extracted at least one event
         *  (one per long same-tick burst). */
        std::uint64_t batchDrains = 0;
        /** Events dispatched from an extracted batch rather than
         *  popped off the heap one at a time. */
        std::uint64_t batchedDispatched = 0;
    };

    EventQueue() = default;

    /** Current simulation time. */
    Tick now() const { return curTick; }

    /**
     * Schedule @p ev at absolute tick @p when (>= now()).  An already
     * scheduled event is moved to the new time.
     */
    void schedule(Event *ev, Tick when);

    /** Remove @p ev from the queue if scheduled. */
    void deschedule(Event *ev);

    /**
     * Dispatch events until the queue is empty or @p limit is passed.
     *
     * Short same-tick groups dispatch one event at a time straight
     * off the heap.  Once a tick has burned burstSwitch dispatches,
     * the remainder of that tick is extracted into a contiguous batch
     * in (priority, seq) order with one partition-sort-rebuild pass
     * and invoked from the batch — amortizing heap pops for
     * frame-boundary bursts without taxing the common case.
     * Callbacks that schedule, deschedule or reschedule events at the
     * *current* tick observe exactly the same total (tick, priority,
     * seq) dispatch order either way: batch entries carry a sentinel
     * index so they can be cancelled or moved, and newly scheduled
     * same-tick events that sort before a pending batch entry are
     * drained from the heap first.  run() is not reentrant —
     * callbacks must not call run().
     */
    void run(Tick limit = maxTick);

    /**
     * Advance now() to @p t without dispatching anything.  Used by the
     * sharded round engine to align every shard's clock at frame
     * boundaries.  No pending event may be due before @p t; a no-op if
     * t <= now().
     */
    void advanceTo(Tick t);

    /** Dispatch exactly one event. @return false if the queue is empty. */
    bool step();

    bool empty() const { return heap.empty(); }
    std::size_t depth() const { return heap.size(); }
    std::uint64_t dispatched() const { return stats.dispatched; }
    const Counters &counters() const { return stats; }

  private:
    /** Heap arity: flatter than binary, so reschedules (the dominant
     *  operation under controller wake churn) sift fewer levels. */
    static constexpr std::size_t arity = 4;

    /** One heap slot.  The sort key (when, priority, seq) is packed
     *  next to the event pointer so sift comparisons walk contiguous
     *  memory instead of dereferencing every compared Event. */
    struct Slot
    {
        Tick when;
        std::uint64_t seq;
        Event *ev;
        std::int32_t prio;
    };

    /** Strict (tick, priority, seq) order; seq is unique, so this is
     *  a total order and dispatch is deterministic. */
    static bool
    before(const Slot &a, const Slot &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        if (a.prio != b.prio)
            return a.prio < b.prio;
        return a.seq < b.seq;
    }

    void siftUp(std::size_t idx, Slot s);
    void siftDown(std::size_t idx, Slot s);
    void removeAt(std::size_t idx);
    void popTop();
    void drainSameTick(Tick t);

    /** Batch size at which run() stops popping same-tick events one
     *  by one (a full sift-down each) and switches to drainSameTick's
     *  partition-sort-rebuild, which costs one linear scan plus one
     *  heapify no matter how large the burst is. */
    static constexpr std::size_t burstSwitch = 8;

    std::vector<Slot> heap;
    /** Same-tick dispatch batch used by run(); entries whose ev is
     *  null were descheduled or rescheduled while the batch ran. */
    std::vector<Slot> batch;
    Tick curTick = 0;
    std::uint64_t nextSeq = 0;
    Counters stats;
};

} // namespace fbdp

#endif // FBDP_SIM_EVENT_QUEUE_HH
