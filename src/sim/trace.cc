#include "sim/trace.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/logging.hh"

namespace fbdp {
namespace trace {

const char *
kindName(Kind k)
{
    switch (k) {
      case Kind::Read:
        return "read";
      case Kind::Write:
        return "write";
      case Kind::Prefetch:
        return "prefetch";
      case Kind::None:
        break;
    }
    return "none";
}

namespace {

/** Split @p s on @p sep into non-empty pieces. */
std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::size_t at = 0;
    while (at <= s.size()) {
        std::size_t end = s.find(sep, at);
        if (end == std::string::npos)
            end = s.size();
        if (end > at)
            out.push_back(s.substr(at, end - at));
        at = end + 1;
    }
    return out;
}

} // anonymous namespace

Filter
Filter::parse(const std::string &spec)
{
    Filter f;
    for (const std::string &term : split(spec, ',')) {
        std::size_t eq = term.find('=');
        if (eq == std::string::npos)
            fatal("--trace-filter term '%s' is not key=value",
                  term.c_str());
        std::string key = term.substr(0, eq);
        std::string val = term.substr(eq + 1);
        if (key == "chan") {
            char *end = nullptr;
            long ch = std::strtol(val.c_str(), &end, 10);
            if (!end || *end != '\0' || val.empty() || ch < 0)
                fatal("--trace-filter chan '%s' is not a channel index",
                      val.c_str());
            f.channel = static_cast<int>(ch);
        } else if (key == "kind") {
            f.reads = f.writes = f.prefetches = false;
            for (const std::string &k : split(val, '|')) {
                if (k == "read")
                    f.reads = true;
                else if (k == "write")
                    f.writes = true;
                else if (k == "prefetch")
                    f.prefetches = true;
                else
                    fatal("--trace-filter kind '%s' (want "
                          "read|write|prefetch)", k.c_str());
            }
            if (!f.reads && !f.writes && !f.prefetches)
                fatal("--trace-filter kind selects nothing");
        } else {
            fatal("--trace-filter key '%s' (want chan= or kind=)",
                  key.c_str());
        }
    }
    return f;
}

Tracer::Tracer(Filter f, std::size_t capacity)
    : filt(f), cap(capacity ? capacity : 1)
{
    ring.reserve(std::min<std::size_t>(cap, 1u << 16));
}

std::uint32_t
Tracer::track(const std::string &name)
{
    for (std::uint32_t i = 0; i < trackNames.size(); ++i) {
        if (trackNames[i] == name)
            return i;
    }
    trackNames.push_back(name);
    return static_cast<std::uint32_t>(trackNames.size() - 1);
}

std::vector<Record>
Tracer::chronological() const
{
    std::vector<Record> out;
    out.reserve(ring.size());
    // Once the ring has wrapped, `head` is the oldest slot.
    for (std::size_t i = 0; i < ring.size(); ++i)
        out.push_back(ring[(head + i) % ring.size()]);
    return out;
}

void
Tracer::clear()
{
    ring.clear();
    head = 0;
    nRecorded = 0;
    nDropped = 0;
}

namespace {

/** Print a tick as microseconds with 1 ps resolution (exact). */
void
printTs(std::ostream &os, Tick ts)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%llu.%06llu",
                  static_cast<unsigned long long>(ts / 1000000),
                  static_cast<unsigned long long>(ts % 1000000));
    os << buf;
}

void
printEscaped(std::ostream &os, const std::string &s)
{
    for (char c : s) {
        unsigned char u = static_cast<unsigned char>(c);
        if (c == '"' || c == '\\')
            os << '\\' << c;
        else if (u < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(u));
            os << buf;
        } else {
            os << c;
        }
    }
}

} // anonymous namespace

void
Tracer::exportJson(std::ostream &os,
                   const std::string &manifest_json) const
{
    std::vector<Record> recs = chronological();
    // Stable sort by timestamp: same-tick records keep push order, so
    // the export is deterministic and viewers see non-decreasing ts.
    std::stable_sort(recs.begin(), recs.end(),
                     [](const Record &a, const Record &b) {
                         return a.ts < b.ts;
                     });

    os << "{\"traceEvents\": [\n";

    // Metadata: one process, one named thread per track.
    os << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
          "\"tid\": 0, \"args\": {\"name\": \"fbdp\"}}";
    for (std::uint32_t t = 0; t < trackNames.size(); ++t) {
        os << ",\n{\"name\": \"thread_name\", \"ph\": \"M\", "
              "\"pid\": 1, \"tid\": " << (t + 1)
           << ", \"args\": {\"name\": \"";
        printEscaped(os, trackNames[t]);
        os << "\"}}";
    }
    for (std::uint32_t t = 0; t < trackNames.size(); ++t) {
        os << ",\n{\"name\": \"thread_sort_index\", \"ph\": \"M\", "
              "\"pid\": 1, \"tid\": " << (t + 1)
           << ", \"args\": {\"sort_index\": " << t << "}}";
    }

    // Ring wrap-around can orphan one half of a Begin/End pair; track
    // the open-duration depth per track so orphaned Ends are skipped
    // and dangling Begins get closed at the end of the trace.
    std::vector<unsigned> depth(trackNames.size(), 0);
    std::vector<const char *> openName(trackNames.size(), nullptr);
    Tick lastTs = recs.empty() ? 0 : recs.back().ts;

    for (const Record &r : recs) {
        if (r.track >= trackNames.size())
            continue;  // bound to a track this Tracer never interned
        if (r.ph == Ph::End) {
            if (depth[r.track] == 0)
                continue;  // Begin was overwritten by ring wrap
            --depth[r.track];
        } else if (r.ph == Ph::Begin) {
            ++depth[r.track];
            openName[r.track] = r.name;
        }

        os << ",\n{\"name\": \"" << (r.name ? r.name : "?")
           << "\", \"cat\": \"sim\", \"ph\": \"";
        switch (r.ph) {
          case Ph::Begin:
            os << 'B';
            break;
          case Ph::End:
            os << 'E';
            break;
          case Ph::Instant:
            os << 'i';
            break;
          case Ph::Counter:
            os << 'C';
            break;
        }
        os << "\", \"pid\": 1, \"tid\": " << (r.track + 1)
           << ", \"ts\": ";
        printTs(os, r.ts);
        if (r.ph == Ph::Instant)
            os << ", \"s\": \"t\"";

        bool args = r.ph == Ph::Counter || r.kind != Kind::None ||
                    r.core >= 0 || r.addr != noAddr;
        if (args) {
            os << ", \"args\": {";
            bool first = true;
            if (r.ph == Ph::Counter) {
                os << "\"value\": " << r.value;
                first = false;
            }
            if (r.kind != Kind::None) {
                os << (first ? "" : ", ") << "\"kind\": \""
                   << kindName(r.kind) << '"';
                first = false;
            }
            if (r.core >= 0) {
                os << (first ? "" : ", ") << "\"core\": " << r.core;
                first = false;
            }
            if (r.addr != noAddr) {
                char buf[32];
                std::snprintf(buf, sizeof(buf), "0x%llx",
                              static_cast<unsigned long long>(r.addr));
                os << (first ? "" : ", ") << "\"addr\": \"" << buf
                   << '"';
            }
            os << '}';
        }
        os << '}';
    }

    // Close whatever is still open so every Begin has an End.
    for (std::uint32_t t = 0; t < trackNames.size(); ++t) {
        while (depth[t] > 0) {
            --depth[t];
            os << ",\n{\"name\": \""
               << (openName[t] ? openName[t] : "?")
               << "\", \"cat\": \"sim\", \"ph\": \"E\", \"pid\": 1, "
                  "\"tid\": " << (t + 1) << ", \"ts\": ";
            printTs(os, lastTs);
            os << '}';
        }
    }

    os << "\n], \"displayTimeUnit\": \"ns\"";
    if (!manifest_json.empty())
        os << ", \"metadata\": {\"fbdp_manifest\": " << manifest_json
           << "}";
    os << "}\n";
}

} // namespace trace
} // namespace fbdp
