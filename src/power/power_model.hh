/**
 * @file
 * DRAM device power estimation (Section 5.5).
 *
 * The paper feeds DDR2 parameters to the Micron system-power
 * calculator at 70 % bandwidth utilisation and 0 % row-buffer hit rate
 * (close-page), and extracts one calibration: an activate/precharge
 * pair consumes roughly four times the dynamic energy of one column
 * access.  With the simulator supplying the ACT/PRE and column-access
 * counts, relative dynamic power follows directly.  Static power
 * (17.5 % of the baseline total per the calculator) can be folded in
 * for total-power comparisons.
 */

#ifndef FBDP_POWER_POWER_MODEL_HH
#define FBDP_POWER_POWER_MODEL_HH

#include "common/types.hh"
#include "dram/dimm.hh"

namespace fbdp {

/** Calibrated DRAM energy model. */
class PowerModel
{
  public:
    /** @param act_pre_weight energy of one ACT/PRE pair relative to
     *                        one column access (paper: 4.0) */
    explicit PowerModel(double act_pre_weight = 4.0,
                        double static_share = 0.175)
        : actPreWeight(act_pre_weight), staticShare(static_share)
    {}

    /** Dynamic energy in column-access units. */
    double
    dynamicEnergy(const DramOpCounts &c) const
    {
        return actPreWeight * static_cast<double>(c.actPre)
            + static_cast<double>(c.cas());
    }

    /** Dynamic power in column-access units per second. */
    double
    dynamicPower(const DramOpCounts &c, Tick window) const
    {
        if (window == 0)
            return 0.0;
        return dynamicEnergy(c)
            / (static_cast<double>(window) * 1e-12);
    }

    /**
     * Dynamic power of @p test relative to @p base (the paper's
     * Fig. 13 metric: device power normalised to FB-DIMM without AMB
     * prefetching; only dynamic power counted).
     */
    double
    relativeDynamicPower(const DramOpCounts &test, Tick test_window,
                         const DramOpCounts &base,
                         Tick base_window) const;

    /**
     * Dynamic energy for the same amount of work, i.e. normalised per
     * executed instruction.  This is the Fig. 13 metric: the paper
     * compares DRAM operation counts for identical instruction
     * windows, so a faster run does not inflate its "power".
     */
    double
    relativeDynamicEnergy(const DramOpCounts &test,
                          double test_insts,
                          const DramOpCounts &base,
                          double base_insts) const;

    /**
     * Total-power ratio including the static share: static power is
     * constant in watts, so it contributes the same to both sides.
     */
    double
    relativeTotalPower(const DramOpCounts &test, Tick test_window,
                       const DramOpCounts &base,
                       Tick base_window) const;

    double actPreToCasRatio() const { return actPreWeight; }
    double staticPowerShare() const { return staticShare; }

  private:
    double actPreWeight;
    double staticShare;
};

} // namespace fbdp

#endif // FBDP_POWER_POWER_MODEL_HH
