#include "power/power_model.hh"

namespace fbdp {

double
PowerModel::relativeDynamicPower(const DramOpCounts &test,
                                 Tick test_window,
                                 const DramOpCounts &base,
                                 Tick base_window) const
{
    const double pb = dynamicPower(base, base_window);
    if (pb == 0.0)
        return 0.0;
    return dynamicPower(test, test_window) / pb;
}

double
PowerModel::relativeDynamicEnergy(const DramOpCounts &test,
                                  double test_insts,
                                  const DramOpCounts &base,
                                  double base_insts) const
{
    if (base_insts <= 0.0 || test_insts <= 0.0)
        return 0.0;
    const double eb = dynamicEnergy(base) / base_insts;
    if (eb == 0.0)
        return 0.0;
    return (dynamicEnergy(test) / test_insts) / eb;
}

double
PowerModel::relativeTotalPower(const DramOpCounts &test,
                               Tick test_window,
                               const DramOpCounts &base,
                               Tick base_window) const
{
    const double pb_dyn = dynamicPower(base, base_window);
    if (pb_dyn == 0.0)
        return 0.0;
    // staticShare is given as a fraction of the *baseline total*:
    //   P_total_base = P_dyn_base + P_static
    //   P_static     = staticShare * P_total_base
    // => P_static = P_dyn_base * staticShare / (1 - staticShare)
    const double p_static = pb_dyn * staticShare / (1.0 - staticShare);
    const double pt_test = dynamicPower(test, test_window) + p_static;
    const double pt_base = pb_dyn + p_static;
    return pt_test / pt_base;
}

} // namespace fbdp
