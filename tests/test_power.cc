/**
 * @file
 * Power-model tests (Section 5.5 calibration).
 */

#include <gtest/gtest.h>

#include "power/power_model.hh"

namespace fbdp {
namespace {

DramOpCounts
counts(std::uint64_t act, std::uint64_t rd, std::uint64_t wr = 0)
{
    DramOpCounts c;
    c.actPre = act;
    c.rdCas = rd;
    c.wrCas = wr;
    return c;
}

TEST(PowerModelTest, FourToOneRatio)
{
    PowerModel pm;
    EXPECT_DOUBLE_EQ(pm.actPreToCasRatio(), 4.0);
    EXPECT_DOUBLE_EQ(pm.dynamicEnergy(counts(1, 0)), 4.0);
    EXPECT_DOUBLE_EQ(pm.dynamicEnergy(counts(0, 1)), 1.0);
    EXPECT_DOUBLE_EQ(pm.dynamicEnergy(counts(10, 5, 5)), 50.0);
}

TEST(PowerModelTest, ClosePageBaselineEnergy)
{
    // Close page: every access is one ACT/PRE + one CAS = 5 units.
    PowerModel pm;
    EXPECT_DOUBLE_EQ(pm.dynamicEnergy(counts(100, 70, 30)), 500.0);
}

TEST(PowerModelTest, GroupFetchTradeoff)
{
    PowerModel pm;
    // 100 reads, close page, no prefetching: 100 ACT + 100 CAS.
    const double base = pm.dynamicEnergy(counts(100, 100));
    // K=4 region fetching at 75% coverage: 25 ACTs, 100 CASes.
    const double ap = pm.dynamicEnergy(counts(25, 100));
    EXPECT_LT(ap, base);
    EXPECT_DOUBLE_EQ(ap / base, 0.4);
}

TEST(PowerModelTest, UselessPrefetchesCanRaiseEnergy)
{
    PowerModel pm;
    const double base = pm.dynamicEnergy(counts(100, 100));
    // K=8, zero coverage: ACT count unchanged, 8x column accesses.
    const double ap = pm.dynamicEnergy(counts(100, 800));
    EXPECT_GT(ap, base);
}

TEST(PowerModelTest, RelativeDynamicPowerScalesWithTime)
{
    PowerModel pm;
    DramOpCounts same = counts(100, 100);
    // Same work in half the time = double the power.
    EXPECT_DOUBLE_EQ(
        pm.relativeDynamicPower(same, 500, same, 1000), 2.0);
}

TEST(PowerModelTest, RelativeDynamicEnergyNormalisesWork)
{
    PowerModel pm;
    DramOpCounts a = counts(50, 100);
    DramOpCounts b = counts(100, 100);
    // Same instruction count: pure op-mix comparison.
    const double r = pm.relativeDynamicEnergy(a, 1e6, b, 1e6);
    EXPECT_DOUBLE_EQ(r, 300.0 / 500.0);
    // Twice the instructions with the same ops halves per-inst energy.
    EXPECT_DOUBLE_EQ(pm.relativeDynamicEnergy(b, 2e6, b, 1e6), 0.5);
}

TEST(PowerModelTest, StaticShareDampsTotalPowerRatio)
{
    PowerModel pm(4.0, 0.175);
    DramOpCounts half = counts(50, 50);
    DramOpCounts full = counts(100, 100);
    const double dyn = pm.relativeDynamicPower(half, 1000, full, 1000);
    const double tot = pm.relativeTotalPower(half, 1000, full, 1000);
    EXPECT_DOUBLE_EQ(dyn, 0.5);
    EXPECT_GT(tot, dyn) << "static floor pulls the ratio toward 1";
    EXPECT_LT(tot, 1.0);
    // Exact: (0.5 + s) / (1 + s) with s = 0.175/0.825.
    const double s = 0.175 / 0.825;
    EXPECT_NEAR(tot, (0.5 + s) / (1.0 + s), 1e-12);
}

TEST(PowerModelTest, ZeroBaselinesReturnZero)
{
    PowerModel pm;
    DramOpCounts zero;
    DramOpCounts some = counts(1, 1);
    EXPECT_DOUBLE_EQ(pm.relativeDynamicPower(some, 1, zero, 1), 0.0);
    EXPECT_DOUBLE_EQ(pm.relativeDynamicEnergy(some, 1, zero, 1), 0.0);
    EXPECT_DOUBLE_EQ(pm.dynamicPower(some, 0), 0.0);
}

TEST(PowerModelTest, CustomWeights)
{
    PowerModel pm(6.0, 0.0);
    EXPECT_DOUBLE_EQ(pm.dynamicEnergy(counts(10, 10)), 70.0);
}

} // namespace
} // namespace fbdp
