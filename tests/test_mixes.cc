/**
 * @file
 * Tests of the Table 3 workload mixes.
 */

#include <gtest/gtest.h>

#include <set>

#include "workload/mixes.hh"
#include "workload/profile.hh"

namespace fbdp {
namespace {

TEST(MixesTest, GroupSizes)
{
    EXPECT_EQ(singleCoreMixes().size(), 12u);
    EXPECT_EQ(dualCoreMixes().size(), 6u);
    EXPECT_EQ(quadCoreMixes().size(), 6u);
    EXPECT_EQ(octoCoreMixes().size(), 3u);
}

TEST(MixesTest, CoreCountsMatchGroup)
{
    for (unsigned c : {1u, 2u, 4u, 8u}) {
        for (const auto &m : mixesFor(c))
            EXPECT_EQ(m.benches.size(), c) << m.name;
    }
}

TEST(MixesTest, Table3Contents)
{
    const WorkloadMix &m = mixByName("2C-1");
    EXPECT_EQ(m.benches,
              (std::vector<std::string>{"wupwise", "swim"}));
    const WorkloadMix &q = mixByName("4C-4");
    EXPECT_EQ(q.benches,
              (std::vector<std::string>{"wupwise", "mgrid", "vpr",
                                        "facerec"}));
    const WorkloadMix &o = mixByName("8C-3");
    EXPECT_EQ(o.benches,
              (std::vector<std::string>{"vpr", "equake", "facerec",
                                        "lucas", "fma3d", "parser",
                                        "gap", "vortex"}));
}

TEST(MixesTest, EveryBenchInEveryMixHasProfile)
{
    for (unsigned c : {1u, 2u, 4u, 8u}) {
        for (const auto &m : mixesFor(c)) {
            for (const auto &b : m.benches)
                EXPECT_EQ(benchProfile(b).name, b);
        }
    }
}

TEST(MixesTest, NoDuplicateWithinMix)
{
    for (unsigned c : {1u, 2u, 4u, 8u}) {
        for (const auto &m : mixesFor(c)) {
            std::set<std::string> s(m.benches.begin(),
                                    m.benches.end());
            EXPECT_EQ(s.size(), m.benches.size()) << m.name;
        }
    }
}

TEST(MixesTest, EightCoreMixesCoverWholeSuite)
{
    // 8C-1 + 8C-2 + 8C-3 together run every program twice (Table 3).
    std::map<std::string, int> count;
    for (const auto &m : octoCoreMixes()) {
        for (const auto &b : m.benches)
            ++count[b];
    }
    EXPECT_EQ(count.size(), 12u);
    for (const auto &[name, n] : count)
        EXPECT_EQ(n, 2) << name;
}

TEST(MixesTest, UnknownNamesAreFatal)
{
    EXPECT_DEATH(mixByName("9C-1"), "unknown workload");
    EXPECT_DEATH(mixesFor(3), "no workload mixes");
}

} // namespace
} // namespace fbdp
