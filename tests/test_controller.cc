/**
 * @file
 * Memory-controller tests without prefetching: exact idle latencies
 * (Section 3.1 / Section 5.2 of the paper), scheduling, write drains,
 * bank conflicts, both channel types.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mc/address_map.hh"
#include "mc/controller.hh"
#include "sim/event_queue.hh"

namespace fbdp {
namespace {

class ControllerTest : public ::testing::Test
{
  protected:
    ControllerConfig
    fbdCfg()
    {
        ControllerConfig c;
        c.fbd = true;
        return c;
    }

    ControllerConfig
    ddr2Cfg()
    {
        ControllerConfig c;
        c.fbd = false;
        // Mirror SystemConfig::controllerConfig(): register + 2T.
        c.cmdDelay = nsToTicks(3) + 2 * c.timing.memCycle;
        return c;
    }

    AddressMapConfig
    mapCfg(Interleave s, unsigned k = 4)
    {
        AddressMapConfig mc;
        mc.channels = 1;
        mc.dimmsPerChannel = 4;
        mc.banksPerDimm = 4;
        mc.regionLines = k;
        mc.scheme = s;
        return mc;
    }

    TransPtr
    makeRead(const AddressMap &map, Addr addr,
             std::vector<Tick> *done = nullptr)
    {
        auto t = makeTransaction();
        t->cmd = MemCmd::Read;
        t->lineAddr = lineAlign(addr);
        t->coord = map.map(addr);
        t->created = eq.now();
        if (done)
            t->onComplete = [done](Tick when) {
                done->push_back(when);
            };
        return t;
    }

    TransPtr
    makeWrite(const AddressMap &map, Addr addr)
    {
        auto t = makeTransaction();
        t->cmd = MemCmd::Write;
        t->lineAddr = lineAlign(addr);
        t->coord = map.map(addr);
        t->created = eq.now();
        return t;
    }

    EventQueue eq;
};

TEST_F(ControllerTest, FbdIdleReadLatencyIs63ns)
{
    // 12 controller + 3 command + 15 ACT + 15 CAS + 6 data + 12 AMB
    // hops = 63 ns (Section 5.2).
    AddressMap map(mapCfg(Interleave::Cacheline));
    MemController mc("mc", &eq, fbdCfg());
    std::vector<Tick> done;
    mc.push(makeRead(map, 0, &done));
    eq.run();
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0], nsToTicks(63));
}

TEST_F(ControllerTest, Ddr2IdleReadLatencyIs57ns)
{
    // 12 controller + 9 command path (wire + register + 2T) + 15 ACT
    // + 15 CAS + 6 data = 57 ns.
    AddressMap map(mapCfg(Interleave::Cacheline));
    MemController mc("mc", &eq, ddr2Cfg());
    std::vector<Tick> done;
    mc.push(makeRead(map, 0, &done));
    eq.run();
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0], nsToTicks(57));
}

TEST_F(ControllerTest, VrlShortensCloseDimms)
{
    AddressMap map(mapCfg(Interleave::Cacheline));
    ControllerConfig cfg = fbdCfg();
    cfg.vrl = true;
    MemController mc("mc", &eq, cfg);
    std::vector<Tick> done;
    mc.push(makeRead(map, 0, &done));  // line 0 -> DIMM 0 (1 hop)
    eq.run();
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0], nsToTicks(63 - 9));  // 1 hop instead of 4
}

TEST_F(ControllerTest, IndependentBanksPipeline)
{
    AddressMap map(mapCfg(Interleave::Cacheline));
    MemController mc("mc", &eq, fbdCfg());
    std::vector<Tick> done;
    // Lines 0..3 hit four different DIMMs (cacheline interleave).
    for (unsigned i = 0; i < 4; ++i)
        mc.push(makeRead(map, static_cast<Addr>(i) * lineBytes,
                         &done));
    eq.run();
    ASSERT_EQ(done.size(), 4u);
    // All four must finish well before a serial execution would
    // (4 x 51 ns of DRAM work); pipelining bounds it near one
    // latency plus a few transfer slots.
    EXPECT_LT(done.back(), nsToTicks(100));
}

TEST_F(ControllerTest, SameBankConflictSerialisesByTrc)
{
    AddressMap map(mapCfg(Interleave::Cacheline));
    MemController mc("mc", &eq, fbdCfg());
    std::vector<Tick> done;
    // Two different rows of the same bank: lines 0 and 2048 both map
    // to dimm 0 / bank 0 under this topology (16 banks * 128 lines).
    mc.push(makeRead(map, 0, &done));
    mc.push(makeRead(map, 2048ull * lineBytes, &done));
    eq.run();
    ASSERT_EQ(done.size(), 2u);
    // Second ACT waits tRC after the first: second completion is at
    // least tRC + (63 - 15 - 12) past the first command.
    EXPECT_GE(done[1], done[0] + nsToTicks(40));
}

TEST_F(ControllerTest, WritesArePostedAndCounted)
{
    AddressMap map(mapCfg(Interleave::Cacheline));
    MemController mc("mc", &eq, fbdCfg());
    for (unsigned i = 0; i < 8; ++i)
        mc.push(makeWrite(map, static_cast<Addr>(i) * lineBytes));
    eq.run();
    EXPECT_EQ(mc.writes(), 8u);
    EXPECT_EQ(mc.reads(), 0u);
    EXPECT_EQ(mc.dramOps().wrCas, 8u);
    EXPECT_EQ(mc.dramOps().actPre, 8u);
    EXPECT_EQ(mc.channelBytes(), 8u * lineBytes);
}

TEST_F(ControllerTest, ReadsPrioritisedOverWrites)
{
    AddressMap map(mapCfg(Interleave::Cacheline));
    MemController mc("mc", &eq, fbdCfg());
    std::vector<Tick> done;
    // A handful of writes below the drain threshold, then a read to a
    // different bank: the read must not queue behind the writes.
    for (unsigned i = 0; i < 4; ++i)
        mc.push(makeWrite(map, static_cast<Addr>(i) * lineBytes));
    mc.push(makeRead(map, 8ull * lineBytes, &done));
    eq.run();
    ASSERT_EQ(done.size(), 1u);
    EXPECT_LE(done[0], nsToTicks(70));
}

TEST_F(ControllerTest, WriteDrainEngagesAboveThreshold)
{
    AddressMap map(mapCfg(Interleave::Cacheline));
    ControllerConfig cfg = fbdCfg();
    cfg.writeDrainHigh = 8;
    cfg.writeDrainLow = 2;
    MemController mc("mc", &eq, cfg);
    std::vector<Tick> done;
    for (unsigned i = 0; i < 16; ++i)
        mc.push(makeWrite(map, static_cast<Addr>(i) * lineBytes));
    mc.push(makeRead(map, 64ull * lineBytes, &done));
    eq.run();
    ASSERT_EQ(done.size(), 1u);
    // In drain mode the writes go first; the read sees real delay.
    EXPECT_GT(done[0], nsToTicks(63));
    EXPECT_EQ(mc.writes(), 16u);
}

TEST_F(ControllerTest, QueueOverflowStillServesEverything)
{
    AddressMap map(mapCfg(Interleave::Cacheline));
    ControllerConfig cfg = fbdCfg();
    cfg.queueSize = 4;
    MemController mc("mc", &eq, cfg);
    std::vector<Tick> done;
    for (unsigned i = 0; i < 64; ++i)
        mc.push(makeRead(map, static_cast<Addr>(i) * lineBytes,
                         &done));
    eq.run();
    EXPECT_EQ(done.size(), 64u);
    EXPECT_EQ(mc.occupancy(), 0u);
}

TEST_F(ControllerTest, LatencyStatsMatchCompletions)
{
    AddressMap map(mapCfg(Interleave::Cacheline));
    MemController mc("mc", &eq, fbdCfg());
    std::vector<Tick> done;
    mc.push(makeRead(map, 0, &done));
    eq.run();
    EXPECT_EQ(mc.readLatSamples(), 1u);
    EXPECT_DOUBLE_EQ(mc.avgReadLatencyNs(), 63.0);
    mc.resetStats();
    EXPECT_EQ(mc.readLatSamples(), 0u);
    EXPECT_EQ(mc.dramOps().actPre, 0u);
}

TEST_F(ControllerTest, LatencyPercentilesFromHistogram)
{
    AddressMap map(mapCfg(Interleave::Cacheline));
    MemController mc("mc", &eq, fbdCfg());
    std::vector<Tick> done;
    for (unsigned i = 0; i < 32; ++i) {
        mc.push(makeRead(map, static_cast<Addr>(i) * lineBytes,
                         &done));
        eq.run();  // serialise: every read is idle-latency
    }
    EXPECT_EQ(mc.readLatencyHist().samples(), 32u);
    // All reads completed at the 63 ns idle latency.
    const double p50 = mc.readLatencyPercentileNs(0.50);
    const double p99 = mc.readLatencyPercentileNs(0.99);
    EXPECT_NEAR(p50, 63.0, 2.1);
    EXPECT_NEAR(p99, 63.0, 2.1);
    EXPECT_DOUBLE_EQ(mc.readLatencyPercentileNs(0.0), 2.0);
    mc.resetStats();
    EXPECT_EQ(mc.readLatencyHist().samples(), 0u);
    EXPECT_DOUBLE_EQ(mc.readLatencyPercentileNs(0.5), 0.0);
}

TEST_F(ControllerTest, OpenPageRowHitsSkipActivation)
{
    AddressMap map(mapCfg(Interleave::Page));
    ControllerConfig cfg = fbdCfg();
    cfg.openPage = true;
    MemController mc("mc", &eq, cfg);
    std::vector<Tick> done;
    // Two lines of the same DRAM page.
    mc.push(makeRead(map, 0, &done));
    mc.push(makeRead(map, lineBytes, &done));
    eq.run();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(mc.dramOps().actPre, 1u) << "row hit reuses the row";
    // The second read pays no ACT: completes one burst after the
    // first.
    EXPECT_LT(done[1], done[0] + nsToTicks(10));
}

TEST_F(ControllerTest, OpenPageConflictPrechargesThenActivates)
{
    AddressMap map(mapCfg(Interleave::Page));
    ControllerConfig cfg = fbdCfg();
    cfg.openPage = true;
    MemController mc("mc", &eq, cfg);
    std::vector<Tick> done;
    mc.push(makeRead(map, 0, &done));
    eq.run();
    // Same bank, different row: page stride = banks*dimms*channels
    // pages.
    const Addr same_bank_next_row =
        static_cast<Addr>(16) * 8192;  // 16 pages on, same bank
    mc.push(makeRead(map, same_bank_next_row, &done));
    eq.run();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(mc.dramOps().actPre, 2u);
    // Second read pays PRE + ACT + CAS.
    EXPECT_GE(done[1] - done[0], nsToTicks(30));
}

TEST_F(ControllerTest, VrlLatencyScalesPerDimm)
{
    // With VRL each DIMM's read returns after (hops x 3 ns); lines
    // 0..3 land on DIMMs 0..3 under cacheline interleaving.
    AddressMap map(mapCfg(Interleave::Cacheline));
    for (unsigned d = 0; d < 4; ++d) {
        EventQueue local_eq;
        ControllerConfig cfg = fbdCfg();
        cfg.vrl = true;
        MemController mc("mc", &local_eq, cfg);
        std::vector<Tick> done;
        auto t = makeTransaction();
        t->cmd = MemCmd::Read;
        t->lineAddr = static_cast<Addr>(d) * lineBytes;
        t->coord = map.map(t->lineAddr);
        t->onComplete = [&done](Tick w) { done.push_back(w); };
        mc.push(std::move(t));
        local_eq.run();
        ASSERT_EQ(done.size(), 1u);
        // 63 ns includes 4 hops; with VRL it is 51 + 3*(d+1).
        EXPECT_EQ(done[0], nsToTicks(51 + 3 * (d + 1)))
            << "DIMM " << d;
    }
}

/** Idle latency scales with the memory clock for both systems. */
class ControllerRateTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(ControllerRateTest, IdleLatenciesTrackDataRate)
{
    const unsigned rate = GetParam();
    AddressMapConfig mcfg;
    mcfg.channels = 1;
    AddressMap map(mcfg);

    // FB-DIMM: the ns-denominated components are rate-independent;
    // only the 2-cycle data burst varies.
    {
        EventQueue eq;
        ControllerConfig cfg;
        cfg.fbd = true;
        cfg.timing = DramTiming::forDataRate(rate);
        MemController mc("mc", &eq, cfg);
        std::vector<Tick> done;
        auto t = makeTransaction();
        t->cmd = MemCmd::Read;
        t->lineAddr = 0;
        t->coord = map.map(0);
        t->onComplete = [&done](Tick w) { done.push_back(w); };
        mc.push(std::move(t));
        eq.run();
        ASSERT_EQ(done.size(), 1u);
        // Commands only leave on memory-cycle boundaries, so the ACT
        // and CAS issue points round up with the clock.
        const Tick cycle = cfg.timing.memCycle;
        const Tick act_issue = ((nsToTicks(12) + cycle - 1) / cycle)
            * cycle;
        const Tick cas_ready = act_issue + nsToTicks(3)
            + cfg.timing.tRCD;
        const Tick cas_issue =
            ((cas_ready - nsToTicks(3) + cycle - 1) / cycle) * cycle;
        const Tick expect = cas_issue + nsToTicks(3)
            + cfg.timing.tCL + cfg.timing.burst + nsToTicks(12);
        EXPECT_EQ(done[0], expect);
    }
}

INSTANTIATE_TEST_SUITE_P(Rates, ControllerRateTest,
                         ::testing::Values(533u, 667u, 800u));

TEST_F(ControllerTest, Ddr2SharedBusSerialisesData)
{
    AddressMap map(mapCfg(Interleave::Cacheline));
    MemController mc("mc", &eq, ddr2Cfg());
    std::vector<Tick> done;
    for (unsigned i = 0; i < 8; ++i)
        mc.push(makeRead(map, static_cast<Addr>(i) * lineBytes,
                         &done));
    eq.run();
    ASSERT_EQ(done.size(), 8u);
    // Eight 6 ns bursts cannot overlap on one bus.
    EXPECT_GE(done.back() - done.front(), nsToTicks(7 * 6));
}

} // namespace
} // namespace fbdp
