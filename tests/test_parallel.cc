/**
 * @file
 * Determinism contract of the sharded parallel event kernel: for any
 * `SystemConfig::threads`, a run is bit-for-bit identical to the
 * serial run of the same machine.  Serial execution walks the exact
 * round/drain schedule the parallel lanes execute, so equality here is
 * structural, not coincidental — but this test is the tripwire that
 * keeps it that way.
 *
 * Every deterministic field of RunResult (counters, exact doubles via
 * hexfloat, per-channel attribution, kernel counters) is folded into
 * one digest string and compared with EXPECT_EQ; only host-time fields
 * (KernelProfile::hostEventSeconds and rates derived from it) are
 * excluded, since wall time legitimately varies.
 */

#include <gtest/gtest.h>

#include <iomanip>
#include <sstream>
#include <string>

#include "system/system.hh"
#include "workload/mixes.hh"

namespace fbdp {
namespace {

SystemConfig
eightChannelMachine()
{
    SystemConfig c = SystemConfig::fbdAp();
    c.logicChannels = 8;
    c.benchmarks = mixByName("2C-1").benches;
    c.warmupInsts = 10'000;
    c.measureInsts = 30'000;
    c.seed = 7;
    c.attribution = true;
    return c;
}

void
digestBreakdown(std::ostringstream &os, const ChannelBreakdown &b)
{
    for (unsigned c = 0; c < numLatClasses; ++c) {
        os << " s" << b.cls[c].samples << " t" << b.cls[c].totalTicks;
        for (unsigned p = 0; p < numLatPhases; ++p)
            os << " p" << b.cls[c].phaseTicks[p];
    }
}

/** Every deterministic field of @p r, one token stream. */
std::string
digest(const RunResult &r)
{
    std::ostringstream os;
    os << std::hexfloat; // doubles bit-exact, not rounded
    os << "ticks " << r.measuredTicks << " lat " << r.avgReadLatencyNs
       << " bw " << r.bandwidthGBs << "\n";
    os << "reads " << r.reads << " writes " << r.writes << " ambHits "
       << r.ambHits << " cov " << r.coverage << " eff " << r.efficiency
       << "\n";
    os << "ipc";
    for (double v : r.ipc)
        os << ' ' << v;
    os << "\ninsts";
    for (std::uint64_t v : r.insts)
        os << ' ' << v;
    os << "\nprefetch " << r.prefetch.policy << ' ' << r.prefetch.issued
       << ' ' << r.prefetch.hits << ' ' << r.prefetch.lateHits << ' '
       << r.prefetch.dropped << ' ' << r.prefetch.evictedUnused << ' '
       << r.prefetch.invalidatedUnused << "\n";
    os << "ops " << r.ops.actPre << ' ' << r.ops.rdCas << ' '
       << r.ops.wrCas << ' ' << r.ops.refresh << "\n";
    os << "l2 " << r.l2Misses << ' ' << r.l2Hits << ' '
       << r.swPrefetchesSent << " late " << r.latePrefetchHits << "\n";
    for (const LatencyClassStats *s :
         {&r.latDemand, &r.latPrefHit, &r.latWrite})
        os << "latclass " << s->samples << ' ' << s->p50Ns << ' '
           << s->p95Ns << ' ' << s->p99Ns << "\n";
    os << "att " << r.attribution.enabled;
    digestBreakdown(os, r.attribution.total);
    for (const ChannelBreakdown &cb : r.attribution.channels)
        digestBreakdown(os, cb);
    for (const CoreCycleBreakdown &core : r.attribution.cores) {
        os << " w" << core.windowTicks;
        for (unsigned i = 0; i < CoreStallAttribution::numReasons; ++i)
            os << " r" << core.stall[i];
    }
    os << "\nruninsts " << r.runInsts << "\n";
    // Kernel counters are part of the contract too: the sharded
    // drains must schedule exactly what the serial rounds schedule.
    // Pool acquire/reuse counters are deliberately absent — the
    // transaction pool is per-thread and process-cumulative, so a
    // second System in the same process reports running totals.
    os << "kernel " << r.kernel.eventsDispatched << ' '
       << r.kernel.schedules << ' ' << r.kernel.reschedules << ' '
       << r.kernel.deschedules << ' ' << r.kernel.peakQueueDepth << ' '
       << r.kernel.poolHighWater << "\n";
    return os.str();
}

std::string
runDigest(SystemConfig c, unsigned threads)
{
    c.threads = threads;
    System sys(c);
    return digest(sys.run());
}

} // namespace

TEST(ParallelDeterminism, TwoLanesMatchSerial)
{
    const SystemConfig c = eightChannelMachine();
    EXPECT_EQ(runDigest(c, 1), runDigest(c, 2));
}

TEST(ParallelDeterminism, EightLanesMatchSerial)
{
    const SystemConfig c = eightChannelMachine();
    EXPECT_EQ(runDigest(c, 1), runDigest(c, 8));
}

TEST(ParallelDeterminism, OversubscribedLanesClampAndMatch)
{
    // More lanes than channel shards exist: laneCount() clamps to
    // 1 + logicChannels and the result is still identical.
    const SystemConfig c = eightChannelMachine();
    EXPECT_EQ(runDigest(c, 1), runDigest(c, 64));
}

TEST(ParallelDeterminism, TwoChannelDefaultMachineMatches)
{
    // The stock two-channel FBD-AP preset (different frame population
    // per round, uneven lane loads) must also digest identically.
    SystemConfig c = SystemConfig::fbdAp();
    c.benchmarks = mixByName("2C-1").benches;
    c.warmupInsts = 10'000;
    c.measureInsts = 30'000;
    c.seed = 7;
    EXPECT_EQ(runDigest(c, 1), runDigest(c, 3));
}

TEST(ParallelDeterminism, RepeatedParallelRunsAreStable)
{
    // Two parallel runs of the same config: no hidden dependence on
    // thread scheduling from run to run.
    const SystemConfig c = eightChannelMachine();
    EXPECT_EQ(runDigest(c, 4), runDigest(c, 4));
}

} // namespace fbdp
