/**
 * @file
 * The kernel self-profiler's contract (SystemConfig::profileKernel):
 *
 *  - invisibility: a profiled run is bit-for-bit identical to the same
 *    run unprofiled, at every thread count — the profiler only reads
 *    clocks and existing state;
 *  - conservation: per lane, busy + drain + barrier-wait telescopes to
 *    the lane's wall time (the three terms come from the same clock
 *    reads, so only floating-point summation error remains);
 *  - shape: one ShardProfile per queue shard, lanes as configured,
 *    shard event counts summing to the kernel total, mailbox traffic
 *    consistent between posters and drainers;
 *  - determinism of the gateable summary: eventImbalance() is exactly
 *    equal across thread counts;
 *  - the SpinBarrier release census and the EventQueue batch counters
 *    the per-shard rows are built from.
 */

#include <gtest/gtest.h>

#include <iomanip>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.hh"
#include "sim/event_queue.hh"
#include "system/system.hh"
#include "workload/mixes.hh"

namespace fbdp {
namespace {

SystemConfig
profiledMachine(unsigned channels)
{
    SystemConfig c = SystemConfig::fbdAp();
    c.logicChannels = channels;
    c.benchmarks = mixByName("2C-1").benches;
    c.warmupInsts = 5'000;
    c.measureInsts = 15'000;
    c.seed = 7;
    return c;
}

/** Every deterministic field the profiler could plausibly disturb,
 *  folded into one token stream (doubles via hexfloat, bit-exact). */
std::string
digest(const RunResult &r)
{
    std::ostringstream os;
    os << std::hexfloat;
    os << "ticks " << r.measuredTicks << " lat " << r.avgReadLatencyNs
       << " bw " << r.bandwidthGBs << "\n";
    os << "reads " << r.reads << " writes " << r.writes << " ambHits "
       << r.ambHits << " cov " << r.coverage << " eff "
       << r.efficiency << "\n";
    os << "ipc";
    for (double v : r.ipc)
        os << ' ' << v;
    os << "\ninsts";
    for (std::uint64_t v : r.insts)
        os << ' ' << v;
    os << "\nops " << r.ops.actPre << ' ' << r.ops.rdCas << ' '
       << r.ops.wrCas << ' ' << r.ops.refresh << "\n";
    os << "l2 " << r.l2Misses << ' ' << r.l2Hits << ' '
       << r.swPrefetchesSent << " late " << r.latePrefetchHits << "\n";
    for (const LatencyClassStats *s :
         {&r.latDemand, &r.latPrefHit, &r.latWrite})
        os << "latclass " << s->samples << ' ' << s->p50Ns << ' '
           << s->p95Ns << ' ' << s->p99Ns << "\n";
    os << "runinsts " << r.runInsts << "\n";
    os << "kernel " << r.kernel.eventsDispatched << ' '
       << r.kernel.schedules << ' ' << r.kernel.reschedules << ' '
       << r.kernel.deschedules << ' ' << r.kernel.peakQueueDepth << ' '
       << r.kernel.batchDrains << ' ' << r.kernel.batchedEvents << ' '
       << r.kernel.poolHighWater << "\n";
    return os.str();
}

RunResult
runProfiled(SystemConfig c, unsigned threads, bool profiled)
{
    c.threads = threads;
    c.profileKernel = profiled;
    System sys(c);
    return sys.run();
}

} // namespace

TEST(KernelProfileInvisibility, SerialOnEqualsOff)
{
    const SystemConfig c = profiledMachine(8);
    EXPECT_EQ(digest(runProfiled(c, 1, false)),
              digest(runProfiled(c, 1, true)));
}

TEST(KernelProfileInvisibility, FourLanesOnEqualsOff)
{
    const SystemConfig c = profiledMachine(8);
    EXPECT_EQ(digest(runProfiled(c, 4, false)),
              digest(runProfiled(c, 4, true)));
}

TEST(KernelProfileInvisibility, EightLanesOnEqualsSerialOff)
{
    // Cross thread count *and* cross profiling in one comparison.
    const SystemConfig c = profiledMachine(8);
    EXPECT_EQ(digest(runProfiled(c, 1, false)),
              digest(runProfiled(c, 8, true)));
}

namespace {

void
checkConservation(const RunResult &r, unsigned expect_lanes)
{
    ASSERT_TRUE(r.kernel.profiled);
    ASSERT_EQ(r.kernel.lanes.size(), expect_lanes);
    for (const LaneProfile &l : r.kernel.lanes) {
        EXPECT_GT(l.rounds, 0u);
        EXPECT_GT(l.wallSeconds, 0.0);
        // busy, drain and wait are differences of the same clock
        // reads, so their sum telescopes to wall up to one rounding
        // per round (~1e-16 s each); 1e-9 s absolute is generous.
        EXPECT_NEAR(l.busySeconds + l.drainSeconds
                        + l.barrierWaitSeconds,
                    l.wallSeconds, 1e-9)
            << "lane " << l.lane;
    }
    // Every round arrives at the barrier exactly once; each arrival is
    // released by exactly one path.
    for (const LaneProfile &l : r.kernel.lanes) {
        EXPECT_EQ(l.lastArrivals + l.spinReleases + l.yieldReleases
                      + l.sleepReleases,
                  l.rounds)
            << "lane " << l.lane;
    }
    // Per barrier round exactly one lane is the last arriver, so the
    // lastArrivals sum over lanes equals the (shared) round count.
    std::uint64_t last = 0;
    for (const LaneProfile &l : r.kernel.lanes) {
        EXPECT_EQ(l.rounds, r.kernel.lanes[0].rounds);
        last += l.lastArrivals;
    }
    EXPECT_EQ(last, r.kernel.lanes[0].rounds);
}

} // namespace

TEST(KernelProfileConservation, SerialLaneTelescopes)
{
    const RunResult r = runProfiled(profiledMachine(4), 1, true);
    checkConservation(r, 1);
    // Serial runs "arrive last" every round: the hook is the inline
    // endOfRound() call.
    EXPECT_EQ(r.kernel.lanes[0].lastArrivals, r.kernel.lanes[0].rounds);
}

TEST(KernelProfileConservation, FourLanesTelescope)
{
    checkConservation(runProfiled(profiledMachine(4), 4, true), 4);
}

TEST(KernelProfileShape, ShardRowsCoverEveryQueue)
{
    const unsigned channels = 4;
    const RunResult r = runProfiled(profiledMachine(channels), 2, true);
    ASSERT_TRUE(r.kernel.profiled);
    ASSERT_EQ(r.kernel.shards.size(), 1 + channels);
    EXPECT_EQ(r.kernel.shards[0].name, "core");
    for (unsigned ch = 0; ch < channels; ++ch)
        EXPECT_EQ(r.kernel.shards[1 + ch].name,
                  "ch" + std::to_string(ch));

    // Shard dispatch counts partition the kernel total.
    std::uint64_t events = 0, in = 0, out = 0;
    for (const ShardProfile &s : r.kernel.shards) {
        events += s.events;
        in += s.mailboxIn;
        out += s.mailboxOut;
        EXPECT_GT(s.events, 0u) << s.name;
    }
    EXPECT_EQ(events, r.kernel.eventsDispatched);

    // Mailbox traffic: nothing is drained that was not posted; at
    // most the final round's hand-offs are still in flight when the
    // run stops.
    EXPECT_GT(out, 0u);
    EXPECT_LE(in, out);

    // Two lanes over five shards: lane 0 owns the core shard, lane 1
    // all channel shards.
    ASSERT_EQ(r.kernel.lanes.size(), 2u);
    unsigned owned = 0;
    for (const LaneProfile &l : r.kernel.lanes)
        owned += l.shardsOwned;
    EXPECT_EQ(owned, 1 + channels);
    EXPECT_EQ(r.kernel.shards[0].lane, 0u);
}

TEST(KernelProfileShape, UnprofiledRunStaysEmpty)
{
    const RunResult r = runProfiled(profiledMachine(2), 2, false);
    EXPECT_FALSE(r.kernel.profiled);
    EXPECT_TRUE(r.kernel.shards.empty());
    EXPECT_TRUE(r.kernel.lanes.empty());
    EXPECT_EQ(r.kernel.eventImbalance(), 0.0);
    EXPECT_EQ(r.kernel.busyImbalance(), 0.0);
    // The aggregate counters stay on regardless of profiling.
    EXPECT_GT(r.kernel.eventsDispatched, 0u);
}

TEST(KernelProfileShape, EventImbalanceIsThreadCountInvariant)
{
    const SystemConfig c = profiledMachine(4);
    const RunResult serial = runProfiled(c, 1, true);
    const RunResult wide = runProfiled(c, 4, true);
    ASSERT_GT(serial.kernel.eventImbalance(), 0.0);
    // Dispatch counts are deterministic, so the summary is exactly
    // equal — this is what lets CI gate it at tolerance zero.
    EXPECT_EQ(serial.kernel.eventImbalance(),
              wide.kernel.eventImbalance());
    for (std::size_t i = 0; i < serial.kernel.shards.size(); ++i) {
        EXPECT_EQ(serial.kernel.shards[i].events,
                  wide.kernel.shards[i].events)
            << serial.kernel.shards[i].name;
    }
}

TEST(SpinBarrierRelease, SoloArriverIsAlwaysLast)
{
    SpinBarrier b(1);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(b.arriveAndWait(), SpinBarrier::Release::Last);
    EXPECT_EQ(b.rounds(), 100u);
}

TEST(SpinBarrierRelease, EveryRoundHasExactlyOneLastArriver)
{
    constexpr std::uint64_t rounds = 2'000;
    SpinBarrier b(2);
    std::uint64_t last[2] = {0, 0}, total[2] = {0, 0};
    auto lane = [&b, &last, &total](int who) {
        for (std::uint64_t i = 0; i < rounds; ++i) {
            const SpinBarrier::Release rel = b.arriveAndWait();
            ++total[who];
            if (rel == SpinBarrier::Release::Last)
                ++last[who];
        }
    };
    std::thread peer(lane, 1);
    lane(0);
    peer.join();
    EXPECT_EQ(total[0], rounds);
    EXPECT_EQ(total[1], rounds);
    EXPECT_EQ(last[0] + last[1], rounds);
    EXPECT_EQ(b.rounds(), rounds);
}

TEST(EventQueueBatchCounters, SameTickBurstIsCountedOnce)
{
    EventQueue eq;
    int fired = 0;
    std::vector<std::unique_ptr<Event>> evs;
    for (int i = 0; i < 32; ++i)
        evs.push_back(std::make_unique<Event>([&fired] { ++fired; }));
    for (auto &e : evs)
        eq.schedule(e.get(), 100);
    eq.run(100);
    EXPECT_EQ(fired, 32);
    EXPECT_EQ(eq.counters().dispatched, 32u);
    // One long burst: one drain pass, and everything past the
    // burst-switch threshold dispatched from the batch.
    EXPECT_EQ(eq.counters().batchDrains, 1u);
    EXPECT_GT(eq.counters().batchedDispatched, 0u);
    EXPECT_LT(eq.counters().batchedDispatched,
              eq.counters().dispatched);

    // A short group never trips the batch path.
    EventQueue small;
    Event a([] {}), c([] {});
    small.schedule(&a, 50);
    small.schedule(&c, 50);
    small.run(50);
    EXPECT_EQ(small.counters().batchDrains, 0u);
    EXPECT_EQ(small.counters().batchedDispatched, 0u);
}

} // namespace fbdp
