/**
 * @file
 * Unit tests of the L2 hardware stream prefetcher.
 */

#include <gtest/gtest.h>

#include "cache/stream_prefetcher.hh"

namespace fbdp {
namespace {

Addr
line(std::uint64_t i)
{
    return i * lineBytes;
}

StreamPrefetcherConfig
cfg(unsigned train = 2, unsigned degree = 2, unsigned distance = 4)
{
    StreamPrefetcherConfig c;
    c.enable = true;
    c.trainThreshold = train;
    c.degree = degree;
    c.distance = distance;
    return c;
}

TEST(StreamPrefetcherTest, FirstMissOnlyAllocates)
{
    StreamPrefetcher p(cfg(), 1);
    EXPECT_TRUE(p.onDemandMiss(0, line(100)).empty());
    EXPECT_EQ(p.streamsAllocated(), 1u);
}

TEST(StreamPrefetcherTest, TrainsOnSequentialMisses)
{
    StreamPrefetcher p(cfg(2, 2, 4), 1);
    p.onDemandMiss(0, line(100));
    auto out = p.onDemandMiss(0, line(101));
    // Second sequential miss reaches the threshold.
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], line(105));
    EXPECT_EQ(out[1], line(106));
}

TEST(StreamPrefetcherTest, KeepsEmittingAlongTheStream)
{
    StreamPrefetcher p(cfg(2, 1, 4), 1);
    p.onDemandMiss(0, line(10));
    for (std::uint64_t l = 11; l < 20; ++l) {
        auto out = p.onDemandMiss(0, line(l));
        ASSERT_EQ(out.size(), 1u) << "line " << l;
        EXPECT_EQ(out[0], line(l + 4));
    }
}

TEST(StreamPrefetcherTest, RandomMissesNeverTrain)
{
    StreamPrefetcher p(cfg(), 1);
    std::uint64_t l = 1;
    for (int i = 0; i < 100; ++i) {
        auto out = p.onDemandMiss(0, line(l));
        EXPECT_TRUE(out.empty());
        l = l * 2862933555777941757ull + 3037000493ull;  // scramble
        l &= 0xffffff;
    }
    EXPECT_EQ(p.prefetchesSuggested(), 0u);
}

TEST(StreamPrefetcherTest, CoresAreIsolated)
{
    StreamPrefetcher p(cfg(2, 1, 4), 2);
    p.onDemandMiss(0, line(100));
    // Core 1 touching the continuation must not train core 0's
    // stream.
    EXPECT_TRUE(p.onDemandMiss(1, line(101)).empty());
    EXPECT_FALSE(p.onDemandMiss(0, line(101)).empty());
}

TEST(StreamPrefetcherTest, InterleavedStreamsBothTrack)
{
    StreamPrefetcher p(cfg(2, 1, 4), 1);
    p.onDemandMiss(0, line(1000));
    p.onDemandMiss(0, line(5000));
    auto a = p.onDemandMiss(0, line(1001));
    auto b = p.onDemandMiss(0, line(5001));
    ASSERT_EQ(a.size(), 1u);
    ASSERT_EQ(b.size(), 1u);
    EXPECT_EQ(a[0], line(1005));
    EXPECT_EQ(b[0], line(5005));
}

TEST(StreamPrefetcherTest, TableLruEvictsStaleStreams)
{
    StreamPrefetcherConfig c = cfg(2, 1, 4);
    c.entriesPerCore = 2;
    StreamPrefetcher p(c, 1);
    p.onDemandMiss(0, line(100));
    p.onDemandMiss(0, line(200));
    p.onDemandMiss(0, line(300));  // evicts the 100-stream
    EXPECT_TRUE(p.onDemandMiss(0, line(101)).empty())
        << "evicted stream must retrain";
}

TEST(StreamPrefetcherTest, ResetClears)
{
    StreamPrefetcher p(cfg(2, 1, 4), 1);
    p.onDemandMiss(0, line(100));
    p.onDemandMiss(0, line(101));
    p.reset();
    EXPECT_EQ(p.streamsAllocated(), 0u);
    EXPECT_TRUE(p.onDemandMiss(0, line(102)).empty());
}

TEST(StreamPrefetcherTest, HigherDegreeEmitsMore)
{
    StreamPrefetcher p(cfg(2, 4, 8), 1);
    p.onDemandMiss(0, line(100));
    auto out = p.onDemandMiss(0, line(101));
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(out[0], line(109));
    EXPECT_EQ(out[3], line(112));
}

} // namespace
} // namespace fbdp
