/**
 * @file
 * Unit tests of the interleaving schemes, including the Figure 2
 * layouts the paper illustrates.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "mc/address_map.hh"

namespace fbdp {
namespace {

AddressMapConfig
baseCfg(Interleave s, unsigned k = 4)
{
    AddressMapConfig c;
    c.channels = 2;
    c.dimmsPerChannel = 4;
    c.banksPerDimm = 4;
    c.rowBytes = 8192;
    c.regionLines = k;
    c.scheme = s;
    return c;
}

TEST(AddressMapTest, CachelineInterleaveRoundRobinsChannels)
{
    AddressMap m(baseCfg(Interleave::Cacheline));
    for (unsigned i = 0; i < 16; ++i) {
        DramCoord c = m.map(static_cast<Addr>(i) * lineBytes);
        EXPECT_EQ(c.channel, i % 2) << "line " << i;
    }
}

TEST(AddressMapTest, CachelineInterleaveSpreadsBanks)
{
    AddressMap m(baseCfg(Interleave::Cacheline));
    // Consecutive lines on one channel walk all DIMMs then banks.
    std::set<std::pair<unsigned, unsigned>> seen;
    for (unsigned i = 0; i < 32; ++i) {
        DramCoord c = m.map(static_cast<Addr>(i) * lineBytes);
        seen.insert({c.dimm, c.bank});
    }
    EXPECT_EQ(seen.size(), 16u);  // 4 dimms x 4 banks
}

TEST(AddressMapTest, MultiCachelineKeepsRegionInOneBankRow)
{
    AddressMap m(baseCfg(Interleave::MultiCacheline, 4));
    for (Addr region = 0; region < 64; ++region) {
        DramCoord first = m.map(region * 4 * lineBytes);
        for (unsigned j = 1; j < 4; ++j) {
            DramCoord c = m.map((region * 4 + j) * lineBytes);
            EXPECT_TRUE(first.samePage(c))
                << "region " << region << " line " << j;
            EXPECT_EQ(c.regionBase, region * 4 * lineBytes);
            EXPECT_EQ(c.colLine, first.colLine + j);
        }
    }
}

TEST(AddressMapTest, MultiCachelineRoundRobinsGroups)
{
    AddressMap m(baseCfg(Interleave::MultiCacheline, 4));
    DramCoord g0 = m.map(0);
    DramCoord g1 = m.map(4 * lineBytes);
    DramCoord g2 = m.map(8 * lineBytes);
    EXPECT_EQ(g0.channel, 0u);
    EXPECT_EQ(g1.channel, 1u);
    EXPECT_EQ(g2.channel, 0u);
    EXPECT_NE(g0.dimm, g2.dimm);  // next group on same channel moves
}

TEST(AddressMapTest, Figure2FourWayExample)
{
    // Figure 2: blocks 4,5,6,7 form one group; a demand on block 6
    // prefetches 4, 5 and 7 from the same page.
    AddressMap m(baseCfg(Interleave::MultiCacheline, 4));
    DramCoord six = m.map(6 * lineBytes);
    EXPECT_EQ(six.regionBase, 4 * lineBytes);
    DramCoord four = m.map(4 * lineBytes);
    DramCoord seven = m.map(7 * lineBytes);
    EXPECT_TRUE(six.samePage(four));
    EXPECT_TRUE(six.samePage(seven));
}

TEST(AddressMapTest, PageInterleaveKeepsRowTogether)
{
    AddressMap m(baseCfg(Interleave::Page));
    const unsigned lines_per_row = 8192 / lineBytes;
    DramCoord first = m.map(0);
    for (unsigned j = 1; j < lines_per_row; ++j) {
        DramCoord c = m.map(static_cast<Addr>(j) * lineBytes);
        EXPECT_TRUE(first.samePage(c));
        EXPECT_EQ(c.colLine, j);
    }
    DramCoord next = m.map(static_cast<Addr>(lines_per_row)
                           * lineBytes);
    EXPECT_FALSE(first.samePage(next));
    EXPECT_EQ(next.channel, 1u);
}

TEST(AddressMapTest, PageInterleaveRegionWithinPage)
{
    AddressMap m(baseCfg(Interleave::Page, 4));
    DramCoord c = m.map(6 * lineBytes);
    EXPECT_EQ(c.regionBase, 4 * lineBytes);
    // Region lines stay inside the page.
    DramCoord r0 = m.map(c.regionBase);
    EXPECT_TRUE(c.samePage(r0));
}

TEST(AddressMapTest, DistinctAddressesDistinctCoords)
{
    // Over a large window, (channel,dimm,bank,row,col) must be
    // injective per line.
    AddressMap m(baseCfg(Interleave::MultiCacheline, 4));
    std::map<std::tuple<unsigned, unsigned, unsigned, std::uint64_t,
                        unsigned>, Addr> seen;
    for (Addr line = 0; line < 4096; ++line) {
        DramCoord c = m.map(line * lineBytes);
        auto key = std::make_tuple(c.channel, c.dimm, c.bank, c.row,
                                   c.colLine);
        auto [it, inserted] = seen.emplace(key, line);
        EXPECT_TRUE(inserted)
            << "collision between line " << line << " and "
            << it->second;
    }
}

TEST(AddressMapTest, RegionMustDivideRow)
{
    AddressMapConfig c = baseCfg(Interleave::MultiCacheline, 3);
    EXPECT_DEATH(AddressMap m(c), "divide");
}

TEST(AddressMapTest, InterleaveNames)
{
    EXPECT_STREQ(interleaveName(Interleave::Cacheline), "cacheline");
    EXPECT_STREQ(interleaveName(Interleave::MultiCacheline),
                 "multi-cacheline");
    EXPECT_STREQ(interleaveName(Interleave::Page), "page");
}

/** Property sweep: every scheme, every K, injective and in-bounds. */
class AddressMapPropTest
    : public ::testing::TestWithParam<std::tuple<Interleave, unsigned>>
{
};

TEST_P(AddressMapPropTest, CoordsInBoundsAndRegionConsistent)
{
    auto [scheme, k] = GetParam();
    AddressMap m(baseCfg(scheme, k));
    for (Addr line = 0; line < 2048; ++line) {
        const Addr a = line * lineBytes + (line % lineBytes);
        DramCoord c = m.map(a);
        EXPECT_LT(c.channel, 2u);
        EXPECT_LT(c.dimm, 4u);
        EXPECT_LT(c.bank, 4u);
        EXPECT_LT(c.colLine, 8192u / lineBytes);
        // The region base contains the address.
        EXPECT_LE(c.regionBase, lineAlign(a));
        EXPECT_LT(lineAlign(a), c.regionBase + k * lineBytes);
        // Region base maps to the same bank (multi-CL and page).
        if (scheme != Interleave::Cacheline) {
            DramCoord rb = m.map(c.regionBase);
            EXPECT_TRUE(rb.samePage(c));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AddressMapPropTest,
    ::testing::Combine(::testing::Values(Interleave::Cacheline,
                                         Interleave::MultiCacheline,
                                         Interleave::Page),
                       ::testing::Values(2u, 4u, 8u)));

} // namespace
} // namespace fbdp
