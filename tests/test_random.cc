/**
 * @file
 * Deterministic RNG tests.
 */

#include <gtest/gtest.h>

#include "common/random.hh"

namespace fbdp {
namespace {

TEST(RngTest, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, SeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_EQ(same, 0);
}

TEST(RngTest, ZeroSeedStillWorks)
{
    Rng r(0);
    EXPECT_NE(r.next(), 0u);
}

TEST(RngTest, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 10'000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(RngTest, UniformInUnitInterval)
{
    Rng r(9);
    double sum = 0;
    for (int i = 0; i < 100'000; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 100'000, 0.5, 0.01);
}

TEST(RngTest, ChanceMatchesProbability)
{
    Rng r(11);
    int hits = 0;
    for (int i = 0; i < 100'000; ++i)
        hits += r.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 100'000.0, 0.3, 0.01);
}

TEST(RngTest, GeometricMeanApproximatesTarget)
{
    Rng r(13);
    double sum = 0;
    const int n = 200'000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(r.geometric(8.0));
    EXPECT_NEAR(sum / n, 8.0, 0.8);
}

TEST(RngTest, GeometricRespectsFloor)
{
    Rng r(17);
    for (int i = 0; i < 10'000; ++i)
        EXPECT_GE(r.geometric(2.0, 3), 3u);
}

TEST(RngTest, GeometricZeroMean)
{
    Rng r(19);
    EXPECT_EQ(r.geometric(0.0), 0u);
    EXPECT_EQ(r.geometric(-1.0, 5), 5u);
}

} // namespace
} // namespace fbdp
