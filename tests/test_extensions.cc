/**
 * @file
 * System-level tests of the extension features: the hardware stream
 * prefetcher, controller-level prefetching, and their interplay with
 * the paper's machines.
 */

#include <gtest/gtest.h>

#include "system/runner.hh"
#include "system/system.hh"
#include "workload/mixes.hh"

namespace fbdp {
namespace {

SystemConfig
quick(SystemConfig c)
{
    c.warmupInsts = 20'000;
    c.measureInsts = 120'000;
    return c;
}

TEST(ExtensionsTest, HwPrefetchHelpsStreamsWithoutSoftware)
{
    SystemConfig off = quick(SystemConfig::fbdBase());
    off.swPrefetch = false;
    SystemConfig on = off;
    on.hwPrefetch = true;
    auto r_off = runMix(off, mixByName("1C-swim"));
    auto r_on = runMix(on, mixByName("1C-swim"));
    EXPECT_GT(r_on.ipcSum(), r_off.ipcSum() * 1.01)
        << "stream detector must recover some of the SP benefit";
}

TEST(ExtensionsTest, HwPrefetchHarmlessOnIrregularCode)
{
    SystemConfig off = quick(SystemConfig::fbdBase());
    off.swPrefetch = false;
    SystemConfig on = off;
    on.hwPrefetch = true;
    auto r_off = runMix(off, mixByName("1C-parser"));
    auto r_on = runMix(on, mixByName("1C-parser"));
    EXPECT_GT(r_on.ipcSum(), r_off.ipcSum() * 0.97);
}

TEST(ExtensionsTest, HwPrefetcherVisibleThroughHierarchy)
{
    SystemConfig c = quick(SystemConfig::fbdBase());
    c.hwPrefetch = true;
    c.benchmarks = {"swim"};
    System sys(c);
    sys.run();
    ASSERT_NE(sys.hierarchy().hwPrefetcher(), nullptr);
    EXPECT_GT(sys.hierarchy().hwPrefetcher()->prefetchesSuggested(),
              0u);
}

TEST(ExtensionsTest, McPrefetchRunsAndCovers)
{
    SystemConfig c = quick(SystemConfig::fbdBase());
    c.scheme = Interleave::MultiCacheline;
    c.mcPrefetch = true;
    auto r = runMix(c, mixByName("1C-swim"));
    EXPECT_GT(r.ambHits, 0u) << "MC hits reported through ambHits";
    EXPECT_GT(r.coverage, 0.3);
    EXPECT_LE(r.coverage, 0.75 + 1e-9);
}

TEST(ExtensionsTest, McPrefetchConsumesMoreChannelBandwidth)
{
    SystemConfig mcp = quick(SystemConfig::fbdBase());
    mcp.scheme = Interleave::MultiCacheline;
    mcp.mcPrefetch = true;
    auto r_mcp = runMix(mcp, mixByName("1C-swim"));
    auto r_ap = runMix(quick(SystemConfig::fbdAp()),
                       mixByName("1C-swim"));
    // Same region fetches, but MCP's prefetches cross the channel.
    EXPECT_GT(r_mcp.bandwidthGBs, r_ap.bandwidthGBs * 1.3);
}

TEST(ExtensionsTest, McPrefetchBeatsPlainFbdAtOneCore)
{
    auto base = runMix(quick(SystemConfig::fbdBase()),
                       mixByName("1C-swim"));
    SystemConfig mcp = quick(SystemConfig::fbdBase());
    mcp.scheme = Interleave::MultiCacheline;
    mcp.mcPrefetch = true;
    auto r = runMix(mcp, mixByName("1C-swim"));
    EXPECT_GT(r.ipcSum(), base.ipcSum());
}

TEST(ExtensionsTest, ApBeatsMcPrefetchAtEightCores)
{
    // The paper's Section 6 argument: at high core counts the
    // channel is precious and MCP wastes it.
    SystemConfig mcp = quick(SystemConfig::fbdBase());
    mcp.scheme = Interleave::MultiCacheline;
    mcp.mcPrefetch = true;
    auto r_mcp = runMix(mcp, mixByName("8C-1"));
    auto r_ap = runMix(quick(SystemConfig::fbdAp()),
                       mixByName("8C-1"));
    EXPECT_GT(r_ap.ipcSum(), r_mcp.ipcSum());
}

TEST(ExtensionsTest, McPrefetchExclusiveWithAp)
{
    SystemConfig c = quick(SystemConfig::fbdAp());
    c.mcPrefetch = true;
    EXPECT_DEATH(c.controllerConfig(), "exclusive");
}

TEST(ExtensionsTest, RefreshCostsALittlePerformance)
{
    SystemConfig on = quick(SystemConfig::fbdBase());
    SystemConfig off = on;
    off.refreshEnable = false;
    auto r_on = runMix(on, mixByName("2C-1"));
    auto r_off = runMix(off, mixByName("2C-1"));
    // Refresh occupies the banks ~1.6% of the time; the impact must
    // be small but the no-refresh machine can't be slower.
    EXPECT_GE(r_off.ipcSum(), r_on.ipcSum() * 0.999);
    EXPECT_LT(r_off.ipcSum(), r_on.ipcSum() * 1.10);
    EXPECT_EQ(r_off.ops.refresh, 0u);
    EXPECT_GT(r_on.ops.refresh, 0u);
}

} // namespace
} // namespace fbdp
