/**
 * @file
 * Unit tests of the AMB cache (the prefetch buffer): lookup, FIFO
 * replacement, associativity variants, in-flight fills.
 */

#include <gtest/gtest.h>

#include "prefetch/amb_cache.hh"

namespace fbdp {
namespace {

Addr
line(unsigned i)
{
    return static_cast<Addr>(i) * lineBytes;
}

TEST(AmbCacheTest, MissOnEmpty)
{
    AmbCache c(64, 0);
    EXPECT_EQ(c.lookup(line(1)), nullptr);
    EXPECT_EQ(c.population(), 0u);
}

TEST(AmbCacheTest, InsertThenHit)
{
    AmbCache c(64, 0);
    c.insert(line(5), 1234);
    auto *l = c.lookup(line(5));
    ASSERT_NE(l, nullptr);
    EXPECT_EQ(l->readyAt, 1234u);
    EXPECT_EQ(c.population(), 1u);
}

TEST(AmbCacheTest, FullyAssociativeGeometry)
{
    AmbCache c(64, 0);
    EXPECT_EQ(c.sets(), 1u);
    EXPECT_EQ(c.ways(), 64u);
    EXPECT_EQ(c.entries(), 64u);
}

TEST(AmbCacheTest, SetAssociativeGeometry)
{
    AmbCache c(64, 2);
    EXPECT_EQ(c.sets(), 32u);
    EXPECT_EQ(c.ways(), 2u);
}

TEST(AmbCacheTest, FifoEvictsOldestInsertion)
{
    AmbCache c(4, 0);
    for (unsigned i = 0; i < 4; ++i)
        c.insert(line(i), 0);
    // Touch line 0 (a hit must NOT refresh FIFO order).
    EXPECT_NE(c.lookup(line(0)), nullptr);
    c.insert(line(10), 0);
    EXPECT_EQ(c.lookup(line(0)), nullptr) << "oldest must go";
    EXPECT_NE(c.lookup(line(1)), nullptr);
    EXPECT_EQ(c.evictions(), 1u);
}

TEST(AmbCacheTest, ReinsertRefreshesInPlaceWithoutEvicting)
{
    AmbCache c(4, 0);
    for (unsigned i = 0; i < 4; ++i)
        c.insert(line(i), 0);
    c.insert(line(2), 777);  // already present
    EXPECT_EQ(c.population(), 4u);
    EXPECT_EQ(c.evictions(), 0u);
    EXPECT_EQ(c.lookup(line(2))->readyAt, 777u);
}

TEST(AmbCacheTest, DirectMappedConflicts)
{
    AmbCache c(8, 1);  // 8 sets, 1 way
    // Lines 0 and 8 collide in set 0.
    c.insert(line(0), 0);
    c.insert(line(8), 0);
    EXPECT_EQ(c.lookup(line(0)), nullptr);
    EXPECT_NE(c.lookup(line(8)), nullptr);
    EXPECT_EQ(c.evictions(), 1u);
}

TEST(AmbCacheTest, TwoWayToleratesOneConflict)
{
    AmbCache c(16, 2);  // 8 sets, 2 ways
    c.insert(line(0), 0);
    c.insert(line(8), 0);
    EXPECT_NE(c.lookup(line(0)), nullptr);
    EXPECT_NE(c.lookup(line(8)), nullptr);
    c.insert(line(16), 0);  // third in set 0: evict FIFO (line 0)
    EXPECT_EQ(c.lookup(line(0)), nullptr);
    EXPECT_NE(c.lookup(line(8)), nullptr);
    EXPECT_NE(c.lookup(line(16)), nullptr);
}

TEST(AmbCacheTest, InvalidatePresentAndAbsent)
{
    AmbCache c(64, 0);
    c.insert(line(3), 0);
    EXPECT_TRUE(c.invalidate(line(3)));
    EXPECT_FALSE(c.invalidate(line(3)));
    EXPECT_EQ(c.lookup(line(3)), nullptr);
}

TEST(AmbCacheTest, InvalidatedSlotReusedBeforeEviction)
{
    AmbCache c(2, 0);
    c.insert(line(0), 0);
    c.insert(line(1), 0);
    c.invalidate(line(0));
    c.insert(line(2), 0);
    EXPECT_NE(c.lookup(line(1)), nullptr) << "no eviction needed";
    EXPECT_EQ(c.evictions(), 0u);
}

TEST(AmbCacheTest, FillPendingSentinel)
{
    AmbCache c(64, 0);
    c.insert(line(9), AmbCache::fillPending);
    auto *l = c.lookup(line(9));
    ASSERT_NE(l, nullptr);
    EXPECT_EQ(l->readyAt, AmbCache::fillPending);
    l->readyAt = 4242;  // resolve
    EXPECT_EQ(c.lookup(line(9))->readyAt, 4242u);
}

TEST(AmbCacheTest, ResetEmptiesAndClearsStats)
{
    AmbCache c(8, 0);
    for (unsigned i = 0; i < 12; ++i)
        c.insert(line(i), 0);
    EXPECT_GT(c.evictions(), 0u);
    c.reset();
    EXPECT_EQ(c.population(), 0u);
    EXPECT_EQ(c.insertions(), 0u);
    EXPECT_EQ(c.evictions(), 0u);
}

/** Property: at any fill level, population never exceeds capacity and
 *  lookups return exactly the most recent `entries` distinct lines
 *  under pure-FIFO fully-associative insertion. */
class AmbCacheFifoProp : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(AmbCacheFifoProp, SlidingWindowSemantics)
{
    const unsigned cap = GetParam();
    AmbCache c(cap, 0);
    const unsigned total = cap * 3;
    for (unsigned i = 0; i < total; ++i) {
        c.insert(line(i), 0);
        EXPECT_LE(c.population(), cap);
        // The newest `cap` lines are present, older ones are not.
        if (i >= cap)
            EXPECT_EQ(c.lookup(line(i - cap)), nullptr);
        EXPECT_NE(c.lookup(line(i)), nullptr);
    }
    EXPECT_EQ(c.evictions(), total - cap);
}

INSTANTIATE_TEST_SUITE_P(Capacities, AmbCacheFifoProp,
                         ::testing::Values(4u, 32u, 64u, 128u));

} // namespace
} // namespace fbdp
