/**
 * @file
 * Unit tests for the MSHR table: allocation, merging, capacity.
 */

#include <gtest/gtest.h>

#include "cache/mshr.hh"

namespace fbdp {
namespace {

Addr
line(unsigned i)
{
    return static_cast<Addr>(i) * lineBytes;
}

MshrTable::Waiter
waiter(int core, bool store = false, bool prefetch = false)
{
    MshrTable::Waiter w;
    w.coreId = core;
    w.isStore = store;
    w.isPrefetch = prefetch;
    return w;
}

TEST(MshrTest, AllocateAndFind)
{
    MshrTable m(4);
    EXPECT_EQ(m.find(line(1)), nullptr);
    auto *e = m.allocate(line(1), false);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(m.find(line(1)), e);
    EXPECT_EQ(m.occupancy(), 1u);
}

TEST(MshrTest, FullAtCapacity)
{
    MshrTable m(2);
    m.allocate(line(1), false);
    EXPECT_FALSE(m.full());
    m.allocate(line(2), false);
    EXPECT_TRUE(m.full());
}

TEST(MshrTest, MergeAttachesWaiters)
{
    MshrTable m(4);
    auto *e = m.allocate(line(1), false);
    m.merge(e, waiter(0));
    m.merge(e, waiter(1, true));
    EXPECT_EQ(m.merges(), 2u);
    std::vector<MshrTable::Waiter> ws;
    m.complete(line(1), 100, ws);
    ASSERT_EQ(ws.size(), 2u);
    EXPECT_EQ(ws[0].coreId, 0);
    EXPECT_TRUE(ws[1].isStore);
    EXPECT_EQ(m.occupancy(), 0u);
}

TEST(MshrTest, CompleteFreesCapacity)
{
    MshrTable m(1);
    m.allocate(line(1), false);
    EXPECT_TRUE(m.full());
    std::vector<MshrTable::Waiter> ws;
    m.complete(line(1), 0, ws);
    EXPECT_FALSE(m.full());
    EXPECT_NE(m.allocate(line(2), false), nullptr);
}

TEST(MshrTest, PrefetchOnlyUpgradesOnDemandMerge)
{
    MshrTable m(4);
    auto *e = m.allocate(line(1), true);
    EXPECT_TRUE(e->prefetchOnly);
    m.merge(e, waiter(0, false, true));
    EXPECT_TRUE(e->prefetchOnly);
    m.merge(e, waiter(1));
    EXPECT_FALSE(e->prefetchOnly);
}

TEST(MshrTest, CompleteDoesNotInvokeCallbacks)
{
    // The hierarchy installs the fill before notifying; complete()
    // must hand the callbacks back untouched.
    MshrTable m(4);
    int called = 0;
    auto *e = m.allocate(line(1), false);
    MshrTable::Waiter w = waiter(0);
    w.done = [&called](Tick) { ++called; };
    m.merge(e, std::move(w));
    std::vector<MshrTable::Waiter> ws;
    m.complete(line(1), 55, ws);
    EXPECT_EQ(called, 0);
    ASSERT_EQ(ws.size(), 1u);
    ws[0].done(55);
    EXPECT_EQ(called, 1);
}

TEST(MshrTest, DuplicateAllocatePanics)
{
    MshrTable m(4);
    m.allocate(line(1), false);
    EXPECT_DEATH(m.allocate(line(1), false), "duplicate");
}

TEST(MshrTest, AllocateWhenFullPanics)
{
    MshrTable m(1);
    m.allocate(line(1), false);
    EXPECT_DEATH(m.allocate(line(2), false), "full");
}

TEST(MshrTest, CompleteAbsentPanics)
{
    MshrTable m(1);
    std::vector<MshrTable::Waiter> ws;
    EXPECT_DEATH(m.complete(line(1), 0, ws), "absent");
}

TEST(MshrTest, ResetClearsEntriesAndStats)
{
    MshrTable m(4);
    auto *e = m.allocate(line(1), false);
    m.merge(e, waiter(0));
    m.reset();
    EXPECT_EQ(m.occupancy(), 0u);
    EXPECT_EQ(m.merges(), 0u);
    EXPECT_EQ(m.allocations(), 0u);
}

} // namespace
} // namespace fbdp
