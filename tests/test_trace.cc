/**
 * @file
 * Observability-layer tests: the trace filter and ring buffer, the
 * structural validity of exported Chrome trace_event JSON, the epoch
 * telemetry sampler, and the guarantee that attaching observers does
 * not change simulation results.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "sim/trace.hh"
#include "system/results.hh"
#include "system/runner.hh"
#include "system/system.hh"
#include "system/telemetry.hh"
#include "workload/mixes.hh"

namespace fbdp {
namespace {

using trace::Filter;
using trace::Kind;
using trace::Ph;
using trace::Record;
using trace::Tracer;

// ---------------------------------------------------------------- //
// Filter parsing                                                   //
// ---------------------------------------------------------------- //

TEST(TraceFilterTest, DefaultSelectsEverything)
{
    Filter f;
    EXPECT_TRUE(f.wantChannel(0));
    EXPECT_TRUE(f.wantChannel(7));
    EXPECT_TRUE(f.want(Kind::Read));
    EXPECT_TRUE(f.want(Kind::Write));
    EXPECT_TRUE(f.want(Kind::Prefetch));
    EXPECT_TRUE(f.want(Kind::None));
}

TEST(TraceFilterTest, ParsesChannel)
{
    Filter f = Filter::parse("chan=1");
    EXPECT_FALSE(f.wantChannel(0));
    EXPECT_TRUE(f.wantChannel(1));
    // kinds untouched
    EXPECT_TRUE(f.want(Kind::Write));
}

TEST(TraceFilterTest, ParsesKindList)
{
    Filter f = Filter::parse("kind=read|prefetch");
    EXPECT_TRUE(f.want(Kind::Read));
    EXPECT_TRUE(f.want(Kind::Prefetch));
    EXPECT_FALSE(f.want(Kind::Write));
    // Unclassified resource events are never filtered out.
    EXPECT_TRUE(f.want(Kind::None));
    EXPECT_TRUE(f.wantChannel(3));
}

TEST(TraceFilterTest, ParsesCombined)
{
    Filter f = Filter::parse("chan=0,kind=write");
    EXPECT_TRUE(f.wantChannel(0));
    EXPECT_FALSE(f.wantChannel(1));
    EXPECT_TRUE(f.want(Kind::Write));
    EXPECT_FALSE(f.want(Kind::Read));
}

TEST(TraceFilterDeathTest, RejectsMalformedSpecs)
{
    EXPECT_DEATH((void)Filter::parse("bogus"), "key=value");
    EXPECT_DEATH((void)Filter::parse("chan=abc"), "channel index");
    EXPECT_DEATH((void)Filter::parse("kind=banana"),
                 "read\\|write\\|prefetch");
    EXPECT_DEATH((void)Filter::parse("speed=11"), "chan= or kind=");
}

// ---------------------------------------------------------------- //
// Tracer ring buffer                                               //
// ---------------------------------------------------------------- //

TEST(TracerTest, InternsTracksOnce)
{
    Tracer tr;
    const std::uint32_t a = tr.track("ch0.txn");
    const std::uint32_t b = tr.track("ch0.south");
    EXPECT_NE(a, b);
    EXPECT_EQ(tr.track("ch0.txn"), a);
    EXPECT_EQ(tr.numTracks(), 2u);
    EXPECT_EQ(tr.trackName(a), "ch0.txn");
}

TEST(TracerTest, RecordsInPushOrder)
{
    Tracer tr;
    const std::uint32_t t = tr.track("t");
    tr.begin(t, "row", 100);
    tr.instant(t, "cas", 150, Kind::Read, 2, 0x1000);
    tr.end(t, "row", 200);
    tr.counter(t, "occupancy", 250, 7);
    EXPECT_EQ(tr.recorded(), 4u);
    EXPECT_EQ(tr.dropped(), 0u);

    std::vector<Record> recs = tr.chronological();
    ASSERT_EQ(recs.size(), 4u);
    EXPECT_EQ(recs[0].ph, Ph::Begin);
    EXPECT_EQ(recs[1].ph, Ph::Instant);
    EXPECT_EQ(recs[1].kind, Kind::Read);
    EXPECT_EQ(recs[1].core, 2);
    EXPECT_EQ(recs[1].addr, 0x1000u);
    EXPECT_EQ(recs[2].ph, Ph::End);
    EXPECT_EQ(recs[3].ph, Ph::Counter);
    EXPECT_EQ(recs[3].value, 7u);
}

TEST(TracerTest, RingWrapDropsOldestFirst)
{
    Tracer tr{Filter{}, 4};
    const std::uint32_t t = tr.track("t");
    for (Tick ts = 1; ts <= 6; ++ts)
        tr.instant(t, "ev", ts);
    EXPECT_EQ(tr.recorded(), 6u);
    EXPECT_EQ(tr.dropped(), 2u);
    EXPECT_EQ(tr.size(), 4u);

    std::vector<Record> recs = tr.chronological();
    ASSERT_EQ(recs.size(), 4u);
    EXPECT_EQ(recs.front().ts, 3u);  // 1 and 2 were overwritten
    EXPECT_EQ(recs.back().ts, 6u);
}

TEST(TracerTest, ExportRepairsOrphanedDurations)
{
    // A tiny ring that keeps an End whose Begin was overwritten, and
    // a Begin that never closes; the export must still balance.
    Tracer tr{Filter{}, 2};
    const std::uint32_t t = tr.track("t");
    tr.begin(t, "a", 10);
    tr.end(t, "a", 20);      // ring now holds B@10 E@20
    tr.begin(t, "b", 30);    // overwrites B@10 -> orphan E@20
    std::ostringstream os;
    tr.exportJson(os);
    const std::string out = os.str();
    // One B (for "b"), one E (the synthetic close); the orphaned
    // E@20 is skipped.
    std::size_t nb = 0, ne = 0, at = 0;
    while ((at = out.find("\"ph\": \"B\"", at)) != std::string::npos) {
        ++nb;
        ++at;
    }
    at = 0;
    while ((at = out.find("\"ph\": \"E\"", at)) != std::string::npos) {
        ++ne;
        ++at;
    }
    EXPECT_EQ(nb, 1u);
    EXPECT_EQ(ne, 1u);
}

// ---------------------------------------------------------------- //
// Structural validation of a full-system trace                     //
// ---------------------------------------------------------------- //

namespace {

SystemConfig
smallConfig(SystemConfig cfg)
{
    cfg.measureInsts = 20'000;
    cfg.warmupInsts = 5'000;
    cfg.benchmarks = mixByName("2C-1").benches;
    return cfg;
}

/** Pull the integer after @p key from a JSON event line. */
long
fieldInt(const std::string &line, const std::string &key)
{
    const std::size_t at = line.find(key);
    if (at == std::string::npos)
        return -1;
    return std::atol(line.c_str() + at + key.size());
}

/** Pull the double after @p key from a JSON event line. */
double
fieldReal(const std::string &line, const std::string &key)
{
    const std::size_t at = line.find(key);
    if (at == std::string::npos)
        return -1.0;
    return std::atof(line.c_str() + at + key.size());
}

/**
 * Walk an exported trace line by line and check the structural
 * invariants: every event has name/ph/pid/tid/ts, timestamps are
 * globally non-decreasing (the export sorts), and Begin/End nest
 * per tid with depth never negative and zero at the end.
 */
void
validateTraceJson(const std::string &out)
{
    std::istringstream is(out);
    std::string line;
    std::getline(is, line);
    ASSERT_NE(line.find("{\"traceEvents\": ["), std::string::npos);

    std::map<long, long> depth;
    double lastTs = -1.0;
    std::size_t events = 0;
    while (std::getline(is, line)) {
        if (line.rfind("]", 0) == 0)
            break;  // closing "], \"displayTimeUnit\" ..." line
        ASSERT_NE(line.find("\"name\": \""), std::string::npos)
            << line;
        ASSERT_NE(line.find("\"pid\": 1"), std::string::npos) << line;
        const std::size_t phAt = line.find("\"ph\": \"");
        ASSERT_NE(phAt, std::string::npos) << line;
        const char ph = line[phAt + 7];
        const long tid = fieldInt(line, "\"tid\": ");
        ASSERT_GE(tid, 0) << line;
        if (ph == 'M')
            continue;  // metadata carries no ts
        ++events;
        const double ts = fieldReal(line, "\"ts\": ");
        ASSERT_GE(ts, 0.0) << line;
        ASSERT_GE(ts, lastTs) << "timestamps must not run backwards";
        lastTs = ts;
        if (ph == 'B') {
            ++depth[tid];
        } else if (ph == 'E') {
            --depth[tid];
            ASSERT_GE(depth[tid], 0)
                << "End without Begin on tid " << tid;
        } else {
            ASSERT_TRUE(ph == 'i' || ph == 'C') << line;
        }
    }
    EXPECT_GT(events, 0u);
    for (const auto &d : depth)
        EXPECT_EQ(d.second, 0)
            << "unbalanced durations on tid " << d.first;
}

} // anonymous namespace

TEST(TraceSystemTest, TwoCoreRunExportsValidBalancedJson)
{
    Tracer tr;
    System sys(smallConfig(SystemConfig::fbdAp()));
    sys.attachTracer(&tr);
    RunResult r = sys.run();
    EXPECT_GT(r.reads, 0u);
    EXPECT_GT(tr.recorded(), 0u);

    std::ostringstream os;
    tr.exportJson(os);
    const std::string out = os.str();
    validateTraceJson(out);

    // The acceptance tracks: per-channel transaction, bank and AMB
    // activity plus both cores.
    EXPECT_NE(out.find("ch0.txn"), std::string::npos);
    EXPECT_NE(out.find("ch1.txn"), std::string::npos);
    EXPECT_NE(out.find("ch0.dimm0.bank0"), std::string::npos);
    EXPECT_NE(out.find("ch0.dimm0.amb"), std::string::npos);
    EXPECT_NE(out.find("cpu0."), std::string::npos);
    EXPECT_NE(out.find("cpu1."), std::string::npos);
    EXPECT_NE(out.find("\"displayTimeUnit\": \"ns\""),
              std::string::npos);
}

TEST(TraceSystemTest, ChannelFilterBindsOnlyThatChannel)
{
    Tracer tr{Filter::parse("chan=0")};
    System sys(smallConfig(SystemConfig::fbdAp()));
    sys.attachTracer(&tr);
    sys.run();

    bool sawCh0 = false;
    for (std::uint32_t t = 0; t < tr.numTracks(); ++t) {
        const std::string &n = tr.trackName(t);
        EXPECT_NE(n.rfind("ch1.", 0), 0u)
            << "filtered-out channel interned track " << n;
        if (n.rfind("ch0.", 0) == 0)
            sawCh0 = true;
    }
    EXPECT_TRUE(sawCh0);
}

TEST(TraceSystemTest, KindFilterSuppressesClassifiedRecords)
{
    Tracer tr{Filter::parse("kind=write")};
    System sys(smallConfig(SystemConfig::fbdAp()));
    sys.attachTracer(&tr);
    sys.run();

    ASSERT_GT(tr.recorded(), 0u);
    for (const Record &r : tr.chronological()) {
        EXPECT_NE(r.kind, Kind::Read)
            << "read-classified record survived kind=write";
        EXPECT_NE(r.kind, Kind::Prefetch)
            << "prefetch-classified record survived kind=write";
    }
}

// ---------------------------------------------------------------- //
// Epoch telemetry                                                  //
// ---------------------------------------------------------------- //

TEST(TelemetryTest, ParsesTimeSpecs)
{
    EXPECT_EQ(TelemetrySampler::parseTimeSpec("1us"), 1'000'000u);
    EXPECT_EQ(TelemetrySampler::parseTimeSpec("500ns"), 500'000u);
    EXPECT_EQ(TelemetrySampler::parseTimeSpec("2ms"),
              2'000'000'000u);
    EXPECT_EQ(TelemetrySampler::parseTimeSpec("1.5us"), 1'500'000u);
    EXPECT_EQ(TelemetrySampler::defaultEpoch, 1'000'000u);
}

TEST(TelemetryDeathTest, RejectsBadTimeSpecs)
{
    EXPECT_DEATH((void)TelemetrySampler::parseTimeSpec("abc"),
                 "bad time spec");
    EXPECT_DEATH((void)TelemetrySampler::parseTimeSpec("10"),
                 "unit must be");
    EXPECT_DEATH((void)TelemetrySampler::parseTimeSpec("10s"),
                 "unit must be");
    EXPECT_DEATH((void)TelemetrySampler::parseTimeSpec("-5us"),
                 "positive");
}

TEST(TelemetryTest, EmitsOneRecordPerElapsedEpoch)
{
    System sys(smallConfig(SystemConfig::fbdAp()));
    std::ostringstream os;
    const Tick epoch = TelemetrySampler::parseTimeSpec("500ns");
    TelemetrySampler sampler(sys, epoch, os);
    sampler.start();
    sys.run();
    sampler.finish();

    const Tick simTime = sys.eventQueue().now();
    ASSERT_GT(simTime, epoch);
    EXPECT_EQ(sampler.records(), simTime / epoch);

    // One JSONL object per record.
    std::istringstream is(os.str());
    std::string line;
    std::size_t lines = 0;
    while (std::getline(is, line)) {
        ++lines;
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
        EXPECT_NE(line.find("\"t_ns\":"), std::string::npos);
        EXPECT_NE(line.find("\"ch0.north_util\":"),
                  std::string::npos);
        EXPECT_NE(line.find("\"cpu0.ipc\":"), std::string::npos);
    }
    EXPECT_EQ(lines, sampler.records());

    // Gauges remain queryable by name after the run; unknown names
    // are distinguishable from a sampled zero.
    EXPECT_NE(sampler.gauges().find("ch0.amb_hit_rate"), nullptr);
    ASSERT_TRUE(sampler.hasGauge("ch0.queue_depth"));
    ASSERT_TRUE(sampler.gauge("ch0.queue_depth").has_value());
    EXPECT_GE(*sampler.gauge("ch0.queue_depth"), 0.0);
    EXPECT_FALSE(sampler.hasGauge("no.such.gauge"));
    EXPECT_FALSE(sampler.gauge("no.such.gauge").has_value());
}

TEST(TelemetryTest, CsvFormatHasHeaderAndMatchingRows)
{
    System sys(smallConfig(SystemConfig::fbdBase()));
    std::ostringstream os;
    TelemetrySampler sampler(sys, TelemetrySampler::defaultEpoch, os,
                             TelemetrySampler::Format::Csv);
    sampler.start();
    sys.run();
    sampler.finish();

    std::istringstream is(os.str());
    std::string header;
    ASSERT_TRUE(static_cast<bool>(std::getline(is, header)));
    EXPECT_EQ(header.rfind("epoch,t_ns,", 0), 0u);
    const std::size_t cols =
        static_cast<std::size_t>(
            std::count(header.begin(), header.end(), ',')) + 1;
    std::string line;
    std::size_t rows = 0;
    while (std::getline(is, line)) {
        ++rows;
        EXPECT_EQ(static_cast<std::size_t>(
                      std::count(line.begin(), line.end(), ',')) + 1,
                  cols);
    }
    EXPECT_EQ(rows, sampler.records());
}

TEST(TelemetryTest, FinishEmitsPendingBoundariesExactlyOnce)
{
    // The run stops the moment the instruction target is hit, which
    // is almost never an epoch multiple: boundaries the event loop
    // did not reach are caught up by finish() — once.  A second
    // finish() must be a no-op, not a duplicate tail record.
    System sys(smallConfig(SystemConfig::fbdAp()));
    std::ostringstream os;
    const Tick epoch = TelemetrySampler::parseTimeSpec("700ns");
    TelemetrySampler sampler(sys, epoch, os);
    sampler.start();
    sys.run();

    const Tick simTime = sys.eventQueue().now();
    ASSERT_GT(simTime, epoch);
    // With a 700ns epoch the stop point falls mid-epoch here; the
    // assertion below is what makes this a boundary test at all.
    ASSERT_NE(simTime % epoch, 0u);

    sampler.finish();
    const std::uint64_t after_first = sampler.records();
    EXPECT_EQ(after_first, simTime / epoch);

    sampler.finish();
    EXPECT_EQ(sampler.records(), after_first);

    std::istringstream is(os.str());
    std::string line;
    std::size_t lines = 0;
    Tick last_t_ns = 0;
    while (std::getline(is, line)) {
        ++lines;
        const std::size_t at = line.find("\"t_ns\":");
        ASSERT_NE(at, std::string::npos);
        last_t_ns = static_cast<Tick>(
            std::atoll(line.c_str() + at + 7));
    }
    EXPECT_EQ(lines, after_first);
    // The final record sits on the last epoch boundary inside the
    // run, never beyond the simulated time.
    EXPECT_EQ(last_t_ns, (simTime / epoch) * epoch / 1000);
}

TEST(TelemetryTest, CsvAndJsonlAgreeOnRecordCount)
{
    // Identical runs sampled through the two formats must produce the
    // same number of data rows — the format changes the encoding,
    // never the epoch bookkeeping.
    const SystemConfig cfg = smallConfig(SystemConfig::fbdAp());
    const Tick epoch = TelemetrySampler::parseTimeSpec("500ns");

    std::ostringstream csv_os;
    {
        System sys(cfg);
        TelemetrySampler sampler(sys, epoch, csv_os,
                                 TelemetrySampler::Format::Csv);
        sampler.start();
        sys.run();
        sampler.finish();
    }
    std::ostringstream jsonl_os;
    std::uint64_t jsonl_records = 0;
    {
        System sys(cfg);
        TelemetrySampler sampler(sys, epoch, jsonl_os,
                                 TelemetrySampler::Format::Jsonl);
        sampler.start();
        sys.run();
        sampler.finish();
        jsonl_records = sampler.records();
    }

    auto countLines = [](const std::string &text) {
        std::istringstream is(text);
        std::string line;
        std::size_t n = 0;
        while (std::getline(is, line))
            ++n;
        return n;
    };
    // CSV carries one header line on top of the data rows.
    EXPECT_EQ(countLines(csv_os.str()),
              countLines(jsonl_os.str()) + 1);
    EXPECT_EQ(countLines(jsonl_os.str()), jsonl_records);
    EXPECT_GT(jsonl_records, 0u);
}

// ---------------------------------------------------------------- //
// Determinism guard: observers must not change results             //
// ---------------------------------------------------------------- //

namespace {

void
expectObserversAreInvisible(SystemConfig cfg, const char *config_name)
{
    SweepRow plain{config_name, "2C-1", cfg.seed, RunResult{}};
    {
        System sys(cfg);
        plain.result = sys.run();
    }

    SweepRow observed{config_name, "2C-1", cfg.seed, RunResult{}};
    std::ostringstream telemetry;
    {
        Tracer tr;
        System sys(cfg);
        sys.attachTracer(&tr);
        TelemetrySampler sampler(
            sys, TelemetrySampler::parseTimeSpec("500ns"), telemetry);
        sampler.start();
        observed.result = sys.run();
        sampler.finish();
        EXPECT_GT(tr.recorded(), 0u);
        EXPECT_GT(sampler.records(), 0u);
    }

    // The full sweep-facing result surface must be byte-identical.
    const ResultSchema &schema = ResultSchema::sweepRows();
    EXPECT_EQ(schema.csvRow(plain), schema.csvRow(observed));
    EXPECT_EQ(schema.jsonRow(plain), schema.jsonRow(observed));
    const ResultSchema &lat = ResultSchema::latencyPercentiles();
    EXPECT_EQ(lat.csvRow(plain), lat.csvRow(observed));
}

} // anonymous namespace

TEST(TraceDeterminismTest, FbdResultsUnchangedByObservers)
{
    expectObserversAreInvisible(smallConfig(SystemConfig::fbdBase()),
                                "fbd");
}

TEST(TraceDeterminismTest, FbdApResultsUnchangedByObservers)
{
    expectObserversAreInvisible(smallConfig(SystemConfig::fbdAp()),
                                "fbd-ap");
}

// ---------------------------------------------------------------- //
// Latency-percentile plumbing                                      //
// ---------------------------------------------------------------- //

TEST(LatencyPercentileTest, ClassesPopulateAndOrderSanely)
{
    System sys(smallConfig(SystemConfig::fbdAp()));
    RunResult r = sys.run();

    EXPECT_GT(r.latDemand.samples, 0u);
    EXPECT_GT(r.latPrefHit.samples, 0u);
    EXPECT_GT(r.latWrite.samples, 0u);
    // Demand + prefetch-hit reads partition the completed reads.
    // (Sampled at completion while r.reads counts arrivals, so reads
    // straddling the window boundary shift the sum by a few.)
    const double sum = static_cast<double>(r.latDemand.samples
                                           + r.latPrefHit.samples);
    EXPECT_NEAR(sum, static_cast<double>(r.reads),
                0.05 * static_cast<double>(r.reads));

    for (const LatencyClassStats *c :
         {&r.latDemand, &r.latPrefHit, &r.latWrite}) {
        EXPECT_GT(c->p50Ns, 0.0);
        EXPECT_LE(c->p50Ns, c->p95Ns);
        EXPECT_LE(c->p95Ns, c->p99Ns);
    }
    // Prefetch hits skip the DRAM access, so their median beats the
    // demand-miss median.
    EXPECT_LT(r.latPrefHit.p50Ns, r.latDemand.p50Ns);

    const ResultSchema &schema = ResultSchema::latencyPercentiles();
    SweepRow row{"fbd-ap", "2C-1", 1, r};
    const std::string header = schema.csvHeader();
    EXPECT_NE(header.find("demand_p99_ns"), std::string::npos);
    EXPECT_NE(header.find("pref_hit_p50_ns"), std::string::npos);
    EXPECT_NE(header.find("late_prefetch_hits"), std::string::npos);
    // Row and header agree on width.
    const std::string csvRow = schema.csvRow(row);
    EXPECT_EQ(std::count(header.begin(), header.end(), ','),
              std::count(csvRow.begin(), csvRow.end(), ','));
}

} // namespace
} // namespace fbdp
