/**
 * @file
 * Unit tests of the DIMM: cross-bank tRRD, write-to-read turnaround,
 * and the operation counters the power model reads.
 */

#include <gtest/gtest.h>

#include "dram/dimm.hh"

namespace fbdp {
namespace {

class DimmTest : public ::testing::Test
{
  protected:
    DramTiming t = DramTiming::forDataRate(667);
    Dimm dimm{&t, 4};
};

TEST_F(DimmTest, HasRequestedBanks)
{
    EXPECT_EQ(dimm.numBanks(), 4u);
}

TEST_F(DimmTest, TrrdSeparatesActsAcrossBanks)
{
    dimm.activate(0, 1000, 1);
    EXPECT_EQ(dimm.earliestAct(1, 0), 1000 + t.tRRD);
    dimm.activate(1, 1000 + t.tRRD, 2);
    EXPECT_EQ(dimm.earliestAct(2, 0), 1000 + 2 * t.tRRD);
}

TEST_F(DimmTest, SameBankActBoundByTrc)
{
    dimm.activate(0, 0, 1);
    dimm.read(0, t.tRCD, 1, true);
    EXPECT_GE(dimm.earliestAct(0, 0), t.tRC);
}

TEST_F(DimmTest, WriteToReadTurnaround)
{
    dimm.activate(0, 0, 1);
    Tick wr_end = dimm.write(0, t.tRCD, true);
    dimm.activate(1, t.tRRD, 2);
    // A read on any bank of this DIMM must wait for tWTR after the
    // write data finished.
    EXPECT_GE(dimm.earliestRead(1, 0), wr_end + t.tWTR);
}

TEST_F(DimmTest, ReadDoesNotBlockWrites)
{
    dimm.activate(0, 0, 1);
    dimm.read(0, t.tRCD, 1, true);
    dimm.activate(1, t.tRRD, 2);
    EXPECT_EQ(dimm.earliestWrite(1, 0),
              dimm.bank(1).casAllowedAt());
}

TEST_F(DimmTest, CountersTrackOperations)
{
    dimm.activate(0, 0, 1);
    dimm.read(0, t.tRCD, 4, true);  // group of 4
    dimm.activate(1, t.tRRD, 2);
    dimm.write(1, t.tRRD + t.tRCD, true);
    const DramOpCounts &c = dimm.counts();
    EXPECT_EQ(c.actPre, 2u);
    EXPECT_EQ(c.rdCas, 4u);
    EXPECT_EQ(c.wrCas, 1u);
    EXPECT_EQ(c.cas(), 5u);
}

TEST_F(DimmTest, ResetCountsClears)
{
    dimm.activate(0, 0, 1);
    dimm.read(0, t.tRCD, 1, true);
    dimm.resetCounts();
    EXPECT_EQ(dimm.counts().actPre, 0u);
    EXPECT_EQ(dimm.counts().cas(), 0u);
}

TEST_F(DimmTest, CountsAccumulateAcrossAdd)
{
    DramOpCounts a;
    a.actPre = 3;
    a.rdCas = 5;
    a.wrCas = 2;
    DramOpCounts b;
    b.actPre = 1;
    b.rdCas = 1;
    b.wrCas = 1;
    a += b;
    EXPECT_EQ(a.actPre, 4u);
    EXPECT_EQ(a.rdCas, 6u);
    EXPECT_EQ(a.wrCas, 3u);
}

TEST_F(DimmTest, IndependentBanksOverlapPipelines)
{
    // Two banks can have rows open simultaneously.
    dimm.activate(0, 0, 1);
    dimm.activate(1, t.tRRD, 2);
    EXPECT_TRUE(dimm.bank(0).rowOpen());
    EXPECT_TRUE(dimm.bank(1).rowOpen());
    Tick e0 = dimm.read(0, t.tRCD, 1, true);
    Tick e1 = dimm.read(1, t.tRRD + t.tRCD, 1, true);
    EXPECT_GT(e1, e0);
}

TEST_F(DimmTest, EarliestQueriesRespectNotBefore)
{
    EXPECT_EQ(dimm.earliestAct(0, 12345), 12345u);
    dimm.activate(0, 12345, 1);
    EXPECT_EQ(dimm.earliestRead(0, 99999999),
              99999999u);
}

} // namespace
} // namespace fbdp
