/**
 * @file
 * Synthetic trace generator tests: determinism, stream structure,
 * software-prefetch emission, stride patterns, address ranges.
 */

#include <gtest/gtest.h>

#include <set>

#include "workload/generator.hh"

namespace fbdp {
namespace {

TEST(GeneratorTest, DeterministicForSameSeed)
{
    SyntheticGenerator a(benchProfile("swim"), 0, 42, true);
    SyntheticGenerator b(benchProfile("swim"), 0, 42, true);
    for (int i = 0; i < 10'000; ++i) {
        TraceOp x = a.next();
        TraceOp y = b.next();
        ASSERT_EQ(x.addr, y.addr);
        ASSERT_EQ(x.gap, y.gap);
        ASSERT_EQ(static_cast<int>(x.kind), static_cast<int>(y.kind));
    }
}

TEST(GeneratorTest, DifferentSeedsDiverge)
{
    SyntheticGenerator a(benchProfile("swim"), 0, 1, true);
    SyntheticGenerator b(benchProfile("swim"), 0, 2, true);
    int same = 0;
    for (int i = 0; i < 1'000; ++i) {
        if (a.next().addr == b.next().addr)
            ++same;
    }
    EXPECT_LT(same, 100);
}

TEST(GeneratorTest, AddressesStayInSlice)
{
    const Addr base = 4ull << 30;
    const BenchProfile &p = benchProfile("vortex");
    SyntheticGenerator g(p, base, 7, true);
    for (int i = 0; i < 50'000; ++i) {
        TraceOp op = g.next();
        Addr a = op.addr;
        if (op.kind == TraceOp::Kind::Prefetch) {
            // Prefetches may run slightly past a lane end.
            EXPECT_LT(a, base + p.footprint + (1u << 20));
        } else {
            EXPECT_GE(a, base);
            EXPECT_LT(a, base + p.footprint);
        }
    }
}

TEST(GeneratorTest, StoreFractionRoughlyRespected)
{
    const BenchProfile &p = benchProfile("swim");
    SyntheticGenerator g(p, 0, 3, false);
    int stores = 0, total = 0;
    for (int i = 0; i < 50'000; ++i) {
        TraceOp op = g.next();
        if (op.kind == TraceOp::Kind::Store)
            ++stores;
        ++total;
    }
    double frac = static_cast<double>(stores) / total;
    EXPECT_NEAR(frac, p.storeFrac, 0.12);
}

TEST(GeneratorTest, NoPrefetchOpsWhenDisabled)
{
    SyntheticGenerator g(benchProfile("swim"), 0, 3, false);
    for (int i = 0; i < 50'000; ++i)
        EXPECT_NE(static_cast<int>(g.next().kind),
                  static_cast<int>(TraceOp::Kind::Prefetch));
}

TEST(GeneratorTest, PrefetchCoverageTracksProfile)
{
    const BenchProfile &p = benchProfile("swim");
    SyntheticGenerator g(p, 0, 3, true);
    for (int i = 0; i < 200'000; ++i)
        g.next();
    const double cov = static_cast<double>(g.prefetchOps())
        / static_cast<double>(g.streamLineCrossings());
    EXPECT_NEAR(cov, p.spCoverage, 0.1);
}

TEST(GeneratorTest, PrefetchTargetsAheadOfStream)
{
    const BenchProfile &p = benchProfile("wupwise");
    SyntheticGenerator g(p, 0, 9, true);
    Addr last_demand = 0;
    for (int i = 0; i < 20'000; ++i) {
        TraceOp op = g.next();
        if (op.kind == TraceOp::Kind::Prefetch) {
            // A prefetch points spDistanceLines past a line the
            // stream just entered.
            EXPECT_EQ(op.addr % lineBytes, 0u);
            EXPECT_GT(op.addr, last_demand);
        } else {
            last_demand = op.addr;
        }
    }
}

TEST(GeneratorTest, StreamsCrossLinesAtExpectedRate)
{
    const BenchProfile &p = benchProfile("applu");
    SyntheticGenerator g(p, 0, 5, false);
    for (int i = 0; i < 200'000; ++i)
        g.next();
    // Every elem-per-line-th stream op crosses.
    const double per_line = static_cast<double>(lineBytes)
        / p.elemBytes;
    const double expect = static_cast<double>(g.streamOps())
        / per_line;
    EXPECT_NEAR(static_cast<double>(g.streamLineCrossings()),
                expect, expect * 0.05);
}

TEST(GeneratorTest, Stride2StreamsSkipLines)
{
    BenchProfile p = benchProfile("mgrid");
    p.stride2Frac = 1.0;  // all streams strided
    p.jumpProb = 0.0;
    p.streamFrac = 1.0;
    SyntheticGenerator g(p, 0, 11, false);
    std::set<Addr> lines;
    for (int i = 0; i < 100'000; ++i) {
        TraceOp op = g.next();
        lines.insert(lineIndex(op.addr));
    }
    // Count adjacent-line pairs: with pure 2-line strides there are
    // almost none (lane boundaries aside).
    unsigned adjacent = 0;
    for (Addr l : lines) {
        if (lines.count(l + 1))
            ++adjacent;
    }
    EXPECT_LT(adjacent, lines.size() / 20);
}

TEST(GeneratorTest, GapsFollowProfileMean)
{
    const BenchProfile &p = benchProfile("parser");
    SyntheticGenerator g(p, 0, 13, false);
    double total = 0;
    const int n = 100'000;
    for (int i = 0; i < n; ++i)
        total += g.next().gap;
    EXPECT_NEAR(total / n, p.meanGap, p.meanGap * 0.15);
}

TEST(GeneratorTest, HotOpsConcentrateInHotSet)
{
    const BenchProfile &p = benchProfile("vpr");
    SyntheticGenerator g(p, 0, 17, false);
    std::uint64_t in_hot = 0, non_stream = 0;
    for (int i = 0; i < 100'000; ++i) {
        TraceOp op = g.next();
        (void)op;
    }
    in_hot = g.hotOps();
    non_stream = g.hotOps() + g.coldOps();
    // hotFrac of non-stream accesses go to the hot set.
    const double frac = static_cast<double>(in_hot)
        / static_cast<double>(non_stream);
    EXPECT_NEAR(frac, p.hotFrac, 0.05);
}

TEST(GeneratorTest, ProfileLookupFatalOnUnknown)
{
    EXPECT_DEATH(benchProfile("no-such-bench"), "unknown benchmark");
}

TEST(GeneratorTest, PaperSuiteHasTwelveProfiles)
{
    EXPECT_EQ(paperSuite().size(), 12u);
    for (const char *n :
         {"wupwise", "swim", "mgrid", "applu", "vpr", "equake",
          "facerec", "lucas", "fma3d", "parser", "gap", "vortex"}) {
        EXPECT_EQ(benchProfile(n).name, n);
    }
}

TEST(GeneratorTest, ExcludedProgramsModelledButNotInSuite)
{
    // Section 4.2 excludes art and mcf from the mixes; they remain
    // available for custom experiments.
    EXPECT_EQ(allProfiles().size(), 14u);
    EXPECT_EQ(benchProfile("art").name, "art");
    EXPECT_EQ(benchProfile("mcf").name, "mcf");
    for (const auto &p : paperSuite()) {
        EXPECT_NE(p.name, "art");
        EXPECT_NE(p.name, "mcf");
    }
    EXPECT_LT(benchProfile("mcf").baseIpc, 1.0) << "mcf's low IPC";
}

/** Property over all profiles: generator invariants. */
class GeneratorPropTest
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(GeneratorPropTest, BasicInvariants)
{
    const BenchProfile &p = benchProfile(GetParam());
    EXPECT_GT(p.baseIpc, 0.0);
    EXPECT_GE(p.storeFrac, 0.0);
    EXPECT_LE(p.storeFrac, 1.0);
    SyntheticGenerator g(p, 0, 23, true);
    std::uint64_t mem_ops = 0;
    for (int i = 0; i < 20'000; ++i) {
        TraceOp op = g.next();
        if (op.kind != TraceOp::Kind::Prefetch)
            ++mem_ops;
        EXPECT_LT(op.gap, 100'000u);
    }
    EXPECT_GT(mem_ops, 0u);
    EXPECT_EQ(g.streamOps() + g.hotOps() + g.coldOps(), mem_ops);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenches, GeneratorPropTest,
    ::testing::Values("wupwise", "swim", "mgrid", "applu", "vpr",
                      "equake", "facerec", "lucas", "fma3d", "parser",
                      "gap", "vortex", "art", "mcf"));

} // namespace
} // namespace fbdp
