/**
 * @file
 * CPU-core model tests: base-IPC pacing, ROB/LQ/SQ stalls, prefetch
 * issue, notification, measurement windows.
 */

#include <gtest/gtest.h>

#include <deque>

#include "cpu/core.hh"
#include "sim/event_queue.hh"

namespace fbdp {
namespace {

/** Scripted generator: replays a fixed list, then idles on gaps. */
class ScriptGen : public Generator
{
  public:
    explicit ScriptGen(std::deque<TraceOp> script)
        : ops(std::move(script))
    {
        prof.name = "script";
        prof.baseIpc = 2.0;
    }

    TraceOp
    next() override
    {
        if (!ops.empty()) {
            TraceOp op = ops.front();
            ops.pop_front();
            return op;
        }
        // Endless compute tail so the core can always progress; a
        // prefetch never blocks and is dropped once line 0 is
        // resident.
        TraceOp idle;
        idle.gap = 100;
        idle.kind = TraceOp::Kind::Prefetch;
        idle.addr = 0;
        return idle;
    }

    const BenchProfile &profile() const override { return prof; }

  private:
    BenchProfile prof;
    std::deque<TraceOp> ops;
};

/** Hierarchy stub with scriptable outcomes. */
class StubHier
{
  public:
    static TraceOp
    load(Addr a, std::uint32_t gap = 0)
    {
        TraceOp op;
        op.gap = gap;
        op.kind = TraceOp::Kind::Load;
        op.addr = a;
        return op;
    }
};

CoreParams
params(double ipc = 2.0)
{
    CoreParams p;
    p.baseIpc = ipc;
    return p;
}

/**
 * Build a tiny real hierarchy over a fake memory that completes reads
 * after a fixed latency via the event queue.
 */
class LatencyMemory : public MemoryIface
{
  public:
    LatencyMemory(EventQueue *event_queue, Tick lat)
        : eq(event_queue), latency(lat),
          fireEvent([this] { fire(); }, Event::prioData)
    {
    }

    void
    read(Addr, int, bool, TickCallback done) override
    {
        ++reads;
        pending.emplace(eq->now() + latency, std::move(done));
        if (!fireEvent.scheduled())
            eq->schedule(&fireEvent, pending.begin()->first);
    }

    void write(Addr, int) override { ++writes; }

    std::uint64_t reads = 0;
    std::uint64_t writes = 0;

  private:
    void
    fire()
    {
        while (!pending.empty() && pending.begin()->first <= eq->now()) {
            auto fn = std::move(pending.begin()->second);
            pending.erase(pending.begin());
            fn(eq->now());
        }
        if (!pending.empty())
            eq->schedule(&fireEvent, pending.begin()->first);
    }

    EventQueue *eq;
    Tick latency;
    std::multimap<Tick, TickCallback> pending;
    Event fireEvent;
};

class CoreTest : public ::testing::Test
{
  protected:
    CoreTest() : mem(&eq, nsToTicks(100))
    {
        HierConfig hc;
        hc.l1Bytes = 4 * 1024;
        hc.l2Bytes = 16 * 1024;
        hier = std::make_unique<CacheHierarchy>(&eq, 1, hc, &mem);
    }

    void
    runCore(std::deque<TraceOp> script, std::uint64_t stop_insts,
            double ipc = 2.0)
    {
        gen = std::make_unique<ScriptGen>(std::move(script));
        core = std::make_unique<Core>("cpu0", 0, &eq, hier.get(),
                                      gen.get(), params(ipc));
        bool finished = false;
        core->setNotify(stop_insts, [&] { finished = true; });
        core->start();
        while (!finished && eq.step()) {
        }
        ASSERT_TRUE(finished) << "core starved";
    }

    EventQueue eq;
    LatencyMemory mem;
    std::unique_ptr<CacheHierarchy> hier;
    std::unique_ptr<ScriptGen> gen;
    std::unique_ptr<Core> core;
};

TEST_F(CoreTest, PureComputeRunsAtBaseIpc)
{
    runCore({}, 100'000, 2.0);
    core->resetStats();
    // Continue a little to measure a clean window.
    bool done2 = false;
    core->setNotify(core->insts() + 50'000, [&] { done2 = true; });
    while (!done2 && eq.step()) {
    }
    EXPECT_NEAR(core->ipc(), 2.0, 0.05);
}

TEST_F(CoreTest, MemoryMissesCostTime)
{
    // A burst of distinct lines: latency-bound execution.
    std::deque<TraceOp> s;
    for (unsigned i = 0; i < 200; ++i)
        s.push_back(StubHier::load((1u << 20) + i * 4096, 10));
    runCore(std::move(s), 2'000);
    EXPECT_GT(mem.reads, 100u);
    EXPECT_LT(core->ipc(), 1.0) << "must be memory bound";
}

TEST_F(CoreTest, RobLimitsOutstandingLoads)
{
    // Misses spaced six instructions apart: the 196-entry window
    // holds ~28 loads, fewer than the 32-entry LQ, so the ROB is the
    // binding limit at 100 ns latency.
    std::deque<TraceOp> s;
    for (unsigned i = 0; i < 500; ++i)
        s.push_back(StubHier::load((1u << 20) + i * 4096, 6));
    runCore(std::move(s), 3'000);
    EXPECT_GT(core->robStallTicks(), 0u);
    EXPECT_EQ(core->lqStallTicks(), 0u);
}

TEST_F(CoreTest, LqLimitsDenserLoads)
{
    // Back-to-back misses: 32 loads occupy the LQ within 64
    // instructions, well inside the ROB window.
    std::deque<TraceOp> s;
    for (unsigned i = 0; i < 500; ++i)
        s.push_back(StubHier::load((1u << 20) + i * 4096, 1));
    runCore(std::move(s), 1'200);
    EXPECT_GT(core->lqStallTicks() + core->robStallTicks(), 0u);
}

TEST_F(CoreTest, PrefetchesDoNotBlock)
{
    std::deque<TraceOp> s;
    for (unsigned i = 0; i < 300; ++i) {
        TraceOp op;
        op.gap = 1;
        op.kind = TraceOp::Kind::Prefetch;
        op.addr = (1u << 20) + i * 4096;
        s.push_back(op);
    }
    runCore(std::move(s), 1'000);
    EXPECT_EQ(core->robStallTicks(), 0u);
    EXPECT_EQ(core->lqStallTicks(), 0u);
    EXPECT_GT(mem.reads, 0u) << "prefetches reached memory";
}

TEST_F(CoreTest, NotifyFiresOnce)
{
    int notified = 0;
    gen = std::make_unique<ScriptGen>(std::deque<TraceOp>{});
    core = std::make_unique<Core>("cpu0", 0, &eq, hier.get(),
                                  gen.get(), params());
    core->setNotify(1'000, [&] { ++notified; });
    core->start();
    bool stop = false;
    Event stopper([&] { stop = true; });
    eq.schedule(&stopper, nsToTicks(100'000));
    while (!stop && eq.step()) {
    }
    EXPECT_EQ(notified, 1);
    EXPECT_GT(core->insts(), 1'000u);
}

TEST_F(CoreTest, WindowStatsMeasureDeltas)
{
    runCore({}, 10'000);
    const std::uint64_t before = core->insts();
    core->resetStats();
    EXPECT_EQ(core->windowInsts(), 0u);
    bool done2 = false;
    core->setNotify(before + 5'000, [&] { done2 = true; });
    while (!done2 && eq.step()) {
    }
    EXPECT_GE(core->windowInsts(), 5'000u - 200u);
    EXPECT_LT(core->windowInsts(), 7'000u);
}

TEST_F(CoreTest, StoresTrackSqOccupancy)
{
    std::deque<TraceOp> s;
    for (unsigned i = 0; i < 200; ++i) {
        TraceOp op;
        op.gap = 0;
        op.kind = TraceOp::Kind::Store;
        op.addr = (1u << 20) + i * 4096;
        s.push_back(op);
    }
    runCore(std::move(s), 300);
    // 200 RFOs at 100 ns with a 32-entry SQ: the SQ must have been
    // the limiter at some point.
    EXPECT_GT(core->sqStallTicks(), 0u);
}

} // namespace
} // namespace fbdp
