/**
 * @file
 * End-to-end smoke tests of the assembled system: every configuration
 * preset must simulate a small workload to completion with sane stats.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "system/runner.hh"
#include "system/system.hh"
#include "workload/mixes.hh"

namespace fbdp {
namespace {

SystemConfig
quick(SystemConfig c)
{
    c.warmupInsts = 20'000;
    c.measureInsts = 100'000;
    return c;
}

TEST(SystemTest, Ddr2SingleCoreRuns)
{
    auto r = runMix(quick(SystemConfig::ddr2()), mixByName("1C-swim"));
    ASSERT_EQ(r.ipc.size(), 1u);
    EXPECT_GT(r.ipc[0], 0.0);
    EXPECT_LT(r.ipc[0], 4.0);
    EXPECT_GT(r.reads, 0u);
    EXPECT_GT(r.bandwidthGBs, 0.0);
    EXPECT_GT(r.avgReadLatencyNs, 30.0);
    EXPECT_EQ(r.ambHits, 0u);
}

TEST(SystemTest, FbdSingleCoreRuns)
{
    auto r = runMix(quick(SystemConfig::fbdBase()),
                    mixByName("1C-swim"));
    EXPECT_GT(r.ipc[0], 0.0);
    EXPECT_GT(r.reads, 0u);
    // FB-DIMM idle latency is 63 ns; queueing only adds to it.
    EXPECT_GE(r.avgReadLatencyNs, 60.0);
}

TEST(SystemTest, FbdApSingleCoreRuns)
{
    auto r = runMix(quick(SystemConfig::fbdAp()),
                    mixByName("1C-swim"));
    EXPECT_GT(r.ipc[0], 0.0);
    EXPECT_GT(r.ambHits, 0u);
    EXPECT_GT(r.coverage, 0.0);
    EXPECT_LE(r.coverage, 0.75 + 1e-9);  // bound for K=4
    EXPECT_GT(r.efficiency, 0.0);
    EXPECT_LE(r.efficiency, 1.0);
}

TEST(SystemTest, FbdApBeatsFbdOnStreamingWorkload)
{
    auto base = runMix(quick(SystemConfig::fbdBase()),
                       mixByName("1C-swim"));
    auto ap = runMix(quick(SystemConfig::fbdAp()),
                     mixByName("1C-swim"));
    EXPECT_GT(ap.ipc[0], base.ipc[0]);
}

TEST(SystemTest, MultiCoreRuns)
{
    auto r = runMix(quick(SystemConfig::fbdAp()), mixByName("4C-1"));
    ASSERT_EQ(r.ipc.size(), 4u);
    for (double v : r.ipc)
        EXPECT_GT(v, 0.0);
}

TEST(SystemTest, DeterministicAcrossRuns)
{
    auto a = runMix(quick(SystemConfig::fbdAp()), mixByName("2C-1"));
    auto b = runMix(quick(SystemConfig::fbdAp()), mixByName("2C-1"));
    ASSERT_EQ(a.ipc.size(), b.ipc.size());
    for (size_t i = 0; i < a.ipc.size(); ++i)
        EXPECT_DOUBLE_EQ(a.ipc[i], b.ipc[i]);
    EXPECT_EQ(a.reads, b.reads);
    EXPECT_EQ(a.ops.actPre, b.ops.actPre);
    EXPECT_EQ(a.ops.cas(), b.ops.cas());
}

TEST(SystemTest, ReportContainsAllComponents)
{
    SystemConfig cfg = quick(SystemConfig::fbdAp());
    cfg.benchmarks = {"swim", "vpr"};
    System sys(cfg);
    sys.run();
    std::ostringstream os;
    sys.report(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("cpu0.swim"), std::string::npos);
    EXPECT_NE(s.find("cpu1.vpr"), std::string::npos);
    EXPECT_NE(s.find("l2"), std::string::npos);
    EXPECT_NE(s.find("mc0"), std::string::npos);
    EXPECT_NE(s.find("mc1"), std::string::npos);
    EXPECT_NE(s.find("coverage"), std::string::npos);
    EXPECT_NE(s.find("act_pre"), std::string::npos);
}

TEST(SystemTest, ApReducesActivations)
{
    auto base = runMix(quick(SystemConfig::fbdBase()),
                       mixByName("1C-swim"));
    auto ap = runMix(quick(SystemConfig::fbdAp()),
                     mixByName("1C-swim"));
    // Activations per read must drop with region fetching.
    const double act_per_read_base =
        static_cast<double>(base.ops.actPre)
        / static_cast<double>(base.reads);
    const double act_per_read_ap =
        static_cast<double>(ap.ops.actPre)
        / static_cast<double>(ap.reads);
    EXPECT_LT(act_per_read_ap, act_per_read_base);
}

/**
 * Parameterized preset sweep: every (machine, data rate, channel
 * count) combination must run to completion with self-consistent
 * statistics.
 */
struct PresetParam
{
    const char *machine;
    unsigned rate;
    unsigned channels;
};

class PresetSweepTest : public ::testing::TestWithParam<PresetParam>
{
};

TEST_P(PresetSweepTest, RunsWithConsistentStats)
{
    const PresetParam p = GetParam();
    SystemConfig c = std::string(p.machine) == "ddr2"
        ? SystemConfig::ddr2()
        : (std::string(p.machine) == "fbd" ? SystemConfig::fbdBase()
                                           : SystemConfig::fbdAp());
    c = quick(c);
    c.dataRate = p.rate;
    c.logicChannels = p.channels;
    auto r = runMix(c, mixByName("2C-4"));
    ASSERT_EQ(r.ipc.size(), 2u);
    EXPECT_GT(r.ipc[0], 0.0);
    EXPECT_GT(r.ipc[1], 0.0);
    EXPECT_GT(r.reads, 0u);
    // Bandwidth accounting must agree with transaction counts.
    const double seconds = static_cast<double>(r.measuredTicks)
        * 1e-12;
    double expect_bytes = static_cast<double>(r.reads + r.writes)
        * lineBytes;
    if (c.mcPrefetch)
        expect_bytes = 0;  // not used in this sweep
    EXPECT_NEAR(r.bandwidthGBs, expect_bytes / 1e9 / seconds,
                r.bandwidthGBs * 0.02);
    // Close-page op accounting (every machine here uses close page).
    EXPECT_GE(r.ops.cas(), r.reads + r.writes - 64);
    if (std::string(p.machine) == "fbd-ap") {
        EXPECT_GT(r.coverage, 0.0);
        EXPECT_LE(r.coverage, 0.75 + 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PresetSweepTest,
    ::testing::Values(
        PresetParam{"ddr2", 533, 1}, PresetParam{"ddr2", 667, 2},
        PresetParam{"ddr2", 800, 4}, PresetParam{"fbd", 533, 2},
        PresetParam{"fbd", 667, 1}, PresetParam{"fbd", 800, 2},
        PresetParam{"fbd-ap", 533, 1}, PresetParam{"fbd-ap", 667, 4},
        PresetParam{"fbd-ap", 800, 2}),
    [](const ::testing::TestParamInfo<PresetParam> &info) {
        std::string n = info.param.machine;
        for (auto &ch : n) {
            if (ch == '-')
                ch = '_';
        }
        return n + "_" + std::to_string(info.param.rate) + "_"
            + std::to_string(info.param.channels) + "ch";
    });

} // namespace
} // namespace fbdp
