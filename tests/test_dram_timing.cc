/**
 * @file
 * Unit tests for the DDR2 timing parameters (Table 2 of the paper).
 */

#include <gtest/gtest.h>

#include "dram/dram_timing.hh"

namespace fbdp {
namespace {

TEST(DramTimingTest, Table2ValuesInTicks)
{
    DramTiming t;
    EXPECT_EQ(t.tRP, 15000u);
    EXPECT_EQ(t.tRCD, 15000u);
    EXPECT_EQ(t.tCL, 15000u);
    EXPECT_EQ(t.tRC, 54000u);
    EXPECT_EQ(t.tRRD, 9000u);
    EXPECT_EQ(t.tRPD, 9000u);
    EXPECT_EQ(t.tWTR, 9000u);
    EXPECT_EQ(t.tRAS, 39000u);
    EXPECT_EQ(t.tWL, 12000u);
    EXPECT_EQ(t.tWPD, 36000u);
}

TEST(DramTimingTest, TrcEqualsTrasPlusTrp)
{
    // Sanity: the Table 2 values satisfy the classic identity.
    DramTiming t;
    EXPECT_EQ(t.tRC, t.tRAS + t.tRP);
}

TEST(DramTimingTest, MemCyclePerDataRate)
{
    EXPECT_EQ(DramTiming::forDataRate(533).memCycle, 3750u);
    EXPECT_EQ(DramTiming::forDataRate(667).memCycle, 3000u);
    EXPECT_EQ(DramTiming::forDataRate(800).memCycle, 2500u);
}

TEST(DramTimingTest, BurstIsTwoCycles)
{
    for (unsigned rate : {533u, 667u, 800u}) {
        DramTiming t = DramTiming::forDataRate(rate);
        EXPECT_EQ(t.burst, 2 * t.memCycle);
        EXPECT_EQ(t.casGap(), t.burst);
    }
}

TEST(DramTimingTest, UnsupportedRateIsFatal)
{
    EXPECT_DEATH(DramTiming::forDataRate(1066), "unsupported");
}

TEST(DramTimingTest, UnitHelpers)
{
    EXPECT_EQ(nsToTicks(15), 15000u);
    EXPECT_DOUBLE_EQ(ticksToNs(63000), 63.0);
    EXPECT_EQ(lineAlign(0x12345), 0x12340u);
    EXPECT_EQ(lineIndex(0x12345), 0x48Du);
    EXPECT_TRUE(isPowerOf2(64));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(48));
    EXPECT_EQ(floorLog2(64), 6u);
}

} // namespace
} // namespace fbdp
