/**
 * @file
 * Live-progress layer: sweep sinks must see a complete, well-formed
 * event stream without perturbing rows or bytes; the single-run
 * heartbeat pulse must beat and stay invisible to simulation results;
 * the ETA arithmetic must be sane.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "system/progress.hh"
#include "system/sweep.hh"
#include "system/system.hh"
#include "workload/mixes.hh"

using namespace fbdp;

namespace {

SystemConfig
quick(SystemConfig c)
{
    c.warmupInsts = 10'000;
    c.measureInsts = 40'000;
    return c;
}

/** Records every event for structural assertions. */
class RecordingSink : public ProgressSink
{
  public:
    std::size_t started = 0, finished = 0, failed = 0;
    std::size_t sweepStarts = 0, sweepEnds = 0, heartbeats = 0;
    std::size_t announcedCells = 0;
    std::vector<std::size_t> startOrder, finishOrder;
    std::vector<CellId> finishedIds;
    double lastWall = -1.0;
    HeartbeatSample lastHb;

    void
    sweepStarted(std::size_t cells, unsigned jobs) override
    {
        ++sweepStarts;
        announcedCells = cells;
        EXPECT_GE(jobs, 1u);
    }

    void
    cellStarted(std::size_t index, const CellId &) override
    {
        ++started;
        startOrder.push_back(index);
    }

    void
    cellFinished(std::size_t index, const CellId &id,
                 double wall_seconds) override
    {
        ++finished;
        finishOrder.push_back(index);
        finishedIds.push_back(id);
        EXPECT_GE(wall_seconds, 0.0);
    }

    void
    cellFailed(std::size_t, const CellId &,
               const std::string &) override
    {
        ++failed;
    }

    void
    sweepFinished(double wall_seconds) override
    {
        ++sweepEnds;
        lastWall = wall_seconds;
    }

    void
    runHeartbeat(const HeartbeatSample &hb) override
    {
        ++heartbeats;
        lastHb = hb;
    }
};

Sweep
smallSweep()
{
    Sweep s;
    s.addConfig("ddr2", quick(SystemConfig::ddr2()))
        .addConfig("fbd-ap", quick(SystemConfig::fbdAp()))
        .addMix(mixByName("1C-swim"))
        .addMix(mixByName("1C-gap"));
    return s;
}

TEST(ProgressSinkTest, SweepEmitsCompleteEventStream)
{
    Sweep s = smallSweep();
    RecordingSink sink;
    s.progress(&sink);
    const auto rows = s.run();

    ASSERT_EQ(rows.size(), 4u);
    EXPECT_EQ(sink.sweepStarts, 1u);
    EXPECT_EQ(sink.sweepEnds, 1u);
    EXPECT_EQ(sink.announcedCells, 4u);
    EXPECT_EQ(sink.started, 4u);
    EXPECT_EQ(sink.finished, 4u);
    EXPECT_EQ(sink.failed, 0u);
    EXPECT_GE(sink.lastWall, 0.0);

    // Every cell index appears exactly once in each stream.
    std::vector<std::size_t> sorted = sink.finishOrder;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, (std::vector<std::size_t>{0, 1, 2, 3}));
    sorted = sink.startOrder;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, (std::vector<std::size_t>{0, 1, 2, 3}));

    // Cell identity matches the row the same index produced.
    for (std::size_t k = 0; k < sink.finishOrder.size(); ++k) {
        const std::size_t idx = sink.finishOrder[k];
        EXPECT_EQ(sink.finishedIds[k].config, rows[idx].config);
        EXPECT_EQ(sink.finishedIds[k].mix, rows[idx].mix);
        EXPECT_EQ(sink.finishedIds[k].seed, rows[idx].seed);
    }
}

TEST(ProgressSinkTest, SinkDoesNotPerturbRowsOrBytes)
{
    std::ostringstream plain;
    smallSweep().runCsv(plain);

    RecordingSink sink;
    std::ostringstream observed;
    Sweep s = smallSweep();
    s.progress(&sink);
    s.runCsv(observed);

    EXPECT_EQ(plain.str(), observed.str());
    EXPECT_EQ(sink.finished, 4u);
}

TEST(ProgressSinkTest, JsonlStreamIsParseableObjects)
{
    Sweep s = smallSweep();
    std::ostringstream os;
    JsonlProgress jsonl(os);
    s.progress(&jsonl);
    s.run();

    std::istringstream in(os.str());
    std::string line;
    std::size_t n = 0;
    bool sawStart = false, sawEnd = false;
    std::size_t cellEvents = 0;
    while (std::getline(in, line)) {
        const auto pr = json::parse(line);
        ASSERT_TRUE(pr.ok()) << pr.error << "\nline: " << line;
        const json::ValuePtr ev = pr.value->get("event");
        ASSERT_NE(ev, nullptr);
        const std::string name = ev->asString();
        if (name == "sweep_started") {
            sawStart = true;
            EXPECT_EQ(pr.value->get("cells")->asUint64(), 4u);
        } else if (name == "sweep_finished") {
            sawEnd = true;
            EXPECT_EQ(pr.value->get("done")->asUint64(), 4u);
        } else if (name == "cell_started"
                   || name == "cell_finished") {
            ++cellEvents;
            ASSERT_NE(pr.value->get("config"), nullptr);
            ASSERT_NE(pr.value->get("mix"), nullptr);
        }
        ++n;
    }
    EXPECT_TRUE(sawStart);
    EXPECT_TRUE(sawEnd);
    EXPECT_EQ(cellEvents, 8u);  // 4 started + 4 finished
    EXPECT_EQ(n, 10u);          // + sweep start/finish
}

TEST(ProgressSinkTest, MuxFansOut)
{
    RecordingSink a, b;
    ProgressMux mux;
    mux.add(&a);
    mux.add(&b);
    Sweep s = smallSweep();
    s.progress(&mux);
    s.run();
    EXPECT_EQ(a.finished, 4u);
    EXPECT_EQ(b.finished, 4u);
    EXPECT_EQ(a.sweepEnds, 1u);
    EXPECT_EQ(b.sweepEnds, 1u);
}

TEST(ProgressEtaTest, MeanTimesOutstandingOverJobs)
{
    SweepEta eta;
    eta.start(10, 2);
    EXPECT_EQ(eta.etaSeconds(), 0.0);  // nothing measured yet
    eta.finished(4.0);
    eta.finished(2.0);
    // mean 3 s/cell, 8 outstanding, 2 workers -> 12 s.
    EXPECT_DOUBLE_EQ(eta.etaSeconds(), 12.0);
    for (int i = 0; i < 8; ++i)
        eta.finished(3.0);
    EXPECT_DOUBLE_EQ(eta.etaSeconds(), 0.0);
}

TEST(ProgressEtaTest, HeartbeatFractionAndEta)
{
    HeartbeatSample hb;
    hb.instsDone = 25'000;
    hb.instsTarget = 100'000;
    hb.hostSeconds = 5.0;
    hb.instsPerSec = 5'000.0;
    EXPECT_DOUBLE_EQ(hb.fraction(), 0.25);
    EXPECT_DOUBLE_EQ(hb.etaSeconds(), 15.0);

    hb.instsDone = 200'000;  // past the target (drain phase)
    EXPECT_DOUBLE_EQ(hb.fraction(), 1.0);
    EXPECT_DOUBLE_EQ(hb.etaSeconds(), 0.0);

    hb.instsPerSec = 0.0;
    EXPECT_DOUBLE_EQ(hb.etaSeconds(), 0.0);
}

TEST(ProgressPulseTest, BeatsAndReportsMonotoneSamples)
{
    SystemConfig cfg = quick(SystemConfig::fbdAp());
    cfg.benchmarks = mixByName("1C-swim").benches;

    RecordingSink sink;
    System sys(cfg);
    ProgressPulse pulse(sys, ProgressPulse::defaultPeriod, sink);
    pulse.start();
    sys.run();
    pulse.finish();

    EXPECT_GT(pulse.beats(), 0u);
    EXPECT_EQ(sink.heartbeats, pulse.beats());
    // The final sample covers the whole run: warm-up + measure.
    EXPECT_EQ(sink.lastHb.instsTarget, 50'000u);
    EXPECT_GE(sink.lastHb.instsDone, 50'000u);
    EXPECT_DOUBLE_EQ(sink.lastHb.fraction(), 1.0);
    EXPECT_GE(sink.lastHb.hostSeconds, 0.0);
}

TEST(ProgressPulseTest, PulseIsInvisibleToResults)
{
    SystemConfig cfg = quick(SystemConfig::fbdAp());
    cfg.benchmarks = mixByName("1C-swim").benches;

    System bare(cfg);
    const RunResult a = bare.run();

    RecordingSink sink;
    System observed(cfg);
    ProgressPulse pulse(observed, ProgressPulse::defaultPeriod,
                        sink);
    pulse.start();
    const RunResult b = observed.run();
    pulse.finish();

    EXPECT_GT(sink.heartbeats, 0u);
    // Simulated outcomes are bit-identical with the pulse attached.
    EXPECT_EQ(a.measuredTicks, b.measuredTicks);
    EXPECT_EQ(a.reads, b.reads);
    EXPECT_EQ(a.writes, b.writes);
    EXPECT_EQ(a.ambHits, b.ambHits);
    EXPECT_EQ(a.ipcSum(), b.ipcSum());
    EXPECT_EQ(a.avgReadLatencyNs, b.avgReadLatencyNs);
    EXPECT_EQ(a.bandwidthGBs, b.bandwidthGBs);
}

} // namespace
