/**
 * @file
 * Unit tests of the DRAM bank state machine against the paper's
 * Table 2 timing parameters.
 */

#include <gtest/gtest.h>

#include "dram/bank.hh"
#include "dram/dram_timing.hh"

namespace fbdp {
namespace {

class BankTest : public ::testing::Test
{
  protected:
    DramTiming t = DramTiming::forDataRate(667);
    Bank bank{&t};
};

TEST_F(BankTest, PowerUpStateIsPrecharged)
{
    EXPECT_FALSE(bank.rowOpen());
    EXPECT_EQ(bank.actAllowedAt(), 0u);
}

TEST_F(BankTest, ActivateOpensRowAndSetsTrcd)
{
    bank.activate(1000, 42);
    EXPECT_TRUE(bank.rowOpen());
    EXPECT_EQ(bank.openRow(), 42u);
    EXPECT_EQ(bank.casAllowedAt(), 1000 + t.tRCD);
    EXPECT_EQ(bank.preAllowedAt(), 1000 + t.tRAS);
    EXPECT_EQ(bank.actAllowedAt(), 1000 + t.tRC);
}

TEST_F(BankTest, ReadDataEndIncludesCasLatencyAndBurst)
{
    bank.activate(0, 1);
    Tick end = bank.read(t.tRCD, 1, false);
    EXPECT_EQ(end, t.tRCD + t.tCL + t.burst);
    EXPECT_TRUE(bank.rowOpen());
}

TEST_F(BankTest, AutoPrechargeClosesRowAtEarliestLegalPoint)
{
    bank.activate(0, 1);
    bank.read(t.tRCD, 1, true);
    EXPECT_FALSE(bank.rowOpen());
    // Precharge time = max(tRAS, cas + tRPD); next ACT adds tRP and
    // respects tRC.
    const Tick pre_at = std::max(t.tRAS, t.tRCD + t.tRPD);
    EXPECT_EQ(bank.actAllowedAt(),
              std::max(t.tRC, pre_at + t.tRP));
}

TEST_F(BankTest, GroupReadSpacesCasByBurst)
{
    bank.activate(0, 7);
    const unsigned k = 4;
    Tick end = bank.read(t.tRCD, k, true);
    EXPECT_EQ(end, t.tRCD + (k - 1) * t.casGap() + t.tCL + t.burst);
    EXPECT_FALSE(bank.rowOpen());
}

TEST_F(BankTest, GroupReadDelaysPrechargeByLastCas)
{
    bank.activate(0, 7);
    bank.read(t.tRCD, 4, true);
    const Tick last_cas = t.tRCD + 3 * t.casGap();
    // With four CASes the read-to-precharge from the last access
    // dominates tRAS.
    EXPECT_EQ(bank.actAllowedAt(),
              std::max(t.tRC, last_cas + t.tRPD + t.tRP));
}

TEST_F(BankTest, WriteUsesWritePrechargeDelay)
{
    bank.activate(0, 3);
    Tick end = bank.write(t.tRCD, true);
    EXPECT_EQ(end, t.tRCD + t.tWL + t.burst);
    EXPECT_FALSE(bank.rowOpen());
    const Tick pre_at = std::max(t.tRAS, t.tRCD + t.tWPD);
    EXPECT_EQ(bank.actAllowedAt(),
              std::max(t.tRC, pre_at + t.tRP));
}

TEST_F(BankTest, OpenPageReadKeepsRowOpenForSecondAccess)
{
    bank.activate(0, 9);
    bank.read(t.tRCD, 1, false);
    EXPECT_TRUE(bank.rowOpen());
    // Row hit: second read only waits for the CAS gap.
    Tick second = bank.casAllowedAt();
    EXPECT_EQ(second, t.tRCD + t.casGap());
    bank.read(second, 1, false);
    EXPECT_TRUE(bank.rowOpen());
}

TEST_F(BankTest, ExplicitPrechargeThenActivate)
{
    bank.activate(0, 9);
    bank.read(t.tRCD, 1, false);
    Tick pre = bank.preAllowedAt();
    bank.precharge(pre);
    EXPECT_FALSE(bank.rowOpen());
    bank.activate(std::max(pre + t.tRP, t.tRC), 10);
    EXPECT_EQ(bank.openRow(), 10u);
}

TEST_F(BankTest, ResetRestoresPowerUpState)
{
    bank.activate(0, 5);
    bank.read(t.tRCD, 2, true);
    bank.reset();
    EXPECT_FALSE(bank.rowOpen());
    EXPECT_EQ(bank.actAllowedAt(), 0u);
}

using BankDeathTest = BankTest;

TEST_F(BankDeathTest, ActivateOpenBankPanics)
{
    bank.activate(0, 1);
    EXPECT_DEATH(bank.activate(t.tRC, 2), "ACT to a bank");
}

TEST_F(BankDeathTest, EarlyReadPanics)
{
    bank.activate(0, 1);
    EXPECT_DEATH(bank.read(t.tRCD - 1, 1, false), "RD at");
}

TEST_F(BankDeathTest, ReadPrechargedBankPanics)
{
    EXPECT_DEATH(bank.read(100, 1, false), "precharged");
}

TEST_F(BankDeathTest, EarlyPrechargePanics)
{
    bank.activate(0, 1);
    EXPECT_DEATH(bank.precharge(t.tRAS - 1), "PRE at");
}

/** Timing invariants hold across data rates. */
class BankRateTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(BankRateTest, ReadTimelineScalesWithRate)
{
    DramTiming t = DramTiming::forDataRate(GetParam());
    Bank bank(&t);
    bank.activate(0, 1);
    Tick end = bank.read(t.tRCD, 1, true);
    EXPECT_EQ(end, t.tRCD + t.tCL + 2 * t.memCycle);
    EXPECT_GE(bank.actAllowedAt(), t.tRC);
}

INSTANTIATE_TEST_SUITE_P(AllRates, BankRateTest,
                         ::testing::Values(533u, 667u, 800u));

} // namespace
} // namespace fbdp
