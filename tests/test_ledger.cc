/**
 * @file
 * Cross-run ledger: records must append and re-read exactly
 * (including 64-bit counters), history analysis must trend the right
 * records (digest grouping, lastN windows), flag planted drift and
 * stay quiet on identical records, and damage must be loud.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "system/ledger.hh"
#include "system/manifest.hh"
#include "system/rundiff.hh"
#include "system/sweep.hh"

using namespace fbdp;

namespace {

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + name;
}

/** A synthetic ledger record: full control over digest and metrics. */
std::string
record(const std::string &digest, double ips, std::uint64_t reads,
       const std::string &config = "fbd-ap",
       const std::string &mix = "1C-swim")
{
    return std::string("{\"schema\": \"") + ledgerSchema
        + "\", \"manifest\": {\"tool\": \"fbdp\", \"config_digest\": \""
        + digest + "\"}, \"config\": \"" + config + "\", \"mix\": \""
        + mix + "\", \"seed\": 1, \"metrics\": {\"insts_per_sec\": "
        + json::encodeNumber(ips) + ", \"reads\": "
        + json::encodeNumber(reads) + "}}";
}

std::vector<json::ValuePtr>
parseAll(const std::vector<std::string> &lines)
{
    std::vector<json::ValuePtr> out;
    for (const auto &l : lines) {
        const auto pr = json::parse(l);
        EXPECT_TRUE(pr.ok()) << pr.error;
        out.push_back(pr.value);
    }
    return out;
}

TEST(LedgerRecordTest, RealRowRoundTripsExactly)
{
    Sweep s;
    SystemConfig cfg = SystemConfig::fbdAp();
    cfg.warmupInsts = 10'000;
    cfg.measureInsts = 40'000;
    s.addConfig("fbd-ap", cfg).addMix(mixByName("1C-swim"));
    const auto rows = s.run();
    ASSERT_EQ(rows.size(), 1u);

    SystemConfig cellCfg = cfg;
    cellCfg.benchmarks = mixByName("1C-swim").benches;
    const RunManifest m = RunManifest::capture(cellCfg);
    const std::string line = ledgerRecordJson(m, rows[0]);
    EXPECT_EQ(line.find('\n'), std::string::npos);

    const auto pr = json::parse(line);
    ASSERT_TRUE(pr.ok()) << pr.error;
    EXPECT_EQ(pr.value->get("schema")->asString(), ledgerSchema);
    EXPECT_EQ(pr.value->get("config")->asString(), "fbd-ap");
    EXPECT_EQ(pr.value->get("mix")->asString(), "1C-swim");
    EXPECT_EQ(pr.value->get("manifest")
                  ->get("config_digest")->asString(),
              m.configDigest);

    // Counters survive the transit exactly.
    const json::ValuePtr met = pr.value->get("metrics");
    ASSERT_NE(met, nullptr);
    ASSERT_TRUE(met->get("reads")->isInteger());
    EXPECT_EQ(met->get("reads")->asUint64(), rows[0].result.reads);
    EXPECT_EQ(met->get("amb_hits")->asUint64(),
              rows[0].result.ambHits);
    EXPECT_EQ(met->get("ipc_sum")->asNumber(),
              rows[0].result.ipcSum());
}

TEST(LedgerFileTest, AppendAndReadBack)
{
    const std::string path = tmpPath("ledger_rw.jsonl");
    std::remove(path.c_str());

    std::string err;
    ASSERT_TRUE(appendLedgerRecord(
        path, record("aaaabbbbccccdddd", 100.0, 42), &err))
        << err;
    const std::uint64_t big = (1ULL << 53) + 1;
    ASSERT_TRUE(appendLedgerRecord(
        path, record("aaaabbbbccccdddd", 110.0, big), &err))
        << err;

    const auto records = readLedger(path, &err);
    ASSERT_TRUE(err.empty()) << err;
    ASSERT_EQ(records.size(), 2u);
    // Append order is preserved and counters are exact.
    EXPECT_EQ(records[0]->get("metrics")->get("reads")->asUint64(),
              42u);
    EXPECT_EQ(records[1]->get("metrics")->get("reads")->asUint64(),
              big);
    std::remove(path.c_str());
}

TEST(LedgerFileTest, MalformedLineIsLoud)
{
    const std::string path = tmpPath("ledger_bad.jsonl");
    {
        std::ofstream os(path);
        os << record("aaaabbbbccccdddd", 100.0, 1) << "\n";
        os << "this is not json\n";
    }
    std::string err;
    const auto records = readLedger(path, &err);
    EXPECT_FALSE(err.empty());
    EXPECT_TRUE(records.empty());
    std::remove(path.c_str());
}

TEST(LedgerHistoryTest, IdenticalRecordsAreClean)
{
    const auto records = parseAll({
        record("aaaabbbbccccdddd", 100.0, 42),
        record("aaaabbbbccccdddd", 100.0, 42),
        record("aaaabbbbccccdddd", 100.0, 42),
    });
    const HistoryReport rep =
        analyzeHistory(records, HistoryOptions{});
    ASSERT_TRUE(rep.ok()) << rep.error;
    EXPECT_EQ(rep.window, 3u);
    EXPECT_EQ(rep.digest, "aaaabbbbccccdddd");
    EXPECT_FALSE(rep.drifted());
}

TEST(LedgerHistoryTest, PlantedRateDropDrifts)
{
    // Newest record is 20% slower than its two predecessors: beyond
    // the default 10% tolerance, so the trend must flag it.
    const auto records = parseAll({
        record("aaaabbbbccccdddd", 100.0, 42),
        record("aaaabbbbccccdddd", 100.0, 42),
        record("aaaabbbbccccdddd", 80.0, 42),
    });
    const HistoryReport rep =
        analyzeHistory(records, HistoryOptions{});
    ASSERT_TRUE(rep.ok()) << rep.error;
    EXPECT_TRUE(rep.drifted());

    // The same drop inside a wider tolerance passes.
    HistoryOptions loose;
    loose.tolerance = 0.25;
    EXPECT_FALSE(analyzeHistory(records, loose).drifted());

    // Drift is two-sided by default: an *improvement* is also worth
    // noticing...
    const auto faster = parseAll({
        record("aaaabbbbccccdddd", 100.0, 42),
        record("aaaabbbbccccdddd", 120.0, 42),
    });
    EXPECT_TRUE(
        analyzeHistory(faster, HistoryOptions{}).drifted());
    // ...unless the caller asks for higher-is-better gating only.
    HistoryOptions higher;
    higher.direction = DiffDirection::HigherBetter;
    EXPECT_FALSE(analyzeHistory(faster, higher).drifted());
}

TEST(LedgerHistoryTest, DigestSelectsTheTrendLine)
{
    const auto records = parseAll({
        record("1111111111111111", 100.0, 1),
        record("1111111111111111", 100.0, 1),
        record("2222222222222222", 500.0, 9),
        record("2222222222222222", 200.0, 9),  // -60%: drifts
    });

    // Default: the newest record's digest (2222...).
    HistoryReport rep = analyzeHistory(records, HistoryOptions{});
    ASSERT_TRUE(rep.ok()) << rep.error;
    EXPECT_EQ(rep.digest, "2222222222222222");
    EXPECT_EQ(rep.matching, 2u);
    EXPECT_TRUE(rep.drifted());

    // Explicit digest picks the other, clean line.
    HistoryOptions opt;
    opt.digest = "1111111111111111";
    rep = analyzeHistory(records, opt);
    ASSERT_TRUE(rep.ok()) << rep.error;
    EXPECT_EQ(rep.matching, 2u);
    EXPECT_FALSE(rep.drifted());
}

TEST(LedgerHistoryTest, LastNTrimsOldRecords)
{
    // Ancient slow records would mask a recent regression; --last
    // scopes the baseline to the recent past.
    const auto records = parseAll({
        record("aaaabbbbccccdddd", 10.0, 42),
        record("aaaabbbbccccdddd", 100.0, 42),
        record("aaaabbbbccccdddd", 100.0, 42),
        record("aaaabbbbccccdddd", 80.0, 42),
    });
    HistoryOptions opt;
    opt.lastN = 3;
    const HistoryReport rep = analyzeHistory(records, opt);
    ASSERT_TRUE(rep.ok()) << rep.error;
    EXPECT_EQ(rep.window, 3u);
    EXPECT_TRUE(rep.drifted());  // 80 vs mean(100, 100)
}

TEST(LedgerHistoryTest, WindowOfOneIsAnError)
{
    const auto records =
        parseAll({record("aaaabbbbccccdddd", 100.0, 42)});
    const HistoryReport rep =
        analyzeHistory(records, HistoryOptions{});
    EXPECT_FALSE(rep.ok());
    EXPECT_FALSE(rep.error.empty());
}

TEST(LedgerHistoryTest, OnlyAndIgnoreFilterMetrics)
{
    const auto records = parseAll({
        record("aaaabbbbccccdddd", 100.0, 42),
        record("aaaabbbbccccdddd", 80.0, 42),
    });
    HistoryOptions opt;
    opt.ignore = {"insts_per_sec"};
    const HistoryReport rep = analyzeHistory(records, opt);
    ASSERT_TRUE(rep.ok()) << rep.error;
    EXPECT_FALSE(rep.drifted());  // the drifting metric is ignored

    HistoryOptions only;
    only.only = {"no_such_metric"};
    const HistoryReport rep2 = analyzeHistory(records, only);
    ASSERT_TRUE(rep2.ok()) << rep2.error;
    EXPECT_EQ(rep2.diff.compared, 0u);  // caller turns this into
                                        // exit 2, not a clean pass
}

TEST(LedgerFlattenTest, ManifestIsNotAMetric)
{
    const auto pr =
        json::parse(record("aaaabbbbccccdddd", 100.0, 42));
    ASSERT_TRUE(pr.ok()) << pr.error;

    // Default flattening skips manifest members at any depth, so a
    // rundiff of two ledger records never diffs git SHAs or hosts.
    const auto flat = flattenJson(pr.value);
    for (const auto &[key, entry] : flat)
        EXPECT_EQ(key.find("manifest"), std::string::npos) << key;
    EXPECT_NE(flat.count("metrics.insts_per_sec"), 0u);

    const auto full = flattenJson(pr.value, true);
    EXPECT_NE(full.count("manifest.config_digest"), 0u);
}

} // namespace
