/**
 * @file
 * The latency-phase attribution layer: phase conservation (per class,
 * the attributed phase times sum exactly to the end-to-end latency),
 * per-core stall accounting (attributed stall cycles sum exactly to
 * each reason's stall total), and observer invisibility (enabling
 * attribution changes no simulation result).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/json.hh"
#include "mc/attribution.hh"
#include "mc/transaction.hh"
#include "system/results.hh"
#include "system/statsjson.hh"
#include "system/system.hh"
#include "workload/mixes.hh"

using namespace fbdp;

namespace {

SystemConfig
smallConfig(SystemConfig cfg)
{
    cfg.measureInsts = 20'000;
    cfg.warmupInsts = 5'000;
    cfg.benchmarks = mixByName("2C-1").benches;
    return cfg;
}

Tick
phaseSum(const PhaseDurations &d)
{
    Tick sum = 0;
    for (unsigned p = 0; p < numLatPhases; ++p)
        sum += d.phase[p];
    return sum;
}

} // anonymous namespace

// ---------------------------------------------------------------- //
// computePhaseDurations unit behaviour                             //
// ---------------------------------------------------------------- //

TEST(PhaseDurationTest, FullyStampedReadTelescopesExactly)
{
    Transaction t;
    t.cmd = MemCmd::Read;
    t.arrivedAtMc = 100;
    t.earliestIssue = 200;
    t.stampIssue = 250;
    t.stampCas = 300;
    t.stampArrive = 400;
    t.stampData = 500;
    t.completedAt = 600;

    const PhaseDurations d = computePhaseDurations(t);
    EXPECT_EQ(d.cls, LatClass::DemandRead);
    EXPECT_EQ(d.total, 500u);
    EXPECT_EQ(d.phase[static_cast<unsigned>(LatPhase::Queue)], 100u);
    EXPECT_EQ(d.phase[static_cast<unsigned>(LatPhase::Sched)], 50u);
    EXPECT_EQ(d.phase[static_cast<unsigned>(LatPhase::BankPrep)], 50u);
    EXPECT_EQ(d.phase[static_cast<unsigned>(LatPhase::South)], 100u);
    EXPECT_EQ(d.phase[static_cast<unsigned>(LatPhase::Amb)], 0u);
    EXPECT_EQ(d.phase[static_cast<unsigned>(LatPhase::Bank)], 100u);
    EXPECT_EQ(d.phase[static_cast<unsigned>(LatPhase::North)], 100u);
    EXPECT_EQ(phaseSum(d), d.total);
}

TEST(PhaseDurationTest, AmbServedReadUsesAmbNotBank)
{
    Transaction t;
    t.cmd = MemCmd::Read;
    t.ambServed = true;
    t.arrivedAtMc = 100;
    t.earliestIssue = 100;
    t.stampIssue = 120;
    t.stampCas = 120;
    t.stampArrive = 180;
    t.stampData = 260;
    t.completedAt = 400;

    const PhaseDurations d = computePhaseDurations(t);
    EXPECT_EQ(d.cls, LatClass::PrefHit);
    EXPECT_EQ(d.phase[static_cast<unsigned>(LatPhase::Amb)], 80u);
    EXPECT_EQ(d.phase[static_cast<unsigned>(LatPhase::Bank)], 0u);
    EXPECT_EQ(phaseSum(d), d.total);
}

TEST(PhaseDurationTest, UnsetStampsInheritAndStillConserve)
{
    // A transaction with no intermediate stamps at all (e.g. a write
    // completed by a path that never set them) must still conserve:
    // unset boundaries clamp to their predecessor, giving zero-width
    // phases, never negative ones.
    Transaction t;
    t.cmd = MemCmd::Write;
    t.arrivedAtMc = 1000;
    t.earliestIssue = 1200;
    t.completedAt = 5000;

    const PhaseDurations d = computePhaseDurations(t);
    EXPECT_EQ(d.cls, LatClass::Write);
    EXPECT_EQ(d.total, 4000u);
    EXPECT_EQ(phaseSum(d), d.total);
    // Everything after Queue collapses into the final boundary diff.
    EXPECT_EQ(d.phase[static_cast<unsigned>(LatPhase::Queue)], 200u);
}

TEST(PhaseDurationTest, SwPrefetchClassifiesBelowAmbHit)
{
    Transaction t;
    t.cmd = MemCmd::Read;
    t.swPrefetch = true;
    t.arrivedAtMc = 0;
    t.completedAt = 10;
    EXPECT_EQ(computePhaseDurations(t).cls, LatClass::SwPrefetch);

    // An AMB hit wins over the sw-prefetch flag: the transaction was
    // served by the prefetch buffer, which is the interesting fact.
    t.ambServed = true;
    EXPECT_EQ(computePhaseDurations(t).cls, LatClass::PrefHit);
}

// ---------------------------------------------------------------- //
// Whole-system conservation                                        //
// ---------------------------------------------------------------- //

namespace {

void
expectBreakdownConserves(const ChannelBreakdown &cb)
{
    for (unsigned c = 0; c < numLatClasses; ++c) {
        const ClassPhaseBreakdown &cls = cb.cls[c];
        std::uint64_t sum = 0;
        for (unsigned p = 0; p < numLatPhases; ++p)
            sum += cls.phaseTicks[p];
        EXPECT_EQ(sum, cls.totalTicks)
            << "phase ticks must sum to end-to-end latency for class "
            << latClassName(static_cast<LatClass>(c));
    }
}

} // anonymous namespace

TEST(AttributionSystemTest, PhaseTicksSumToLatencyEveryClass)
{
    SystemConfig cfg = smallConfig(SystemConfig::fbdAp());
    cfg.attribution = true;
    System sys(cfg);
    RunResult r = sys.run();

    ASSERT_TRUE(r.attribution.enabled);
    ASSERT_EQ(r.attribution.channels.size(), cfg.logicChannels);

    expectBreakdownConserves(r.attribution.total);
    for (const ChannelBreakdown &cb : r.attribution.channels)
        expectBreakdownConserves(cb);

    // The interesting classes all saw traffic on the AP machine.
    const ChannelBreakdown &tot = r.attribution.total;
    EXPECT_GT(tot.cls[static_cast<unsigned>(LatClass::DemandRead)]
                  .samples, 0u);
    EXPECT_GT(tot.cls[static_cast<unsigned>(LatClass::PrefHit)]
                  .samples, 0u);
    EXPECT_GT(tot.cls[static_cast<unsigned>(LatClass::Write)]
                  .samples, 0u);

    // Class sample counts line up with the percentile plumbing, which
    // counts the same completions independently.
    EXPECT_EQ(tot.cls[static_cast<unsigned>(LatClass::PrefHit)]
                  .samples, r.latPrefHit.samples);
    EXPECT_EQ(tot.cls[static_cast<unsigned>(LatClass::Write)]
                  .samples, r.latWrite.samples);
    EXPECT_EQ(tot.cls[static_cast<unsigned>(LatClass::DemandRead)]
                      .samples
                  + tot.cls[static_cast<unsigned>(
                        LatClass::SwPrefetch)].samples,
              r.latDemand.samples);
}

TEST(AttributionSystemTest, CoreStallAccountingSumsExactly)
{
    SystemConfig cfg = smallConfig(SystemConfig::fbdAp());
    cfg.attribution = true;
    System sys(cfg);
    RunResult r = sys.run();

    ASSERT_EQ(r.attribution.cores.size(), cfg.benchmarks.size());
    bool sawStall = false;
    for (const CoreCycleBreakdown &cb : r.attribution.cores) {
        EXPECT_GT(cb.windowTicks, 0u);
        // Per-core accounting partitions the window.
        EXPECT_EQ(cb.baseTicks() + cb.stallTotal(), cb.windowTicks);
        for (unsigned reas = 0;
             reas < CoreStallAttribution::numReasons; ++reas) {
            // Attributed stall time sums exactly to the reason's
            // stall counter: per-phase + L2-wait + unattributed.
            EXPECT_EQ(cb.att.reasonTotal(reas), cb.stall[reas])
                << "reason " << stallReasonName(reas);
            sawStall = sawStall || cb.stall[reas] > 0;
        }
    }
    EXPECT_TRUE(sawStall) << "workload never stalled a core?";
}

// ---------------------------------------------------------------- //
// Observer invisibility: attribution must not change results       //
// ---------------------------------------------------------------- //

namespace {

void
expectAttributionInvisible(SystemConfig cfg, const char *config_name)
{
    SweepRow plain{config_name, "2C-1", cfg.seed, RunResult{}};
    {
        System sys(cfg);
        plain.result = sys.run();
    }

    SweepRow attributed{config_name, "2C-1", cfg.seed, RunResult{}};
    cfg.attribution = true;
    {
        System sys(cfg);
        attributed.result = sys.run();
    }

    const ResultSchema &schema = ResultSchema::sweepRows();
    EXPECT_EQ(schema.csvRow(plain), schema.csvRow(attributed));
    EXPECT_EQ(schema.jsonRow(plain), schema.jsonRow(attributed));
    const ResultSchema &lat = ResultSchema::latencyPercentiles();
    EXPECT_EQ(lat.csvRow(plain), lat.csvRow(attributed));
}

} // anonymous namespace

TEST(AttributionDeterminismTest, FbdResultsUnchanged)
{
    expectAttributionInvisible(smallConfig(SystemConfig::fbdBase()),
                               "fbd");
}

TEST(AttributionDeterminismTest, FbdApResultsUnchanged)
{
    expectAttributionInvisible(smallConfig(SystemConfig::fbdAp()),
                               "fbd-ap");
}

TEST(AttributionDeterminismTest, Ddr2ResultsUnchanged)
{
    expectAttributionInvisible(smallConfig(SystemConfig::ddr2()),
                               "ddr2");
}

// ---------------------------------------------------------------- //
// Surfaces: latencyBreakdown schema and the stats-json dump        //
// ---------------------------------------------------------------- //

TEST(AttributionSurfaceTest, BreakdownSchemaPhaseMeansSumToTotal)
{
    SystemConfig cfg = smallConfig(SystemConfig::fbdAp());
    cfg.attribution = true;
    System sys(cfg);

    SweepRow row{"fbd-ap", "2C-1", cfg.seed, sys.run()};

    const ResultSchema &schema = ResultSchema::latencyBreakdown();
    for (unsigned c = 0; c < numLatClasses; ++c) {
        const std::string cls =
            latClassName(static_cast<LatClass>(c));
        double total = 0.0, phases = 0.0;
        std::uint64_t samples = 0;
        for (const Column &col : schema.columns()) {
            if (col.name.rfind(cls + "_", 0) != 0)
                continue;
            const ColumnValue v = col.get(row);
            if (col.name == cls + "_samples")
                samples = v.count;
            else if (col.name == cls + "_total_ns")
                total = v.real;
            else
                phases += v.real;
        }
        EXPECT_GT(samples, 0u) << cls;
        EXPECT_NEAR(phases, total, 1e-9) << cls;
    }
}

TEST(AttributionSurfaceTest, StatsJsonIsOneParsableDocument)
{
    SystemConfig cfg = smallConfig(SystemConfig::fbdAp());
    cfg.attribution = true;
    System sys(cfg);
    SweepRow row{"fbd-ap", "2C-1", cfg.seed, sys.run()};

    std::ostringstream os;
    writeRunStatsJson(sys, row, os);

    const json::ParseResult pr = json::parse(os.str());
    ASSERT_TRUE(pr.ok()) << pr.error;
    ASSERT_TRUE(pr.value->isObject());
    for (const char *section :
         {"run", "latency", "kernel", "breakdown", "groups"}) {
        json::ValuePtr v = pr.value->get(section);
        ASSERT_TRUE(v && v->isObject()) << section;
    }

    // The breakdown section carries the attribution columns.
    json::ValuePtr bd = pr.value->get("breakdown");
    json::ValuePtr demand = bd->get("demand_total_ns");
    ASSERT_TRUE(demand && demand->isNumber());
    EXPECT_GT(demand->asNumber(), 0.0);

    // Per-channel stat groups expose the per-class phase means.
    json::ValuePtr groups = pr.value->get("groups");
    json::ValuePtr mc0 = groups->get("mc0");
    ASSERT_TRUE(mc0 && mc0->isObject());
    ASSERT_TRUE(mc0->get("pref_hit_amb_ns"));
}
