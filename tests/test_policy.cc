/**
 * @file
 * Conformance suite for the prefetch-policy plug-in interface: every
 * policy in the PolicyRegistry is driven through the same scripted
 * hook sequences and must honour the interface contract — the degree
 * bound on emissions, tolerance of any hook ordering, and bit-exact
 * determinism (same construction parameters + same hook sequence =>
 * same emissions, including across reset()).  Also covers the
 * PrefetchConfig spec-string grammar.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/types.hh"
#include "prefetch/policy.hh"
#include "system/prefetch_config.hh"

using namespace fbdp;

namespace {

/** Deterministic access script: a few interleaved region walks. */
std::vector<PrefetchAccess>
script(unsigned region_lines, unsigned n_dimms)
{
    std::vector<PrefetchAccess> seq;
    const Addr region_bytes =
        static_cast<Addr>(region_lines) * lineBytes;
    std::uint64_t lcg = 12345;
    for (unsigned i = 0; i < 200; ++i) {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        PrefetchAccess a;
        const unsigned region = (lcg >> 33) % 16;
        const unsigned off = (lcg >> 29) % region_lines;
        a.regionBase = static_cast<Addr>(region) * region_bytes;
        a.lineAddr = a.regionBase
            + static_cast<Addr>(off) * lineBytes;
        a.regionLines = region_lines;
        a.dimm = (lcg >> 40) % n_dimms;
        a.coreId = static_cast<int>((lcg >> 45) % 2);
        a.now = static_cast<Tick>(i) * 1000;
        a.linkUtil = static_cast<double>(i % 10) / 10.0;
        seq.push_back(a);
    }
    return seq;
}

/**
 * Drive one policy instance through the script with a plausible hook
 * mix (miss -> fills, every 3rd access a hit, every 7th an eviction,
 * every 11th a convert) and record every emission.
 */
std::vector<Addr>
drive(PrefetchPolicy &pol, const std::vector<PrefetchAccess> &seq,
      unsigned *max_emitted = nullptr)
{
    std::vector<Addr> out;
    unsigned max_n = 0;
    for (unsigned i = 0; i < seq.size(); ++i) {
        const PrefetchAccess &a = seq[i];
        if (i % 3 == 0) {
            pol.onHit(a);
            continue;
        }
        CandidateList cands(pol.degree());
        if (i % 11 == 0)
            pol.onConvert(a, cands);
        else
            pol.onMiss(a, cands);
        max_n = std::max(max_n, cands.size());
        for (unsigned c = 0; c < cands.size(); ++c) {
            out.push_back(cands[c]);
            pol.onFill(a.dimm, cands[c], a.now + 100);
        }
        if (i % 7 == 0 && !out.empty())
            pol.onEvict(a.dimm, out.back(), i % 2 == 0);
    }
    if (max_emitted)
        *max_emitted = max_n;
    return out;
}

} // namespace

TEST(PolicyRegistry, BuiltinsRegisteredAndSorted)
{
    const auto names = PolicyRegistry::instance().names();
    const std::vector<std::string> expect{"dspatch", "indram", "none",
                                          "region"};
    EXPECT_EQ(names, expect);
    for (const auto &n : expect)
        EXPECT_TRUE(PolicyRegistry::instance().has(n));
    EXPECT_FALSE(PolicyRegistry::instance().has("bogus"));
}

TEST(PolicyRegistry, MakeHonoursNameAndParams)
{
    PolicyParams pp;
    pp.regionLines = 8;
    pp.degree = 3;
    for (const auto &n : PolicyRegistry::instance().names()) {
        auto pol = PolicyRegistry::instance().make(n, pp);
        ASSERT_NE(pol, nullptr);
        EXPECT_EQ(std::string(pol->name()), n);
        EXPECT_EQ(pol->params().regionLines, 8u);
        EXPECT_EQ(pol->degree(), 3u);
    }
}

TEST(PolicyRegistryDeathTest, UnknownNameIsFatal)
{
    PolicyParams pp;
    EXPECT_DEATH(PolicyRegistry::instance().make("bogus", pp),
                 "unknown prefetch policy");
}

TEST(PolicyRegistryDeathTest, DuplicateRegistrationIsFatal)
{
    EXPECT_DEATH(PolicyRegistry::instance().add(
                     "region",
                     [](const PolicyParams &p) {
                         return PolicyRegistry::instance().make(
                             "none", p);
                     }),
                 "duplicate prefetch policy");
}

TEST(PolicyConformance, EmissionsRespectDegreeBound)
{
    for (const auto &n : PolicyRegistry::instance().names()) {
        for (unsigned degree : {0u, 1u, 2u, 8u}) {
            PolicyParams pp;
            pp.regionLines = 4;
            pp.degree = degree;
            pp.nDimms = 4;
            auto pol = PolicyRegistry::instance().make(n, pp);
            unsigned max_emitted = 0;
            drive(*pol, script(4, 4), &max_emitted);
            EXPECT_LE(max_emitted, pol->degree())
                << n << " degree=" << degree;
            if (n == "none")
                EXPECT_EQ(max_emitted, 0u);
        }
    }
}

TEST(PolicyConformance, EmissionsAreLineAligned)
{
    for (const auto &n : PolicyRegistry::instance().names()) {
        PolicyParams pp;
        pp.regionLines = 4;
        pp.nDimms = 4;
        auto pol = PolicyRegistry::instance().make(n, pp);
        for (Addr a : drive(*pol, script(4, 4)))
            EXPECT_EQ(a % lineBytes, 0u) << n;
    }
}

TEST(PolicyConformance, ToleratesColdHooks)
{
    // Hits, fills, evictions and converts before any miss training
    // must be safe for every policy.
    for (const auto &n : PolicyRegistry::instance().names()) {
        PolicyParams pp;
        pp.regionLines = 4;
        pp.nDimms = 2;
        auto pol = PolicyRegistry::instance().make(n, pp);
        PrefetchAccess a;
        a.regionBase = 0x1000;
        a.lineAddr = 0x1040;
        a.regionLines = 4;
        a.dimm = 1;
        pol->onHit(a);
        pol->onFill(1, 0x1080, 500);
        pol->onEvict(1, 0x1080, false);
        CandidateList cands(pol->degree());
        pol->onConvert(a, cands);
        EXPECT_LE(cands.size(), pol->degree()) << n;
    }
}

TEST(PolicyConformance, DeterministicAcrossInstancesAndReset)
{
    for (const auto &n : PolicyRegistry::instance().names()) {
        PolicyParams pp;
        pp.regionLines = 4;
        pp.nDimms = 4;
        const auto seq = script(4, 4);

        auto p1 = PolicyRegistry::instance().make(n, pp);
        auto p2 = PolicyRegistry::instance().make(n, pp);
        const auto e1 = drive(*p1, seq);
        const auto e2 = drive(*p2, seq);
        EXPECT_EQ(e1, e2) << n << ": two fresh instances diverged";

        // reset() must return to the freshly constructed state.
        p1->reset();
        const auto e3 = drive(*p1, seq);
        EXPECT_EQ(e1, e3) << n << ": replay after reset() diverged";
    }
}

TEST(PolicyConformance, RegionEmitsWholeResidualRegionAscending)
{
    // The paper's scheme: every in-region line except the demanded
    // one, in ascending order (the controller re-orders for the CAS
    // walk).
    PolicyParams pp;
    pp.regionLines = 4;
    auto pol = PolicyRegistry::instance().make("region", pp);
    PrefetchAccess a;
    a.regionBase = 0x2000;
    a.lineAddr = 0x2080; // offset 2 of 4
    a.regionLines = 4;
    CandidateList cands(pol->degree());
    pol->onMiss(a, cands);
    ASSERT_EQ(cands.size(), 3u);
    EXPECT_EQ(cands[0], 0x2000u);
    EXPECT_EQ(cands[1], 0x2040u);
    EXPECT_EQ(cands[2], 0x20c0u);
}

TEST(CandidateListTest, CapsAndCountsDrops)
{
    CandidateList c(2);
    c.add(0x0);
    c.add(0x40);
    c.add(0x80);
    c.add(0xc0);
    EXPECT_EQ(c.size(), 2u);
    EXPECT_EQ(c.dropped(), 2u);
    c.clear();
    EXPECT_TRUE(c.empty());
    EXPECT_EQ(c.dropped(), 0u);
}

TEST(PrefetchConfigTest, ParseDefaultsAndKeys)
{
    const PrefetchConfig p = PrefetchConfig::parse("region");
    EXPECT_EQ(p.policy, "region");
    EXPECT_EQ(p.degree, 0u);
    EXPECT_EQ(p.entries, 64u);
    EXPECT_EQ(p.ways, 0u);
    EXPECT_EQ(p.throttle, 0.0);
    EXPECT_TRUE(p.enabled());

    const PrefetchConfig q = PrefetchConfig::parse(
        "dspatch,degree=2,entries=128,ways=4,throttle=0.8");
    EXPECT_EQ(q.policy, "dspatch");
    EXPECT_EQ(q.degree, 2u);
    EXPECT_EQ(q.entries, 128u);
    EXPECT_EQ(q.ways, 4u);
    EXPECT_DOUBLE_EQ(q.throttle, 0.8);

    EXPECT_FALSE(PrefetchConfig::parse("none").enabled());
}

TEST(PrefetchConfigTest, ParseInheritsCallerDefaults)
{
    PrefetchConfig dflt;
    dflt.entries = 256;
    dflt.ways = 8;
    const PrefetchConfig p = PrefetchConfig::parse("indram", dflt);
    EXPECT_EQ(p.policy, "indram");
    EXPECT_EQ(p.entries, 256u);
    EXPECT_EQ(p.ways, 8u);
}

TEST(PrefetchConfigTest, SpecRoundTrips)
{
    const PrefetchConfig p = PrefetchConfig::parse(
        "dspatch,degree=2,entries=128,ways=4,throttle=0.8");
    const PrefetchConfig q = PrefetchConfig::parse(p.spec());
    EXPECT_EQ(q.policy, p.policy);
    EXPECT_EQ(q.degree, p.degree);
    EXPECT_EQ(q.entries, p.entries);
    EXPECT_EQ(q.ways, p.ways);
    EXPECT_DOUBLE_EQ(q.throttle, p.throttle);
}

TEST(PrefetchConfigDeathTest, RejectsMalformedSpecs)
{
    EXPECT_DEATH(PrefetchConfig::parse(""), "empty prefetch policy");
    EXPECT_DEATH(PrefetchConfig::parse("bogus"),
                 "unknown prefetch policy");
    EXPECT_DEATH(PrefetchConfig::parse("region,degree"),
                 "not key=value");
    EXPECT_DEATH(PrefetchConfig::parse("region,degree="),
                 "has no value");
    EXPECT_DEATH(PrefetchConfig::parse("region,frobnicate=1"),
                 "unknown prefetch spec key");
    EXPECT_DEATH(PrefetchConfig::parse("region,throttle=1.5"),
                 "outside");
}
