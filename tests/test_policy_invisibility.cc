/**
 * @file
 * Invisibility test of the policy refactor: routing the paper's
 * region-group prefetch through the PrefetchPolicy interface must
 * leave simulation results bit-for-bit identical.  The golden numbers
 * below pin the staged sharded kernel (cross-shard hand-offs cost one
 * memory-cycle frame; measurement windows are frame-aligned);
 * RegionPolicy behind the plug-in interface must reproduce every one
 * of them exactly — including the doubles, compared with EXPECT_EQ on
 * purpose.
 *
 * Also pins the config-resolution equivalences: the FBD-AP preset,
 * the explicit nested spec and the deprecated legacy mirrors must all
 * build the same machine.
 */

#include <gtest/gtest.h>

#include "system/system.hh"
#include "workload/mixes.hh"

using namespace fbdp;

namespace {

SystemConfig
golden()
{
    SystemConfig c = SystemConfig::fbdAp();
    c.benchmarks = mixByName("2C-1").benches;
    c.warmupInsts = 10'000;
    c.measureInsts = 40'000;
    c.seed = 7;
    return c;
}

void
expectGolden(const RunResult &r)
{
    EXPECT_EQ(r.reads, 1022u);
    EXPECT_EQ(r.writes, 376u);
    EXPECT_EQ(r.ambHits, 666u);
    EXPECT_EQ(r.measuredTicks, 6231000u);
    EXPECT_EQ(r.ops.actPre, 728u);
    EXPECT_EQ(r.ops.cas(), 1786u);
    EXPECT_EQ(r.ops.refresh, 6u);
    EXPECT_EQ(r.latePrefetchHits, 80u);
    // Bit-exact doubles: the refactor must not reorder a single
    // floating-point operation in the measured path.
    EXPECT_EQ(r.coverage, 0.65166340508806264);
    EXPECT_EQ(r.efficiency, 0.6271186440677966);
    EXPECT_EQ(r.avgReadLatencyNs, 58.306118343195266);
    EXPECT_EQ(r.ipcSum(), 3.2104397367998718);
    ASSERT_EQ(r.insts.size(), 2u);
    EXPECT_EQ(r.insts[0], 40061u);
    EXPECT_EQ(r.insts[1], 39956u);
    EXPECT_EQ(r.ipc[0], 1.607326271866474);
    EXPECT_EQ(r.ipc[1], 1.6031134649333976);
}

} // namespace

TEST(PolicyInvisibility, RegionPolicyReproducesSeedResults)
{
    System sys(golden());
    expectGolden(sys.run());
}

TEST(PolicyInvisibility, ExplicitSpecMatchesPreset)
{
    SystemConfig c = golden();
    c.ambPrefetch =
        PrefetchConfig::parse("region,entries=64,ways=0");
    System sys(c);
    expectGolden(sys.run());
}

TEST(PolicyInvisibility, LegacyMirrorsMatchPreset)
{
    // The deprecated path: nested block disabled, legacy booleans
    // set.  Resolution folds the mirrors into a region policy (and
    // warns once); results must still be bit-identical.
    SystemConfig c = golden();
    c.ambPrefetch.policy = "none";
    c.apEnable = true;
    c.ambEntries = 64;
    c.ambWays = 0;
    System sys(c);
    expectGolden(sys.run());
}

TEST(PolicyInvisibility, PrefetchStatsBlockIsConsistent)
{
    System sys(golden());
    const RunResult r = sys.run();
    EXPECT_EQ(r.prefetch.policy, "region");
    EXPECT_EQ(r.prefetch.hits, r.ambHits);
    EXPECT_EQ(r.prefetch.lateHits, r.latePrefetchHits);
    EXPECT_EQ(r.prefetch.dropped, 0u);
    EXPECT_GT(r.prefetch.issued, r.prefetch.hits);
    // efficiency == hits / issued by construction.
    EXPECT_DOUBLE_EQ(r.efficiency,
                     static_cast<double>(r.prefetch.hits)
                         / static_cast<double>(r.prefetch.issued));
}
