/**
 * @file
 * Unit tests of the controller-side prefetch information table.
 */

#include <gtest/gtest.h>

#include "prefetch/prefetch_table.hh"

namespace fbdp {
namespace {

Addr
line(unsigned i)
{
    return static_cast<Addr>(i) * lineBytes;
}

TEST(PrefetchTableTest, OneCachePerDimm)
{
    PrefetchTable t(4, 64, 0);
    EXPECT_EQ(t.numDimms(), 4u);
    t.dimm(0).insert(line(1), 0);
    EXPECT_EQ(t.peek(1, line(1)), nullptr) << "per-DIMM isolation";
    EXPECT_NE(t.peek(0, line(1)), nullptr);
}

TEST(PrefetchTableTest, InsertGroupSkipsDemandedLine)
{
    PrefetchTable t(1, 64, 0);
    t.insertGroup(0, 0, 4, line(2));
    EXPECT_NE(t.peek(0, line(0)), nullptr);
    EXPECT_NE(t.peek(0, line(1)), nullptr);
    EXPECT_EQ(t.peek(0, line(2)), nullptr) << "demanded not kept";
    EXPECT_NE(t.peek(0, line(3)), nullptr);
    EXPECT_EQ(t.prefetchesIssued(), 3u);
}

TEST(PrefetchTableTest, GroupEntriesStartPending)
{
    PrefetchTable t(1, 64, 0);
    t.insertGroup(0, 0, 4, line(0));
    EXPECT_EQ(t.peek(0, line(1))->readyAt, AmbCache::fillPending);
    t.resolveFill(0, line(1), 5555);
    EXPECT_EQ(t.peek(0, line(1))->readyAt, 5555u);
}

TEST(PrefetchTableTest, ResolveFillOnEvictedLineIsHarmless)
{
    PrefetchTable t(1, 64, 0);
    t.resolveFill(0, line(99), 123);  // nothing there
    EXPECT_EQ(t.peek(0, line(99)), nullptr);
}

TEST(PrefetchTableTest, ReinsertKeepsFifoAge)
{
    PrefetchTable t(1, 4, 0);
    t.insertGroup(0, 0, 4, line(0));          // inserts 1,2,3
    t.insertGroup(0, 0, 4, line(2));          // 0 new; 1,3 existing
    // Capacity 4: entries now 1,2,3,0 -> no eviction yet.
    EXPECT_EQ(t.dimm(0).population(), 4u);
    t.insertGroup(0, 4 * lineBytes, 4, line(4));  // 5,6,7: evicts 3
    EXPECT_EQ(t.peek(0, line(1)), nullptr);
    EXPECT_EQ(t.peek(0, line(2)), nullptr);
    EXPECT_EQ(t.peek(0, line(3)), nullptr);
    EXPECT_NE(t.peek(0, line(0)), nullptr)
        << "line 0 was inserted later than 1-3";
}

TEST(PrefetchTableTest, CoverageAndEfficiency)
{
    PrefetchTable t(1, 64, 0);
    t.insertGroup(0, 0, 4, line(0));  // 3 prefetches
    for (int i = 0; i < 4; ++i)
        t.countRead();
    t.countHit();
    t.countHit();
    EXPECT_DOUBLE_EQ(t.coverage(), 0.5);
    EXPECT_DOUBLE_EQ(t.efficiency(), 2.0 / 3.0);
}

TEST(PrefetchTableTest, ZeroDenominators)
{
    PrefetchTable t(1, 64, 0);
    EXPECT_DOUBLE_EQ(t.coverage(), 0.0);
    EXPECT_DOUBLE_EQ(t.efficiency(), 0.0);
}

TEST(PrefetchTableTest, WriteInvalidationCountsOnlyPresent)
{
    PrefetchTable t(1, 64, 0);
    t.insertGroup(0, 0, 4, line(0));
    t.invalidate(0, line(1));
    t.invalidate(0, line(1));  // second time: no entry
    t.invalidate(0, line(0));  // demanded line never inserted
    EXPECT_EQ(t.writeInvalidations(), 1u);
    EXPECT_EQ(t.peek(0, line(1)), nullptr);
}

TEST(PrefetchTableTest, LookupReadCountsHit)
{
    PrefetchTable t(1, 64, 0);
    t.insertGroup(0, 0, 4, line(0));
    EXPECT_NE(t.lookupRead(0, line(1)), nullptr);
    EXPECT_EQ(t.prefetchHits(), 1u);
    EXPECT_EQ(t.lookupRead(0, line(40)), nullptr);
    EXPECT_EQ(t.prefetchHits(), 1u);
}

TEST(PrefetchTableTest, ResetStatsKeepsContents)
{
    PrefetchTable t(1, 64, 0);
    t.insertGroup(0, 0, 4, line(0));
    t.countRead();
    t.countHit();
    t.resetStats();
    EXPECT_EQ(t.reads(), 0u);
    EXPECT_EQ(t.prefetchHits(), 0u);
    EXPECT_EQ(t.prefetchesIssued(), 0u);
    EXPECT_NE(t.peek(0, line(1)), nullptr) << "contents survive";
}

TEST(PrefetchTableTest, ResetClearsEverything)
{
    PrefetchTable t(2, 64, 0);
    t.insertGroup(0, 0, 4, line(0));
    t.insertGroup(1, 0, 4, line(0));
    t.reset();
    EXPECT_EQ(t.peek(0, line(1)), nullptr);
    EXPECT_EQ(t.peek(1, line(1)), nullptr);
    EXPECT_EQ(t.prefetchesIssued(), 0u);
}

TEST(PrefetchTableTest, RegionSizesTwoAndEight)
{
    PrefetchTable t(1, 64, 0);
    t.insertGroup(0, 0, 2, line(1));
    EXPECT_EQ(t.prefetchesIssued(), 1u);
    t.insertGroup(0, 8 * lineBytes, 8, line(8));
    EXPECT_EQ(t.prefetchesIssued(), 8u);  // 1 + 7
    for (unsigned i = 9; i < 16; ++i)
        EXPECT_NE(t.peek(0, line(i)), nullptr) << i;
}

} // namespace
} // namespace fbdp
