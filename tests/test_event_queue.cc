/**
 * @file
 * Unit tests for the event-driven simulation kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace fbdp {
namespace {

TEST(EventQueueTest, StartsAtTickZeroAndEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_FALSE(eq.step());
}

TEST(EventQueueTest, DispatchesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    Event a([&] { order.push_back(1); });
    Event b([&] { order.push_back(2); });
    Event c([&] { order.push_back(3); });
    eq.schedule(&c, 300);
    eq.schedule(&a, 100);
    eq.schedule(&b, 200);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 300u);
}

TEST(EventQueueTest, SameTickOrderedByPriorityThenSeq)
{
    EventQueue eq;
    std::vector<int> order;
    Event data([&] { order.push_back(0); }, Event::prioData);
    Event cpu([&] { order.push_back(2); }, Event::prioCpu);
    Event def([&] { order.push_back(1); });
    eq.schedule(&cpu, 50);
    eq.schedule(&def, 50);
    eq.schedule(&data, 50);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueueTest, SameTickSamePriorityFifo)
{
    EventQueue eq;
    std::vector<int> order;
    Event a([&] { order.push_back(1); });
    Event b([&] { order.push_back(2); });
    eq.schedule(&a, 10);
    eq.schedule(&b, 10);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueueTest, RescheduleMovesEvent)
{
    EventQueue eq;
    int fired = 0;
    Event a([&] { ++fired; });
    eq.schedule(&a, 100);
    eq.schedule(&a, 500);  // move
    Event marker([] {});
    eq.schedule(&marker, 200);
    eq.run(200);
    EXPECT_EQ(fired, 0);  // not yet
    eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 500u);
}

TEST(EventQueueTest, DescheduleCancels)
{
    EventQueue eq;
    int fired = 0;
    Event a([&] { ++fired; });
    eq.schedule(&a, 100);
    eq.deschedule(&a);
    EXPECT_FALSE(a.scheduled());
    eq.run();
    EXPECT_EQ(fired, 0);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueueTest, DescheduleIdempotent)
{
    EventQueue eq;
    Event a([] {});
    eq.deschedule(&a);  // never scheduled: no-op
    eq.schedule(&a, 10);
    eq.deschedule(&a);
    eq.deschedule(&a);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueueTest, EventCanRescheduleItself)
{
    EventQueue eq;
    int count = 0;
    Event *pa = nullptr;
    Event a([&] {
        ++count;
        if (count < 5)
            eq.schedule(pa, eq.now() + 10);
    });
    pa = &a;
    eq.schedule(&a, 0);
    eq.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(eq.now(), 40u);
}

TEST(EventQueueTest, RunWithLimitStopsAndAdvancesClock)
{
    EventQueue eq;
    int fired = 0;
    Event a([&] { ++fired; });
    eq.schedule(&a, 1000);
    eq.run(500);
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(eq.now(), 500u);
    eq.run();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueueTest, ScheduledFlagTracksLifecycle)
{
    EventQueue eq;
    Event a([] {});
    EXPECT_FALSE(a.scheduled());
    eq.schedule(&a, 10);
    EXPECT_TRUE(a.scheduled());
    EXPECT_EQ(a.when(), 10u);
    eq.run();
    EXPECT_FALSE(a.scheduled());
}

TEST(EventQueueTest, DispatchCountsEvents)
{
    EventQueue eq;
    Event a([] {});
    Event b([] {});
    eq.schedule(&a, 1);
    eq.schedule(&b, 2);
    eq.run();
    EXPECT_EQ(eq.dispatched(), 2u);
}

TEST(EventQueueTest, ScheduleAtCurrentTickAllowed)
{
    EventQueue eq;
    Event first([] {});
    eq.schedule(&first, 100);
    eq.step();
    int fired = 0;
    Event now_ev([&] { ++fired; });
    eq.schedule(&now_ev, eq.now());
    eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueueTest, ManyEventsStressOrdering)
{
    EventQueue eq;
    std::vector<std::unique_ptr<Event>> events;
    Tick last = 0;
    bool monotonic = true;
    for (int i = 0; i < 1000; ++i) {
        events.push_back(std::make_unique<Event>([&eq, &last,
                                                  &monotonic] {
            if (eq.now() < last)
                monotonic = false;
            last = eq.now();
        }));
        eq.schedule(events.back().get(),
                    static_cast<Tick>((i * 37) % 501));
    }
    eq.run();
    EXPECT_TRUE(monotonic);
    EXPECT_EQ(eq.dispatched(), 1000u);
}

// --- batched same-tick dispatch ---------------------------------------
// run() extracts everything due at the current tick into one batch
// before invoking any handler.  The observable semantics must remain
// exactly those of the per-event heap walk: handlers may deschedule,
// reschedule, or newly schedule same-tick peers mid-batch and the
// (priority, seq) total order still decides what runs.

TEST(EventQueueTest, BatchPeerDescheduleCancelsUnrunEntry)
{
    EventQueue eq;
    int fired_b = 0;
    Event b([&] { ++fired_b; });
    Event a([&] { eq.deschedule(&b); });
    eq.schedule(&a, 50);
    eq.schedule(&b, 50); // same tick, after a in seq order
    eq.run();
    EXPECT_EQ(fired_b, 0);
    EXPECT_FALSE(b.scheduled());
    // The cancelled batch entry must not count as dispatched.
    EXPECT_EQ(eq.dispatched(), 1u);
    EXPECT_EQ(eq.counters().deschedules, 1u);
}

TEST(EventQueueTest, BatchPeerRescheduleMovesToLaterTick)
{
    EventQueue eq;
    std::vector<Tick> fires;
    Event b([&] { fires.push_back(eq.now()); });
    Event a([&] { eq.schedule(&b, 60); });
    eq.schedule(&a, 50);
    eq.schedule(&b, 50); // in a's batch until a moves it
    eq.run();
    EXPECT_EQ(fires, (std::vector<Tick>{60}));
}

TEST(EventQueueTest, NewSameTickEventDuringBatchRespectsPriority)
{
    // A handler schedules a new higher-priority (lower value) event
    // at the current tick; it must run before batch entries of lower
    // priority that were extracted earlier.
    EventQueue eq;
    std::vector<int> order;
    Event late([&] { order.push_back(2); });
    Event data([&] { order.push_back(1); }, Event::prioData);
    Event first([&] {
        order.push_back(0);
        eq.schedule(&data, eq.now());
    }, Event::prioData);
    Event cpu([&] { order.push_back(3); }, Event::prioCpu);
    eq.schedule(&first, 40);
    eq.schedule(&late, 40);
    eq.schedule(&cpu, 40);
    eq.run();
    // first (data, seq 0), then the newly scheduled data event (prio
    // 0 beats prio 10/20), then the default, then the cpu event.
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueueTest, ScheduledStaysTrueForUnrunBatchPeers)
{
    // Legacy semantics: a same-tick peer that has not fired yet still
    // reports scheduled() even while it sits in the extracted batch.
    EventQueue eq;
    bool b_was_scheduled = false;
    Event b([] {});
    Event a([&] { b_was_scheduled = b.scheduled(); });
    eq.schedule(&a, 10);
    eq.schedule(&b, 10);
    eq.run();
    EXPECT_TRUE(b_was_scheduled);
    EXPECT_FALSE(b.scheduled());
}

TEST(EventQueueTest, BatchSelfRescheduleRunsAgainSameTick)
{
    EventQueue eq;
    int fires = 0;
    Event a([&] {
        if (++fires == 1)
            eq.schedule(&a, eq.now()); // run once more this tick
    });
    eq.schedule(&a, 30);
    Event peer([] {});
    eq.schedule(&peer, 30);
    eq.run();
    EXPECT_EQ(fires, 2);
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueueTest, LongBurstDispatchesInPrioritySeqOrder)
{
    // Enough same-tick events to cross the burst threshold into the
    // batch path: the total order must be indistinguishable from the
    // one-at-a-time walk.
    EventQueue eq;
    std::vector<int> order;
    std::vector<std::unique_ptr<Event>> evs;
    for (int i = 0; i < 32; ++i) {
        const int prio = (i % 3) * 10; // data / default / cpu
        evs.push_back(std::make_unique<Event>(
            [&order, i] { order.push_back(i); }, prio));
    }
    for (auto &e : evs)
        eq.schedule(e.get(), 100);
    eq.run();
    ASSERT_EQ(order.size(), 32u);
    // Priority ascending; equal priorities in schedule (seq) order.
    for (std::size_t i = 1; i < order.size(); ++i) {
        const int pa = (order[i - 1] % 3) * 10;
        const int pb = (order[i] % 3) * 10;
        EXPECT_LE(pa, pb);
        if (pa == pb)
            EXPECT_LT(order[i - 1], order[i]);
    }
    EXPECT_EQ(eq.dispatched(), 32u);
}

TEST(EventQueueTest, LongBurstPeerDescheduleAndReschedule)
{
    // Mid-burst mutation with the batch path active: an early event
    // cancels one later batch entry and moves another to a later
    // tick.  Both must behave exactly as under direct dispatch.
    // Schedule order (all default priority, one tick): ten leaders,
    // the mutator, its two targets, ten trailers.  The leaders burn
    // the direct-dispatch budget, so the mutator — and the targets it
    // touches — are genuine batch entries when it runs.
    EventQueue eq;
    int cancelled_fired = 0, moved_at = -1, fired = 0;
    std::vector<std::unique_ptr<Event>> evs;
    Event victim([&cancelled_fired] { ++cancelled_fired; });
    Event mover([&moved_at, &eq] {
        moved_at = static_cast<int>(eq.now());
    });
    Event mutator([&eq, &victim, &mover] {
        eq.deschedule(&victim);
        eq.schedule(&mover, eq.now() + 50);
    });
    for (int i = 0; i < 10; ++i)
        evs.push_back(std::make_unique<Event>([&fired] { ++fired; }));
    for (auto &e : evs)
        eq.schedule(e.get(), 10);
    eq.schedule(&mutator, 10);
    eq.schedule(&victim, 10);
    eq.schedule(&mover, 10);
    std::vector<std::unique_ptr<Event>> trailers;
    for (int i = 0; i < 10; ++i)
        trailers.push_back(
            std::make_unique<Event>([&fired] { ++fired; }));
    for (auto &e : trailers)
        eq.schedule(e.get(), 10);
    eq.run();
    EXPECT_EQ(fired, 20);
    EXPECT_EQ(cancelled_fired, 0);
    EXPECT_EQ(moved_at, 60);
    EXPECT_EQ(eq.now(), 60u);
    EXPECT_EQ(eq.counters().deschedules, 1u);
}

TEST(EventQueueTest, LongBurstNewHighPriorityEventCutsIn)
{
    // A same-tick event scheduled from inside the batch at a higher
    // priority must cut in before the lower-priority batch remainder
    // (the drain in the dispatch loop).  The injector sits deep
    // enough in the cpu crowd to be a batch entry itself.
    EventQueue eq;
    std::vector<int> order;
    std::vector<std::unique_ptr<Event>> cpu_evs;
    Event injected([&order] { order.push_back(-1); },
                   Event::prioData);
    Event injector([&order, &eq, &injected] {
        order.push_back(0);
        eq.schedule(&injected, eq.now());
    }, Event::prioCpu);
    for (int i = 1; i <= 20; ++i)
        cpu_evs.push_back(std::make_unique<Event>(
            [&order, i] { order.push_back(i); }, Event::prioCpu));
    for (int i = 0; i < 10; ++i)
        eq.schedule(cpu_evs[static_cast<size_t>(i)].get(), 5);
    eq.schedule(&injector, 5);
    for (int i = 10; i < 20; ++i)
        eq.schedule(cpu_evs[static_cast<size_t>(i)].get(), 5);
    eq.run();
    ASSERT_EQ(order.size(), 22u);
    EXPECT_EQ(order[9], 10);  // last leader
    EXPECT_EQ(order[10], 0);  // injector, dispatched from the batch
    EXPECT_EQ(order[11], -1); // injected data event beats the rest
    EXPECT_EQ(order[12], 11);
    EXPECT_EQ(order.back(), 20);
}

TEST(EventQueueTest, AdvanceToMovesIdleClockMonotonically)
{
    EventQueue eq;
    eq.advanceTo(3000);
    EXPECT_EQ(eq.now(), 3000u);
    eq.advanceTo(1000); // backwards: no-op
    EXPECT_EQ(eq.now(), 3000u);
    int fired = 0;
    Event a([&] { ++fired; });
    eq.schedule(&a, 4500);
    eq.advanceTo(4000); // pending event is later: allowed
    eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 4500u);
}

} // namespace
} // namespace fbdp
