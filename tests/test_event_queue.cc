/**
 * @file
 * Unit tests for the event-driven simulation kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace fbdp {
namespace {

TEST(EventQueueTest, StartsAtTickZeroAndEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_FALSE(eq.step());
}

TEST(EventQueueTest, DispatchesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    Event a([&] { order.push_back(1); });
    Event b([&] { order.push_back(2); });
    Event c([&] { order.push_back(3); });
    eq.schedule(&c, 300);
    eq.schedule(&a, 100);
    eq.schedule(&b, 200);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 300u);
}

TEST(EventQueueTest, SameTickOrderedByPriorityThenSeq)
{
    EventQueue eq;
    std::vector<int> order;
    Event data([&] { order.push_back(0); }, Event::prioData);
    Event cpu([&] { order.push_back(2); }, Event::prioCpu);
    Event def([&] { order.push_back(1); });
    eq.schedule(&cpu, 50);
    eq.schedule(&def, 50);
    eq.schedule(&data, 50);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueueTest, SameTickSamePriorityFifo)
{
    EventQueue eq;
    std::vector<int> order;
    Event a([&] { order.push_back(1); });
    Event b([&] { order.push_back(2); });
    eq.schedule(&a, 10);
    eq.schedule(&b, 10);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueueTest, RescheduleMovesEvent)
{
    EventQueue eq;
    int fired = 0;
    Event a([&] { ++fired; });
    eq.schedule(&a, 100);
    eq.schedule(&a, 500);  // move
    Event marker([] {});
    eq.schedule(&marker, 200);
    eq.run(200);
    EXPECT_EQ(fired, 0);  // not yet
    eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 500u);
}

TEST(EventQueueTest, DescheduleCancels)
{
    EventQueue eq;
    int fired = 0;
    Event a([&] { ++fired; });
    eq.schedule(&a, 100);
    eq.deschedule(&a);
    EXPECT_FALSE(a.scheduled());
    eq.run();
    EXPECT_EQ(fired, 0);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueueTest, DescheduleIdempotent)
{
    EventQueue eq;
    Event a([] {});
    eq.deschedule(&a);  // never scheduled: no-op
    eq.schedule(&a, 10);
    eq.deschedule(&a);
    eq.deschedule(&a);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueueTest, EventCanRescheduleItself)
{
    EventQueue eq;
    int count = 0;
    Event *pa = nullptr;
    Event a([&] {
        ++count;
        if (count < 5)
            eq.schedule(pa, eq.now() + 10);
    });
    pa = &a;
    eq.schedule(&a, 0);
    eq.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(eq.now(), 40u);
}

TEST(EventQueueTest, RunWithLimitStopsAndAdvancesClock)
{
    EventQueue eq;
    int fired = 0;
    Event a([&] { ++fired; });
    eq.schedule(&a, 1000);
    eq.run(500);
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(eq.now(), 500u);
    eq.run();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueueTest, ScheduledFlagTracksLifecycle)
{
    EventQueue eq;
    Event a([] {});
    EXPECT_FALSE(a.scheduled());
    eq.schedule(&a, 10);
    EXPECT_TRUE(a.scheduled());
    EXPECT_EQ(a.when(), 10u);
    eq.run();
    EXPECT_FALSE(a.scheduled());
}

TEST(EventQueueTest, DispatchCountsEvents)
{
    EventQueue eq;
    Event a([] {});
    Event b([] {});
    eq.schedule(&a, 1);
    eq.schedule(&b, 2);
    eq.run();
    EXPECT_EQ(eq.dispatched(), 2u);
}

TEST(EventQueueTest, ScheduleAtCurrentTickAllowed)
{
    EventQueue eq;
    Event first([] {});
    eq.schedule(&first, 100);
    eq.step();
    int fired = 0;
    Event now_ev([&] { ++fired; });
    eq.schedule(&now_ev, eq.now());
    eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueueTest, ManyEventsStressOrdering)
{
    EventQueue eq;
    std::vector<std::unique_ptr<Event>> events;
    Tick last = 0;
    bool monotonic = true;
    for (int i = 0; i < 1000; ++i) {
        events.push_back(std::make_unique<Event>([&eq, &last,
                                                  &monotonic] {
            if (eq.now() < last)
                monotonic = false;
            last = eq.now();
        }));
        eq.schedule(events.back().get(),
                    static_cast<Tick>((i * 37) % 501));
    }
    eq.run();
    EXPECT_TRUE(monotonic);
    EXPECT_EQ(eq.dispatched(), 1000u);
}

} // namespace
} // namespace fbdp
