/**
 * @file
 * Unit tests of the generic LRU tag array used for the L1s and L2.
 */

#include <gtest/gtest.h>

#include "cache/cache_array.hh"

namespace fbdp {
namespace {

Addr
line(unsigned i)
{
    return static_cast<Addr>(i) * lineBytes;
}

TEST(CacheArrayTest, GeometryFromSizeAndWays)
{
    CacheArray c(64 * 1024, 2);
    EXPECT_EQ(c.numSets(), 512u);
    EXPECT_EQ(c.numWays(), 2u);
    EXPECT_EQ(c.sizeBytes(), 64u * 1024u);
}

TEST(CacheArrayTest, MissThenInstallThenHit)
{
    CacheArray c(64 * 1024, 2);
    EXPECT_EQ(c.lookup(line(1)), nullptr);
    c.install(line(1), false);
    EXPECT_NE(c.lookup(line(1)), nullptr);
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(CacheArrayTest, LruEvictsLeastRecentlyUsed)
{
    CacheArray c(2 * lineBytes, 2);  // one set, two ways
    c.install(line(0), false);
    c.install(line(1), false);
    c.lookup(line(0));  // make line 1 the LRU
    auto v = c.install(line(2), false);
    EXPECT_TRUE(v.valid);
    EXPECT_EQ(v.lineAddr, line(1));
    EXPECT_NE(c.lookup(line(0)), nullptr);
    EXPECT_EQ(c.lookup(line(1)), nullptr);
}

TEST(CacheArrayTest, DirtyVictimReported)
{
    CacheArray c(2 * lineBytes, 2);
    c.install(line(0), true);
    c.install(line(1), false);
    auto v = c.install(line(2), false);
    EXPECT_TRUE(v.valid);
    EXPECT_EQ(v.lineAddr, line(0));
    EXPECT_TRUE(v.dirty);
}

TEST(CacheArrayTest, ReinstallRefreshesAndOrsDirty)
{
    CacheArray c(2 * lineBytes, 2);
    c.install(line(0), false);
    c.install(line(1), false);
    auto v = c.install(line(0), true);  // refresh, set dirty
    EXPECT_FALSE(v.valid);
    auto v2 = c.install(line(2), false);  // evicts LRU == line 1
    EXPECT_EQ(v2.lineAddr, line(1));
    // Line 0 is still dirty.
    c.lookup(line(0));
    auto v3 = c.install(line(3), false);
    EXPECT_EQ(v3.lineAddr, line(2));
}

TEST(CacheArrayTest, LookupWithoutTouchKeepsLru)
{
    CacheArray c(2 * lineBytes, 2);
    c.install(line(0), false);
    c.install(line(1), false);
    c.lookup(line(0), /*touch=*/false);
    // LRU is still line 0.
    auto v = c.install(line(2), false);
    EXPECT_EQ(v.lineAddr, line(0));
}

TEST(CacheArrayTest, InvalidateFreesSlot)
{
    CacheArray c(2 * lineBytes, 2);
    c.install(line(0), false);
    c.install(line(1), false);
    EXPECT_TRUE(c.invalidate(line(0)));
    EXPECT_FALSE(c.invalidate(line(0)));
    auto v = c.install(line(2), false);
    EXPECT_FALSE(v.valid) << "free slot, no eviction";
}

TEST(CacheArrayTest, SetsIsolateAddresses)
{
    CacheArray c(4 * lineBytes, 1);  // 4 sets, direct-mapped
    c.install(line(0), false);
    c.install(line(1), false);
    c.install(line(4), false);  // conflicts with line 0
    EXPECT_EQ(c.lookup(line(0)), nullptr);
    EXPECT_NE(c.lookup(line(1)), nullptr);
    EXPECT_NE(c.lookup(line(4)), nullptr);
}

TEST(CacheArrayTest, StatsResetSeparateFromContents)
{
    CacheArray c(64 * 1024, 2);
    c.install(line(0), false);
    c.lookup(line(0));
    c.resetStats();
    EXPECT_EQ(c.hits(), 0u);
    EXPECT_NE(c.lookup(line(0)), nullptr);
    EXPECT_EQ(c.hits(), 1u);
}

TEST(CacheArrayTest, CapacityWorkloadNeverExceeds)
{
    CacheArray c(1024 * lineBytes, 4);
    unsigned installed = 0;
    unsigned evicted = 0;
    for (unsigned i = 0; i < 4096; ++i) {
        auto v = c.install(line(i * 7), false);
        ++installed;
        evicted += v.valid ? 1 : 0;
    }
    EXPECT_EQ(installed - evicted, 1024u) << "steady-state full";
}

} // namespace
} // namespace fbdp
