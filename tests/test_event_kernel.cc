/**
 * @file
 * Kernel-order tests: a randomized differential test driving the
 * indexed event queue and a naive reference model through the same
 * operation stream (asserting identical dispatch sequences), and a
 * whole-System determinism test (two identical runs, identical
 * metrics and kernel counters).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/event_queue.hh"
#include "system/config.hh"
#include "system/runner.hh"
#include "workload/mixes.hh"

namespace fbdp {
namespace {

/**
 * Reference dispatch-order model: a flat list of live entries, total
 * order (when, priority, seq) recomputed by linear scan at every
 * step.  Deliberately nothing like a heap, so a heap bug cannot be
 * mirrored here.  Sequence numbers advance on every schedule() —
 * including reschedules — exactly like the real queue.
 */
class RefModel
{
  public:
    void
    schedule(int id, Tick when, int prio)
    {
        deschedule(id);
        live.push_back(Entry{when, nextSeq++, id, prio});
    }

    void
    deschedule(int id)
    {
        for (std::size_t i = 0; i < live.size(); ++i) {
            if (live[i].id == id) {
                live.erase(live.begin()
                           + static_cast<std::ptrdiff_t>(i));
                return;
            }
        }
    }

    bool scheduled(int id) const
    {
        for (const Entry &e : live) {
            if (e.id == id)
                return true;
        }
        return false;
    }

    /** Remove and return the next entry in dispatch order. */
    bool
    step(int &id, Tick &when)
    {
        if (live.empty())
            return false;
        std::size_t best = 0;
        for (std::size_t i = 1; i < live.size(); ++i) {
            if (before(live[i], live[best]))
                best = i;
        }
        id = live[best].id;
        when = live[best].when;
        curTick = live[best].when;
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(best));
        return true;
    }

    Tick now() const { return curTick; }
    bool empty() const { return live.empty(); }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        int id;
        int prio;
    };

    static bool
    before(const Entry &a, const Entry &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        if (a.prio != b.prio)
            return a.prio < b.prio;
        return a.seq < b.seq;
    }

    std::vector<Entry> live;
    Tick curTick = 0;
    std::uint64_t nextSeq = 0;
};

/** Deterministic xorshift64* driver RNG (independent of the model). */
struct TestRng
{
    std::uint64_t s;

    std::uint64_t
    next()
    {
        s ^= s >> 12;
        s ^= s << 25;
        s ^= s >> 27;
        return s * 0x2545F4914F6CDD1Dull;
    }

    std::uint64_t pick(std::uint64_t n) { return next() % n; }
};

TEST(EventKernelDifferential, RandomOpsMatchReferenceOrder)
{
    constexpr int population = 48;
    constexpr int ops = 100'000;
    static const int prios[] = {Event::prioData, Event::prioDefault,
                                Event::prioCpu};

    EventQueue eq;
    RefModel ref;
    TestRng rng{0x9E3779B97F4A7C15ull};

    // Each dispatch appends (id, tick) to its log; the two logs must
    // agree element for element.
    std::vector<std::pair<int, Tick>> logQ, logR;

    std::vector<std::unique_ptr<Event>> evs;
    std::vector<int> prioOf(population);
    for (int i = 0; i < population; ++i) {
        prioOf[static_cast<std::size_t>(i)] =
            prios[static_cast<std::size_t>(i) % 3];
        evs.push_back(std::make_unique<Event>(
            [i, &logQ, &eq] { logQ.emplace_back(i, eq.now()); },
            prioOf[static_cast<std::size_t>(i)]));
    }

    auto stepBoth = [&] {
        const bool hadQ = eq.step();
        int id = -1;
        Tick when = 0;
        const bool hadR = ref.step(id, when);
        ASSERT_EQ(hadQ, hadR);
        if (hadR)
            logR.emplace_back(id, when);
    };

    for (int op = 0; op < ops; ++op) {
        const std::uint64_t kind = rng.pick(100);
        if (kind < 60) {
            const int id = static_cast<int>(rng.pick(population));
            // Same-tick schedules are common in the simulator; make
            // them common here too.
            const Tick when = eq.now() + rng.pick(500);
            eq.schedule(evs[static_cast<std::size_t>(id)].get(),
                        when);
            ref.schedule(id, when,
                         prioOf[static_cast<std::size_t>(id)]);
        } else if (kind < 72) {
            const int id = static_cast<int>(rng.pick(population));
            ASSERT_EQ(evs[static_cast<std::size_t>(id)]->scheduled(),
                      ref.scheduled(id));
            eq.deschedule(evs[static_cast<std::size_t>(id)].get());
            ref.deschedule(id);
        } else {
            stepBoth();
            if (HasFatalFailure())
                return;
        }
        ASSERT_EQ(eq.empty(), ref.empty());
    }

    // Drain both queues completely.
    while (!eq.empty() || !ref.empty()) {
        stepBoth();
        if (HasFatalFailure())
            return;
    }

    ASSERT_EQ(logQ.size(), logR.size());
    for (std::size_t i = 0; i < logQ.size(); ++i) {
        EXPECT_EQ(logQ[i], logR[i]) << "dispatch #" << i
                                    << " diverged";
    }
    EXPECT_EQ(eq.now(), ref.now());
    EXPECT_GT(logQ.size(), 10'000u) << "driver exercised too little";
}

TEST(EventKernelDeterminism, TwoIdenticalRunsIdenticalMetrics)
{
    SystemConfig cfg = SystemConfig::fbdAp();
    cfg.measureInsts = 8'000;
    cfg.warmupInsts = 2'000;
    const WorkloadMix &mix = mixByName("2C-1");

    const RunResult a = runMix(cfg, mix);
    const RunResult b = runMix(cfg, mix);

    ASSERT_EQ(a.ipc.size(), b.ipc.size());
    for (std::size_t i = 0; i < a.ipc.size(); ++i) {
        EXPECT_EQ(a.ipc[i], b.ipc[i]) << "core " << i;
        EXPECT_EQ(a.insts[i], b.insts[i]) << "core " << i;
    }
    EXPECT_EQ(a.measuredTicks, b.measuredTicks);
    EXPECT_EQ(a.reads, b.reads);
    EXPECT_EQ(a.writes, b.writes);
    EXPECT_EQ(a.ambHits, b.ambHits);
    EXPECT_EQ(a.avgReadLatencyNs, b.avgReadLatencyNs);
    EXPECT_EQ(a.bandwidthGBs, b.bandwidthGBs);
    EXPECT_EQ(a.ops.actPre, b.ops.actPre);
    EXPECT_EQ(a.ops.cas(), b.ops.cas());
    EXPECT_EQ(a.ops.refresh, b.ops.refresh);
    EXPECT_EQ(a.l2Hits, b.l2Hits);
    EXPECT_EQ(a.l2Misses, b.l2Misses);
    EXPECT_EQ(a.swPrefetchesSent, b.swPrefetchesSent);
    EXPECT_EQ(a.runInsts, b.runInsts);

    // The kernel profile must be tick-deterministic too (host time
    // excluded, of course).
    EXPECT_EQ(a.kernel.eventsDispatched, b.kernel.eventsDispatched);
    EXPECT_EQ(a.kernel.schedules, b.kernel.schedules);
    EXPECT_EQ(a.kernel.reschedules, b.kernel.reschedules);
    EXPECT_EQ(a.kernel.deschedules, b.kernel.deschedules);
    EXPECT_EQ(a.kernel.peakQueueDepth, b.kernel.peakQueueDepth);
}

} // namespace
} // namespace fbdp
