/**
 * @file
 * Reporting helper tests.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "system/metrics.hh"

namespace fbdp {
namespace {

TEST(MetricsTest, FmtD)
{
    EXPECT_EQ(fmtD(1.23456), "1.235");
    EXPECT_EQ(fmtD(1.0, 1), "1.0");
    EXPECT_EQ(fmtD(-0.5, 2), "-0.50");
}

TEST(MetricsTest, FmtPct)
{
    EXPECT_EQ(fmtPct(0.16), "16.0%");
    EXPECT_EQ(fmtPct(-0.015), "-1.5%");
    EXPECT_EQ(fmtPct(1.0, 0), "100%");
}

TEST(MetricsTest, MeanOf)
{
    EXPECT_DOUBLE_EQ(meanOf({}), 0.0);
    EXPECT_DOUBLE_EQ(meanOf({2.0}), 2.0);
    EXPECT_DOUBLE_EQ(meanOf({1.0, 2.0, 3.0}), 2.0);
}

TEST(MetricsTest, TextTableAlignsColumns)
{
    TextTable t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"longer-name", "2.345"});
    std::ostringstream os;
    t.print(os);
    const std::string s = os.str();
    // Header, separator, two rows.
    EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
    // The separator row is all dashes.
    const auto first_nl = s.find('\n');
    const auto second_nl = s.find('\n', first_nl + 1);
    const std::string sep =
        s.substr(first_nl + 1, second_nl - first_nl - 1);
    EXPECT_EQ(sep.find_first_not_of('-'), std::string::npos);
    // Both data rows start at column 0 with their first cell.
    EXPECT_NE(s.find("longer-name  2.345"), std::string::npos);
}

TEST(MetricsTest, TextTableRejectsRaggedRows)
{
    TextTable t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "row width");
}

TEST(MetricsTest, RowCount)
{
    TextTable t({"x"});
    EXPECT_EQ(t.rows(), 0u);
    t.addRow({"1"});
    t.addRow({"2"});
    EXPECT_EQ(t.rows(), 2u);
}

TEST(MetricsTest, JsonEscapePassesPlainText)
{
    EXPECT_EQ(jsonEscape("hello world_42"), "hello world_42");
    EXPECT_EQ(jsonEscape(""), "");
}

TEST(MetricsTest, JsonEscapeQuotesAndBackslashes)
{
    EXPECT_EQ(jsonEscape("say \"hi\""), "say \\\"hi\\\"");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
}

TEST(MetricsTest, JsonEscapeNamedControlCharacters)
{
    EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
    EXPECT_EQ(jsonEscape("a\rb"), "a\\rb");
    EXPECT_EQ(jsonEscape("a\tb"), "a\\tb");
    EXPECT_EQ(jsonEscape("a\bb"), "a\\bb");
    EXPECT_EQ(jsonEscape("a\fb"), "a\\fb");
}

TEST(MetricsTest, JsonEscapeArbitraryControlCharacters)
{
    // Control characters without a short escape must become \u00XX —
    // and must not sign-extend into \uffXX on platforms where char is
    // signed.
    EXPECT_EQ(jsonEscape(std::string("a\x01z")), "a\\u0001z");
    EXPECT_EQ(jsonEscape(std::string("a\x1fz")), "a\\u001fz");
    EXPECT_EQ(jsonEscape(std::string(1, '\x7f')), "\x7f");
    // High-bit bytes (UTF-8 continuation) pass through untouched.
    const std::string utf8 = "caf\xc3\xa9";
    EXPECT_EQ(jsonEscape(utf8), utf8);
    // Embedded NUL is a control character, not a terminator.
    std::string withNul("a");
    withNul.push_back('\0');
    withNul.push_back('b');
    EXPECT_EQ(jsonEscape(withNul), "a\\u0000b");
}

} // namespace
} // namespace fbdp
