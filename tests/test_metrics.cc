/**
 * @file
 * Reporting helper tests.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "system/metrics.hh"

namespace fbdp {
namespace {

TEST(MetricsTest, FmtD)
{
    EXPECT_EQ(fmtD(1.23456), "1.235");
    EXPECT_EQ(fmtD(1.0, 1), "1.0");
    EXPECT_EQ(fmtD(-0.5, 2), "-0.50");
}

TEST(MetricsTest, FmtPct)
{
    EXPECT_EQ(fmtPct(0.16), "16.0%");
    EXPECT_EQ(fmtPct(-0.015), "-1.5%");
    EXPECT_EQ(fmtPct(1.0, 0), "100%");
}

TEST(MetricsTest, MeanOf)
{
    EXPECT_DOUBLE_EQ(meanOf({}), 0.0);
    EXPECT_DOUBLE_EQ(meanOf({2.0}), 2.0);
    EXPECT_DOUBLE_EQ(meanOf({1.0, 2.0, 3.0}), 2.0);
}

TEST(MetricsTest, TextTableAlignsColumns)
{
    TextTable t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"longer-name", "2.345"});
    std::ostringstream os;
    t.print(os);
    const std::string s = os.str();
    // Header, separator, two rows.
    EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
    // The separator row is all dashes.
    const auto first_nl = s.find('\n');
    const auto second_nl = s.find('\n', first_nl + 1);
    const std::string sep =
        s.substr(first_nl + 1, second_nl - first_nl - 1);
    EXPECT_EQ(sep.find_first_not_of('-'), std::string::npos);
    // Both data rows start at column 0 with their first cell.
    EXPECT_NE(s.find("longer-name  2.345"), std::string::npos);
}

TEST(MetricsTest, TextTableRejectsRaggedRows)
{
    TextTable t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "row width");
}

TEST(MetricsTest, RowCount)
{
    TextTable t({"x"});
    EXPECT_EQ(t.rows(), 0u);
    t.addRow({"1"});
    t.addRow({"2"});
    EXPECT_EQ(t.rows(), 2u);
}

} // namespace
} // namespace fbdp
