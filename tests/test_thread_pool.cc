/**
 * @file
 * Worker-pool tests: result ordering via futures, exception
 * propagation, concurrency, and clean shutdown under load.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/thread_pool.hh"

namespace fbdp {
namespace {

TEST(ThreadPoolTest, RunsEveryTask)
{
    ThreadPool pool(4);
    std::atomic<int> n{0};
    std::vector<std::future<void>> futs;
    for (int i = 0; i < 100; ++i)
        futs.push_back(pool.submit([&n] { ++n; }));
    for (auto &f : futs)
        f.get();
    EXPECT_EQ(n.load(), 100);
}

TEST(ThreadPoolTest, FuturesPreserveSubmissionOrder)
{
    // Results come back through the future of each submission, so
    // collecting futures in order yields submission order no matter
    // which worker finished first.
    ThreadPool pool(4);
    std::vector<std::future<int>> futs;
    for (int i = 0; i < 64; ++i) {
        futs.push_back(pool.submit([i] {
            if (i % 7 == 0)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(2));
            return i * i;
        }));
    }
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(futs[i].get(), i * i);
}

TEST(ThreadPoolTest, ExceptionsPropagateThroughFutures)
{
    ThreadPool pool(2);
    auto ok = pool.submit([] { return 7; });
    auto bad = pool.submit([]() -> int {
        throw std::runtime_error("task failed");
    });
    auto after = pool.submit([] { return 8; });
    EXPECT_EQ(ok.get(), 7);
    EXPECT_THROW(bad.get(), std::runtime_error);
    // The pool survives a throwing task.
    EXPECT_EQ(after.get(), 8);
}

TEST(ThreadPoolTest, ActuallyRunsConcurrently)
{
    // Two tasks that each wait for the other can only finish if two
    // workers run them at the same time.
    ThreadPool pool(2);
    std::atomic<int> arrived{0};
    auto rendezvous = [&arrived] {
        ++arrived;
        for (int spin = 0; arrived.load() < 2 && spin < 10'000;
             ++spin)
            std::this_thread::sleep_for(
                std::chrono::microseconds(100));
        return arrived.load();
    };
    auto a = pool.submit(rendezvous);
    auto b = pool.submit(rendezvous);
    EXPECT_EQ(a.get(), 2);
    EXPECT_EQ(b.get(), 2);
}

TEST(ThreadPoolTest, ClampsToAtLeastOneWorker)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1u);
    auto f = pool.submit([] { return 42; });
    EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, DestructorDrainsQueue)
{
    std::atomic<int> n{0};
    {
        ThreadPool pool(1);
        for (int i = 0; i < 32; ++i)
            pool.submit([&n] {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(200));
                ++n;
            });
        // No get(): the destructor must still run everything.
    }
    EXPECT_EQ(n.load(), 32);
}

} // namespace
} // namespace fbdp
