/**
 * @file
 * Worker-pool tests: result ordering via futures, exception
 * propagation, concurrency, and clean shutdown under load — plus the
 * SpinBarrier round-synchronisation primitive the sharded event
 * kernel builds its frame barriers on.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/thread_pool.hh"

namespace fbdp {
namespace {

TEST(ThreadPoolTest, RunsEveryTask)
{
    ThreadPool pool(4);
    std::atomic<int> n{0};
    std::vector<std::future<void>> futs;
    for (int i = 0; i < 100; ++i)
        futs.push_back(pool.submit([&n] { ++n; }));
    for (auto &f : futs)
        f.get();
    EXPECT_EQ(n.load(), 100);
}

TEST(ThreadPoolTest, FuturesPreserveSubmissionOrder)
{
    // Results come back through the future of each submission, so
    // collecting futures in order yields submission order no matter
    // which worker finished first.
    ThreadPool pool(4);
    std::vector<std::future<int>> futs;
    for (int i = 0; i < 64; ++i) {
        futs.push_back(pool.submit([i] {
            if (i % 7 == 0)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(2));
            return i * i;
        }));
    }
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(futs[i].get(), i * i);
}

TEST(ThreadPoolTest, ExceptionsPropagateThroughFutures)
{
    ThreadPool pool(2);
    auto ok = pool.submit([] { return 7; });
    auto bad = pool.submit([]() -> int {
        throw std::runtime_error("task failed");
    });
    auto after = pool.submit([] { return 8; });
    EXPECT_EQ(ok.get(), 7);
    EXPECT_THROW(bad.get(), std::runtime_error);
    // The pool survives a throwing task.
    EXPECT_EQ(after.get(), 8);
}

TEST(ThreadPoolTest, ActuallyRunsConcurrently)
{
    // Two tasks that each wait for the other can only finish if two
    // workers run them at the same time.
    ThreadPool pool(2);
    std::atomic<int> arrived{0};
    auto rendezvous = [&arrived] {
        ++arrived;
        for (int spin = 0; arrived.load() < 2 && spin < 10'000;
             ++spin)
            std::this_thread::sleep_for(
                std::chrono::microseconds(100));
        return arrived.load();
    };
    auto a = pool.submit(rendezvous);
    auto b = pool.submit(rendezvous);
    EXPECT_EQ(a.get(), 2);
    EXPECT_EQ(b.get(), 2);
}

TEST(ThreadPoolTest, ClampsToAtLeastOneWorker)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1u);
    auto f = pool.submit([] { return 42; });
    EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, DestructorDrainsQueue)
{
    std::atomic<int> n{0};
    {
        ThreadPool pool(1);
        for (int i = 0; i < 32; ++i)
            pool.submit([&n] {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(200));
                ++n;
            });
        // No get(): the destructor must still run everything.
    }
    EXPECT_EQ(n.load(), 32);
}

TEST(SpinBarrierTest, SingleParticipantNeverBlocks)
{
    SpinBarrier b(1);
    int hook_runs = 0;
    for (int i = 0; i < 5; ++i)
        b.arriveAndWait([&hook_runs] { ++hook_runs; });
    b.arriveAndWait(); // default no-op hook
    EXPECT_EQ(hook_runs, 5);
    EXPECT_EQ(b.rounds(), 6u);
    EXPECT_EQ(b.participants(), 1u);
}

TEST(SpinBarrierTest, ClampsToAtLeastOneParticipant)
{
    SpinBarrier b(0);
    EXPECT_EQ(b.participants(), 1u);
    b.arriveAndWait();
    EXPECT_EQ(b.rounds(), 1u);
}

TEST(SpinBarrierTest, GenerationsStaySynchronisedAcrossManyRounds)
{
    // The kernel reuses one barrier for thousands of frame rounds;
    // the generation counter must keep all lanes in lock-step with no
    // round stealing (a lane racing ahead would observe a stale
    // counter value below its own round index).
    constexpr unsigned kLanes = 4;
    constexpr int kRounds = 2000;
    SpinBarrier barrier(kLanes);
    std::atomic<int> counter{0};
    std::atomic<bool> torn{false};

    ThreadPool pool(kLanes - 1);
    std::vector<std::future<void>> futs;
    auto lane = [&] {
        for (int r = 0; r < kRounds; ++r) {
            ++counter;
            barrier.arriveAndWait();
            // After the barrier every lane's increment for round r is
            // visible: the counter is exactly kLanes * (r + 1).
            if (counter.load() != static_cast<int>(kLanes) * (r + 1))
                torn = true;
            barrier.arriveAndWait();
        }
    };
    for (unsigned i = 1; i < kLanes; ++i)
        futs.push_back(pool.submit(lane));
    lane();
    for (auto &f : futs)
        f.get();

    EXPECT_FALSE(torn.load());
    EXPECT_EQ(barrier.rounds(), 2u * kRounds);
}

TEST(SpinBarrierTest, HookRunsExactlyOncePerRoundWhileOthersWait)
{
    // The last arriver runs the hook alone, before anyone is
    // released — the kernel relies on this to mutate shared
    // end-of-round state (stop flag, round counter) without locks.
    constexpr unsigned kLanes = 3;
    constexpr int kRounds = 200;
    SpinBarrier barrier(kLanes);
    std::atomic<int> in_hook{0};
    std::atomic<int> hook_runs{0};
    std::atomic<bool> overlapped{false};

    ThreadPool pool(kLanes - 1);
    std::vector<std::future<void>> futs;
    auto lane = [&] {
        for (int r = 0; r < kRounds; ++r) {
            barrier.arriveAndWait([&] {
                if (in_hook.fetch_add(1) != 0)
                    overlapped = true;
                ++hook_runs;
                --in_hook;
            });
        }
    };
    for (unsigned i = 1; i < kLanes; ++i)
        futs.push_back(pool.submit(lane));
    lane();
    for (auto &f : futs)
        f.get();

    EXPECT_FALSE(overlapped.load());
    EXPECT_EQ(hook_runs.load(), kRounds);
}

TEST(SpinBarrierTest, HookExceptionReleasesWaitersThenRethrows)
{
    // A throwing hook must not deadlock the other lanes: the barrier
    // opens first, then the exception surfaces on the last arriver.
    constexpr unsigned kLanes = 2;
    SpinBarrier barrier(kLanes);
    ThreadPool pool(1);

    auto waiter = pool.submit([&] {
        barrier.arriveAndWait(); // plain waiter, must be released
        return 1;
    });
    // Give the worker a head start so this thread is the last
    // arriver and therefore the one that runs the throwing hook.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    bool threw = false;
    try {
        barrier.arriveAndWait(
            [] { throw std::runtime_error("hook failed"); });
    } catch (const std::runtime_error &) {
        threw = true;
    }
    EXPECT_EQ(waiter.get(), 1);
    // Whichever thread arrived last saw the exception; if the worker
    // happened to be last, it ran the no-hook path and nobody threw.
    // With the sleep above that is vanishingly unlikely, but either
    // way the barrier must have completed the round.
    EXPECT_EQ(barrier.rounds(), 1u);
    (void)threw;
}

} // namespace
} // namespace fbdp
