/**
 * @file
 * Batch sweep driver tests.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "system/sweep.hh"

namespace fbdp {
namespace {

SystemConfig
quick(SystemConfig c)
{
    c.warmupInsts = 10'000;
    c.measureInsts = 40'000;
    return c;
}

TEST(SweepTest, RunsCrossProduct)
{
    Sweep s;
    s.addConfig("ddr2", quick(SystemConfig::ddr2()))
        .addConfig("fbd", quick(SystemConfig::fbdBase()))
        .addMix(mixByName("1C-gap"))
        .addMix(mixByName("1C-vpr"));
    EXPECT_EQ(s.cells(), 4u);
    auto rows = s.run();
    ASSERT_EQ(rows.size(), 4u);
    EXPECT_EQ(rows[0].config, "ddr2");
    EXPECT_EQ(rows[0].mix, "1C-gap");
    EXPECT_EQ(rows[3].config, "fbd");
    EXPECT_EQ(rows[3].mix, "1C-vpr");
    for (const auto &r : rows)
        EXPECT_GT(r.result.ipcSum(), 0.0);
}

TEST(SweepTest, RepeatsVarySeed)
{
    Sweep s;
    s.addConfig("fbd", quick(SystemConfig::fbdBase()))
        .addMix(mixByName("1C-gap"))
        .repeats(2);
    auto rows = s.run();
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].seed, 1u);
    EXPECT_EQ(rows[1].seed, 2u);
    // Different seeds produce (slightly) different outcomes.
    EXPECT_NE(rows[0].result.reads, rows[1].result.reads);
}

TEST(SweepTest, ConfigSeedIsRepeatBase)
{
    // SystemConfig::seed offsets the repeat range, so two sweeps can
    // use disjoint seed ranges.
    SystemConfig c = quick(SystemConfig::fbdBase());
    c.seed = 100;
    Sweep s;
    s.addConfig("fbd", c).addMix(mixByName("1C-gap")).repeats(3);
    auto rows = s.run();
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0].seed, 100u);
    EXPECT_EQ(rows[1].seed, 101u);
    EXPECT_EQ(rows[2].seed, 102u);
}

TEST(SweepTest, MixGroupAddsAllMixes)
{
    Sweep s;
    s.addConfig("fbd", quick(SystemConfig::fbdBase()))
        .addMixGroup(2);
    EXPECT_EQ(s.cells(), 6u);
}

TEST(SweepTest, CsvOutputWellFormed)
{
    Sweep s;
    s.addConfig("ap", quick(SystemConfig::fbdAp()))
        .addMix(mixByName("1C-swim"));
    std::ostringstream os;
    s.runCsv(os);
    std::istringstream in(os.str());
    std::string header, row, extra;
    ASSERT_TRUE(std::getline(in, header));
    ASSERT_TRUE(std::getline(in, row));
    EXPECT_FALSE(std::getline(in, extra));
    EXPECT_EQ(header, Sweep::csvHeader());
    // Same number of commas in header and row.
    auto commas = [](const std::string &x) {
        return std::count(x.begin(), x.end(), ',');
    };
    EXPECT_EQ(commas(header), commas(row));
    EXPECT_EQ(row.rfind("ap,1C-swim,1,", 0), 0u);
}

TEST(SweepTest, CallbackSeesEveryRow)
{
    Sweep s;
    int n = 0;
    s.addConfig("fbd", quick(SystemConfig::fbdBase()))
        .addMix(mixByName("1C-gap"))
        .addMix(mixByName("1C-vortex"))
        .onRow([&n](const SweepRow &) { ++n; });
    s.run();
    EXPECT_EQ(n, 2);
}

TEST(SweepTest, ParallelMatchesSerialByteForByte)
{
    // The acceptance bar for the parallel engine: jobs(4) must be
    // indistinguishable from jobs(1) in both CSV and JSON output.
    auto build = [](unsigned jobs) {
        Sweep s;
        s.addConfig("fbd", quick(SystemConfig::fbdBase()))
            .addConfig("ap", quick(SystemConfig::fbdAp()))
            .addMix(mixByName("1C-gap"))
            .addMix(mixByName("1C-swim"))
            .jobs(jobs);
        return s;
    };

    std::ostringstream serialCsv, parallelCsv;
    build(1).runCsv(serialCsv);
    build(4).runCsv(parallelCsv);
    EXPECT_EQ(serialCsv.str(), parallelCsv.str());

    std::ostringstream serialJson, parallelJson;
    build(1).runJson(serialJson);
    build(4).runJson(parallelJson);
    EXPECT_EQ(serialJson.str(), parallelJson.str());
}

TEST(SweepTest, ParallelCallbackOrderIsRowOrder)
{
    Sweep s;
    s.addConfig("fbd", quick(SystemConfig::fbdBase()))
        .addConfig("ap", quick(SystemConfig::fbdAp()))
        .addMix(mixByName("1C-gap"))
        .addMix(mixByName("1C-vpr"))
        .jobs(4);
    std::vector<std::string> order;
    s.onRow([&order](const SweepRow &r) {
        order.push_back(r.config + "/" + r.mix);
    });
    s.run();
    const std::vector<std::string> expect{
        "fbd/1C-gap", "fbd/1C-vpr", "ap/1C-gap", "ap/1C-vpr"};
    EXPECT_EQ(order, expect);
}

TEST(SweepTest, JobsResolveFromEnvironment)
{
    Sweep s;
    s.addConfig("fbd", quick(SystemConfig::fbdBase()))
        .addMixGroup(1);
    setenv("FBDP_JOBS", "3", 1);
    EXPECT_EQ(s.effectiveJobs(), 3u);
    unsetenv("FBDP_JOBS");
    EXPECT_EQ(s.effectiveJobs(), 1u); // serial fallback
    s.jobs(64);
    EXPECT_EQ(s.effectiveJobs(), 12u); // clamped to cell count
}

TEST(SweepTest, SchemaMatchesLegacyCsvShape)
{
    const ResultSchema &schema = Sweep::schema();
    EXPECT_EQ(schema.csvHeader(), Sweep::csvHeader());
    ASSERT_FALSE(schema.columns().empty());
    EXPECT_EQ(schema.columns().front().name, "config");
    EXPECT_EQ(schema.columns().back().name, "sim_us");

    SweepRow row;
    row.config = "cfg";
    row.mix = "mix";
    row.seed = 9;
    row.result.ipc = {1.5, 0.5};
    row.result.reads = 1234;
    EXPECT_EQ(Sweep::csvRow(row), schema.csvRow(row));
    EXPECT_EQ(row.result.ipcSum(), 2.0);
    // Typed accessors see the same values the CSV prints.
    EXPECT_EQ(schema.columns()[0].get(row).text, "cfg");
    EXPECT_EQ(schema.columns()[2].get(row).count, 9u);
}

TEST(SweepTest, JsonRowIsWellFormed)
{
    SweepRow row;
    row.config = "a\"b"; // needs escaping
    row.mix = "1C-x";
    row.seed = 2;
    const std::string j = Sweep::schema().jsonRow(row);
    EXPECT_NE(j.find("\"config\": \"a\\\"b\""), std::string::npos);
    EXPECT_NE(j.find("\"seed\": 2"), std::string::npos);
    EXPECT_EQ(j.front(), '{');
    EXPECT_EQ(j.back(), '}');
}

TEST(SweepTest, EmptySweepIsFatal)
{
    Sweep s;
    EXPECT_DEATH(s.run(), "no configurations");
    s.addConfig("fbd", quick(SystemConfig::fbdBase()));
    EXPECT_DEATH(s.run(), "no workloads");
}

} // namespace
} // namespace fbdp
