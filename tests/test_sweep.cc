/**
 * @file
 * Batch sweep driver tests.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "system/sweep.hh"

namespace fbdp {
namespace {

SystemConfig
quick(SystemConfig c)
{
    c.warmupInsts = 10'000;
    c.measureInsts = 40'000;
    return c;
}

TEST(SweepTest, RunsCrossProduct)
{
    Sweep s;
    s.addConfig("ddr2", quick(SystemConfig::ddr2()))
        .addConfig("fbd", quick(SystemConfig::fbdBase()))
        .addMix(mixByName("1C-gap"))
        .addMix(mixByName("1C-vpr"));
    EXPECT_EQ(s.cells(), 4u);
    auto rows = s.run();
    ASSERT_EQ(rows.size(), 4u);
    EXPECT_EQ(rows[0].config, "ddr2");
    EXPECT_EQ(rows[0].mix, "1C-gap");
    EXPECT_EQ(rows[3].config, "fbd");
    EXPECT_EQ(rows[3].mix, "1C-vpr");
    for (const auto &r : rows)
        EXPECT_GT(r.result.ipcSum(), 0.0);
}

TEST(SweepTest, RepeatsVarySeed)
{
    Sweep s;
    s.addConfig("fbd", quick(SystemConfig::fbdBase()))
        .addMix(mixByName("1C-gap"))
        .repeats(2);
    auto rows = s.run();
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].seed, 1u);
    EXPECT_EQ(rows[1].seed, 2u);
    // Different seeds produce (slightly) different outcomes.
    EXPECT_NE(rows[0].result.reads, rows[1].result.reads);
}

TEST(SweepTest, MixGroupAddsAllMixes)
{
    Sweep s;
    s.addConfig("fbd", quick(SystemConfig::fbdBase()))
        .addMixGroup(2);
    EXPECT_EQ(s.cells(), 6u);
}

TEST(SweepTest, CsvOutputWellFormed)
{
    Sweep s;
    s.addConfig("ap", quick(SystemConfig::fbdAp()))
        .addMix(mixByName("1C-swim"));
    std::ostringstream os;
    s.runCsv(os);
    std::istringstream in(os.str());
    std::string header, row, extra;
    ASSERT_TRUE(std::getline(in, header));
    ASSERT_TRUE(std::getline(in, row));
    EXPECT_FALSE(std::getline(in, extra));
    EXPECT_EQ(header, Sweep::csvHeader());
    // Same number of commas in header and row.
    auto commas = [](const std::string &x) {
        return std::count(x.begin(), x.end(), ',');
    };
    EXPECT_EQ(commas(header), commas(row));
    EXPECT_EQ(row.rfind("ap,1C-swim,1,", 0), 0u);
}

TEST(SweepTest, CallbackSeesEveryRow)
{
    Sweep s;
    int n = 0;
    s.addConfig("fbd", quick(SystemConfig::fbdBase()))
        .addMix(mixByName("1C-gap"))
        .addMix(mixByName("1C-vortex"))
        .onRow([&n](const SweepRow &) { ++n; });
    s.run();
    EXPECT_EQ(n, 2);
}

TEST(SweepTest, EmptySweepIsFatal)
{
    Sweep s;
    EXPECT_DEATH(s.run(), "no configurations");
    s.addConfig("fbd", quick(SystemConfig::fbdBase()));
    EXPECT_DEATH(s.run(), "no workloads");
}

} // namespace
} // namespace fbdp
