/**
 * @file
 * Controller-level prefetching tests (the Section 6 comparison
 * class): hit latency, channel-bandwidth consumption, invalidation.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mc/address_map.hh"
#include "mc/controller.hh"
#include "sim/event_queue.hh"

namespace fbdp {
namespace {

class McPrefetchTest : public ::testing::Test
{
  protected:
    McPrefetchTest() : map(mapCfg())
    {
    }

    static AddressMapConfig
    mapCfg()
    {
        AddressMapConfig mc;
        mc.channels = 1;
        mc.dimmsPerChannel = 4;
        mc.banksPerDimm = 4;
        mc.regionLines = 4;
        mc.scheme = Interleave::MultiCacheline;
        return mc;
    }

    ControllerConfig
    mcpCfg()
    {
        ControllerConfig c;
        c.fbd = true;
        c.mcPrefetch = true;
        c.regionLines = 4;
        return c;
    }

    TransPtr
    makeRead(Addr addr, std::vector<Tick> *done)
    {
        auto t = makeTransaction();
        t->cmd = MemCmd::Read;
        t->lineAddr = lineAlign(addr);
        t->coord = map.map(addr);
        t->created = eq.now();
        t->onComplete = [done](Tick w) { done->push_back(w); };
        return t;
    }

    EventQueue eq;
    AddressMap map;
};

TEST_F(McPrefetchTest, FirstReadGroupFetchesOverChannel)
{
    MemController mc("mc", &eq, mcpCfg());
    std::vector<Tick> done;
    mc.push(makeRead(0, &done));
    eq.run();
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0], nsToTicks(63)) << "demanded line unchanged";
    // All four lines crossed the channel: 4 x 64 bytes.
    EXPECT_EQ(mc.channelBytes(), 4u * lineBytes);
    EXPECT_EQ(mc.dramOps().rdCas, 4u);
}

TEST_F(McPrefetchTest, HitServedFasterThanAmbHit)
{
    MemController mc("mc", &eq, mcpCfg());
    std::vector<Tick> done;
    mc.push(makeRead(0, &done));
    eq.run();
    const Tick t0 = eq.now();
    mc.push(makeRead(lineBytes, &done));
    eq.run();
    ASSERT_EQ(done.size(), 2u);
    // The data already sits at the controller: faster than the 33 ns
    // AMB hit; the exact value depends only on controller overhead.
    EXPECT_LT(done[1] - t0, nsToTicks(33));
    EXPECT_EQ(mc.mcHits(), 1u);
    EXPECT_EQ(mc.ambHits(), 0u);
}

TEST_F(McPrefetchTest, HitConsumesNoChannelBandwidth)
{
    MemController mc("mc", &eq, mcpCfg());
    std::vector<Tick> done;
    mc.push(makeRead(0, &done));
    eq.run();
    const std::uint64_t bytes_after_fetch = mc.channelBytes();
    mc.push(makeRead(lineBytes, &done));
    eq.run();
    // A buffer hit moves no further data (it already crossed).
    EXPECT_EQ(mc.channelBytes(), bytes_after_fetch + lineBytes);
}

TEST_F(McPrefetchTest, WritesInvalidateBuffer)
{
    MemController mc("mc", &eq, mcpCfg());
    std::vector<Tick> done;
    mc.push(makeRead(0, &done));
    eq.run();
    auto w = makeTransaction();
    w->cmd = MemCmd::Write;
    w->lineAddr = lineBytes;
    w->coord = map.map(lineBytes);
    mc.push(std::move(w));
    eq.run();
    EXPECT_EQ(mc.mcBuffer()->writeInvalidations(), 1u);
    const Tick t0 = eq.now();
    mc.push(makeRead(lineBytes, &done));
    eq.run();
    EXPECT_EQ(mc.mcHits(), 0u);
    EXPECT_GT(done.back() - t0, nsToTicks(33));
}

TEST_F(McPrefetchTest, CoverageMatchesAmbPathOnSweep)
{
    MemController mc("mc", &eq, mcpCfg());
    std::vector<Tick> done;
    for (unsigned i = 0; i < 128; ++i) {
        mc.push(makeRead(static_cast<Addr>(i) * lineBytes, &done));
        eq.run();
    }
    EXPECT_DOUBLE_EQ(mc.mcBuffer()->coverage(), 0.75);
    EXPECT_DOUBLE_EQ(mc.mcBuffer()->efficiency(), 1.0);
}

TEST_F(McPrefetchTest, ExclusiveWithAmbPrefetching)
{
    ControllerConfig c = mcpCfg();
    c.apEnable = true;
    EXPECT_DEATH(MemController mc("mc", &eq, c), "exclusive");
}

TEST_F(McPrefetchTest, SequentialSweepBandwidthQuadruples)
{
    // Compared against the AMB path, the MC path moves K x the data
    // over the channel on a pure streaming sweep.
    MemController mc("mc", &eq, mcpCfg());
    std::vector<Tick> done;
    for (unsigned i = 0; i < 64; ++i) {
        mc.push(makeRead(static_cast<Addr>(i) * lineBytes, &done));
        eq.run();
    }
    EXPECT_EQ(mc.channelBytes(), 64u * lineBytes
              + 48u * lineBytes)
        << "16 region fetches x 3 extra lines crossed the channel";
}

} // namespace
} // namespace fbdp
