/**
 * @file
 * Statistics-framework tests.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.hh"

namespace fbdp {
namespace {

using namespace stats;

TEST(StatsTest, ScalarAccumulates)
{
    Scalar s("s", "a counter");
    s += 2.5;
    ++s;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(StatsTest, AverageMeans)
{
    Average a("a", "an average");
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(10);
    a.sample(20);
    a.sample(30);
    EXPECT_DOUBLE_EQ(a.mean(), 20.0);
    EXPECT_EQ(a.samples(), 3u);
    EXPECT_DOUBLE_EQ(a.total(), 60.0);
}

TEST(StatsTest, HistogramBuckets)
{
    Histogram h("h", "dist", 0.0, 100.0, 10);
    h.sample(5);
    h.sample(15);
    h.sample(15);
    h.sample(-1);
    h.sample(1000);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.underflows(), 1u);
    EXPECT_EQ(h.overflows(), 1u);
    EXPECT_EQ(h.samples(), 5u);
    h.reset();
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.bucket(1), 0u);
}

TEST(StatsTest, HistogramEdgeValues)
{
    Histogram h("h", "dist", 0.0, 10.0, 10);
    h.sample(0.0);   // first bucket
    h.sample(10.0);  // == hi -> overflow by convention
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.overflows(), 1u);
}

TEST(StatsTest, FormulaEvaluatesLazily)
{
    double x = 1.0;
    Formula f("f", "derived", [&x] { return x * 2; });
    EXPECT_DOUBLE_EQ(f.value(), 2.0);
    x = 21.0;
    EXPECT_DOUBLE_EQ(f.value(), 42.0);
}

TEST(StatsTest, GroupResetAndPrint)
{
    StatGroup g("grp");
    Scalar s("reads", "memory reads");
    Average a("lat", "latency");
    g.registerStat(&s);
    g.registerStat(&a);
    s += 7;
    a.sample(3.0);
    std::ostringstream os;
    g.printAll(os);
    EXPECT_NE(os.str().find("grp"), std::string::npos);
    EXPECT_NE(os.str().find("reads"), std::string::npos);
    g.resetAll();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
    EXPECT_EQ(a.samples(), 0u);
}

TEST(StatsTest, PrintFormats)
{
    Scalar s("n", "count");
    s += 5;
    std::ostringstream os;
    s.print(os);
    EXPECT_NE(os.str().find('5'), std::string::npos);
    EXPECT_NE(os.str().find("count"), std::string::npos);
}

TEST(StatsTest, QuantileEmptyAndClamp)
{
    Histogram h("h", "dist", 0.0, 100.0, 10);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
    h.sample(55.0);
    // p is clamped into [0, 1].
    EXPECT_DOUBLE_EQ(h.quantile(-1.0), h.quantile(0.0));
    EXPECT_DOUBLE_EQ(h.quantile(2.0), h.quantile(1.0));
}

TEST(StatsTest, QuantileInterpolatesWithinBucket)
{
    // 100 samples in bucket [50, 60): the p-quantile must move
    // linearly across the bucket, not jump between its edges.
    Histogram h("h", "dist", 0.0, 100.0, 10);
    for (int i = 0; i < 100; ++i)
        h.sample(55.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 55.0);
    EXPECT_NEAR(h.quantile(0.25), 52.5, 1e-9);
    EXPECT_NEAR(h.quantile(0.99), 59.9, 1e-9);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 60.0);
}

TEST(StatsTest, QuantileAcrossBuckets)
{
    // Uniform mass over [0, 100): quantiles track p * 100.
    Histogram h("h", "dist", 0.0, 100.0, 10);
    for (int i = 0; i < 100; ++i)
        h.sample(static_cast<double>(i));
    EXPECT_NEAR(h.quantile(0.5), 50.0, 1.0);
    EXPECT_NEAR(h.quantile(0.95), 95.0, 1.0);
    EXPECT_NEAR(h.quantile(0.1), 10.0, 1.0);
}

TEST(StatsTest, QuantileUnderAndOverflow)
{
    Histogram h("h", "dist", 10.0, 20.0, 10);
    h.sample(0.0);   // underflow
    h.sample(15.0);
    h.sample(100.0); // overflow
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 10.0);  // resolves to lo
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 20.0);  // resolves to hi
}

TEST(StatsTest, QuantileZeroReportsFirstPopulatedBucketEdge)
{
    // p == 0 is the distribution's minimum: the low edge of the
    // first populated bucket, not the histogram's lower bound.  A
    // distribution concentrated in one bucket must span that
    // bucket's own [low, high) range across p, never interpolate
    // against the empty space below it.
    Histogram h("h", "dist", 0.0, 100.0, 10);
    for (int i = 0; i < 100; ++i)
        h.sample(55.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 50.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 60.0);

    // With underflows present, the minimum resolves to lo.
    h.sample(-5.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
}

TEST(StatsTest, QuantileZeroWithOnlyOverflows)
{
    Histogram h("h", "dist", 0.0, 100.0, 10);
    h.sample(500.0);
    h.sample(900.0);
    // Every sample is beyond hi; the whole quantile range collapses
    // onto the high bound.
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 100.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 100.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
}

TEST(StatsDeathTest, HistogramRejectsDegenerateGeometry)
{
    EXPECT_DEATH(Histogram("h", "dist", 0.0, 100.0, 0),
                 "at least one bucket");
    EXPECT_DEATH(Histogram("h", "dist", 50.0, 50.0, 10),
                 "degenerate");
    EXPECT_DEATH(Histogram("h", "dist", 60.0, 50.0, 10),
                 "degenerate");
}

TEST(StatsTest, HistogramMergeAccumulates)
{
    Histogram a("a", "dist", 0.0, 100.0, 10);
    Histogram b("b", "dist", 0.0, 100.0, 10);
    a.sample(5.0);
    a.sample(-1.0);
    b.sample(5.0);
    b.sample(95.0);
    b.sample(1000.0);
    a.merge(b);
    EXPECT_EQ(a.samples(), 5u);
    EXPECT_EQ(a.bucket(0), 2u);
    EXPECT_EQ(a.bucket(9), 1u);
    EXPECT_EQ(a.underflows(), 1u);
    EXPECT_EQ(a.overflows(), 1u);
    EXPECT_NEAR(a.mean(), (5.0 - 1.0 + 5.0 + 95.0 + 1000.0) / 5.0,
                1e-9);
}

TEST(StatsTest, GroupFindByName)
{
    StatGroup g("grp");
    Scalar s("reads", "memory reads");
    Average a("lat", "latency");
    g.registerStat(&s);
    g.registerStat(&a);
    EXPECT_EQ(g.find("reads"), &s);
    EXPECT_EQ(g.find("lat"), &a);
    EXPECT_EQ(g.find("nonsense"), nullptr);
}

TEST(StatsTest, HistogramPrintsCumulativePercent)
{
    Histogram h("h", "dist", 0.0, 10.0, 2);
    h.sample(1.0);
    h.sample(2.0);
    h.sample(3.0);
    h.sample(7.0);
    std::ostringstream os;
    h.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("cum="), std::string::npos);
    // The last bucket's cumulative share must read 100%.
    EXPECT_NE(out.find("100.00%"), std::string::npos);
    // The first bucket holds 3 of 4 samples -> 75%.
    EXPECT_NE(out.find("75.00%"), std::string::npos);
}

} // namespace
} // namespace fbdp
