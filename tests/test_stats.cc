/**
 * @file
 * Statistics-framework tests.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.hh"

namespace fbdp {
namespace {

using namespace stats;

TEST(StatsTest, ScalarAccumulates)
{
    Scalar s("s", "a counter");
    s += 2.5;
    ++s;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(StatsTest, AverageMeans)
{
    Average a("a", "an average");
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(10);
    a.sample(20);
    a.sample(30);
    EXPECT_DOUBLE_EQ(a.mean(), 20.0);
    EXPECT_EQ(a.samples(), 3u);
    EXPECT_DOUBLE_EQ(a.total(), 60.0);
}

TEST(StatsTest, HistogramBuckets)
{
    Histogram h("h", "dist", 0.0, 100.0, 10);
    h.sample(5);
    h.sample(15);
    h.sample(15);
    h.sample(-1);
    h.sample(1000);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.underflows(), 1u);
    EXPECT_EQ(h.overflows(), 1u);
    EXPECT_EQ(h.samples(), 5u);
    h.reset();
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.bucket(1), 0u);
}

TEST(StatsTest, HistogramEdgeValues)
{
    Histogram h("h", "dist", 0.0, 10.0, 10);
    h.sample(0.0);   // first bucket
    h.sample(10.0);  // == hi -> overflow by convention
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.overflows(), 1u);
}

TEST(StatsTest, FormulaEvaluatesLazily)
{
    double x = 1.0;
    Formula f("f", "derived", [&x] { return x * 2; });
    EXPECT_DOUBLE_EQ(f.value(), 2.0);
    x = 21.0;
    EXPECT_DOUBLE_EQ(f.value(), 42.0);
}

TEST(StatsTest, GroupResetAndPrint)
{
    StatGroup g("grp");
    Scalar s("reads", "memory reads");
    Average a("lat", "latency");
    g.registerStat(&s);
    g.registerStat(&a);
    s += 7;
    a.sample(3.0);
    std::ostringstream os;
    g.printAll(os);
    EXPECT_NE(os.str().find("grp"), std::string::npos);
    EXPECT_NE(os.str().find("reads"), std::string::npos);
    g.resetAll();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
    EXPECT_EQ(a.samples(), 0u);
}

TEST(StatsTest, PrintFormats)
{
    Scalar s("n", "count");
    s += 5;
    std::ostringstream os;
    s.print(os);
    EXPECT_NE(os.str().find('5'), std::string::npos);
    EXPECT_NE(os.str().find("count"), std::string::npos);
}

} // namespace
} // namespace fbdp
