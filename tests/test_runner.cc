/**
 * @file
 * Experiment-runner tests: reference caching, the SMT-speedup metric,
 * environment overrides.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>
#include <vector>

#include "system/runner.hh"

namespace fbdp {
namespace {

SystemConfig
quickRef()
{
    SystemConfig c = SystemConfig::ddr2();
    c.warmupInsts = 10'000;
    c.measureInsts = 50'000;
    return c;
}

TEST(RunnerTest, RunMixFillsBenchmarks)
{
    RunResult r = runMix(quickRef(), mixByName("2C-3"));
    ASSERT_EQ(r.ipc.size(), 2u);
    EXPECT_GT(r.ipc[0], 0.0);
    EXPECT_GT(r.ipc[1], 0.0);
}

TEST(RunnerTest, ReferenceSetCachesRuns)
{
    ReferenceSet refs(quickRef());
    const double a = refs.ipcOf("vpr");
    const double b = refs.ipcOf("vpr");
    EXPECT_DOUBLE_EQ(a, b);
    EXPECT_GT(a, 0.0);
}

TEST(RunnerTest, ReferencesDifferAcrossPrograms)
{
    ReferenceSet refs(quickRef());
    // A streaming FP code and a low-ILP integer code should land at
    // visibly different absolute IPC.
    EXPECT_NE(refs.ipcOf("swim"), refs.ipcOf("parser"));
}

TEST(RunnerTest, SmtSpeedupOfReferenceMachineIsCoreCount)
{
    // Running each reference program on the reference machine gives
    // per-core ratios of ~1.0, so the sum is ~nCores for single-core.
    ReferenceSet refs(quickRef());
    const WorkloadMix &mix = mixByName("1C-gap");
    RunResult r = runMix(quickRef(), mix);
    const double s = smtSpeedup(r, mix, refs);
    EXPECT_NEAR(s, 1.0, 0.05);
}

TEST(RunnerTest, SmtSpeedupRejectsMismatchedMix)
{
    ReferenceSet refs(quickRef());
    RunResult r = runMix(quickRef(), mixByName("1C-gap"));
    EXPECT_DEATH(smtSpeedup(r, mixByName("2C-1"), refs),
                 "mismatch");
}

TEST(RunnerTest, RunCellsMatchesRunMixInOrder)
{
    const WorkloadMix &gap = mixByName("1C-gap");
    const WorkloadMix &vpr = mixByName("1C-vpr");
    std::vector<RunCell> cells{{quickRef(), &gap},
                               {quickRef(), &vpr}};
    // Parallel batch vs the one-at-a-time helper: identical runs.
    const auto batch = runCells(cells, 2);
    ASSERT_EQ(batch.size(), 2u);
    const RunResult a = runMix(quickRef(), gap);
    const RunResult b = runMix(quickRef(), vpr);
    EXPECT_EQ(batch[0].reads, a.reads);
    EXPECT_DOUBLE_EQ(batch[0].ipcSum(), a.ipcSum());
    EXPECT_EQ(batch[1].reads, b.reads);
    EXPECT_DOUBLE_EQ(batch[1].ipcSum(), b.ipcSum());
}

TEST(RunnerTest, JobsFromEnvParsesAndFallsBack)
{
    setenv("FBDP_JOBS", "5", 1);
    EXPECT_EQ(jobsFromEnv(), 5u);
    setenv("FBDP_JOBS", "1024", 1);
    EXPECT_EQ(jobsFromEnv(), 1024u);
    // Garbage, out-of-range and trailing-junk values all warn and
    // fall back to serial instead of silently parsing to 0.
    for (const char *bad : {"junk", "max", "0", "-3", "8x", "2000",
                            ""}) {
        setenv("FBDP_JOBS", bad, 1);
        EXPECT_EQ(jobsFromEnv(), 1u) << "FBDP_JOBS='" << bad << "'";
    }
    unsetenv("FBDP_JOBS");
    EXPECT_EQ(jobsFromEnv(), 1u);
}

TEST(RunnerTest, ReferenceSetIsThreadSafe)
{
    ReferenceSet refs(quickRef());
    std::vector<std::thread> threads;
    std::vector<double> got(4, 0.0);
    for (int i = 0; i < 4; ++i)
        threads.emplace_back(
            [&refs, &got, i] { got[i] = refs.ipcOf("gap"); });
    for (auto &t : threads)
        t.join();
    for (int i = 1; i < 4; ++i)
        EXPECT_DOUBLE_EQ(got[0], got[i]);
    EXPECT_GT(got[0], 0.0);
}

TEST(RunnerTest, EnvOverridesApply)
{
    setenv("FBDP_MEASURE_INSTS", "123456", 1);
    setenv("FBDP_WARMUP_INSTS", "7890", 1);
    SystemConfig c;
    applyInstsFromEnv(c);
    EXPECT_EQ(c.measureInsts, 123456u);
    EXPECT_EQ(c.warmupInsts, 7890u);
    unsetenv("FBDP_MEASURE_INSTS");
    unsetenv("FBDP_WARMUP_INSTS");
}

TEST(RunnerTest, EnvIgnoresGarbage)
{
    setenv("FBDP_MEASURE_INSTS", "not-a-number", 1);
    SystemConfig c;
    const std::uint64_t before = c.measureInsts;
    applyInstsFromEnv(c);
    EXPECT_EQ(c.measureInsts, before);
    unsetenv("FBDP_MEASURE_INSTS");
}

TEST(RunnerTest, TotalInstsSumsCores)
{
    RunResult r;
    r.insts = {100, 200, 300};
    EXPECT_DOUBLE_EQ(r.totalInsts(), 600.0);
    r.ipc = {1.0, 2.0, 0.5};
    EXPECT_DOUBLE_EQ(r.ipcSum(), 3.5);
}

} // namespace
} // namespace fbdp
