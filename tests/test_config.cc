/**
 * @file
 * SystemConfig preset and derivation tests.
 */

#include <gtest/gtest.h>

#include "system/config.hh"

namespace fbdp {
namespace {

TEST(ConfigTest, Ddr2Preset)
{
    SystemConfig c = SystemConfig::ddr2();
    EXPECT_FALSE(c.fbd);
    EXPECT_FALSE(c.apEnable);
    EXPECT_EQ(static_cast<int>(c.scheme),
              static_cast<int>(Interleave::Cacheline));
    EXPECT_EQ(c.logicChannels, 2u);
    EXPECT_EQ(c.dimmsPerChannel, 4u);
    EXPECT_EQ(c.banksPerDimm, 4u);
    EXPECT_EQ(c.dataRate, 667u);
    EXPECT_TRUE(c.swPrefetch);
}

TEST(ConfigTest, FbdApPresetMatchesSection52Defaults)
{
    SystemConfig c = SystemConfig::fbdAp();
    EXPECT_TRUE(c.fbd);
    EXPECT_TRUE(c.apEnable);
    EXPECT_EQ(static_cast<int>(c.scheme),
              static_cast<int>(Interleave::MultiCacheline));
    EXPECT_EQ(c.regionLines, 4u);
    EXPECT_EQ(c.ambEntries, 64u);
    EXPECT_EQ(c.ambWays, 0u) << "fully associative default";
    EXPECT_FALSE(c.apFullLatency);
}

TEST(ConfigTest, Table1ProcessorDefaults)
{
    SystemConfig c;
    EXPECT_EQ(c.rob, 196u);
    EXPECT_EQ(c.lq, 32u);
    EXPECT_EQ(c.sq, 32u);
    EXPECT_EQ(c.hier.l1Bytes, 64u * 1024u);
    EXPECT_EQ(c.hier.l1Ways, 2u);
    EXPECT_EQ(c.hier.l2Bytes, 4u * 1024u * 1024u);
    EXPECT_EQ(c.hier.l2Ways, 4u);
    EXPECT_EQ(c.hier.l2HitLatency, 15u * cpuCyclePs);
    EXPECT_EQ(c.hier.l1Mshrs, 32u);
    EXPECT_EQ(c.hier.l2Mshrs, 64u);
}

TEST(ConfigTest, ControllerDerivation)
{
    SystemConfig c = SystemConfig::fbdAp();
    ControllerConfig cc = c.controllerConfig();
    EXPECT_TRUE(cc.fbd);
    EXPECT_TRUE(cc.apEnable);
    EXPECT_EQ(cc.nDimms, 4u);
    EXPECT_EQ(cc.timing.memCycle, 3000u);
    EXPECT_FALSE(cc.openPage);
    EXPECT_EQ(cc.cmdDelay, nsToTicks(3));
}

TEST(ConfigTest, Ddr2CommandPathIncludesRegisterAnd2T)
{
    SystemConfig c = SystemConfig::ddr2();
    ControllerConfig cc = c.controllerConfig();
    EXPECT_EQ(cc.cmdDelay, nsToTicks(3) + 2 * cc.timing.memCycle);
}

TEST(ConfigTest, PageSchemeTurnsOnOpenPage)
{
    SystemConfig c = SystemConfig::fbdBase();
    c.scheme = Interleave::Page;
    EXPECT_TRUE(c.controllerConfig().openPage);
}

TEST(ConfigTest, ApRequiresCompatibleScheme)
{
    SystemConfig c = SystemConfig::fbdAp();
    c.scheme = Interleave::Cacheline;
    EXPECT_DEATH(c.controllerConfig(), "multi-cacheline or page");
}

TEST(ConfigTest, ApRequiresFbd)
{
    SystemConfig c = SystemConfig::fbdAp();
    c.fbd = false;
    EXPECT_DEATH(c.controllerConfig(), "requires FB-DIMM");
}

TEST(ConfigTest, AddressMapDerivation)
{
    SystemConfig c = SystemConfig::fbdAp();
    c.logicChannels = 4;
    c.regionLines = 8;
    AddressMapConfig mc = c.addressMapConfig();
    EXPECT_EQ(mc.channels, 4u);
    EXPECT_EQ(mc.regionLines, 8u);
    EXPECT_EQ(static_cast<int>(mc.scheme),
              static_cast<int>(Interleave::MultiCacheline));
}

TEST(ConfigTest, CoreCountFollowsBenchmarks)
{
    SystemConfig c;
    EXPECT_EQ(c.nCores(), 0u);
    c.benchmarks = {"swim", "vpr", "gap"};
    EXPECT_EQ(c.nCores(), 3u);
}

} // namespace
} // namespace fbdp
