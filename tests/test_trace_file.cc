/**
 * @file
 * Trace record/replay tests.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "workload/trace_file.hh"

namespace fbdp {
namespace {

class TraceFileTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path = ::testing::TempDir() + "fbdp_trace_test.txt";
    }

    void TearDown() override { std::remove(path.c_str()); }

    std::string path;
};

TEST_F(TraceFileTest, FormatRoundTrip)
{
    TraceOp op;
    op.gap = 17;
    op.kind = TraceOp::Kind::Store;
    op.addr = 0xdeadbeef40;
    TraceOp back;
    ASSERT_TRUE(parseTraceOp(formatTraceOp(op), &back));
    EXPECT_EQ(back.gap, op.gap);
    EXPECT_EQ(static_cast<int>(back.kind),
              static_cast<int>(op.kind));
    EXPECT_EQ(back.addr, op.addr);
}

TEST_F(TraceFileTest, CommentsAndBlankLinesSkipped)
{
    TraceOp op;
    EXPECT_FALSE(parseTraceOp("# comment", &op));
    EXPECT_FALSE(parseTraceOp("", &op));
    EXPECT_TRUE(parseTraceOp("3 P 1000", &op));
    EXPECT_EQ(op.addr, 0x1000u);
    EXPECT_EQ(static_cast<int>(op.kind),
              static_cast<int>(TraceOp::Kind::Prefetch));
}

TEST_F(TraceFileTest, MalformedLineIsFatal)
{
    TraceOp op;
    EXPECT_DEATH(parseTraceOp("banana", &op), "malformed");
    EXPECT_DEATH(parseTraceOp("1 X 40", &op), "unknown trace op");
}

TEST_F(TraceFileTest, RecordThenReplayIdentical)
{
    SyntheticGenerator gen(benchProfile("equake"), 0, 5, true);
    {
        TraceRecorder rec(&gen, path);
        for (int i = 0; i < 2000; ++i)
            rec.next();
        EXPECT_EQ(rec.recorded(), 2000u);
    }

    SyntheticGenerator ref(benchProfile("equake"), 0, 5, true);
    TraceFileGenerator replay(path);
    EXPECT_EQ(replay.size(), 2000u);
    for (int i = 0; i < 2000; ++i) {
        TraceOp a = ref.next();
        TraceOp b = replay.next();
        ASSERT_EQ(a.addr, b.addr) << "op " << i;
        ASSERT_EQ(a.gap, b.gap);
        ASSERT_EQ(static_cast<int>(a.kind),
                  static_cast<int>(b.kind));
    }
}

TEST_F(TraceFileTest, ReplayWrapsAtEof)
{
    {
        std::ofstream out(path);
        out << "1 L 40\n2 S 80\n";
    }
    TraceFileGenerator replay(path);
    EXPECT_EQ(replay.size(), 2u);
    TraceOp first = replay.next();
    replay.next();
    TraceOp wrapped = replay.next();
    EXPECT_EQ(wrapped.addr, first.addr);
    EXPECT_EQ(replay.wraps(), 1u);
}

TEST_F(TraceFileTest, BaseAddressOffsetsReplay)
{
    {
        std::ofstream out(path);
        out << "0 L 40\n";
    }
    TraceFileGenerator replay(path, 1ull << 32);
    EXPECT_EQ(replay.next().addr, (1ull << 32) + 0x40);
}

TEST_F(TraceFileTest, MissingFileIsFatal)
{
    EXPECT_DEATH(TraceFileGenerator g("/nonexistent/trace.txt"),
                 "cannot open");
}

TEST_F(TraceFileTest, EmptyTraceIsFatal)
{
    {
        std::ofstream out(path);
        out << "# only a comment\n";
    }
    EXPECT_DEATH(TraceFileGenerator g(path), "no operations");
}

} // namespace
} // namespace fbdp
