/**
 * @file
 * Trace record/replay tests.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "workload/trace_file.hh"
#include "workload/trace_stream.hh"

namespace fbdp {
namespace {

class TraceFileTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path = ::testing::TempDir() + "fbdp_trace_test.txt";
    }

    void TearDown() override { std::remove(path.c_str()); }

    std::string path;
};

TEST_F(TraceFileTest, FormatRoundTrip)
{
    TraceOp op;
    op.gap = 17;
    op.kind = TraceOp::Kind::Store;
    op.addr = 0xdeadbeef40;
    TraceOp back;
    ASSERT_TRUE(parseTraceOp(formatTraceOp(op), &back));
    EXPECT_EQ(back.gap, op.gap);
    EXPECT_EQ(static_cast<int>(back.kind),
              static_cast<int>(op.kind));
    EXPECT_EQ(back.addr, op.addr);
}

TEST_F(TraceFileTest, CommentsAndBlankLinesSkipped)
{
    TraceOp op;
    EXPECT_FALSE(parseTraceOp("# comment", &op));
    EXPECT_FALSE(parseTraceOp("", &op));
    EXPECT_TRUE(parseTraceOp("3 P 1000", &op));
    EXPECT_EQ(op.addr, 0x1000u);
    EXPECT_EQ(static_cast<int>(op.kind),
              static_cast<int>(TraceOp::Kind::Prefetch));
}

TEST_F(TraceFileTest, MalformedLineIsFatal)
{
    TraceOp op;
    EXPECT_DEATH(parseTraceOp("banana", &op), "malformed");
    EXPECT_DEATH(parseTraceOp("1 X 40", &op), "unknown trace op");
}

TEST_F(TraceFileTest, RecordThenReplayIdentical)
{
    SyntheticGenerator gen(benchProfile("equake"), 0, 5, true);
    {
        TraceRecorder rec(&gen, path);
        for (int i = 0; i < 2000; ++i)
            rec.next();
        EXPECT_EQ(rec.recorded(), 2000u);
    }

    SyntheticGenerator ref(benchProfile("equake"), 0, 5, true);
    TraceFileGenerator replay(path);
    EXPECT_EQ(replay.size(), 2000u);
    for (int i = 0; i < 2000; ++i) {
        TraceOp a = ref.next();
        TraceOp b = replay.next();
        ASSERT_EQ(a.addr, b.addr) << "op " << i;
        ASSERT_EQ(a.gap, b.gap);
        ASSERT_EQ(static_cast<int>(a.kind),
                  static_cast<int>(b.kind));
    }
}

TEST_F(TraceFileTest, ReplayWrapsAtEof)
{
    {
        std::ofstream out(path);
        out << "1 L 40\n2 S 80\n";
    }
    TraceFileGenerator replay(path);
    EXPECT_EQ(replay.size(), 2u);
    TraceOp first = replay.next();
    replay.next();
    TraceOp wrapped = replay.next();
    EXPECT_EQ(wrapped.addr, first.addr);
    EXPECT_EQ(replay.wraps(), 1u);
}

TEST_F(TraceFileTest, BaseAddressOffsetsReplay)
{
    {
        std::ofstream out(path);
        out << "0 L 40\n";
    }
    TraceFileGenerator replay(path, 1ull << 32);
    EXPECT_EQ(replay.next().addr, (1ull << 32) + 0x40);
}

TEST_F(TraceFileTest, MissingFileIsFatal)
{
    EXPECT_DEATH(TraceFileGenerator g("/nonexistent/trace.txt"),
                 "cannot open");
}

TEST_F(TraceFileTest, EmptyTraceIsFatal)
{
    {
        std::ofstream out(path);
        out << "# only a comment\n";
    }
    EXPECT_DEATH(TraceFileGenerator g(path), "no operations");
}

TEST_F(TraceFileTest, CrlfAndWhitespaceLinesTolerated)
{
    TraceOp op;
    EXPECT_FALSE(parseTraceOp("\r", &op));
    EXPECT_FALSE(parseTraceOp("  \t ", &op));
    EXPECT_FALSE(parseTraceOp(" \t\r", &op));
    ASSERT_TRUE(parseTraceOp("1 L 40\r", &op));
    EXPECT_EQ(op.addr, 0x40u);
    ASSERT_TRUE(parseTraceOp("  2 S 80", &op));
    EXPECT_EQ(op.gap, 2u);
}

TEST_F(TraceFileTest, MalformedLineReportsLineNumber)
{
    TraceOp op;
    EXPECT_DEATH(parseTraceOp("banana", &op, 7),
                 "malformed trace line 7");
    EXPECT_DEATH(parseTraceOp("1 X 40", &op, 9),
                 "kind 'X' on line 9");
}

TEST_F(TraceFileTest, LoaderReportsLineNumberOfBadRecord)
{
    {
        std::ofstream out(path);
        out << "# header\n1 L 40\nbogus line\n";
    }
    EXPECT_DEATH(TraceFileGenerator g(path),
                 "malformed trace line 3");
}

TEST_F(TraceFileTest, DosFormattedTraceReplays)
{
    {
        std::ofstream out(path);
        out << "1 L 40\r\n\r\n2 S 80\r\n";
    }
    TraceFileGenerator replay(path);
    EXPECT_EQ(replay.size(), 2u);
    EXPECT_EQ(replay.next().addr, 0x40u);
    EXPECT_EQ(replay.next().addr, 0x80u);
}

TEST_F(TraceFileTest, RecorderDetectsWriteFailure)
{
    // /dev/full accepts the open and fails every flushed write, the
    // classic disk-full simulation.
    std::ifstream probe("/dev/full");
    if (!probe.good())
        GTEST_SKIP() << "no /dev/full on this host";
    EXPECT_DEATH(
        {
            SyntheticGenerator gen(benchProfile("swim"), 0, 1, true);
            TraceRecorder rec(&gen, "/dev/full");
            for (int i = 0; i < 100000; ++i)
                rec.next();
        },
        "disk full");
}

// ---------------------------------------------------------------- //
// Streaming frontend                                                //
// ---------------------------------------------------------------- //

class TraceStreamTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        base = ::testing::TempDir() + "fbdp_stream_test";
        textPath = base + ".trace";
        fbtPath = base + ".fbt";
        gzPath = base + ".fbt.gz";
    }

    void
    TearDown() override
    {
        std::remove(textPath.c_str());
        std::remove(fbtPath.c_str());
        std::remove(gzPath.c_str());
    }

    /** Record @p n synthetic ops to the text path. */
    std::vector<TraceOp>
    record(std::uint64_t n, const std::string &bench = "equake")
    {
        SyntheticGenerator gen(benchProfile(bench), 0, 5, true);
        std::vector<TraceOp> ops;
        TraceWriter w(textPath, TraceFormat::Text, false, bench);
        for (std::uint64_t i = 0; i < n; ++i) {
            ops.push_back(gen.next());
            w.append(ops.back());
        }
        w.close();
        return ops;
    }

    static TraceSpec
    spec(const std::string &p, std::size_t chunk = 0)
    {
        TraceSpec s;
        s.path = p;
        if (chunk)
            s.chunkBytes = chunk;
        return s;
    }

    static void
    expectSameOp(const TraceOp &a, const TraceOp &b, std::uint64_t i)
    {
        ASSERT_EQ(a.addr, b.addr) << "op " << i;
        ASSERT_EQ(a.gap, b.gap) << "op " << i;
        ASSERT_EQ(static_cast<int>(a.kind), static_cast<int>(b.kind))
            << "op " << i;
    }

    std::string base, textPath, fbtPath, gzPath;
};

TEST_F(TraceStreamTest, SpecParsing)
{
    EXPECT_TRUE(TraceSpec::isTraceSpec("trace:/tmp/x"));
    EXPECT_FALSE(TraceSpec::isTraceSpec("swim"));

    TraceSpec s = TraceSpec::parse("trace:/tmp/x.fbt");
    EXPECT_EQ(s.path, "/tmp/x.fbt");
    EXPECT_TRUE(s.stream);
    EXPECT_EQ(s.chunkBytes, TraceSpec::defaultChunkBytes);
    EXPECT_EQ(static_cast<int>(s.format),
              static_cast<int>(TraceFormat::Auto));
    EXPECT_EQ(s.canonicalName(), "trace:/tmp/x.fbt");

    s = TraceSpec::parse(
        "trace:/a/b,stream=off,chunk=128k,format=fbt");
    EXPECT_FALSE(s.stream);
    EXPECT_EQ(s.chunkBytes, 128u << 10);
    EXPECT_EQ(static_cast<int>(s.format),
              static_cast<int>(TraceFormat::Fbt));

    s = TraceSpec::parse("trace:/a/b,chunk=2m");
    EXPECT_EQ(s.chunkBytes, 2u << 20);
    s = TraceSpec::parse("trace:/a/b,chunk=64");
    EXPECT_EQ(s.chunkBytes, 64u);

    EXPECT_DEATH(TraceSpec::parse("trace:"), "missing a path");
    EXPECT_DEATH(TraceSpec::parse("trace:/a,bogus=1"),
                 "unknown trace spec option");
    EXPECT_DEATH(TraceSpec::parse("trace:/a,stream=maybe"),
                 "bad value");
    EXPECT_DEATH(TraceSpec::parse("trace:/a,chunk=banana"),
                 "bad chunk size");
}

TEST_F(TraceStreamTest, TextBinaryGzipRoundTrip)
{
    const auto ops = record(3000);

    {
        TracePassReader in(spec(textPath));
        TraceWriter w(fbtPath, TraceFormat::Fbt, false, "equake",
                      ops.size());
        TraceOp op;
        while (in.next(&op))
            w.append(op);
        w.close();
        EXPECT_EQ(w.written(), ops.size());
    }

    {
        TracePassReader in(spec(fbtPath));
        EXPECT_EQ(static_cast<int>(in.format()),
                  static_cast<int>(TraceFormat::Fbt));
        EXPECT_EQ(in.header().profileName, "equake");
        EXPECT_EQ(in.header().opCount, ops.size());
        TraceOp op;
        std::uint64_t i = 0;
        while (in.next(&op)) {
            ASSERT_LT(i, ops.size());
            expectSameOp(op, ops[i], i);
            ++i;
        }
        EXPECT_EQ(i, ops.size());
    }

    if (!zlibAvailable())
        GTEST_SKIP() << "built without zlib";
    {
        TracePassReader in(spec(fbtPath));
        TraceWriter w(gzPath, TraceFormat::Fbt, true, "equake",
                      ops.size());
        TraceOp op;
        while (in.next(&op))
            w.append(op);
        w.close();
    }
    TracePassReader in(spec(gzPath));
    EXPECT_EQ(in.header().profileName, "equake");
    TraceOp op;
    std::uint64_t i = 0;
    while (in.next(&op)) {
        ASSERT_LT(i, ops.size());
        expectSameOp(op, ops[i], i);
        ++i;
    }
    EXPECT_EQ(i, ops.size());
}

TEST_F(TraceStreamTest, TinyChunksSplitRecordsAcrossReads)
{
    // 64-byte chunks guarantee both text lines and 13-byte fbt
    // records straddle every read boundary.
    const auto ops = record(500);
    {
        TracePassReader in(spec(textPath));
        TraceWriter w(fbtPath, TraceFormat::Fbt, false, "equake");
        TraceOp op;
        while (in.next(&op))
            w.append(op);
        w.close();
    }
    for (const auto &p : {textPath, fbtPath}) {
        TracePassReader in(spec(p, 64));
        TraceOp op;
        std::uint64_t i = 0;
        while (in.next(&op)) {
            ASSERT_LT(i, ops.size()) << p;
            expectSameOp(op, ops[i], i);
            ++i;
        }
        EXPECT_EQ(i, ops.size()) << p;
    }
}

TEST_F(TraceStreamTest, WrapDigestsMatchInRamReplay)
{
    record(700);
    TraceFileGenerator ram(textPath, 1ull << 32);
    StreamingTraceGenerator stream(spec(textPath, 256), 1ull << 32);
    // 2.5 passes: wrap counters must agree after every op.
    for (std::uint64_t i = 0; i < 1750; ++i) {
        TraceOp a = ram.next();
        TraceOp b = stream.next();
        expectSameOp(a, b, i);
        ASSERT_EQ(ram.wraps(), stream.wraps()) << "op " << i;
    }
    EXPECT_EQ(stream.wraps(), 2u);
    EXPECT_EQ(stream.consumed(), 1750u);
}

TEST_F(TraceStreamTest, SharedStreamMultipleViews)
{
    record(400);
    auto shared = std::make_shared<TraceStream>(spec(textPath, 512));
    StreamingTraceGenerator v0(shared, 0);
    StreamingTraceGenerator v1(shared, 1ull << 32);
    TraceFileGenerator r0(textPath, 0);
    TraceFileGenerator r1(textPath, 1ull << 32);
    // Interleave like the warm-up loop drives cores round-robin.
    for (std::uint64_t i = 0; i < 1000; ++i) {
        expectSameOp(v0.next(), r0.next(), i);
        expectSameOp(v1.next(), r1.next(), i);
    }
    // Lock-step views share the window: a chunk or two resident,
    // never a whole pass.
    EXPECT_LE(shared->windowPeakChunks(), 4u);
    EXPECT_GE(shared->passes(), 2u);
}

TEST_F(TraceStreamTest, BackgroundAndSynchronousDecodeAgree)
{
    const auto ops = record(1200);
    StreamingTraceGenerator sync(spec(textPath, 256));
    {
        TraceSpec s = spec(textPath, 256);
        auto str = std::make_shared<TraceStream>(s, false);
        StreamingTraceGenerator nobg(str);
        for (std::uint64_t i = 0; i < 2400; ++i)
            expectSameOp(sync.next(), nobg.next(), i);
    }
}

TEST_F(TraceStreamTest, LoadOpsReadsBinary)
{
    const auto ops = record(300);
    {
        TracePassReader in(spec(textPath));
        TraceWriter w(fbtPath, TraceFormat::Fbt, false, "equake");
        TraceOp op;
        while (in.next(&op))
            w.append(op);
        w.close();
    }
    // The in-RAM loader goes through the same decoder: .fbt loads
    // transparently.
    TraceFileGenerator ram(fbtPath);
    EXPECT_EQ(ram.size(), ops.size());
    for (std::uint64_t i = 0; i < ops.size(); ++i)
        expectSameOp(ram.next(), ops[i], i);
}

TEST_F(TraceStreamTest, EmptyAndCorruptFilesAreFatal)
{
    {
        TraceWriter w(fbtPath, TraceFormat::Fbt, false, "empty");
        w.close();
    }
    EXPECT_DEATH(
        {
            TracePassReader in(spec(fbtPath));
            TraceOp op;
            in.next(&op);
        },
        "no operations");

    // Truncated record tail.
    {
        TraceWriter w(fbtPath, TraceFormat::Fbt, false, "trunc");
        TraceOp op;
        w.append(op);
        w.close();
        std::ofstream out(fbtPath, std::ios::app | std::ios::binary);
        out << "xyz";
    }
    EXPECT_DEATH(
        {
            TracePassReader in(spec(fbtPath));
            TraceOp op;
            while (in.next(&op)) {
            }
        },
        "truncated");

    // Forcing fbt on a text file trips the magic check.
    record(10);
    {
        TraceSpec s = spec(textPath);
        s.format = TraceFormat::Fbt;
        EXPECT_DEATH(TraceStream bad(s), "bad magic");
    }

    EXPECT_DEATH(TraceStream missing(spec("/nonexistent/x.fbt")),
                 "cannot open");
}

TEST_F(TraceStreamTest, WriterDetectsWriteFailure)
{
    std::ifstream probe("/dev/full");
    if (!probe.good())
        GTEST_SKIP() << "no /dev/full on this host";
    EXPECT_DEATH(
        {
            TraceWriter w("/dev/full", TraceFormat::Fbt, false,
                          "full");
            TraceOp op;
            for (int i = 0; i < 100000; ++i)
                w.append(op);
            w.close();
        },
        "disk full");
}

TEST_F(TraceStreamTest, GzipWithoutZlibIsFatal)
{
    if (zlibAvailable())
        GTEST_SKIP() << "this build has zlib";
    {
        // Hand-craft a gzip magic so the sniff triggers.
        std::ofstream out(gzPath, std::ios::binary);
        out << '\x1f' << '\x8b' << "rest";
    }
    EXPECT_DEATH(TraceStream gz(spec(gzPath)), "no zlib");
}

} // namespace
} // namespace fbdp
