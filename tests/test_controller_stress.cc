/**
 * @file
 * Randomised stress tests of the memory controller: thousands of
 * mixed reads/writes with random addresses and arrival times, on
 * every controller flavour.  Checks liveness (every read completes),
 * conservation (operation accounting adds up) and monotone latency
 * sanity.  This is the failure-injection net for the scheduler.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/random.hh"
#include "mc/address_map.hh"
#include "mc/controller.hh"
#include "sim/event_queue.hh"

namespace fbdp {
namespace {

struct Flavour
{
    const char *name;
    bool fbd;
    bool ap;
    bool open_page;
    bool vrl;
    unsigned ways;
};

class ControllerStress : public ::testing::TestWithParam<Flavour>
{
};

TEST_P(ControllerStress, RandomTrafficAllCompletes)
{
    const Flavour f = GetParam();

    EventQueue eq;
    AddressMapConfig mc_cfg;
    mc_cfg.channels = 1;
    mc_cfg.dimmsPerChannel = 4;
    mc_cfg.banksPerDimm = 4;
    mc_cfg.regionLines = 4;
    mc_cfg.scheme = f.open_page
        ? Interleave::Page
        : (f.ap ? Interleave::MultiCacheline : Interleave::Cacheline);
    AddressMap map(mc_cfg);

    ControllerConfig cfg;
    cfg.fbd = f.fbd;
    if (!f.fbd)
        cfg.cmdDelay = nsToTicks(3) + 2 * cfg.timing.memCycle;
    cfg.apEnable = f.ap;
    cfg.ambWays = f.ways;
    cfg.openPage = f.open_page;
    cfg.vrl = f.vrl;
    MemController mc("mc", &eq, cfg);

    Rng rng(0xface + f.fbd + 2 * f.ap + 4 * f.open_page);
    const unsigned n = 3000;
    unsigned reads_sent = 0, writes_sent = 0;
    std::vector<Tick> completions;

    // Inject bursts with random spacing, running the queue between
    // bursts (mix of hot regions for conflicts and far addresses).
    unsigned injected = 0;
    Tick when = 0;
    while (injected < n) {
        const unsigned burst = 1 + rng.below(6);
        for (unsigned b = 0; b < burst && injected < n; ++b) {
            ++injected;
            auto t = makeTransaction();
            const bool is_read = rng.chance(0.7);
            t->cmd = is_read ? MemCmd::Read : MemCmd::Write;
            Addr addr = rng.chance(0.5)
                ? rng.below(512) * lineBytes
                : rng.below(1u << 20) * lineBytes;
            t->lineAddr = lineAlign(addr);
            t->coord = map.map(addr);
            t->created = eq.now();
            if (is_read) {
                ++reads_sent;
                t->onComplete = [&completions](Tick w) {
                    completions.push_back(w);
                };
            } else {
                ++writes_sent;
            }
            mc.push(std::move(t));
        }
        when = eq.now() + rng.below(nsToTicks(40));
        Event idle([] {});
        eq.schedule(&idle, when);
        eq.run(when);
    }
    eq.run();

    // Liveness: every read completed, controller fully drained.
    EXPECT_EQ(completions.size(), reads_sent) << f.name;
    EXPECT_EQ(mc.occupancy(), 0u) << f.name;
    EXPECT_EQ(mc.reads(), reads_sent);
    EXPECT_EQ(mc.writes(), writes_sent);

    // Completion times are plausible: nothing earlier than the
    // minimum possible latency.
    const Tick min_lat = cfg.fbd ? nsToTicks(33) : nsToTicks(36);
    for (size_t i = 0; i < completions.size(); ++i)
        ASSERT_GE(completions[i], min_lat);

    // Conservation: every line moved over the channel exactly once.
    EXPECT_EQ(mc.channelBytes(),
              static_cast<std::uint64_t>(reads_sent + writes_sent)
                  * lineBytes);

    // DRAM accounting: without AP, close page issues exactly one
    // CAS per transaction.
    if (!f.ap && !f.open_page) {
        EXPECT_EQ(mc.dramOps().cas(), reads_sent + writes_sent);
        EXPECT_EQ(mc.dramOps().actPre, reads_sent + writes_sent);
    }
    if (f.ap) {
        // Group fetches add K-1 extra CASes per miss; hits add none.
        EXPECT_GE(mc.dramOps().rdCas + mc.ambHits(), reads_sent);
    }
}

/** One self-contained burst of mixed traffic (for the pool test). */
void
runBurst(std::uint64_t seed)
{
    EventQueue eq;
    AddressMapConfig mc_cfg;
    mc_cfg.channels = 1;
    mc_cfg.dimmsPerChannel = 4;
    mc_cfg.banksPerDimm = 4;
    mc_cfg.regionLines = 4;
    mc_cfg.scheme = Interleave::MultiCacheline;
    AddressMap map(mc_cfg);

    ControllerConfig cfg;
    cfg.fbd = true;
    cfg.apEnable = true;
    MemController mc("mc", &eq, cfg);

    Rng rng(seed);
    unsigned completions = 0;
    for (unsigned i = 0; i < 2000; ++i) {
        auto t = makeTransaction();
        const bool is_read = rng.chance(0.7);
        t->cmd = is_read ? MemCmd::Read : MemCmd::Write;
        const Addr addr = rng.below(1u << 16) * lineBytes;
        t->lineAddr = lineAlign(addr);
        t->coord = map.map(addr);
        t->created = eq.now();
        if (is_read)
            t->onComplete = [&completions](Tick) { ++completions; };
        mc.push(std::move(t));
        if ((i & 7u) == 0) {
            Event idle([] {});
            eq.schedule(&idle, eq.now() + rng.below(nsToTicks(40)));
            eq.run(eq.now() + nsToTicks(20));
        }
    }
    eq.run();
    EXPECT_EQ(mc.occupancy(), 0u);
    EXPECT_GT(completions, 0u);
}

TEST(TransPoolSteadyState, SecondPassAllocatesNothing)
{
    // First pass drives the in-flight population to its high-water
    // mark; the pool may carve chunks while getting there.
    runBurst(0xbeef);
    const TransPool::Stats snap = TransPool::local().stats();
    EXPECT_GT(snap.highWater, 0u);

    // Steady state: identical traffic must be served entirely from
    // the freelist — capacity frozen, every acquire a reuse.
    runBurst(0xbeef);
    const TransPool::Stats &st = TransPool::local().stats();
    EXPECT_EQ(st.capacity, snap.capacity)
        << "pool allocated in steady state";
    EXPECT_EQ(st.acquires - snap.acquires, st.reuses - snap.reuses)
        << "an acquire missed the freelist";

    // The pool never carves beyond one chunk past the high-water
    // population (chunk size 64).
    EXPECT_GE(st.capacity, st.highWater);
    EXPECT_LT(st.capacity, st.highWater + 64);
}

INSTANTIATE_TEST_SUITE_P(
    Flavours, ControllerStress,
    ::testing::Values(
        Flavour{"ddr2", false, false, false, false, 0},
        Flavour{"fbd", true, false, false, false, 0},
        Flavour{"fbd_vrl", true, false, false, true, 0},
        Flavour{"fbd_open", true, false, true, false, 0},
        Flavour{"fbd_ap_full", true, true, false, false, 0},
        Flavour{"fbd_ap_2way", true, true, false, false, 2},
        Flavour{"fbd_ap_direct", true, true, false, false, 1},
        Flavour{"fbd_ap_page", true, true, true, false, 0}),
    [](const ::testing::TestParamInfo<Flavour> &info) {
        return info.param.name;
    });

} // namespace
} // namespace fbdp
