/**
 * @file
 * Unit tests of the cache hierarchy: hit/miss paths, MSHR merging and
 * blocking, writebacks, software prefetch, functional warm-up.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cache/hierarchy.hh"
#include "sim/event_queue.hh"

namespace fbdp {
namespace {

/** Scripted memory: records requests, completes them on demand. */
class FakeMemory : public MemoryIface
{
  public:
    struct Req {
        Addr line;
        int core;
        bool prefetch;
        TickCallback done;
    };

    void
    read(Addr line_addr, int core_id, bool sw_prefetch,
         TickCallback done) override
    {
        reads.push_back({line_addr, core_id, sw_prefetch,
                         std::move(done)});
    }

    void
    write(Addr line_addr, int core_id) override
    {
        writes.push_back({line_addr, core_id, false, nullptr});
    }

    void
    completeAll(Tick when)
    {
        auto pending = std::move(reads);
        reads.clear();
        for (auto &r : pending)
            r.done(when);
    }

    std::vector<Req> reads;
    std::vector<Req> writes;
};

class HierarchyTest : public ::testing::Test
{
  protected:
    HierarchyTest()
    {
        cfg.l1Bytes = 4 * 1024;  // small caches to force evictions
        cfg.l2Bytes = 16 * 1024;
        cfg.l1Mshrs = 4;
        cfg.l2Mshrs = 4;
        hier = std::make_unique<CacheHierarchy>(&eq, 2, cfg, &mem);
    }

    Addr line(unsigned i) { return static_cast<Addr>(i) * lineBytes; }

    EventQueue eq;
    HierConfig cfg;
    FakeMemory mem;
    std::unique_ptr<CacheHierarchy> hier;
};

TEST_F(HierarchyTest, ColdLoadMissesToMemory)
{
    auto r = hier->access(0, line(1), false, [](Tick) {});
    EXPECT_EQ(r.outcome, CacheHierarchy::Outcome::Miss);
    ASSERT_EQ(mem.reads.size(), 1u);
    EXPECT_EQ(mem.reads[0].line, line(1));
    EXPECT_FALSE(mem.reads[0].prefetch);
}

TEST_F(HierarchyTest, FillMakesL1Hit)
{
    int done = 0;
    hier->access(0, line(1), false, [&](Tick) { ++done; });
    mem.completeAll(100);
    EXPECT_EQ(done, 1);
    auto r = hier->access(0, line(1), false, nullptr);
    EXPECT_EQ(r.outcome, CacheHierarchy::Outcome::L1Hit);
}

TEST_F(HierarchyTest, OtherCoreHitsInL2)
{
    hier->access(0, line(1), false, [](Tick) {});
    mem.completeAll(100);
    auto r = hier->access(1, line(1), false, nullptr);
    EXPECT_EQ(r.outcome, CacheHierarchy::Outcome::L2Hit);
    EXPECT_EQ(r.doneAt, eq.now() + cfg.l2HitLatency);
}

TEST_F(HierarchyTest, SameLineMissesMerge)
{
    int done = 0;
    hier->access(0, line(1), false, [&](Tick) { ++done; });
    hier->access(1, line(1), false, [&](Tick) { ++done; });
    EXPECT_EQ(mem.reads.size(), 1u) << "second miss must merge";
    mem.completeAll(100);
    EXPECT_EQ(done, 2);
}

TEST_F(HierarchyTest, L2MshrFullBlocks)
{
    for (unsigned i = 0; i < 4; ++i)
        hier->access(0, line(10 + i), false, [](Tick) {});
    auto r = hier->access(0, line(99), false, [](Tick) {});
    EXPECT_EQ(r.outcome, CacheHierarchy::Outcome::Blocked);
    // Completion frees space and pokes the retry hook.
    bool poked = false;
    hier->setRetryHook(0, [&] { poked = true; });
    mem.completeAll(100);
    EXPECT_TRUE(poked);
    auto r2 = hier->access(0, line(99), false, [](Tick) {});
    EXPECT_EQ(r2.outcome, CacheHierarchy::Outcome::Miss);
}

TEST_F(HierarchyTest, PerCoreL1MshrLimitBlocks)
{
    // Use prefetch-free demand misses from one core only; the L1
    // limit (4) binds before the L2 limit in this config... they are
    // equal, so lower the pressure by completing L2 entries.
    HierConfig c2 = cfg;
    c2.l1Mshrs = 2;
    c2.l2Mshrs = 8;
    CacheHierarchy h(&eq, 1, c2, &mem);
    h.access(0, line(1), false, [](Tick) {});
    h.access(0, line(2), false, [](Tick) {});
    auto r = h.access(0, line(3), false, [](Tick) {});
    EXPECT_EQ(r.outcome, CacheHierarchy::Outcome::Blocked);
    EXPECT_EQ(h.l1Outstanding(0), 2u);
}

TEST_F(HierarchyTest, StoreMissIsRfoAndInstallsDirty)
{
    hier->access(0, line(1), true, [](Tick) {});
    ASSERT_EQ(mem.reads.size(), 1u) << "RFO read";
    mem.completeAll(100);
    // Evict line(1) from tiny L1 by filling its set; the dirty line
    // must eventually reach memory as a write via L2 eviction.
    const unsigned l1_sets = 4 * 1024 / (2 * lineBytes);
    for (unsigned k = 1; k <= 40; ++k) {
        hier->access(0, line(1 + k * l1_sets), false, [](Tick) {});
        mem.completeAll(200 + k);
    }
    EXPECT_GT(mem.writes.size(), 0u) << "dirty data must writeback";
}

TEST_F(HierarchyTest, PrefetchAllocatesAndInstallsL2Only)
{
    hier->prefetch(0, line(5));
    ASSERT_EQ(mem.reads.size(), 1u);
    EXPECT_TRUE(mem.reads[0].prefetch);
    mem.completeAll(100);
    auto r = hier->access(0, line(5), false, nullptr);
    EXPECT_EQ(r.outcome, CacheHierarchy::Outcome::L2Hit)
        << "prefetch fills L2, not L1";
}

TEST_F(HierarchyTest, PrefetchDroppedWhenRedundant)
{
    hier->access(0, line(5), false, [](Tick) {});
    hier->prefetch(0, line(5));  // already in flight
    EXPECT_EQ(mem.reads.size(), 1u);
    EXPECT_EQ(hier->prefetchesDropped(), 1u);
    mem.completeAll(100);
    hier->prefetch(0, line(5));  // now resident
    EXPECT_EQ(mem.reads.size(), 0u);
    EXPECT_EQ(hier->prefetchesDropped(), 2u);
}

TEST_F(HierarchyTest, PrefetchDroppedWhenMshrsFull)
{
    for (unsigned i = 0; i < 4; ++i)
        hier->access(0, line(10 + i), false, [](Tick) {});
    hier->prefetch(0, line(50));
    EXPECT_EQ(hier->prefetchesDropped(), 1u);
    EXPECT_EQ(mem.reads.size(), 4u);
}

TEST_F(HierarchyTest, PrefetchDoesNotOccupyCoreMshrs)
{
    hier->prefetch(0, line(5));
    EXPECT_EQ(hier->l1Outstanding(0), 0u);
}

TEST_F(HierarchyTest, FunctionalWarmupInstallsWithoutTraffic)
{
    hier->functionalAccess(0, line(7), false);
    EXPECT_TRUE(mem.reads.empty());
    auto r = hier->access(0, line(7), false, nullptr);
    EXPECT_EQ(r.outcome, CacheHierarchy::Outcome::L1Hit);
}

TEST_F(HierarchyTest, FunctionalPrefetchWarmsL2)
{
    hier->functionalPrefetch(0, line(8));
    auto r = hier->access(0, line(8), false, nullptr);
    EXPECT_EQ(r.outcome, CacheHierarchy::Outcome::L2Hit);
}

TEST_F(HierarchyTest, StatCountersTrack)
{
    hier->access(0, line(1), false, [](Tick) {});
    mem.completeAll(1);
    hier->access(0, line(1), false, nullptr);
    EXPECT_EQ(hier->l1Hits(0), 1u);
    EXPECT_GE(hier->l1Misses(0), 1u);
    EXPECT_EQ(hier->memReads(), 1u);
    hier->resetStats();
    EXPECT_EQ(hier->l1Hits(0), 0u);
    EXPECT_EQ(hier->memReads(), 0u);
}

} // namespace
} // namespace fbdp
