/**
 * @file
 * Property-based verification of the DRAM timing model.
 *
 * A random agent drives legal command sequences into a Dimm using
 * only the earliest*() queries, logging every command it applies.  An
 * independent verifier then re-checks the whole schedule against the
 * Table 2 constraints pairwise.  If the earliest*() bookkeeping ever
 * under-constrains a command, the verifier catches it.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/random.hh"
#include "dram/dimm.hh"

namespace fbdp {
namespace {

enum class Cmd { Act, Rd, Wr, Pre };

struct LogEntry
{
    Cmd cmd;
    unsigned bank;
    Tick at;
    unsigned nCas = 1;
    Tick dataEnd = 0;
};

/** Independent re-check of a command schedule. */
void
verifySchedule(const std::vector<LogEntry> &log, const DramTiming &t)
{
    // Per-bank state while replaying.
    struct BankState {
        Tick lastAct = 0;
        bool everAct = false;
        Tick lastPre = 0;
        bool everPre = false;
        Tick lastCasEnd = 0;      // end of last RD/WR burst window
        Tick minPreAfterRd = 0;   // lastRd + tRPD
        Tick minPreAfterWr = 0;   // lastWr + tWPD
        bool open = false;
    };
    std::map<unsigned, BankState> banks;
    Tick lastActAnyBank = 0;
    bool everActAnyBank = false;
    Tick lastWrDataEnd = 0;

    for (const auto &e : log) {
        BankState &b = banks[e.bank];
        switch (e.cmd) {
          case Cmd::Act:
            ASSERT_FALSE(b.open) << "ACT on open bank @" << e.at;
            if (b.everAct)
                ASSERT_GE(e.at, b.lastAct + t.tRC)
                    << "tRC violated @" << e.at;
            if (b.everPre)
                ASSERT_GE(e.at, b.lastPre + t.tRP)
                    << "tRP violated @" << e.at;
            if (everActAnyBank && lastActAnyBank != e.at)
                ASSERT_GE(e.at, lastActAnyBank + t.tRRD)
                    << "tRRD violated @" << e.at;
            b.lastAct = e.at;
            b.everAct = true;
            b.open = true;
            lastActAnyBank = e.at;
            everActAnyBank = true;
            break;
          case Cmd::Rd: {
            ASSERT_TRUE(b.open) << "RD on closed bank @" << e.at;
            ASSERT_GE(e.at, b.lastAct + t.tRCD)
                << "tRCD violated @" << e.at;
            ASSERT_GE(e.at, b.lastCasEnd)
                << "CAS overlap @" << e.at;
            ASSERT_GE(e.at, lastWrDataEnd + t.tWTR)
                << "tWTR violated @" << e.at;
            const Tick last_cas = e.at + (e.nCas - 1) * t.casGap();
            b.lastCasEnd = last_cas + t.casGap();
            b.minPreAfterRd = last_cas + t.tRPD;
            break;
          }
          case Cmd::Wr:
            ASSERT_TRUE(b.open) << "WR on closed bank @" << e.at;
            ASSERT_GE(e.at, b.lastAct + t.tRCD);
            ASSERT_GE(e.at, b.lastCasEnd);
            b.lastCasEnd = e.at + t.casGap();
            b.minPreAfterWr = e.at + t.tWPD;
            lastWrDataEnd = std::max(lastWrDataEnd, e.dataEnd);
            break;
          case Cmd::Pre:
            ASSERT_TRUE(b.open) << "PRE on closed bank @" << e.at;
            ASSERT_GE(e.at, b.lastAct + t.tRAS)
                << "tRAS violated @" << e.at;
            ASSERT_GE(e.at, b.minPreAfterRd)
                << "tRPD violated @" << e.at;
            ASSERT_GE(e.at, b.minPreAfterWr)
                << "tWPD violated @" << e.at;
            b.lastPre = e.at;
            b.everPre = true;
            b.open = false;
            break;
        }
    }
}

class TimingPropertyTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(TimingPropertyTest, RandomOpenPageAgent)
{
    DramTiming t = DramTiming::forDataRate(667);
    Dimm dimm(&t, 4);
    Rng rng(GetParam());
    std::vector<LogEntry> log;

    Tick now = 0;
    for (int step = 0; step < 4000; ++step) {
        now += rng.below(nsToTicks(12));
        const unsigned bank = static_cast<unsigned>(rng.below(4));
        const Bank &b = dimm.bank(bank);
        const unsigned choice =
            static_cast<unsigned>(rng.below(10));
        if (!b.rowOpen()) {
            // Closed: activate (or idle).
            if (choice < 7) {
                const Tick at = dimm.earliestAct(bank, now);
                dimm.activate(bank, at, rng.below(1000));
                log.push_back({Cmd::Act, bank, at, 1, 0});
            }
        } else if (choice < 4) {
            const Tick at = dimm.earliestRead(bank, now);
            const unsigned n = 1 + static_cast<unsigned>(
                rng.below(4));
            dimm.read(bank, at, n, false);
            log.push_back({Cmd::Rd, bank, at, n, 0});
        } else if (choice < 7) {
            const Tick at = dimm.earliestWrite(bank, now);
            // tWTR guard lives in earliestRead only; writes are
            // bounded by the bank CAS window.
            const Tick end = dimm.write(bank, at, false);
            log.push_back({Cmd::Wr, bank, at, 1, end});
        } else {
            const Tick at = dimm.earliestPrecharge(bank, now);
            dimm.precharge(bank, at);
            log.push_back({Cmd::Pre, bank, at, 1, 0});
        }
    }

    ASSERT_GT(log.size(), 1000u);
    verifySchedule(log, t);

    // Operation accounting agrees with the log.
    std::uint64_t acts = 0, rds = 0, wrs = 0;
    for (const auto &e : log) {
        acts += e.cmd == Cmd::Act ? 1 : 0;
        rds += e.cmd == Cmd::Rd ? e.nCas : 0;
        wrs += e.cmd == Cmd::Wr ? 1 : 0;
    }
    EXPECT_EQ(dimm.counts().actPre, acts);
    EXPECT_EQ(dimm.counts().rdCas, rds);
    EXPECT_EQ(dimm.counts().wrCas, wrs);
}

TEST_P(TimingPropertyTest, RandomClosePageAgent)
{
    DramTiming t = DramTiming::forDataRate(
        GetParam() % 2 ? 800 : 533);
    Dimm dimm(&t, 4);
    Rng rng(GetParam() * 7919);
    std::vector<LogEntry> log;

    Tick now = 0;
    for (int step = 0; step < 3000; ++step) {
        now += rng.below(nsToTicks(20));
        const unsigned bank = static_cast<unsigned>(rng.below(4));
        if (dimm.bank(bank).rowOpen())
            continue;  // its auto-pre is logged below as Pre
        const Tick act_at = dimm.earliestAct(bank, now);
        dimm.activate(bank, act_at, rng.below(1000));
        log.push_back({Cmd::Act, bank, act_at, 1, 0});

        const bool write = rng.chance(0.3);
        if (write) {
            const Tick cas_at = dimm.earliestWrite(bank, act_at
                                                   + t.tRCD);
            // Record the implied precharge of the auto-pre.
            const Tick pre_at = std::max(act_at + t.tRAS,
                                         cas_at + t.tWPD);
            const Tick end = dimm.write(bank, cas_at, true);
            log.push_back({Cmd::Wr, bank, cas_at, 1, end});
            log.push_back({Cmd::Pre, bank, pre_at, 1, 0});
        } else {
            const unsigned n = 1 + static_cast<unsigned>(
                rng.below(8));
            const Tick cas_at = dimm.earliestRead(bank, act_at
                                                  + t.tRCD);
            const Tick last_cas = cas_at + (n - 1) * t.casGap();
            const Tick pre_at = std::max(act_at + t.tRAS,
                                         last_cas + t.tRPD);
            dimm.read(bank, cas_at, n, true);
            log.push_back({Cmd::Rd, bank, cas_at, n, 0});
            log.push_back({Cmd::Pre, bank, pre_at, 1, 0});
        }
    }

    verifySchedule(log, t);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimingPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 17u,
                                           42u, 1234u));

} // namespace
} // namespace fbdp
