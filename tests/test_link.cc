/**
 * @file
 * Unit tests of the interconnect occupancy models: BusTracker and the
 * slotted CommandLink (FB-DIMM southbound / DDR2 command bus).
 */

#include <gtest/gtest.h>

#include "mc/link.hh"

namespace fbdp {
namespace {

TEST(BusTrackerTest, GrantsAtEarliestWhenIdle)
{
    BusTracker bus;
    EXPECT_EQ(bus.nextFree(1000), 1000u);
    EXPECT_EQ(bus.reserve(1000, 500), 1000u);
}

TEST(BusTrackerTest, QueuesBackToBack)
{
    BusTracker bus;
    EXPECT_EQ(bus.reserve(0, 100), 0u);
    EXPECT_EQ(bus.reserve(0, 100), 100u);
    EXPECT_EQ(bus.reserve(150, 100), 200u);
    EXPECT_EQ(bus.busyTicks(), 300u);
}

TEST(BusTrackerTest, IdleGapsAreNotReclaimed)
{
    BusTracker bus;
    bus.reserve(1000, 100);
    // A later request for an earlier time still waits (conservative).
    EXPECT_EQ(bus.reserve(0, 50), 1100u);
}

TEST(BusTrackerTest, ResetClears)
{
    BusTracker bus;
    bus.reserve(0, 1000);
    bus.reset();
    EXPECT_EQ(bus.reserve(0, 10), 0u);
    EXPECT_EQ(bus.busyTicks(), 10u);
}

class CommandLinkTest : public ::testing::Test
{
  protected:
    static constexpr Tick cycle = 3000;
    CommandLink fbd{cycle, 3};   // southbound
    CommandLink ddr2{cycle, 1};  // command bus
};

TEST_F(CommandLinkTest, ThreeSlotsPerFbdFrame)
{
    EXPECT_EQ(fbd.cmdSlotsFree(0), 3u);
    fbd.useCmdSlot(0);
    fbd.useCmdSlot(100);  // same frame
    EXPECT_EQ(fbd.cmdSlotsFree(0), 1u);
    fbd.useCmdSlot(2999);
    EXPECT_EQ(fbd.cmdSlotsFree(0), 0u);
    // Next frame is fresh.
    EXPECT_EQ(fbd.cmdSlotsFree(cycle), 3u);
}

TEST_F(CommandLinkTest, OneSlotPerDdr2Cycle)
{
    EXPECT_EQ(ddr2.cmdSlotsFree(0), 1u);
    ddr2.useCmdSlot(0);
    EXPECT_EQ(ddr2.cmdSlotsFree(0), 0u);
    EXPECT_EQ(ddr2.cmdSlotsFree(cycle), 1u);
}

TEST_F(CommandLinkTest, DataFrameLeavesOneCommandSlot)
{
    Tick start = fbd.reserveDataFrames(0, 4);
    EXPECT_EQ(start, 0u);
    for (unsigned f = 0; f < 4; ++f)
        EXPECT_EQ(fbd.cmdSlotsFree(f * cycle), 1u)
            << "frame " << f;
    EXPECT_EQ(fbd.framesWithData(), 4u);
}

TEST_F(CommandLinkTest, DataReservationSkipsBusyFrames)
{
    // Fill frame 1 with two commands: it cannot carry data.
    fbd.useCmdSlot(cycle);
    fbd.useCmdSlot(cycle);
    Tick start = fbd.reserveDataFrames(0, 2);
    // Frame 0 is free but frame 1 is not: the run must start at 2.
    EXPECT_EQ(start, 2 * cycle);
}

TEST_F(CommandLinkTest, DataFramesDoNotOverlap)
{
    Tick a = fbd.reserveDataFrames(0, 4);
    Tick b = fbd.reserveDataFrames(0, 4);
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b, 4 * cycle);
}

TEST_F(CommandLinkTest, ReservationAlignsUpToFrame)
{
    Tick start = fbd.reserveDataFrames(cycle + 1, 1);
    EXPECT_EQ(start, 2 * cycle);
}

TEST_F(CommandLinkTest, RetireKeepsFutureFrames)
{
    fbd.useCmdSlot(0);
    fbd.useCmdSlot(5 * cycle);
    fbd.retireBefore(3 * cycle);
    EXPECT_EQ(fbd.cmdSlotsFree(5 * cycle), 2u);
    EXPECT_EQ(fbd.commandsSent(), 2u);
}

TEST_F(CommandLinkTest, SlotOverflowPanics)
{
    ddr2.useCmdSlot(0);
    EXPECT_DEATH(ddr2.useCmdSlot(0), "overflow");
}

TEST_F(CommandLinkTest, FrameStartRoundsDown)
{
    EXPECT_EQ(fbd.frameStart(0), 0u);
    EXPECT_EQ(fbd.frameStart(2999), 0u);
    EXPECT_EQ(fbd.frameStart(3000), 3000u);
}

} // namespace
} // namespace fbdp
