/**
 * @file
 * DRAM auto-refresh tests (tREFI / tRFC): scheduling, bank blocking,
 * interaction with open rows and with AMB prefetching.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mc/address_map.hh"
#include "mc/controller.hh"
#include "sim/event_queue.hh"

namespace fbdp {
namespace {

class RefreshTest : public ::testing::Test
{
  protected:
    RefreshTest() : map(mapCfg())
    {
    }

    static AddressMapConfig
    mapCfg()
    {
        AddressMapConfig mc;
        mc.channels = 1;
        mc.dimmsPerChannel = 4;
        mc.banksPerDimm = 4;
        mc.regionLines = 4;
        mc.scheme = Interleave::Cacheline;
        return mc;
    }

    ControllerConfig
    cfgWithRefresh(bool on)
    {
        ControllerConfig c;
        c.fbd = true;
        c.refreshEnable = on;
        return c;
    }

    TransPtr
    makeRead(Addr addr, std::vector<Tick> *done)
    {
        auto t = makeTransaction();
        t->cmd = MemCmd::Read;
        t->lineAddr = lineAlign(addr);
        t->coord = map.map(addr);
        t->created = eq.now();
        t->onComplete = [done](Tick w) { done->push_back(w); };
        return t;
    }

    EventQueue eq;
    AddressMap map;
};

TEST_F(RefreshTest, RefreshesHappenUnderSteadyTraffic)
{
    MemController mc("mc", &eq, cfgWithRefresh(true));
    std::vector<Tick> done;
    // Keep the controller awake for a bit over two tREFI windows.
    const DramTiming t = DramTiming::forDataRate(667);
    const Tick horizon = 2 * t.tREFI + t.tREFI / 2;
    Addr a = 0;
    while (eq.now() < horizon) {
        mc.push(makeRead(a, &done));
        a += lineBytes;
        eq.run();
    }
    // Every DIMM refreshed roughly horizon/tREFI times.
    const std::uint64_t per_dimm = mc.dramOps().refresh / 4;
    EXPECT_GE(per_dimm, 2u);
    EXPECT_LE(per_dimm, 3u);
}

TEST_F(RefreshTest, NoRefreshWhenDisabled)
{
    MemController mc("mc", &eq, cfgWithRefresh(false));
    std::vector<Tick> done;
    const DramTiming t = DramTiming::forDataRate(667);
    Addr a = 0;
    while (eq.now() < 2 * t.tREFI) {
        mc.push(makeRead(a, &done));
        a += lineBytes;
        eq.run();
    }
    EXPECT_EQ(mc.dramOps().refresh, 0u);
}

TEST_F(RefreshTest, RefreshDelaysCollidingRead)
{
    MemController mc("mc", &eq, cfgWithRefresh(true));
    std::vector<Tick> done;
    const DramTiming t = DramTiming::forDataRate(667);
    // Idle until just past DIMM 0's first refresh point, then read
    // from DIMM 0: the activate must wait out tRFC.
    Event idle([] {});
    eq.schedule(&idle, t.tREFI / 4 + 1000);
    eq.run();
    const Tick t0 = eq.now();
    mc.push(makeRead(0, &done));  // line 0 -> DIMM 0
    eq.run();
    ASSERT_EQ(done.size(), 1u);
    EXPECT_GT(done[0] - t0, nsToTicks(63))
        << "read must absorb the refresh window";
    EXPECT_LE(done[0] - t0, nsToTicks(63) + t.tRFC + nsToTicks(10));
    EXPECT_GE(mc.dramOps().refresh, 1u);
}

TEST_F(RefreshTest, IdleCatchUpCountsMissedIntervals)
{
    MemController mc("mc", &eq, cfgWithRefresh(true));
    std::vector<Tick> done;
    const DramTiming t = DramTiming::forDataRate(667);
    Event idle([] {});
    eq.schedule(&idle, 5 * t.tREFI);
    eq.run();
    mc.push(makeRead(0, &done));
    eq.run();
    // DIMM 0 owed ~5 refreshes from the idle period.
    EXPECT_GE(mc.dramOps().refresh, 4u);
}

TEST_F(RefreshTest, WorksWithOpenPagePolicy)
{
    AddressMapConfig pcfg = mapCfg();
    pcfg.scheme = Interleave::Page;
    AddressMap pmap(pcfg);
    ControllerConfig cfg = cfgWithRefresh(true);
    cfg.openPage = true;
    MemController mc("mc", &eq, cfg);
    std::vector<Tick> done;
    const DramTiming t = DramTiming::forDataRate(667);
    // Row-hit traffic to one page across several refresh windows; the
    // refresh logic must break the row-hit chain rather than starve.
    Addr a = 0;
    unsigned sent = 0;
    while (eq.now() < 2 * t.tREFI) {
        auto tr = makeTransaction();
        tr->cmd = MemCmd::Read;
        tr->lineAddr = lineAlign(a);
        tr->coord = pmap.map(a);
        tr->onComplete = [&done](Tick w) { done.push_back(w); };
        mc.push(std::move(tr));
        ++sent;
        a = (a + lineBytes) % 8192;  // stay inside one DRAM page
        eq.run();
    }
    EXPECT_EQ(done.size(), sent);
    EXPECT_GE(mc.dramOps().refresh, 4u) << "all DIMMs refreshed";
}

TEST_F(RefreshTest, ApSurvivesRefresh)
{
    AddressMapConfig acfg = mapCfg();
    acfg.scheme = Interleave::MultiCacheline;
    AddressMap amap(acfg);
    ControllerConfig cfg = cfgWithRefresh(true);
    cfg.apEnable = true;
    MemController mc("mc", &eq, cfg);
    std::vector<Tick> done;
    const DramTiming t = DramTiming::forDataRate(667);
    Addr a = 0;
    while (eq.now() < 2 * t.tREFI) {
        auto tr = makeTransaction();
        tr->cmd = MemCmd::Read;
        tr->lineAddr = lineAlign(a);
        tr->coord = amap.map(a);
        tr->onComplete = [&done](Tick w) { done.push_back(w); };
        mc.push(std::move(tr));
        a += lineBytes;
        eq.run();
    }
    EXPECT_GT(mc.ambHits(), 0u);
    EXPECT_GT(mc.dramOps().refresh, 0u);
    EXPECT_NEAR(mc.prefetchTable()->coverage(), 0.75, 0.01);
}

} // namespace
} // namespace fbdp
