/**
 * @file
 * Cross-module integration tests: paper-level properties that only
 * hold when all the pieces cooperate — latency orderings between the
 * three machines, AP coverage bounds, power accounting consistency,
 * bandwidth conservation, sensitivity orderings.
 */

#include <gtest/gtest.h>

#include "power/power_model.hh"
#include "system/runner.hh"
#include "system/system.hh"
#include "workload/mixes.hh"

namespace fbdp {
namespace {

SystemConfig
quick(SystemConfig c)
{
    c.warmupInsts = 20'000;
    c.measureInsts = 120'000;
    return c;
}

RunResult
run(const SystemConfig &c, const char *mix)
{
    return runMix(quick(c), mixByName(mix));
}

TEST(IntegrationTest, IdleLatencyOrderingApLtDdr2LtFbd)
{
    // Light workload: observed latencies sit near the idle values,
    // so AP < DDR2 < FBD (33 < 57 < 63 ns plus queueing).
    auto ap = run(SystemConfig::fbdAp(), "1C-parser");
    auto dd = run(SystemConfig::ddr2(), "1C-parser");
    auto fb = run(SystemConfig::fbdBase(), "1C-parser");
    EXPECT_LT(ap.avgReadLatencyNs, dd.avgReadLatencyNs);
    EXPECT_LT(dd.avgReadLatencyNs, fb.avgReadLatencyNs);
}

TEST(IntegrationTest, ApNeverLosesOnAnyGroupAverage)
{
    // Paper: "no workload has negative speedup".  Checked on one mix
    // from each group (full sweep lives in bench/fig07).
    for (const char *mix : {"1C-swim", "2C-1", "4C-2", "8C-3"}) {
        auto base = run(SystemConfig::fbdBase(), mix);
        auto ap = run(SystemConfig::fbdAp(), mix);
        EXPECT_GT(ap.ipcSum(), base.ipcSum() * 0.995) << mix;
    }
}

TEST(IntegrationTest, CoverageWithinTheoreticalBound)
{
    for (unsigned k : {2u, 4u, 8u}) {
        SystemConfig c = quick(SystemConfig::fbdAp());
        c.regionLines = k;
        auto r = runMix(c, mixByName("1C-swim"));
        const double bound = (k - 1.0) / k;
        EXPECT_LE(r.coverage, bound + 1e-9) << "K=" << k;
        EXPECT_GT(r.coverage, 0.0);
    }
}

TEST(IntegrationTest, LargerKRaisesCoverageLowersEfficiency)
{
    // The paper observes this trade-off under multiprogrammed
    // pressure (Fig. 8); at eight cores the dead-prefetch cost of
    // K=8 is unambiguous.
    SystemConfig c2 = quick(SystemConfig::fbdAp());
    c2.regionLines = 2;
    SystemConfig c8 = quick(SystemConfig::fbdAp());
    c8.regionLines = 8;
    auto r2 = runMix(c2, mixByName("8C-1"));
    auto r8 = runMix(c8, mixByName("8C-1"));
    EXPECT_GT(r8.coverage, r2.coverage);
    EXPECT_LT(r8.efficiency, r2.efficiency);
}

TEST(IntegrationTest, ApReducesActivationsRaisesColumnAccesses)
{
    auto base = run(SystemConfig::fbdBase(), "2C-1");
    auto ap = run(SystemConfig::fbdAp(), "2C-1");
    const double act_per_line_base =
        static_cast<double>(base.ops.actPre)
        / static_cast<double>(base.reads + base.writes);
    const double act_per_line_ap =
        static_cast<double>(ap.ops.actPre)
        / static_cast<double>(ap.reads + ap.writes);
    EXPECT_LT(act_per_line_ap, act_per_line_base);
    const double cas_per_line_base =
        static_cast<double>(base.ops.cas())
        / static_cast<double>(base.reads + base.writes);
    const double cas_per_line_ap =
        static_cast<double>(ap.ops.cas())
        / static_cast<double>(ap.reads + ap.writes);
    EXPECT_GT(cas_per_line_ap, cas_per_line_base);
}

TEST(IntegrationTest, ClosePageOpCountsAreConsistent)
{
    // Without AP, close page: exactly one ACT/PRE and one CAS per
    // memory transaction.
    auto r = run(SystemConfig::fbdBase(), "1C-gap");
    EXPECT_EQ(r.ops.actPre, r.ops.cas());
    // Completions lag arrivals across the window edge slightly.
    const double lines = static_cast<double>(r.reads + r.writes);
    EXPECT_NEAR(static_cast<double>(r.ops.cas()), lines,
                lines * 0.02);
}

TEST(IntegrationTest, BandwidthConservation)
{
    // Utilized bandwidth equals 64 B per served transaction over the
    // window.
    auto r = run(SystemConfig::fbdBase(), "4C-1");
    const double seconds = static_cast<double>(r.measuredTicks)
        * 1e-12;
    const double expect = static_cast<double>(r.reads + r.writes)
        * lineBytes / 1e9 / seconds;
    EXPECT_NEAR(r.bandwidthGBs, expect, expect * 0.01);
}

TEST(IntegrationTest, SwPrefetchingHelpsFbd)
{
    SystemConfig no_sp = quick(SystemConfig::fbdBase());
    no_sp.swPrefetch = false;
    auto off = runMix(no_sp, mixByName("1C-swim"));
    auto on = run(SystemConfig::fbdBase(), "1C-swim");
    EXPECT_GT(on.ipcSum(), off.ipcSum());
}

TEST(IntegrationTest, MoreChannelsNeverHurt)
{
    SystemConfig one = quick(SystemConfig::fbdBase());
    one.logicChannels = 1;
    SystemConfig four = quick(SystemConfig::fbdBase());
    four.logicChannels = 4;
    auto r1 = runMix(one, mixByName("4C-1"));
    auto r4 = runMix(four, mixByName("4C-1"));
    EXPECT_GT(r4.ipcSum(), r1.ipcSum() * 0.98);
}

TEST(IntegrationTest, HigherDataRateNeverHurts)
{
    SystemConfig slow = quick(SystemConfig::fbdBase());
    slow.dataRate = 533;
    SystemConfig fast = quick(SystemConfig::fbdBase());
    fast.dataRate = 800;
    auto rs = runMix(slow, mixByName("4C-1"));
    auto rf = runMix(fast, mixByName("4C-1"));
    EXPECT_GT(rf.ipcSum(), rs.ipcSum() * 0.98);
}

TEST(IntegrationTest, ApflSitsBetweenFbdAndAp)
{
    SystemConfig fl = quick(SystemConfig::fbdAp());
    fl.apFullLatency = true;
    auto base = run(SystemConfig::fbdBase(), "2C-2");
    auto apfl = runMix(fl, mixByName("2C-2"));
    auto ap = run(SystemConfig::fbdAp(), "2C-2");
    EXPECT_GE(apfl.ipcSum(), base.ipcSum() * 0.99);
    EXPECT_GE(ap.ipcSum(), apfl.ipcSum() * 0.99);
}

TEST(IntegrationTest, PowerSavingMaterialisesOnStreamingMix)
{
    PowerModel pm;
    auto base = run(SystemConfig::fbdBase(), "1C-swim");
    auto ap = run(SystemConfig::fbdAp(), "1C-swim");
    const double rel = pm.relativeDynamicEnergy(
        ap.ops, ap.totalInsts(), base.ops, base.totalInsts());
    EXPECT_LT(rel, 1.0) << "AP must save DRAM energy on streams";
    EXPECT_GT(rel, 0.4);
}

TEST(IntegrationTest, VrlChangesLatencyNotCorrectness)
{
    SystemConfig v = quick(SystemConfig::fbdBase());
    v.vrl = true;
    auto rv = runMix(v, mixByName("1C-lucas"));
    auto r = run(SystemConfig::fbdBase(), "1C-lucas");
    EXPECT_LT(rv.avgReadLatencyNs, r.avgReadLatencyNs);
    EXPECT_GT(rv.ipcSum(), r.ipcSum() * 0.99);
}

TEST(IntegrationTest, EightDimmChannelsWork)
{
    SystemConfig c = quick(SystemConfig::fbdAp());
    c.dimmsPerChannel = 8;
    auto r = runMix(c, mixByName("2C-3"));
    EXPECT_GT(r.ipcSum(), 0.0);
    EXPECT_GT(r.coverage, 0.0);
}

TEST(IntegrationTest, MeasurementWindowIsCleanAcrossPhases)
{
    // Stats must reflect only the measured phase: a run with twice
    // the measure window roughly doubles reads, not more.
    SystemConfig a = quick(SystemConfig::fbdBase());
    SystemConfig b = quick(SystemConfig::fbdBase());
    b.measureInsts = 240'000;
    auto ra = runMix(a, mixByName("1C-applu"));
    auto rb = runMix(b, mixByName("1C-applu"));
    const double ratio = static_cast<double>(rb.reads)
        / static_cast<double>(ra.reads);
    EXPECT_NEAR(ratio, 2.0, 0.4);
}

} // namespace
} // namespace fbdp
