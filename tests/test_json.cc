/**
 * @file
 * Losslessness of the JSON layer: encodeNumber() output must parse
 * back to the exact same value for every number the simulator emits —
 * 64-bit counters beyond 2^53, non-finite metrics, and doubles in
 * their shortest round-tripping form.  The cross-run ledger re-reads
 * its own records, so any rounding here silently corrupts trends.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

#include "common/json.hh"

using namespace fbdp;

namespace {

/** Encode @p v as the sole member of an object and parse it back. */
json::ValuePtr
roundTrip(const std::string &encoded)
{
    const auto pr = json::parse("{\"v\": " + encoded + "}");
    EXPECT_TRUE(pr.ok()) << pr.error << " for " << encoded;
    return pr.ok() ? pr.value->get("v") : nullptr;
}

TEST(JsonLosslessTest, NonFiniteLiterals)
{
    const json::ValuePtr nan =
        roundTrip(json::encodeNumber(std::nan("")));
    ASSERT_NE(nan, nullptr);
    ASSERT_TRUE(nan->isNumber());
    EXPECT_TRUE(std::isnan(nan->asNumber()));

    const double inf = std::numeric_limits<double>::infinity();
    const json::ValuePtr pos = roundTrip(json::encodeNumber(inf));
    ASSERT_NE(pos, nullptr);
    EXPECT_EQ(pos->asNumber(), inf);

    const json::ValuePtr neg = roundTrip(json::encodeNumber(-inf));
    ASSERT_NE(neg, nullptr);
    EXPECT_EQ(neg->asNumber(), -inf);
}

TEST(JsonLosslessTest, NonFiniteSpelling)
{
    EXPECT_EQ(json::encodeNumber(std::nan("")), "NaN");
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_EQ(json::encodeNumber(inf), "Infinity");
    EXPECT_EQ(json::encodeNumber(-inf), "-Infinity");
}

TEST(JsonLosslessTest, Int64Extremes)
{
    const std::int64_t min = std::numeric_limits<std::int64_t>::min();
    const std::int64_t max = std::numeric_limits<std::int64_t>::max();

    const json::ValuePtr vMin = roundTrip(json::encodeNumber(min));
    ASSERT_NE(vMin, nullptr);
    ASSERT_TRUE(vMin->isInteger());
    EXPECT_EQ(vMin->asInt64(), min);

    const json::ValuePtr vMax = roundTrip(json::encodeNumber(max));
    ASSERT_NE(vMax, nullptr);
    ASSERT_TRUE(vMax->isInteger());
    EXPECT_EQ(vMax->asInt64(), max);
}

TEST(JsonLosslessTest, Uint64Max)
{
    const std::uint64_t max =
        std::numeric_limits<std::uint64_t>::max();
    EXPECT_EQ(json::encodeNumber(max), "18446744073709551615");
    const json::ValuePtr v = roundTrip(json::encodeNumber(max));
    ASSERT_NE(v, nullptr);
    ASSERT_TRUE(v->isInteger());
    EXPECT_EQ(v->asUint64(), max);
}

TEST(JsonLosslessTest, CounterBeyondDoublePrecision)
{
    // 2^53 + 1 is the first integer a double cannot represent; the
    // integer sidecar must carry it exactly while the double view
    // rounds.
    const std::uint64_t v = (1ULL << 53) + 1;
    const json::ValuePtr p = roundTrip(json::encodeNumber(v));
    ASSERT_NE(p, nullptr);
    ASSERT_TRUE(p->isInteger());
    EXPECT_EQ(p->asUint64(), v);
    EXPECT_NE(static_cast<std::uint64_t>(p->asNumber()), v);
}

TEST(JsonLosslessTest, DoubleShortestForm)
{
    // Friendly values stay friendly...
    EXPECT_EQ(json::encodeNumber(0.25), "0.25");
    EXPECT_EQ(json::encodeNumber(2.0), "2");
    // ...and awkward ones still round-trip bit for bit.
    for (const double d : {0.1, 1.0 / 3.0, 6.02214076e23,
                           5e-324, 1.7976931348623157e308}) {
        const json::ValuePtr p = roundTrip(json::encodeNumber(d));
        ASSERT_NE(p, nullptr);
        EXPECT_EQ(p->asNumber(), d) << json::encodeNumber(d);
    }
}

TEST(JsonLosslessTest, ParserKeepsExactIntegerTokens)
{
    const auto pr = json::parse(
        R"({"big": 9007199254740993, "neg": -9223372036854775808})");
    ASSERT_TRUE(pr.ok()) << pr.error;
    ASSERT_TRUE(pr.value->get("big")->isInteger());
    EXPECT_EQ(pr.value->get("big")->asUint64(),
              9007199254740993ULL);
    ASSERT_TRUE(pr.value->get("neg")->isInteger());
    EXPECT_EQ(pr.value->get("neg")->asInt64(),
              std::numeric_limits<std::int64_t>::min());
}

TEST(JsonLosslessTest, FractionalNumberIsNotInteger)
{
    const auto pr = json::parse(R"({"v": 1.5, "e": 1e2})");
    ASSERT_TRUE(pr.ok()) << pr.error;
    EXPECT_FALSE(pr.value->get("v")->isInteger());
    EXPECT_DOUBLE_EQ(pr.value->get("v")->asNumber(), 1.5);
}

} // namespace
