/**
 * @file
 * Run-manifest provenance: the config digest must be stable for equal
 * configurations, sensitive to anything that changes simulation
 * results, and blind to observer/execution knobs; the rendered forms
 * (JSON member, CSV comments, build-info line) must stay parseable
 * and strippable.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdio>
#include <string>

#include "common/json.hh"
#include "system/manifest.hh"

using namespace fbdp;

namespace {

SystemConfig
base()
{
    SystemConfig c = SystemConfig::fbdAp();
    c.benchmarks = {"swim", "gap"};
    return c;
}

TEST(ManifestTest, DigestIsDeterministic)
{
    const RunManifest a = RunManifest::capture(base());
    const RunManifest b = RunManifest::capture(base());
    EXPECT_EQ(a.configDigest, b.configDigest);
    EXPECT_EQ(a.configDigest.size(), 16u);
    EXPECT_EQ(a.configDigest.find_first_not_of("0123456789abcdef"),
              std::string::npos);
}

TEST(ManifestTest, DigestSeesSimulationRelevantFields)
{
    const std::string ref =
        RunManifest::capture(base()).configDigest;

    SystemConfig c = base();
    c.regionLines = 8;
    EXPECT_NE(RunManifest::capture(c).configDigest, ref);

    c = base();
    c.measureInsts += 1;
    EXPECT_NE(RunManifest::capture(c).configDigest, ref);

    c = base();
    c.seed += 1;
    EXPECT_NE(RunManifest::capture(c).configDigest, ref);

    c = base();
    c.benchmarks = {"gap", "swim"};  // assignment order matters
    EXPECT_NE(RunManifest::capture(c).configDigest, ref);
}

TEST(ManifestTest, DigestIgnoresObserverAndExecutionKnobs)
{
    // Results are bit-identical across these knobs by the observer
    // invariant, so they must share one trend line in the ledger.
    const std::string ref =
        RunManifest::capture(base()).configDigest;

    SystemConfig c = base();
    c.attribution = true;
    EXPECT_EQ(RunManifest::capture(c).configDigest, ref);

    c = base();
    c.profileKernel = true;
    EXPECT_EQ(RunManifest::capture(c).configDigest, ref);

    c = base();
    c.threads = 4;
    EXPECT_EQ(RunManifest::capture(c).configDigest, ref);
}

TEST(ManifestTest, JsonFormIsOneParseableLine)
{
    const RunManifest m = RunManifest::capture(base());
    const std::string j = m.json();
    EXPECT_EQ(j.find('\n'), std::string::npos);

    const auto pr = json::parse(j);
    ASSERT_TRUE(pr.ok()) << pr.error;
    EXPECT_EQ(pr.value->get("tool")->asString(), "fbdp");
    EXPECT_EQ(pr.value->get("config_digest")->asString(),
              m.configDigest);
    EXPECT_EQ(pr.value->get("version")->asString(), m.toolVersion);
    EXPECT_EQ(pr.value->get("git_sha")->asString(), m.gitSha);
    EXPECT_EQ(pr.value->get("seed")->asUint64(), m.seed);
    EXPECT_EQ(pr.value->get("threads")->asUint64(), m.threads);
    ASSERT_NE(pr.value->get("started_utc"), nullptr);
    ASSERT_NE(pr.value->get("hostname"), nullptr);
    ASSERT_NE(pr.value->get("build_type"), nullptr);
    ASSERT_NE(pr.value->get("compiler"), nullptr);
    ASSERT_NE(pr.value->get("git_dirty"), nullptr);
    EXPECT_TRUE(pr.value->get("git_dirty")->isBool());
}

TEST(ManifestTest, CsvCommentsAreStrippable)
{
    const RunManifest m = RunManifest::capture(base());
    const std::string block = m.csvComment();
    ASSERT_FALSE(block.empty());
    // Every line starts with the '#' marker a CSV consumer strips.
    std::size_t start = 0;
    unsigned lines = 0;
    while (start < block.size()) {
        EXPECT_EQ(block.compare(start, 17, "# fbdp-manifest: "), 0)
            << block.substr(start, 20);
        const std::size_t nl = block.find('\n', start);
        ASSERT_NE(nl, std::string::npos) << "unterminated line";
        start = nl + 1;
        ++lines;
    }
    EXPECT_GE(lines, 2u);
    EXPECT_NE(block.find(m.configDigest), std::string::npos);
}

TEST(ManifestTest, BuildInfoNamesTheBuild)
{
    const std::string info = RunManifest::buildInfo();
    EXPECT_EQ(info.compare(0, 5, "fbdp "), 0);
    const RunManifest m = RunManifest::capture(base());
    EXPECT_NE(info.find(m.toolVersion), std::string::npos);
    EXPECT_NE(info.find(m.gitSha), std::string::npos);
    EXPECT_NE(info.find(m.buildType), std::string::npos);
}

TEST(ManifestTest, Fnv1a64KnownVectors)
{
    // Standard FNV-1a test vectors.
    EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
    EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
    EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(ManifestTest, CanonicalStringIsSelfConsistent)
{
    const std::string s = canonicalConfigString(base());
    EXPECT_FALSE(s.empty());
    EXPECT_EQ(s, canonicalConfigString(base()));
    // The digest is exactly the FNV of the canonical form.
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(fnv1a64(s)));
    EXPECT_EQ(RunManifest::capture(base()).configDigest, buf);
}

} // namespace
