/**
 * @file
 * Memory-controller tests for the AMB-prefetching path: the 33 ns hit
 * latency, region group fetches, in-flight hits, write invalidation,
 * APFL mode, and the DRAM operation accounting the power model uses.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/random.hh"
#include "mc/address_map.hh"
#include "mc/controller.hh"
#include "sim/event_queue.hh"

namespace fbdp {
namespace {

class ControllerApTest : public ::testing::Test
{
  protected:
    ControllerApTest()
        : map(mapCfg())
    {
    }

    static AddressMapConfig
    mapCfg(unsigned k = 4)
    {
        AddressMapConfig mc;
        mc.channels = 1;
        mc.dimmsPerChannel = 4;
        mc.banksPerDimm = 4;
        mc.regionLines = k;
        mc.scheme = Interleave::MultiCacheline;
        return mc;
    }

    ControllerConfig
    apCfg(unsigned k = 4, unsigned entries = 64, unsigned ways = 0)
    {
        ControllerConfig c;
        c.fbd = true;
        c.apEnable = true;
        c.regionLines = k;
        c.ambEntries = entries;
        c.ambWays = ways;
        return c;
    }

    TransPtr
    makeRead(Addr addr, std::vector<Tick> *done = nullptr)
    {
        auto t = makeTransaction();
        t->cmd = MemCmd::Read;
        t->lineAddr = lineAlign(addr);
        t->coord = map.map(addr);
        t->created = eq.now();
        if (done)
            t->onComplete = [done](Tick w) { done->push_back(w); };
        return t;
    }

    TransPtr
    makeWrite(Addr addr)
    {
        auto t = makeTransaction();
        t->cmd = MemCmd::Write;
        t->lineAddr = lineAlign(addr);
        t->coord = map.map(addr);
        t->created = eq.now();
        return t;
    }

    EventQueue eq;
    AddressMap map;
};

TEST_F(ControllerApTest, FirstReadGroupFetches)
{
    MemController mc("mc", &eq, apCfg());
    std::vector<Tick> done;
    mc.push(makeRead(0, &done));
    eq.run();
    ASSERT_EQ(done.size(), 1u);
    // The demanded line still completes at the 63 ns idle latency;
    // the prefetched neighbours ride behind it.
    EXPECT_EQ(done[0], nsToTicks(63));
    EXPECT_EQ(mc.dramOps().actPre, 1u);
    EXPECT_EQ(mc.dramOps().rdCas, 4u) << "one ACT, four CASes";
    ASSERT_NE(mc.prefetchTable(), nullptr);
    EXPECT_EQ(mc.prefetchTable()->prefetchesIssued(), 3u);
}

TEST_F(ControllerApTest, SecondReadHitsAt33ns)
{
    MemController mc("mc", &eq, apCfg());
    std::vector<Tick> done;
    mc.push(makeRead(0, &done));
    eq.run();
    const Tick t0 = eq.now();
    mc.push(makeRead(lineBytes, &done));  // neighbour: AMB hit
    eq.run();
    ASSERT_EQ(done.size(), 2u);
    // 12 controller + 3 command + 6 data + 12 AMB = 33 ns.
    EXPECT_EQ(done[1] - t0, nsToTicks(33));
    EXPECT_EQ(mc.ambHits(), 1u);
    EXPECT_EQ(mc.dramOps().actPre, 1u) << "hit touches no bank";
    EXPECT_EQ(mc.dramOps().rdCas, 4u);
}

TEST_F(ControllerApTest, ApflHitPaysFullLatencyButNoBankWork)
{
    ControllerConfig cfg = apCfg();
    cfg.apFullLatency = true;
    MemController mc("mc", &eq, cfg);
    std::vector<Tick> done;
    mc.push(makeRead(0, &done));
    eq.run();
    const Tick t0 = eq.now();
    mc.push(makeRead(lineBytes, &done));
    eq.run();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(done[1] - t0, nsToTicks(63)) << "APFL: miss latency";
    EXPECT_EQ(mc.dramOps().actPre, 1u) << "still no DRAM activity";
}

TEST_F(ControllerApTest, HitOnInFlightPrefetchWaitsForFill)
{
    MemController mc("mc", &eq, apCfg());
    std::vector<Tick> done;
    // Push the miss and the neighbour back to back: the neighbour
    // must coalesce onto the in-flight region fetch, not start a
    // second one.
    mc.push(makeRead(0, &done));
    mc.push(makeRead(lineBytes, &done));
    eq.run();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(mc.dramOps().actPre, 1u) << "one activation total";
    EXPECT_EQ(mc.dramOps().rdCas, 4u);
    EXPECT_EQ(mc.ambHits(), 1u);
    // The neighbour's data leaves the AMB only after its pipelined
    // CAS: later than the demanded line, earlier than a full access.
    EXPECT_GT(done[1], done[0]);
    EXPECT_LT(done[1], done[0] + nsToTicks(30));
}

TEST_F(ControllerApTest, AllRegionLinesHitAfterGroupFetch)
{
    MemController mc("mc", &eq, apCfg());
    std::vector<Tick> done;
    mc.push(makeRead(2 * lineBytes, &done));  // demand mid-region
    eq.run();
    for (unsigned i = 0; i < 4; ++i) {
        if (i == 2)
            continue;
        mc.push(makeRead(static_cast<Addr>(i) * lineBytes, &done));
        eq.run();
    }
    EXPECT_EQ(done.size(), 4u);
    EXPECT_EQ(mc.ambHits(), 3u);
    EXPECT_EQ(mc.prefetchTable()->coverage(), 0.75);
    EXPECT_EQ(mc.prefetchTable()->efficiency(), 1.0);
}

TEST_F(ControllerApTest, WriteInvalidatesPrefetchedLine)
{
    MemController mc("mc", &eq, apCfg());
    std::vector<Tick> done;
    mc.push(makeRead(0, &done));
    eq.run();
    mc.push(makeWrite(lineBytes));
    eq.run();
    EXPECT_EQ(mc.prefetchTable()->writeInvalidations(), 1u);
    const Tick t0 = eq.now();
    mc.push(makeRead(lineBytes, &done));
    eq.run();
    // The stale copy is gone: this is a fresh group fetch, not a hit.
    EXPECT_EQ(mc.ambHits(), 0u);
    EXPECT_GT(done.back() - t0, nsToTicks(33));
}

TEST_F(ControllerApTest, RegionSizeTwo)
{
    AddressMap map2(mapCfg(2));
    MemController mc("mc", &eq, apCfg(2));
    std::vector<Tick> done;
    auto rd = [&](Addr a) {
        auto t = makeTransaction();
        t->cmd = MemCmd::Read;
        t->lineAddr = lineAlign(a);
        t->coord = map2.map(a);
        t->onComplete = [&done](Tick w) { done.push_back(w); };
        mc.push(std::move(t));
        eq.run();
    };
    rd(0);
    rd(lineBytes);
    EXPECT_EQ(mc.dramOps().rdCas, 2u);
    EXPECT_EQ(mc.ambHits(), 1u);
}

TEST_F(ControllerApTest, CapacityPressureEvictsOldPrefetches)
{
    // Stream 40 more regions through DIMM 0's 64-line cache: the
    // prefetches of the very first region must be gone afterwards.
    MemController mc("mc", &eq, apCfg(4, 64, 1));
    std::vector<Tick> done;
    mc.push(makeRead(0, &done));
    eq.run();
    for (unsigned j = 1; j <= 40; ++j) {
        // Groups 4j land on DIMM 0 (4 DIMMs, one channel).
        mc.push(makeRead(static_cast<Addr>(16 * j) * lineBytes,
                         &done));
        eq.run();
    }
    const Tick t0 = eq.now();
    mc.push(makeRead(lineBytes, &done));  // evicted long ago
    eq.run();
    EXPECT_GT(done.back() - t0, nsToTicks(33));
}

TEST_F(ControllerApTest, LowerAssociativityNeverBeatsFull)
{
    // Sweep the same access pattern across associativities: hits can
    // only go down as conflicts appear.
    auto hits_with = [&](unsigned ways) {
        EventQueue local_eq;
        MemController mc("mc", &local_eq, apCfg(4, 64, ways));
        std::vector<Tick> done;
        Rng rng(99);
        for (unsigned i = 0; i < 400; ++i) {
            Addr a = rng.below(2048) * lineBytes;
            auto t = makeTransaction();
            t->cmd = MemCmd::Read;
            t->lineAddr = lineAlign(a);
            t->coord = map.map(a);
            t->onComplete = [&done](Tick w) { done.push_back(w); };
            mc.push(std::move(t));
            local_eq.run();
        }
        return mc.ambHits();
    };
    const std::uint64_t full = hits_with(0);
    const std::uint64_t four = hits_with(4);
    const std::uint64_t direct = hits_with(1);
    EXPECT_LE(direct, four + 5);
    EXPECT_LE(four, full + 5);
}

TEST_F(ControllerApTest, CoverageBoundHoldsUnderStreaming)
{
    MemController mc("mc", &eq, apCfg());
    std::vector<Tick> done;
    for (unsigned i = 0; i < 256; ++i) {
        mc.push(makeRead(static_cast<Addr>(i) * lineBytes, &done));
        eq.run();
    }
    EXPECT_EQ(done.size(), 256u);
    // Sequential sweep: exactly one miss per 4-line region.
    EXPECT_DOUBLE_EQ(mc.prefetchTable()->coverage(), 0.75);
    EXPECT_EQ(mc.dramOps().actPre, 64u);
    EXPECT_EQ(mc.dramOps().rdCas, 256u);
}

TEST_F(ControllerApTest, SwPrefetchFlagRespectsConfig)
{
    ControllerConfig cfg = apCfg();
    cfg.apOnSwPrefetch = false;
    MemController mc("mc", &eq, cfg);
    std::vector<Tick> done;
    auto t = makeRead(0, &done);
    t->swPrefetch = true;
    mc.push(std::move(t));
    eq.run();
    // Not an AP read: one CAS, nothing prefetched.
    EXPECT_EQ(mc.dramOps().rdCas, 1u);
    EXPECT_EQ(mc.prefetchTable()->prefetchesIssued(), 0u);
}

TEST_F(ControllerApTest, PrefetchFillsDoNotTouchChannelBytes)
{
    MemController mc("mc", &eq, apCfg());
    std::vector<Tick> done;
    mc.push(makeRead(0, &done));
    eq.run();
    // Only the demanded 64 bytes crossed the FB-DIMM channel.
    EXPECT_EQ(mc.channelBytes(), lineBytes);
}

} // namespace
} // namespace fbdp
