/**
 * @file
 * The JSON reader and the run-diff engine behind fbdp-report: parsing
 * (values, escapes, errors), flattening (dotted paths, name-keyed
 * arrays), and the comparison policy (tolerance, direction, filters,
 * strict mode).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>

#include "common/json.hh"
#include "system/rundiff.hh"

using namespace fbdp;

// ---------------------------------------------------------------- //
// JSON parser                                                      //
// ---------------------------------------------------------------- //

TEST(JsonParseTest, ScalarsAndNesting)
{
    const auto pr = json::parse(
        R"({"a": 1.5, "b": "hi", "c": [true, false, null],
            "d": {"e": -2e3}})");
    ASSERT_TRUE(pr.ok()) << pr.error;
    const json::ValuePtr v = pr.value;
    EXPECT_DOUBLE_EQ(v->get("a")->asNumber(), 1.5);
    EXPECT_EQ(v->get("b")->asString(), "hi");
    const auto &arr = v->get("c")->asArray();
    ASSERT_EQ(arr.size(), 3u);
    EXPECT_TRUE(arr[0]->asBool());
    EXPECT_FALSE(arr[1]->asBool());
    EXPECT_TRUE(arr[2]->isNull());
    EXPECT_DOUBLE_EQ(v->get("d")->get("e")->asNumber(), -2000.0);
    EXPECT_EQ(v->get("missing"), nullptr);
}

TEST(JsonParseTest, StringEscapes)
{
    const auto pr = json::parse(R"({"s": "a\"b\\c\n\tA"})");
    ASSERT_TRUE(pr.ok()) << pr.error;
    EXPECT_EQ(pr.value->get("s")->asString(), "a\"b\\c\n\tA");
}

TEST(JsonParseTest, DuplicateKeysLaterWins)
{
    const auto pr = json::parse(R"({"k": 1, "k": 2})");
    ASSERT_TRUE(pr.ok()) << pr.error;
    EXPECT_DOUBLE_EQ(pr.value->get("k")->asNumber(), 2.0);
}

TEST(JsonParseTest, ErrorsCarryLineNumbers)
{
    const auto pr = json::parse("{\n  \"a\": 1,\n  \"b\": }\n");
    ASSERT_FALSE(pr.ok());
    EXPECT_NE(pr.error.find("line 3"), std::string::npos) << pr.error;
}

TEST(JsonParseTest, RejectsTrailingGarbageAndBadLiterals)
{
    EXPECT_FALSE(json::parse("{} extra").ok());
    EXPECT_FALSE(json::parse("truthy").ok());
    EXPECT_FALSE(json::parse("[1, 2").ok());
    EXPECT_FALSE(json::parse("\"open").ok());
    EXPECT_FALSE(json::parse("12..5").ok());
    EXPECT_FALSE(json::parse("").ok());
}

TEST(JsonParseTest, MissingFileReportsIoError)
{
    const auto pr = json::parseFile("/nonexistent/no.json");
    ASSERT_FALSE(pr.ok());
    EXPECT_NE(pr.error.find("cannot open"), std::string::npos);
}

// ---------------------------------------------------------------- //
// Flattening                                                       //
// ---------------------------------------------------------------- //

TEST(FlattenTest, DottedPathsAndIndexedArrays)
{
    const auto pr = json::parse(
        R"({"run": {"ipc": 1.25, "mix": "2C-1"},
            "list": [10, 20]})");
    ASSERT_TRUE(pr.ok());
    const auto flat = flattenJson(pr.value);

    ASSERT_TRUE(flat.count("run.ipc"));
    EXPECT_TRUE(flat.at("run.ipc").numeric);
    EXPECT_DOUBLE_EQ(flat.at("run.ipc").num, 1.25);
    EXPECT_EQ(flat.at("run.mix").text, "2C-1");
    EXPECT_DOUBLE_EQ(flat.at("list.0").num, 10.0);
    EXPECT_DOUBLE_EQ(flat.at("list.1").num, 20.0);
}

TEST(FlattenTest, NamedArrayElementsKeyByName)
{
    // google-benchmark layout: reordering named entries must not
    // change the paths.
    const auto pr = json::parse(
        R"({"benchmarks": [
              {"name": "BM_A", "items_per_second": 100},
              {"name": "BM_B", "items_per_second": 200}]})");
    ASSERT_TRUE(pr.ok());
    const auto flat = flattenJson(pr.value);
    EXPECT_DOUBLE_EQ(
        flat.at("benchmarks.BM_A.items_per_second").num, 100.0);
    EXPECT_DOUBLE_EQ(
        flat.at("benchmarks.BM_B.items_per_second").num, 200.0);
}

// ---------------------------------------------------------------- //
// Diffing                                                          //
// ---------------------------------------------------------------- //

namespace {

std::map<std::string, FlatEntry>
flatOf(const std::string &text)
{
    const auto pr = json::parse(text);
    EXPECT_TRUE(pr.ok()) << pr.error;
    return flattenJson(pr.value);
}

} // anonymous namespace

TEST(DiffTest, IdenticalRunsPassAtZeroTolerance)
{
    const auto a = flatOf(R"({"x": 1.0, "s": "same", "n": 0})");
    DiffOptions opt;
    opt.tolerance = 0.0;
    opt.strict = true;
    const DiffReport r = diffRuns(a, a, opt);
    EXPECT_EQ(r.compared, 3u);
    EXPECT_TRUE(r.changed.empty());
    EXPECT_FALSE(r.failed());
}

TEST(DiffTest, TwoSidedToleranceGatesBothDirections)
{
    const auto a = flatOf(R"({"v": 100})");
    DiffOptions opt;
    opt.tolerance = 0.10;

    EXPECT_FALSE(diffRuns(a, flatOf(R"({"v": 109})"), opt).failed());
    EXPECT_FALSE(diffRuns(a, flatOf(R"({"v": 91})"), opt).failed());
    EXPECT_TRUE(diffRuns(a, flatOf(R"({"v": 111})"), opt).failed());
    EXPECT_TRUE(diffRuns(a, flatOf(R"({"v": 89})"), opt).failed());
}

TEST(DiffTest, HigherBetterOnlyFailsOnDrops)
{
    const auto a = flatOf(R"({"rate": 100})");
    DiffOptions opt;
    opt.tolerance = 0.10;
    opt.direction = DiffDirection::HigherBetter;

    // A big improvement is reported but is not a regression.
    const DiffReport up = diffRuns(a, flatOf(R"({"rate": 150})"), opt);
    EXPECT_EQ(up.changed.size(), 1u);
    EXPECT_FALSE(up.failed());

    const DiffReport dn = diffRuns(a, flatOf(R"({"rate": 80})"), opt);
    EXPECT_TRUE(dn.failed());
}

TEST(DiffTest, LowerBetterOnlyFailsOnRises)
{
    const auto a = flatOf(R"({"latency": 100})");
    DiffOptions opt;
    opt.tolerance = 0.10;
    opt.direction = DiffDirection::LowerBetter;

    EXPECT_FALSE(
        diffRuns(a, flatOf(R"({"latency": 50})"), opt).failed());
    EXPECT_TRUE(
        diffRuns(a, flatOf(R"({"latency": 120})"), opt).failed());
}

TEST(DiffTest, PerKeyToleranceOverridesDefault)
{
    const auto a = flatOf(R"({"noisy": 100, "stable": 100})");
    const auto b = flatOf(R"({"noisy": 140, "stable": 104})");
    DiffOptions opt;
    opt.tolerance = 0.02;
    opt.keyTolerances["noisy"] = 0.50;
    const DiffReport r = diffRuns(a, b, opt);
    ASSERT_EQ(r.changed.size(), 1u);
    EXPECT_EQ(r.changed[0].key, "stable");
    EXPECT_TRUE(r.failed());
}

TEST(DiffTest, OnlyAndIgnoreFilterPaths)
{
    const auto a =
        flatOf(R"({"kernel": {"events_per_sec": 1e6}, "run": {"ipc": 1}})");
    const auto b =
        flatOf(R"({"kernel": {"events_per_sec": 5e6}, "run": {"ipc": 2}})");

    DiffOptions only;
    only.tolerance = 0.0;
    only.only = {"run."};
    const DiffReport ro = diffRuns(a, b, only);
    EXPECT_EQ(ro.compared, 1u);
    EXPECT_TRUE(ro.failed()); // run.ipc changed

    DiffOptions ign;
    ign.tolerance = 0.0;
    ign.ignore = {"events_per_sec", "ipc"};
    EXPECT_FALSE(diffRuns(a, b, ign).failed());
}

TEST(DiffTest, MissingKeysOnlyFailUnderStrict)
{
    const auto a = flatOf(R"({"x": 1, "gone": 2})");
    const auto b = flatOf(R"({"x": 1, "added": 3})");
    DiffOptions opt;
    const DiffReport lax = diffRuns(a, b, opt);
    EXPECT_EQ(lax.onlyA, std::vector<std::string>{"gone"});
    EXPECT_EQ(lax.onlyB, std::vector<std::string>{"added"});
    EXPECT_FALSE(lax.failed());

    opt.strict = true;
    EXPECT_TRUE(diffRuns(a, b, opt).failed());
}

TEST(DiffTest, TextAndKindMismatchesAlwaysFail)
{
    DiffOptions opt; // generous numeric tolerance is irrelevant
    opt.tolerance = 10.0;
    EXPECT_TRUE(diffRuns(flatOf(R"({"m": "2C-1"})"),
                         flatOf(R"({"m": "2C-2"})"), opt).failed());
    // A number on one side and a string on the other is a mismatch.
    EXPECT_TRUE(diffRuns(flatOf(R"({"m": 1})"),
                         flatOf(R"({"m": "1x"})"), opt).failed());
}

TEST(DiffTest, ZeroBaselineDoesNotDivideByZero)
{
    const auto a = flatOf(R"({"v": 0})");
    const auto b = flatOf(R"({"v": 0.5})");
    DiffOptions opt;
    opt.tolerance = 0.10;
    const DiffReport r = diffRuns(a, b, opt);
    EXPECT_TRUE(r.failed());
    EXPECT_TRUE(std::isfinite(r.changed[0].relDelta));
}
