/**
 * @file
 * Power/performance exploration of the AMB-prefetching design space:
 * sweeps the region size and AMB-cache organisation for one workload
 * and reports throughput together with normalised DRAM energy — the
 * balance Section 5.5 of the paper discusses ("the memory mapping
 * policy and the prefetch buffer configuration need to be carefully
 * considered").
 *
 *   ./example_power_explorer [mix-name] [insts]
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "power/power_model.hh"
#include "system/metrics.hh"
#include "system/runner.hh"
#include "workload/mixes.hh"

int
main(int argc, char **argv)
{
    using namespace fbdp;

    const std::string mix_name = argc > 1 ? argv[1] : "4C-1";
    const std::uint64_t insts = argc > 2
        ? static_cast<std::uint64_t>(std::atoll(argv[2]))
        : 300'000;

    const WorkloadMix &mix = mixByName(mix_name);

    auto prep = [&](SystemConfig c) {
        c.warmupInsts = insts / 4;
        c.measureInsts = insts;
        applyInstsFromEnv(c);
        return c;
    };

    PowerModel pm;
    RunResult base = runMix(prep(SystemConfig::fbdBase()), mix);

    std::cout << "fbdp power/performance explorer on " << mix.name
              << "\nbaseline: FB-DIMM without prefetching, IPC sum "
              << fmtD(base.ipcSum()) << "\n\n";

    TextTable t({"K", "entries", "ways", "speedup", "rel. energy",
                 "coverage", "efficiency"});
    for (unsigned k : {2u, 4u, 8u}) {
        for (unsigned entries : {32u, 64u, 128u}) {
            for (unsigned ways : {1u, 4u, 0u}) {
                SystemConfig c = prep(SystemConfig::fbdAp());
                c.regionLines = k;
                c.ambPrefetch.entries = entries;
                c.ambPrefetch.ways = ways;
                RunResult r = runMix(c, mix);
                const double rel = pm.relativeDynamicEnergy(
                    r.ops, r.totalInsts(), base.ops,
                    base.totalInsts());
                t.addRow({std::to_string(k),
                          std::to_string(entries),
                          ways ? std::to_string(ways) : "full",
                          fmtPct(r.ipcSum() / base.ipcSum() - 1.0),
                          fmtD(rel),
                          fmtPct(r.coverage), fmtPct(r.efficiency)});
            }
        }
    }
    t.print(std::cout);

    std::cout << "\nA good design point keeps the speedup while "
                 "holding relative energy\nbelow 1.0; the paper "
                 "settles on K=4 with a 64-entry four-way buffer.\n";
    return 0;
}
