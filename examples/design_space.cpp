/**
 * @file
 * Design-space sweep to CSV or JSON: the three machines x a workload
 * group, streamed for external plotting.  Demonstrates the Sweep
 * batch driver, its worker pool and the typed results schema.
 *
 *   ./example_design_space [cores] [insts] [--json]
 *       [--progress] [--progress-out F] [--manifest] [--ledger F]
 *       > results.csv
 *
 * Parallelism comes from FBDP_JOBS (e.g. FBDP_JOBS=8); row order and
 * bytes are identical whatever the job count.  --progress draws a
 * live per-cell status line with an ETA on stderr; --progress-out
 * streams the same events as JSONL for machines.  --manifest embeds
 * the grid manifest in the CSV/JSON output (FBDP_MANIFEST=1 works
 * too), and --ledger appends one record per cell to a cross-run
 * ledger (or set FBDP_LEDGER).
 */

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>

#include "system/progress.hh"
#include "system/runner.hh"
#include "system/sweep.hh"

int
main(int argc, char **argv)
{
    using namespace fbdp;

    bool json = false, progress = false, manifest = false;
    std::string progressPath, ledgerPath;
    std::vector<const char *> pos;
    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            std::cerr << argv[i] << " needs an argument\n";
            return nullptr;
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--json")) {
            json = true;
        } else if (!std::strcmp(argv[i], "--progress")) {
            progress = true;
        } else if (!std::strcmp(argv[i], "--progress-out")) {
            const char *p = need(i);
            if (!p)
                return 2;
            progressPath = p;
        } else if (!std::strcmp(argv[i], "--manifest")) {
            manifest = true;
        } else if (!std::strcmp(argv[i], "--ledger")) {
            const char *p = need(i);
            if (!p)
                return 2;
            ledgerPath = p;
        } else {
            pos.push_back(argv[i]);
        }
    }

    const unsigned cores = pos.size() > 0
        ? static_cast<unsigned>(std::atoi(pos[0]))
        : 2;
    const std::uint64_t insts = pos.size() > 1
        ? static_cast<std::uint64_t>(std::atoll(pos[1]))
        : 200'000;

    auto prep = [&](SystemConfig c) {
        c.warmupInsts = insts / 4;
        c.measureInsts = insts;
        applyInstsFromEnv(c);
        return c;
    };

    Sweep sweep;
    sweep.addConfig("ddr2", prep(SystemConfig::ddr2()))
        .addConfig("fbd", prep(SystemConfig::fbdBase()))
        .addConfig("fbd-ap", prep(SystemConfig::fbdAp()));

    // A few AP variants for the design-space flavour.
    for (unsigned k : {2u, 8u}) {
        SystemConfig c = prep(SystemConfig::fbdAp());
        c.regionLines = k;
        sweep.addConfig("fbd-ap-k" + std::to_string(k), c);
    }

    sweep.addMixGroup(cores);
    if (manifest)
        sweep.manifest(true);
    if (!ledgerPath.empty())
        sweep.ledger(ledgerPath);

    // Progress sinks observe completion order only; rows and bytes on
    // stdout stay identical with or without them.
    ProgressMux mux;
    std::unique_ptr<TerminalProgress> term;
    std::unique_ptr<JsonlProgress> jsonl;
    std::ofstream progressFile;
    RunManifest grid;
    if (progress) {
        term = std::make_unique<TerminalProgress>(std::cerr);
        mux.add(term.get());
    }
    if (!progressPath.empty()) {
        progressFile.open(progressPath);
        if (!progressFile) {
            std::cerr << "cannot open " << progressPath
                      << " for writing\n";
            return 2;
        }
        grid = sweep.gridManifest();
        jsonl = std::make_unique<JsonlProgress>(
            progressFile, sweep.manifestEnabled() ? &grid : nullptr);
        mux.add(jsonl.get());
    }
    if (term || jsonl)
        sweep.progress(&mux);

    if (json)
        sweep.runJson(std::cout);
    else
        sweep.runCsv(std::cout);
    return 0;
}
