/**
 * @file
 * Design-space sweep to CSV or JSON: the three machines x a workload
 * group, streamed for external plotting.  Demonstrates the Sweep
 * batch driver, its worker pool and the typed results schema.
 *
 *   ./example_design_space [cores] [insts] [--json] > results.csv
 *
 * Parallelism comes from FBDP_JOBS (e.g. FBDP_JOBS=8); row order and
 * bytes are identical whatever the job count.
 */

#include <cstdlib>
#include <cstring>
#include <iostream>

#include "system/runner.hh"
#include "system/sweep.hh"

int
main(int argc, char **argv)
{
    using namespace fbdp;

    bool json = false;
    std::vector<const char *> pos;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--json"))
            json = true;
        else
            pos.push_back(argv[i]);
    }

    const unsigned cores = pos.size() > 0
        ? static_cast<unsigned>(std::atoi(pos[0]))
        : 2;
    const std::uint64_t insts = pos.size() > 1
        ? static_cast<std::uint64_t>(std::atoll(pos[1]))
        : 200'000;

    auto prep = [&](SystemConfig c) {
        c.warmupInsts = insts / 4;
        c.measureInsts = insts;
        applyInstsFromEnv(c);
        return c;
    };

    Sweep sweep;
    sweep.addConfig("ddr2", prep(SystemConfig::ddr2()))
        .addConfig("fbd", prep(SystemConfig::fbdBase()))
        .addConfig("fbd-ap", prep(SystemConfig::fbdAp()));

    // A few AP variants for the design-space flavour.
    for (unsigned k : {2u, 8u}) {
        SystemConfig c = prep(SystemConfig::fbdAp());
        c.regionLines = k;
        sweep.addConfig("fbd-ap-k" + std::to_string(k), c);
    }

    sweep.addMixGroup(cores);
    if (json)
        sweep.runJson(std::cout);
    else
        sweep.runCsv(std::cout);
    return 0;
}
