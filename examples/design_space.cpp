/**
 * @file
 * Design-space sweep to CSV: the three machines x a workload group,
 * streamed as CSV for external plotting.  Demonstrates the Sweep
 * batch driver.
 *
 *   ./example_design_space [cores] [insts] > results.csv
 */

#include <cstdlib>
#include <iostream>

#include "system/runner.hh"
#include "system/sweep.hh"

int
main(int argc, char **argv)
{
    using namespace fbdp;

    const unsigned cores = argc > 1
        ? static_cast<unsigned>(std::atoi(argv[1]))
        : 2;
    const std::uint64_t insts = argc > 2
        ? static_cast<std::uint64_t>(std::atoll(argv[2]))
        : 200'000;

    auto prep = [&](SystemConfig c) {
        c.warmupInsts = insts / 4;
        c.measureInsts = insts;
        applyInstsFromEnv(c);
        return c;
    };

    Sweep sweep;
    sweep.addConfig("ddr2", prep(SystemConfig::ddr2()))
        .addConfig("fbd", prep(SystemConfig::fbdBase()))
        .addConfig("fbd-ap", prep(SystemConfig::fbdAp()));

    // A few AP variants for the design-space flavour.
    for (unsigned k : {2u, 8u}) {
        SystemConfig c = prep(SystemConfig::fbdAp());
        c.regionLines = k;
        sweep.addConfig("fbd-ap-k" + std::to_string(k), c);
    }

    sweep.addMixGroup(cores);
    sweep.runCsv(std::cout);
    return 0;
}
