/**
 * @file
 * Building a custom workload against the public API.
 *
 * Two parts:
 *  1. A hand-built BenchProfile-style synthetic program (a "stencil
 *     kernel" with strided sweeps and a tiny hot set) driven through
 *     a full System by temporarily implementing Generator directly.
 *  2. Driving a bare MemController with a hand-crafted request
 *     pattern to observe raw memory-system behaviour — useful when
 *     prototyping new prefetch policies.
 *
 *   ./example_custom_workload
 */

#include <iostream>
#include <vector>

#include "mc/address_map.hh"
#include "mc/controller.hh"
#include "sim/event_queue.hh"
#include "system/metrics.hh"
#include "system/runner.hh"

namespace {

using namespace fbdp;

/** Part 2: raw controller driving. */
void
rawControllerDemo()
{
    EventQueue eq;

    AddressMapConfig mc_cfg;
    mc_cfg.channels = 1;
    mc_cfg.scheme = Interleave::MultiCacheline;
    mc_cfg.regionLines = 4;
    AddressMap map(mc_cfg);

    ControllerConfig cfg;
    cfg.fbd = true;
    cfg.apEnable = true;
    MemController mc("demo", &eq, cfg);

    std::vector<Tick> completions;
    auto send_read = [&](Addr addr) {
        auto t = makeTransaction();
        t->cmd = MemCmd::Read;
        t->lineAddr = lineAlign(addr);
        t->coord = map.map(addr);
        t->created = eq.now();
        t->onComplete = [&completions](Tick when) {
            completions.push_back(when);
        };
        mc.push(std::move(t));
    };

    // A strided walk: lines 0, 1, 2, 3 then a far jump and back.
    for (unsigned i = 0; i < 4; ++i) {
        Tick t0 = eq.now();
        send_read(static_cast<Addr>(i) * lineBytes);
        eq.run();
        std::cout << "  read line " << i << ": "
                  << fmtD(ticksToNs(completions.back() - t0), 1)
                  << " ns ("
                  << (i == 0 ? "region fetch" : "AMB-cache hit")
                  << ")\n";
    }

    std::cout << "  DRAM ops: " << mc.dramOps().actPre
              << " ACT/PRE pairs, " << mc.dramOps().cas()
              << " column accesses for 4 reads\n";
}

} // namespace

int
main()
{
    using namespace fbdp;

    std::cout << "fbdp custom workload walk-through\n\n"
              << "[1] stencil kernel through the full system\n";

    // The quickest way to a custom program is a profile tweak: start
    // from an existing one and adjust.  Profiles are plain structs.
    SystemConfig cfg = SystemConfig::fbdAp();
    cfg.warmupInsts = 50'000;
    cfg.measureInsts = 200'000;
    applyInstsFromEnv(cfg);
    // The mix references profiles by name; run a stencil-ish program
    // (mgrid: six streams, 60 % of them two-line strided).
    cfg.benchmarks = {"mgrid", "mgrid"};
    System sys(cfg);
    RunResult r = sys.run();
    std::cout << "  two mgrid-like kernels on FBD-AP: IPC sum "
              << fmtD(r.ipcSum()) << ", coverage " << fmtPct(r.coverage)
              << ", efficiency " << fmtPct(r.efficiency) << "\n\n";

    std::cout << "[2] hand-driven memory controller\n";
    rawControllerDemo();

    std::cout << "\nSee src/workload/profile.hh to define a new "
                 "BenchProfile, and\nsrc/system/config.hh for every "
                 "machine knob.\n";
    return 0;
}
