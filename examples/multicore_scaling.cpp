/**
 * @file
 * Multi-core scaling study: how one workload family behaves as the
 * machine grows from one to eight cores, on all three memory systems.
 *
 * This is the scenario the paper's introduction motivates: multi-core
 * processors multiply off-chip traffic, conventional DDR2 runs out of
 * channel capacity, FB-DIMM scales further, and AMB prefetching
 * recovers both latency and bank bandwidth.
 *
 *   ./example_multicore_scaling [insts]
 */

#include <cstdlib>
#include <iostream>

#include "system/metrics.hh"
#include "system/runner.hh"
#include "workload/mixes.hh"

int
main(int argc, char **argv)
{
    using namespace fbdp;

    const std::uint64_t insts = argc > 1
        ? static_cast<std::uint64_t>(std::atoll(argv[1]))
        : 300'000;

    auto prep = [&](SystemConfig c) {
        c.warmupInsts = insts / 4;
        c.measureInsts = insts;
        applyInstsFromEnv(c);
        return c;
    };

    // One representative mix per core count, built from the same
    // benchmark family (Table 3 column 1).
    const char *mixes[] = {"1C-swim", "2C-1", "4C-1", "8C-2"};

    std::cout << "fbdp multicore scaling study (" << insts
              << " measured instructions per run)\n\n";

    TextTable t({"mix", "machine", "IPC sum", "GB/s", "lat ns",
                 "AMB coverage"});
    for (const char *name : mixes) {
        const WorkloadMix &mix = mixByName(name);
        RunResult d = runMix(prep(SystemConfig::ddr2()), mix);
        RunResult f = runMix(prep(SystemConfig::fbdBase()), mix);
        RunResult a = runMix(prep(SystemConfig::fbdAp()), mix);
        t.addRow({name, "DDR2", fmtD(d.ipcSum()),
                  fmtD(d.bandwidthGBs, 2),
                  fmtD(d.avgReadLatencyNs, 1), "-"});
        t.addRow({"", "FBD", fmtD(f.ipcSum()),
                  fmtD(f.bandwidthGBs, 2),
                  fmtD(f.avgReadLatencyNs, 1), "-"});
        t.addRow({"", "FBD-AP", fmtD(a.ipcSum()),
                  fmtD(a.bandwidthGBs, 2),
                  fmtD(a.avgReadLatencyNs, 1), fmtPct(a.coverage)});
    }
    t.print(std::cout);

    std::cout << "\nReading the table: FB-DIMM trades idle latency "
                 "for channel capacity, so it\nfalls slightly behind "
                 "DDR2 at low core counts and pulls ahead as cores\n"
                 "multiply; AMB prefetching then serves about half "
                 "the reads from the AMB\ncache at 33 ns instead of "
                 "63 ns while halving DRAM activations.\n";
    return 0;
}
