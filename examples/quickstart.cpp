/**
 * @file
 * Quickstart: build the paper's three machines (DDR2, FB-DIMM, and
 * FB-DIMM with AMB prefetching), run one memory-intensive workload on
 * each, and print the headline comparison.
 *
 *   ./example_quickstart [mix-name] [insts]
 *
 * Default mix: 2C-1 (wupwise + swim), 400k measured instructions.
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "system/metrics.hh"
#include "system/runner.hh"
#include "workload/mixes.hh"

int
main(int argc, char **argv)
{
    using namespace fbdp;

    const std::string mix_name = argc > 1 ? argv[1] : "2C-1";
    const std::uint64_t insts = argc > 2
        ? static_cast<std::uint64_t>(std::atoll(argv[2]))
        : 400'000;

    const WorkloadMix &mix = mixByName(mix_name);

    auto prep = [&](SystemConfig c) {
        c.warmupInsts = insts / 4;
        c.measureInsts = insts;
        applyInstsFromEnv(c);
        return c;
    };

    std::cout << "fbdp quickstart: workload " << mix.name << " (";
    for (size_t i = 0; i < mix.benches.size(); ++i)
        std::cout << (i ? ", " : "") << mix.benches[i];
    std::cout << ")\n\n";

    RunResult ddr2 = runMix(prep(SystemConfig::ddr2()), mix);
    RunResult fbd = runMix(prep(SystemConfig::fbdBase()), mix);
    RunResult ap = runMix(prep(SystemConfig::fbdAp()), mix);

    TextTable t({"machine", "IPC (sum)", "read lat (ns)",
                 "bandwidth (GB/s)", "AMB-hit coverage"});
    t.addRow({"DDR2", fmtD(ddr2.ipcSum()), fmtD(ddr2.avgReadLatencyNs, 1),
              fmtD(ddr2.bandwidthGBs, 2), "-"});
    t.addRow({"FB-DIMM", fmtD(fbd.ipcSum()),
              fmtD(fbd.avgReadLatencyNs, 1),
              fmtD(fbd.bandwidthGBs, 2), "-"});
    t.addRow({"FB-DIMM + AMB prefetch", fmtD(ap.ipcSum()),
              fmtD(ap.avgReadLatencyNs, 1), fmtD(ap.bandwidthGBs, 2),
              fmtPct(ap.coverage)});
    t.print(std::cout);

    std::cout << "\nAMB prefetching speedup over FB-DIMM: "
              << fmtPct(ap.ipcSum() / fbd.ipcSum() - 1.0) << "\n";
    return 0;
}
