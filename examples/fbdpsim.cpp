/**
 * @file
 * fbdpsim — the command-line front end to the simulator.
 *
 *   ./example_fbdpsim [options]
 *
 * Options:
 *   --mix NAME        workload mix (default 2C-1; see Table 3 names,
 *                     or 1C-<bench> for single programs)
 *   --machine M       ddr2 | fbd | fbd-ap        (default fbd-ap)
 *   --channels N      logic channels             (default 2)
 *   --dimms N         DIMMs per channel          (default 4)
 *   --rate MT         533 | 667 | 800            (default 667)
 *   --k N             prefetch region lines      (default 4)
 *   --entries N       AMB-cache lines            (default 64)
 *   --ways N          associativity, 0 = full    (default 0)
 *   --interleave I    line | multiline | page    (default by machine)
 *   --insts N         measured instructions      (default 400000)
 *   --warmup N        timed warm-up instructions (default insts/4)
 *   --seed N          workload seed              (default 1)
 *   --vrl             enable variable read latency
 *   --no-sp           disable software prefetching
 *   --no-refresh      disable DRAM auto-refresh
 *   --apfl            AMB prefetch with full latency (Fig. 9 mode)
 *   --profile         append an event-kernel profile (events/sec,
 *                     simulated-insts/sec, queue + pool counters)
 */

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "power/power_model.hh"
#include "system/metrics.hh"
#include "system/runner.hh"
#include "workload/mixes.hh"

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::cerr << "usage: " << argv0
              << " [--mix NAME] [--machine ddr2|fbd|fbd-ap] ...\n"
                 "see the header of examples/fbdpsim.cpp for the full "
                 "option list\n";
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace fbdp;

    std::string mix_name = "2C-1";
    std::string machine = "fbd-ap";
    std::string interleave;
    SystemConfig cfg = SystemConfig::fbdAp();
    std::uint64_t insts = 400'000;
    std::uint64_t warmup = 0;
    bool vrl = false, no_sp = false, no_refresh = false,
         apfl = false, verbose = false, profile = false;
    unsigned channels = 2, dimms = 4, rate = 667, k = 4,
             entries = 64, ways = 0;
    std::uint64_t seed = 1;

    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(argv[0]);
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (!std::strcmp(a, "--mix"))
            mix_name = need(i);
        else if (!std::strcmp(a, "--machine"))
            machine = need(i);
        else if (!std::strcmp(a, "--channels"))
            channels = static_cast<unsigned>(std::atoi(need(i)));
        else if (!std::strcmp(a, "--dimms"))
            dimms = static_cast<unsigned>(std::atoi(need(i)));
        else if (!std::strcmp(a, "--rate"))
            rate = static_cast<unsigned>(std::atoi(need(i)));
        else if (!std::strcmp(a, "--k"))
            k = static_cast<unsigned>(std::atoi(need(i)));
        else if (!std::strcmp(a, "--entries"))
            entries = static_cast<unsigned>(std::atoi(need(i)));
        else if (!std::strcmp(a, "--ways"))
            ways = static_cast<unsigned>(std::atoi(need(i)));
        else if (!std::strcmp(a, "--interleave"))
            interleave = need(i);
        else if (!std::strcmp(a, "--insts"))
            insts = static_cast<std::uint64_t>(std::atoll(need(i)));
        else if (!std::strcmp(a, "--warmup"))
            warmup = static_cast<std::uint64_t>(std::atoll(need(i)));
        else if (!std::strcmp(a, "--seed"))
            seed = static_cast<std::uint64_t>(std::atoll(need(i)));
        else if (!std::strcmp(a, "--vrl"))
            vrl = true;
        else if (!std::strcmp(a, "--no-sp"))
            no_sp = true;
        else if (!std::strcmp(a, "--no-refresh"))
            no_refresh = true;
        else if (!std::strcmp(a, "--apfl"))
            apfl = true;
        else if (!std::strcmp(a, "--verbose"))
            verbose = true;
        else if (!std::strcmp(a, "--profile"))
            profile = true;
        else
            usage(argv[0]);
    }

    if (machine == "ddr2")
        cfg = SystemConfig::ddr2();
    else if (machine == "fbd")
        cfg = SystemConfig::fbdBase();
    else if (machine == "fbd-ap")
        cfg = SystemConfig::fbdAp();
    else
        usage(argv[0]);

    if (!interleave.empty()) {
        if (interleave == "line")
            cfg.scheme = Interleave::Cacheline;
        else if (interleave == "multiline")
            cfg.scheme = Interleave::MultiCacheline;
        else if (interleave == "page")
            cfg.scheme = Interleave::Page;
        else
            usage(argv[0]);
    }

    cfg.logicChannels = channels;
    cfg.dimmsPerChannel = dimms;
    cfg.dataRate = rate;
    cfg.regionLines = k;
    cfg.ambEntries = entries;
    cfg.ambWays = ways;
    cfg.vrl = vrl;
    cfg.swPrefetch = !no_sp;
    cfg.refreshEnable = !no_refresh;
    cfg.apFullLatency = apfl;
    cfg.measureInsts = insts;
    cfg.warmupInsts = warmup ? warmup : insts / 4;
    cfg.seed = seed;
    applyInstsFromEnv(cfg);

    const WorkloadMix &mix = mixByName(mix_name);
    cfg.benchmarks = mix.benches;
    System sys(cfg);
    RunResult r = sys.run();

    std::cout << "fbdpsim: " << machine << " / " << mix.name << " / "
              << channels << " logic channels @ " << rate
              << " MT/s\n\n";

    TextTable per_core({"core", "benchmark", "IPC", "insts"});
    for (size_t i = 0; i < r.ipc.size(); ++i) {
        per_core.addRow({std::to_string(i), mix.benches[i],
                         fmtD(r.ipc[i]),
                         std::to_string(r.insts[i])});
    }
    per_core.print(std::cout);

    std::cout << "\n";
    TextTable t({"metric", "value"});
    t.addRow({"IPC sum", fmtD(r.ipcSum())});
    t.addRow({"sim time (us)",
              fmtD(static_cast<double>(r.measuredTicks) * 1e-6, 1)});
    t.addRow({"avg read latency (ns)", fmtD(r.avgReadLatencyNs, 1)});
    t.addRow({"utilized bandwidth (GB/s)", fmtD(r.bandwidthGBs, 2)});
    t.addRow({"memory reads", std::to_string(r.reads)});
    t.addRow({"memory writes", std::to_string(r.writes)});
    t.addRow({"ACT/PRE pairs", std::to_string(r.ops.actPre)});
    t.addRow({"column accesses", std::to_string(r.ops.cas())});
    t.addRow({"refresh commands", std::to_string(r.ops.refresh)});
    if (cfg.apEnable) {
        t.addRow({"AMB-cache hits", std::to_string(r.ambHits)});
        t.addRow({"prefetch coverage", fmtPct(r.coverage)});
        t.addRow({"prefetch efficiency", fmtPct(r.efficiency)});
    }
    t.addRow({"L2 hits", std::to_string(r.l2Hits)});
    t.addRow({"L2 misses", std::to_string(r.l2Misses)});
    t.addRow({"sw prefetches", std::to_string(r.swPrefetchesSent)});
    t.print(std::cout);

    if (profile) {
        const KernelProfile &k = r.kernel;
        std::cout << "\n";
        TextTable p({"kernel profile", "value"});
        p.addRow({"host time, event phases (ms)",
                  fmtD(k.hostEventSeconds * 1e3, 1)});
        p.addRow({"events dispatched",
                  std::to_string(k.eventsDispatched)});
        p.addRow({"events/sec", fmtD(k.eventsPerSec() / 1e6, 2) + "M"});
        p.addRow({"simulated insts (run total)",
                  std::to_string(r.runInsts)});
        p.addRow({"simulated insts/sec",
                  fmtD(r.instsPerHostSec() / 1e6, 2) + "M"});
        p.addRow({"queue schedules", std::to_string(k.schedules)});
        p.addRow({"queue reschedules",
                  std::to_string(k.reschedules)});
        p.addRow({"queue deschedules",
                  std::to_string(k.deschedules)});
        p.addRow({"peak queue depth",
                  std::to_string(k.peakQueueDepth)});
        p.addRow({"pool acquires", std::to_string(k.poolAcquires)});
        p.addRow({"pool reuses", std::to_string(k.poolReuses)});
        p.addRow({"pool high water",
                  std::to_string(k.poolHighWater)});
        p.addRow({"pool capacity", std::to_string(k.poolCapacity)});
        p.print(std::cout);
    }

    if (verbose) {
        std::cout << "\n";
        sys.report(std::cout);
    }
    return 0;
}
