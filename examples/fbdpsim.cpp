/**
 * @file
 * fbdpsim — the command-line front end to the simulator.
 *
 *   ./example_fbdpsim [options]
 *
 * Options:
 *   --mix NAME        workload mix (default 2C-1; see Table 3 names,
 *                     or 1C-<bench> for single programs), or a trace
 *                     spec "trace:PATH[,stream=on|off][,chunk=N[k|m]]
 *                     [,format=auto|text|fbt]" replaying a recorded
 *                     trace (text, .fbt, or gzip of either) on every
 *                     core — see --cores
 *   --cores N         cores replaying a trace spec (default 1; they
 *                     share one stream/decode pipeline); only valid
 *                     with --mix trace:...
 *   --machine M       ddr2 | fbd | fbd-ap        (default fbd-ap)
 *   --channels N      logic channels             (default 2)
 *   --dimms N         DIMMs per channel          (default 4)
 *   --rate MT         533 | 667 | 800            (default 667)
 *   --k N             prefetch region lines      (default 4)
 *   --entries N       AMB-cache lines            (default 64)
 *   --ways N          associativity, 0 = full    (default 0)
 *   --amb-policy SPEC prefetch policy of the AMB attachment point,
 *                     "policy[,key=value]..." over the PolicyRegistry
 *                     names (region | dspatch | indram | none) with
 *                     keys degree / entries / ways / throttle, e.g.
 *                     --amb-policy=region,degree=4 (= also accepted
 *                     as a separate argument)
 *   --mc-policy SPEC  same, for the controller-buffer attachment
 *                     point; disables the AMB point unless
 *                     --amb-policy is also given
 *   --interleave I    line | multiline | page    (default by machine)
 *   --insts N         measured instructions      (default 400000)
 *   --warmup N        timed warm-up instructions (default insts/4)
 *   --seed N          workload seed              (default 1)
 *   --vrl             enable variable read latency
 *   --no-sp           disable software prefetching
 *   --no-refresh      disable DRAM auto-refresh
 *   --apfl            AMB prefetch with full latency (Fig. 9 mode)
 *   --profile         append an event-kernel profile (events/sec,
 *                     simulated-insts/sec, queue + pool counters)
 *   --profile-kernel  time the sharded kernel itself: per-shard and
 *                     per-lane top-down tables (busy / mailbox-drain /
 *                     barrier-wait host time, mailbox traffic,
 *                     release-path census) plus the channel imbalance
 *                     summary.  Implies the counters of --profile.
 *                     Results are bit-identical with it on or off.
 *   --threads N       worker lanes for the sharded event kernel
 *                     (default 1, or FBDP_THREADS; results are
 *                     bit-identical for every value)
 *
 * Observability (all off by default; attaching them does not change
 * simulation results):
 *   --trace-out F     write a transaction-lifecycle trace as Chrome
 *                     trace_event JSON (load in Perfetto / about:tracing)
 *   --trace-filter S  restrict the trace, e.g. chan=0,kind=read|prefetch
 *   --telemetry-out F write per-epoch gauges; .csv extension selects
 *                     CSV, anything else JSON-lines
 *   --epoch T         telemetry epoch, e.g. 500ns / 1us / 2ms
 *                     (default 1us)
 *   --attribution     latency-phase attribution + stall cycle
 *                     accounting; appends a per-class phase table and
 *                     a per-core top-down cycle table
 *   --stats-json F    dump every statistic of the run (plus the
 *                     sweep-row / kernel / latency / breakdown
 *                     tables) as one JSON document — the input side
 *                     of tools/fbdp-report
 *   --manifest        embed the run manifest (build, git SHA, config
 *                     digest, seed, host, start time) in every output
 *                     written this run: stats JSON, telemetry header,
 *                     trace metadata, progress stream.  Also on when
 *                     FBDP_MANIFEST is set in the environment.
 *   --progress        live status line on stderr (instructions
 *                     retired, % of target, insts/s, ETA)
 *   --progress-out F  machine-readable progress: one JSON object per
 *                     heartbeat appended to F (see system/progress.hh)
 *   --ledger F        append one cross-run ledger record (manifest +
 *                     headline metrics) to F after the run; trend
 *                     with fbdp-report --history F
 *   --version         print the build-info string and exit
 */

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "common/logging.hh"
#include "power/power_model.hh"
#include "sim/trace.hh"
#include "system/ledger.hh"
#include "system/manifest.hh"
#include "system/metrics.hh"
#include "system/progress.hh"
#include "system/runner.hh"
#include "system/statsjson.hh"
#include "system/telemetry.hh"
#include "workload/mixes.hh"
#include "workload/trace_stream.hh"

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::cerr << "usage: " << argv0
              << " [--mix NAME] [--machine ddr2|fbd|fbd-ap] ...\n"
                 "see the header of examples/fbdpsim.cpp for the full "
                 "option list\n";
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace fbdp;

    std::string mix_name = "2C-1";
    std::string machine = "fbd-ap";
    std::string interleave;
    SystemConfig cfg = SystemConfig::fbdAp();
    std::uint64_t insts = 400'000;
    std::uint64_t warmup = 0;
    bool vrl = false, no_sp = false, no_refresh = false,
         apfl = false, verbose = false, profile = false,
         profile_kernel = false, attribution = false,
         manifest_on = false, progress_term = false;
    unsigned channels = 2, dimms = 4, rate = 667, k = 4,
             entries = 64, ways = 0, trace_cores = 1;
    std::uint64_t seed = 1;
    std::string trace_out, trace_filter, telemetry_out, epoch_spec,
        stats_json, amb_policy, mc_policy, threads_arg,
        progress_out, ledger_out;

    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(argv[0]);
        return argv[++i];
    };
    // "--amb-policy=SPEC" form: specs contain commas, which shells
    // and scripts prefer to keep glued to the option.
    auto eqValue = [](const char *arg, const char *opt,
                      std::string &out) {
        const std::size_t n = std::strlen(opt);
        if (std::strncmp(arg, opt, n) != 0 || arg[n] != '=')
            return false;
        out = arg + n + 1;
        return true;
    };

    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (!std::strcmp(a, "--mix"))
            mix_name = need(i);
        else if (!std::strcmp(a, "--cores"))
            trace_cores = static_cast<unsigned>(std::atoi(need(i)));
        else if (!std::strcmp(a, "--machine"))
            machine = need(i);
        else if (!std::strcmp(a, "--channels"))
            channels = static_cast<unsigned>(std::atoi(need(i)));
        else if (!std::strcmp(a, "--dimms"))
            dimms = static_cast<unsigned>(std::atoi(need(i)));
        else if (!std::strcmp(a, "--rate"))
            rate = static_cast<unsigned>(std::atoi(need(i)));
        else if (!std::strcmp(a, "--k"))
            k = static_cast<unsigned>(std::atoi(need(i)));
        else if (!std::strcmp(a, "--entries"))
            entries = static_cast<unsigned>(std::atoi(need(i)));
        else if (!std::strcmp(a, "--ways"))
            ways = static_cast<unsigned>(std::atoi(need(i)));
        else if (!std::strcmp(a, "--amb-policy"))
            amb_policy = need(i);
        else if (eqValue(a, "--amb-policy", amb_policy))
            ;
        else if (!std::strcmp(a, "--mc-policy"))
            mc_policy = need(i);
        else if (eqValue(a, "--mc-policy", mc_policy))
            ;
        else if (!std::strcmp(a, "--interleave"))
            interleave = need(i);
        else if (!std::strcmp(a, "--insts"))
            insts = static_cast<std::uint64_t>(std::atoll(need(i)));
        else if (!std::strcmp(a, "--warmup"))
            warmup = static_cast<std::uint64_t>(std::atoll(need(i)));
        else if (!std::strcmp(a, "--seed"))
            seed = static_cast<std::uint64_t>(std::atoll(need(i)));
        else if (!std::strcmp(a, "--vrl"))
            vrl = true;
        else if (!std::strcmp(a, "--no-sp"))
            no_sp = true;
        else if (!std::strcmp(a, "--no-refresh"))
            no_refresh = true;
        else if (!std::strcmp(a, "--apfl"))
            apfl = true;
        else if (!std::strcmp(a, "--verbose"))
            verbose = true;
        else if (!std::strcmp(a, "--profile"))
            profile = true;
        else if (!std::strcmp(a, "--profile-kernel"))
            profile_kernel = true;
        else if (!std::strcmp(a, "--trace-out"))
            trace_out = need(i);
        else if (!std::strcmp(a, "--trace-filter"))
            trace_filter = need(i);
        else if (!std::strcmp(a, "--telemetry-out"))
            telemetry_out = need(i);
        else if (!std::strcmp(a, "--epoch"))
            epoch_spec = need(i);
        else if (!std::strcmp(a, "--attribution"))
            attribution = true;
        else if (!std::strcmp(a, "--stats-json"))
            stats_json = need(i);
        else if (!std::strcmp(a, "--threads"))
            threads_arg = need(i);
        else if (!std::strcmp(a, "--manifest"))
            manifest_on = true;
        else if (!std::strcmp(a, "--progress"))
            progress_term = true;
        else if (!std::strcmp(a, "--progress-out"))
            progress_out = need(i);
        else if (!std::strcmp(a, "--ledger"))
            ledger_out = need(i);
        else if (!std::strcmp(a, "--version")) {
            std::cout << RunManifest::buildInfo() << "\n";
            return 0;
        } else
            usage(argv[0]);
    }
    if (const char *env = std::getenv("FBDP_MANIFEST");
        env && *env && std::strcmp(env, "0") != 0)
        manifest_on = true;

    if (machine == "ddr2")
        cfg = SystemConfig::ddr2();
    else if (machine == "fbd")
        cfg = SystemConfig::fbdBase();
    else if (machine == "fbd-ap")
        cfg = SystemConfig::fbdAp();
    else
        usage(argv[0]);

    if (!interleave.empty()) {
        if (interleave == "line")
            cfg.scheme = Interleave::Cacheline;
        else if (interleave == "multiline")
            cfg.scheme = Interleave::MultiCacheline;
        else if (interleave == "page")
            cfg.scheme = Interleave::Page;
        else
            usage(argv[0]);
    }

    cfg.logicChannels = channels;
    cfg.dimmsPerChannel = dimms;
    cfg.dataRate = rate;
    cfg.regionLines = k;
    cfg.ambPrefetch.entries = entries;
    cfg.ambPrefetch.ways = ways;
    if (!mc_policy.empty()) {
        cfg.mcBufPrefetch =
            PrefetchConfig::parse(mc_policy, cfg.mcBufPrefetch);
        // The two attachment points are exclusive; an explicit MC
        // policy takes the slot unless the AMB one is also explicit.
        if (amb_policy.empty() && cfg.mcBufPrefetch.enabled()) {
            cfg.ambPrefetch.policy = "none";
            cfg.apEnable = false;
        }
    }
    if (!amb_policy.empty()) {
        cfg.ambPrefetch =
            PrefetchConfig::parse(amb_policy, cfg.ambPrefetch);
        cfg.apEnable = cfg.ambPrefetch.enabled();
        // Prefetching needs a region-preserving interleaving; switch
        // the plain presets over unless --interleave overrode it.
        if (cfg.ambPrefetch.enabled() && interleave.empty()
            && cfg.scheme == Interleave::Cacheline)
            cfg.scheme = Interleave::MultiCacheline;
    }
    if (!mc_policy.empty() && cfg.mcBufPrefetch.enabled()
        && interleave.empty()
        && cfg.scheme == Interleave::Cacheline)
        cfg.scheme = Interleave::MultiCacheline;
    cfg.vrl = vrl;
    cfg.swPrefetch = !no_sp;
    cfg.refreshEnable = !no_refresh;
    cfg.apFullLatency = apfl;
    cfg.measureInsts = insts;
    cfg.warmupInsts = warmup ? warmup : insts / 4;
    cfg.seed = seed;
    cfg.attribution = attribution;
    cfg.profileKernel = profile_kernel;
    applyInstsFromEnv(cfg);
    applyThreadsFromEnv(cfg);
    if (!threads_arg.empty())
        cfg.threads = parseThreadCount(threads_arg.c_str(),
                                       "--threads");
    // When a trace/telemetry observer pins the kernel to one lane,
    // System::laneCount() warns loudly the first time it happens.

    // A trace spec replaces the named mix: N cores (--cores) replay
    // the same file, sharing one stream cursor / loaded vector.
    WorkloadMix trace_mix;
    const bool trace_workload = TraceSpec::isTraceSpec(mix_name);
    if (trace_workload) {
        if (trace_cores < 1) {
            std::cerr << "fbdpsim: --cores must be at least 1\n";
            return 2;
        }
        const TraceSpec spec = TraceSpec::parse(mix_name);
        trace_mix.name = spec.canonicalName();
        trace_mix.benches.assign(trace_cores, mix_name);
    } else if (trace_cores != 1) {
        std::cerr << "fbdpsim: --cores only applies to --mix "
                     "trace:...\n";
        return 2;
    }
    const WorkloadMix &mix =
        trace_workload ? trace_mix : mixByName(mix_name);
    cfg.benchmarks = mix.benches;

    // Captured once the configuration is final, so the digest covers
    // exactly what the run will simulate.
    const RunManifest mft = RunManifest::capture(cfg);

    System sys(cfg);

    std::unique_ptr<trace::Tracer> tracer;
    if (!trace_out.empty()) {
        trace::Filter filter;
        if (!trace_filter.empty())
            filter = trace::Filter::parse(trace_filter);
        tracer = std::make_unique<trace::Tracer>(filter);
        sys.attachTracer(tracer.get());
    }

    std::ofstream telemetry_os;
    std::unique_ptr<TelemetrySampler> sampler;
    if (!telemetry_out.empty()) {
        telemetry_os.open(telemetry_out);
        if (!telemetry_os) {
            std::cerr << "fbdpsim: cannot open " << telemetry_out
                      << " for writing\n";
            return 1;
        }
        const Tick epoch = epoch_spec.empty()
            ? TelemetrySampler::defaultEpoch
            : TelemetrySampler::parseTimeSpec(epoch_spec);
        const bool csv = telemetry_out.size() >= 4
            && telemetry_out.compare(telemetry_out.size() - 4, 4,
                                     ".csv") == 0;
        sampler = std::make_unique<TelemetrySampler>(
            sys, epoch, telemetry_os,
            csv ? TelemetrySampler::Format::Csv
                : TelemetrySampler::Format::Jsonl);
        if (manifest_on)
            sampler->setManifest(mft);
        sampler->start();
    }

    // Live progress: terminal line, JSONL stream, or both.  The pulse
    // schedules observer-priority events only, so attaching it leaves
    // results bit-identical.
    TerminalProgress term_progress(std::cerr);
    std::ofstream progress_os;
    std::unique_ptr<JsonlProgress> jsonl_progress;
    ProgressMux progress_mux;
    std::unique_ptr<ProgressPulse> pulse;
    if (progress_term)
        progress_mux.add(&term_progress);
    if (!progress_out.empty()) {
        progress_os.open(progress_out);
        if (!progress_os) {
            std::cerr << "fbdpsim: cannot open " << progress_out
                      << " for writing\n";
            return 1;
        }
        jsonl_progress = std::make_unique<JsonlProgress>(
            progress_os, manifest_on ? &mft : nullptr);
        progress_mux.add(jsonl_progress.get());
    }
    if (progress_term || !progress_out.empty()) {
        pulse = std::make_unique<ProgressPulse>(
            sys, ProgressPulse::defaultPeriod, progress_mux);
        pulse->start();
    }

    RunResult r = sys.run();

    if (pulse)
        pulse->finish();
    if (sampler)
        sampler->finish();
    if (tracer) {
        std::ofstream os(trace_out);
        if (!os) {
            std::cerr << "fbdpsim: cannot open " << trace_out
                      << " for writing\n";
            return 1;
        }
        tracer->exportJson(os, manifest_on ? mft.json()
                                           : std::string());
    }

    std::cout << "fbdpsim: " << machine << " / " << mix.name << " / "
              << channels << " logic channels @ " << rate
              << " MT/s\n\n";

    TextTable per_core({"core", "benchmark", "IPC", "insts"});
    for (size_t i = 0; i < r.ipc.size(); ++i) {
        // Trace specs print option-free so streamed and in-RAM
        // replays of one file produce identical output.
        per_core.addRow({std::to_string(i),
                         trace_workload ? trace_mix.name
                                        : mix.benches[i],
                         fmtD(r.ipc[i]),
                         std::to_string(r.insts[i])});
    }
    per_core.print(std::cout);

    std::cout << "\n";
    TextTable t({"metric", "value"});
    t.addRow({"IPC sum", fmtD(r.ipcSum())});
    t.addRow({"sim time (us)",
              fmtD(static_cast<double>(r.measuredTicks) * 1e-6, 1)});
    t.addRow({"avg read latency (ns)", fmtD(r.avgReadLatencyNs, 1)});
    t.addRow({"utilized bandwidth (GB/s)", fmtD(r.bandwidthGBs, 2)});
    t.addRow({"memory reads", std::to_string(r.reads)});
    t.addRow({"memory writes", std::to_string(r.writes)});
    t.addRow({"ACT/PRE pairs", std::to_string(r.ops.actPre)});
    t.addRow({"column accesses", std::to_string(r.ops.cas())});
    t.addRow({"refresh commands", std::to_string(r.ops.refresh)});
    const bool pf_on = cfg.resolvedAmbPrefetch().enabled()
        || cfg.resolvedMcPrefetch().enabled();
    if (pf_on) {
        t.addRow({"AMB-cache hits", std::to_string(r.ambHits)});
        t.addRow({"prefetch coverage", fmtPct(r.coverage)});
        t.addRow({"prefetch efficiency", fmtPct(r.efficiency)});
    }
    t.addRow({"L2 hits", std::to_string(r.l2Hits)});
    t.addRow({"L2 misses", std::to_string(r.l2Misses)});
    t.addRow({"sw prefetches", std::to_string(r.swPrefetchesSent)});
    t.print(std::cout);

    std::cout << "\n";
    TextTable lat({"latency percentiles", "samples", "p50 (ns)",
                   "p95 (ns)", "p99 (ns)"});
    auto latRow = [&lat](const char *what,
                         const LatencyClassStats &s) {
        lat.addRow({what, std::to_string(s.samples), fmtD(s.p50Ns, 1),
                    fmtD(s.p95Ns, 1), fmtD(s.p99Ns, 1)});
    };
    latRow("demand read", r.latDemand);
    latRow("prefetch-hit read", r.latPrefHit);
    latRow("write", r.latWrite);
    lat.print(std::cout);
    if (pf_on) {
        std::cout << "late prefetch hits (fill still in flight): "
                  << r.latePrefetchHits << "\n";

        // The per-policy quality block: what the policy fetched and
        // what became of it (mirrors --stats-json's "prefetch").
        std::cout << "\n";
        TextTable pf({"prefetch policy: " + r.prefetch.policy,
                      "value"});
        pf.addRow({"lines issued", std::to_string(r.prefetch.issued)});
        pf.addRow({"useful (hits)", std::to_string(r.prefetch.hits)});
        pf.addRow({"late hits", std::to_string(r.prefetch.lateHits)});
        pf.addRow({"dropped candidates",
                   std::to_string(r.prefetch.dropped)});
        pf.addRow({"evicted unused",
                   std::to_string(r.prefetch.evictedUnused)});
        pf.addRow({"invalidated unused",
                   std::to_string(r.prefetch.invalidatedUnused)});
        pf.addRow({"accuracy", fmtPct(r.efficiency)});
        pf.addRow({"lateness", fmtPct(r.prefetch.lateness())});
        pf.addRow({"pollution", fmtPct(r.prefetch.pollution())});
        pf.print(std::cout);
    }

    if (r.attribution.enabled) {
        // Where each transaction class spends its latency.  Phase
        // means sum to the total mean by construction, so the table
        // reads top-down: the widest column is the bottleneck.
        std::cout << "\n";
        std::vector<std::string> hdr{"latency phases (mean ns)",
                                     "samples", "total"};
        for (unsigned p = 0; p < numLatPhases; ++p)
            hdr.push_back(latPhaseName(static_cast<LatPhase>(p)));
        TextTable ph(hdr);
        auto phaseRow = [&ph](const std::string &label,
                              const ClassPhaseBreakdown &c) {
            std::vector<std::string> row{
                label, std::to_string(c.samples),
                fmtD(c.meanTotalNs(), 1)};
            for (unsigned p = 0; p < numLatPhases; ++p)
                row.push_back(fmtD(c.meanPhaseNs(p), 1));
            ph.addRow(std::move(row));
        };
        for (unsigned c = 0; c < numLatClasses; ++c) {
            phaseRow(latClassName(static_cast<LatClass>(c)),
                     r.attribution.total.cls[c]);
        }
        if (r.attribution.channels.size() > 1) {
            for (size_t ch = 0; ch < r.attribution.channels.size();
                 ++ch) {
                for (unsigned c = 0; c < numLatClasses; ++c) {
                    phaseRow(
                        "ch" + std::to_string(ch) + "."
                            + latClassName(static_cast<LatClass>(c)),
                        r.attribution.channels[ch].cls[c]);
                }
            }
        }
        ph.print(std::cout);

        // Per-core top-down cycle accounting: base work vs stalls,
        // each stall reason split by the phase of the transaction
        // that ended it.
        for (size_t i = 0; i < r.attribution.cores.size(); ++i) {
            const CoreCycleBreakdown &cb = r.attribution.cores[i];
            const double window =
                static_cast<double>(cb.windowTicks);
            auto cyc = [](Tick t) {
                return std::to_string(t / cpuCyclePs);
            };
            auto pct = [window](Tick t) {
                return window > 0.0
                    ? fmtPct(static_cast<double>(t) / window)
                    : fmtPct(0.0);
            };
            std::cout << "\n";
            TextTable ct({"core " + std::to_string(i) + " cycles",
                          "cycles", "% of window"});
            ct.addRow({"window", cyc(cb.windowTicks), pct(cb.windowTicks)});
            ct.addRow({"base (non-stalled)", cyc(cb.baseTicks()),
                       pct(cb.baseTicks())});
            for (unsigned reas = 0;
                 reas < CoreStallAttribution::numReasons; ++reas) {
                if (!cb.stall[reas])
                    continue;
                const std::string rn = stallReasonName(reas);
                ct.addRow({rn + " stall", cyc(cb.stall[reas]),
                           pct(cb.stall[reas])});
                for (unsigned p = 0; p < numLatPhases; ++p) {
                    const Tick t = cb.att.byPhase[reas][p];
                    if (!t)
                        continue;
                    ct.addRow({"  " + rn + "."
                                   + latPhaseName(
                                       static_cast<LatPhase>(p)),
                               cyc(t), pct(t)});
                }
                if (cb.att.l2Wait[reas]) {
                    ct.addRow({"  " + rn + ".l2_wait",
                               cyc(cb.att.l2Wait[reas]),
                               pct(cb.att.l2Wait[reas])});
                }
                if (cb.att.unattributed[reas]) {
                    ct.addRow({"  " + rn + ".other",
                               cyc(cb.att.unattributed[reas]),
                               pct(cb.att.unattributed[reas])});
                }
            }
            ct.print(std::cout);
        }
    }

    if (sampler) {
        std::cout << "\ntelemetry: " << sampler->records()
                  << " epoch records ("
                  << fmtD(static_cast<double>(sampler->epochTicks())
                              / 1e3, 1)
                  << " ns each) -> " << telemetry_out << "\n";
    }
    if (tracer) {
        std::cout << "trace: " << tracer->recorded()
                  << " events recorded, " << tracer->dropped()
                  << " dropped -> " << trace_out << "\n";
    }

    if (profile || profile_kernel) {
        const KernelProfile &k = r.kernel;
        std::cout << "\n";
        TextTable p({"kernel profile", "value"});
        p.addRow({"host time, event phases (ms)",
                  fmtD(k.hostEventSeconds * 1e3, 1)});
        p.addRow({"events dispatched",
                  std::to_string(k.eventsDispatched)});
        p.addRow({"events/sec", fmtD(k.eventsPerSec() / 1e6, 2) + "M"});
        p.addRow({"simulated insts (run total)",
                  std::to_string(r.runInsts)});
        p.addRow({"simulated insts/sec",
                  fmtD(r.instsPerHostSec() / 1e6, 2) + "M"});
        p.addRow({"queue schedules", std::to_string(k.schedules)});
        p.addRow({"queue reschedules",
                  std::to_string(k.reschedules)});
        p.addRow({"queue deschedules",
                  std::to_string(k.deschedules)});
        p.addRow({"peak queue depth",
                  std::to_string(k.peakQueueDepth)});
        p.addRow({"same-tick batch drains",
                  std::to_string(k.batchDrains)});
        p.addRow({"events dispatched batched",
                  std::to_string(k.batchedEvents)});
        p.addRow({"pool acquires", std::to_string(k.poolAcquires)});
        p.addRow({"pool reuses", std::to_string(k.poolReuses)});
        p.addRow({"pool high water",
                  std::to_string(k.poolHighWater)});
        p.addRow({"pool capacity", std::to_string(k.poolCapacity)});
        p.print(std::cout);
    }

    if (profile_kernel && r.kernel.profiled) {
        const KernelProfile &k = r.kernel;
        const auto ms = [](double s) { return fmtD(s * 1e3, 2); };

        // Top-down per-shard view: where the dispatch work lives.
        std::cout << "\n";
        TextTable sh({"shard", "lane", "events", "batched",
                      "peak depth", "mbox in", "mbox out", "busy (ms)",
                      "drain (ms)"});
        for (const ShardProfile &s : k.shards) {
            sh.addRow({s.name, std::to_string(s.lane),
                       std::to_string(s.events),
                       std::to_string(s.batchedEvents),
                       std::to_string(s.peakQueueDepth),
                       std::to_string(s.mailboxIn),
                       std::to_string(s.mailboxOut),
                       ms(s.busySeconds), ms(s.drainSeconds)});
        }
        sh.print(std::cout);
        std::cout << "channel imbalance: "
                  << fmtD(k.eventImbalance(), 3)
                  << " (events, max/mean), "
                  << fmtD(k.busyImbalance(), 3)
                  << " (busy host time)\n";

        // Per-lane view: per round, busy + drain + barrier wait
        // telescopes to wall exactly, so the busy column reads as a
        // parallel-efficiency figure.
        std::cout << "\n";
        TextTable ln({"lane", "shards", "rounds", "busy (ms)",
                      "drain (ms)", "barrier (ms)", "wall (ms)",
                      "busy", "last/spin/yield/sleep"});
        for (const LaneProfile &l : k.lanes) {
            const double frac = l.wallSeconds > 0.0
                ? (l.busySeconds + l.drainSeconds) / l.wallSeconds
                : 0.0;
            ln.addRow({std::to_string(l.lane),
                       std::to_string(l.shardsOwned),
                       std::to_string(l.rounds),
                       ms(l.busySeconds), ms(l.drainSeconds),
                       ms(l.barrierWaitSeconds), ms(l.wallSeconds),
                       fmtPct(frac),
                       std::to_string(l.lastArrivals) + "/"
                           + std::to_string(l.spinReleases) + "/"
                           + std::to_string(l.yieldReleases) + "/"
                           + std::to_string(l.sleepReleases)});
        }
        ln.print(std::cout);
    }

    if (!stats_json.empty() || !ledger_out.empty()) {
        SweepRow row;
        row.config = machine;
        row.mix = mix.name;
        row.seed = seed;
        row.result = r;
        if (!stats_json.empty()) {
            std::ofstream os(stats_json);
            if (!os) {
                std::cerr << "fbdpsim: cannot open " << stats_json
                          << " for writing\n";
                return 1;
            }
            writeRunStatsJson(sys, row, os,
                              manifest_on ? &mft : nullptr);
            std::cout << "\nstats: full dump -> " << stats_json
                      << "\n";
        }
        if (!ledger_out.empty()) {
            std::string err;
            if (!appendLedgerRecord(ledger_out,
                                    ledgerRecordJson(mft, row),
                                    &err)) {
                std::cerr << "fbdpsim: " << err << "\n";
                return 1;
            }
            std::cout << "ledger: record appended -> " << ledger_out
                      << "\n";
        }
    }

    if (verbose) {
        std::cout << "\n";
        sys.report(std::cout);
    }
    return 0;
}
