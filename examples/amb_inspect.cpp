/**
 * @file
 * Diagnostic example: detailed AMB-prefetching internals for one
 * workload mix — insertions, evictions, hit conversions, coverage,
 * efficiency, DRAM operation mix — useful for understanding *why* the
 * prefetcher behaves as it does on a given workload.
 *
 *   ./example_amb_inspect [mix-name] [insts] [K] [entries] [ways]
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "system/metrics.hh"
#include "system/runner.hh"
#include "system/system.hh"
#include "workload/mixes.hh"

int
main(int argc, char **argv)
{
    using namespace fbdp;

    const std::string mix_name = argc > 1 ? argv[1] : "8C-1";
    const std::uint64_t insts = argc > 2
        ? static_cast<std::uint64_t>(std::atoll(argv[2]))
        : 300'000;

    SystemConfig cfg = SystemConfig::fbdAp();
    if (argc > 3)
        cfg.regionLines = static_cast<unsigned>(std::atoi(argv[3]));
    if (argc > 4)
        cfg.ambPrefetch.entries =
            static_cast<unsigned>(std::atoi(argv[4]));
    if (argc > 5)
        cfg.ambPrefetch.ways =
            static_cast<unsigned>(std::atoi(argv[5]));
    cfg.warmupInsts = insts / 4;
    cfg.measureInsts = insts;
    applyInstsFromEnv(cfg);

    const WorkloadMix &mix = mixByName(mix_name);
    cfg.benchmarks = mix.benches;

    System sys(cfg);
    RunResult r = sys.run();

    std::cout << "mix " << mix.name << "  K=" << cfg.regionLines
              << " entries=" << cfg.ambPrefetch.entries
              << " ways="
              << (cfg.ambPrefetch.ways ? cfg.ambPrefetch.ways : 999)
              << "\n\n";

    std::uint64_t ins = 0, ev = 0, conv = 0, pf = 0, hits = 0,
                  reads = 0;
    for (unsigned c = 0; c < sys.numControllers(); ++c) {
        const auto &mc = sys.controller(c);
        conv += mc.hitConversions();
        const PrefetchTable *t = mc.prefetchTable();
        if (!t)
            continue;
        pf += t->prefetchesIssued();
        hits += t->prefetchHits();
        reads += t->reads();
        for (unsigned d = 0; d < t->numDimms(); ++d) {
            ins += t->dimm(d).insertions();
            ev += t->dimm(d).evictions();
        }
    }

    TextTable t({"metric", "value"});
    t.addRow({"IPC sum", fmtD(r.ipcSum())});
    t.addRow({"bandwidth GB/s", fmtD(r.bandwidthGBs, 2)});
    t.addRow({"avg read latency ns", fmtD(r.avgReadLatencyNs, 1)});
    t.addRow({"memory reads", std::to_string(r.reads)});
    t.addRow({"memory writes", std::to_string(r.writes)});
    t.addRow({"AP reads (table)", std::to_string(reads)});
    t.addRow({"prefetch lines issued", std::to_string(pf)});
    t.addRow({"prefetch hits", std::to_string(hits)});
    t.addRow({"coverage", fmtPct(r.coverage)});
    t.addRow({"efficiency", fmtPct(r.efficiency)});
    t.addRow({"tag insertions", std::to_string(ins)});
    t.addRow({"tag evictions", std::to_string(ev)});
    t.addRow({"hit->miss conversions", std::to_string(conv)});
    t.addRow({"ACT/PRE pairs", std::to_string(r.ops.actPre)});
    t.addRow({"column accesses", std::to_string(r.ops.cas())});
    t.addRow({"sw prefetches sent", std::to_string(r.swPrefetchesSent)});
    t.addRow({"sw prefetches dropped",
              std::to_string(sys.hierarchy().prefetchesDropped())});
    t.addRow({"hier mem reads (demand)",
              std::to_string(sys.hierarchy().memReads())});
    t.addRow({"hier mem writes",
              std::to_string(sys.hierarchy().memWrites())});
    t.addRow({"load-miss reads",
              std::to_string(sys.hierarchy().loadMissReads())});
    t.addRow({"store-miss reads (RFO)",
              std::to_string(sys.hierarchy().storeMissReads())});
    t.addRow({"L2 hits", std::to_string(r.l2Hits)});
    t.addRow({"L2 misses", std::to_string(r.l2Misses)});

    std::uint64_t sOps = 0, sCross = 0, hOps = 0, cOps = 0, pOps = 0;
    for (unsigned i = 0; i < static_cast<unsigned>(r.ipc.size()); ++i) {
        const auto &g = sys.syntheticGenerator(i);
        sOps += g.streamOps();
        sCross += g.streamLineCrossings();
        hOps += g.hotOps();
        cOps += g.coldOps();
        pOps += g.prefetchOps();
    }
    t.addRow({"gen stream ops", std::to_string(sOps)});
    t.addRow({"gen stream crossings", std::to_string(sCross)});
    t.addRow({"gen hot ops", std::to_string(hOps)});
    t.addRow({"gen cold ops", std::to_string(cOps)});
    t.addRow({"gen prefetch ops", std::to_string(pOps)});

    Tick rob = 0, lq = 0, sq = 0, mshr = 0;
    for (unsigned i = 0; i < static_cast<unsigned>(r.ipc.size()); ++i) {
        rob += sys.core(i).robStallTicks();
        lq += sys.core(i).lqStallTicks();
        sq += sys.core(i).sqStallTicks();
        mshr += sys.core(i).mshrStallTicks();
    }
    const double per = static_cast<double>(r.ipc.size())
        * static_cast<double>(r.measuredTicks) / 100.0;
    t.addRow({"ROB stall %", fmtD(static_cast<double>(rob) / per, 1)});
    t.addRow({"LQ stall %", fmtD(static_cast<double>(lq) / per, 1)});
    t.addRow({"SQ stall %", fmtD(static_cast<double>(sq) / per, 1)});
    t.addRow({"MSHR stall %",
              fmtD(static_cast<double>(mshr) / per, 1)});
    t.print(std::cout);
    return 0;
}
