/**
 * @file
 * Trace tooling: record a synthetic benchmark to a trace file, then
 * analyse it — operation mix, footprint, stride distribution, line
 * reuse — the quantities one checks before trusting a workload model.
 *
 *   ./example_trace_tools [bench] [ops] [path]
 */

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "system/metrics.hh"
#include "workload/trace_file.hh"

int
main(int argc, char **argv)
{
    using namespace fbdp;

    const std::string bench = argc > 1 ? argv[1] : "mgrid";
    const std::uint64_t n_ops = argc > 2
        ? static_cast<std::uint64_t>(std::atoll(argv[2]))
        : 100'000;
    const std::string path = argc > 3
        ? argv[3]
        : "/tmp/fbdp_" + bench + ".trace";

    // 1. Record.
    SyntheticGenerator gen(benchProfile(bench), 0, 42, true);
    {
        TraceRecorder rec(&gen, path);
        for (std::uint64_t i = 0; i < n_ops; ++i)
            rec.next();
    }
    std::cout << "recorded " << n_ops << " ops of '" << bench
              << "' to " << path << "\n\n";

    // 2. Replay and analyse.
    TraceFileGenerator replay(path);
    std::uint64_t loads = 0, stores = 0, prefetches = 0;
    std::uint64_t insts = 0;
    std::set<Addr> lines;
    // Strides are measured against the previous access in the same
    // 4 MB segment, which separates interleaved streams well enough
    // to expose each stream's own stride.
    std::map<std::int64_t, std::uint64_t> stride_hist;
    std::map<Addr, Addr> prev_in_segment;
    std::uint64_t strided_samples = 0;
    std::map<Addr, std::uint64_t> last_touch;
    std::vector<std::uint64_t> reuse;

    for (std::uint64_t i = 0; i < replay.size(); ++i) {
        TraceOp op = replay.next();
        insts += op.gap + 1;
        switch (op.kind) {
          case TraceOp::Kind::Load:
            ++loads;
            break;
          case TraceOp::Kind::Store:
            ++stores;
            break;
          case TraceOp::Kind::Prefetch:
            ++prefetches;
            continue;  // not part of the demand stream
        }
        const Addr line = lineIndex(op.addr);
        lines.insert(line);
        const Addr seg = op.addr >> 22;
        auto pit = prev_in_segment.find(seg);
        if (pit != prev_in_segment.end()) {
            const auto stride = static_cast<std::int64_t>(op.addr)
                - static_cast<std::int64_t>(pit->second);
            if (stride > -4096 && stride < 4096) {
                ++stride_hist[stride];
                ++strided_samples;
            }
        }
        prev_in_segment[seg] = op.addr;
        auto it = last_touch.find(line);
        if (it != last_touch.end())
            reuse.push_back(i - it->second);
        last_touch[line] = i;
    }

    TextTable t({"metric", "value"});
    t.addRow({"operations", std::to_string(replay.size())});
    t.addRow({"instructions (incl. gaps)", std::to_string(insts)});
    t.addRow({"loads", std::to_string(loads)});
    t.addRow({"stores", std::to_string(stores)});
    t.addRow({"sw prefetches", std::to_string(prefetches)});
    t.addRow({"distinct cachelines", std::to_string(lines.size())});
    t.addRow({"footprint (MB)",
              fmtD(static_cast<double>(lines.size()) * lineBytes
                       / (1 << 20), 1)});
    double mean_reuse = 0;
    for (auto r : reuse)
        mean_reuse += static_cast<double>(r);
    if (!reuse.empty())
        mean_reuse /= static_cast<double>(reuse.size());
    t.addRow({"mean line-reuse distance (ops)", fmtD(mean_reuse, 0)});
    t.print(std::cout);

    std::cout << "\ntop same-segment strides (bytes -> share):\n";
    std::vector<std::pair<std::uint64_t, std::int64_t>> top;
    for (auto &[s, n] : stride_hist)
        top.emplace_back(n, s);
    std::sort(top.rbegin(), top.rend());
    const double denom = strided_samples
        ? static_cast<double>(strided_samples)
        : 1.0;
    for (size_t i = 0; i < top.size() && i < 6; ++i) {
        std::cout << "  " << top[i].second << " -> "
                  << fmtPct(static_cast<double>(top[i].first) / denom)
                  << "\n";
    }
    return 0;
}
