file(REMOVE_RECURSE
  "CMakeFiles/test_dimm.dir/test_dimm.cc.o"
  "CMakeFiles/test_dimm.dir/test_dimm.cc.o.d"
  "test_dimm"
  "test_dimm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dimm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
