# Empty compiler generated dependencies file for test_dimm.
# This may be replaced when dependencies are built.
