file(REMOVE_RECURSE
  "CMakeFiles/test_refresh.dir/test_refresh.cc.o"
  "CMakeFiles/test_refresh.dir/test_refresh.cc.o.d"
  "test_refresh"
  "test_refresh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_refresh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
