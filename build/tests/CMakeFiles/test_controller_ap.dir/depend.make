# Empty dependencies file for test_controller_ap.
# This may be replaced when dependencies are built.
