file(REMOVE_RECURSE
  "CMakeFiles/test_controller_ap.dir/test_controller_ap.cc.o"
  "CMakeFiles/test_controller_ap.dir/test_controller_ap.cc.o.d"
  "test_controller_ap"
  "test_controller_ap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_controller_ap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
