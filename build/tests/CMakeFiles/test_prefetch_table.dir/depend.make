# Empty dependencies file for test_prefetch_table.
# This may be replaced when dependencies are built.
