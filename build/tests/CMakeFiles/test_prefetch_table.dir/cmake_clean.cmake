file(REMOVE_RECURSE
  "CMakeFiles/test_prefetch_table.dir/test_prefetch_table.cc.o"
  "CMakeFiles/test_prefetch_table.dir/test_prefetch_table.cc.o.d"
  "test_prefetch_table"
  "test_prefetch_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prefetch_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
