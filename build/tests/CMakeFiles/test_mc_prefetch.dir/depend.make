# Empty dependencies file for test_mc_prefetch.
# This may be replaced when dependencies are built.
