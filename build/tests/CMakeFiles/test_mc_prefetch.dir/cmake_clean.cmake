file(REMOVE_RECURSE
  "CMakeFiles/test_mc_prefetch.dir/test_mc_prefetch.cc.o"
  "CMakeFiles/test_mc_prefetch.dir/test_mc_prefetch.cc.o.d"
  "test_mc_prefetch"
  "test_mc_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mc_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
