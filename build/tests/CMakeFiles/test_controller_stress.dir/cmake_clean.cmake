file(REMOVE_RECURSE
  "CMakeFiles/test_controller_stress.dir/test_controller_stress.cc.o"
  "CMakeFiles/test_controller_stress.dir/test_controller_stress.cc.o.d"
  "test_controller_stress"
  "test_controller_stress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_controller_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
