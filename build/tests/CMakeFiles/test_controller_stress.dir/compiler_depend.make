# Empty compiler generated dependencies file for test_controller_stress.
# This may be replaced when dependencies are built.
