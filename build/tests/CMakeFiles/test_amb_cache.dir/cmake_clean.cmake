file(REMOVE_RECURSE
  "CMakeFiles/test_amb_cache.dir/test_amb_cache.cc.o"
  "CMakeFiles/test_amb_cache.dir/test_amb_cache.cc.o.d"
  "test_amb_cache"
  "test_amb_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_amb_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
