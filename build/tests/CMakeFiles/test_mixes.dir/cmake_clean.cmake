file(REMOVE_RECURSE
  "CMakeFiles/test_mixes.dir/test_mixes.cc.o"
  "CMakeFiles/test_mixes.dir/test_mixes.cc.o.d"
  "test_mixes"
  "test_mixes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mixes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
