
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/cache_array.cc" "src/CMakeFiles/fbdp.dir/cache/cache_array.cc.o" "gcc" "src/CMakeFiles/fbdp.dir/cache/cache_array.cc.o.d"
  "/root/repo/src/cache/hierarchy.cc" "src/CMakeFiles/fbdp.dir/cache/hierarchy.cc.o" "gcc" "src/CMakeFiles/fbdp.dir/cache/hierarchy.cc.o.d"
  "/root/repo/src/cache/mshr.cc" "src/CMakeFiles/fbdp.dir/cache/mshr.cc.o" "gcc" "src/CMakeFiles/fbdp.dir/cache/mshr.cc.o.d"
  "/root/repo/src/cache/stream_prefetcher.cc" "src/CMakeFiles/fbdp.dir/cache/stream_prefetcher.cc.o" "gcc" "src/CMakeFiles/fbdp.dir/cache/stream_prefetcher.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/fbdp.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/fbdp.dir/common/logging.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/fbdp.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/fbdp.dir/common/stats.cc.o.d"
  "/root/repo/src/cpu/core.cc" "src/CMakeFiles/fbdp.dir/cpu/core.cc.o" "gcc" "src/CMakeFiles/fbdp.dir/cpu/core.cc.o.d"
  "/root/repo/src/dram/bank.cc" "src/CMakeFiles/fbdp.dir/dram/bank.cc.o" "gcc" "src/CMakeFiles/fbdp.dir/dram/bank.cc.o.d"
  "/root/repo/src/dram/dimm.cc" "src/CMakeFiles/fbdp.dir/dram/dimm.cc.o" "gcc" "src/CMakeFiles/fbdp.dir/dram/dimm.cc.o.d"
  "/root/repo/src/dram/dram_timing.cc" "src/CMakeFiles/fbdp.dir/dram/dram_timing.cc.o" "gcc" "src/CMakeFiles/fbdp.dir/dram/dram_timing.cc.o.d"
  "/root/repo/src/mc/address_map.cc" "src/CMakeFiles/fbdp.dir/mc/address_map.cc.o" "gcc" "src/CMakeFiles/fbdp.dir/mc/address_map.cc.o.d"
  "/root/repo/src/mc/controller.cc" "src/CMakeFiles/fbdp.dir/mc/controller.cc.o" "gcc" "src/CMakeFiles/fbdp.dir/mc/controller.cc.o.d"
  "/root/repo/src/mc/link.cc" "src/CMakeFiles/fbdp.dir/mc/link.cc.o" "gcc" "src/CMakeFiles/fbdp.dir/mc/link.cc.o.d"
  "/root/repo/src/mc/transaction.cc" "src/CMakeFiles/fbdp.dir/mc/transaction.cc.o" "gcc" "src/CMakeFiles/fbdp.dir/mc/transaction.cc.o.d"
  "/root/repo/src/power/power_model.cc" "src/CMakeFiles/fbdp.dir/power/power_model.cc.o" "gcc" "src/CMakeFiles/fbdp.dir/power/power_model.cc.o.d"
  "/root/repo/src/prefetch/amb_cache.cc" "src/CMakeFiles/fbdp.dir/prefetch/amb_cache.cc.o" "gcc" "src/CMakeFiles/fbdp.dir/prefetch/amb_cache.cc.o.d"
  "/root/repo/src/prefetch/prefetch_table.cc" "src/CMakeFiles/fbdp.dir/prefetch/prefetch_table.cc.o" "gcc" "src/CMakeFiles/fbdp.dir/prefetch/prefetch_table.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/fbdp.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/fbdp.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/system/config.cc" "src/CMakeFiles/fbdp.dir/system/config.cc.o" "gcc" "src/CMakeFiles/fbdp.dir/system/config.cc.o.d"
  "/root/repo/src/system/metrics.cc" "src/CMakeFiles/fbdp.dir/system/metrics.cc.o" "gcc" "src/CMakeFiles/fbdp.dir/system/metrics.cc.o.d"
  "/root/repo/src/system/runner.cc" "src/CMakeFiles/fbdp.dir/system/runner.cc.o" "gcc" "src/CMakeFiles/fbdp.dir/system/runner.cc.o.d"
  "/root/repo/src/system/sweep.cc" "src/CMakeFiles/fbdp.dir/system/sweep.cc.o" "gcc" "src/CMakeFiles/fbdp.dir/system/sweep.cc.o.d"
  "/root/repo/src/system/system.cc" "src/CMakeFiles/fbdp.dir/system/system.cc.o" "gcc" "src/CMakeFiles/fbdp.dir/system/system.cc.o.d"
  "/root/repo/src/workload/generator.cc" "src/CMakeFiles/fbdp.dir/workload/generator.cc.o" "gcc" "src/CMakeFiles/fbdp.dir/workload/generator.cc.o.d"
  "/root/repo/src/workload/mixes.cc" "src/CMakeFiles/fbdp.dir/workload/mixes.cc.o" "gcc" "src/CMakeFiles/fbdp.dir/workload/mixes.cc.o.d"
  "/root/repo/src/workload/profile.cc" "src/CMakeFiles/fbdp.dir/workload/profile.cc.o" "gcc" "src/CMakeFiles/fbdp.dir/workload/profile.cc.o.d"
  "/root/repo/src/workload/trace_file.cc" "src/CMakeFiles/fbdp.dir/workload/trace_file.cc.o" "gcc" "src/CMakeFiles/fbdp.dir/workload/trace_file.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
