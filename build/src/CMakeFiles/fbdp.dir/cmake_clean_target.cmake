file(REMOVE_RECURSE
  "libfbdp.a"
)
