# Empty dependencies file for fbdp.
# This may be replaced when dependencies are built.
