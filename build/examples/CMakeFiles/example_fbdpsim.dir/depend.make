# Empty dependencies file for example_fbdpsim.
# This may be replaced when dependencies are built.
