file(REMOVE_RECURSE
  "CMakeFiles/example_fbdpsim.dir/fbdpsim.cpp.o"
  "CMakeFiles/example_fbdpsim.dir/fbdpsim.cpp.o.d"
  "example_fbdpsim"
  "example_fbdpsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_fbdpsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
