file(REMOVE_RECURSE
  "CMakeFiles/example_amb_inspect.dir/amb_inspect.cpp.o"
  "CMakeFiles/example_amb_inspect.dir/amb_inspect.cpp.o.d"
  "example_amb_inspect"
  "example_amb_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_amb_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
