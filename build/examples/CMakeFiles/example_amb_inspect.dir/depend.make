# Empty dependencies file for example_amb_inspect.
# This may be replaced when dependencies are built.
