# Empty dependencies file for example_multicore_scaling.
# This may be replaced when dependencies are built.
