file(REMOVE_RECURSE
  "CMakeFiles/example_multicore_scaling.dir/multicore_scaling.cpp.o"
  "CMakeFiles/example_multicore_scaling.dir/multicore_scaling.cpp.o.d"
  "example_multicore_scaling"
  "example_multicore_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_multicore_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
