file(REMOVE_RECURSE
  "CMakeFiles/fig06_bandwidth_scaling.dir/fig06_bandwidth_scaling.cc.o"
  "CMakeFiles/fig06_bandwidth_scaling.dir/fig06_bandwidth_scaling.cc.o.d"
  "fig06_bandwidth_scaling"
  "fig06_bandwidth_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_bandwidth_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
