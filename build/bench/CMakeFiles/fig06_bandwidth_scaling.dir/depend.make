# Empty dependencies file for fig06_bandwidth_scaling.
# This may be replaced when dependencies are built.
