# Empty dependencies file for abl05_hw_prefetch.
# This may be replaced when dependencies are built.
