file(REMOVE_RECURSE
  "CMakeFiles/abl05_hw_prefetch.dir/abl05_hw_prefetch.cc.o"
  "CMakeFiles/abl05_hw_prefetch.dir/abl05_hw_prefetch.cc.o.d"
  "abl05_hw_prefetch"
  "abl05_hw_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl05_hw_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
