file(REMOVE_RECURSE
  "CMakeFiles/abl06_mc_prefetch.dir/abl06_mc_prefetch.cc.o"
  "CMakeFiles/abl06_mc_prefetch.dir/abl06_mc_prefetch.cc.o.d"
  "abl06_mc_prefetch"
  "abl06_mc_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl06_mc_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
