# Empty compiler generated dependencies file for abl06_mc_prefetch.
# This may be replaced when dependencies are built.
