file(REMOVE_RECURSE
  "CMakeFiles/fig13_power_saving.dir/fig13_power_saving.cc.o"
  "CMakeFiles/fig13_power_saving.dir/fig13_power_saving.cc.o.d"
  "fig13_power_saving"
  "fig13_power_saving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_power_saving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
