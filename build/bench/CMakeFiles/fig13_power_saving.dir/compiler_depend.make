# Empty compiler generated dependencies file for fig13_power_saving.
# This may be replaced when dependencies are built.
