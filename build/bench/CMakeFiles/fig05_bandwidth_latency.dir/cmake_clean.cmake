file(REMOVE_RECURSE
  "CMakeFiles/fig05_bandwidth_latency.dir/fig05_bandwidth_latency.cc.o"
  "CMakeFiles/fig05_bandwidth_latency.dir/fig05_bandwidth_latency.cc.o.d"
  "fig05_bandwidth_latency"
  "fig05_bandwidth_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_bandwidth_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
