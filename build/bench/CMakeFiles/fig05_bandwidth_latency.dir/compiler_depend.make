# Empty compiler generated dependencies file for fig05_bandwidth_latency.
# This may be replaced when dependencies are built.
