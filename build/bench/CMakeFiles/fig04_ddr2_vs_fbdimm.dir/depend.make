# Empty dependencies file for fig04_ddr2_vs_fbdimm.
# This may be replaced when dependencies are built.
