file(REMOVE_RECURSE
  "CMakeFiles/fig04_ddr2_vs_fbdimm.dir/fig04_ddr2_vs_fbdimm.cc.o"
  "CMakeFiles/fig04_ddr2_vs_fbdimm.dir/fig04_ddr2_vs_fbdimm.cc.o.d"
  "fig04_ddr2_vs_fbdimm"
  "fig04_ddr2_vs_fbdimm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_ddr2_vs_fbdimm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
