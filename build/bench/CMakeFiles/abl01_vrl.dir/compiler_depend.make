# Empty compiler generated dependencies file for abl01_vrl.
# This may be replaced when dependencies are built.
