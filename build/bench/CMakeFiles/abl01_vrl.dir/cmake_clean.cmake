file(REMOVE_RECURSE
  "CMakeFiles/abl01_vrl.dir/abl01_vrl.cc.o"
  "CMakeFiles/abl01_vrl.dir/abl01_vrl.cc.o.d"
  "abl01_vrl"
  "abl01_vrl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl01_vrl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
