# Empty compiler generated dependencies file for abl03_scheduler.
# This may be replaced when dependencies are built.
