file(REMOVE_RECURSE
  "CMakeFiles/abl03_scheduler.dir/abl03_scheduler.cc.o"
  "CMakeFiles/abl03_scheduler.dir/abl03_scheduler.cc.o.d"
  "abl03_scheduler"
  "abl03_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl03_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
