# Empty dependencies file for fig09_gain_decomposition.
# This may be replaced when dependencies are built.
