file(REMOVE_RECURSE
  "CMakeFiles/fig09_gain_decomposition.dir/fig09_gain_decomposition.cc.o"
  "CMakeFiles/fig09_gain_decomposition.dir/fig09_gain_decomposition.cc.o.d"
  "fig09_gain_decomposition"
  "fig09_gain_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_gain_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
