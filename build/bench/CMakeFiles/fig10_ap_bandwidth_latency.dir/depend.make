# Empty dependencies file for fig10_ap_bandwidth_latency.
# This may be replaced when dependencies are built.
