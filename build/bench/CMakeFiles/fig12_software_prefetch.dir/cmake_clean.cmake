file(REMOVE_RECURSE
  "CMakeFiles/fig12_software_prefetch.dir/fig12_software_prefetch.cc.o"
  "CMakeFiles/fig12_software_prefetch.dir/fig12_software_prefetch.cc.o.d"
  "fig12_software_prefetch"
  "fig12_software_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_software_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
