# Empty compiler generated dependencies file for fig12_software_prefetch.
# This may be replaced when dependencies are built.
