# Empty dependencies file for abl02_interleaving.
# This may be replaced when dependencies are built.
