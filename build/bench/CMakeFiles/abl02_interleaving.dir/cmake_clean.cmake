file(REMOVE_RECURSE
  "CMakeFiles/abl02_interleaving.dir/abl02_interleaving.cc.o"
  "CMakeFiles/abl02_interleaving.dir/abl02_interleaving.cc.o.d"
  "abl02_interleaving"
  "abl02_interleaving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl02_interleaving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
