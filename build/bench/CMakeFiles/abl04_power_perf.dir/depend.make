# Empty dependencies file for abl04_power_perf.
# This may be replaced when dependencies are built.
