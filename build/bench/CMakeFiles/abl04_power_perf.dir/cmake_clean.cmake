file(REMOVE_RECURSE
  "CMakeFiles/abl04_power_perf.dir/abl04_power_perf.cc.o"
  "CMakeFiles/abl04_power_perf.dir/abl04_power_perf.cc.o.d"
  "abl04_power_perf"
  "abl04_power_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl04_power_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
