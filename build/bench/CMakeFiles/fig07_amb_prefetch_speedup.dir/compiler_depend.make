# Empty compiler generated dependencies file for fig07_amb_prefetch_speedup.
# This may be replaced when dependencies are built.
