file(REMOVE_RECURSE
  "CMakeFiles/fig07_amb_prefetch_speedup.dir/fig07_amb_prefetch_speedup.cc.o"
  "CMakeFiles/fig07_amb_prefetch_speedup.dir/fig07_amb_prefetch_speedup.cc.o.d"
  "fig07_amb_prefetch_speedup"
  "fig07_amb_prefetch_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_amb_prefetch_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
