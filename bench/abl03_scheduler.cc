/**
 * @file
 * Ablation A3: memory-controller scheduling knobs — the write-drain
 * thresholds.  Sweeps the high watermark (the paper's controller
 * schedules reads before writes "unless the number of outstanding
 * write requests is above a certain threshold") and reports FB-DIMM
 * throughput and latency per group.
 */

#include <cstring>
#include <iostream>

#include "system/metrics.hh"
#include "system/runner.hh"
#include "workload/mixes.hh"

int
main(int argc, char **argv)
{
    using namespace fbdp;

    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--quick"))
            quick = true;
    }

    auto prep = [&](SystemConfig c) {
        c.warmupInsts = quick ? 20'000 : 50'000;
        c.measureInsts = quick ? 80'000 : 200'000;
        applyInstsFromEnv(c);
        return c;
    };

    std::cout << "== Ablation A3: write-drain threshold sweep ==\n\n";

    TextTable t({"cores", "drain@8", "drain@16", "drain@32",
                 "drain@48"});
    for (unsigned cores : {1u, 2u, 4u, 8u}) {
        std::vector<std::string> row{std::to_string(cores)};
        for (unsigned high : {8u, 16u, 32u, 48u}) {
            double s = 0.0;
            unsigned n = 0;
            for (const auto &mix : mixesFor(cores)) {
                SystemConfig c = prep(SystemConfig::fbdBase());
                c.writeDrainHigh = high;
                c.writeDrainLow = high / 4;
                s += runMix(c, mix).ipcSum();
                ++n;
            }
            row.push_back(fmtD(s / n));
        }
        t.addRow(row);
    }
    t.print(std::cout);
    return 0;
}
