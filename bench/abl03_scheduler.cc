/**
 * @file
 * Ablation A3: memory-controller scheduling knobs — the write-drain
 * thresholds.  Sweeps the high watermark (the paper's controller
 * schedules reads before writes "unless the number of outstanding
 * write requests is above a certain threshold") and reports FB-DIMM
 * throughput and latency per group.
 *
 * Built on the Sweep batch engine: the four thresholds become four
 * named configurations crossed with the core-count's mix group, so
 * the whole grid runs on the worker pool (FBDP_JOBS).
 */

#include <cstring>
#include <iostream>
#include <map>

#include "system/metrics.hh"
#include "system/runner.hh"
#include "system/sweep.hh"
#include "workload/mixes.hh"

int
main(int argc, char **argv)
{
    using namespace fbdp;

    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--quick"))
            quick = true;
    }

    auto prep = [&](SystemConfig c) {
        c.warmupInsts = quick ? 20'000 : 50'000;
        c.measureInsts = quick ? 80'000 : 200'000;
        applyInstsFromEnv(c);
        return c;
    };

    std::cout << "== Ablation A3: write-drain threshold sweep ==\n\n";

    const std::vector<unsigned> highs{8, 16, 32, 48};

    TextTable t({"cores", "drain@8", "drain@16", "drain@32",
                 "drain@48"});
    for (unsigned cores : {1u, 2u, 4u, 8u}) {
        Sweep s;
        for (unsigned high : highs) {
            SystemConfig c = prep(SystemConfig::fbdBase());
            c.writeDrainHigh = high;
            c.writeDrainLow = high / 4;
            s.addConfig("drain@" + std::to_string(high), c);
        }
        s.addMixGroup(cores);

        // Config-major row order: accumulate sum/count per config.
        std::map<std::string, std::pair<double, unsigned>> acc;
        for (const auto &row : s.run()) {
            auto &[sum, n] = acc[row.config];
            sum += row.result.ipcSum();
            ++n;
        }

        std::vector<std::string> line{std::to_string(cores)};
        for (unsigned high : highs) {
            const auto &[sum, n] =
                acc.at("drain@" + std::to_string(high));
            line.push_back(fmtD(sum / n));
        }
        t.addRow(line);
    }
    t.print(std::cout);
    return 0;
}
